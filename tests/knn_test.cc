#include "core/knn_query.h"

#include <gtest/gtest.h>

#include "core/range_query.h"
#include "ground_truth.h"
#include "synth/building_generator.h"
#include "synth/campus_generator.h"
#include "synth/objects.h"

namespace viptree {
namespace {

struct KnnEnv {
  Venue venue;
  D2DGraph graph;
  IPTree tree;
  std::vector<IndoorPoint> objects;

  KnnEnv(Venue v, size_t num_objects, uint64_t seed)
      : venue(std::move(v)),
        graph(venue),
        tree(IPTree::Build(venue, graph)),
        objects([this, num_objects, seed] {
          Rng rng(seed);
          return synth::PlaceObjects(venue, num_objects, rng);
        }()) {}
};

KnnEnv MakeBuildingSetup(size_t num_objects, uint64_t seed) {
  synth::BuildingConfig cfg;
  cfg.floors = 4;
  cfg.rooms_per_floor = 24;
  cfg.staircases = 2;
  cfg.lifts = 1;
  return KnnEnv(synth::GenerateStandaloneBuilding(cfg, 200), num_objects,
               seed);
}

class KnnPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KnnPropertyTest, MatchesBruteForce) {
  const size_t k = GetParam();
  KnnEnv env = MakeBuildingSetup(12, 42);
  ObjectIndex index(env.tree, env.objects);
  KnnQuery knn(env.tree, index);

  Rng rng(900);
  for (int i = 0; i < 25; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
    const auto expected = testing::BruteAllObjectDistances(
        env.venue, env.graph, q, env.objects);
    const auto actual = knn.Knn(q, k);
    ASSERT_EQ(actual.size(), std::min(k, env.objects.size()));
    for (size_t j = 0; j < actual.size(); ++j) {
      // Distances must match; ids may differ under exact ties.
      EXPECT_NEAR(actual[j].distance, expected[j].distance,
                  1e-3 + expected[j].distance * 1e-5)
          << "k=" << k << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnPropertyTest,
                         ::testing::Values(1u, 3u, 5u, 10u));

TEST(KnnQueryTest, KLargerThanObjectCount) {
  KnnEnv env = MakeBuildingSetup(4, 7);
  ObjectIndex index(env.tree, env.objects);
  KnnQuery knn(env.tree, index);
  Rng rng(901);
  const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
  const auto results = knn.Knn(q, 50);
  EXPECT_EQ(results.size(), 4u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].distance, results[i - 1].distance);
  }
}

TEST(KnnQueryTest, ObjectInQueryPartition) {
  KnnEnv env = MakeBuildingSetup(10, 8);
  ObjectIndex index(env.tree, env.objects);
  KnnQuery knn(env.tree, index);
  // Query from exactly an object's partition: that object must be the 1NN
  // with (near) zero-ish distance.
  const IndoorPoint q = env.objects[3];
  const auto results = knn.Knn(q, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].distance, 0.0, 1e-9);
  EXPECT_EQ(results[0].object, 3);
}

TEST(KnnQueryTest, EmptyObjectSet) {
  KnnEnv env = MakeBuildingSetup(5, 9);
  ObjectIndex index(env.tree, {});
  KnnQuery knn(env.tree, index);
  Rng rng(902);
  const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
  EXPECT_TRUE(knn.Knn(q, 3).empty());
}

class RangePropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(RangePropertyTest, MatchesBruteForce) {
  const double radius = GetParam();
  KnnEnv env = MakeBuildingSetup(20, 43);
  ObjectIndex index(env.tree, env.objects);
  RangeQuery range(env.tree, index);

  Rng rng(903);
  for (int i = 0; i < 20; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
    const auto expected = testing::BruteAllObjectDistances(
        env.venue, env.graph, q, env.objects);
    size_t expected_count = 0;
    for (const auto& e : expected) {
      if (e.distance <= radius) ++expected_count;
    }
    const auto actual = range.Range(q, radius);
    EXPECT_EQ(actual.size(), expected_count) << "radius=" << radius;
    for (const auto& r : actual) {
      EXPECT_LE(r.distance, radius);
      EXPECT_NEAR(
          r.distance,
          testing::BruteDistance(env.venue, env.graph, q,
                                 env.objects[r.object]),
          1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, RangePropertyTest,
                         ::testing::Values(10.0, 50.0, 100.0, 1000.0));

TEST(KnnCampusTest, WorksAcrossBuildings) {
  KnnEnv env(synth::GenerateCampus(synth::MixedCampusConfig(4, 0.12, 44)),
              15, 45);
  ObjectIndex index(env.tree, env.objects);
  KnnQuery knn(env.tree, index);
  Rng rng(904);
  for (int i = 0; i < 10; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
    const auto expected = testing::BruteAllObjectDistances(
        env.venue, env.graph, q, env.objects);
    const auto actual = knn.Knn(q, 5);
    ASSERT_EQ(actual.size(), 5u);
    for (size_t j = 0; j < actual.size(); ++j) {
      EXPECT_NEAR(actual[j].distance, expected[j].distance, 1e-3);
    }
  }
}

TEST(ObjectIndexTest, SubtreeCountsAreConsistent) {
  KnnEnv env = MakeBuildingSetup(16, 46);
  ObjectIndex index(env.tree, env.objects);
  EXPECT_EQ(index.SubtreeCount(env.tree.node(env.tree.root())), 16u);
  size_t leaf_total = 0;
  for (const TreeNode& n : env.tree.nodes()) {
    if (n.is_leaf()) {
      leaf_total += index.ObjectsInLeaf(n.id).size();
      EXPECT_EQ(index.SubtreeCount(n), index.ObjectsInLeaf(n.id).size());
    }
  }
  EXPECT_EQ(leaf_total, 16u);
}

}  // namespace
}  // namespace viptree
