// Live-object-update differential sweep: for every seeded random venue,
// interleave ApplyObjectDelta publishes (moves, adds, tombstone removes)
// with kNN / range / boolean-kNN queries, re-deriving brute-force Dijkstra
// ground truth from a shadow object list after EVERY publish. The epoch
// machinery (core/live_objects.h) must never change an answer: a query
// against epoch E must match brute force over exactly the objects live at
// E — overlay entries at exact distances, tombstoned ids never reported,
// base CSR entries only while undiverged. Also sweeps the merge watermark
// (overlay -> rebuilt CSR), SetObjects full replacement, the save path's
// dense renumbering, and delta validation atomicity.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/live_objects.h"
#include "engine/query_engine.h"
#include "ground_truth.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

// Absolute + relative tolerance: the packed CSR goes through float leaf /
// extended matrices while brute force and the overlay accumulate in
// double, so answers agree to matrix precision, not bit-exactly.
double Tol(double reference) {
  return 1e-2 + std::abs(reference) * 1e-4;
}

// The shadow object set the ground truth is re-derived from: position and
// keywords per ever-allocated id, nullopt once removed. This mirrors what
// LiveObjectIndex::ApplyDelta is specified to do, independently.
struct Shadow {
  struct Entry {
    IndoorPoint point;
    std::vector<std::string> keywords;
  };
  std::vector<std::optional<Entry>> slots;

  size_t NumLive() const {
    size_t n = 0;
    for (const auto& s : slots) n += s.has_value() ? 1 : 0;
    return n;
  }

  // Live objects in id order, with the id of each dense row — brute-force
  // helpers take a dense vector, the engine reports original ids.
  void Flatten(std::vector<IndoorPoint>* points, std::vector<ObjectId>* ids,
               std::vector<std::vector<std::string>>* keywords) const {
    points->clear();
    ids->clear();
    keywords->clear();
    for (ObjectId id = 0; id < static_cast<ObjectId>(slots.size()); ++id) {
      if (!slots[id].has_value()) continue;
      points->push_back(slots[id]->point);
      ids->push_back(id);
      keywords->push_back(slots[id]->keywords);
    }
  }

  std::vector<ObjectId> LiveIds() const {
    std::vector<IndoorPoint> points;
    std::vector<ObjectId> ids;
    std::vector<std::vector<std::string>> keywords;
    Flatten(&points, &ids, &keywords);
    return ids;
  }
};

bool HasAllKeywords(const std::vector<std::string>& have,
                    const std::vector<std::string>& want) {
  for (const std::string& w : want) {
    if (std::find(have.begin(), have.end(), w) == have.end()) return false;
  }
  return true;
}

std::vector<std::vector<std::string>> TagObjects(size_t n) {
  std::vector<std::vector<std::string>> keywords(n);
  for (size_t i = 0; i < n; ++i) {
    keywords[i] = {"facility"};
    if (i % 2 == 0) keywords[i].push_back("red");
  }
  return keywords;
}

class UpdateDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  UpdateDifferentialTest()
      : venue_(testing::RandomSynthVenue(GetParam())), graph_(venue_) {}

  // A random valid delta against the shadow state: moves of live ids,
  // adds, and (sparingly) removes, never touching one id twice.
  ObjectDelta RandomDelta(const Shadow& shadow, Rng& rng,
                          bool with_keywords) {
    ObjectDelta delta;
    std::vector<ObjectId> live = shadow.LiveIds();
    const size_t ops = 1 + rng.UniformIndex(3);
    std::vector<ObjectId> touched;
    for (size_t i = 0; i < ops; ++i) {
      const double pick = rng.UniformReal(0.0, 1.0);
      if (pick < 0.55 && !live.empty()) {
        const ObjectId id = live[rng.UniformIndex(live.size())];
        if (std::find(touched.begin(), touched.end(), id) != touched.end()) {
          continue;
        }
        touched.push_back(id);
        delta.moves.push_back({id, synth::RandomIndoorPoint(venue_, rng)});
      } else if (pick < 0.85 || live.size() <= 2) {
        ObjectDelta::Add add;
        add.at = synth::RandomIndoorPoint(venue_, rng);
        if (with_keywords) {
          add.keywords = {"facility"};
          if (rng.Chance(0.5)) add.keywords.push_back("red");
        }
        delta.adds.push_back(add);
      } else {
        const ObjectId id = live[rng.UniformIndex(live.size())];
        if (std::find(touched.begin(), touched.end(), id) != touched.end()) {
          continue;
        }
        touched.push_back(id);
        delta.removes.push_back(id);
      }
    }
    return delta;
  }

  // Applies `delta` to the shadow exactly as ApplyDelta specifies: adds
  // allocate ids in submission order starting at the current slot count.
  static void ApplyToShadow(const ObjectDelta& delta, Shadow* shadow) {
    for (const auto& move : delta.moves) {
      ASSERT_TRUE(shadow->slots[move.id].has_value());
      shadow->slots[move.id]->point = move.to;
    }
    for (const ObjectId id : delta.removes) {
      ASSERT_TRUE(shadow->slots[id].has_value());
      shadow->slots[id].reset();
    }
    for (const auto& add : delta.adds) {
      shadow->slots.push_back(Shadow::Entry{add.at, add.keywords});
    }
  }

  Venue venue_;
  D2DGraph graph_;
};

// Checks one engine answer set against brute force over the shadow state:
// the distance sequence matches within Tol, every reported id is live, and
// ids diverge from brute force only under distance ties.
void ExpectMatchesBruteForce(const std::vector<ObjectResult>& actual,
                             const std::vector<testing::BruteResult>& brute,
                             const std::vector<ObjectId>& dense_to_id,
                             const Shadow& shadow, size_t expect_size,
                             const char* what, uint64_t seed, int round) {
  ASSERT_EQ(actual.size(), expect_size)
      << what << " seed " << seed << " round " << round;
  for (size_t j = 0; j < actual.size(); ++j) {
    EXPECT_NEAR(actual[j].distance, brute[j].distance,
                Tol(brute[j].distance))
        << what << " seed " << seed << " round " << round << " j=" << j;
    const ObjectId id = actual[j].object;
    ASSERT_LT(id, shadow.slots.size())
        << what << " seed " << seed << " round " << round;
    EXPECT_TRUE(shadow.slots[id].has_value())
        << what << " reported tombstoned id " << id << " seed " << seed
        << " round " << round;
    if (j > 0) {
      EXPECT_LE(actual[j - 1].distance, actual[j].distance + 1e-12)
          << what << " unsorted, seed " << seed << " round " << round;
    }
  }
  (void)dense_to_id;
}

TEST_P(UpdateDifferentialTest, InterleavedDeltasMatchBruteForce) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x11FE0B1);
  const std::vector<IndoorPoint> initial =
      synth::PlaceObjects(venue_, 10, rng);
  eng::EngineOptions options;
  options.object_keywords = TagObjects(initial.size());
  eng::QueryEngine engine(venue_, graph_, initial, options);

  Shadow shadow;
  for (size_t i = 0; i < initial.size(); ++i) {
    shadow.slots.push_back(
        Shadow::Entry{initial[i], options.object_keywords[i]});
  }

  uint64_t last_epoch = engine.bundle().live_objects().epoch();
  for (int round = 0; round < 8; ++round) {
    const ObjectDelta delta = RandomDelta(shadow, rng, /*with_keywords=*/true);
    const std::optional<std::string> error = engine.ApplyObjectDelta(delta);
    ASSERT_FALSE(error.has_value())
        << "seed " << seed << " round " << round << ": " << *error;
    ApplyToShadow(delta, &shadow);

    // Epochs are strictly monotonic across publishes.
    const uint64_t epoch = engine.bundle().live_objects().epoch();
    EXPECT_GT(epoch, last_epoch) << "seed " << seed << " round " << round;
    last_epoch = epoch;
    EXPECT_EQ(engine.bundle().live_objects().NumLiveObjects(),
              shadow.NumLive())
        << "seed " << seed << " round " << round;

    // Ground truth is re-derived from scratch against the new epoch.
    std::vector<IndoorPoint> live_points;
    std::vector<ObjectId> live_ids;
    std::vector<std::vector<std::string>> live_keywords;
    shadow.Flatten(&live_points, &live_ids, &live_keywords);
    const IndoorPoint q = synth::RandomIndoorPoint(venue_, rng);
    const auto all =
        testing::BruteAllObjectDistances(venue_, graph_, q, live_points);

    for (const size_t k : {1u, 3u}) {
      auto brute = all;
      if (brute.size() > k) brute.resize(k);
      const auto actual = engine.Run(eng::Query::Knn(q, k)).objects;
      ExpectMatchesBruteForce(actual, brute, live_ids, shadow,
                              std::min(k, live_points.size()), "knn", seed,
                              round);
    }

    // Range probes the middle of the distance distribution; skip rounds
    // where the cut is unreachable. Boundary ties are compared leniently
    // (strict interior must be present, nothing beyond radius+Tol).
    if (!all.empty() && all[all.size() / 2].distance != kInfDistance) {
      const double radius = all[all.size() / 2].distance;
      const auto actual = engine.Run(eng::Query::Range(q, radius)).objects;
      size_t strict = 0;
      for (const auto& r : all) {
        if (r.distance < radius - Tol(radius)) ++strict;
      }
      ASSERT_GE(actual.size(), strict)
          << "range seed " << seed << " round " << round;
      for (size_t j = 0; j < actual.size(); ++j) {
        EXPECT_LE(actual[j].distance, radius + Tol(radius))
            << "range seed " << seed << " round " << round;
        ASSERT_LT(actual[j].object, shadow.slots.size());
        EXPECT_TRUE(shadow.slots[actual[j].object].has_value())
            << "range reported tombstoned id, seed " << seed << " round "
            << round;
      }
    }

    // Boolean kNN against the brute-force keyword filter.
    for (const char* tag : {"facility", "red"}) {
      // Brute results carry dense indexes into live_points/live_keywords.
      std::vector<testing::BruteResult> brute;
      for (const auto& r : all) {
        if (HasAllKeywords(live_keywords[r.object], {tag})) {
          brute.push_back(r);
        }
      }
      const size_t k = 3;
      const size_t expect = std::min<size_t>(k, brute.size());
      if (brute.size() > k) brute.resize(k);
      const auto actual =
          engine.Run(eng::Query::BooleanKnn(q, k, {tag})).objects;
      ASSERT_EQ(actual.size(), expect)
          << "bknn(" << tag << ") seed " << seed << " round " << round;
      for (size_t j = 0; j < actual.size(); ++j) {
        EXPECT_NEAR(actual[j].distance, brute[j].distance,
                    Tol(brute[j].distance))
            << "bknn(" << tag << ") seed " << seed << " round " << round;
        const ObjectId id = actual[j].object;
        ASSERT_LT(id, shadow.slots.size());
        ASSERT_TRUE(shadow.slots[id].has_value());
        EXPECT_TRUE(HasAllKeywords(shadow.slots[id]->keywords, {tag}))
            << "bknn(" << tag << ") reported unmatching id " << id
            << " seed " << seed << " round " << round;
      }
    }
  }
}

// Drives the overlay across the merge watermark with a tiny
// LiveObjectIndex directly (QueryEngine keeps the production default):
// answers must be identical before and after the rebuild, epochs keep
// climbing, and the overlay genuinely drains.
TEST_P(UpdateDifferentialTest, MergeWatermarkRebuildKeepsAnswers) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x3E16E);
  const std::vector<IndoorPoint> initial =
      synth::PlaceObjects(venue_, 8, rng);
  const eng::QueryEngine engine(venue_, graph_, {});  // tree donor

  LiveObjectIndex::Options opts;
  opts.merge_watermark = 3;
  LiveObjectIndex live(engine.tree().base(), initial, {}, opts);

  Shadow shadow;
  for (const IndoorPoint& p : initial) {
    shadow.slots.push_back(Shadow::Entry{p, {}});
  }

  bool saw_merge = false;
  size_t max_overlay = 0;
  for (int round = 0; round < 12; ++round) {
    const ObjectDelta delta =
        RandomDelta(shadow, rng, /*with_keywords=*/false);
    ASSERT_FALSE(live.ApplyDelta(delta).has_value())
        << "seed " << seed << " round " << round;
    ApplyToShadow(delta, &shadow);

    const std::shared_ptr<const ObjectSnapshot> snap = live.Acquire();
    max_overlay = std::max(max_overlay, snap->overlay.size());
    if (snap->overlay.empty() && round > 0) saw_merge = true;
    // The merge triggers on the publish after the watermark is crossed,
    // so the overlay never exceeds watermark + max ops per delta.
    EXPECT_LE(snap->overlay.size(), opts.merge_watermark + 4)
        << "seed " << seed << " round " << round;
    EXPECT_EQ(snap->num_live, shadow.NumLive());

    std::vector<IndoorPoint> live_points;
    std::vector<ObjectId> live_ids;
    std::vector<std::vector<std::string>> live_keywords;
    shadow.Flatten(&live_points, &live_ids, &live_keywords);
    const IndoorPoint q = synth::RandomIndoorPoint(venue_, rng);
    const auto all =
        testing::BruteAllObjectDistances(venue_, graph_, q, live_points);

    const SnapshotQuery query(engine.tree().base(), snap);
    auto brute = all;
    if (brute.size() > 4) brute.resize(4);
    const auto actual = query.Knn(q, 4);
    ExpectMatchesBruteForce(actual, brute, live_ids, shadow,
                            std::min<size_t>(4, live_points.size()),
                            "merge-knn", seed, round);
  }
  // 12 rounds of 1-4 ops against watermark 3 must rebuild at least once.
  EXPECT_TRUE(saw_merge || max_overlay <= 3) << "seed " << seed;
}

// SetObjects replacement mid-stream: full rebuild, one epoch, overlay and
// tombstones gone, and answers match brute force over the new set only.
TEST_P(UpdateDifferentialTest, SetObjectsReplacesEverything) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x5E70B);
  const std::vector<IndoorPoint> initial =
      synth::PlaceObjects(venue_, 6, rng);
  eng::QueryEngine engine(venue_, graph_, initial);

  // Dirty the epoch state first: move an object, remove another.
  ObjectDelta delta;
  delta.moves.push_back({0, synth::RandomIndoorPoint(venue_, rng)});
  delta.removes.push_back(1);
  ASSERT_FALSE(engine.ApplyObjectDelta(delta).has_value()) << "seed " << seed;
  const uint64_t dirty_epoch = engine.bundle().live_objects().epoch();

  const std::vector<IndoorPoint> replacement =
      synth::PlaceObjects(venue_, 9, rng);
  engine.SetObjects(replacement);

  const std::shared_ptr<const ObjectSnapshot> snap =
      engine.bundle().live_objects().Acquire();
  EXPECT_GT(snap->epoch, dirty_epoch) << "seed " << seed;
  EXPECT_TRUE(snap->overlay.empty()) << "seed " << seed;
  EXPECT_TRUE(snap->removed.empty()) << "seed " << seed;
  EXPECT_EQ(snap->num_live, replacement.size()) << "seed " << seed;

  const IndoorPoint q = synth::RandomIndoorPoint(venue_, rng);
  const auto brute =
      testing::BruteKnn(venue_, graph_, q, replacement, 3);
  const auto actual = engine.Run(eng::Query::Knn(q, 3)).objects;
  ASSERT_EQ(actual.size(), std::min<size_t>(3, replacement.size()));
  for (size_t j = 0; j < actual.size(); ++j) {
    EXPECT_NEAR(actual[j].distance, brute[j].distance,
                Tol(brute[j].distance))
        << "seed " << seed << " j=" << j;
    // Replacement ids are dense again: 0..n-1.
    EXPECT_LT(actual[j].object, replacement.size()) << "seed " << seed;
  }
}

// Save after updates compacts tombstones away and renumbers densely; the
// loaded engine must answer like the live one (same distances, and ids in
// the dense range), with the load adopted as a fresh epoch-1 store that
// accepts further deltas.
TEST_P(UpdateDifferentialTest, SnapshotRoundTripAfterUpdates) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x54BE);
  const std::vector<IndoorPoint> initial =
      synth::PlaceObjects(venue_, 8, rng);
  eng::EngineOptions options;
  options.object_keywords = TagObjects(initial.size());
  eng::QueryEngine engine(venue_, graph_, initial, options);

  Shadow shadow;
  for (size_t i = 0; i < initial.size(); ++i) {
    shadow.slots.push_back(
        Shadow::Entry{initial[i], options.object_keywords[i]});
  }
  for (int round = 0; round < 4; ++round) {
    const ObjectDelta delta = RandomDelta(shadow, rng, /*with_keywords=*/true);
    ASSERT_FALSE(engine.ApplyObjectDelta(delta).has_value())
        << "seed " << seed << " round " << round;
    ApplyToShadow(delta, &shadow);
  }

  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  const std::string path = std::string(dir) + "/viptree_update_rt_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(seed) + ".vipsnap";
  ASSERT_TRUE(engine.Save(path).ok()) << "seed " << seed;
  std::string error;
  std::unique_ptr<eng::QueryEngine> loaded =
      eng::QueryEngine::TryLoad(path, &error);
  ASSERT_NE(loaded, nullptr) << "seed " << seed << ": " << error;
  std::remove(path.c_str());

  const size_t live_count = shadow.NumLive();
  EXPECT_EQ(loaded->objects().NumObjects(), live_count) << "seed " << seed;
  EXPECT_EQ(loaded->bundle().live_objects().epoch(), 1u) << "seed " << seed;

  for (int i = 0; i < 4; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(venue_, rng);
    const auto live_ans = engine.Run(eng::Query::Knn(q, 3)).objects;
    const auto loaded_ans = loaded->Run(eng::Query::Knn(q, 3)).objects;
    ASSERT_EQ(live_ans.size(), loaded_ans.size()) << "seed " << seed;
    for (size_t j = 0; j < live_ans.size(); ++j) {
      EXPECT_NEAR(loaded_ans[j].distance, live_ans[j].distance,
                  Tol(live_ans[j].distance))
          << "seed " << seed << " q" << i << " j=" << j;
      EXPECT_LT(loaded_ans[j].object, live_count)
          << "dense renumbering violated, seed " << seed;
    }
  }

  // The loaded store is live again: a further delta publishes epoch 2.
  ObjectDelta more;
  more.moves.push_back({0, synth::RandomIndoorPoint(venue_, rng)});
  EXPECT_FALSE(loaded->ApplyObjectDelta(more).has_value()) << "seed " << seed;
  EXPECT_EQ(loaded->bundle().live_objects().epoch(), 2u) << "seed " << seed;
}

// Invalid deltas are rejected atomically: an error back, no epoch bump, no
// partial application — even when the bad operation is last in the batch.
TEST_P(UpdateDifferentialTest, InvalidDeltasRejectedAtomically) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xBAD);
  const std::vector<IndoorPoint> initial =
      synth::PlaceObjects(venue_, 5, rng);
  eng::QueryEngine engine(venue_, graph_, initial);  // keywordless
  const uint64_t epoch0 = engine.bundle().live_objects().epoch();
  const IndoorPoint q = synth::RandomIndoorPoint(venue_, rng);
  const auto before = engine.Run(eng::Query::Knn(q, 3)).objects;

  const IndoorPoint valid_to = synth::RandomIndoorPoint(venue_, rng);
  IndoorPoint bad_partition = valid_to;
  bad_partition.partition =
      static_cast<PartitionId>(venue_.NumPartitions() + 7);

  std::vector<ObjectDelta> bad;
  {  // unknown id
    ObjectDelta d;
    d.moves.push_back({static_cast<ObjectId>(initial.size() + 3), valid_to});
    bad.push_back(d);
  }
  {  // valid move first, then an out-of-range partition: nothing applies
    ObjectDelta d;
    d.moves.push_back({0, valid_to});
    d.moves.push_back({1, bad_partition});
    bad.push_back(d);
  }
  {  // same id removed twice in one delta
    ObjectDelta d;
    d.removes = {2, 2};
    bad.push_back(d);
  }
  {  // move + remove of the same id in one delta
    ObjectDelta d;
    d.moves.push_back({3, valid_to});
    d.removes.push_back(3);
    bad.push_back(d);
  }
  {  // keyworded add on a venue without a keyword index
    ObjectDelta d;
    ObjectDelta::Add add;
    add.at = valid_to;
    add.keywords = {"tag"};
    d.adds.push_back(add);
    bad.push_back(d);
  }
  {  // add placed in a nonexistent partition
    ObjectDelta d;
    ObjectDelta::Add add;
    add.at = bad_partition;
    d.adds.push_back(add);
    bad.push_back(d);
  }

  for (size_t i = 0; i < bad.size(); ++i) {
    const std::optional<std::string> error = engine.ApplyObjectDelta(bad[i]);
    EXPECT_TRUE(error.has_value()) << "bad delta " << i << " accepted, seed "
                                   << seed;
    EXPECT_EQ(engine.bundle().live_objects().epoch(), epoch0)
        << "bad delta " << i << " published, seed " << seed;
  }

  // Answers are bit-identical to before the rejected deltas: same epoch,
  // same snapshot, same code path.
  const auto after = engine.Run(eng::Query::Knn(q, 3)).objects;
  ASSERT_EQ(after.size(), before.size()) << "seed " << seed;
  for (size_t j = 0; j < after.size(); ++j) {
    EXPECT_EQ(after[j].object, before[j].object) << "seed " << seed;
    EXPECT_EQ(after[j].distance, before[j].distance) << "seed " << seed;
  }

  // Removing an already-tombstoned id fails on the second attempt.
  ObjectDelta remove4;
  remove4.removes = {4};
  ASSERT_FALSE(engine.ApplyObjectDelta(remove4).has_value()) << "seed " << seed;
  EXPECT_TRUE(engine.ApplyObjectDelta(remove4).has_value()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateDifferentialTest,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace viptree
