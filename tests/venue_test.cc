#include "model/venue.h"

#include <gtest/gtest.h>

#include "model/venue_builder.h"
#include "paper_example.h"

namespace viptree {
namespace {

TEST(VenueBuilderTest, RejectsEmptyVenue) {
  VenueBuilder builder;
  ASSERT_TRUE(builder.Validate().has_value());
}

TEST(VenueBuilderTest, RejectsPartitionWithoutDoor) {
  VenueBuilder builder;
  builder.AddPartition(0, PartitionUse::kRoom, Point{});
  ASSERT_TRUE(builder.Validate().has_value());
  EXPECT_NE(builder.Validate()->find("has no door"), std::string::npos);
}

TEST(VenueBuilderTest, RejectsDisconnectedVenue) {
  VenueBuilder builder;
  const PartitionId a = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId b = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId c = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId d = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  builder.AddDoor(a, b, Point{});
  builder.AddDoor(c, d, Point{});
  ASSERT_TRUE(builder.Validate().has_value());
  EXPECT_NE(builder.Validate()->find("not connected"), std::string::npos);
}

TEST(VenueBuilderTest, AcceptsMinimalConnectedVenue) {
  VenueBuilder builder;
  const PartitionId a = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId b = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  builder.AddDoor(a, b, Point{});
  EXPECT_FALSE(builder.Validate().has_value());
  const Venue venue = std::move(builder).Build();
  EXPECT_EQ(venue.NumPartitions(), 2u);
  EXPECT_EQ(venue.NumDoors(), 1u);
  EXPECT_TRUE(venue.IsConnected());
}

TEST(VenueBuilderTest, ExteriorDoorBelongsToOnePartition) {
  VenueBuilder builder;
  const PartitionId a = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId b = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  builder.AddDoor(a, b, Point{});
  const DoorId exit = builder.AddExteriorDoor(a, Point{1, 0, 0});
  const Venue venue = std::move(builder).Build();
  EXPECT_TRUE(venue.door(exit).is_exterior());
  EXPECT_EQ(venue.OtherSide(exit, a), kInvalidId);
  ASSERT_EQ(venue.DoorsOf(a).size(), 2u);
  ASSERT_EQ(venue.DoorsOf(b).size(), 1u);
}

TEST(VenueTest, ClassificationFollowsDoorCountAndBeta) {
  VenueBuilder builder(/*beta=*/4);
  const PartitionId hallway =
      builder.AddPartition(0, PartitionUse::kCorridor, Point{});
  std::vector<PartitionId> rooms;
  for (int i = 0; i < 5; ++i) {
    rooms.push_back(builder.AddPartition(0, PartitionUse::kRoom, Point{}));
    builder.AddDoor(hallway, rooms.back(),
                    Point{static_cast<double>(i), 0, 0});
  }
  // Give one room a second door so it is "general".
  builder.AddDoor(rooms[0], rooms[1], Point{0.5, 1, 0});
  const Venue venue = std::move(builder).Build();

  EXPECT_EQ(venue.Classify(hallway), PartitionClass::kHallway);  // 5 > 4
  EXPECT_EQ(venue.Classify(rooms[0]), PartitionClass::kGeneral);
  EXPECT_EQ(venue.Classify(rooms[1]), PartitionClass::kGeneral);
  EXPECT_EQ(venue.Classify(rooms[2]), PartitionClass::kNoThrough);
}

TEST(VenueTest, AdjacencyAndOtherSide) {
  VenueBuilder builder;
  const PartitionId a = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId b = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId c = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const DoorId ab = builder.AddDoor(a, b, Point{});
  builder.AddDoor(b, c, Point{});
  const Venue venue = std::move(builder).Build();

  EXPECT_TRUE(venue.Adjacent(a, b));
  EXPECT_TRUE(venue.Adjacent(b, c));
  EXPECT_FALSE(venue.Adjacent(a, c));
  EXPECT_EQ(venue.OtherSide(ab, a), b);
  EXPECT_EQ(venue.OtherSide(ab, b), a);
  EXPECT_TRUE(venue.DoorTouches(ab, a));
  EXPECT_FALSE(venue.DoorTouches(ab, c));
}

TEST(VenueTest, IntraPartitionDistanceUsesCostScale) {
  VenueBuilder builder;
  const PartitionId stair = builder.AddPartition(
      0, PartitionUse::kStaircase, Point{}, "stair", /*cost_scale=*/2.0);
  const PartitionId room = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  builder.AddDoor(stair, room, Point{});
  const Venue venue = std::move(builder).Build();

  const Point p0{0, 0, 0};
  const Point p1{3, 4, 0};
  EXPECT_DOUBLE_EQ(venue.IntraPartitionDistance(stair, p0, p1), 10.0);
  EXPECT_DOUBLE_EQ(venue.IntraPartitionDistance(room, p0, p1), 5.0);
}

TEST(PaperExampleTest, MatchesPaperTaxonomy) {
  const testing::PaperExample example = testing::MakePaperExample();
  const Venue& venue = example.venue;
  ASSERT_EQ(venue.NumPartitions(), 17u);
  ASSERT_EQ(venue.NumDoors(), 20u);
  EXPECT_TRUE(venue.IsConnected());

  // "partitions P1, P5, P12 and P17 are the hallway partitions" (§2).
  for (int i = 1; i <= 17; ++i) {
    const PartitionClass c = venue.Classify(testing::P(i));
    if (i == 1 || i == 5 || i == 12 || i == 17) {
      EXPECT_EQ(c, PartitionClass::kHallway) << "P" << i;
    } else {
      EXPECT_NE(c, PartitionClass::kHallway) << "P" << i;
    }
  }
  // "partitions P2, P9 and P10 ... no-through" (§2).
  EXPECT_EQ(venue.Classify(testing::P(2)), PartitionClass::kNoThrough);
  EXPECT_EQ(venue.Classify(testing::P(9)), PartitionClass::kNoThrough);
  EXPECT_EQ(venue.Classify(testing::P(10)), PartitionClass::kNoThrough);

  // d1, d7, d20 are venue entrances.
  EXPECT_TRUE(venue.door(testing::D(1)).is_exterior());
  EXPECT_TRUE(venue.door(testing::D(7)).is_exterior());
  EXPECT_TRUE(venue.door(testing::D(20)).is_exterior());
}

}  // namespace
}  // namespace viptree
