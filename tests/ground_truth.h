// Brute-force reference implementations used by property tests: exact
// point-to-point distances via multi-source Dijkstra on the D2D graph,
// brute-force kNN / range, door-path validation, and the randomized
// synthetic venues the differential / invariant sweeps run against.

#ifndef VIPTREE_TESTS_GROUND_TRUTH_H_
#define VIPTREE_TESTS_GROUND_TRUTH_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/d2d_graph.h"
#include "graph/dijkstra.h"
#include "model/venue.h"
#include "synth/random_venue.h"

namespace viptree {
namespace testing {

inline double BruteDistance(const Venue& venue, const D2DGraph& graph,
                            const IndoorPoint& s, const IndoorPoint& t) {
  double best = kInfDistance;
  if (s.partition == t.partition) {
    best = venue.IntraPartitionDistance(s.partition, s.position, t.position);
  }
  std::vector<DijkstraSource> sources;
  for (DoorId u : venue.DoorsOf(s.partition)) {
    sources.push_back({u, venue.DistanceToDoor(s, u)});
  }
  DijkstraEngine engine(graph);
  engine.Start(sources);
  engine.RunAll();
  for (DoorId dt : venue.DoorsOf(t.partition)) {
    if (!engine.Settled(dt)) continue;
    best =
        std::min(best, engine.DistanceTo(dt) + venue.DistanceToDoor(t, dt));
  }
  return best;
}

struct BruteResult {
  ObjectId object;
  double distance;
};

inline std::vector<BruteResult> BruteAllObjectDistances(
    const Venue& venue, const D2DGraph& graph, const IndoorPoint& q,
    const std::vector<IndoorPoint>& objects) {
  std::vector<BruteResult> out;
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects.size()); ++o) {
    out.push_back({o, BruteDistance(venue, graph, q, objects[o])});
  }
  // Ties break on the lower object id so the order is deterministic.
  std::sort(out.begin(), out.end(),
            [](const BruteResult& a, const BruteResult& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.object < b.object;
            });
  return out;
}

// The k nearest objects by brute force (ascending by distance; ties keep
// the lower object id).
inline std::vector<BruteResult> BruteKnn(
    const Venue& venue, const D2DGraph& graph, const IndoorPoint& q,
    const std::vector<IndoorPoint>& objects, size_t k) {
  std::vector<BruteResult> all =
      BruteAllObjectDistances(venue, graph, q, objects);
  if (all.size() > k) all.resize(k);
  return all;
}

// All objects within `radius`, ascending by distance.
inline std::vector<BruteResult> BruteRange(
    const Venue& venue, const D2DGraph& graph, const IndoorPoint& q,
    const std::vector<IndoorPoint>& objects, double radius) {
  std::vector<BruteResult> all =
      BruteAllObjectDistances(venue, graph, q, objects);
  all.erase(std::remove_if(all.begin(), all.end(),
                           [radius](const BruteResult& r) {
                             return r.distance > radius;
                           }),
            all.end());
  return all;
}

// A randomized small venue for differential testing (now shared with the
// viptree_build CLI via synth::RandomVenue; kept as an alias so the test
// sweeps read naturally).
inline Venue RandomSynthVenue(uint64_t seed) {
  return synth::RandomVenue(seed);
}

// Sum of edge weights along a door path (using the cheapest parallel edge
// for each consecutive pair); kInfDistance if two consecutive doors are not
// connected. Endpoints' point legs are not included.
inline double DoorPathLength(const D2DGraph& graph,
                             const std::vector<DoorId>& doors) {
  double total = 0.0;
  for (size_t i = 0; i + 1 < doors.size(); ++i) {
    double best = kInfDistance;
    for (const D2DEdge& e : graph.EdgesOf(doors[i])) {
      if (e.to == doors[i + 1]) best = std::min(best, (double)e.weight);
    }
    if (best == kInfDistance) return kInfDistance;
    total += best;
  }
  return total;
}

// Full length of a point-to-point route through `doors`.
inline double PointPathLength(const Venue& venue, const D2DGraph& graph,
                              const IndoorPoint& s, const IndoorPoint& t,
                              const std::vector<DoorId>& doors) {
  if (doors.empty()) {
    return venue.IntraPartitionDistance(s.partition, s.position, t.position);
  }
  return venue.DistanceToDoor(s, doors.front()) +
         DoorPathLength(graph, doors) + venue.DistanceToDoor(t, doors.back());
}

}  // namespace testing
}  // namespace viptree

#endif  // VIPTREE_TESTS_GROUND_TRUTH_H_
