// Tests for the §1.3 spatial keyword extension: boolean keyword kNN against
// brute force over a labelled object set.

#include "core/keyword_query.h"

#include <gtest/gtest.h>

#include "ground_truth.h"
#include "synth/building_generator.h"
#include "synth/objects.h"

namespace viptree {
namespace {

struct LabelledEnv {
  Venue venue;
  D2DGraph graph;
  IPTree tree;
  std::vector<IndoorPoint> objects;
  std::vector<std::vector<std::string>> keywords;

  LabelledEnv()
      : venue([] {
          synth::BuildingConfig cfg;
          cfg.floors = 4;
          cfg.rooms_per_floor = 24;
          cfg.staircases = 2;
          return synth::GenerateStandaloneBuilding(cfg, 600);
        }()),
        graph(venue),
        tree(IPTree::Build(venue, graph)) {
    Rng rng(601);
    objects = synth::PlaceObjects(venue, 16, rng);
    // Deterministic label mix: cafes, atms, printers; some accessible.
    const std::vector<std::string> kinds = {"cafe", "atm", "printer"};
    for (size_t o = 0; o < objects.size(); ++o) {
      std::vector<std::string> words = {kinds[o % kinds.size()]};
      if (o % 2 == 0) words.push_back("accessible");
      keywords.push_back(words);
    }
  }
};

std::vector<ObjectId> BruteKeywordKnn(
    const LabelledEnv& env, const IndoorPoint& q, size_t k,
    const std::vector<std::string>& query) {
  std::vector<std::pair<double, ObjectId>> matches;
  for (ObjectId o = 0; o < static_cast<ObjectId>(env.objects.size()); ++o) {
    bool all = true;
    for (const std::string& w : query) {
      if (std::find(env.keywords[o].begin(), env.keywords[o].end(), w) ==
          env.keywords[o].end()) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    matches.emplace_back(
        testing::BruteDistance(env.venue, env.graph, q, env.objects[o]), o);
  }
  std::sort(matches.begin(), matches.end());
  std::vector<ObjectId> ids;
  for (size_t i = 0; i < std::min(k, matches.size()); ++i) {
    ids.push_back(matches[i].second);
  }
  return ids;
}

class KeywordQueryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(KeywordQueryTest, BooleanKnnMatchesBruteForce) {
  LabelledEnv env;
  const ObjectIndex index(env.tree, env.objects);
  KeywordIndex keyword_index(env.tree, index, env.keywords);
  const std::vector<std::string> query = {GetParam()};

  Rng rng(602);
  for (int i = 0; i < 15; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
    const auto expected = BruteKeywordKnn(env, q, 3, query);
    const auto actual = keyword_index.BooleanKnn(q, 3, query);
    ASSERT_EQ(actual.size(), expected.size()) << GetParam();
    for (size_t j = 0; j < actual.size(); ++j) {
      EXPECT_NEAR(
          actual[j].distance,
          testing::BruteDistance(env.venue, env.graph, q,
                                 env.objects[expected[j]]),
          1e-3);
      // All results must carry the keyword.
      const auto& words = env.keywords[actual[j].object];
      EXPECT_NE(std::find(words.begin(), words.end(), GetParam()),
                words.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Words, KeywordQueryTest,
                         ::testing::Values("cafe", "atm", "printer",
                                           "accessible"));

TEST(KeywordQueryTest, ConjunctiveQuery) {
  LabelledEnv env;
  const ObjectIndex index(env.tree, env.objects);
  KeywordIndex keyword_index(env.tree, index, env.keywords);
  Rng rng(603);
  const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
  // "accessible cafe" = the paper's motivating "accessible toilets" query.
  const auto results =
      keyword_index.BooleanKnn(q, 5, {"cafe", "accessible"});
  const auto expected = BruteKeywordKnn(env, q, 5, {"cafe", "accessible"});
  ASSERT_EQ(results.size(), expected.size());
  for (const ObjectResult& r : results) {
    const auto& words = env.keywords[r.object];
    EXPECT_NE(std::find(words.begin(), words.end(), "cafe"), words.end());
    EXPECT_NE(std::find(words.begin(), words.end(), "accessible"),
              words.end());
  }
}

TEST(KeywordQueryTest, UnknownKeywordReturnsEmpty) {
  LabelledEnv env;
  const ObjectIndex index(env.tree, env.objects);
  KeywordIndex keyword_index(env.tree, index, env.keywords);
  Rng rng(604);
  const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
  EXPECT_TRUE(keyword_index.BooleanKnn(q, 3, {"helipad"}).empty());
}

TEST(KeywordQueryTest, EmptyQueryIsPlainKnn) {
  LabelledEnv env;
  const ObjectIndex index(env.tree, env.objects);
  KeywordIndex keyword_index(env.tree, index, env.keywords);
  KnnQuery plain(env.tree, index);
  Rng rng(605);
  const IndoorPoint q = synth::RandomIndoorPoint(env.venue, rng);
  const auto with = keyword_index.BooleanKnn(q, 4, {});
  const auto without = plain.Knn(q, 4);
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_DOUBLE_EQ(with[i].distance, without[i].distance);
  }
}

}  // namespace
}  // namespace viptree
