// engine::VenueRegistry: manifest parsing, lazy zero-copy loading, bundle
// sharing and eviction — the multi-venue serving layer (one process, a
// fleet of venues, O(resident-pages) per venue until queried).

#include "engine/venue_registry.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "synth/objects.h"
#include "synth/random_venue.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

// A per-process scratch directory holding the manifest and snapshots, so
// relative-path resolution against the manifest directory is exercised.
class RegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const char* tmp = std::getenv("TMPDIR");
    if (tmp == nullptr || tmp[0] == '\0') tmp = "/tmp";
    dir_ = new std::string(std::string(tmp) + "/viptree_registry_test_" +
                           std::to_string(::getpid()));
    ::mkdir(dir_->c_str(), 0755);

    // Three venues, one with keywords, registered under relative paths.
    for (const uint64_t seed : {uint64_t{3}, uint64_t{8}, uint64_t{11}}) {
      Venue venue = synth::RandomVenue(seed);
      Rng rng(seed);
      std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 6, rng);
      eng::EngineOptions options;
      if (seed == 8) options.object_keywords.assign(objects.size(), {"cafe"});
      const eng::VenueBundle bundle = eng::VenueBundle::Build(
          std::move(venue), std::move(objects), std::move(options));
      const std::string name = "venue-" + std::to_string(seed) + ".vipsnap";
      ASSERT_TRUE(bundle.Save(*dir_ + "/" + name).ok());
      ASSERT_TRUE(eng::VenueRegistry::UpsertManifestEntry(
                      Manifest(), "venue-" + std::to_string(seed), name)
                      .ok());
    }
  }

  static void TearDownTestSuite() {
    for (const char* name :
         {"venue-3.vipsnap", "venue-8.vipsnap", "venue-11.vipsnap"}) {
      std::remove((*dir_ + "/" + name).c_str());
    }
    std::remove(Manifest().c_str());
    ::rmdir(dir_->c_str());
    delete dir_;
    dir_ = nullptr;
  }

  static std::string Manifest() { return *dir_ + "/registry.txt"; }

  static std::string* dir_;
};

std::string* RegistryTest::dir_ = nullptr;

TEST_F(RegistryTest, OpensManifestAndListsVenues) {
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(Manifest(), &error);
  ASSERT_TRUE(registry.has_value()) << error;
  EXPECT_EQ(registry->NumVenues(), 3u);
  EXPECT_TRUE(registry->Contains("venue-3"));
  EXPECT_TRUE(registry->Contains("venue-8"));
  EXPECT_TRUE(registry->Contains("venue-11"));
  EXPECT_FALSE(registry->Contains("venue-404"));
  const std::vector<std::string> ids = registry->VenueIds();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], "venue-3");
  EXPECT_EQ(ids[1], "venue-8");
  EXPECT_EQ(ids[2], "venue-11");
  // Nothing is loaded until Acquire.
  EXPECT_EQ(registry->NumResident(), 0u);
  EXPECT_EQ(registry->ResidentIndexBytes(), 0u);
  EXPECT_FALSE(registry->IsResident("venue-3"));
  EXPECT_FALSE(registry->IsResident("venue-404"));
}

TEST_F(RegistryTest, AcquireLoadsLazilyAndShares) {
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(Manifest(), &error);
  ASSERT_TRUE(registry.has_value()) << error;

  const std::shared_ptr<const eng::VenueBundle> a =
      registry->Acquire("venue-3", &error);
  ASSERT_NE(a, nullptr) << error;
  EXPECT_TRUE(a->zero_copy());  // v2 snapshot => mmap-backed
  EXPECT_EQ(registry->NumResident(), 1u);
  EXPECT_GT(registry->ResidentIndexBytes(), 0u);

  // A second Acquire returns the *same* shared bundle, not a second copy.
  const std::shared_ptr<const eng::VenueBundle> b =
      registry->Acquire("venue-3", &error);
  EXPECT_EQ(a.get(), b.get());

  const std::shared_ptr<const eng::VenueBundle> other =
      registry->Acquire("venue-8", &error);
  ASSERT_NE(other, nullptr) << error;
  EXPECT_NE(other.get(), a.get());
  EXPECT_TRUE(other->has_keywords());
  EXPECT_EQ(registry->NumResident(), 2u);
}

TEST_F(RegistryTest, EvictionDropsTheCacheButNotOutstandingRefs) {
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(Manifest(), &error);
  ASSERT_TRUE(registry.has_value()) << error;

  std::shared_ptr<const eng::VenueBundle> held =
      registry->Acquire("venue-3", &error);
  ASSERT_NE(held, nullptr) << error;
  registry->Evict("venue-3");
  EXPECT_EQ(registry->NumResident(), 0u);
  // The held bundle stays fully usable (shared ownership).
  EXPECT_GT(held->venue().NumDoors(), 0u);

  // Re-acquire maps the snapshot afresh.
  const std::shared_ptr<const eng::VenueBundle> fresh =
      registry->Acquire("venue-3", &error);
  ASSERT_NE(fresh, nullptr) << error;
  EXPECT_NE(fresh.get(), held.get());
  registry->Evict("venue-404");  // unknown id: no-op
}

TEST_F(RegistryTest, LruEvictionCapsResidentVenues) {
  std::string error;
  eng::RegistryOptions options;
  options.max_resident_venues = 2;
  std::optional<eng::VenueRegistry> registry = eng::VenueRegistry::Open(
      Manifest(), &error, eng::VenueBundle::LoadOptions{}, options);
  ASSERT_TRUE(registry.has_value()) << error;

  const std::shared_ptr<const eng::VenueBundle> a =
      registry->Acquire("venue-3", &error);
  ASSERT_NE(a, nullptr) << error;
  const std::shared_ptr<const eng::VenueBundle> b =
      registry->Acquire("venue-8", &error);
  ASSERT_NE(b, nullptr) << error;
  EXPECT_EQ(registry->NumResident(), 2u);

  // Touch venue-3 so venue-8 becomes the least recently acquired; loading
  // the third venue must evict venue-8, not venue-3.
  ASSERT_NE(registry->Acquire("venue-3", &error), nullptr);
  const std::shared_ptr<const eng::VenueBundle> c =
      registry->Acquire("venue-11", &error);
  ASSERT_NE(c, nullptr) << error;
  EXPECT_EQ(registry->NumResident(), 2u);
  EXPECT_TRUE(registry->IsResident("venue-3"));
  EXPECT_FALSE(registry->IsResident("venue-8"));
  EXPECT_TRUE(registry->IsResident("venue-11"));

  // The evicted bundle stays fully usable for existing holders, and a
  // re-Acquire reloads it — displacing the new LRU victim (venue-3).
  EXPECT_GT(b->venue().NumDoors(), 0u);
  const std::shared_ptr<const eng::VenueBundle> b2 =
      registry->Acquire("venue-8", &error);
  ASSERT_NE(b2, nullptr) << error;
  EXPECT_NE(b2.get(), b.get());
  EXPECT_EQ(registry->NumResident(), 2u);
  EXPECT_FALSE(registry->IsResident("venue-3"));
  EXPECT_TRUE(registry->IsResident("venue-8"));
  EXPECT_TRUE(registry->IsResident("venue-11"));
}

TEST_F(RegistryTest, ConcurrentAcquiresShareOneLoadPerVenue) {
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(Manifest(), &error);
  ASSERT_TRUE(registry.has_value()) << error;

  // Hammer all three venues from several threads at once: every thread
  // must observe the same bundle instance per venue (per-entry locking
  // collapses concurrent first-touch loads into one), and loads of
  // different venues proceed independently.
  const std::vector<std::string> ids = registry->VenueIds();
  std::vector<std::vector<std::shared_ptr<const eng::VenueBundle>>> seen(6);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 4; ++round) {
        for (const std::string& id : ids) {
          std::string thread_error;
          seen[t].push_back(registry->Acquire(id, &thread_error));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry->NumResident(), ids.size());
  for (size_t v = 0; v < ids.size(); ++v) {
    const std::shared_ptr<const eng::VenueBundle> reference =
        registry->Acquire(ids[v], &error);
    ASSERT_NE(reference, nullptr) << error;
    for (const auto& per_thread : seen) {
      for (size_t i = v; i < per_thread.size(); i += ids.size()) {
        ASSERT_NE(per_thread[i], nullptr);
        EXPECT_EQ(per_thread[i].get(), reference.get());
      }
    }
  }
}

TEST_F(RegistryTest, RegistryBundleAnswersIdenticallyToDirectLoad) {
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(Manifest(), &error);
  ASSERT_TRUE(registry.has_value()) << error;
  const std::shared_ptr<const eng::VenueBundle> shared =
      registry->Acquire("venue-8", &error);
  ASSERT_NE(shared, nullptr) << error;

  // Engine over the shared bundle vs engine over a direct load.
  const eng::QueryEngine via_registry(shared);
  const std::unique_ptr<eng::QueryEngine> direct =
      eng::QueryEngine::TryLoad(*dir_ + "/venue-8.vipsnap", &error);
  ASSERT_NE(direct, nullptr) << error;

  Rng rng(99);
  std::vector<eng::Query> queries;
  for (int i = 0; i < 24; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(shared->venue(), rng);
    const IndoorPoint b = synth::RandomIndoorPoint(shared->venue(), rng);
    switch (i % 4) {
      case 0: queries.push_back(eng::Query::Distance(a, b)); break;
      case 1: queries.push_back(eng::Query::Path(a, b)); break;
      case 2: queries.push_back(eng::Query::Knn(a, 3)); break;
      default: queries.push_back(eng::Query::Range(a, 150.0)); break;
    }
  }
  const std::vector<eng::Result> lhs = via_registry.RunSequential(queries);
  const std::vector<eng::Result> rhs = direct->RunSequential(queries);
  ASSERT_EQ(lhs.size(), rhs.size());
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].distance, rhs[i].distance) << "query " << i;
    EXPECT_EQ(lhs[i].doors, rhs[i].doors) << "query " << i;
    ASSERT_EQ(lhs[i].objects.size(), rhs[i].objects.size()) << "query " << i;
    for (size_t j = 0; j < lhs[i].objects.size(); ++j) {
      EXPECT_EQ(lhs[i].objects[j].object, rhs[i].objects[j].object);
      EXPECT_EQ(lhs[i].objects[j].distance, rhs[i].objects[j].distance);
    }
  }
}

TEST_F(RegistryTest, UnknownVenueAndBrokenSnapshotReportErrors) {
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(Manifest(), &error);
  ASSERT_TRUE(registry.has_value()) << error;

  EXPECT_EQ(registry->Acquire("venue-404", &error), nullptr);
  EXPECT_NE(error.find("not in the registry"), std::string::npos) << error;

  // An entry whose snapshot is missing on disk: Open succeeds (lazy),
  // Acquire reports the underlying load error.
  ASSERT_TRUE(eng::VenueRegistry::UpsertManifestEntry(Manifest(), "ghost",
                                                      "missing.vipsnap")
                  .ok());
  std::optional<eng::VenueRegistry> reopened =
      eng::VenueRegistry::Open(Manifest(), &error);
  ASSERT_TRUE(reopened.has_value()) << error;
  EXPECT_EQ(reopened->Acquire("ghost", &error), nullptr);
  EXPECT_NE(error.find("ghost"), std::string::npos) << error;
}

TEST_F(RegistryTest, ManifestErrorsAreReported) {
  std::string error;
  EXPECT_FALSE(eng::VenueRegistry::Open(*dir_ + "/nope.txt", &error)
                   .has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

  // A line with an id but no path.
  const std::string bad = *dir_ + "/bad.txt";
  const std::string contents = "venue-a a.vipsnap\nvenue-b\n";
  ASSERT_TRUE(io::WriteFileBytes(
                  bad, {reinterpret_cast<const uint8_t*>(contents.data()),
                        contents.size()})
                  .ok());
  EXPECT_FALSE(eng::VenueRegistry::Open(bad, &error).has_value());
  EXPECT_NE(error.find("no snapshot path"), std::string::npos) << error;

  // Duplicate ids.
  const std::string dup_contents = "v x.vipsnap\nv y.vipsnap\n";
  ASSERT_TRUE(
      io::WriteFileBytes(bad, {reinterpret_cast<const uint8_t*>(
                                   dup_contents.data()),
                               dup_contents.size()})
          .ok());
  EXPECT_FALSE(eng::VenueRegistry::Open(bad, &error).has_value());
  EXPECT_NE(error.find("twice"), std::string::npos) << error;
  std::remove(bad.c_str());

  // Invalid venue id for Upsert.
  EXPECT_FALSE(eng::VenueRegistry::UpsertManifestEntry(bad, "has space",
                                                       "x.vipsnap")
                   .ok());
}

TEST(ManifestRelativePathTest, StoresRelocatableOrAbsolutePaths) {
  using eng::VenueRegistry;
  // Snapshot under the manifest's directory: stored manifest-relative,
  // including when either path spells the directory with "./".
  EXPECT_EQ(VenueRegistry::ManifestRelativePath("fleet/registry.txt",
                                                "fleet/mc.vipsnap"),
            "mc.vipsnap");
  EXPECT_EQ(VenueRegistry::ManifestRelativePath("fleet/registry.txt",
                                                "./fleet/mc.vipsnap"),
            "mc.vipsnap");
  EXPECT_EQ(VenueRegistry::ManifestRelativePath("./fleet/registry.txt",
                                                "fleet/./mc.vipsnap"),
            "mc.vipsnap");
  EXPECT_EQ(VenueRegistry::ManifestRelativePath("fleet/registry.txt",
                                                "fleet/sub/mc.vipsnap"),
            "sub/mc.vipsnap");
  // Manifest in the current directory: a relative snapshot path is already
  // manifest-relative.
  EXPECT_EQ(VenueRegistry::ManifestRelativePath("registry.txt",
                                                "mc.vipsnap"),
            "mc.vipsnap");
  // Absolute snapshot paths are stored verbatim.
  EXPECT_EQ(VenueRegistry::ManifestRelativePath("fleet/registry.txt",
                                                "/data/mc.vipsnap"),
            "/data/mc.vipsnap");
}

TEST_F(RegistryTest, UpsertRefusesNothingButMissingManifestsStartEmpty) {
  // Upsert into a directory path must fail (unreadable manifest), never
  // silently rewrite it from scratch.
  EXPECT_FALSE(
      eng::VenueRegistry::UpsertManifestEntry(*dir_, "v", "x.vipsnap").ok());
}

TEST_F(RegistryTest, UpsertReplacesExistingEntries) {
  const std::string manifest = *dir_ + "/upsert.txt";
  ASSERT_TRUE(
      eng::VenueRegistry::UpsertManifestEntry(manifest, "a", "one.vipsnap")
          .ok());
  ASSERT_TRUE(
      eng::VenueRegistry::UpsertManifestEntry(manifest, "b", "two.vipsnap")
          .ok());
  ASSERT_TRUE(
      eng::VenueRegistry::UpsertManifestEntry(manifest, "a", "three.vipsnap")
          .ok());
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(manifest, &error);
  ASSERT_TRUE(registry.has_value()) << error;
  EXPECT_EQ(registry->NumVenues(), 2u);
  // The replaced entry keeps its original position.
  const std::vector<std::string> ids = registry->VenueIds();
  EXPECT_EQ(ids[0], "a");
  EXPECT_EQ(ids[1], "b");
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace viptree
