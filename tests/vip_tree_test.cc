// VIP-Tree materialization tests (§2.2): the extended matrices store exact
// global distances and decomposable next-hops for every (door, ancestor
// access door) pair, and the extra storage follows O(rho * D * log M).

#include "core/vip_tree.h"

#include <gtest/gtest.h>

#include "core/distance_query.h"
#include "graph/dijkstra.h"
#include "synth/building_generator.h"
#include "synth/replicate.h"
#include "common/span.h"

namespace viptree {
namespace {

class VipTreeTest : public ::testing::TestWithParam<int> {
 protected:
  static Venue MakeVenue(int kind) {
    synth::BuildingConfig cfg;
    switch (kind) {
      case 0:
        cfg.floors = 3;
        cfg.rooms_per_floor = 16;
        return synth::GenerateStandaloneBuilding(cfg, 500);
      case 1:
        cfg.floors = 6;
        cfg.rooms_per_floor = 30;
        cfg.corridors_per_floor = 2;
        cfg.lifts = 1;
        return synth::GenerateStandaloneBuilding(cfg, 501);
      default: {
        cfg.floors = 2;
        cfg.rooms_per_floor = 12;
        const Venue base = synth::GenerateStandaloneBuilding(cfg, 502);
        synth::ReplicateOptions options;
        options.copies = 3;
        return synth::ReplicateVertically(base, options);
      }
    }
  }

  VipTreeTest()
      : venue_(MakeVenue(GetParam())),
        graph_(venue_),
        vip_(VIPTree::Build(venue_, graph_)) {}

  Venue venue_;
  D2DGraph graph_;
  VIPTree vip_;
};

TEST_P(VipTreeTest, ExtendedDistancesAreExact) {
  const IPTree& tree = vip_.base();
  DijkstraEngine engine(graph_);
  // For a sample of nodes: every row door's distance to every access door
  // equals the plain Dijkstra distance.
  int checked_nodes = 0;
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf() || n.access_doors.empty() || checked_nodes >= 3) continue;
    ++checked_nodes;
    for (size_t col = 0; col < n.access_doors.size(); ++col) {
      engine.Start(n.access_doors[col]);
      engine.RunAll();
      const viptree::Span<const DoorId> rows = vip_.ExtDoors(n.id);
      const size_t step = std::max<size_t>(1, rows.size() / 10);
      for (size_t r = 0; r < rows.size(); r += step) {
        EXPECT_NEAR(vip_.ExtDist(n.id, rows[r], col),
                    engine.DistanceTo(rows[r]), 1e-3);
      }
    }
  }
  EXPECT_GT(checked_nodes, 0);
}

TEST_P(VipTreeTest, ExtendedNextHopsDecompose) {
  // Following next-hop pointers from any door must reach the access door
  // with exactly the materialized distance.
  const IPTree& tree = vip_.base();
  IPDistanceQuery ip(tree);
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf()) continue;
    const viptree::Span<const DoorId> rows = vip_.ExtDoors(n.id);
    const size_t step = std::max<size_t>(1, rows.size() / 6);
    for (size_t col = 0; col < n.access_doors.size(); ++col) {
      const DoorId target = n.access_doors[col];
      for (size_t r = 0; r < rows.size(); r += step) {
        DoorId cur = rows[r];
        double walked = 0.0;
        int guard = 0;
        while (cur != target && guard++ < 10000) {
          if (vip_.ExtRowOf(n.id, cur) < 0) {
            // The path excursed outside the subtree (rare, §3.3); the
            // walker finishes with a local search, so just add the exact
            // remaining distance.
            walked += ip.DoorDistance(cur, target);
            cur = target;
            break;
          }
          const DoorId hop = vip_.ExtNextHop(n.id, cur, col);
          const DoorId next = hop == kInvalidId ? target : hop;
          walked += ip.DoorDistance(cur, next);
          cur = next;
        }
        EXPECT_LT(guard, 10000) << "next-hop walk did not terminate";
        EXPECT_NEAR(walked, vip_.ExtDist(n.id, rows[r], col), 1e-2);
      }
    }
  }
}

TEST_P(VipTreeTest, RowSetsCoverSubtreeDoors) {
  const IPTree& tree = vip_.base();
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf()) continue;
    // Every door of every partition in the subtree has a row.
    for (const Partition& p : venue_.partitions()) {
      if (!tree.NodeContainsPartition(n.id, p.id)) continue;
      for (DoorId d : venue_.DoorsOf(p.id)) {
        EXPECT_GE(vip_.ExtRowOf(n.id, d), 0)
            << "door " << d << " missing from node " << n.id;
      }
    }
  }
}

TEST_P(VipTreeTest, MaterializationCostsMoreThanBaseButBounded) {
  const IPTree ip = IPTree::Build(venue_, graph_);
  EXPECT_GT(vip_.MemoryBytes(), ip.MemoryBytes());
  // O(rho * D * log_f M) extra with generous constants.
  const IPTree::Stats stats = ip.ComputeStats();
  const double bound = 64.0 *
                       (stats.avg_access_doors + 1.0) *
                       static_cast<double>(venue_.NumDoors()) *
                       (stats.height + 1.0);
  EXPECT_LT(static_cast<double>(vip_.MemoryBytes() - ip.MemoryBytes()),
            bound);
}

TEST_P(VipTreeTest, ExtendAndBuildAgree) {
  VIPTree extended = VIPTree::Extend(IPTree::Build(venue_, graph_));
  VIPDistanceQuery a(vip_);
  VIPDistanceQuery b(extended);
  Rng rng(77);
  for (int i = 0; i < 30; ++i) {
    const DoorId s = static_cast<DoorId>(rng.UniformIndex(venue_.NumDoors()));
    const DoorId t = static_cast<DoorId>(rng.UniformIndex(venue_.NumDoors()));
    EXPECT_DOUBLE_EQ(a.DoorDistance(s, t), b.DoorDistance(s, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Venues, VipTreeTest, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("SmallBuilding");
                             case 1:
                               return std::string("TwoCorridorTower");
                             default:
                               return std::string("TripleStack");
                           }
                         });

}  // namespace
}  // namespace viptree
