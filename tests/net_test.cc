// The network serving tier's wire layer: payload codec round-trips for
// every request/response kind, incremental frame decoding (byte-at-a-time
// and split at every offset), header validation (magic / version / flags /
// type / size / CRC) with sticky per-connection failure, re-tagging,
// randomized bit-flip and truncation fuzz (clean error, never a crash),
// and a live ShardServer fed garbage over real sockets — the per-
// connection error containment the tier promises for untrusted input.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ground_truth.h"
#include "net/client.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

eng::Query SampleQuery(eng::QueryType type) {
  const IndoorPoint a{3, {1.5, -2.25, 4.0}};
  const IndoorPoint b{7, {-0.5, 8.125, 0.0}};
  switch (type) {
    case eng::QueryType::kDistance: return eng::Query::Distance(a, b);
    case eng::QueryType::kPath: return eng::Query::Path(a, b);
    case eng::QueryType::kKnn: return eng::Query::Knn(a, 5);
    case eng::QueryType::kRange: return eng::Query::Range(a, 123.5);
    case eng::QueryType::kBooleanKnn:
      return eng::Query::BooleanKnn(a, 3, {"cafe", "atm"});
  }
  return eng::Query::Knn(a, 1);
}

net::WireRequest RoundTripRequest(const net::WireRequest& request,
                                  bool* ok_out = nullptr) {
  io::Writer writer;
  net::EncodeRequestPayload(request, &writer);
  const std::vector<uint8_t> bytes = writer.buffer();
  io::Reader reader(Span<const uint8_t>(bytes.data(), bytes.size()));
  net::WireRequest decoded;
  std::string error;
  const bool ok = net::DecodeRequestPayload(&reader, &decoded, &error);
  if (ok_out != nullptr) *ok_out = ok;
  EXPECT_TRUE(ok) << error;
  return decoded;
}

TEST(WireCodecTest, RequestRoundTripsEveryQueryType) {
  for (const eng::QueryType type :
       {eng::QueryType::kDistance, eng::QueryType::kPath,
        eng::QueryType::kKnn, eng::QueryType::kRange,
        eng::QueryType::kBooleanKnn}) {
    net::WireRequest request;
    request.kind = eng::RequestKind::kQuery;
    request.venue_id = "venue-42";
    request.query = SampleQuery(type);
    request.deadline_ms = 75.5;

    const net::WireRequest decoded = RoundTripRequest(request);
    EXPECT_EQ(decoded.kind, request.kind);
    EXPECT_EQ(decoded.venue_id, request.venue_id);
    EXPECT_EQ(decoded.query.type, request.query.type);
    EXPECT_EQ(decoded.query.source.partition, request.query.source.partition);
    EXPECT_EQ(decoded.query.source.position.x, request.query.source.position.x);
    EXPECT_EQ(decoded.query.source.position.y, request.query.source.position.y);
    EXPECT_EQ(decoded.query.source.position.z, request.query.source.position.z);
    EXPECT_EQ(decoded.query.target.partition, request.query.target.partition);
    EXPECT_EQ(decoded.query.k, request.query.k);
    EXPECT_EQ(decoded.query.radius, request.query.radius);
    EXPECT_EQ(decoded.query.keywords, request.query.keywords);
    EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  }
}

TEST(WireCodecTest, UpdateRequestRoundTripsEveryDeltaKind) {
  net::WireRequest request;
  request.kind = eng::RequestKind::kUpdateObjects;
  request.venue_id = "venue-7";
  request.delta.moves.push_back({ObjectId{11}, {2, {0.5, 1.5, 2.5}}});
  request.delta.moves.push_back({ObjectId{13}, {4, {-3.0, 0.0, 9.0}}});
  ObjectDelta::Add add;
  add.at = {6, {7.0, 8.0, 0.0}};
  add.keywords = {"poi", "exit"};
  request.delta.adds.push_back(std::move(add));
  request.delta.removes.push_back(ObjectId{3});

  const net::WireRequest decoded = RoundTripRequest(request);
  EXPECT_EQ(decoded.kind, eng::RequestKind::kUpdateObjects);
  ASSERT_EQ(decoded.delta.moves.size(), 2u);
  EXPECT_EQ(decoded.delta.moves[0].id, ObjectId{11});
  EXPECT_EQ(decoded.delta.moves[0].to.partition, 2);
  EXPECT_EQ(decoded.delta.moves[1].to.position.z, 9.0);
  ASSERT_EQ(decoded.delta.adds.size(), 1u);
  EXPECT_EQ(decoded.delta.adds[0].keywords,
            (std::vector<std::string>{"poi", "exit"}));
  ASSERT_EQ(decoded.delta.removes.size(), 1u);
  EXPECT_EQ(decoded.delta.removes[0], ObjectId{3});
}

TEST(WireCodecTest, ToRequestReanchorsTheDeadlineLocally) {
  net::WireRequest wire;
  wire.deadline_ms = 50.0;
  const eng::Request with = wire.ToRequest();
  EXPECT_NE(with.deadline, eng::kNoDeadline);
  EXPECT_GT(with.deadline, eng::ServiceClock::now());

  wire.deadline_ms = 0.0;
  EXPECT_EQ(wire.ToRequest().deadline, eng::kNoDeadline);
}

TEST(WireCodecTest, ResponseRoundTripsResultsAndStatuses) {
  for (const eng::RequestStatus status :
       {eng::RequestStatus::kOk, eng::RequestStatus::kDeadlineExceeded,
        eng::RequestStatus::kVenueNotFound, eng::RequestStatus::kRejected}) {
    net::WireResponse response;
    response.status = status;
    response.kind = eng::RequestKind::kQuery;
    response.venue_id = "venue-9";
    response.result.type = eng::QueryType::kPath;
    response.result.distance = 12345.6789;
    response.result.doors = {3, 1, 4, 1, 5};
    response.result.objects.push_back({ObjectId{8}, 2.5});
    response.result.latency_micros = 17.25;
    response.result.visited_nodes = 99;
    response.error = status == eng::RequestStatus::kOk ? "" : "some failure";
    response.queue_micros = 4.75;

    io::Writer writer;
    net::EncodeResponsePayload(response, &writer);
    const std::vector<uint8_t> bytes = writer.buffer();
    io::Reader reader(Span<const uint8_t>(bytes.data(), bytes.size()));
    net::WireResponse decoded;
    std::string error;
    ASSERT_TRUE(net::DecodeResponsePayload(&reader, &decoded, &error))
        << error;
    EXPECT_EQ(decoded.status, response.status);
    EXPECT_EQ(decoded.venue_id, response.venue_id);
    EXPECT_EQ(decoded.result.distance, response.result.distance);
    EXPECT_EQ(decoded.result.doors, response.result.doors);
    ASSERT_EQ(decoded.result.objects.size(), 1u);
    EXPECT_EQ(decoded.result.objects[0].object, ObjectId{8});
    EXPECT_EQ(decoded.result.objects[0].distance, 2.5);
    EXPECT_EQ(decoded.result.visited_nodes, 99u);
    EXPECT_EQ(decoded.error, response.error);
    EXPECT_EQ(decoded.queue_micros, response.queue_micros);
  }
}

TEST(WireCodecTest, HealthAndStatsRoundTrip) {
  net::WireHealth health;
  health.ready = 1;
  health.queue_depth = 42;
  io::Writer writer;
  net::EncodeHealthPayload(health, &writer);
  std::vector<uint8_t> bytes = writer.buffer();
  io::Reader reader(Span<const uint8_t>(bytes.data(), bytes.size()));
  net::WireHealth health_out;
  std::string error;
  ASSERT_TRUE(net::DecodeHealthPayload(&reader, &health_out, &error)) << error;
  EXPECT_EQ(health_out.ready, 1);
  EXPECT_EQ(health_out.queue_depth, 42u);

  net::WireStats stats;
  stats.submitted = 100;
  stats.completed = 90;
  stats.updates = 5;
  stats.rejected = 1;
  stats.latency_p50 = 12.5;
  stats.latency_p99 = 250.0;
  io::Writer stats_writer;
  net::EncodeStatsPayload(stats, &stats_writer);
  bytes = stats_writer.buffer();
  io::Reader stats_reader(Span<const uint8_t>(bytes.data(), bytes.size()));
  net::WireStats stats_out;
  ASSERT_TRUE(net::DecodeStatsPayload(&stats_reader, &stats_out, &error))
      << error;
  EXPECT_EQ(stats_out.submitted, 100u);
  EXPECT_EQ(stats_out.completed, 90u);
  EXPECT_EQ(stats_out.latency_p99, 250.0);
}

TEST(WireCodecTest, StatsAggregationSumsCountersAndMaxesPercentiles) {
  net::WireStats a, b;
  a.submitted = 10;
  a.latency_p99 = 100.0;
  b.submitted = 20;
  b.latency_p99 = 400.0;
  a += b;
  EXPECT_EQ(a.submitted, 30u);
  EXPECT_EQ(a.latency_p99, 400.0);
}

TEST(WireCodecTest, DecodeRejectsOutOfRangeEnums) {
  // A request whose kind byte is far beyond the enum: clean error.
  net::WireRequest request;
  request.kind = eng::RequestKind::kQuery;
  io::Writer writer;
  net::EncodeRequestPayload(request, &writer);
  std::vector<uint8_t> bytes = writer.buffer();
  bytes[0] = 0xEE;  // kind is the first byte of the payload
  io::Reader reader(Span<const uint8_t>(bytes.data(), bytes.size()));
  net::WireRequest decoded;
  std::string error;
  EXPECT_FALSE(net::DecodeRequestPayload(&reader, &decoded, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Frame assembly and incremental decoding.
// ---------------------------------------------------------------------------

net::WireRequest SomeRequest() {
  net::WireRequest request;
  request.venue_id = "venue-1";
  request.query = SampleQuery(eng::QueryType::kKnn);
  return request;
}

TEST(FrameDecoderTest, DecodesFramesFedByteAtATime) {
  const std::vector<uint8_t> frame1 =
      net::EncodeRequestFrame(SomeRequest(), 0xDEADBEEFCAFE);
  const std::vector<uint8_t> frame2 =
      net::EncodeEmptyFrame(net::FrameType::kHealthProbe, 7);
  std::vector<uint8_t> stream = frame1;
  stream.insert(stream.end(), frame2.begin(), frame2.end());

  net::FrameDecoder decoder;
  std::vector<net::Frame> frames;
  for (const uint8_t byte : stream) {
    decoder.Feed(&byte, 1);
    while (std::optional<net::Frame> frame = decoder.Next()) {
      frames.push_back(std::move(*frame));
    }
  }
  ASSERT_FALSE(decoder.failed()) << decoder.error();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, net::FrameType::kRequest);
  EXPECT_EQ(frames[0].tag, 0xDEADBEEFCAFEull);
  EXPECT_EQ(frames[1].type, net::FrameType::kHealthProbe);
  EXPECT_EQ(frames[1].tag, 7u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, DecodesAcrossEverySplitPoint) {
  const std::vector<uint8_t> frame =
      net::EncodeRequestFrame(SomeRequest(), 99);
  for (size_t split = 0; split <= frame.size(); ++split) {
    net::FrameDecoder decoder;
    decoder.Feed(frame.data(), split);
    std::optional<net::Frame> decoded = decoder.Next();
    EXPECT_EQ(decoded.has_value(), split == frame.size()) << "split " << split;
    if (!decoded.has_value()) {
      decoder.Feed(frame.data() + split, frame.size() - split);
      decoded = decoder.Next();
    }
    ASSERT_TRUE(decoded.has_value()) << "split " << split;
    EXPECT_EQ(decoded->tag, 99u);
    ASSERT_FALSE(decoder.failed());
  }
}

TEST(FrameDecoderTest, RetagRewritesOnlyTheTag) {
  std::vector<uint8_t> frame = net::EncodeRequestFrame(SomeRequest(), 1);
  const std::vector<uint8_t> original = frame;
  net::RetagFrame(0xABCDEF0123456789ull, frame.data());

  net::FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  std::optional<net::Frame> decoded = decoder.Next();
  ASSERT_TRUE(decoded.has_value()) << decoder.error();
  EXPECT_EQ(decoded->tag, 0xABCDEF0123456789ull);

  // Everything outside the 8 tag bytes is untouched.
  for (size_t i = 0; i < frame.size(); ++i) {
    if (i >= 8 && i < 16) continue;
    EXPECT_EQ(frame[i], original[i]) << "offset " << i;
  }
}

TEST(FrameDecoderTest, HeaderViolationsFailSticky) {
  struct Case {
    const char* name;
    size_t offset;
  };
  // Each case inverts one header byte of an otherwise valid frame: wrong
  // magic, unknown version, reserved flags set, invalid type, bad CRC.
  const Case cases[] = {
      {"magic", 0}, {"version", 4}, {"type", 5}, {"flags", 6}, {"crc", 20},
  };
  for (const Case& c : cases) {
    std::vector<uint8_t> frame = net::EncodeRequestFrame(SomeRequest(), 5);
    frame[c.offset] ^= 0xFF;
    net::FrameDecoder decoder;
    decoder.Feed(frame.data(), frame.size());
    EXPECT_FALSE(decoder.Next().has_value()) << c.name;
    EXPECT_TRUE(decoder.failed()) << c.name;
    EXPECT_FALSE(decoder.error().empty()) << c.name;

    // Sticky: a perfectly good frame after the poison yields nothing.
    const std::vector<uint8_t> good = net::EncodeRequestFrame(SomeRequest(), 6);
    decoder.Feed(good.data(), good.size());
    EXPECT_FALSE(decoder.Next().has_value()) << c.name;
  }
}

TEST(FrameDecoderTest, OversizePayloadLengthIsRejectedBeforeAllocation) {
  std::vector<uint8_t> frame = net::EncodeRequestFrame(SomeRequest(), 5);
  // payload_size lives at offset 16..19 (little-endian).
  frame[16] = 0xFF;
  frame[17] = 0xFF;
  frame[18] = 0xFF;
  frame[19] = 0x7F;
  net::FrameDecoder decoder;
  decoder.Feed(frame.data(), net::kHeaderBytes);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.failed());
}

TEST(FrameDecoderTest, RandomBitFlipsNeverCrashAndNeverCorruptPayloads) {
  const std::vector<uint8_t> pristine =
      net::EncodeRequestFrame(SomeRequest(), 77);
  Rng rng(0xF1A9);
  size_t clean_decodes = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> frame = pristine;
    const size_t byte = rng.UniformIndex(frame.size());
    frame[byte] ^= static_cast<uint8_t>(1u << rng.UniformIndex(8));

    net::FrameDecoder decoder;
    decoder.Feed(frame.data(), frame.size());
    std::optional<net::Frame> decoded = decoder.Next();
    if (!decoded.has_value()) {
      // Either the header check or the CRC caught it — both are clean.
      continue;
    }
    // A flip that survives framing must be in a field the CRC deliberately
    // does not cover: the tag (the router rewrites it in flight), or the
    // type byte when the flip lands on another valid FrameType. The
    // payload itself is CRC-guarded, so it must still decode to exactly
    // the original.
    const bool in_tag = byte >= 8 && byte < 16;
    const bool valid_retype =
        byte == 5 && frame[5] >= 1 &&
        frame[5] <= static_cast<uint8_t>(net::FrameType::kError);
    EXPECT_TRUE(in_tag || valid_retype) << "byte " << byte;
    io::Reader reader(
        Span<const uint8_t>(decoded->payload.data(), decoded->payload.size()));
    net::WireRequest request;
    std::string error;
    ASSERT_TRUE(net::DecodeRequestPayload(&reader, &request, &error)) << error;
    EXPECT_EQ(request.venue_id, "venue-1");
    ++clean_decodes;
  }
  EXPECT_GT(clean_decodes, 0u);  // some flips do land in the tag
}

TEST(FrameDecoderTest, RandomTruncationsNeverCrash) {
  const std::vector<uint8_t> pristine =
      net::EncodeRequestFrame(SomeRequest(), 3);
  for (size_t keep = 0; keep < pristine.size(); ++keep) {
    net::FrameDecoder decoder;
    decoder.Feed(pristine.data(), keep);
    EXPECT_FALSE(decoder.Next().has_value()) << "keep " << keep;
    // A truncated prefix is not an error — more bytes may arrive.
    EXPECT_FALSE(decoder.failed()) << "keep " << keep;
    EXPECT_EQ(decoder.buffered(), keep);
  }
}

// ---------------------------------------------------------------------------
// A live ShardServer under hostile and well-formed traffic.
// ---------------------------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Venue venue = testing::RandomSynthVenue(11);
    Rng rng(11);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 8, rng);
    eng::EngineOptions options;
    options.object_keywords.assign(objects.size(), {"poi"});
    bundle_ = new std::shared_ptr<const eng::VenueBundle>(
        std::make_shared<const eng::VenueBundle>(eng::VenueBundle::Build(
            std::move(venue), std::move(objects), std::move(options))));
  }

  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static std::shared_ptr<const eng::VenueBundle> Bundle() { return *bundle_; }
  static std::shared_ptr<const eng::VenueBundle>* bundle_;

  static net::WireRequest KnnRequest(uint64_t seed) {
    Rng rng(seed);
    net::WireRequest request;
    request.query =
        eng::Query::Knn(synth::RandomIndoorPoint(Bundle()->venue(), rng), 3);
    return request;
  }
};

std::shared_ptr<const eng::VenueBundle>* NetServerTest::bundle_ = nullptr;

TEST_F(NetServerTest, AnswersRequestsHealthAndStats) {
  net::ShardServer server(Bundle());
  ASSERT_TRUE(server.Start().ok());

  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(
      ":" + std::to_string(server.port()), &error);
  ASSERT_NE(client, nullptr) << error;

  net::WireResponse response;
  ASSERT_TRUE(client->Call(KnnRequest(1), &response).ok());
  EXPECT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(response.result.type, eng::QueryType::kKnn);
  EXPECT_EQ(response.result.objects.size(), 3u);

  net::WireHealth health;
  ASSERT_TRUE(client->Health(&health).ok());
  EXPECT_EQ(health.ready, 1);

  net::WireStats stats;
  ASSERT_TRUE(client->Stats(&stats).ok());
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);

  server.Stop();
}

TEST_F(NetServerTest, PipelinedRequestsAllComeBack) {
  net::ShardServerOptions options;
  options.service.num_threads = 2;
  net::ShardServer server(Bundle(), options);
  ASSERT_TRUE(server.Start().ok());

  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(
      ":" + std::to_string(server.port()), &error);
  ASSERT_NE(client, nullptr) << error;

  constexpr uint64_t kCount = 64;
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client->Send(KnnRequest(i), i).ok());
  }
  std::vector<bool> seen(kCount, false);
  for (uint64_t i = 0; i < kCount; ++i) {
    net::WireResponse response;
    uint64_t tag = 0;
    ASSERT_TRUE(client->Receive(&response, &tag, 30000.0).ok());
    ASSERT_LT(tag, kCount);
    EXPECT_FALSE(seen[tag]);  // exactly one response per tag
    seen[tag] = true;
    EXPECT_TRUE(response.ok()) << response.error;
  }
  server.Stop();
}

TEST_F(NetServerTest, GarbageBytesPoisonOnlyThatConnection) {
  net::ShardServer server(Bundle());
  ASSERT_TRUE(server.Start().ok());
  const std::string endpoint = ":" + std::to_string(server.port());

  Rng rng(0xBAD);
  for (int round = 0; round < 8; ++round) {
    net::Socket sock;
    ASSERT_TRUE(net::ConnectTcp(endpoint, 5000.0, &sock).ok());
    std::vector<uint8_t> garbage(64 + rng.UniformIndex(512));
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(rng.UniformIndex(256));
    }
    // Don't accidentally open with the real magic.
    garbage[0] = 0x00;
    ASSERT_EQ(::send(sock.fd(), garbage.data(), garbage.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(garbage.size()));

    // The server answers with a kError frame, then closes.
    net::FrameDecoder decoder;
    uint8_t chunk[1024];
    bool got_error_frame = false;
    while (true) {
      const ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // EOF: server closed the poisoned connection
      decoder.Feed(chunk, static_cast<size_t>(n));
      while (std::optional<net::Frame> frame = decoder.Next()) {
        if (frame->type == net::FrameType::kError) got_error_frame = true;
      }
    }
    EXPECT_TRUE(got_error_frame) << "round " << round;
  }
  EXPECT_GE(server.protocol_errors(), 8u);

  // The process and the service survived: a fresh connection still works.
  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(endpoint, &error);
  ASSERT_NE(client, nullptr) << error;
  net::WireResponse response;
  ASSERT_TRUE(client->Call(KnnRequest(5), &response).ok());
  EXPECT_TRUE(response.ok()) << response.error;
  server.Stop();
}

TEST_F(NetServerTest, BitFlippedFramesFailCleanlyOverTheSocket) {
  net::ShardServer server(Bundle());
  ASSERT_TRUE(server.Start().ok());
  const std::string endpoint = ":" + std::to_string(server.port());

  Rng rng(0xF11F);
  for (int round = 0; round < 16; ++round) {
    std::vector<uint8_t> frame = net::EncodeRequestFrame(KnnRequest(round), 1);
    // Flip one bit outside the tag field (tag flips are legitimately
    // accepted — the tag is router-rewritable and not CRC-covered).
    size_t byte = rng.UniformIndex(frame.size());
    while (byte >= 8 && byte < 16) byte = rng.UniformIndex(frame.size());
    frame[byte] ^= static_cast<uint8_t>(1u << rng.UniformIndex(8));

    net::Socket sock;
    ASSERT_TRUE(net::ConnectTcp(endpoint, 5000.0, &sock).ok());
    ASSERT_EQ(::send(sock.fd(), frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    ::shutdown(sock.fd(), SHUT_WR);

    // Whatever the flip hit, the connection ends with either a clean
    // kError frame or an orderly close — never a hang or a crash.
    net::FrameDecoder decoder;
    uint8_t chunk[4096];
    while (true) {
      const ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      decoder.Feed(chunk, static_cast<size_t>(n));
      while (decoder.Next().has_value()) {
      }
    }
  }

  // Still serving.
  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(endpoint, &error);
  ASSERT_NE(client, nullptr) << error;
  net::WireResponse response;
  ASSERT_TRUE(client->Call(KnnRequest(3), &response).ok());
  EXPECT_TRUE(response.ok()) << response.error;
  server.Stop();
}

TEST_F(NetServerTest, TruncatedFrameThenCloseLeavesServerServing) {
  net::ShardServer server(Bundle());
  ASSERT_TRUE(server.Start().ok());
  const std::string endpoint = ":" + std::to_string(server.port());

  const std::vector<uint8_t> frame = net::EncodeRequestFrame(KnnRequest(9), 1);
  for (const size_t keep : {size_t{1}, net::kHeaderBytes - 1,
                            net::kHeaderBytes, frame.size() - 1}) {
    net::Socket sock;
    ASSERT_TRUE(net::ConnectTcp(endpoint, 5000.0, &sock).ok());
    ASSERT_EQ(::send(sock.fd(), frame.data(), keep, MSG_NOSIGNAL),
              static_cast<ssize_t>(keep));
    // Hang up mid-frame; the server just closes its side.
  }

  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(endpoint, &error);
  ASSERT_NE(client, nullptr) << error;
  net::WireResponse response;
  ASSERT_TRUE(client->Call(KnnRequest(9), &response).ok());
  EXPECT_TRUE(response.ok()) << response.error;
  server.Stop();
}

TEST_F(NetServerTest, DrainAnswersInFlightThenCloses) {
  net::ShardServer server(Bundle());
  ASSERT_TRUE(server.Start().ok());

  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(
      ":" + std::to_string(server.port()), &error);
  ASSERT_NE(client, nullptr) << error;

  constexpr uint64_t kCount = 32;
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client->Send(KnnRequest(i), i).ok());
  }
  server.RequestDrain();
  // Every request the server accepted before the drain must be answered;
  // the stream then ends with a clean close. (The drain races the reads,
  // so late requests may never have been admitted — but responses must be
  // a prefix-closed subset with no error frames.)
  size_t answered = 0;
  while (true) {
    net::WireResponse response;
    uint64_t tag = 0;
    if (!client->Receive(&response, &tag, 30000.0).ok()) break;
    EXPECT_TRUE(response.ok()) << response.error;
    ++answered;
  }
  EXPECT_LE(answered, kCount);
  server.Wait();
  server.Stop();
}

}  // namespace
}  // namespace viptree
