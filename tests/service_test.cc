// engine::Service — the async request/response serving front-end: resident
// worker pool, bounded queue admission, deadline shedding, clean shutdown
// (Drain/Stop with queued and in-flight work), streaming callback delivery,
// multi-venue routing through a registry, and a 24-seed differential sweep
// asserting Submit answers bit-identically to QueryEngine::RunSequential.

#include "engine/service.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/d2d_graph.h"
#include "ground_truth.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

// One shared single-venue bundle for the lifecycle tests (building a venue
// per test would dominate the suite's runtime).
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Venue venue = testing::RandomSynthVenue(7);
    Rng rng(7);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 8, rng);
    eng::EngineOptions options;
    options.object_keywords.assign(objects.size(), {"poi"});
    bundle_ = new std::shared_ptr<const eng::VenueBundle>(
        std::make_shared<const eng::VenueBundle>(eng::VenueBundle::Build(
            std::move(venue), std::move(objects), std::move(options))));
  }

  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static std::shared_ptr<const eng::VenueBundle> Bundle() { return *bundle_; }

  static std::vector<eng::Query> SomeQueries(size_t n, uint64_t seed) {
    const Venue& venue = Bundle()->venue();
    Rng rng(seed);
    std::vector<eng::Query> queries;
    for (size_t i = 0; i < n; ++i) {
      const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
      const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
      switch (i % 4) {
        case 0: queries.push_back(eng::Query::Distance(a, b)); break;
        case 1: queries.push_back(eng::Query::Path(a, b)); break;
        case 2: queries.push_back(eng::Query::Knn(a, 3)); break;
        default: queries.push_back(eng::Query::Range(a, 120.0)); break;
      }
    }
    return queries;
  }

  static std::shared_ptr<const eng::VenueBundle>* bundle_;
};

std::shared_ptr<const eng::VenueBundle>* ServiceTest::bundle_ = nullptr;

TEST_F(ServiceTest, TicketsCompleteAndCarryResults) {
  eng::ServiceOptions options;
  options.num_threads = 2;
  eng::Service service(Bundle(), options);
  service.Start();

  const std::vector<eng::Query> queries = SomeQueries(12, 1);
  std::vector<eng::Request> requests;
  for (size_t i = 0; i < queries.size(); ++i) {
    eng::Request request;
    request.query = queries[i];
    request.tag = 1000 + i;
    requests.push_back(std::move(request));
  }
  std::vector<eng::Ticket> tickets = service.SubmitBatch(std::move(requests));
  ASSERT_EQ(tickets.size(), queries.size());
  for (size_t i = 0; i < tickets.size(); ++i) {
    const eng::Response& response = tickets[i].Wait();
    EXPECT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.tag, 1000 + i);
    EXPECT_EQ(response.result.type, queries[i].type);
    EXPECT_GE(response.queue_micros, 0.0);
    EXPECT_TRUE(tickets[i].Done());
    ASSERT_NE(tickets[i].TryGet(), nullptr);
  }
  service.Drain();
  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, queries.size());
  EXPECT_EQ(stats.num_queries, queries.size());
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.rejected + stats.expired + stats.cancelled + stats.failed,
            0u);
  EXPECT_EQ(stats.latency_micros.count, queries.size());
  EXPECT_EQ(stats.queue_micros.count, queries.size());
  ASSERT_EQ(stats.per_venue.count(""), 1u);
  EXPECT_EQ(stats.per_venue.at("").completed, queries.size());
  service.Stop();
}

TEST_F(ServiceTest, ExpiredInQueueRequestsAreShedWithoutRunning) {
  eng::Service service(Bundle(), {});
  // Submit *before* Start so the requests provably sit in the queue while
  // their deadline passes.
  std::vector<eng::Ticket> expired;
  for (const eng::Query& query : SomeQueries(5, 2)) {
    eng::Request request;
    request.query = query;
    request.deadline = eng::ServiceClock::now() - std::chrono::milliseconds(1);
    expired.push_back(service.Submit(std::move(request)));
  }
  std::vector<eng::Ticket> live;
  for (const eng::Query& query : SomeQueries(3, 3)) {
    eng::Request request;
    request.query = query;
    request.deadline = eng::DeadlineAfterMillis(60'000.0);
    live.push_back(service.Submit(std::move(request)));
  }
  service.Start();
  service.Drain();

  for (eng::Ticket& ticket : expired) {
    const eng::Response& response = ticket.Wait();
    EXPECT_EQ(response.status, eng::RequestStatus::kDeadlineExceeded);
    // Shed, not run: no execution latency was ever recorded.
    EXPECT_EQ(response.result.latency_micros, 0.0);
    EXPECT_GT(response.queue_micros, 0.0);
    EXPECT_FALSE(response.error.empty());
  }
  for (eng::Ticket& ticket : live) {
    EXPECT_TRUE(ticket.Wait().ok());
  }
  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.expired, 5u);
  EXPECT_EQ(stats.num_queries, 3u);
  EXPECT_EQ(stats.per_venue.at("").expired, 5u);
  service.Stop();
}

TEST_F(ServiceTest, WaitAllCountsOnlyOkOverMixedOutcomes) {
  eng::Service service(Bundle(), {});
  std::vector<eng::Ticket> tickets;
  // Four requests doomed to expire: submitted before Start with a deadline
  // already in the past.
  for (const eng::Query& query : SomeQueries(4, 11)) {
    eng::Request request;
    request.query = query;
    request.deadline = eng::ServiceClock::now() - std::chrono::milliseconds(1);
    tickets.push_back(service.Submit(std::move(request)));
  }
  // Six that must complete.
  for (const eng::Query& query : SomeQueries(6, 12)) {
    eng::Request request;
    request.query = query;
    request.deadline = eng::DeadlineAfterMillis(60'000.0);
    tickets.push_back(service.Submit(std::move(request)));
  }
  // Default-constructed (never submitted) tickets are skipped, not waited
  // on — a batch assembled with gaps must not hang.
  tickets.insert(tickets.begin() + 2, eng::Ticket());
  tickets.push_back(eng::Ticket());

  service.Start();
  EXPECT_EQ(eng::Service::WaitAll(tickets), 6u);
  // WaitAll is a barrier: every valid ticket is terminal afterwards.
  for (const eng::Ticket& ticket : tickets) {
    if (ticket.valid()) EXPECT_TRUE(ticket.Done());
  }
  service.Stop();
}

TEST_F(ServiceTest, StopCancelsQueuedAndRejectsLateSubmissions) {
  eng::Service service(Bundle(), {});
  std::vector<eng::Ticket> tickets;
  for (const eng::Query& query : SomeQueries(10, 4)) {
    eng::Request request;
    request.query = query;
    tickets.push_back(service.Submit(std::move(request)));
  }
  service.Stop();  // never started: everything is still queued
  for (eng::Ticket& ticket : tickets) {
    EXPECT_EQ(ticket.Wait().status, eng::RequestStatus::kCancelled);
  }

  eng::Request late;
  late.query = SomeQueries(1, 5)[0];
  eng::Ticket rejected = service.Submit(std::move(late));
  EXPECT_EQ(rejected.Wait().status, eng::RequestStatus::kRejected);
  EXPECT_NE(rejected.Wait().error.find("stopped"), std::string::npos);

  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 10u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.num_queries, 0u);
}

TEST_F(ServiceTest, StopWithInFlightWorkLeavesEveryTicketTerminal) {
  eng::ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 1u << 12;
  eng::Service service(Bundle(), options);
  service.Start();

  std::vector<eng::Request> requests;
  for (const eng::Query& query : SomeQueries(300, 6)) {
    eng::Request request;
    request.query = query;
    requests.push_back(std::move(request));
  }
  std::vector<eng::Ticket> tickets = service.SubmitBatch(std::move(requests));
  service.Stop();  // races the workers on purpose

  size_t completed = 0;
  size_t cancelled = 0;
  for (eng::Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.Done());  // Stop leaves nothing undecided
    const eng::Response& response = ticket.Wait();
    if (response.ok()) {
      ++completed;
    } else {
      ASSERT_EQ(response.status, eng::RequestStatus::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, tickets.size());
  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.num_queries, completed);
  EXPECT_EQ(stats.cancelled, cancelled);
  // Drain after Stop must return immediately, not hang.
  service.Drain();
}

TEST_F(ServiceTest, CallbacksStreamOnWorkerThreadsInQueueOrder) {
  eng::Service service(Bundle(), {});  // one worker => FIFO delivery

  std::mutex mu;
  std::vector<uint64_t> delivered;
  std::vector<std::thread::id> delivery_threads;
  const std::vector<eng::Query> queries = SomeQueries(20, 8);
  for (size_t i = 0; i < queries.size(); ++i) {
    eng::Request request;
    request.query = queries[i];
    request.tag = i;
    service.Submit(std::move(request), [&](const eng::Response& response) {
      std::lock_guard<std::mutex> lock(mu);
      delivered.push_back(response.tag);
      delivery_threads.push_back(std::this_thread::get_id());
    });
  }
  service.Start();
  service.Drain();

  // Drain happens-after every callback, so no lock is needed below.
  ASSERT_EQ(delivered.size(), queries.size());
  for (size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i], i) << "single-worker delivery must be FIFO";
  }
  for (const std::thread::id& id : delivery_threads) {
    EXPECT_NE(id, std::this_thread::get_id())
        << "callbacks run on worker threads, not the submitter";
  }
  service.Stop();
}

TEST_F(ServiceTest, BoundedQueueRejectsOverflow) {
  eng::ServiceOptions options;
  options.queue_capacity = 4;
  eng::Service service(Bundle(), options);  // not started: nothing drains

  std::vector<eng::Request> requests;
  for (const eng::Query& query : SomeQueries(10, 9)) {
    eng::Request request;
    request.query = query;
    requests.push_back(std::move(request));
  }
  std::vector<eng::Ticket> tickets = service.SubmitBatch(std::move(requests));
  size_t rejected = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    const eng::Response* response = tickets[i].TryGet();
    if (i < 4) {
      EXPECT_EQ(response, nullptr) << "accepted requests are still queued";
    } else {
      ASSERT_NE(response, nullptr);
      EXPECT_EQ(response->status, eng::RequestStatus::kRejected);
      EXPECT_NE(response->error.find("queue is full"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 6u);
  eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queue_depth, 4u);
  EXPECT_EQ(stats.rejected, 6u);
  EXPECT_EQ(stats.submitted, 10u);

  service.Start();
  service.Drain();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(tickets[i].Wait().ok());
  }
  service.Stop();
}

TEST_F(ServiceTest, SingleVenueServiceRejectsVenueIds) {
  eng::Service service(Bundle(), {});
  service.Start();
  eng::Request request;
  request.venue_id = "somewhere-else";
  request.query = SomeQueries(1, 10)[0];
  eng::Ticket ticket = service.Submit(std::move(request));
  const eng::Response& response = ticket.Wait();
  EXPECT_EQ(response.status, eng::RequestStatus::kVenueNotFound);
  EXPECT_NE(response.error.find("single venue"), std::string::npos);
  EXPECT_EQ(service.Stats().failed, 1u);
  service.Stop();
}

TEST_F(ServiceTest, ZeroThreadsMeansHardwareConcurrencyClampedToOne) {
  const size_t resolved = eng::ResolveThreadCount(0);
  EXPECT_GE(resolved, 1u);
  EXPECT_EQ(resolved,
            std::max<size_t>(1, std::thread::hardware_concurrency()));
  EXPECT_EQ(eng::ResolveThreadCount(3), 3u);

  eng::ServiceOptions options;
  options.num_threads = 0;
  eng::Service service(Bundle(), options);
  EXPECT_EQ(service.num_threads(), resolved);
  service.Start();
  eng::Request request;
  request.query = SomeQueries(1, 11)[0];
  EXPECT_TRUE(service.Submit(std::move(request)).Wait().ok());
  EXPECT_EQ(service.Stats().num_threads, resolved);
  service.Stop();
}

TEST_F(ServiceTest, InvalidRequestsFailCleanlyInsteadOfAborting) {
  // A server fails the request, never the process: out-of-range partition
  // ids (unvalidated serve-mode input) must come back kInvalidRequest.
  eng::Service service(Bundle(), {});
  service.Start();

  eng::Request huge;
  huge.query = eng::Query::Knn(IndoorPoint{1 << 20, Point{}}, 2);
  // The ticket owns the response storage, so it must outlive the uses.
  eng::Ticket huge_ticket = service.Submit(std::move(huge));
  const eng::Response& out_of_range = huge_ticket.Wait();
  EXPECT_EQ(out_of_range.status, eng::RequestStatus::kInvalidRequest);
  EXPECT_NE(out_of_range.error.find("out of range"), std::string::npos);

  eng::Request negative;
  negative.query = SomeQueries(1, 12)[0];
  negative.query.target.partition = -5;
  EXPECT_EQ(service.Submit(std::move(negative)).Wait().status,
            eng::RequestStatus::kInvalidRequest);
  EXPECT_EQ(service.Stats().failed, 2u);
  service.Stop();
}

TEST(ServiceValidationTest, KeywordQueryWithoutKeywordIndexIsRejected) {
  Venue venue = testing::RandomSynthVenue(5);
  Rng rng(5);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 4, rng);
  const IndoorPoint q = objects[0];
  // No keywords: a kBooleanKnn submission must fail the request instead
  // of tripping the engine's CHECK on a worker thread.
  eng::Service service(
      std::make_shared<const eng::VenueBundle>(
          eng::VenueBundle::Build(std::move(venue), std::move(objects))),
      {});
  service.Start();
  eng::Request request;
  request.query = eng::Query::BooleanKnn(q, 2, {"cafe"});
  // The ticket owns the response storage, so it must outlive the uses.
  eng::Ticket ticket = service.Submit(std::move(request));
  const eng::Response& response = ticket.Wait();
  EXPECT_EQ(response.status, eng::RequestStatus::kInvalidRequest);
  EXPECT_NE(response.error.find("keyword"), std::string::npos);
  service.Stop();
}

TEST_F(ServiceTest, StatusNamesAreStable) {
  EXPECT_STREQ(eng::RequestStatusName(eng::RequestStatus::kOk), "ok");
  EXPECT_STREQ(eng::RequestStatusName(eng::RequestStatus::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(eng::RequestStatusName(eng::RequestStatus::kVenueNotFound),
               "venue-not-found");
  EXPECT_STREQ(eng::RequestStatusName(eng::RequestStatus::kInvalidRequest),
               "invalid-request");
  EXPECT_STREQ(eng::RequestStatusName(eng::RequestStatus::kRejected),
               "rejected");
  EXPECT_STREQ(eng::RequestStatusName(eng::RequestStatus::kCancelled),
               "cancelled");
}

// ---------------------------------------------------------------------------
// kUpdateObjects requests: object deltas riding the same queue, routing
// and deadline machinery as queries, applied through the venue bundle's
// LiveObjectIndex. These build private bundles — the shared fixture
// bundle must stay immutable for the other lifecycle tests.
// ---------------------------------------------------------------------------

std::shared_ptr<const eng::VenueBundle> FreshBundle(uint64_t seed,
                                                    size_t num_objects) {
  Venue venue = testing::RandomSynthVenue(seed);
  Rng rng(seed ^ 0xFEED);
  std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, num_objects, rng);
  return std::make_shared<const eng::VenueBundle>(
      eng::VenueBundle::Build(std::move(venue), std::move(objects)));
}

TEST(ServiceUpdateTest, UpdatesRouteCountAndPublishEpochs) {
  const std::shared_ptr<const eng::VenueBundle> bundle = FreshBundle(19, 6);
  eng::Service service(bundle, {});
  service.Start();

  Rng rng(19);
  std::vector<eng::Ticket> tickets;
  for (int i = 0; i < 9; ++i) {
    if (i % 3 == 2) {
      ObjectDelta delta;
      delta.moves.push_back(
          {static_cast<ObjectId>(i % 6),
           synth::RandomIndoorPoint(bundle->venue(), rng)});
      tickets.push_back(
          service.Submit(eng::Request::Update("", std::move(delta))));
    } else {
      eng::Request request;
      request.query = eng::Query::Knn(
          synth::RandomIndoorPoint(bundle->venue(), rng), 2);
      tickets.push_back(service.Submit(std::move(request)));
    }
  }
  service.Drain();

  for (size_t i = 0; i < tickets.size(); ++i) {
    const eng::Response& response = tickets[i].Wait();
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.kind, i % 3 == 2 ? eng::RequestKind::kUpdateObjects
                                        : eng::RequestKind::kQuery);
    if (i % 3 == 2) {
      // A completed update reports its publish cost, not query results.
      EXPECT_TRUE(response.result.objects.empty());
      EXPECT_GE(response.result.latency_micros, 0.0);
    }
  }

  // Updates are counted apart from queries so query p50/p99 stay
  // comparable across update rates.
  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.num_queries, 6u);
  EXPECT_EQ(stats.updates, 3u);
  EXPECT_EQ(stats.latency_micros.count, 6u);
  EXPECT_EQ(stats.update_micros.count, 3u);
  EXPECT_EQ(stats.per_venue.at("").completed, 6u);
  EXPECT_EQ(stats.per_venue.at("").updated, 3u);
  // Each applied update published exactly one epoch.
  EXPECT_EQ(bundle->live_objects().epoch(), 4u);
  service.Stop();
}

TEST(ServiceUpdateTest, InvalidDeltaFailsTheRequestNotTheProcess) {
  const std::shared_ptr<const eng::VenueBundle> bundle = FreshBundle(23, 4);
  eng::Service service(bundle, {});
  service.Start();

  // Unknown object id: validated by ApplyDelta, failed as a request.
  // (The ticket owns the response storage, so it must outlive the uses.)
  ObjectDelta bad;
  bad.moves.push_back({42, bundle->objects().object(0)});
  eng::Ticket bad_ticket =
      service.Submit(eng::Request::Update("", std::move(bad)));
  const eng::Response& failed = bad_ticket.Wait();
  EXPECT_EQ(failed.status, eng::RequestStatus::kInvalidRequest);
  EXPECT_FALSE(failed.error.empty());
  EXPECT_EQ(failed.kind, eng::RequestKind::kUpdateObjects);
  // Nothing was published.
  EXPECT_EQ(bundle->live_objects().epoch(), 1u);

  // The worker survived: a valid update and a query still complete.
  ObjectDelta good;
  good.moves.push_back({0, bundle->objects().object(1)});
  EXPECT_TRUE(
      service.Submit(eng::Request::Update("", std::move(good))).Wait().ok());
  eng::Request query;
  Rng rng(23);
  query.query =
      eng::Query::Knn(synth::RandomIndoorPoint(bundle->venue(), rng), 2);
  EXPECT_TRUE(service.Submit(std::move(query)).Wait().ok());

  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.per_venue.at("").failed, 1u);
  EXPECT_EQ(bundle->live_objects().epoch(), 2u);
  service.Stop();
}

TEST(ServiceUpdateTest, UpdatesWithExpiredDeadlinesAreShedUnapplied) {
  const std::shared_ptr<const eng::VenueBundle> bundle = FreshBundle(29, 4);
  eng::Service service(bundle, {});
  // Submit before Start so the deadline provably passes while queued.
  ObjectDelta delta;
  delta.moves.push_back({0, bundle->objects().object(1)});
  eng::Request request = eng::Request::Update("", std::move(delta));
  request.deadline = eng::ServiceClock::now() - std::chrono::milliseconds(1);
  eng::Ticket ticket = service.Submit(std::move(request));
  service.Start();
  service.Drain();

  EXPECT_EQ(ticket.Wait().status, eng::RequestStatus::kDeadlineExceeded);
  // Shed means shed: the delta never reached the object store.
  EXPECT_EQ(bundle->live_objects().epoch(), 1u);
  EXPECT_EQ(service.Stats().updates, 0u);
  EXPECT_EQ(service.Stats().expired, 1u);
  service.Stop();
}

// ---------------------------------------------------------------------------
// Multi-venue routing through an owned registry, including LRU churn.
// ---------------------------------------------------------------------------

TEST(ServiceRegistryTest, RoutesAcrossVenuesWithPerVenueStats) {
  const char* tmp = std::getenv("TMPDIR");
  if (tmp == nullptr || tmp[0] == '\0') tmp = "/tmp";
  const std::string dir = std::string(tmp) + "/viptree_service_test_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string manifest = dir + "/registry.txt";

  // Two venues on disk, plus direct-load reference engines.
  std::vector<std::string> ids;
  std::vector<std::unique_ptr<eng::QueryEngine>> references;
  for (const uint64_t seed : {uint64_t{13}, uint64_t{17}}) {
    Venue venue = testing::RandomSynthVenue(seed);
    Rng rng(seed);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 6, rng);
    const eng::VenueBundle bundle =
        eng::VenueBundle::Build(std::move(venue), std::move(objects));
    const std::string id = "venue-" + std::to_string(seed);
    const std::string snapshot = dir + "/" + id + ".vipsnap";
    ASSERT_TRUE(bundle.Save(snapshot).ok());
    ASSERT_TRUE(eng::VenueRegistry::UpsertManifestEntry(manifest, id,
                                                        id + ".vipsnap")
                    .ok());
    std::string error;
    references.push_back(eng::QueryEngine::TryLoad(snapshot, &error));
    ASSERT_NE(references.back(), nullptr) << error;
    ids.push_back(id);
  }

  // max_resident_venues = 1 forces eviction churn *while serving*; answers
  // must stay bit-identical to the direct loads regardless.
  std::string error;
  eng::RegistryOptions registry_options;
  registry_options.max_resident_venues = 1;
  std::optional<eng::VenueRegistry> registry = eng::VenueRegistry::Open(
      manifest, &error, eng::VenueBundle::LoadOptions{}, registry_options);
  ASSERT_TRUE(registry.has_value()) << error;

  eng::ServiceOptions options;
  options.num_threads = 2;
  eng::Service service(std::move(*registry), options);
  ASSERT_TRUE(service.multi_venue());
  service.Start();

  std::vector<eng::Ticket> tickets;
  std::vector<std::pair<size_t, eng::Query>> sent;  // (venue index, query)
  for (int round = 0; round < 8; ++round) {
    for (size_t v = 0; v < ids.size(); ++v) {
      const Venue& venue = references[v]->venue();
      Rng rng(100 + round * 2 + v);
      const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
      const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
      const eng::Query query = round % 2 == 0 ? eng::Query::Distance(a, b)
                                              : eng::Query::Knn(a, 2);
      eng::Request request;
      request.venue_id = ids[v];
      request.query = query;
      sent.emplace_back(v, query);
      tickets.push_back(service.Submit(std::move(request)));
    }
  }
  // An unknown venue fails cleanly without disturbing the stream.
  eng::Request unknown;
  unknown.venue_id = "venue-404";
  unknown.query = sent[0].second;
  eng::Ticket missing = service.Submit(std::move(unknown));

  service.Drain();
  for (size_t i = 0; i < tickets.size(); ++i) {
    const eng::Response& response = tickets[i].Wait();
    ASSERT_TRUE(response.ok()) << response.error;
    const eng::Result expected =
        references[sent[i].first]->Run(sent[i].second);
    EXPECT_EQ(response.result.distance, expected.distance) << "request " << i;
    ASSERT_EQ(response.result.objects.size(), expected.objects.size());
    for (size_t j = 0; j < expected.objects.size(); ++j) {
      EXPECT_EQ(response.result.objects[j].object, expected.objects[j].object);
      EXPECT_EQ(response.result.objects[j].distance,
                expected.objects[j].distance);
    }
  }
  EXPECT_EQ(missing.Wait().status, eng::RequestStatus::kVenueNotFound);

  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.num_queries, tickets.size());
  EXPECT_EQ(stats.failed, 1u);
  ASSERT_EQ(stats.per_venue.size(), 3u);  // two venues + the unknown id
  EXPECT_EQ(stats.per_venue.at(ids[0]).completed, 8u);
  EXPECT_EQ(stats.per_venue.at(ids[1]).completed, 8u);
  EXPECT_EQ(stats.per_venue.at("venue-404").failed, 1u);
  // The LRU cap was honoured throughout.
  EXPECT_LE(service.registry().NumResident(), 1u);
  service.Stop();

  for (const std::string& id : ids) {
    std::remove((dir + "/" + id + ".vipsnap").c_str());
  }
  std::remove(manifest.c_str());
  ::rmdir(dir.c_str());
}

TEST(ServiceRegistryTest, UpdatesRouteToTheNamedVenueOnly) {
  const char* tmp = std::getenv("TMPDIR");
  if (tmp == nullptr || tmp[0] == '\0') tmp = "/tmp";
  const std::string dir = std::string(tmp) + "/viptree_service_upd_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string manifest = dir + "/registry.txt";

  std::vector<std::string> ids;
  for (const uint64_t seed : {uint64_t{31}, uint64_t{37}}) {
    Venue venue = testing::RandomSynthVenue(seed);
    Rng rng(seed);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 5, rng);
    const eng::VenueBundle bundle =
        eng::VenueBundle::Build(std::move(venue), std::move(objects));
    const std::string id = "venue-" + std::to_string(seed);
    ASSERT_TRUE(bundle.Save(dir + "/" + id + ".vipsnap").ok());
    ASSERT_TRUE(eng::VenueRegistry::UpsertManifestEntry(manifest, id,
                                                        id + ".vipsnap")
                    .ok());
    ids.push_back(id);
  }

  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(manifest, &error);
  ASSERT_TRUE(registry.has_value()) << error;
  eng::ServiceOptions options;
  options.num_threads = 2;
  eng::Service service(std::move(*registry), options);
  service.Start();

  // Three updates to venue 0, none to venue 1, one to a venue that does
  // not exist.
  std::vector<eng::Ticket> tickets;
  const std::shared_ptr<const eng::VenueBundle> target =
      service.registry().Acquire(ids[0], &error);
  ASSERT_NE(target, nullptr) << error;
  Rng rng(0x404);
  for (int i = 0; i < 3; ++i) {
    ObjectDelta delta;
    delta.moves.push_back(
        {static_cast<ObjectId>(i),
         synth::RandomIndoorPoint(target->venue(), rng)});
    tickets.push_back(
        service.Submit(eng::Request::Update(ids[0], std::move(delta))));
  }
  ObjectDelta stray;
  stray.moves.push_back({0, target->objects().object(0)});
  eng::Ticket missing =
      service.Submit(eng::Request::Update("venue-404", std::move(stray)));
  service.Drain();

  for (eng::Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.Wait().ok()) << ticket.Wait().error;
  }
  EXPECT_EQ(missing.Wait().status, eng::RequestStatus::kVenueNotFound);

  // The named venue advanced three epochs; the other stayed at 1.
  EXPECT_EQ(target->live_objects().epoch(), 4u);
  const std::shared_ptr<const eng::VenueBundle> untouched =
      service.registry().Acquire(ids[1], &error);
  ASSERT_NE(untouched, nullptr) << error;
  EXPECT_EQ(untouched->live_objects().epoch(), 1u);

  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.updates, 3u);
  EXPECT_EQ(stats.per_venue.at(ids[0]).updated, 3u);
  EXPECT_EQ(stats.per_venue.count(ids[1]), 0u);
  EXPECT_EQ(stats.per_venue.at("venue-404").failed, 1u);
  service.Stop();

  for (const std::string& id : ids) {
    std::remove((dir + "/" + id + ".vipsnap").c_str());
  }
  std::remove(manifest.c_str());
  ::rmdir(dir.c_str());
}

// ---------------------------------------------------------------------------
// Differential sweep: Service answers must be bit-identical to the
// sequential reference across 24 seeded random venues.
// ---------------------------------------------------------------------------

class ServiceDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServiceDifferentialTest, SubmitMatchesRunSequential) {
  const uint64_t seed = GetParam();
  Venue venue = testing::RandomSynthVenue(seed);
  Rng rng(seed ^ 0x5E4C1CE);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 8, rng);
  eng::EngineOptions options;
  options.object_keywords.resize(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    options.object_keywords[i] = {i % 2 == 0 ? "red" : "blue"};
  }
  const auto bundle = std::make_shared<const eng::VenueBundle>(
      eng::VenueBundle::Build(std::move(venue), std::move(objects),
                              std::move(options)));
  const eng::QueryEngine reference(bundle);

  std::vector<eng::Query> queries;
  for (int i = 0; i < 30; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(bundle->venue(), rng);
    const IndoorPoint b = synth::RandomIndoorPoint(bundle->venue(), rng);
    switch (i % 5) {
      case 0: queries.push_back(eng::Query::Distance(a, b)); break;
      case 1: queries.push_back(eng::Query::Path(a, b)); break;
      case 2: queries.push_back(eng::Query::Knn(a, 3)); break;
      case 3: queries.push_back(eng::Query::Range(a, 90.0)); break;
      default:
        queries.push_back(eng::Query::BooleanKnn(a, 2, {"red"}));
        break;
    }
  }
  const std::vector<eng::Result> expected = reference.RunSequential(queries);

  eng::ServiceOptions service_options;
  service_options.num_threads = 3;
  service_options.queue_capacity = queries.size();
  eng::Service service(bundle, service_options);
  service.Start();
  std::vector<eng::Request> requests;
  for (size_t i = 0; i < queries.size(); ++i) {
    eng::Request request;
    request.query = queries[i];
    request.tag = i;
    requests.push_back(std::move(request));
  }
  std::vector<eng::Ticket> tickets = service.SubmitBatch(std::move(requests));
  for (size_t i = 0; i < tickets.size(); ++i) {
    const eng::Response& response = tickets[i].Wait();
    ASSERT_TRUE(response.ok()) << response.error;
    const eng::Result& a = expected[i];
    const eng::Result& b = response.result;
    EXPECT_EQ(a.type, b.type);
    // Identical deterministic code on identical inputs: exact equality,
    // regardless of which worker ran the query.
    EXPECT_EQ(a.distance, b.distance) << "seed " << seed << " query " << i;
    EXPECT_EQ(a.doors, b.doors) << "seed " << seed << " query " << i;
    ASSERT_EQ(a.objects.size(), b.objects.size())
        << "seed " << seed << " query " << i;
    for (size_t j = 0; j < a.objects.size(); ++j) {
      EXPECT_EQ(a.objects[j].object, b.objects[j].object);
      EXPECT_EQ(a.objects[j].distance, b.objects[j].distance);
    }
    EXPECT_EQ(a.visited_nodes, b.visited_nodes)
        << "seed " << seed << " query " << i;
  }
  service.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceDifferentialTest,
                         ::testing::Range<uint64_t>(0, 24),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace viptree
