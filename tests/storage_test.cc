// Unit tests for the Storage<T> owning/view abstraction and the
// Storage-backed FlatMatrix — the buffer layer every index array now sits
// on (the zero-copy snapshot load hands out views into a mapped arena
// through exactly these types).

#include "common/storage.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/matrix.h"

namespace viptree {
namespace {

TEST(StorageTest, DefaultIsEmptyAndOwning) {
  Storage<int32_t> s;
  EXPECT_TRUE(s.owning());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.MemoryBytes(), 0u);
}

TEST(StorageTest, AdoptsVectorAndReads) {
  Storage<int32_t> s(std::vector<int32_t>{3, 1, 4, 1, 5});
  EXPECT_TRUE(s.owning());
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s.front(), 3);
  EXPECT_EQ(s.back(), 5);
  EXPECT_EQ(s.MemoryBytes(), 5 * sizeof(int32_t));
  int32_t sum = 0;
  for (int32_t v : s) sum += v;
  EXPECT_EQ(sum, 14);
}

TEST(StorageTest, ViewAliasesWithoutOwning) {
  const std::vector<uint64_t> arena = {7, 8, 9};
  // Views are immutable: all access must go through the const interface
  // (non-const operator[] is the owning-only builder path).
  const Storage<uint64_t> view = Storage<uint64_t>::View(arena);
  EXPECT_FALSE(view.owning());
  EXPECT_EQ(view.data(), arena.data());  // aliases, no copy
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view[2], 9u);
  // Logical bytes are reported for views too (they are file-backed pages
  // in the real arena case, but still addressable through the index).
  EXPECT_EQ(view.MemoryBytes(), 3 * sizeof(uint64_t));
}

TEST(StorageTest, CopyIsAlwaysDeep) {
  const std::vector<int32_t> arena = {1, 2, 3};
  Storage<int32_t> view = Storage<int32_t>::View(arena);
  Storage<int32_t> copy = view;
  EXPECT_TRUE(copy.owning());
  EXPECT_NE(copy.data(), arena.data());
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[1], 2);

  Storage<int32_t> owned(std::vector<int32_t>{5, 6});
  Storage<int32_t> copy2 = owned;
  EXPECT_NE(copy2.data(), owned.data());
  EXPECT_EQ(copy2[1], 6);
}

TEST(StorageTest, MovePreservesBufferAndClearsSource) {
  Storage<int32_t> a(std::vector<int32_t>{10, 20});
  const int32_t* data = a.data();
  Storage<int32_t> b = std::move(a);
  EXPECT_EQ(b.data(), data);  // vector move keeps the heap block
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move) — spec'd reset
}

TEST(StorageTest, BuilderMutationOnOwningStorage) {
  Storage<uint32_t> s;
  s.assign(4, 0u);
  s[1] = 7;
  s[3] = 9;
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 7u);
  s.push_back(11);
  EXPECT_EQ(s.back(), 11u);
  const std::vector<uint32_t> more = {1, 2};
  s.append(more.begin(), more.end());
  EXPECT_EQ(s.size(), 7u);
  EXPECT_EQ(s.back(), 2u);
  s.resize(2);
  EXPECT_EQ(s.size(), 2u);
}

TEST(StorageTest, SpanConversion) {
  Storage<int32_t> s(std::vector<int32_t>{1, 2, 3});
  Span<const int32_t> span = s;
  EXPECT_EQ(span.data(), s.data());
  EXPECT_EQ(span.size(), 3u);
}

TEST(FlatMatrixTest, MemoryBytesReportsSizeNotCapacity) {
  // The historical bug: a capacity()-based report over-counted allocator
  // slack. 3x4 floats must report exactly 48 bytes.
  FlatMatrix<float> m(3, 4, 1.0f);
  EXPECT_EQ(m.MemoryBytes(), 3 * 4 * sizeof(float));

  std::vector<int32_t> payload(6, -1);
  payload.reserve(1000);  // force capacity >> size before adoption
  FlatMatrix<int32_t> adopted(2, 3, std::move(payload));
  EXPECT_EQ(adopted.MemoryBytes(), 6 * sizeof(int32_t));
}

TEST(FlatMatrixTest, ViewBackedMatrixReadsInPlace) {
  const std::vector<float> arena = {0, 1, 2, 3, 4, 5};
  // Const access only: the non-const at() is the owning-only builder path.
  const FlatMatrix<float> m(2, 3, Storage<float>::View(arena));
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 5.0f);
  EXPECT_EQ(m.raw().data(), arena.data());
}

}  // namespace
}  // namespace viptree
