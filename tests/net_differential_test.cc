// The network tier's end-to-end correctness sweep: the same mixed
// query/update workload run through (a) the in-process engine::Service,
// (b) a loopback net::ShardServer, and (c) a net::Router fronting two
// shards must answer bit-identically — the wire protocol, the shard
// server, and the router add transport, never semantics. Plus the
// operational paths: kill-a-shard failover re-routes to the surviving
// shard, and a router with no healthy shard rejects cleanly.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/service.h"
#include "engine/venue_registry.h"
#include "ground_truth.h"
#include "net/client.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

// A comparable response: everything semantic, nothing temporal.
struct Outcome {
  eng::RequestStatus status = eng::RequestStatus::kOk;
  double distance = 0.0;
  std::vector<DoorId> doors;
  std::vector<ObjectResult> objects;
  uint64_t visited_nodes = 0;
};

Outcome OutcomeOf(const eng::Response& response) {
  return Outcome{response.status, response.result.distance,
                 response.result.doors, response.result.objects,
                 response.result.visited_nodes};
}

Outcome OutcomeOf(const net::WireResponse& response) {
  return Outcome{response.status, response.result.distance,
                 response.result.doors, response.result.objects,
                 response.result.visited_nodes};
}

void ExpectSameOutcome(const Outcome& a, const Outcome& b, uint64_t seed,
                       size_t i, const char* what) {
  EXPECT_EQ(a.status, b.status) << what << " seed " << seed << " req " << i;
  EXPECT_EQ(a.distance, b.distance) << what << " seed " << seed << " req "
                                    << i;
  EXPECT_EQ(a.doors, b.doors) << what << " seed " << seed << " req " << i;
  ASSERT_EQ(a.objects.size(), b.objects.size())
      << what << " seed " << seed << " req " << i;
  for (size_t j = 0; j < a.objects.size(); ++j) {
    EXPECT_EQ(a.objects[j].object, b.objects[j].object) << what;
    EXPECT_EQ(a.objects[j].distance, b.objects[j].distance) << what;
  }
  EXPECT_EQ(a.visited_nodes, b.visited_nodes)
      << what << " seed " << seed << " req " << i;
}

// Two venues on disk behind a manifest — the fixture every pass (and every
// shard) re-opens so each starts from identical pristine object state.
class NetDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const char* tmp = ::getenv("TMPDIR");
    if (tmp == nullptr || tmp[0] == '\0') tmp = "/tmp";
    dir_ = new std::string(std::string(tmp) + "/viptree_net_diff_" +
                           std::to_string(::getpid()));
    ::mkdir(dir_->c_str(), 0755);
    manifest_ = new std::string(*dir_ + "/registry.txt");
    ids_ = new std::vector<std::string>();
    venues_ = new std::vector<Venue>();
    object_counts_ = new std::vector<size_t>();

    // venue-40 and venue-42 rendezvous-hash to different shards in a
    // 2-shard fleet, so the router passes genuinely split the workload.
    for (const uint64_t seed : {uint64_t{40}, uint64_t{42}}) {
      Venue venue = testing::RandomSynthVenue(seed);
      Rng rng(seed);
      std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 10, rng);
      eng::EngineOptions options;
      options.object_keywords.assign(objects.size(), {"poi"});
      // Venue is move-only; regenerate (deterministic) for point sampling.
      venues_->push_back(testing::RandomSynthVenue(seed));
      object_counts_->push_back(objects.size());
      const eng::VenueBundle bundle = eng::VenueBundle::Build(
          std::move(venue), std::move(objects), std::move(options));
      const std::string id = "venue-" + std::to_string(seed);
      ASSERT_TRUE(bundle.Save(*dir_ + "/" + id + ".vipsnap").ok());
      ASSERT_TRUE(eng::VenueRegistry::UpsertManifestEntry(*manifest_, id,
                                                          id + ".vipsnap")
                      .ok());
      ids_->push_back(id);
    }
  }

  static void TearDownTestSuite() {
    for (const std::string& id : *ids_) {
      std::remove((*dir_ + "/" + id + ".vipsnap").c_str());
    }
    std::remove(manifest_->c_str());
    ::rmdir(dir_->c_str());
    delete dir_;
    delete manifest_;
    delete ids_;
    delete venues_;
    delete object_counts_;
  }

  static eng::VenueRegistry OpenRegistry() {
    std::string error;
    std::optional<eng::VenueRegistry> registry =
        eng::VenueRegistry::Open(*manifest_, &error);
    EXPECT_TRUE(registry.has_value()) << error;
    return std::move(*registry);
  }

  // A deterministic mixed workload across both venues: all five query
  // types plus interleaved live-object updates (moves and keyworded adds —
  // shapes that stay valid under any per-venue state).
  static std::vector<eng::Request> MakeWorkload(uint64_t seed, size_t count) {
    Rng rng(seed * 7919 + 1);
    std::vector<eng::Request> requests;
    requests.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const size_t v = rng.UniformIndex(ids_->size());
      const Venue& venue = (*venues_)[v];
      const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
      const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
      eng::Request request;
      request.venue_id = (*ids_)[v];
      switch (i % 7) {
        case 0: request.query = eng::Query::Distance(a, b); break;
        case 1: request.query = eng::Query::Path(a, b); break;
        case 2: request.query = eng::Query::Knn(a, 4); break;
        case 3: request.query = eng::Query::Range(a, 150.0); break;
        case 4: request.query = eng::Query::BooleanKnn(a, 3, {"poi"}); break;
        case 5: request.query = eng::Query::Distance(a, b); break;
        default: {
          ObjectDelta delta;
          if (rng.Chance(0.7)) {
            delta.moves.push_back(
                {static_cast<ObjectId>(rng.UniformIndex((*object_counts_)[v])),
                 synth::RandomIndoorPoint(venue, rng)});
          } else {
            ObjectDelta::Add add;
            add.at = synth::RandomIndoorPoint(venue, rng);
            add.keywords = {"poi"};
            delta.adds.push_back(std::move(add));
          }
          request = eng::Request::Update((*ids_)[v], std::move(delta));
          break;
        }
      }
      requests.push_back(std::move(request));
    }
    return requests;
  }

  // Pass (a): the in-process reference. One worker, serial submission —
  // the deterministic baseline the wire paths must reproduce exactly.
  static std::vector<Outcome> RunInProcess(
      const std::vector<eng::Request>& requests) {
    eng::ServiceOptions options;
    options.num_threads = 1;
    eng::Service service(OpenRegistry(), options);
    service.Start();
    std::vector<Outcome> outcomes;
    outcomes.reserve(requests.size());
    for (const eng::Request& request : requests) {
      eng::Request copy = request;
      eng::Ticket ticket = service.Submit(std::move(copy));
      outcomes.push_back(OutcomeOf(ticket.Wait()));
    }
    service.Drain();
    service.Stop();
    return outcomes;
  }

  // Serial request/response ping-pong through one client connection.
  static std::vector<Outcome> RunThroughEndpoint(
      const std::string& endpoint, const std::vector<eng::Request>& requests) {
    std::string error;
    std::unique_ptr<net::Client> client =
        net::Client::Connect(endpoint, &error);
    EXPECT_NE(client, nullptr) << error;
    std::vector<Outcome> outcomes;
    if (client == nullptr) return outcomes;
    outcomes.reserve(requests.size());
    for (const eng::Request& request : requests) {
      const net::WireRequest wire = net::WireRequest::FromRequest(request, 0.0);
      net::WireResponse response;
      const io::Status status = client->Call(wire, &response);
      EXPECT_TRUE(status.ok()) << status.error;
      outcomes.push_back(OutcomeOf(response));
    }
    return outcomes;
  }

  static std::string* dir_;
  static std::string* manifest_;
  static std::vector<std::string>* ids_;
  static std::vector<Venue>* venues_;
  static std::vector<size_t>* object_counts_;
};

std::string* NetDifferentialTest::dir_ = nullptr;
std::string* NetDifferentialTest::manifest_ = nullptr;
std::vector<std::string>* NetDifferentialTest::ids_ = nullptr;
std::vector<Venue>* NetDifferentialTest::venues_ = nullptr;
std::vector<size_t>* NetDifferentialTest::object_counts_ = nullptr;

TEST_F(NetDifferentialTest, LoopbackShardAndRouterMatchInProcessBitForBit) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const std::vector<eng::Request> requests = MakeWorkload(seed, 35);
    const std::vector<Outcome> baseline = RunInProcess(requests);
    ASSERT_EQ(baseline.size(), requests.size());

    // Pass (b): one loopback shard.
    {
      net::ShardServerOptions options;
      options.service.num_threads = 1;
      net::ShardServer shard(OpenRegistry(), options);
      ASSERT_TRUE(shard.Start().ok());
      const std::vector<Outcome> outcomes = RunThroughEndpoint(
          ":" + std::to_string(shard.port()), requests);
      ASSERT_EQ(outcomes.size(), requests.size());
      for (size_t i = 0; i < outcomes.size(); ++i) {
        ExpectSameOutcome(baseline[i], outcomes[i], seed, i, "shard");
      }
      shard.Stop();
    }

    // Pass (c): a router fronting two shards, each serving the full
    // manifest (assignment is locality, not correctness).
    {
      net::ShardServerOptions options;
      options.service.num_threads = 1;
      net::ShardServer shard_a(OpenRegistry(), options);
      net::ShardServer shard_b(OpenRegistry(), options);
      ASSERT_TRUE(shard_a.Start().ok());
      ASSERT_TRUE(shard_b.Start().ok());
      net::RouterOptions router_options;
      router_options.probe_interval_ms = 50.0;
      net::Router router(
          {"127.0.0.1:" + std::to_string(shard_a.port()),
           "127.0.0.1:" + std::to_string(shard_b.port())},
          *ids_, router_options);
      ASSERT_TRUE(router.Start().ok());
      const std::vector<Outcome> outcomes = RunThroughEndpoint(
          ":" + std::to_string(router.port()), requests);
      ASSERT_EQ(outcomes.size(), requests.size());
      for (size_t i = 0; i < outcomes.size(); ++i) {
        ExpectSameOutcome(baseline[i], outcomes[i], seed, i, "router");
      }
      // Both venues exist, so requests must actually have been split
      // across the fleet by the rendezvous assignment.
      EXPECT_NE(router.ShardForVenue((*ids_)[0]),
                router.ShardForVenue((*ids_)[1]))
          << "assignment degenerated to one shard; workload no longer "
             "exercises the fleet";
      router.Stop();
      shard_a.Stop();
      shard_b.Stop();
    }
  }
}

TEST_F(NetDifferentialTest, KilledShardFailsOverToTheSurvivor) {
  net::ShardServerOptions shard_options;
  shard_options.service.num_threads = 1;
  auto shard_a = std::make_unique<net::ShardServer>(OpenRegistry(),
                                                    shard_options);
  auto shard_b = std::make_unique<net::ShardServer>(OpenRegistry(),
                                                    shard_options);
  ASSERT_TRUE(shard_a->Start().ok());
  ASSERT_TRUE(shard_b->Start().ok());

  net::RouterOptions router_options;
  router_options.probe_interval_ms = 25.0;  // fast reconnect attempts
  net::Router router({"127.0.0.1:" + std::to_string(shard_a->port()),
                      "127.0.0.1:" + std::to_string(shard_b->port())},
                     *ids_, router_options);
  ASSERT_TRUE(router.Start().ok());

  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(
      ":" + std::to_string(router.port()), &error);
  ASSERT_NE(client, nullptr) << error;

  // Pick the venue owned by shard 0, verify it answers, then kill shard 0.
  const std::string victim_venue =
      router.ShardForVenue((*ids_)[0]) == 0 ? (*ids_)[0] : (*ids_)[1];
  Rng rng(99);
  const auto make_request = [&]() {
    eng::Request request;
    request.venue_id = victim_venue;
    request.query = eng::Query::Knn(
        synth::RandomIndoorPoint((*venues_)[victim_venue == (*ids_)[0] ? 0 : 1],
                                 rng),
        3);
    return net::WireRequest::FromRequest(request, 0.0);
  };

  net::WireResponse response;
  ASSERT_TRUE(client->Call(make_request(), &response).ok());
  EXPECT_TRUE(response.ok()) << response.error;

  // "SIGKILL": the shard process vanishes — sockets reset, listener gone.
  shard_a->Stop();
  shard_a.reset();

  // Every subsequent request must still be answered (re-routed to the
  // survivor), within the failover the router promises: TCP errors are
  // instant, so the very next call already works.
  for (int i = 0; i < 10; ++i) {
    net::WireResponse after;
    const io::Status status = client->Call(make_request(), &after);
    ASSERT_TRUE(status.ok()) << status.error;
    EXPECT_TRUE(after.ok()) << i << ": " << after.error;
  }
  EXPECT_GE(router.counters().shard_disconnects, 1u);

  // Health converges to one healthy shard (the probe tick notices).
  net::WireHealth health;
  ASSERT_TRUE(client->Health(&health).ok());
  EXPECT_EQ(health.ready, 1);

  router.Stop();
  shard_b->Stop();
}

TEST_F(NetDifferentialTest, NoHealthyShardRejectsCleanly) {
  // Nothing listens on the shard endpoint: every request is answered with
  // a clean kRejected, never a hang or a dropped connection.
  net::RouterOptions options;
  options.probe_interval_ms = 25.0;
  options.connect_timeout_ms = 100.0;
  net::Router router({"127.0.0.1:1"}, *ids_, options);
  ASSERT_TRUE(router.Start().ok());

  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(
      ":" + std::to_string(router.port()), &error);
  ASSERT_NE(client, nullptr) << error;

  Rng rng(7);
  eng::Request request;
  request.venue_id = (*ids_)[0];
  request.query =
      eng::Query::Knn(synth::RandomIndoorPoint((*venues_)[0], rng), 2);
  net::WireResponse response;
  ASSERT_TRUE(
      client->Call(net::WireRequest::FromRequest(request, 0.0), &response)
          .ok());
  EXPECT_EQ(response.status, eng::RequestStatus::kRejected);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(router.healthy_shards(), 0u);
  EXPECT_GE(router.counters().no_shard_rejections, 1u);

  router.Stop();
}

}  // namespace
}  // namespace viptree
