// Unit correctness for the vectorized distance kernels (common/kernels.h):
// every kernel is compared against a naive reference loop on randomized
// inputs — including +inf entries, duplicate minima, and tail lengths that
// straddle the 4-lane AVX2 width — and the dispatched path is required to
// be BIT-identical to the forced-scalar path on the same inputs. On hosts
// without AVX2 both paths are scalar and the A/B checks pass trivially.

#include "common/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "model/types.h"

namespace viptree {
namespace {

using kernels::FilterLeq;
using kernels::JoinMinIndexedF32;
using kernels::JoinMinRowsMulti;
using kernels::MinPlusGatherArgF32;
using kernels::MinPlusGatherF32;
using kernels::MinPlusRow;
using kernels::MinPlusRowMulti;
using kernels::RowArgMin;
using kernels::RowMin;

// Sizes around the 4-lane boundaries plus a couple of large rows.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 100, 257};

// Restores default dispatch even when an assertion fails mid-test.
struct ScalarGuard {
  explicit ScalarGuard(bool force) { kernels::ForceScalarForTest(force); }
  ~ScalarGuard() { kernels::ForceScalarForTest(false); }
};

std::vector<double> RandomRow(Rng& rng, size_t n, double inf_chance) {
  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.Chance(inf_chance) ? kInfDistance : rng.UniformReal(0.0, 500.0);
  }
  return v;
}

std::vector<float> RandomRowF32(Rng& rng, size_t n, double inf_chance) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = rng.Chance(inf_chance)
            ? std::numeric_limits<float>::infinity()
            : static_cast<float>(rng.UniformReal(0.0f, 500.0f));
  }
  return v;
}

// Column-index map into a row of `row_len` cells, with repeats.
std::vector<int32_t> RandomIndexMap(Rng& rng, size_t n, size_t row_len) {
  std::vector<int32_t> idx(n);
  for (int32_t& i : idx) {
    i = static_cast<int32_t>(rng.UniformIndex(row_len));
  }
  return idx;
}

// --- Reference loops (deliberately naive, mirroring the historical code).

void RefMinPlusRow(double* best, const double* row, double add, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double cand = add + row[i];
    if (cand < best[i]) best[i] = cand;
  }
}

double RefRowMin(const double* v, size_t n) {
  double best = kInfDistance;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < best) best = v[i];
  }
  return best;
}

size_t RefRowArgMin(const double* v, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

TEST(KernelTest, MinPlusRowMatchesReferenceOnBothPaths) {
  for (const size_t n : kSizes) {
    Rng rng(0xA1 + n);
    const std::vector<double> row = RandomRow(rng, n, 0.15);
    const std::vector<double> base = RandomRow(rng, n, 0.15);
    const double add = rng.UniformReal(0.0, 100.0);

    std::vector<double> expected = base;
    RefMinPlusRow(expected.data(), row.data(), add, n);

    for (const bool force : {true, false}) {
      ScalarGuard guard(force);
      std::vector<double> actual = base;
      MinPlusRow(actual.data(), row.data(), add, n);
      EXPECT_EQ(actual, expected)
          << "n=" << n << " path=" << kernels::ActivePathName();
    }
  }
}

TEST(KernelTest, MinPlusRowWithInfAddendIsANoOp) {
  Rng rng(0xB2);
  std::vector<double> best = RandomRow(rng, 64, 0.1);
  const std::vector<double> before = best;
  const std::vector<double> row = RandomRow(rng, 64, 0.1);
  for (const bool force : {true, false}) {
    ScalarGuard guard(force);
    MinPlusRow(best.data(), row.data(), kInfDistance, 64);
    EXPECT_EQ(best, before) << kernels::ActivePathName();
  }
}

TEST(KernelTest, RowMinAndArgMinMatchReferenceOnBothPaths) {
  for (const size_t n : kSizes) {
    Rng rng(0xC3 + n);
    // Quantized values produce plenty of exact duplicates, so the
    // first-wins argmin tie rule is genuinely exercised.
    std::vector<double> v(n);
    for (double& x : v) {
      x = static_cast<double>(rng.UniformInt(0, 8));
    }
    const double expected_min = RefRowMin(v.data(), n);
    for (const bool force : {true, false}) {
      ScalarGuard guard(force);
      EXPECT_EQ(RowMin(v.data(), n), expected_min)
          << "n=" << n << " path=" << kernels::ActivePathName();
      if (n > 0) {
        EXPECT_EQ(RowArgMin(v.data(), n), RefRowArgMin(v.data(), n))
            << "n=" << n << " path=" << kernels::ActivePathName();
      }
    }
  }
}

TEST(KernelTest, RowMinOfEmptyAndAllInfRowsIsInf) {
  const std::vector<double> all_inf(13, kInfDistance);
  for (const bool force : {true, false}) {
    ScalarGuard guard(force);
    EXPECT_EQ(RowMin(nullptr, 0), kInfDistance);
    EXPECT_EQ(RowMin(all_inf.data(), all_inf.size()), kInfDistance);
    EXPECT_EQ(RowArgMin(all_inf.data(), all_inf.size()), 0u);
  }
}

TEST(KernelTest, RowArgMinReturnsFirstOfEqualMinima) {
  // Minimum 1.0 appears at 2, 5, and 9; first-wins must pick 2.
  const std::vector<double> v = {3, 4, 1, 2, 5, 1, 7, 8, 9, 1, 6};
  for (const bool force : {true, false}) {
    ScalarGuard guard(force);
    EXPECT_EQ(RowArgMin(v.data(), v.size()), 2u)
        << kernels::ActivePathName();
  }
}

TEST(KernelTest, MinPlusGatherF32MatchesReferenceOnBothPaths) {
  for (const size_t n : kSizes) {
    Rng rng(0xD4 + n);
    const std::vector<float> row = RandomRowF32(rng, 48, 0.15);
    const std::vector<int32_t> idx = RandomIndexMap(rng, n, row.size());
    const std::vector<double> base = RandomRow(rng, n, 0.15);
    const double add = rng.UniformReal(0.0, 100.0);

    std::vector<double> expected = base;
    for (size_t c = 0; c < n; ++c) {
      const double cand = add + static_cast<double>(row[idx[c]]);
      if (cand < expected[c]) expected[c] = cand;
    }

    for (const bool force : {true, false}) {
      ScalarGuard guard(force);
      std::vector<double> actual = base;
      MinPlusGatherF32(actual.data(), row.data(), idx.data(), add, n);
      EXPECT_EQ(actual, expected)
          << "n=" << n << " path=" << kernels::ActivePathName();
    }
  }
}

TEST(KernelTest, MinPlusGatherArgRecordsTagOnlyOnStrictImprovement) {
  for (const size_t n : kSizes) {
    Rng rng(0xE5 + n);
    const std::vector<float> row = RandomRowF32(rng, 48, 0.1);
    const std::vector<int32_t> idx = RandomIndexMap(rng, n, row.size());
    const std::vector<double> base = RandomRow(rng, n, 0.1);
    const double add = rng.UniformReal(0.0, 100.0);

    std::vector<double> expected = base;
    std::vector<int32_t> expected_src(n, -1);
    for (size_t c = 0; c < n; ++c) {
      const double cand = add + static_cast<double>(row[idx[c]]);
      if (cand < expected[c]) {
        expected[c] = cand;
        expected_src[c] = 7;
      }
    }

    for (const bool force : {true, false}) {
      ScalarGuard guard(force);
      std::vector<double> actual = base;
      std::vector<int32_t> actual_src(n, -1);
      MinPlusGatherArgF32(actual.data(), actual_src.data(), /*tag=*/7,
                          row.data(), idx.data(), add, n);
      EXPECT_EQ(actual, expected)
          << "n=" << n << " path=" << kernels::ActivePathName();
      EXPECT_EQ(actual_src, expected_src)
          << "n=" << n << " path=" << kernels::ActivePathName();
    }
  }
}

TEST(KernelTest, MinPlusGatherArgEqualCandidateKeepsIncumbent) {
  // best[0] already holds exactly add + row[idx[0]]; an equal candidate
  // must neither replace the value nor stamp the tag.
  const std::vector<float> row = {2.0f};
  const std::vector<int32_t> idx = {0};
  for (const bool force : {true, false}) {
    ScalarGuard guard(force);
    std::vector<double> best = {5.0};  // == 3.0 + 2.0
    std::vector<int32_t> src = {-1};
    MinPlusGatherArgF32(best.data(), src.data(), /*tag=*/9, row.data(),
                        idx.data(), /*add=*/3.0, 1);
    EXPECT_EQ(best[0], 5.0) << kernels::ActivePathName();
    EXPECT_EQ(src[0], -1) << kernels::ActivePathName();
  }
}

TEST(KernelTest, JoinMinIndexedKeepsScalarAssociationOnBothPaths) {
  for (const size_t n : kSizes) {
    Rng rng(0xF6 + n);
    const std::vector<float> row = RandomRowF32(rng, 48, 0.15);
    const std::vector<int32_t> idx = RandomIndexMap(rng, n, row.size());
    const std::vector<double> addend = RandomRow(rng, n, 0.15);
    const double base = rng.UniformReal(0.0, 100.0);

    double expected = kInfDistance;
    for (size_t j = 0; j < n; ++j) {
      // The documented parenthesization: (base + cell) + addend[j].
      const double cand =
          (base + static_cast<double>(row[idx[j]])) + addend[j];
      if (cand < expected) expected = cand;
    }

    for (const bool force : {true, false}) {
      ScalarGuard guard(force);
      EXPECT_EQ(JoinMinIndexedF32(base, row.data(), idx.data(),
                                  addend.data(), n),
                expected)
          << "n=" << n << " path=" << kernels::ActivePathName();
    }
  }
}

TEST(KernelTest, MinPlusRowMultiMatchesPerTargetScansOnBothPaths) {
  for (const size_t n : kSizes) {
    for (const size_t targets : {size_t{1}, size_t{3}, size_t{8}}) {
      Rng rng(0x26 + n + targets);
      const std::vector<float> row = RandomRowF32(rng, n, 0.15);
      const std::vector<double> base = RandomRow(rng, targets * n, 0.15);
      std::vector<double> adds(targets);
      for (double& a : adds) {
        a = rng.Chance(0.1) ? kInfDistance : rng.UniformReal(0.0, 100.0);
      }

      // Reference: `targets` independent single-row scans.
      std::vector<double> expected = base;
      for (size_t t = 0; t < targets; ++t) {
        for (size_t c = 0; c < n; ++c) {
          const double cand = adds[t] + static_cast<double>(row[c]);
          if (cand < expected[t * n + c]) expected[t * n + c] = cand;
        }
      }

      for (const bool force : {true, false}) {
        ScalarGuard guard(force);
        std::vector<double> actual = base;
        MinPlusRowMulti(actual.data(), row.data(), adds.data(), targets, n);
        EXPECT_EQ(actual, expected) << "n=" << n << " targets=" << targets
                                    << " path=" << kernels::ActivePathName();
      }
    }
  }
}

TEST(KernelTest, MinPlusRowMultiEqualCandidateKeepsIncumbent) {
  // best already holds exactly adds[t] + row[c]; an equal candidate must
  // not replace it (strict-< first-wins, per stacked row).
  const std::vector<float> row = {2.0f, 4.0f};
  const std::vector<double> adds = {3.0, kInfDistance};
  for (const bool force : {true, false}) {
    ScalarGuard guard(force);
    std::vector<double> best = {5.0, 9.0, 1.0, kInfDistance};
    MinPlusRowMulti(best.data(), row.data(), adds.data(), /*num_targets=*/2,
                    /*n=*/2);
    EXPECT_EQ(best[0], 5.0) << kernels::ActivePathName();  // == 3 + 2, kept
    EXPECT_EQ(best[1], 7.0) << kernels::ActivePathName();  // 3 + 4 improves
    // The +inf addend row is a no-op: inf candidates never improve.
    EXPECT_EQ(best[2], 1.0) << kernels::ActivePathName();
    EXPECT_EQ(best[3], kInfDistance) << kernels::ActivePathName();
  }
}

TEST(KernelTest, JoinMinRowsMultiMatchesPerTargetReduceOnBothPaths) {
  for (const size_t n : kSizes) {
    for (const size_t targets : {size_t{1}, size_t{2}, size_t{5}}) {
      Rng rng(0x37 + n + targets);
      const std::vector<double> joined = RandomRow(rng, n, 0.15);
      const std::vector<double> addends = RandomRow(rng, targets * n, 0.15);
      std::vector<double> init(targets);
      for (double& x : init) {
        x = rng.Chance(0.3) ? kInfDistance : rng.UniformReal(0.0, 700.0);
      }

      std::vector<double> expected = init;
      for (size_t t = 0; t < targets; ++t) {
        for (size_t j = 0; j < n; ++j) {
          const double cand = joined[j] + addends[t * n + j];
          if (cand < expected[t]) expected[t] = cand;
        }
      }

      for (const bool force : {true, false}) {
        ScalarGuard guard(force);
        std::vector<double> actual = init;
        JoinMinRowsMulti(joined.data(), addends.data(), targets, n,
                         actual.data());
        EXPECT_EQ(actual, expected) << "n=" << n << " targets=" << targets
                                    << " path=" << kernels::ActivePathName();
      }
    }
  }
}

TEST(KernelTest, JoinMinRowsMultiAllInfRowsLeaveOutUntouched) {
  // An all-inf joined row (unreachable LCA column set) must leave every
  // accumulator exactly as it was, finite or not.
  const std::vector<double> joined(9, kInfDistance);
  const std::vector<double> addends(2 * 9, 1.5);
  for (const bool force : {true, false}) {
    ScalarGuard guard(force);
    std::vector<double> out = {42.0, kInfDistance};
    JoinMinRowsMulti(joined.data(), addends.data(), /*num_targets=*/2,
                     /*n=*/9, out.data());
    EXPECT_EQ(out[0], 42.0) << kernels::ActivePathName();
    EXPECT_EQ(out[1], kInfDistance) << kernels::ActivePathName();
  }
}

TEST(KernelTest, FilterLeqMatchesReferenceOnBothPaths) {
  for (const size_t n : kSizes) {
    Rng rng(0x17 + n);
    const std::vector<double> v = RandomRow(rng, n, 0.2);
    const double radius = rng.UniformReal(50.0, 400.0);

    std::vector<int32_t> expected;
    for (size_t i = 0; i < n; ++i) {
      if (v[i] <= radius) expected.push_back(static_cast<int32_t>(i));
    }

    for (const bool force : {true, false}) {
      ScalarGuard guard(force);
      std::vector<int32_t> out(n + 1, -1);
      const size_t count = FilterLeq(v.data(), n, radius, out.data());
      ASSERT_EQ(count, expected.size())
          << "n=" << n << " path=" << kernels::ActivePathName();
      out.resize(count);
      EXPECT_EQ(out, expected)
          << "n=" << n << " path=" << kernels::ActivePathName();
    }
  }
}

TEST(KernelTest, FilterLeqBoundaryIsInclusive) {
  const std::vector<double> v = {1.0, 2.0, 2.0, 3.0, kInfDistance};
  for (const bool force : {true, false}) {
    ScalarGuard guard(force);
    std::vector<int32_t> out(v.size(), -1);
    const size_t count = FilterLeq(v.data(), v.size(), 2.0, out.data());
    ASSERT_EQ(count, 3u) << kernels::ActivePathName();
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 1);
    EXPECT_EQ(out[2], 2);
  }
}

TEST(KernelTest, ForceScalarPinsThePathName) {
  {
    ScalarGuard guard(true);
    EXPECT_STREQ(kernels::ActivePathName(), "scalar");
    EXPECT_FALSE(kernels::SimdEnabled());
  }
  // Restored: the active path is whatever the host dispatches to.
  const char* name = kernels::ActivePathName();
  EXPECT_TRUE(name != nullptr &&
              (std::string(name) == "avx2" || std::string(name) == "scalar"));
}

}  // namespace
}  // namespace viptree
