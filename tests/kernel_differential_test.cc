// SIMD/scalar bit-identity sweep: the AVX2 kernels promise answers
// bit-identical to the scalar loops (common/kernels.h), so for 24 seeded
// random venues an interleaved stream of distance / path / kNN / range /
// boolean-kNN queries and live-object delta publishes must produce
// EXACTLY (==, not NEAR) the same distances, door sequences and object
// ids under forced-scalar and default dispatch. A second sweep loads the
// same snapshot under every MmapArena madvise policy — page-cache advice
// must be just as invisible in the output as the instruction set. On
// hosts without AVX2 both dispatch runs take the scalar path and the
// suite degenerates to a determinism check.

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/kernels.h"
#include "engine/query_engine.h"
#include "engine/venue_bundle.h"
#include "ground_truth.h"
#include "io/mmap_arena.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

// Restores default dispatch even when an assertion fails mid-test.
struct ScalarGuard {
  explicit ScalarGuard(bool force) { kernels::ForceScalarForTest(force); }
  ~ScalarGuard() { kernels::ForceScalarForTest(false); }
};

std::string TempPath(uint64_t seed) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/viptree_kernel_diff_" + std::to_string(seed) +
         "_" + std::to_string(::getpid()) + ".snap";
}

struct Step {
  std::optional<eng::Query> query;  // exactly one of query/delta is set
  std::optional<ObjectDelta> delta;
};

std::vector<std::vector<std::string>> TagObjects(size_t n) {
  std::vector<std::vector<std::string>> keywords(n);
  for (size_t i = 0; i < n; ++i) {
    keywords[i] = {"facility"};
    if (i % 2 == 0) keywords[i].push_back("red");
  }
  return keywords;
}

// A deterministic interleaved workload: rotating query types with one
// delta publish per round, so the sweep covers the leaf object scans, the
// matrix ascent, the LCA joins and the range filter both before and after
// live epochs diverge from the build-time object set. Deltas are moves
// and adds only, so ids stay valid however many engines replay the
// stream.
std::vector<Step> MakeWorkload(const Venue& venue, uint64_t seed,
                               size_t initial_objects) {
  Rng rng(seed ^ 0x51D);
  std::vector<Step> steps;
  size_t num_objects = initial_objects;
  for (int round = 0; round < 5; ++round) {
    for (int q = 0; q < 5; ++q) {
      const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
      const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
      Step step;
      switch ((round * 5 + q) % 5) {
        case 0:
          step.query = eng::Query::Distance(a, b);
          break;
        case 1:
          step.query = eng::Query::Path(a, b);
          break;
        case 2:
          step.query = eng::Query::Knn(a, 4);
          break;
        case 3:
          step.query = eng::Query::Range(a, 70.0);
          break;
        default:
          step.query = eng::Query::BooleanKnn(a, 2, {"red"});
          break;
      }
      steps.push_back(std::move(step));
    }
    Step update;
    ObjectDelta delta;
    if (num_objects > 0 && rng.Chance(0.7)) {
      delta.moves.push_back(
          {static_cast<ObjectId>(rng.UniformIndex(num_objects)),
           synth::RandomIndoorPoint(venue, rng)});
    } else {
      ObjectDelta::Add add;
      add.at = synth::RandomIndoorPoint(venue, rng);
      add.keywords = {"facility"};
      delta.adds.push_back(std::move(add));
      ++num_objects;
    }
    update.delta = std::move(delta);
    steps.push_back(std::move(update));
  }
  return steps;
}

std::vector<eng::Result> Replay(eng::QueryEngine& engine,
                                const std::vector<Step>& steps) {
  std::vector<eng::Result> results;
  for (const Step& step : steps) {
    if (step.delta.has_value()) {
      const std::optional<std::string> error =
          engine.ApplyObjectDelta(*step.delta);
      EXPECT_FALSE(error.has_value()) << *error;
      continue;
    }
    results.push_back(engine.Run(*step.query));
  }
  return results;
}

void ExpectBitIdentical(const std::vector<eng::Result>& actual,
                        const std::vector<eng::Result>& expected,
                        const char* what, uint64_t seed) {
  ASSERT_EQ(actual.size(), expected.size()) << what << " seed " << seed;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].distance, expected[i].distance)
        << what << " seed " << seed << " step " << i;
    EXPECT_EQ(actual[i].doors, expected[i].doors)
        << what << " seed " << seed << " step " << i;
    ASSERT_EQ(actual[i].objects.size(), expected[i].objects.size())
        << what << " seed " << seed << " step " << i;
    for (size_t j = 0; j < actual[i].objects.size(); ++j) {
      EXPECT_EQ(actual[i].objects[j].object, expected[i].objects[j].object)
          << what << " seed " << seed << " step " << i << " j=" << j;
      EXPECT_EQ(actual[i].objects[j].distance,
                expected[i].objects[j].distance)
          << what << " seed " << seed << " step " << i << " j=" << j;
    }
  }
}

class KernelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelDifferentialTest, ScalarAndDispatchBitIdenticalWithUpdates) {
  const uint64_t seed = GetParam();
  const Venue venue = testing::RandomSynthVenue(seed);
  const D2DGraph graph(venue);
  Rng rng(seed ^ 0xAB5);
  const std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, 8, rng);
  const std::vector<Step> steps = MakeWorkload(venue, seed, objects.size());

  eng::EngineOptions options;
  options.object_keywords = TagObjects(objects.size());

  std::vector<eng::Result> scalar_results;
  {
    ScalarGuard guard(true);
    eng::QueryEngine engine(venue, graph, objects, options);
    scalar_results = Replay(engine, steps);
  }
  std::vector<eng::Result> dispatch_results;
  {
    ScalarGuard guard(false);
    eng::QueryEngine engine(venue, graph, objects, options);
    dispatch_results = Replay(engine, steps);
  }
  ExpectBitIdentical(dispatch_results, scalar_results, "simd-vs-scalar",
                     seed);
}

// Snapshot round trip under every madvise policy, each replayed under
// both dispatch modes, all compared against the in-memory scalar
// reference — the mmap'd (8-byte-aligned, arena-aliased) rows must feed
// the kernels exactly like the owning 64-byte buffers do.
TEST_P(KernelDifferentialTest, MadvisePoliciesBitIdenticalOnBothPaths) {
  const uint64_t seed = GetParam();
  if (seed % 3 != 0) {
    GTEST_SKIP() << "snapshot sweep runs on every 3rd seed";
  }
  const Venue venue = testing::RandomSynthVenue(seed);
  const D2DGraph graph(venue);
  Rng rng(seed ^ 0xF11E);
  const std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, 8, rng);
  const std::vector<Step> steps = MakeWorkload(venue, seed, objects.size());

  eng::EngineOptions options;
  options.object_keywords = TagObjects(objects.size());

  const std::string path = TempPath(seed);
  std::vector<eng::Result> reference;
  {
    ScalarGuard guard(true);
    eng::QueryEngine engine(venue, graph, objects, options);
    ASSERT_TRUE(engine.Save(path).ok());
    reference = Replay(engine, steps);
  }

  const io::MadvisePolicy policies[] = {
      io::MadvisePolicy::kNormal, io::MadvisePolicy::kSequential,
      io::MadvisePolicy::kRandom, io::MadvisePolicy::kDontneedOnRelease};
  for (const io::MadvisePolicy policy : policies) {
    for (const bool force : {true, false}) {
      ScalarGuard guard(force);
      eng::VenueBundle::LoadOptions load;
      load.madvise = policy;
      eng::QueryEngine engine(eng::VenueBundle::Load(path, load));
      const std::vector<eng::Result> results = Replay(engine, steps);
      ExpectBitIdentical(results, reference,
                         force ? "mmap-scalar" : "mmap-dispatch", seed);
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferentialTest,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace viptree
