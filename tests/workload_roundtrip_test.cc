// engine/workload_text — the serve-mode line protocol shared by
// `viptree_query --emit-workload` and `--serve`. EmitLine and ParseLine
// must be exact inverses for every request type (the five query kinds and
// the three live-object update kinds), in both the single-venue and the
// registry (leading venue column) grammars, with coordinates surviving
// bit-identically (%.17g). Malformed input must come back as a parse
// error with a message, never a crash.

#include "engine/workload_text.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/service.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

IndoorPoint AwkwardPoint(Rng& rng) {
  // Coordinates with no short decimal representation: the round trip must
  // survive %.17g, not be rescued by friendly inputs.
  return IndoorPoint{static_cast<PartitionId>(rng.UniformIndex(40)),
                     Point{rng.UniformReal(-1000.0, 1000.0) / 3.0,
                           rng.UniformReal(-1000.0, 1000.0) / 7.0,
                           rng.UniformReal(0.0, 30.0) / 9.0}};
}

void ExpectPointsEqual(const IndoorPoint& a, const IndoorPoint& b) {
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.position.x, b.position.x);  // bit-exact, not NEAR
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.position.z, b.position.z);
}

// Emits, parses back, and asserts the parsed request matches `request`
// field-for-field on everything the line encodes.
void ExpectRoundTrips(const eng::Request& request) {
  const std::string line = eng::workload::EmitLine(request);
  eng::Request back;
  std::string error;
  ASSERT_TRUE(eng::workload::ParseLine(line, !request.venue_id.empty(),
                                       &back, &error))
      << "line '" << line << "': " << error;
  EXPECT_EQ(back.venue_id, request.venue_id) << line;
  ASSERT_EQ(back.kind, request.kind) << line;
  if (request.kind == eng::RequestKind::kUpdateObjects) {
    ASSERT_EQ(back.delta.moves.size(), request.delta.moves.size()) << line;
    ASSERT_EQ(back.delta.adds.size(), request.delta.adds.size()) << line;
    ASSERT_EQ(back.delta.removes.size(), request.delta.removes.size())
        << line;
    for (size_t i = 0; i < request.delta.moves.size(); ++i) {
      EXPECT_EQ(back.delta.moves[i].id, request.delta.moves[i].id) << line;
      ExpectPointsEqual(back.delta.moves[i].to, request.delta.moves[i].to);
    }
    for (size_t i = 0; i < request.delta.adds.size(); ++i) {
      ExpectPointsEqual(back.delta.adds[i].at, request.delta.adds[i].at);
      EXPECT_EQ(back.delta.adds[i].keywords, request.delta.adds[i].keywords)
          << line;
    }
    EXPECT_EQ(back.delta.removes, request.delta.removes) << line;
    return;
  }
  EXPECT_EQ(back.query.type, request.query.type) << line;
  ExpectPointsEqual(back.query.source, request.query.source);
  switch (request.query.type) {
    case eng::QueryType::kDistance:
    case eng::QueryType::kPath:
      ExpectPointsEqual(back.query.target, request.query.target);
      break;
    case eng::QueryType::kKnn:
      EXPECT_EQ(back.query.k, request.query.k) << line;
      break;
    case eng::QueryType::kRange:
      EXPECT_EQ(back.query.radius, request.query.radius) << line;
      break;
    case eng::QueryType::kBooleanKnn:
      EXPECT_EQ(back.query.k, request.query.k) << line;
      EXPECT_EQ(back.query.keywords, request.query.keywords) << line;
      break;
  }
}

TEST(WorkloadRoundTripTest, EveryRequestKindRoundTripsBitExactly) {
  Rng rng(0x20F7);
  // Both grammars: the single-venue lines and the registry lines with the
  // leading venue column.
  for (const std::string& venue : {std::string(), std::string("mc-hq")}) {
    for (int rep = 0; rep < 10; ++rep) {
      eng::Request request;
      request.venue_id = venue;

      request.query = eng::Query::Distance(AwkwardPoint(rng),
                                           AwkwardPoint(rng));
      ExpectRoundTrips(request);

      request.query = eng::Query::Path(AwkwardPoint(rng), AwkwardPoint(rng));
      ExpectRoundTrips(request);

      request.query =
          eng::Query::Knn(AwkwardPoint(rng), 1 + rng.UniformIndex(16));
      ExpectRoundTrips(request);

      request.query = eng::Query::Range(AwkwardPoint(rng),
                                        rng.UniformReal(0.1, 500.0) / 3.0);
      ExpectRoundTrips(request);

      request.query = eng::Query::BooleanKnn(AwkwardPoint(rng), 3,
                                             {"cafe", "level-2"});
      ExpectRoundTrips(request);

      // Empty keyword list: the "-" marker must round-trip to empty.
      request.query = eng::Query::BooleanKnn(AwkwardPoint(rng), 2, {});
      ExpectRoundTrips(request);

      // The three update kinds, one operation per line.
      ObjectDelta move;
      move.moves.push_back(
          {static_cast<ObjectId>(rng.UniformIndex(1000)),
           AwkwardPoint(rng)});
      ExpectRoundTrips(eng::Request::Update(venue, std::move(move)));

      ObjectDelta add;
      ObjectDelta::Add op;
      op.at = AwkwardPoint(rng);
      if (rep % 2 == 0) op.keywords = {"tag-0", "tag-1"};
      add.adds.push_back(op);
      ExpectRoundTrips(eng::Request::Update(venue, std::move(add)));

      ObjectDelta remove;
      remove.removes.push_back(
          static_cast<ObjectId>(rng.UniformIndex(1000)));
      ExpectRoundTrips(eng::Request::Update(venue, std::move(remove)));
    }
  }
}

TEST(WorkloadRoundTripTest, MalformedLinesFailWithAMessage) {
  const bool kNoVenue = false;
  eng::Request request;
  for (const char* line : {
           "",                              // empty
           "teleport 0 1 2 3",              // unknown type
           "knn 0 1.0 2.0",                 // point cut short
           "knn 0 1.0 2.0 3.0",             // missing k
           "distance 0 1 2 3",              // missing target point
           "range 0 1 2 3",                 // missing radius
           "bknn 0 1 2 3 4",                // missing keywords column
           "move banana 0 1 2 3",           // id is not a number
           "move 5 0 1 2",                  // move point cut short
           "add 0 1.0 2.0 3.0",             // missing keywords column
           "remove",                        // missing id
       }) {
    std::string error;
    EXPECT_FALSE(eng::workload::ParseLine(line, kNoVenue, &request, &error))
        << "accepted: '" << line << "'";
    EXPECT_FALSE(error.empty()) << "no message for: '" << line << "'";
  }

  // With the venue column required, a bare query line is missing it.
  std::string error;
  EXPECT_FALSE(eng::workload::ParseLine("", /*with_venue=*/true, &request,
                                        &error));
  EXPECT_FALSE(error.empty());
}

TEST(WorkloadRoundTripTest, ParsedUpdatesCarryExactlyOneOperation) {
  eng::Request request;
  std::string error;
  ASSERT_TRUE(eng::workload::ParseLine("move 7 0 1.5 2.5 0.0", false,
                                       &request, &error))
      << error;
  EXPECT_EQ(request.kind, eng::RequestKind::kUpdateObjects);
  EXPECT_EQ(request.delta.size(), 1u);

  ASSERT_TRUE(eng::workload::ParseLine("add 3 9.25 8.5 0.0 -", false,
                                       &request, &error))
      << error;
  EXPECT_EQ(request.delta.size(), 1u);
  EXPECT_TRUE(request.delta.adds[0].keywords.empty());

  ASSERT_TRUE(
      eng::workload::ParseLine("remove 12", false, &request, &error))
      << error;
  EXPECT_EQ(request.delta.size(), 1u);
  EXPECT_EQ(request.delta.removes[0], 12);
}

}  // namespace
}  // namespace viptree
