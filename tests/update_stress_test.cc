// Concurrency stress over the epoch-published object store: reader
// threads hammer kNN/range/boolean-kNN while a writer publishes deltas at
// full rate, asserting the RCU contract of core/live_objects.h — no torn
// reads (every answer is internally consistent and belongs to exactly one
// epoch), strictly monotonic epochs, snapshot invariants on every
// Acquire, serialized concurrent writers, and clean Service Drain/Stop
// with updates still in flight. Runs under the tsan preset (ctest -L
// update) — the assertions catch logic races, TSan catches data races.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/distance_cache.h"
#include "core/live_objects.h"
#include "engine/query_engine.h"
#include "engine/service.h"
#include "ground_truth.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

constexpr size_t kInitialObjects = 12;

std::shared_ptr<const eng::VenueBundle> MakeBundle(
    uint64_t seed, eng::EngineOptions options = {}) {
  Venue venue = testing::RandomSynthVenue(seed);
  Rng rng(seed ^ 0xB0B);
  std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, kInitialObjects, rng);
  return std::make_shared<const eng::VenueBundle>(eng::VenueBundle::Build(
      std::move(venue), std::move(objects), std::move(options)));
}

// A writer that publishes `publishes` single-move deltas over the initial
// id range as fast as it can. Moves only: the id set stays fixed, so
// readers can bound what they may legally observe without coordinating
// with the writer.
void MoveWriter(const eng::VenueBundle& bundle, uint64_t seed,
                int publishes, std::atomic<bool>* done) {
  Rng rng(seed ^ 0x33117E5);
  for (int i = 0; i < publishes; ++i) {
    ObjectDelta delta;
    delta.moves.push_back(
        {static_cast<ObjectId>(rng.UniformIndex(kInitialObjects)),
         synth::RandomIndoorPoint(bundle.venue(), rng)});
    const std::optional<std::string> error =
        bundle.live_objects().ApplyDelta(delta);
    ASSERT_FALSE(error.has_value()) << "publish " << i << ": " << *error;
  }
  done->store(true, std::memory_order_release);
}

// Readers (each with its own QueryEngine over the shared bundle) race the
// writer at full rate. Every answer must be internally consistent — sized,
// sorted, ids in the fixed range — and the epoch a reader observes must
// never go backwards.
TEST(UpdateStressTest, ReadersRaceWriterWithoutTornReads) {
  const std::shared_ptr<const eng::VenueBundle> bundle = MakeBundle(3);
  const size_t num_readers = 4;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([bundle, r, &done] {
      const eng::QueryEngine engine(bundle);
      Rng rng(0xAB5EED ^ r);
      uint64_t last_epoch = 0;
      size_t iterations = 0;
      // Keep reading until the writer finishes, then once more so every
      // reader also queries the final epoch.
      bool final_pass = false;
      while (!final_pass) {
        final_pass = done.load(std::memory_order_acquire);
        const IndoorPoint q = synth::RandomIndoorPoint(bundle->venue(), rng);
        const uint64_t epoch_before = bundle->live_objects().epoch();
        ASSERT_GE(epoch_before, last_epoch) << "epoch went backwards";
        last_epoch = epoch_before;

        const auto knn = engine.Run(eng::Query::Knn(q, 5)).objects;
        ASSERT_EQ(knn.size(), std::min<size_t>(5, kInitialObjects));
        for (size_t j = 0; j < knn.size(); ++j) {
          ASSERT_LT(knn[j].object, kInitialObjects) << "unknown id";
          ASSERT_GE(knn[j].distance, 0.0);
          if (j > 0) {
            ASSERT_LE(knn[j - 1].distance, knn[j].distance)
                << "unsorted kNN under churn";
          }
        }

        const auto range = engine.Run(eng::Query::Range(q, 150.0)).objects;
        for (size_t j = 0; j < range.size(); ++j) {
          ASSERT_LT(range[j].object, kInitialObjects);
          ASSERT_LE(range[j].distance, 150.0 + 1e-9);
          if (j > 0) {
            ASSERT_LE(range[j - 1].distance, range[j].distance);
          }
        }
        ++iterations;
      }
      ASSERT_GT(iterations, 0u);
    });
  }

  std::thread writer(
      [&] { MoveWriter(*bundle, 3, /*publishes=*/300, &done); });
  writer.join();
  for (std::thread& t : readers) t.join();

  // 300 single-move publishes on top of the initial epoch.
  EXPECT_EQ(bundle->live_objects().epoch(), 301u);
  EXPECT_EQ(bundle->live_objects().NumLiveObjects(), kInitialObjects);
}

// Acquire() under full-rate churn (moves, adds and removes this time):
// every observed snapshot satisfies the structural invariants — overlay
// and tombstones sorted and disjoint, live count consistent with them,
// epochs strictly increasing across distinct snapshots.
TEST(UpdateStressTest, SnapshotInvariantsHoldUnderChurn) {
  const std::shared_ptr<const eng::VenueBundle> bundle = MakeBundle(7);
  LiveObjectIndex& live = bundle->live_objects();
  std::atomic<bool> done{false};

  std::vector<std::thread> checkers;
  for (size_t r = 0; r < 3; ++r) {
    checkers.emplace_back([&live, &done] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ObjectSnapshot> snap = live.Acquire();
        ASSERT_GE(snap->epoch, last_epoch);
        if (snap->epoch == last_epoch && last_epoch != 0) continue;
        last_epoch = snap->epoch;

        ASSERT_TRUE(std::is_sorted(
            snap->overlay.begin(), snap->overlay.end(),
            [](const ObjectSnapshot::OverlayEntry& a,
               const ObjectSnapshot::OverlayEntry& b) { return a.id < b.id; }))
            << "overlay unsorted at epoch " << snap->epoch;
        ASSERT_TRUE(
            std::is_sorted(snap->removed.begin(), snap->removed.end()))
            << "tombstones unsorted at epoch " << snap->epoch;
        size_t added_beyond_base = 0;
        for (const auto& entry : snap->overlay) {
          ASSERT_FALSE(snap->IsRemoved(entry.id))
              << "id " << entry.id << " both overlaid and tombstoned";
          if (static_cast<size_t>(entry.id) >= snap->base->NumObjects()) {
            ++added_beyond_base;
          }
        }
        size_t removed_beyond_base = 0;
        for (const ObjectId id : snap->removed) {
          if (static_cast<size_t>(id) >= snap->base->NumObjects()) {
            ++removed_beyond_base;
          }
        }
        // Ever-allocated ids = packed base + overlay/tombstone ids beyond
        // it; live = allocated - tombstoned.
        const size_t allocated = snap->base->NumObjects() +
                                 added_beyond_base + removed_beyond_base;
        ASSERT_EQ(snap->num_live, allocated - snap->removed.size())
            << "live-count drift at epoch " << snap->epoch;
      }
    });
  }

  Rng rng(0xC0DE);
  std::vector<ObjectId> live_ids;
  for (size_t i = 0; i < kInitialObjects; ++i) {
    live_ids.push_back(static_cast<ObjectId>(i));
  }
  ObjectId next_id = static_cast<ObjectId>(kInitialObjects);
  for (int i = 0; i < 400; ++i) {
    ObjectDelta delta;
    const double pick = rng.UniformReal(0.0, 1.0);
    if (pick < 0.6 || live_ids.size() < 4) {
      delta.moves.push_back(
          {live_ids[rng.UniformIndex(live_ids.size())],
           synth::RandomIndoorPoint(bundle->venue(), rng)});
    } else if (pick < 0.8) {
      ObjectDelta::Add add;
      add.at = synth::RandomIndoorPoint(bundle->venue(), rng);
      delta.adds.push_back(add);
      live_ids.push_back(next_id++);
    } else {
      const size_t victim = rng.UniformIndex(live_ids.size());
      delta.removes.push_back(live_ids[victim]);
      live_ids.erase(live_ids.begin() + victim);
    }
    ASSERT_FALSE(live.ApplyDelta(delta).has_value()) << "publish " << i;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : checkers) t.join();

  EXPECT_EQ(live.epoch(), 401u);
  EXPECT_EQ(live.NumLiveObjects(), live_ids.size());
}

// Two concurrent writers over disjoint id halves: ApplyDelta serializes
// them internally, every publish lands, and each id's final position is
// the last one its owning writer wrote.
TEST(UpdateStressTest, ConcurrentWritersSerializeCleanly) {
  const std::shared_ptr<const eng::VenueBundle> bundle = MakeBundle(11);
  LiveObjectIndex& live = bundle->live_objects();
  const int per_writer = 120;

  std::vector<IndoorPoint> final_position(kInitialObjects);
  std::vector<std::thread> writers;
  for (int half = 0; half < 2; ++half) {
    writers.emplace_back([&, half] {
      Rng rng(0x17E4 + half);
      for (int i = 0; i < per_writer; ++i) {
        const ObjectId id = static_cast<ObjectId>(
            2 * rng.UniformIndex(kInitialObjects / 2) + half);
        const IndoorPoint to =
            synth::RandomIndoorPoint(bundle->venue(), rng);
        ObjectDelta delta;
        delta.moves.push_back({id, to});
        ASSERT_FALSE(live.ApplyDelta(delta).has_value());
        final_position[id] = to;  // this thread alone writes even/odd ids
      }
    });
  }
  for (std::thread& t : writers) t.join();

  // Every publish produced exactly one epoch; none were lost or merged.
  EXPECT_EQ(live.epoch(), 1u + 2 * per_writer);

  // The final snapshot agrees with each writer's last move per id,
  // whether the id sits in the overlay or was merged into the base.
  const std::shared_ptr<const ObjectSnapshot> snap = live.Acquire();
  for (ObjectId id = 0; id < static_cast<ObjectId>(kInitialObjects); ++id) {
    if (final_position[id].partition == kInvalidId) continue;  // never moved
    const ObjectSnapshot::OverlayEntry* entry = snap->FindOverlay(id);
    const IndoorPoint& actual =
        entry != nullptr ? entry->point : snap->base->object(id);
    EXPECT_EQ(actual.partition, final_position[id].partition) << "id " << id;
    EXPECT_EQ(actual.position.x, final_position[id].position.x)
        << "id " << id;
  }
}

// Cache contention: every reader engine shares the bundle's one
// DistanceCache (small capacity + few shards to maximize lock and
// eviction contention) while a writer churns object epochs at full rate.
// Distance answers are epoch-independent, so each reader can check its
// own cached distance queries for exact self-consistency while kNN churns
// the snapshot underneath; TSan (ctest -L update / -L cache) watches the
// shard locks and policy lists.
TEST(UpdateStressTest, ReadersShareCacheUnderWriterChurn) {
  eng::EngineOptions bundle_options;
  bundle_options.cache.enabled = true;
  bundle_options.cache.capacity = 128;  // heavy eviction pressure
  bundle_options.cache.shards = 2;
  bundle_options.cache.policy = CachePolicy::k2Q;
  const std::shared_ptr<const eng::VenueBundle> bundle =
      MakeBundle(29, bundle_options);
  ASSERT_NE(bundle->distance_cache(), nullptr);
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < 4; ++r) {
    readers.emplace_back([bundle, r, &done] {
      const eng::QueryEngine engine(bundle);
      ASSERT_EQ(engine.distance_cache(), bundle->distance_cache());
      Rng rng(0xCAC4E ^ r);
      // A small pool of repeated endpoints so this reader both hits
      // entries other readers inserted and races them on inserts.
      std::vector<IndoorPoint> pool;
      for (int i = 0; i < 8; ++i) {
        pool.push_back(synth::RandomIndoorPoint(bundle->venue(), rng));
      }
      std::vector<double> first_answer(pool.size() * pool.size(),
                                       kInfDistance);
      bool final_pass = false;
      while (!final_pass) {
        final_pass = done.load(std::memory_order_acquire);
        const size_t i = rng.UniformIndex(pool.size());
        const size_t j = rng.UniformIndex(pool.size());
        const double d =
            engine.Run(eng::Query::Distance(pool[i], pool[j])).distance;
        // The tree is immutable, so repeats of the same pair must agree
        // exactly no matter which thread populated the cache entry or
        // whether it was evicted and recomputed in between.
        double& seen = first_answer[i * pool.size() + j];
        if (seen == kInfDistance) {
          seen = d;
        } else {
          ASSERT_EQ(d, seen) << "cached distance drifted under churn";
        }
        const auto knn =
            engine.Run(eng::Query::Knn(pool[i], 3)).objects;
        ASSERT_EQ(knn.size(), std::min<size_t>(3, kInitialObjects));
        for (size_t k = 1; k < knn.size(); ++k) {
          ASSERT_LE(knn[k - 1].distance, knn[k].distance);
        }
      }
    });
  }

  std::thread writer(
      [&] { MoveWriter(*bundle, 29, /*publishes=*/250, &done); });
  writer.join();
  for (std::thread& t : readers) t.join();

  const CacheCounters counters = bundle->distance_cache()->Counters();
  EXPECT_GT(counters.lookups(), 0u);
  EXPECT_EQ(counters.hits + counters.misses, counters.lookups());
  EXPECT_LE(bundle->distance_cache()->Size(), bundle_options.cache.capacity);
  EXPECT_EQ(bundle->live_objects().epoch(), 251u);
}

// Drain with a mixed query/update stream in flight: every ticket reaches
// kOk, the stats split queries from updates exactly, and the final epoch
// accounts for every update.
TEST(UpdateStressTest, ServiceDrainsMixedQueryUpdateStream) {
  const std::shared_ptr<const eng::VenueBundle> bundle = MakeBundle(17);
  eng::ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 4096;
  eng::Service service(bundle, options);
  service.Start();

  const uint64_t epoch_before = bundle->live_objects().epoch();
  Rng rng(0xD4A1);
  std::vector<eng::Ticket> tickets;
  size_t submitted_updates = 0;
  for (int i = 0; i < 600; ++i) {
    if (i % 3 == 0) {
      ObjectDelta delta;
      delta.moves.push_back(
          {static_cast<ObjectId>(rng.UniformIndex(kInitialObjects)),
           synth::RandomIndoorPoint(bundle->venue(), rng)});
      tickets.push_back(
          service.Submit(eng::Request::Update("", std::move(delta))));
      ++submitted_updates;
    } else {
      eng::Request request;
      request.query = eng::Query::Knn(
          synth::RandomIndoorPoint(bundle->venue(), rng), 3);
      tickets.push_back(service.Submit(std::move(request)));
    }
  }
  service.Drain();

  size_t ok_queries = 0;
  size_t ok_updates = 0;
  for (const eng::Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.Done()) << "non-terminal ticket after Drain";
    const eng::Response& response = ticket.Wait();
    ASSERT_EQ(response.status, eng::RequestStatus::kOk)
        << eng::RequestStatusName(response.status) << ": " << response.error;
    if (response.kind == eng::RequestKind::kUpdateObjects) {
      ++ok_updates;
    } else {
      ++ok_queries;
      ASSERT_EQ(response.result.objects.size(),
                std::min<size_t>(3, kInitialObjects));
    }
  }
  EXPECT_EQ(ok_updates, submitted_updates);
  EXPECT_EQ(ok_queries, tickets.size() - submitted_updates);

  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.num_queries, ok_queries);
  EXPECT_EQ(stats.updates, submitted_updates);
  EXPECT_EQ(stats.update_micros.count, submitted_updates);
  // Each applied update published exactly one epoch.
  EXPECT_EQ(bundle->live_objects().epoch(),
            epoch_before + submitted_updates);
  service.Stop();
}

// Stop with updates still queued: every ticket is terminal (kOk or
// kCancelled — never lost), counters reconcile, and the bundle is left in
// a coherent epoch that serves new engines.
TEST(UpdateStressTest, StopWithUpdatesInFlightLeavesCoherentState) {
  const std::shared_ptr<const eng::VenueBundle> bundle = MakeBundle(23);
  eng::ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4096;
  eng::Service service(bundle, options);
  service.Start();

  Rng rng(0x57CB);
  std::vector<eng::Ticket> tickets;
  for (int i = 0; i < 400; ++i) {
    if (i % 2 == 0) {
      ObjectDelta delta;
      delta.moves.push_back(
          {static_cast<ObjectId>(rng.UniformIndex(kInitialObjects)),
           synth::RandomIndoorPoint(bundle->venue(), rng)});
      tickets.push_back(
          service.Submit(eng::Request::Update("", std::move(delta))));
    } else {
      eng::Request request;
      request.query = eng::Query::Knn(
          synth::RandomIndoorPoint(bundle->venue(), rng), 2);
      tickets.push_back(service.Submit(std::move(request)));
    }
  }
  service.Stop();  // races the workers on purpose

  uint64_t ok_updates = 0;
  uint64_t ok = 0;
  uint64_t cancelled = 0;
  for (const eng::Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.Done()) << "non-terminal ticket after Stop";
    const eng::Response& response = ticket.Wait();
    if (response.status == eng::RequestStatus::kOk) {
      ++ok;
      if (response.kind == eng::RequestKind::kUpdateObjects) ++ok_updates;
    } else {
      ASSERT_EQ(response.status, eng::RequestStatus::kCancelled)
          << eng::RequestStatusName(response.status);
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, tickets.size());

  const eng::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.updates, ok_updates);
  EXPECT_EQ(stats.cancelled, cancelled);

  // Exactly the applied updates advanced the epoch, and the store still
  // serves: a fresh engine answers on the final epoch.
  EXPECT_EQ(bundle->live_objects().epoch(), 1u + ok_updates);
  const eng::QueryEngine engine(bundle);
  Rng qrng(0xF00);
  const auto answer =
      engine
          .Run(eng::Query::Knn(
              synth::RandomIndoorPoint(bundle->venue(), qrng), 3))
          .objects;
  EXPECT_EQ(answer.size(), std::min<size_t>(3, kInitialObjects));
}

}  // namespace
}  // namespace viptree
