// Randomized differential tests: for seeded random synthetic venues
// (standalone buildings and mini-campuses, shapes drawn from the seed), the
// VIP-Tree / IP-Tree answers for distance, path, kNN, range and boolean
// keyword queries must match brute-force Dijkstra ground truth, and the
// QueryEngine batch path must return exactly what the sequential path
// returns. This is the survey's (arXiv:2010.03910) observation turned into
// a test: indoor indexes diverge on large/irregular topologies, so we sweep
// seeds instead of trusting the paper example.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/distance_query.h"
#include "core/path_query.h"
#include "engine/query_engine.h"
#include "graph/d2d_graph.h"
#include "ground_truth.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

// Absolute + relative tolerance: leaf/ext matrices store float, queries
// accumulate in double.
double Tol(double reference) {
  return 1e-2 + std::abs(reference) * 1e-4;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  DifferentialTest()
      : venue_(testing::RandomSynthVenue(GetParam())), graph_(venue_) {}

  // Objects with alternating keyword tags so boolean kNN has a real filter.
  static std::vector<std::vector<std::string>> TagObjects(size_t n) {
    std::vector<std::vector<std::string>> keywords(n);
    for (size_t i = 0; i < n; ++i) {
      keywords[i] = {"facility"};
      if (i % 2 == 0) keywords[i].push_back("red");
    }
    return keywords;
  }

  Venue venue_;
  D2DGraph graph_;
};

TEST_P(DifferentialTest, DistanceAndPathMatchDijkstra) {
  const uint64_t seed = GetParam();
  const eng::QueryEngine engine(venue_, graph_, /*objects=*/{});
  const IPDistanceQuery ip(engine.tree().base());
  Rng rng(seed ^ 0xD1FF);

  for (int i = 0; i < 10; ++i) {
    const IndoorPoint s = synth::RandomIndoorPoint(venue_, rng);
    const IndoorPoint t = synth::RandomIndoorPoint(venue_, rng);
    const double expected = testing::BruteDistance(venue_, graph_, s, t);

    const eng::Result d = engine.Run(eng::Query::Distance(s, t));
    EXPECT_NEAR(d.distance, expected, Tol(expected))
        << "seed " << seed << " pair " << i << " (VIP distance)";
    EXPECT_NEAR(ip.Distance(s, t), expected, Tol(expected))
        << "seed " << seed << " pair " << i << " (IP distance)";

    // The recovered door sequence must be walkable and sum to the distance.
    const eng::Result p = engine.Run(eng::Query::Path(s, t));
    EXPECT_NEAR(p.distance, expected, Tol(expected))
        << "seed " << seed << " pair " << i << " (VIP path distance)";
    EXPECT_NEAR(testing::PointPathLength(venue_, graph_, s, t, p.doors),
                p.distance, Tol(p.distance))
        << "seed " << seed << " pair " << i << " (path length)";
  }
}

TEST_P(DifferentialTest, ObjectQueriesMatchBruteForce) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x0B7EC7);
  const std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue_, 10, rng);
  eng::EngineOptions options;
  options.object_keywords = TagObjects(objects.size());
  const eng::QueryEngine engine(venue_, graph_, objects, options);

  for (int i = 0; i < 5; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(venue_, rng);
    const auto all = testing::BruteAllObjectDistances(venue_, graph_, q,
                                                      objects);

    // kNN: the distance sequence must match (ids may differ under ties).
    for (const size_t k : {1u, 4u}) {
      const auto actual = engine.Run(eng::Query::Knn(q, k)).objects;
      ASSERT_EQ(actual.size(), std::min<size_t>(k, objects.size()))
          << "seed " << seed;
      for (size_t j = 0; j < actual.size(); ++j) {
        EXPECT_NEAR(actual[j].distance, all[j].distance, Tol(all[j].distance))
            << "seed " << seed << " k=" << k << " j=" << j;
      }
    }

    // Range at the median object distance: same count, same distances.
    const double radius = all[all.size() / 2].distance;
    if (radius == kInfDistance) continue;
    const auto expected_range =
        testing::BruteRange(venue_, graph_, q, objects, radius);
    const auto actual_range =
        engine.Run(eng::Query::Range(q, radius)).objects;
    // Tolerance at the radius boundary: counts may differ by the objects
    // within Tol of the cut; compare only the strict interior.
    size_t strict = 0;
    for (const auto& r : expected_range) {
      if (r.distance < radius - Tol(radius)) ++strict;
    }
    ASSERT_GE(actual_range.size(), strict) << "seed " << seed;
    for (size_t j = 0; j < actual_range.size(); ++j) {
      EXPECT_LE(actual_range[j].distance, radius + Tol(radius))
          << "seed " << seed;
      EXPECT_NEAR(actual_range[j].distance, all[j].distance,
                  Tol(all[j].distance))
          << "seed " << seed << " j=" << j;
    }

    // Boolean kNN over the "red" half must equal brute force over that
    // subset.
    std::vector<IndoorPoint> red;
    for (size_t o = 0; o < objects.size(); o += 2) red.push_back(objects[o]);
    const auto red_truth = testing::BruteKnn(venue_, graph_, q, red, 3);
    const auto red_actual =
        engine.Run(eng::Query::BooleanKnn(q, 3, {"red"})).objects;
    ASSERT_EQ(red_actual.size(), std::min<size_t>(3, red.size()))
        << "seed " << seed;
    for (size_t j = 0; j < red_actual.size(); ++j) {
      EXPECT_EQ(red_actual[j].object % 2, 0) << "seed " << seed;
      EXPECT_NEAR(red_actual[j].distance, red_truth[j].distance,
                  Tol(red_truth[j].distance))
          << "seed " << seed << " j=" << j;
    }
  }
}

TEST_P(DifferentialTest, BatchMatchesSequential) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xBA7C4);
  const std::vector<IndoorPoint> objects = synth::PlaceObjects(venue_, 8, rng);
  eng::EngineOptions options;
  options.object_keywords = TagObjects(objects.size());
  const eng::QueryEngine engine(venue_, graph_, objects, options);

  std::vector<eng::Query> batch;
  for (int i = 0; i < 60; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(venue_, rng);
    const IndoorPoint b = synth::RandomIndoorPoint(venue_, rng);
    switch (i % 5) {
      case 0:
        batch.push_back(eng::Query::Distance(a, b));
        break;
      case 1:
        batch.push_back(eng::Query::Path(a, b));
        break;
      case 2:
        batch.push_back(eng::Query::Knn(a, 3));
        break;
      case 3:
        batch.push_back(eng::Query::Range(a, 80.0));
        break;
      default:
        batch.push_back(eng::Query::BooleanKnn(a, 2, {"red"}));
        break;
    }
  }

  const std::vector<eng::Result> sequential = engine.RunSequential(batch);
  const eng::BatchResult batched =
      engine.RunBatch(batch, {/*num_threads=*/4, /*shard_size=*/8});

  ASSERT_EQ(batched.results.size(), sequential.size());
  EXPECT_EQ(batched.stats.num_queries, batch.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    const eng::Result& a = sequential[i];
    const eng::Result& b = batched.results[i];
    EXPECT_EQ(a.type, b.type);
    // Identical deterministic code on identical inputs: results must agree
    // exactly, regardless of which worker ran the query.
    EXPECT_EQ(a.distance, b.distance) << "seed " << seed << " query " << i;
    EXPECT_EQ(a.doors, b.doors) << "seed " << seed << " query " << i;
    ASSERT_EQ(a.objects.size(), b.objects.size())
        << "seed " << seed << " query " << i;
    for (size_t j = 0; j < a.objects.size(); ++j) {
      EXPECT_EQ(a.objects[j].object, b.objects[j].object)
          << "seed " << seed << " query " << i;
      EXPECT_EQ(a.objects[j].distance, b.objects[j].distance)
          << "seed " << seed << " query " << i;
    }
    EXPECT_EQ(a.visited_nodes, b.visited_nodes)
        << "seed " << seed << " query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(0, 24),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace viptree
