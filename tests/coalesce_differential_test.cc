// Execution-planner differential sweep (engine/exec_plan.h): coalesced
// execution must be bit-identical to the sequential reference across 24
// seeded random venues — the planner only ever *shares* work (one descent
// per distinct source, one leaf Dijkstra per same-leaf source group, one
// search per duplicated kNN), it never changes a single answer.
//
// Three layers are swept:
//   1. QueryEngine::RunBatch with BatchOptions::coalesce, single- and
//      multi-threaded, against RunSequential;
//   2. a one-worker coalescing Service fed queries with interleaved live
//      object updates, against a twin engine applying the same stream
//      sequentially (updates are group barriers, so epoch visibility must
//      be exactly the submission order's);
//   3. VIPDistanceQuery::DistanceMulti directly, on a same-leaf-heavy
//      pair set, against per-pair Distance.
//
// The whole suite also runs under VIPTREE_FORCE_SCALAR=1 in CI (label
// `coalesce`), pinning the kernels under the planner to the scalar twins.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/distance_query.h"
#include "engine/exec_plan.h"
#include "engine/query_engine.h"
#include "engine/service.h"
#include "ground_truth.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

// Exact equality on every answer field: identical deterministic code on
// identical inputs, so nothing weaker than == is acceptable. Latency is
// attribution, not an answer, and is not compared.
void ExpectSameResult(const eng::Result& want, const eng::Result& got,
                      uint64_t seed, size_t i) {
  EXPECT_EQ(want.type, got.type) << "seed " << seed << " query " << i;
  EXPECT_EQ(want.distance, got.distance) << "seed " << seed << " query " << i;
  EXPECT_EQ(want.doors, got.doors) << "seed " << seed << " query " << i;
  ASSERT_EQ(want.objects.size(), got.objects.size())
      << "seed " << seed << " query " << i;
  for (size_t j = 0; j < want.objects.size(); ++j) {
    EXPECT_EQ(want.objects[j].object, got.objects[j].object)
        << "seed " << seed << " query " << i << " j=" << j;
    EXPECT_EQ(want.objects[j].distance, got.objects[j].distance)
        << "seed " << seed << " query " << i << " j=" << j;
  }
  EXPECT_EQ(want.visited_nodes, got.visited_nodes)
      << "seed " << seed << " query " << i;
}

// Source-skewed workload over a hot pool of 3 points: the traffic shape
// the planner exists for. Heavy on distance + kNN (the grouped types) with
// duplicated kNN (source, k) pairs, plus path/range so the fallback lane
// runs interleaved with groups.
std::vector<eng::Query> SkewedQueries(const Venue& venue, size_t n,
                                      Rng& rng) {
  std::vector<IndoorPoint> pool;
  for (int i = 0; i < 3; ++i) {
    pool.push_back(synth::RandomIndoorPoint(venue, rng));
  }
  std::vector<eng::Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const IndoorPoint& hot = pool[rng.UniformIndex(pool.size())];
    switch (i % 8) {
      case 0:
      case 1:
      case 2:
        queries.push_back(
            eng::Query::Distance(hot, synth::RandomIndoorPoint(venue, rng)));
        break;
      case 3:
        // Same-leaf distance: target drawn from the same hot pool, often
        // sharing the source's leaf (always when it *is* the source).
        queries.push_back(
            eng::Query::Distance(hot, pool[rng.UniformIndex(pool.size())]));
        break;
      case 4:
      case 5:
      case 6:
        queries.push_back(eng::Query::Knn(hot, 2 + rng.UniformIndex(2)));
        break;
      default:
        if (rng.Chance(0.5)) {
          queries.push_back(eng::Query::Path(
              hot, synth::RandomIndoorPoint(venue, rng)));
        } else {
          queries.push_back(eng::Query::Range(hot, 90.0));
        }
        break;
    }
  }
  return queries;
}

class CoalesceDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalesceDifferentialTest, CoalescedRunBatchMatchesSequential) {
  const uint64_t seed = GetParam();
  Venue venue = testing::RandomSynthVenue(seed);
  Rng rng(seed ^ 0xC0A7E5CE);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 8, rng);
  const eng::QueryEngine engine(std::move(venue), std::move(objects));

  const std::vector<eng::Query> queries =
      SkewedQueries(engine.venue(), 48, rng);
  const std::vector<eng::Result> expected = engine.RunSequential(
      Span<const eng::Query>(queries.data(), queries.size()));

  for (const size_t threads : {size_t{1}, size_t{3}}) {
    eng::BatchOptions options;
    options.num_threads = threads;
    options.coalesce.enabled = true;
    options.coalesce.window = queries.size();  // whole-batch windows
    const eng::BatchResult batch = engine.RunBatch(
        Span<const eng::Query>(queries.data(), queries.size()), options);
    ASSERT_EQ(batch.results.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ExpectSameResult(expected[i], batch.results[i], seed, i);
    }
    if (threads == 1) {
      // One worker pulled the whole batch: on a 3-source skew the planner
      // must actually form groups and share source expansions.
      const eng::PlanStats& plan = batch.stats.plan;
      EXPECT_GT(plan.groups, 0u) << "seed " << seed;
      EXPECT_GT(plan.coalesced_queries, plan.groups) << "seed " << seed;
      EXPECT_GT(plan.ascents_reused, 0u) << "seed " << seed;
      uint64_t histogram_total = 0;
      for (size_t b = 0; b < eng::PlanStats::kHistogramBuckets; ++b) {
        histogram_total += plan.groups_by_size[b];
      }
      EXPECT_EQ(histogram_total, plan.groups) << "seed " << seed;
    }
  }
}

TEST_P(CoalesceDifferentialTest, CoalescingServiceMatchesSequentialUpdates) {
  const uint64_t seed = GetParam();
  // Twin bundles built from the same seeds: the service mutates its own
  // live object store, the reference engine mutates the other.
  const auto build = [&] {
    Venue venue = testing::RandomSynthVenue(seed);
    Rng rng(seed ^ 0x5EB51CE);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 8, rng);
    return std::make_shared<const eng::VenueBundle>(eng::VenueBundle::Build(
        std::move(venue), std::move(objects)));
  };
  const auto service_bundle = build();
  const auto reference_bundle = build();
  eng::QueryEngine reference(reference_bundle);

  // The request stream: skewed queries with a live-object move every 6th
  // slot. With one worker and coalescing on, updates must act as window
  // barriers — every query still sees exactly the epochs the submission
  // order implies.
  Rng rng(seed ^ 0xB1EED);
  const std::vector<eng::Query> queries =
      SkewedQueries(service_bundle->venue(), 36, rng);
  struct Step {
    bool is_update = false;
    eng::Query query;
    ObjectDelta delta;
  };
  std::vector<Step> steps;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i % 6 == 5) {
      Step update;
      update.is_update = true;
      update.delta.moves.push_back(
          {static_cast<ObjectId>(rng.UniformIndex(8)),
           synth::RandomIndoorPoint(service_bundle->venue(), rng)});
      steps.push_back(std::move(update));
    }
    Step step;
    step.query = queries[i];
    steps.push_back(std::move(step));
  }

  std::vector<eng::Result> expected(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].is_update) {
      ASSERT_FALSE(reference.ApplyObjectDelta(steps[i].delta).has_value())
          << "seed " << seed << " step " << i;
    } else {
      expected[i] = reference.Run(steps[i].query);
    }
  }

  eng::ServiceOptions options;
  options.num_threads = 1;  // submission order IS execution order
  options.queue_capacity = steps.size();
  options.coalesce.enabled = true;
  options.coalesce.window = 8;
  eng::Service service(service_bundle, options);
  std::vector<eng::Ticket> tickets;
  for (const Step& step : steps) {
    if (step.is_update) {
      tickets.push_back(service.Submit(eng::Request::Update("", step.delta)));
    } else {
      eng::Request request;
      request.query = step.query;
      tickets.push_back(service.Submit(std::move(request)));
    }
  }
  service.Start();
  service.Drain();
  for (size_t i = 0; i < steps.size(); ++i) {
    const eng::Response& response = tickets[i].Wait();
    ASSERT_TRUE(response.ok())
        << "seed " << seed << " step " << i << ": " << response.error;
    if (!steps[i].is_update) {
      ExpectSameResult(expected[i], response.result, seed, i);
    }
  }
  const eng::ServiceStats stats = service.Stats();
  EXPECT_GT(stats.plan.groups, 0u) << "seed " << seed;
  service.Stop();

  // Both stores saw the same deltas: epochs advanced in lockstep.
  EXPECT_EQ(service_bundle->live_objects().epoch(),
            reference_bundle->live_objects().epoch());
}

TEST_P(CoalesceDifferentialTest, DistanceMultiMatchesDistance) {
  const uint64_t seed = GetParam();
  Venue venue = testing::RandomSynthVenue(seed);
  const D2DGraph graph(venue);
  const eng::QueryEngine engine(venue, graph, {});
  const VIPDistanceQuery query(engine.tree());

  // One exact source point repeated across every pair: the strongest
  // sharing case (one descent per join child, one leaf Dijkstra for the
  // whole same-leaf group). Targets mix random points (mostly cross-leaf)
  // with points near the source's leaf (same-leaf, including the
  // intra-partition seeding branch when target == source partition).
  Rng rng(seed ^ 0xD15C0);
  const IndoorPoint source = synth::RandomIndoorPoint(venue, rng);
  std::vector<IndoorPoint> sources, targets;
  for (int i = 0; i < 16; ++i) {
    sources.push_back(source);
    if (i % 4 == 3) {
      IndoorPoint near = source;
      near.position.x += rng.UniformReal(-1.0, 1.0);
      near.position.y += rng.UniformReal(-1.0, 1.0);
      targets.push_back(near);
    } else {
      targets.push_back(synth::RandomIndoorPoint(venue, rng));
    }
  }

  std::vector<double> expected;
  for (size_t k = 0; k < sources.size(); ++k) {
    expected.push_back(query.Distance(sources[k], targets[k]));
  }
  std::vector<double> actual(sources.size(), kInfDistance);
  MultiDistanceStats stats;
  query.DistanceMulti(
      Span<const IndoorPoint>(sources.data(), sources.size()),
      Span<const IndoorPoint>(targets.data(), targets.size()), actual.data(),
      &stats);
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(expected[k], actual[k]) << "seed " << seed << " pair " << k;
  }
  // 16 pairs from one source point: expansions must have been shared.
  EXPECT_GT(stats.ascents_computed, 0u) << "seed " << seed;
  EXPECT_GT(stats.ascents_reused, 0u) << "seed " << seed;
  EXPECT_EQ(stats.ascents_computed + stats.ascents_reused, sources.size())
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalesceDifferentialTest,
                         ::testing::Range<uint64_t>(0, 24),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace viptree
