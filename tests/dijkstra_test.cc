#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "common/span.h"

namespace viptree {
namespace {

using testing::D;

class DijkstraPaperTest : public ::testing::Test {
 protected:
  DijkstraPaperTest() : example_(testing::MakePaperExample()) {}
  testing::PaperExample example_;
};

TEST_F(DijkstraPaperTest, DistancesMatchPaperWorkedValues) {
  DijkstraEngine engine(example_.graph);
  engine.Start(D(2));
  engine.RunAll();
  // Example 4 of the paper: distances from d2.
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(1)), 2.0);
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(6)), 7.0);
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(7)), 11.0);
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(10)), 13.0);
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(20)), 23.0);
}

TEST_F(DijkstraPaperTest, FullPathFromD1ToD20) {
  DijkstraEngine engine(example_.graph);
  engine.Start(D(1));
  const DoorId target = D(20);
  engine.RunToTargets(viptree::Span<const DoorId>(&target, 1));
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(20)), 25.0);
  // §2.1.1: "the shortest path from d1 to d20 is
  //   d1 -> d2 -> d3 -> d5 -> d6 -> d10 -> d15 -> d20".
  const std::vector<DoorId> expected = {D(1), D(2), D(3),  D(5),
                                        D(6), D(10), D(15), D(20)};
  EXPECT_EQ(engine.PathTo(D(20)), expected);
}

TEST_F(DijkstraPaperTest, EarlyTerminationSettlesFewerDoors) {
  DijkstraEngine engine(example_.graph);
  engine.Start(D(1));
  const std::vector<DoorId> targets = {D(2), D(3)};
  const size_t reached = engine.RunToTargets(targets);
  EXPECT_EQ(reached, 2u);
  EXPECT_LT(engine.NumSettledInSearch(), example_.graph.NumVertices());
}

TEST_F(DijkstraPaperTest, MultiSourceUsesOffsets) {
  // A query point 1.0 from d2 and 5.0 from d4 inside P1.
  DijkstraEngine engine(example_.graph);
  const std::vector<DijkstraSource> sources = {{D(2), 1.0}, {D(4), 5.0}};
  engine.Start(sources);
  engine.RunAll();
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(2)), 1.0);
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(4)), 5.0);
  // d1 reached through d2: 1 + 2.
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(1)), 3.0);
  EXPECT_EQ(engine.ParentOf(D(2)), kInvalidId);  // a source
}

TEST_F(DijkstraPaperTest, EngineIsReusableAcrossSearches) {
  DijkstraEngine engine(example_.graph);
  engine.Start(D(1));
  engine.RunAll();
  const double first = engine.DistanceTo(D(20));

  engine.Start(D(20));
  engine.RunAll();
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(1)), first);  // symmetric graph
  // Distances from the previous epoch must not leak.
  engine.Start(D(16));
  EXPECT_EQ(engine.DistanceTo(D(1)), kInfDistance);
  engine.RunAll();
  EXPECT_NE(engine.DistanceTo(D(1)), kInfDistance);
}

TEST_F(DijkstraPaperTest, SettleNextYieldsNondecreasingDistances) {
  DijkstraEngine engine(example_.graph);
  engine.Start(D(11));
  double last = 0.0;
  size_t count = 0;
  while (true) {
    const SettledDoor s = engine.SettleNext();
    if (s.door == kInvalidId) break;
    EXPECT_GE(s.distance, last);
    last = s.distance;
    ++count;
  }
  EXPECT_EQ(count, example_.graph.NumVertices());  // connected graph
}

TEST_F(DijkstraPaperTest, ParentViaReportsTraversedPartition) {
  DijkstraEngine engine(example_.graph);
  engine.Start(D(15));
  const DoorId target = D(20);
  engine.RunToTargets(viptree::Span<const DoorId>(&target, 1));
  // d15 -> d20 is a direct edge through P13.
  EXPECT_DOUBLE_EQ(engine.DistanceTo(D(20)), 4.0);
  EXPECT_EQ(engine.ParentOf(D(20)), D(15));
  EXPECT_EQ(engine.ParentVia(D(20)), testing::P(13));
}

TEST(DijkstraTest, RunWithinStopsAtRadius) {
  const testing::PaperExample example = testing::MakePaperExample();
  DijkstraEngine engine(example.graph);
  engine.Start(D(2));
  engine.RunWithin(7.0);
  EXPECT_TRUE(engine.Settled(D(1)));   // dist 2
  EXPECT_TRUE(engine.Settled(D(6)));   // dist 7
  EXPECT_FALSE(engine.Settled(D(20)));  // dist 23
}

TEST(DijkstraTest, UnreachableVertexStaysInfinite) {
  // Two disconnected doors in an explicit graph.
  const std::vector<ExplicitD2DEdge> edges = {{0, 1, 1.0f, 0}};
  const D2DGraph graph(4, edges);  // doors 2 and 3 isolated
  DijkstraEngine engine(graph);
  engine.Start(0);
  engine.RunAll();
  EXPECT_EQ(engine.DistanceTo(2), kInfDistance);
  EXPECT_EQ(engine.DistanceTo(3), kInfDistance);
  EXPECT_DOUBLE_EQ(engine.DistanceTo(1), 1.0);
}

}  // namespace
}  // namespace viptree
