// Unit tests for the engine façade: typed Query/Result dispatch, batch
// scheduling (thread counts, shard sizes, empty/small batches), statistics
// aggregation, and object-set swapping.

#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/d2d_graph.h"
#include "ground_truth.h"
#include "synth/building_generator.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : venue_(MakeVenue()), graph_(venue_) {}

  static Venue MakeVenue() {
    synth::BuildingConfig cfg;
    cfg.floors = 3;
    cfg.rooms_per_floor = 18;
    cfg.staircases = 2;
    return synth::GenerateStandaloneBuilding(cfg, /*seed=*/77);
  }

  eng::QueryEngine MakeEngine(size_t num_objects) {
    Rng rng(5);
    std::vector<IndoorPoint> objects =
        synth::PlaceObjects(venue_, num_objects, rng);
    eng::EngineOptions options;
    options.object_keywords.resize(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      options.object_keywords[i] = {i % 2 == 0 ? "even" : "odd"};
    }
    return eng::QueryEngine(venue_, graph_, std::move(objects), options);
  }

  Venue venue_;
  D2DGraph graph_;
};

TEST_F(EngineTest, TypedResultsCarryTheRightFields) {
  const eng::QueryEngine engine = MakeEngine(6);
  Rng rng(9);
  const IndoorPoint a = synth::RandomIndoorPoint(venue_, rng);
  const IndoorPoint b = synth::RandomIndoorPoint(venue_, rng);

  const eng::Result d = engine.Run(eng::Query::Distance(a, b));
  EXPECT_EQ(d.type, eng::QueryType::kDistance);
  EXPECT_LT(d.distance, kInfDistance);
  EXPECT_TRUE(d.doors.empty());
  EXPECT_TRUE(d.objects.empty());
  EXPECT_GT(d.visited_nodes, 0u);
  EXPECT_GE(d.latency_micros, 0.0);

  const eng::Result p = engine.Run(eng::Query::Path(a, b));
  EXPECT_EQ(p.type, eng::QueryType::kPath);
  EXPECT_DOUBLE_EQ(p.distance, d.distance);
  EXPECT_NEAR(testing::PointPathLength(venue_, graph_, a, b, p.doors),
              p.distance, 1e-2 + p.distance * 1e-4);

  const eng::Result knn = engine.Run(eng::Query::Knn(a, 3));
  EXPECT_EQ(knn.type, eng::QueryType::kKnn);
  ASSERT_EQ(knn.objects.size(), 3u);
  EXPECT_LE(knn.objects[0].distance, knn.objects[1].distance);
  EXPECT_LE(knn.objects[1].distance, knn.objects[2].distance);

  const eng::Result range = engine.Run(eng::Query::Range(a, 60.0));
  EXPECT_EQ(range.type, eng::QueryType::kRange);
  for (const ObjectResult& r : range.objects) {
    EXPECT_LE(r.distance, 60.0);
  }

  const eng::Result kw = engine.Run(eng::Query::BooleanKnn(a, 2, {"even"}));
  EXPECT_EQ(kw.type, eng::QueryType::kBooleanKnn);
  for (const ObjectResult& r : kw.objects) {
    EXPECT_EQ(r.object % 2, 0) << "only even-tagged objects may match";
  }
  // Unknown keyword: empty result, not an error.
  EXPECT_TRUE(
      engine.Run(eng::Query::BooleanKnn(a, 2, {"nonexistent"})).objects
          .empty());
}

TEST_F(EngineTest, BatchSchedulingIsIndependentOfThreadAndShardCounts) {
  const eng::QueryEngine engine = MakeEngine(6);
  Rng rng(11);
  std::vector<eng::Query> batch;
  for (int i = 0; i < 37; ++i) {  // deliberately not a multiple of a shard
    const IndoorPoint a = synth::RandomIndoorPoint(venue_, rng);
    const IndoorPoint b = synth::RandomIndoorPoint(venue_, rng);
    batch.push_back(i % 2 == 0 ? eng::Query::Distance(a, b)
                               : eng::Query::Knn(a, 2));
  }
  const std::vector<eng::Result> reference = engine.RunSequential(batch);

  for (const size_t threads : {1u, 2u, 3u, 8u, 64u}) {
    for (const size_t shard : {1u, 4u, 1000u}) {
      eng::BatchOptions options;
      options.num_threads = threads;
      options.shard_size = shard;
      const eng::BatchResult run = engine.RunBatch(batch, options);
      ASSERT_EQ(run.results.size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(run.results[i].distance, reference[i].distance)
            << "threads=" << threads << " shard=" << shard << " i=" << i;
        ASSERT_EQ(run.results[i].objects.size(),
                  reference[i].objects.size());
      }
    }
  }
}

TEST_F(EngineTest, EmptyAndTinyBatches) {
  const eng::QueryEngine engine = MakeEngine(4);
  const eng::BatchResult empty =
      engine.RunBatch(Span<const eng::Query>(), {/*num_threads=*/4});
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.stats.num_queries, 0u);
  EXPECT_EQ(empty.stats.latency_micros.count, 0u);

  Rng rng(3);
  const IndoorPoint a = synth::RandomIndoorPoint(venue_, rng);
  const std::vector<eng::Query> one{eng::Query::Knn(a, 1)};
  // More threads than queries must clamp, not spawn idle workers.
  const eng::BatchResult single = engine.RunBatch(one, {/*num_threads=*/16});
  ASSERT_EQ(single.results.size(), 1u);
  EXPECT_EQ(single.stats.num_threads, 1u);
}

TEST_F(EngineTest, ZeroThreadsMeansHardwareConcurrencyClampedToOne) {
  // BatchOptions::num_threads == 0 resolves to hardware_concurrency(),
  // clamped to >= 1 — the documented contract, which must hold even on
  // hosts where hardware_concurrency() reports 0 or 1 (single-core CI).
  const eng::QueryEngine engine = MakeEngine(5);
  Rng rng(17);
  std::vector<eng::Query> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(eng::Query::Distance(
        synth::RandomIndoorPoint(venue_, rng),
        synth::RandomIndoorPoint(venue_, rng)));
  }
  const std::vector<eng::Result> reference = engine.RunSequential(batch);

  const eng::BatchResult run = engine.RunBatch(batch, {/*num_threads=*/0});
  const size_t expected_threads = std::min(
      batch.size(),
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  EXPECT_EQ(run.stats.num_threads, expected_threads);
  EXPECT_GE(run.stats.num_threads, 1u);
  ASSERT_EQ(run.results.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(run.results[i].distance, reference[i].distance) << "i=" << i;
  }
}

TEST_F(EngineTest, AggregateStatsAreConsistent) {
  const eng::QueryEngine engine = MakeEngine(8);
  Rng rng(21);
  std::vector<eng::Query> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(eng::Query::Distance(
        synth::RandomIndoorPoint(venue_, rng),
        synth::RandomIndoorPoint(venue_, rng)));
  }
  const eng::BatchResult run = engine.RunBatch(batch, {/*num_threads=*/2});
  EXPECT_EQ(run.stats.num_queries, 50u);
  EXPECT_EQ(run.stats.latency_micros.count, 50u);
  EXPECT_GT(run.stats.wall_millis, 0.0);
  EXPECT_GT(run.stats.queries_per_second, 0.0);
  EXPECT_GT(run.stats.visited_nodes, 0u);
  EXPECT_LE(run.stats.latency_micros.min, run.stats.latency_micros.p50);
  EXPECT_LE(run.stats.latency_micros.p50, run.stats.latency_micros.p95);
  EXPECT_LE(run.stats.latency_micros.p95, run.stats.latency_micros.max);
}

TEST_F(EngineTest, SetObjectsSwapsTheWorkloadWithoutRebuildingTheTree) {
  eng::QueryEngine engine = MakeEngine(4);
  const VIPTree* tree_before = &engine.tree();
  Rng rng(31);
  const IndoorPoint q = synth::RandomIndoorPoint(venue_, rng);

  // Swap to a single object co-located with the query point: it must be the
  // unique kNN answer.
  engine.SetObjects({q});
  EXPECT_EQ(&engine.tree(), tree_before);
  const auto nearest = engine.Run(eng::Query::Knn(q, 3)).objects;
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0].object, 0);
  EXPECT_NEAR(nearest[0].distance, 0.0, 1e-9);

  // Keywords are rebuilt with the objects.
  EXPECT_FALSE(engine.has_keywords());
  engine.SetObjects({q}, {{"tag"}});
  EXPECT_TRUE(engine.has_keywords());
  EXPECT_EQ(engine.Run(eng::Query::BooleanKnn(q, 1, {"tag"})).objects.size(),
            1u);
}

TEST_F(EngineTest, EngineIsSelfContainedAfterConstruction) {
  // The engine owns its bundle: the venue/graph/objects it was built from
  // may die first, and the engine keeps serving. (Under ASan this test
  // would catch any lingering reference into the caller's storage.)
  std::unique_ptr<eng::QueryEngine> engine;
  {
    Venue venue = MakeVenue();
    Rng rng(5);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 6, rng);
    engine = std::make_unique<eng::QueryEngine>(std::move(venue),
                                                std::move(objects));
  }
  Rng rng(13);
  const IndoorPoint a = synth::RandomIndoorPoint(engine->venue(), rng);
  const IndoorPoint b = synth::RandomIndoorPoint(engine->venue(), rng);
  EXPECT_LT(engine->Run(eng::Query::Distance(a, b)).distance, kInfDistance);
  EXPECT_EQ(engine->Run(eng::Query::Knn(a, 3)).objects.size(), 3u);
}

TEST_F(EngineTest, ObjectReplacementThroughTheBundle) {
  // Build through an explicit VenueBundle, adopt it, and swap the object
  // set: the bundle the engine exposes must reflect the replacement while
  // the tree (and the venue behind it) stays the same instance.
  eng::VenueBundle bundle =
      eng::VenueBundle::BuildFrom(venue_, graph_, /*objects=*/{});
  EXPECT_EQ(bundle.objects().NumObjects(), 0u);
  eng::QueryEngine engine(std::move(bundle));

  const Venue* venue_before = &engine.venue();
  const VIPTree* tree_before = &engine.tree();
  Rng rng(23);
  const std::vector<IndoorPoint> objects =
      synth::PlaceObjects(engine.venue(), 5, rng);
  engine.SetObjects(objects, {{"a"}, {"b"}, {"a"}, {"b"}, {"a"}});

  EXPECT_EQ(&engine.venue(), venue_before);
  EXPECT_EQ(&engine.tree(), tree_before);
  EXPECT_EQ(engine.bundle().objects().NumObjects(), 5u);
  EXPECT_TRUE(engine.bundle().has_keywords());

  const IndoorPoint q = objects[0];
  const auto nearest = engine.Run(eng::Query::Knn(q, 1)).objects;
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0].object, 0);
  EXPECT_NEAR(nearest[0].distance, 0.0, 1e-9);

  // Replacement also drops the keyword index when none is supplied.
  engine.SetObjects(objects);
  EXPECT_FALSE(engine.has_keywords());
}

TEST_F(EngineTest, SetObjectsBetweenBatchesIsWellDefined) {
  // The documented contract: SetObjects must never overlap RunBatch (the
  // engine CHECK-aborts on that misuse — an in-flight batch counter guards
  // it). The well-defined sequence batch -> swap -> batch must keep
  // working, with the second batch seeing exactly the new object set.
  eng::QueryEngine engine = MakeEngine(6);
  Rng rng(41);
  const IndoorPoint a = synth::RandomIndoorPoint(venue_, rng);
  const std::vector<eng::Query> batch{eng::Query::Knn(a, 100)};

  const eng::BatchResult before = engine.RunBatch(batch, {/*threads=*/2});
  ASSERT_EQ(before.results[0].objects.size(), 6u);

  engine.SetObjects({a});
  const eng::BatchResult after = engine.RunBatch(batch, {/*threads=*/2});
  ASSERT_EQ(after.results[0].objects.size(), 1u);
  EXPECT_NEAR(after.results[0].objects[0].distance, 0.0, 1e-9);
}

TEST_F(EngineTest, QueryTypeNames) {
  EXPECT_STREQ(eng::QueryTypeName(eng::QueryType::kDistance), "distance");
  EXPECT_STREQ(eng::QueryTypeName(eng::QueryType::kPath), "path");
  EXPECT_STREQ(eng::QueryTypeName(eng::QueryType::kKnn), "knn");
  EXPECT_STREQ(eng::QueryTypeName(eng::QueryType::kRange), "range");
  EXPECT_STREQ(eng::QueryTypeName(eng::QueryType::kBooleanKnn),
               "boolean-knn");
}

}  // namespace
}  // namespace viptree
