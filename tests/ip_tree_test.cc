#include "core/ip_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "core/leaf_assembler.h"
#include "core/vip_tree.h"
#include "paper_example.h"
#include "synth/building_generator.h"
#include "common/span.h"

namespace viptree {
namespace {

using testing::D;
using testing::P;

class PaperTreeTest : public ::testing::Test {
 protected:
  PaperTreeTest()
      : example_(testing::MakePaperExample()),
        tree_(IPTree::Build(example_.venue, example_.graph,
                            {.min_degree = 2,
                             .forced_leaf_assignment =
                                 example_.leaf_assignment})) {}

  // Finds the leaf node whose partitions match the given paper leaf index.
  NodeId Leaf(int paper_leaf) const {
    for (PartitionId p = 0; p < 17; ++p) {
      if (example_.leaf_assignment[p] == paper_leaf) {
        return tree_.LeafOfPartition(p);
      }
    }
    return kInvalidId;
  }

  std::set<DoorId> AccessDoors(NodeId n) const {
    const auto& ad = tree_.node(n).access_doors;
    return {ad.begin(), ad.end()};
  }

  testing::PaperExample example_;
  IPTree tree_;
};

TEST_F(PaperTreeTest, TreeShapeMatchesFig3) {
  EXPECT_EQ(tree_.num_leaves(), 4u);
  // 4 leaves + N5 + N6 + N7 = 7 nodes.
  EXPECT_EQ(tree_.nodes().size(), 7u);
  EXPECT_EQ(tree_.height(), 3);
}

TEST_F(PaperTreeTest, AccessDoorsMatchFig3) {
  const NodeId n1 = Leaf(0);
  const NodeId n2 = Leaf(1);
  const NodeId n3 = Leaf(2);
  const NodeId n4 = Leaf(3);
  EXPECT_EQ(AccessDoors(n1), (std::set<DoorId>{D(1), D(6)}));
  EXPECT_EQ(AccessDoors(n2), (std::set<DoorId>{D(6), D(7), D(10)}));
  EXPECT_EQ(AccessDoors(n3), (std::set<DoorId>{D(10), D(15)}));
  EXPECT_EQ(AccessDoors(n4), (std::set<DoorId>{D(15), D(20)}));

  const NodeId n5 = tree_.node(n1).parent;
  const NodeId n6 = tree_.node(n4).parent;
  EXPECT_EQ(tree_.node(n2).parent, n5);
  EXPECT_EQ(tree_.node(n3).parent, n6);
  EXPECT_EQ(AccessDoors(n5), (std::set<DoorId>{D(1), D(7), D(10)}));
  EXPECT_EQ(AccessDoors(n6), (std::set<DoorId>{D(10), D(20)}));
  EXPECT_EQ(AccessDoors(tree_.root()),
            (std::set<DoorId>{D(1), D(7), D(20)}));
}

TEST_F(PaperTreeTest, LeafMatrixOfN1MatchesFig3) {
  const TreeNode& n1 = tree_.node(Leaf(0));
  // Distances of the N1 matrix.
  EXPECT_FLOAT_EQ(tree_.LeafMatrixDist(n1, D(1), D(6)), 9.0f);
  EXPECT_FLOAT_EQ(tree_.LeafMatrixDist(n1, D(2), D(6)), 7.0f);
  EXPECT_FLOAT_EQ(tree_.LeafMatrixDist(n1, D(3), D(6)), 4.0f);
  EXPECT_FLOAT_EQ(tree_.LeafMatrixDist(n1, D(4), D(6)), 7.0f);
  EXPECT_FLOAT_EQ(tree_.LeafMatrixDist(n1, D(5), D(6)), 2.0f);
  EXPECT_FLOAT_EQ(tree_.LeafMatrixDist(n1, D(2), D(1)), 2.0f);
  // Next-hop doors: first door on the path from row-door to access door.
  EXPECT_EQ(tree_.LeafMatrixNextHop(n1, D(1), D(6)), D(2));  // §2.1.1
  EXPECT_EQ(tree_.LeafMatrixNextHop(n1, D(2), D(6)), D(3));  // §2.1.1
  EXPECT_EQ(tree_.LeafMatrixNextHop(n1, D(3), D(6)), D(5));
  EXPECT_EQ(tree_.LeafMatrixNextHop(n1, D(5), D(6)), kInvalidId);  // direct
  EXPECT_EQ(tree_.LeafMatrixNextHop(n1, D(4), D(1)), kInvalidId);  // direct
}

TEST_F(PaperTreeTest, NonLeafMatricesMatchFig3) {
  const NodeId n5 = tree_.node(Leaf(0)).parent;
  const TreeNode& n5_node = tree_.node(n5);
  auto entry = [this](const TreeNode& n, DoorId a, DoorId b) {
    const int r = IPTree::IndexOf(n.matrix_doors, a);
    const int c = IPTree::IndexOf(n.matrix_doors, b);
    EXPECT_GE(r, 0);
    EXPECT_GE(c, 0);
    return std::make_pair(n.dist.at(r, c), n.next_hop.at(r, c));
  };
  // N5's matrix over {d1, d6, d7, d10}.
  EXPECT_EQ(n5_node.matrix_doors,
            (std::vector<DoorId>{D(1), D(6), D(7), D(10)}));
  EXPECT_FLOAT_EQ(entry(n5_node, D(1), D(7)).first, 13.0f);
  EXPECT_EQ(entry(n5_node, D(1), D(7)).second, D(6));
  EXPECT_FLOAT_EQ(entry(n5_node, D(1), D(10)).first, 15.0f);
  EXPECT_EQ(entry(n5_node, D(1), D(10)).second, D(6));
  EXPECT_FLOAT_EQ(entry(n5_node, D(6), D(7)).first, 4.0f);
  EXPECT_EQ(entry(n5_node, D(6), D(7)).second, kInvalidId);
  EXPECT_FLOAT_EQ(entry(n5_node, D(6), D(10)).first, 6.0f);

  // N7's matrix over {d1, d7, d10, d20}.
  const TreeNode& root = tree_.node(tree_.root());
  EXPECT_EQ(root.matrix_doors,
            (std::vector<DoorId>{D(1), D(7), D(10), D(20)}));
  EXPECT_FLOAT_EQ(entry(root, D(1), D(20)).first, 25.0f);
  EXPECT_EQ(entry(root, D(1), D(20)).second, D(10));  // §2.1.1
  EXPECT_FLOAT_EQ(entry(root, D(7), D(20)).first, 17.0f);
  EXPECT_EQ(entry(root, D(7), D(20)).second, D(10));
  EXPECT_FLOAT_EQ(entry(root, D(1), D(7)).first, 13.0f);
  EXPECT_EQ(entry(root, D(1), D(7)).second, kInvalidId);  // paper: NULL
  EXPECT_FLOAT_EQ(entry(root, D(10), D(20)).first, 10.0f);
}

TEST_F(PaperTreeTest, SuperiorDoorsOfP1MatchFig5a) {
  const viptree::Span<const DoorId> sup = tree_.SuperiorDoors(P(1));
  EXPECT_EQ(std::set<DoorId>(sup.begin(), sup.end()),
            (std::set<DoorId>{D(1), D(5)}));
}

TEST_F(PaperTreeTest, GlobalAccessDoorFlags) {
  const std::set<DoorId> access = {D(1), D(6), D(7), D(10), D(15), D(20)};
  for (DoorId d = 0; d < 20; ++d) {
    EXPECT_EQ(tree_.IsAccessDoor(d), access.count(d) > 0) << "d" << (d + 1);
  }
}

TEST_F(PaperTreeTest, VipExtendedMatricesMatchExample4) {
  VIPTree vip = VIPTree::Build(example_.venue, example_.graph,
                               {.min_degree = 2,
                                .forced_leaf_assignment =
                                    example_.leaf_assignment});
  // Example 4 / Fig. 5(b): distances from d2 to ancestor access doors.
  const IPTree& base = vip.base();
  const NodeId root = base.root();
  auto col_of = [&base](NodeId n, DoorId a) {
    return static_cast<size_t>(
        IPTree::IndexOf(base.node(n).access_doors, a));
  };
  EXPECT_FLOAT_EQ(vip.ExtDist(root, D(2), col_of(root, D(1))), 2.0f);
  EXPECT_FLOAT_EQ(vip.ExtDist(root, D(2), col_of(root, D(7))), 11.0f);
  EXPECT_FLOAT_EQ(vip.ExtDist(root, D(2), col_of(root, D(20))), 23.0f);
  const NodeId n5 = base.node(base.LeafOfPartition(P(1))).parent;
  EXPECT_FLOAT_EQ(vip.ExtDist(n5, D(2), col_of(n5, D(10))), 13.0f);
}

TEST(LeafAssemblerTest, PaperVenueAutoAssembly) {
  const testing::PaperExample example = testing::MakePaperExample();
  const LeafAssignment assignment = AssembleLeaves(example.venue);
  // Four hallways -> four leaves; every partition assigned.
  EXPECT_EQ(assignment.num_leaves, 4);
  for (PartitionId p = 0; p < 17; ++p) {
    EXPECT_GE(assignment.leaf_of_partition[p], 0);
    EXPECT_LT(assignment.leaf_of_partition[p], 4);
  }
  // Rule ii: at most one hallway per leaf.
  std::vector<int> hallways(4, 0);
  for (PartitionId p = 0; p < 17; ++p) {
    if (example.venue.Classify(p) == PartitionClass::kHallway) {
      ++hallways[assignment.leaf_of_partition[p]];
    }
  }
  for (int h : hallways) EXPECT_EQ(h, 1);
  // No-through partitions join the leaf of their only neighbour.
  EXPECT_EQ(assignment.leaf_of_partition[P(2)],
            assignment.leaf_of_partition[P(1)]);
  EXPECT_EQ(assignment.leaf_of_partition[P(9)],
            assignment.leaf_of_partition[P(12)]);
}

TEST(LeafAssemblerTest, HallwayFreeVenueStillAssembles) {
  // A chain of small rooms with no hallway at all.
  VenueBuilder builder;
  std::vector<PartitionId> rooms;
  for (int i = 0; i < 6; ++i) {
    rooms.push_back(builder.AddPartition(0, PartitionUse::kRoom,
                                         Point{double(i), 0, 0}));
    if (i > 0) {
      builder.AddDoor(rooms[i - 1], rooms[i], Point{i - 0.5, 0, 0});
    }
  }
  const Venue venue = std::move(builder).Build();
  const LeafAssignment assignment = AssembleLeaves(venue);
  EXPECT_GE(assignment.num_leaves, 1);
  for (int leaf : assignment.leaf_of_partition) EXPECT_GE(leaf, 0);
}

TEST(IPTreeBuildTest, GeneratedBuildingInvariants) {
  synth::BuildingConfig cfg;
  cfg.floors = 4;
  cfg.rooms_per_floor = 24;
  cfg.staircases = 2;
  cfg.lifts = 1;
  const Venue venue = synth::GenerateStandaloneBuilding(cfg, 77);
  const D2DGraph graph(venue);
  const IPTree tree = IPTree::Build(venue, graph);

  // Every partition in exactly one leaf; every leaf has >= 1 partition.
  std::vector<int> count(tree.nodes().size(), 0);
  for (PartitionId p = 0; p < (PartitionId)venue.NumPartitions(); ++p) {
    const NodeId leaf = tree.LeafOfPartition(p);
    ASSERT_TRUE(tree.node(leaf).is_leaf());
    ++count[leaf];
  }
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf()) {
      EXPECT_GT(count[n.id], 0);
      EXPECT_FALSE(n.access_doors.empty());
    } else {
      EXPECT_GE(n.children.size(), 2u);
      for (NodeId c : n.children) EXPECT_EQ(tree.node(c).parent, n.id);
    }
  }
  // The paper's observation: rho stays small.
  const IPTree::Stats stats = tree.ComputeStats();
  EXPECT_LT(stats.avg_access_doors, 10.0);
  EXPECT_LT(stats.avg_superior_doors, 5.0);
  EXPECT_GT(stats.num_leaves, 1u);
}

TEST(IPTreeBuildTest, MinDegreeControlsFanout) {
  synth::BuildingConfig cfg;
  cfg.floors = 6;
  cfg.rooms_per_floor = 20;
  const Venue venue = synth::GenerateStandaloneBuilding(cfg, 78);
  const D2DGraph graph(venue);
  const IPTree t2 = IPTree::Build(venue, graph, {.min_degree = 2});
  const IPTree t4 = IPTree::Build(venue, graph, {.min_degree = 4});
  EXPECT_GE(t2.height(), t4.height());
  const IPTree::Stats s4 = t4.ComputeStats();
  EXPECT_GE(s4.avg_children, 3.0);  // min degree 4 nodes (root may be small)
}

TEST(IPTreeBuildTest, LcaAndContainment) {
  const testing::PaperExample example = testing::MakePaperExample();
  const IPTree tree = IPTree::Build(example.venue, example.graph,
                                    {.min_degree = 2,
                                     .forced_leaf_assignment =
                                         example.leaf_assignment});
  const NodeId l1 = tree.LeafOfPartition(P(1));
  const NodeId l2 = tree.LeafOfPartition(P(5));
  const NodeId l4 = tree.LeafOfPartition(P(17));
  EXPECT_EQ(tree.Lca(l1, l2), tree.node(l1).parent);
  EXPECT_EQ(tree.Lca(l1, l4), tree.root());
  EXPECT_EQ(tree.Lca(l1, l1), l1);
  EXPECT_TRUE(tree.NodeContainsLeaf(tree.root(), l1));
  EXPECT_TRUE(tree.NodeContainsLeaf(tree.node(l1).parent, l2));
  EXPECT_FALSE(tree.NodeContainsLeaf(tree.node(l1).parent, l4));
}

}  // namespace
}  // namespace viptree
