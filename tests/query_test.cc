#include "core/distance_query.h"

#include <gtest/gtest.h>

#include "core/path_query.h"
#include "ground_truth.h"
#include "paper_example.h"
#include "synth/building_generator.h"
#include "synth/campus_generator.h"
#include "synth/objects.h"

namespace viptree {
namespace {

using testing::BruteDistance;
using testing::D;
using testing::MakePaperExample;
using testing::PointPathLength;

class PaperQueryTest : public ::testing::Test {
 protected:
  PaperQueryTest()
      : example_(MakePaperExample()),
        tree_(IPTree::Build(example_.venue, example_.graph,
                            {.min_degree = 2,
                             .forced_leaf_assignment =
                                 example_.leaf_assignment})),
        vip_(VIPTree::Build(example_.venue, example_.graph,
                            {.min_degree = 2,
                             .forced_leaf_assignment =
                                 example_.leaf_assignment})) {}

  testing::PaperExample example_;
  IPTree tree_;
  VIPTree vip_;
};

TEST_F(PaperQueryTest, Example4DistancesIp) {
  IPDistanceQuery query(tree_);
  EXPECT_DOUBLE_EQ(query.DoorDistance(D(2), D(1)), 2.0);
  EXPECT_DOUBLE_EQ(query.DoorDistance(D(2), D(7)), 11.0);
  EXPECT_DOUBLE_EQ(query.DoorDistance(D(2), D(10)), 13.0);
  EXPECT_DOUBLE_EQ(query.DoorDistance(D(2), D(20)), 23.0);
}

TEST_F(PaperQueryTest, Example4DistancesVip) {
  VIPDistanceQuery query(vip_);
  EXPECT_DOUBLE_EQ(query.DoorDistance(D(2), D(1)), 2.0);
  EXPECT_DOUBLE_EQ(query.DoorDistance(D(2), D(7)), 11.0);
  EXPECT_DOUBLE_EQ(query.DoorDistance(D(2), D(10)), 13.0);
  EXPECT_DOUBLE_EQ(query.DoorDistance(D(2), D(20)), 23.0);
}

TEST_F(PaperQueryTest, AllDoorPairsMatchDijkstra) {
  IPDistanceQuery ip(tree_);
  VIPDistanceQuery vip(vip_);
  DijkstraEngine engine(example_.graph);
  for (DoorId s = 0; s < 20; ++s) {
    engine.Start(s);
    engine.RunAll();
    for (DoorId t = 0; t < 20; ++t) {
      const double expected = engine.DistanceTo(t);
      EXPECT_NEAR(ip.DoorDistance(s, t), expected, 1e-4)
          << "IP d" << s + 1 << "->d" << t + 1;
      EXPECT_NEAR(vip.DoorDistance(s, t), expected, 1e-4)
          << "VIP d" << s + 1 << "->d" << t + 1;
    }
  }
}

TEST_F(PaperQueryTest, FullPathD1ToD20) {
  // §2.1.1: d1 -> d2 -> d3 -> d5 -> d6 -> d10 -> d15 -> d20.
  const std::vector<DoorId> expected = {D(1), D(2),  D(3),  D(5),
                                        D(6), D(10), D(15), D(20)};
  IPPathQuery ip(tree_);
  IndoorPath p = ip.DoorPath(D(1), D(20));
  EXPECT_DOUBLE_EQ(p.distance, 25.0);
  EXPECT_EQ(p.doors, expected);

  VIPPathQuery vip(vip_);
  IndoorPath pv = vip.DoorPath(D(1), D(20));
  EXPECT_DOUBLE_EQ(pv.distance, 25.0);
  EXPECT_EQ(pv.doors, expected);
}

TEST_F(PaperQueryTest, Example5DecompositionD2ToD6) {
  // Example 5: d2 -> d6 decomposes to d2 -> d3 -> d5 -> d6.
  IPPathQuery ip(tree_);
  const IndoorPath p = ip.DoorPath(D(2), D(6));
  EXPECT_DOUBLE_EQ(p.distance, 7.0);
  EXPECT_EQ(p.doors, (std::vector<DoorId>{D(2), D(3), D(5), D(6)}));
}

TEST_F(PaperQueryTest, AllDoorPairPathsAreConsistent) {
  IPPathQuery ip(tree_);
  VIPPathQuery vip(vip_);
  for (DoorId s = 0; s < 20; ++s) {
    for (DoorId t = 0; t < 20; ++t) {
      const IndoorPath a = ip.DoorPath(s, t);
      const IndoorPath b = vip.DoorPath(s, t);
      EXPECT_NEAR(a.distance, b.distance, 1e-4);
      // The door sequences must be walkable and sum to the distance.
      EXPECT_NEAR(testing::DoorPathLength(example_.graph, a.doors),
                  a.distance, 1e-4)
          << "IP path d" << s + 1 << "->d" << t + 1;
      EXPECT_NEAR(testing::DoorPathLength(example_.graph, b.doors),
                  b.distance, 1e-4)
          << "VIP path d" << s + 1 << "->d" << t + 1;
      ASSERT_FALSE(a.doors.empty());
      EXPECT_EQ(a.doors.front(), s);
      EXPECT_EQ(a.doors.back(), t);
    }
  }
}

// ---------------------------------------------------------------------------
// Property tests on generated venues.
// ---------------------------------------------------------------------------

struct VenueCase {
  const char* name;
  Venue venue;
};

class PropertyTest : public ::testing::TestWithParam<int> {};

Venue MakeVenueForCase(int which) {
  switch (which) {
    case 0: {
      synth::BuildingConfig cfg;
      cfg.floors = 3;
      cfg.rooms_per_floor = 18;
      cfg.staircases = 2;
      cfg.lifts = 1;
      cfg.extra_corridor_door_prob = 0.2;
      cfg.inter_room_door_prob = 0.25;
      return synth::GenerateStandaloneBuilding(cfg, 101);
    }
    case 1: {
      synth::BuildingConfig cfg;
      cfg.floors = 5;
      cfg.rooms_per_floor = 30;
      cfg.corridors_per_floor = 2;
      cfg.staircases = 2;
      return synth::GenerateStandaloneBuilding(cfg, 102);
    }
    default:
      return synth::GenerateCampus(synth::MixedCampusConfig(4, 0.15, 103));
  }
}

TEST_P(PropertyTest, DistancesMatchBruteForce) {
  const Venue venue = MakeVenueForCase(GetParam());
  const D2DGraph graph(venue);
  const IPTree tree = IPTree::Build(venue, graph);
  VIPTree vip = VIPTree::Build(venue, graph);
  IPDistanceQuery ip(tree);
  VIPDistanceQuery vipq(vip);
  IPDistanceQuery ip_all_doors(tree, {.use_superior_doors = false});

  Rng rng(500 + GetParam());
  const auto pairs = synth::RandomPointPairs(venue, 60, rng);
  for (const auto& [s, t] : pairs) {
    const double expected = BruteDistance(venue, graph, s, t);
    EXPECT_NEAR(ip.Distance(s, t), expected, 1e-3 + expected * 1e-5);
    EXPECT_NEAR(vipq.Distance(s, t), expected, 1e-3 + expected * 1e-5);
    // The superior-door lemma: restricting to superior doors is lossless.
    EXPECT_NEAR(ip_all_doors.Distance(s, t), expected,
                1e-3 + expected * 1e-5);
  }
}

TEST_P(PropertyTest, PathsMatchDistances) {
  const Venue venue = MakeVenueForCase(GetParam());
  const D2DGraph graph(venue);
  const IPTree tree = IPTree::Build(venue, graph);
  VIPTree vip = VIPTree::Build(venue, graph);
  IPPathQuery ip(tree);
  VIPPathQuery vipq(vip);

  Rng rng(600 + GetParam());
  const auto pairs = synth::RandomPointPairs(venue, 40, rng);
  for (const auto& [s, t] : pairs) {
    const double expected = BruteDistance(venue, graph, s, t);
    const IndoorPath a = ip.Path(s, t);
    const IndoorPath b = vipq.Path(s, t);
    EXPECT_NEAR(a.distance, expected, 1e-3 + expected * 1e-5);
    EXPECT_NEAR(b.distance, expected, 1e-3 + expected * 1e-5);
    EXPECT_NEAR(PointPathLength(venue, graph, s, t, a.doors), expected,
                1e-3 + expected * 1e-4);
    EXPECT_NEAR(PointPathLength(venue, graph, s, t, b.doors), expected,
                1e-3 + expected * 1e-4);
  }
}

TEST_P(PropertyTest, GetDistancesMonotoneUpTheChain) {
  // dist(s, AD(parent)) can never be smaller than the minimum distance to
  // the child's access doors (paths must cross the child's boundary).
  const Venue venue = MakeVenueForCase(GetParam());
  const D2DGraph graph(venue);
  const IPTree tree = IPTree::Build(venue, graph);
  IPDistanceQuery ip(tree);
  Rng rng(700 + GetParam());
  for (int i = 0; i < 10; ++i) {
    const IndoorPoint s = synth::RandomIndoorPoint(venue, rng);
    const AscentDistances ascent =
        ip.GetDistances(QuerySource::Point(s), tree.root());
    for (size_t level = 1; level < ascent.chain.size(); ++level) {
      double prev_min = kInfDistance;
      for (double d : ascent.ad_dist[level - 1]) {
        prev_min = std::min(prev_min, d);
      }
      for (double d : ascent.ad_dist[level]) {
        EXPECT_GE(d, prev_min - 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Venues, PropertyTest, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("DenseBuilding");
                             case 1:
                               return std::string("TwoCorridorTower");
                             default:
                               return std::string("SmallCampus");
                           }
                         });

}  // namespace
}  // namespace viptree
