// The running example of the paper (Fig. 1): an indoor venue with 17
// partitions P1..P17 and 20 doors d1..d20, with explicit door-to-door
// distances chosen to be consistent with every worked number in the paper:
//
//   * N1 leaf matrix (Fig. 3): dist(d1,d6)=9 first door d2; dist(d2,d6)=7
//     first door d3; dist(d3,d6)=4 first d5; dist(d4,d6)=7 first d5;
//     dist(d5,d6)=2 direct; dist(d1,d3)=5 (via d2), dist(d1,d4)=6 direct.
//   * N5 matrix: dist(d6,d7)=4, dist(d6,d10)=6, dist(d7,d10)=7,
//     dist(d1,d7)=13 via d6, dist(d1,d10)=15 via d6.
//   * N7 matrix: dist(d1,d20)=25 via d10, dist(d7,d20)=17 via d10,
//     dist(d10,d20)=10.
//   * Example 4: dist(d2,d1)=2, dist(d2,d6)=7, dist(d2,d7)=11,
//     dist(d2,d10)=13, dist(d2,d20)=23.
//   * Example 5: d10->d20 decomposes via d15 (dist(d10,d15)=6 direct,
//     dist(d15,d20)=4 direct); d2->d6 decomposes to d2->d3->d5->d6.
//   * Superior doors of P1 (Fig. 5a): {d1, d5}; inferior: {d2, d3, d4}.
//
// Door incidence: d1 exterior(P1); d2,d3: P1-P3; d4: P1-P2; d5: P1-P4;
// d6: P4-P5; d7 exterior(P5); d8: P5-P6; d9: P5-P7; d10: P5-P8;
// d11: P8-P12; d12: P12-P9; d13: P12-P10; d14: P12-P11; d15: P8-P13;
// d16: P13-P17; d17: P17-P14; d18: P17-P15; d19: P17-P16;
// d20 exterior(P13).
//
// With beta = 3 the hallway partitions are exactly P1, P5, P12, P17 as the
// paper states. The paper's leaf grouping N1={P1..P4}, N2={P5..P7},
// N3={P8..P12}, N4={P13..P17} is provided as a forced assignment (the
// automatic assembler may legally resolve the P8 tie differently; the paper
// breaks such ties arbitrarily).

#ifndef VIPTREE_TESTS_PAPER_EXAMPLE_H_
#define VIPTREE_TESTS_PAPER_EXAMPLE_H_

#include <utility>
#include <vector>

#include "graph/d2d_graph.h"
#include "model/venue.h"
#include "model/venue_builder.h"

namespace viptree {
namespace testing {

// 0-based ids for the paper's 1-based names.
inline constexpr PartitionId P(int paper_index) { return paper_index - 1; }
inline constexpr DoorId D(int paper_index) { return paper_index - 1; }

struct PaperExample {
  Venue venue;
  D2DGraph graph;
  // The paper's leaf grouping: leaf index per partition
  // (N1=0, N2=1, N3=2, N4=3).
  std::vector<int> leaf_assignment;
};

inline PaperExample MakePaperExample() {
  VenueBuilder builder(/*beta=*/3);
  // 17 partitions; centroids are nominal (all queries in the fixture are
  // door-to-door, distances come from the explicit edge weights below).
  for (int i = 1; i <= 17; ++i) {
    builder.AddPartition(/*level=*/0, PartitionUse::kRoom,
                         Point{static_cast<double>(i), 0.0, 0.0},
                         "P" + std::to_string(i));
  }
  auto at = [](double x) { return Point{x, 0.0, 0.0}; };
  builder.AddExteriorDoor(P(1), at(1));       // d1
  builder.AddDoor(P(1), P(3), at(2));         // d2
  builder.AddDoor(P(1), P(3), at(3));         // d3
  builder.AddDoor(P(1), P(2), at(4));         // d4
  builder.AddDoor(P(1), P(4), at(5));         // d5
  builder.AddDoor(P(4), P(5), at(6));         // d6
  builder.AddExteriorDoor(P(5), at(7));       // d7
  builder.AddDoor(P(5), P(6), at(8));         // d8
  builder.AddDoor(P(5), P(7), at(9));         // d9
  builder.AddDoor(P(5), P(8), at(10));        // d10
  builder.AddDoor(P(8), P(12), at(11));       // d11
  builder.AddDoor(P(12), P(9), at(12));       // d12
  builder.AddDoor(P(12), P(10), at(13));      // d13
  builder.AddDoor(P(12), P(11), at(14));      // d14
  builder.AddDoor(P(8), P(13), at(15));       // d15
  builder.AddDoor(P(13), P(17), at(16));      // d16
  builder.AddDoor(P(17), P(14), at(17));      // d17
  builder.AddDoor(P(17), P(15), at(18));      // d18
  builder.AddDoor(P(17), P(16), at(19));      // d19
  builder.AddExteriorDoor(P(13), at(20));     // d20

  const std::vector<ExplicitD2DEdge> edges = {
      // Hallway P1 clique.
      {D(1), D(2), 2.0f, P(1)},
      {D(1), D(3), 5.5f, P(1)},
      {D(1), D(4), 6.0f, P(1)},
      {D(1), D(5), 8.0f, P(1)},
      {D(2), D(3), 3.0f, P(1)},
      {D(2), D(4), 5.0f, P(1)},
      {D(2), D(5), 6.5f, P(1)},
      {D(3), D(4), 4.0f, P(1)},
      {D(3), D(5), 2.0f, P(1)},
      {D(4), D(5), 5.0f, P(1)},
      // P3 offers a second (longer) way between d2 and d3.
      {D(2), D(3), 3.5f, P(3)},
      // P4 joins the P1 hallway to N2's hallway.
      {D(5), D(6), 2.0f, P(4)},
      // Hallway P5 clique.
      {D(6), D(7), 4.0f, P(5)},
      {D(6), D(8), 3.0f, P(5)},
      {D(6), D(9), 5.0f, P(5)},
      {D(6), D(10), 6.0f, P(5)},
      {D(7), D(8), 5.0f, P(5)},
      {D(7), D(9), 3.0f, P(5)},
      {D(7), D(10), 7.0f, P(5)},
      {D(8), D(9), 6.0f, P(5)},
      {D(8), D(10), 6.0f, P(5)},
      {D(9), D(10), 4.5f, P(5)},
      // P8 (general, three doors) carries the N2->N3->N4 through-traffic.
      {D(10), D(11), 3.0f, P(8)},
      {D(10), D(15), 6.0f, P(8)},
      {D(11), D(15), 3.5f, P(8)},
      // Hallway P12 clique.
      {D(11), D(12), 2.0f, P(12)},
      {D(11), D(13), 3.0f, P(12)},
      {D(11), D(14), 4.2f, P(12)},
      {D(12), D(13), 2.5f, P(12)},
      {D(12), D(14), 3.5f, P(12)},
      {D(13), D(14), 2.0f, P(12)},
      // P13 connects N3 to N4 and to the d20 exit.
      {D(15), D(16), 2.0f, P(13)},
      {D(15), D(20), 4.0f, P(13)},
      {D(16), D(20), 2.5f, P(13)},
      // Hallway P17 clique.
      {D(16), D(17), 2.0f, P(17)},
      {D(16), D(18), 3.0f, P(17)},
      {D(16), D(19), 4.0f, P(17)},
      {D(17), D(18), 2.2f, P(17)},
      {D(17), D(19), 3.2f, P(17)},
      {D(18), D(19), 2.1f, P(17)},
  };

  PaperExample example{std::move(builder).Build(),
                       D2DGraph(20, edges),
                       {}};
  example.leaf_assignment = {0, 0, 0, 0,      // P1..P4   -> N1
                             1, 1, 1,         // P5..P7   -> N2
                             2, 2, 2, 2, 2,   // P8..P12  -> N3
                             3, 3, 3, 3, 3};  // P13..P17 -> N4
  return example;
}

}  // namespace testing
}  // namespace viptree

#endif  // VIPTREE_TESTS_PAPER_EXAMPLE_H_
