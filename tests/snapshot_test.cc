// Snapshot round-trip differential sweep: for every seeded random venue a
// freshly built engine and a Save->Load engine must answer every query type
// *bit-identically* — the invariant that makes "build once offline, load
// into each serving process" safe to roll out. Runs the same 24-seed sweep
// as differential_test so the venue topologies cover campuses, multi-floor
// buildings and irregular door patterns.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "synth/objects.h"
#include "synth/random_venue.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

std::string TempSnapshotPath(uint64_t seed) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/viptree_snapshot_test_" +
         std::to_string(::getpid()) + "_" + std::to_string(seed) +
         ".vipsnap";
}

// A deterministic mixed workload over the venue (compared field-by-field,
// so it covers distance values, full door sequences, object ids and object
// distances).
std::vector<eng::Query> MixedWorkload(const Venue& venue, uint64_t seed,
                                      bool with_keywords) {
  Rng rng(seed ^ 0x51A95407);
  std::vector<eng::Query> queries;
  for (int i = 0; i < 40; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
    const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
    switch (i % 5) {
      case 0:
        queries.push_back(eng::Query::Distance(a, b));
        break;
      case 1:
        queries.push_back(eng::Query::Path(a, b));
        break;
      case 2:
        queries.push_back(eng::Query::Knn(a, 3));
        break;
      case 3:
        queries.push_back(eng::Query::Range(a, 120.0));
        break;
      default:
        if (with_keywords) {
          queries.push_back(eng::Query::BooleanKnn(
              a, 2, {i % 2 == 0 ? "even" : "odd"}));
        } else {
          queries.push_back(eng::Query::Knn(a, 1));
        }
        break;
    }
  }
  return queries;
}

void ExpectIdenticalResults(const std::vector<eng::Result>& built,
                            const std::vector<eng::Result>& loaded,
                            uint64_t seed) {
  ASSERT_EQ(built.size(), loaded.size());
  for (size_t i = 0; i < built.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " query " +
                 std::to_string(i));
    const eng::Result& b = built[i];
    const eng::Result& l = loaded[i];
    EXPECT_EQ(b.type, l.type);
    // Bit-identical distances: the snapshot stores the built index's
    // numbers verbatim and the same-leaf Dijkstra fallback runs on a
    // bit-identical graph, so EXPECT_EQ (not NEAR) is the contract.
    EXPECT_EQ(b.distance, l.distance);
    EXPECT_EQ(b.doors, l.doors);
    ASSERT_EQ(b.objects.size(), l.objects.size());
    for (size_t j = 0; j < b.objects.size(); ++j) {
      EXPECT_EQ(b.objects[j].object, l.objects[j].object);
      EXPECT_EQ(b.objects[j].distance, l.objects[j].distance);
    }
    EXPECT_EQ(b.visited_nodes, l.visited_nodes);
  }
}

class SnapshotRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotRoundTripTest, LoadedEngineAnswersIdentically) {
  const uint64_t seed = GetParam();
  Venue venue = synth::RandomVenue(seed);
  Rng rng(seed ^ 0x0B1EC7);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 8, rng);

  // Keywords on half the seeds, so both snapshot shapes (with and without
  // the KWIX section) stay covered.
  const bool with_keywords = seed % 2 == 0;
  eng::EngineOptions options;
  if (with_keywords) {
    options.object_keywords.resize(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      options.object_keywords[i] = {i % 2 == 0 ? "even" : "odd"};
    }
  }

  const eng::QueryEngine built(std::move(venue), std::move(objects),
                               std::move(options));

  const std::string path = TempSnapshotPath(seed);
  const io::Status saved = built.Save(path);
  ASSERT_TRUE(saved.ok()) << saved.error;

  std::string error;
  const std::unique_ptr<eng::QueryEngine> loaded =
      eng::QueryEngine::TryLoad(path, &error);
  std::remove(path.c_str());
  ASSERT_NE(loaded, nullptr) << error;
  // The default save is format v2 and loads through the zero-copy arena.
  EXPECT_TRUE(loaded->bundle().zero_copy());

  // The same bundle written in the legacy v1 layout must load through the
  // copying path and answer just as bit-identically.
  const std::string v1_path = TempSnapshotPath(seed + 5000);
  io::SnapshotWriteOptions v1;
  v1.version = io::kLegacyFormatVersion;
  ASSERT_TRUE(built.bundle().Save(v1_path, v1).ok());
  std::optional<eng::VenueBundle> v1_bundle =
      eng::VenueBundle::TryLoad(v1_path, &error);
  std::remove(v1_path.c_str());
  ASSERT_TRUE(v1_bundle.has_value()) << error;
  EXPECT_FALSE(v1_bundle->zero_copy());
  const eng::QueryEngine v1_loaded(std::move(*v1_bundle));

  // The loaded bundle mirrors the built one structurally...
  EXPECT_EQ(loaded->venue().NumPartitions(), built.venue().NumPartitions());
  EXPECT_EQ(loaded->venue().NumDoors(), built.venue().NumDoors());
  EXPECT_EQ(loaded->graph().NumDirectedEdges(),
            built.graph().NumDirectedEdges());
  EXPECT_EQ(loaded->tree().base().nodes().size(),
            built.tree().base().nodes().size());
  EXPECT_EQ(loaded->tree().base().height(), built.tree().base().height());
  EXPECT_EQ(loaded->objects().NumObjects(), built.objects().NumObjects());
  EXPECT_EQ(loaded->has_keywords(), with_keywords);

  // ...and answers the whole mixed workload bit-identically — through both
  // the zero-copy v2 load and the copying v1 load.
  const std::vector<eng::Query> queries =
      MixedWorkload(built.venue(), seed, with_keywords);
  const std::vector<eng::Result> built_results = built.RunSequential(queries);
  ExpectIdenticalResults(built_results, loaded->RunSequential(queries), seed);
  ExpectIdenticalResults(built_results, v1_loaded.RunSequential(queries),
                         seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTripTest,
                         ::testing::Range(uint64_t{0}, uint64_t{24}));

TEST(SnapshotTest, SetObjectsAfterLoadMatchesSetObjectsAfterBuild) {
  // Object replacement must behave identically on a loaded engine: swap the
  // object set on both twins, answers must still match bit-for-bit.
  Venue venue = synth::RandomVenue(3);
  eng::QueryEngine built(std::move(venue), /*objects=*/{});

  const std::string path = TempSnapshotPath(1000);
  ASSERT_TRUE(built.Save(path).ok());
  std::string error;
  const std::unique_ptr<eng::QueryEngine> loaded =
      eng::QueryEngine::TryLoad(path, &error);
  std::remove(path.c_str());
  ASSERT_NE(loaded, nullptr) << error;

  Rng rng(77);
  const std::vector<IndoorPoint> objects =
      synth::PlaceObjects(built.venue(), 10, rng);
  std::vector<std::vector<std::string>> keywords(objects.size(), {"cafe"});
  built.SetObjects(objects, keywords);
  loaded->SetObjects(objects, keywords);

  const std::vector<eng::Query> queries =
      MixedWorkload(built.venue(), 999, /*with_keywords=*/false);
  ExpectIdenticalResults(built.RunSequential(queries),
                         loaded->RunSequential(queries), 1000);
}

TEST(SnapshotTest, TamperedPartsAreRejectedByStructuralValidation) {
  // Direct ValidateParts coverage for inconsistencies a checksum cannot
  // catch (they would have to be *written* by a buggy or hostile producer,
  // not flipped in transit): cyclic parent links, doors with no leaf,
  // duplicate keyword dictionary entries.
  Venue venue = synth::RandomVenue(5);
  Rng rng(8);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 4, rng);
  eng::EngineOptions options;
  options.object_keywords.assign(objects.size(), {"wifi"});
  const eng::QueryEngine engine(std::move(venue), std::move(objects),
                                std::move(options));
  const IPTree& tree = engine.tree().base();

  {
    IPTree::Parts parts = tree.ToParts();
    parts.nodes[tree.root()].parent = parts.nodes[0].id;  // cycle at root
    EXPECT_TRUE(IPTree::ValidateParts(engine.venue(), parts).has_value());
  }
  {
    IPTree::Parts parts = tree.ToParts();
    parts.door_leaves[0][0].leaf = kInvalidId;  // door with no leaf
    EXPECT_TRUE(IPTree::ValidateParts(engine.venue(), parts).has_value());
  }
  {
    KeywordIndex::Parts parts =
        engine.bundle().keyword_index().ToParts();
    parts.keywords_by_id.push_back(parts.keywords_by_id.front());
    const auto error =
        KeywordIndex::ValidateParts(tree, engine.objects(), parts);
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("duplicate"), std::string::npos) << *error;
  }
  // And the untampered parts still validate.
  EXPECT_FALSE(
      IPTree::ValidateParts(engine.venue(), tree.ToParts()).has_value());
}

TEST(SnapshotTest, SaveLoadSaveIsByteStable) {
  // A loaded bundle re-saved must produce the identical byte stream — the
  // serialization covers the full state, nothing is re-derived differently.
  Venue venue = synth::RandomVenue(14);
  Rng rng(6);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 5, rng);
  const eng::QueryEngine engine(std::move(venue), std::move(objects));

  const std::string path_a = TempSnapshotPath(2000);
  const std::string path_b = TempSnapshotPath(2001);
  ASSERT_TRUE(engine.Save(path_a).ok());
  std::string error;
  const std::unique_ptr<eng::QueryEngine> loaded =
      eng::QueryEngine::TryLoad(path_a, &error);
  ASSERT_NE(loaded, nullptr) << error;
  ASSERT_TRUE(loaded->Save(path_b).ok());

  std::vector<uint8_t> bytes_a;
  std::vector<uint8_t> bytes_b;
  ASSERT_TRUE(io::ReadFileBytes(path_a, &bytes_a).ok());
  ASSERT_TRUE(io::ReadFileBytes(path_b, &bytes_b).ok());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  EXPECT_EQ(bytes_a, bytes_b);
}

}  // namespace
}  // namespace viptree
