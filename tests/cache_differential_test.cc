// Bit-identity sweep for the cross-request distance cache: the cache
// memoizes exact outputs of deterministic functions of discrete keys
// (door-pair distances, ascent vectors, index maps), so turning it on —
// under any eviction policy — must never change a single bit of any
// answer. For 24 seeded random venues, run an interleaved stream of
// distance / path / kNN / range / boolean-kNN queries and live-object
// delta publishes through a cache-off engine and through one engine per
// policy, and require exact (==, not NEAR) agreement on every distance,
// door sequence and object id. A second pass over the same engine checks
// warm-cache answers against the cold ones.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/distance_cache.h"
#include "engine/query_engine.h"
#include "ground_truth.h"
#include "synth/objects.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

struct Step {
  std::optional<eng::Query> query;   // exactly one of query/delta is set
  std::optional<ObjectDelta> delta;
};

std::vector<std::vector<std::string>> TagObjects(size_t n) {
  std::vector<std::vector<std::string>> keywords(n);
  for (size_t i = 0; i < n; ++i) {
    keywords[i] = {"facility"};
    if (i % 2 == 0) keywords[i].push_back("red");
  }
  return keywords;
}

// A deterministic interleaved workload: ~5 queries of rotating type per
// round, one delta publish between rounds. Deltas are moves and adds only
// (ids stay valid no matter how many engines replay the stream).
std::vector<Step> MakeWorkload(const Venue& venue, uint64_t seed,
                               size_t initial_objects) {
  Rng rng(seed ^ 0xCACE);
  std::vector<Step> steps;
  size_t num_objects = initial_objects;
  for (int round = 0; round < 6; ++round) {
    for (int q = 0; q < 5; ++q) {
      const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
      const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
      Step step;
      switch ((round * 5 + q) % 5) {
        case 0:
          step.query = eng::Query::Distance(a, b);
          break;
        case 1:
          step.query = eng::Query::Path(a, b);
          break;
        case 2:
          step.query = eng::Query::Knn(a, 3);
          break;
        case 3:
          step.query = eng::Query::Range(a, 60.0);
          break;
        default:
          step.query = eng::Query::BooleanKnn(a, 2, {"red"});
          break;
      }
      steps.push_back(std::move(step));
    }
    Step update;
    ObjectDelta delta;
    if (num_objects > 0 && rng.Chance(0.7)) {
      delta.moves.push_back(
          {static_cast<ObjectId>(rng.UniformIndex(num_objects)),
           synth::RandomIndoorPoint(venue, rng)});
    } else {
      ObjectDelta::Add add;
      add.at = synth::RandomIndoorPoint(venue, rng);
      add.keywords = {"facility"};
      delta.adds.push_back(std::move(add));
      ++num_objects;
    }
    update.delta = std::move(delta);
    steps.push_back(std::move(update));
  }
  return steps;
}

// Replays the workload and records every answer. `passes` > 1 repeats the
// query stream (deltas only on the first pass) so a warm cache serves the
// repeat — the repeat answers are appended and compared like the rest.
std::vector<eng::Result> Replay(eng::QueryEngine& engine,
                                const std::vector<Step>& steps, int passes) {
  std::vector<eng::Result> results;
  for (int pass = 0; pass < passes; ++pass) {
    for (const Step& step : steps) {
      if (step.delta.has_value()) {
        if (pass == 0) {
          const std::optional<std::string> error =
              engine.ApplyObjectDelta(*step.delta);
          EXPECT_FALSE(error.has_value()) << *error;
        }
        continue;
      }
      results.push_back(engine.Run(*step.query));
    }
  }
  return results;
}

void ExpectBitIdentical(const std::vector<eng::Result>& actual,
                        const std::vector<eng::Result>& expected,
                        const char* what, uint64_t seed) {
  ASSERT_EQ(actual.size(), expected.size()) << what << " seed " << seed;
  for (size_t i = 0; i < actual.size(); ++i) {
    // Exact comparisons throughout: the cache must be invisible in the
    // output down to the last ulp.
    EXPECT_EQ(actual[i].distance, expected[i].distance)
        << what << " seed " << seed << " step " << i;
    EXPECT_EQ(actual[i].doors, expected[i].doors)
        << what << " seed " << seed << " step " << i;
    ASSERT_EQ(actual[i].objects.size(), expected[i].objects.size())
        << what << " seed " << seed << " step " << i;
    for (size_t j = 0; j < actual[i].objects.size(); ++j) {
      EXPECT_EQ(actual[i].objects[j].object, expected[i].objects[j].object)
          << what << " seed " << seed << " step " << i << " j=" << j;
      EXPECT_EQ(actual[i].objects[j].distance,
                expected[i].objects[j].distance)
          << what << " seed " << seed << " step " << i << " j=" << j;
    }
  }
}

class CacheDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheDifferentialTest, AllPoliciesBitIdenticalToCacheOff) {
  const uint64_t seed = GetParam();
  const Venue venue = testing::RandomSynthVenue(seed);
  const D2DGraph graph(venue);
  Rng rng(seed ^ 0x0B7EC7);
  const std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, 8, rng);
  const std::vector<Step> steps = MakeWorkload(venue, seed, objects.size());

  eng::EngineOptions options;
  options.object_keywords = TagObjects(objects.size());

  // Reference: cache off, two passes (the second pass answers must match
  // the first regardless of caching, since no deltas land between them).
  eng::QueryEngine reference(venue, graph, objects, options);
  ASSERT_EQ(reference.distance_cache(), nullptr);
  const std::vector<eng::Result> expected = Replay(reference, steps, 2);

  for (CachePolicy policy :
       {CachePolicy::kLru, CachePolicy::k2Q, CachePolicy::kS2Q}) {
    eng::EngineOptions cached_options = options;
    cached_options.cache.enabled = true;
    cached_options.cache.policy = policy;
    // Small enough that the sweep exercises eviction, not just lookups.
    cached_options.cache.capacity = 512;
    cached_options.cache.shards = 2;
    eng::QueryEngine engine(venue, graph, objects, cached_options);
    ASSERT_NE(engine.distance_cache(), nullptr);

    const std::vector<eng::Result> actual = Replay(engine, steps, 2);
    ExpectBitIdentical(actual, expected, CachePolicyName(policy), seed);
    // The workload repeats its query stream, so on a multi-leaf venue the
    // cache must have served real hits while producing identical answers.
    // (A single-leaf venue never leaves the Dijkstra fast path, so there
    // is legitimately no cache traffic there.)
    if (engine.tree().base().num_leaves() > 1) {
      EXPECT_GT(engine.distance_cache()->Counters().hits, 0u)
          << CachePolicyName(policy) << " seed " << seed;
    }
  }
}

// RunBatch shares the resident cache across its transient service workers;
// the batch answers must match the sequential cache-off reference exactly.
TEST_P(CacheDifferentialTest, SharedCacheBatchMatchesSequential) {
  const uint64_t seed = GetParam();
  if (seed % 4 != 0) GTEST_SKIP() << "batch sweep runs on every 4th seed";
  const Venue venue = testing::RandomSynthVenue(seed);
  const D2DGraph graph(venue);
  Rng rng(seed ^ 0xBA7C);
  const std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, 6, rng);

  std::vector<eng::Query> queries;
  for (int i = 0; i < 40; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
    const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
    switch (i % 4) {
      case 0: queries.push_back(eng::Query::Distance(a, b)); break;
      case 1: queries.push_back(eng::Query::Path(a, b)); break;
      case 2: queries.push_back(eng::Query::Knn(a, 3)); break;
      default: queries.push_back(eng::Query::Range(a, 80.0)); break;
    }
  }

  eng::QueryEngine plain(venue, graph, objects);
  const std::vector<eng::Result> expected = plain.RunSequential(queries);

  eng::EngineOptions cached_options;
  cached_options.cache.enabled = true;
  cached_options.cache.capacity = 256;
  eng::QueryEngine cached(venue, graph, objects, cached_options);
  eng::BatchOptions batch;
  batch.num_threads = 4;
  const eng::BatchResult run = cached.RunBatch(queries, batch);

  ExpectBitIdentical(run.results, expected, "batch", seed);
  if (cached.tree().base().num_leaves() > 1) {
    EXPECT_GT(cached.distance_cache()->Counters().lookups(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheDifferentialTest,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace viptree
