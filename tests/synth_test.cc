#include "synth/building_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/d2d_graph.h"
#include "synth/campus_generator.h"
#include "synth/objects.h"
#include "synth/presets.h"
#include "synth/replicate.h"

namespace viptree {
namespace synth {
namespace {

TEST(BuildingGeneratorTest, ProducesValidConnectedVenue) {
  BuildingConfig cfg;
  cfg.floors = 4;
  cfg.rooms_per_floor = 20;
  cfg.staircases = 2;
  cfg.lifts = 1;
  const Venue venue = GenerateStandaloneBuilding(cfg, /*seed=*/1);
  EXPECT_TRUE(venue.IsConnected());
  // 4 corridors + 80 rooms + stairs + lifts.
  EXPECT_GE(venue.NumPartitions(), 84u);
  // Corridors are hallway partitions (rooms hang off them).
  size_t hallways = 0;
  for (const Partition& p : venue.partitions()) {
    if (venue.Classify(p.id) == PartitionClass::kHallway) ++hallways;
  }
  EXPECT_GE(hallways, 4u);
}

TEST(BuildingGeneratorTest, DeterministicForSeed) {
  BuildingConfig cfg;
  cfg.floors = 3;
  cfg.rooms_per_floor = 30;
  const Venue a = GenerateStandaloneBuilding(cfg, 42);
  const Venue b = GenerateStandaloneBuilding(cfg, 42);
  ASSERT_EQ(a.NumPartitions(), b.NumPartitions());
  ASSERT_EQ(a.NumDoors(), b.NumDoors());
  for (size_t d = 0; d < a.NumDoors(); ++d) {
    EXPECT_EQ(a.door(d).partition_a, b.door(d).partition_a);
    EXPECT_EQ(a.door(d).partition_b, b.door(d).partition_b);
  }
}

TEST(BuildingGeneratorTest, ExteriorExitsAreExteriorDoors) {
  BuildingConfig cfg;
  cfg.floors = 2;
  cfg.rooms_per_floor = 10;
  cfg.exits = 3;
  cfg.exterior_exits = true;
  const Venue venue = GenerateStandaloneBuilding(cfg, 5);
  size_t exterior = 0;
  for (const Door& d : venue.doors()) {
    if (d.is_exterior()) ++exterior;
  }
  EXPECT_EQ(exterior, 3u);
}

TEST(BuildingGeneratorTest, StaircasesConnectConsecutiveFloors) {
  BuildingConfig cfg;
  cfg.floors = 5;
  cfg.rooms_per_floor = 8;
  cfg.staircases = 1;
  cfg.lifts = 0;
  cfg.exits = 0;
  const Venue venue = GenerateStandaloneBuilding(cfg, 3);
  size_t stairs = 0;
  for (const Partition& p : venue.partitions()) {
    if (p.use == PartitionUse::kStaircase) {
      ++stairs;
      EXPECT_EQ(venue.DoorsOf(p.id).size(), 2u);
      EXPECT_GT(p.cost_scale, 1.0);
    }
  }
  EXPECT_EQ(stairs, 4u);  // one per consecutive floor pair
}

TEST(CampusGeneratorTest, ZonesAndWalkways) {
  const Venue campus = GenerateCampus(MixedCampusConfig(6, 0.2, 9));
  EXPECT_TRUE(campus.IsConnected());
  int max_zone = 0;
  size_t outdoor = 0;
  for (const Partition& p : campus.partitions()) {
    max_zone = std::max(max_zone, p.zone);
    if (p.use == PartitionUse::kOutdoor) ++outdoor;
  }
  EXPECT_EQ(max_zone, 5);
  EXPECT_EQ(outdoor, 6u);  // one forecourt per building
}

TEST(ReplicateTest, DoublesTheVenueAndConnectsByStairs) {
  BuildingConfig cfg;
  cfg.floors = 3;
  cfg.rooms_per_floor = 12;
  const Venue base = GenerateStandaloneBuilding(cfg, 21);
  ReplicateOptions options;
  options.copies = 2;
  options.stairs_per_zone = 2;
  const Venue doubled = ReplicateVertically(base, options);

  EXPECT_TRUE(doubled.IsConnected());
  // 2x partitions plus the connector stairs.
  EXPECT_EQ(doubled.NumPartitions(), 2 * base.NumPartitions() + 2);
  EXPECT_EQ(doubled.NumDoors(), 2 * base.NumDoors() + 4);

  // Copy 0 is id-stable.
  for (size_t p = 0; p < base.NumPartitions(); ++p) {
    EXPECT_EQ(doubled.partition(p).level, base.partition(p).level);
  }
}

TEST(ReplicateTest, ThreeCopies) {
  BuildingConfig cfg;
  cfg.floors = 2;
  cfg.rooms_per_floor = 6;
  const Venue base = GenerateStandaloneBuilding(cfg, 22);
  ReplicateOptions options;
  options.copies = 3;
  options.stairs_per_zone = 1;
  const Venue tripled = ReplicateVertically(base, options);
  EXPECT_TRUE(tripled.IsConnected());
  EXPECT_EQ(tripled.NumPartitions(), 3 * base.NumPartitions() + 2);
}

TEST(PresetsTest, AllDatasetsBuildAtSmallScale) {
  for (const DatasetInfo& info : AllDatasets()) {
    double scale = 0.2;
    if (info.dataset == Dataset::kCL || info.dataset == Dataset::kCL2) {
      scale = 0.05;
    } else if (info.dataset == Dataset::kCity) {
      scale = 0.02;  // 320 building-copies even at tiny room counts
    }
    const Venue venue = MakeDataset(info.dataset, scale);
    EXPECT_TRUE(venue.IsConnected()) << info.name;
    EXPECT_GT(venue.NumDoors(), 0u) << info.name;
  }
}

TEST(PresetsTest, ReplicaDatasetsAreRoughlyDouble) {
  const Venue mc = MakeDataset(Dataset::kMC, 0.3);
  const Venue mc2 = MakeDataset(Dataset::kMC2, 0.3);
  EXPECT_GE(mc2.NumPartitions(), 2 * mc.NumPartitions());
  EXPECT_LE(mc2.NumPartitions(), 2 * mc.NumPartitions() + 8);
}

TEST(PresetsTest, MenAnalogueApproximatesPaperShape) {
  const Venue men = MakeDataset(Dataset::kMen, 1.0);
  const DatasetInfo info = InfoFor(Dataset::kMen);
  // Partition and door counts within 15% of the paper's Table 2.
  EXPECT_NEAR(static_cast<double>(men.NumPartitions()),
              static_cast<double>(info.paper_rooms),
              0.15 * info.paper_rooms);
  EXPECT_NEAR(static_cast<double>(men.NumDoors()),
              static_cast<double>(info.paper_doors),
              0.15 * info.paper_doors);
  // Edge count within a factor of two (clique sizes are the paper's main
  // unknown).
  const D2DGraph graph(men);
  EXPECT_GT(graph.NumEdges(), info.paper_edges / 2);
  EXPECT_LT(graph.NumEdges(), info.paper_edges * 2);
}

TEST(PresetsTest, DatasetFromNameRoundTrips) {
  for (const DatasetInfo& info : AllDatasets()) {
    EXPECT_EQ(DatasetFromName(info.name), info.dataset);
  }
}

TEST(ObjectsTest, PlaceObjectsPrefersRooms) {
  BuildingConfig cfg;
  cfg.floors = 3;
  cfg.rooms_per_floor = 20;
  const Venue venue = GenerateStandaloneBuilding(cfg, 30);
  Rng rng(4);
  const std::vector<IndoorPoint> objects = PlaceObjects(venue, 10, rng);
  ASSERT_EQ(objects.size(), 10u);
  for (const IndoorPoint& o : objects) {
    EXPECT_EQ(venue.partition(o.partition).use, PartitionUse::kRoom);
  }
  // Distinct partitions while enough rooms exist.
  std::set<PartitionId> distinct;
  for (const IndoorPoint& o : objects) distinct.insert(o.partition);
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(ObjectsTest, RandomPairsAreDeterministic) {
  BuildingConfig cfg;
  cfg.floors = 2;
  cfg.rooms_per_floor = 10;
  const Venue venue = GenerateStandaloneBuilding(cfg, 31);
  Rng rng_a(7);
  Rng rng_b(7);
  const auto pairs_a = RandomPointPairs(venue, 50, rng_a);
  const auto pairs_b = RandomPointPairs(venue, 50, rng_b);
  ASSERT_EQ(pairs_a.size(), pairs_b.size());
  for (size_t i = 0; i < pairs_a.size(); ++i) {
    EXPECT_EQ(pairs_a[i].first.partition, pairs_b[i].first.partition);
    EXPECT_EQ(pairs_a[i].second.partition, pairs_b[i].second.partition);
  }
}

}  // namespace
}  // namespace synth
}  // namespace viptree
