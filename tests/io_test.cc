// Unit tests for the io layer: little-endian primitive round-trips, CRC-32
// reference vectors, and — the part that guards production loads — snapshot
// rejection of truncated, corrupted, mis-versioned and structurally invalid
// files with clear error messages (never an abort).

#include "io/binary_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "engine/query_engine.h"
#include "engine/venue_bundle.h"
#include "engine/venue_registry.h"
#include "io/snapshot.h"
#include "synth/objects.h"
#include "synth/random_venue.h"

namespace viptree {
namespace {

namespace eng = ::viptree::engine;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/viptree_io_test_" + name + "_" +
         std::to_string(::getpid());
}

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  io::Writer w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.F32(3.5f);
  w.F64(-2.718281828459045);
  w.String("doors & partitions");
  w.String("");

  io::Reader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.F32(), 3.5f);
  EXPECT_EQ(r.F64(), -2.718281828459045);
  EXPECT_EQ(r.String(), "doors & partitions");
  EXPECT_EQ(r.String(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIoTest, ScalarsAreLittleEndianOnDisk) {
  io::Writer w;
  w.U32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x04);
  EXPECT_EQ(w.buffer()[1], 0x03);
  EXPECT_EQ(w.buffer()[2], 0x02);
  EXPECT_EQ(w.buffer()[3], 0x01);
}

TEST(BinaryIoTest, ArraysRoundTrip) {
  const std::vector<int32_t> ints = {-1, 0, 1, kInvalidId, 1 << 30};
  const std::vector<double> doubles = {0.0, -1.5, kInfDistance, 1e300};
  io::Writer w;
  w.I32Array(ints);
  w.F64Array(doubles);

  io::Reader r(w.buffer());
  std::vector<int32_t> ints_back(ints.size());
  std::vector<double> doubles_back(doubles.size());
  r.I32Array(ints_back.data(), ints_back.size());
  r.F64Array(doubles_back.data(), doubles_back.size());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(ints_back, ints);
  EXPECT_EQ(doubles_back, doubles);
}

TEST(BinaryIoTest, ReaderReportsTruncationAndStopsAtFirstError) {
  io::Writer w;
  w.U32(7);
  io::Reader r(w.buffer());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // only 0 bytes left
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("truncated"), std::string::npos) << r.error();
  const std::string first_error = r.error();
  r.U32();  // further reads must not overwrite the first failure
  EXPECT_EQ(r.error(), first_error);
}

TEST(BinaryIoTest, ArraySizeGuardsAgainstGiantCounts) {
  io::Writer w;
  w.U64(uint64_t{1} << 60);  // a count no buffer can satisfy
  io::Reader r(w.buffer());
  r.ArraySize(8, "test array");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("test array"), std::string::npos) << r.error();
}

TEST(BinaryIoTest, RemainingBoundsSweepAtBufferEdges) {
  // The contract the frame decoder leans on: remaining() tracks every
  // consuming read exactly, zero-length slices succeed anywhere (including
  // at the very end), maximum-length slices consume everything, and any
  // slice one past the edge fails — after which remaining() reports 0 no
  // matter how many bytes were physically left.
  for (const size_t size : {size_t{0}, size_t{1}, size_t{7}, size_t{64}}) {
    std::vector<uint8_t> bytes(size);
    for (size_t i = 0; i < size; ++i) bytes[i] = static_cast<uint8_t>(i);

    // Zero-length reads at every position: no consumption, no failure.
    for (size_t at = 0; at <= size; ++at) {
      io::Reader r(Span<const uint8_t>(bytes.data(), bytes.size()));
      if (at > 0) r.Raw(at);
      ASSERT_TRUE(r.ok()) << "size " << size << " at " << at;
      EXPECT_EQ(r.remaining(), size - at);
      const Span<const uint8_t> empty = r.Raw(0);
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(empty.size(), 0u);
      EXPECT_EQ(r.remaining(), size - at) << "Raw(0) must not consume";
    }

    // Maximum-length read from every position: drains to exactly zero.
    for (size_t at = 0; at <= size; ++at) {
      io::Reader r(Span<const uint8_t>(bytes.data(), bytes.size()));
      if (at > 0) r.Raw(at);
      const Span<const uint8_t> rest = r.Raw(size - at);
      ASSERT_TRUE(r.ok()) << "size " << size << " at " << at;
      ASSERT_EQ(rest.size(), size - at);
      for (size_t i = 0; i < rest.size(); ++i) {
        EXPECT_EQ(rest[i], bytes[at + i]);
      }
      EXPECT_EQ(r.remaining(), 0u);
      // One more zero-length read at the exhausted edge still succeeds...
      r.Raw(0);
      EXPECT_TRUE(r.ok());
      // ...but one byte past the edge fails, and remaining() snaps to 0.
      r.Raw(1);
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.remaining(), 0u);
    }

    // One-past-the-end from every position, including a request so large
    // it would wrap if the bound check subtracted naively.
    for (size_t at = 0; at <= size; ++at) {
      io::Reader r(Span<const uint8_t>(bytes.data(), bytes.size()));
      if (at > 0) r.Raw(at);
      const size_t left = size - at;
      r.Raw(left + 1);
      EXPECT_FALSE(r.ok()) << "size " << size << " at " << at;
      EXPECT_EQ(r.remaining(), 0u) << "failed readers report nothing left";
    }
    {
      io::Reader r(Span<const uint8_t>(bytes.data(), bytes.size()));
      r.Raw(~uint64_t{0});  // must not overflow the bounds arithmetic
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.remaining(), 0u);
    }
  }
}

TEST(BinaryIoTest, Crc32MatchesReferenceVectors) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(io::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(io::Crc32("", 0), 0x00000000u);
  // Longer than one slice-by-8 block, odd tail.
  const std::string s(1023, 'x');
  uint32_t bytewise = 0xFFFFFFFFu;
  for (char c : s) {
    bytewise ^= static_cast<uint8_t>(c);
    for (int bit = 0; bit < 8; ++bit) {
      bytewise = (bytewise & 1) ? 0xEDB88320u ^ (bytewise >> 1)
                                : bytewise >> 1;
    }
  }
  EXPECT_EQ(io::Crc32(s.data(), s.size()), bytewise ^ 0xFFFFFFFFu);
}

TEST(BinaryIoTest, FileHelpersRoundTripAndReportMissingFiles) {
  const std::string path = TempPath("bytes");
  const std::vector<uint8_t> payload = {1, 2, 3, 254, 255};
  ASSERT_TRUE(io::WriteFileBytes(path, payload).ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(io::ReadFileBytes(path, &back).ok());
  EXPECT_EQ(back, payload);
  std::remove(path.c_str());

  const io::Status missing = io::ReadFileBytes(path, &back);
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.error.find("cannot open"), std::string::npos)
      << missing.error;
}

// ---------------------------------------------------------------------------
// Snapshot rejection. One small bundle, saved once, then damaged in every
// way a real deployment can encounter.
// ---------------------------------------------------------------------------

class SnapshotRejectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Venue venue = synth::RandomVenue(11);
    Rng rng(5);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 6, rng);
    eng::EngineOptions options;
    options.object_keywords.assign(objects.size(), {"tag"});
    const eng::VenueBundle bundle = eng::VenueBundle::Build(
        std::move(venue), std::move(objects), std::move(options));
    bytes_ = new std::vector<uint8_t>();
    const std::string path = TempPath("rejection");
    ASSERT_TRUE(bundle.Save(path).ok());
    ASSERT_TRUE(io::ReadFileBytes(path, bytes_).ok());
    std::remove(path.c_str());
  }

  static void TearDownTestSuite() {
    delete bytes_;
    bytes_ = nullptr;
  }

  static std::vector<uint8_t>* bytes_;
};

// Writes `bytes` to a temp file and expects TryLoad to fail with a message
// containing `expect_substring`.
void ExpectRejected(const std::vector<uint8_t>& bytes,
                    const std::string& expect_substring) {
  const std::string path = TempPath("damaged");
  ASSERT_TRUE(io::WriteFileBytes(path, bytes).ok());
  std::string error;
  const std::optional<eng::VenueBundle> loaded =
      eng::VenueBundle::TryLoad(path, &error);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find(expect_substring), std::string::npos)
      << "error was: " << error;
}

std::vector<uint8_t>* SnapshotRejectionTest::bytes_ = nullptr;

TEST_F(SnapshotRejectionTest, IntactSnapshotLoads) {
  const std::string path = TempPath("intact");
  ASSERT_TRUE(io::WriteFileBytes(path, *bytes_).ok());
  std::string error;
  EXPECT_TRUE(eng::VenueBundle::TryLoad(path, &error).has_value()) << error;
  std::remove(path.c_str());
}

TEST_F(SnapshotRejectionTest, MissingFile) {
  std::string error;
  EXPECT_FALSE(
      eng::VenueBundle::TryLoad(TempPath("never_written"), &error)
          .has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST_F(SnapshotRejectionTest, BadMagic) {
  std::vector<uint8_t> bytes = *bytes_;
  bytes[0] ^= 0xFF;
  ExpectRejected(bytes, "bad magic");
}

TEST_F(SnapshotRejectionTest, EmptyAndTinyFiles) {
  ExpectRejected({}, "file too small");
  ExpectRejected({'V', 'I', 'P', 'T'}, "file too small");
}

TEST_F(SnapshotRejectionTest, WrongVersion) {
  std::vector<uint8_t> bytes = *bytes_;
  bytes[8] = 99;  // version u32 follows the 8-byte magic
  ExpectRejected(bytes, "unsupported snapshot format version 99");
}

TEST_F(SnapshotRejectionTest, TruncationAtEveryRegionIsRejected) {
  // Chop the file at a spread of lengths: inside the header, inside section
  // headers, mid-payload, just before the end.
  const size_t n = bytes_->size();
  for (const size_t keep :
       {size_t{9}, size_t{17}, size_t{40}, n / 4, n / 2, n - 1}) {
    ASSERT_LT(keep, n);
    std::vector<uint8_t> bytes(bytes_->begin(),
                               bytes_->begin() + static_cast<long>(keep));
    const std::string path = TempPath("truncated");
    ASSERT_TRUE(io::WriteFileBytes(path, bytes).ok());
    std::string error;
    const std::optional<eng::VenueBundle> loaded =
        eng::VenueBundle::TryLoad(path, &error);
    std::remove(path.c_str());
    EXPECT_FALSE(loaded.has_value()) << "kept " << keep << " of " << n;
    EXPECT_FALSE(error.empty()) << "kept " << keep << " of " << n;
  }
}

TEST_F(SnapshotRejectionTest, PayloadCorruptionFailsTheChecksum) {
  // Flip one byte deep inside the tree section's payload (past the header
  // and section frame); the CRC must catch it before any decode runs.
  std::vector<uint8_t> bytes = *bytes_;
  bytes[bytes.size() / 2] ^= 0x40;
  ExpectRejected(bytes, "checksum mismatch");
}

TEST_F(SnapshotRejectionTest, CorruptByteSweepIsAlwaysCleanlyRejected) {
  // Sweep a corruption through the file body at a stride; every position
  // must produce a clean rejection (checksum mismatch, truncation, unknown
  // section, structural validation) — never a crash, never an abort. The
  // sweep starts after the 16-byte header: flips in magic/version are
  // covered above, and the reserved field is legitimately ignored.
  const size_t stride = (bytes_->size() - 16) / 23 + 1;
  for (size_t at = 16; at < bytes_->size(); at += stride) {
    std::vector<uint8_t> bytes = *bytes_;
    bytes[at] ^= 0x01;
    const std::string path = TempPath("sweep");
    ASSERT_TRUE(io::WriteFileBytes(path, bytes).ok());
    std::string error;
    const std::optional<eng::VenueBundle> loaded =
        eng::VenueBundle::TryLoad(path, &error);
    std::remove(path.c_str());
    EXPECT_FALSE(loaded.has_value()) << "flip at byte " << at;
    EXPECT_FALSE(error.empty()) << "flip at byte " << at;
  }
}

// --- v2 TOC manipulation helpers (header: 8 B magic, u32 version, u32
// section count; 24-byte TOC entries: u32 tag, u32 crc, u64 offset,
// u64 size). -----------------------------------------------------------------

uint32_t ReadU32At(const std::vector<uint8_t>& bytes, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t{bytes[at + i]} << (8 * i);
  return v;
}

void WriteU64At(std::vector<uint8_t>* bytes, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[at + i] = static_cast<uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

uint64_t ReadU64At(const std::vector<uint8_t>& bytes, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{bytes[at + i]} << (8 * i);
  return v;
}

TEST_F(SnapshotRejectionTest, MissingSectionIsRejected) {
  // Decrement the section count so the decoder never sees the final TOC
  // entry (ENGO). Its entry and payload become unreferenced bytes, which
  // the TOC-based decoder legitimately ignores — the missing-section check
  // must fire. (Erasing the entry outright would shift every payload and
  // trip the CRC check first.)
  std::vector<uint8_t> bytes = *bytes_;
  const uint32_t count = ReadU32At(bytes, 12);
  ASSERT_GE(count, 2u);
  bytes[12] = static_cast<uint8_t>(count - 1);
  ExpectRejected(bytes, "missing section 'ENGO'");
}

TEST_F(SnapshotRejectionTest, MisalignedSectionOffsetIsRejected) {
  // Nudge the second section's offset off the 8-byte grid; the decoder
  // must refuse before attempting to alias anything at that address.
  std::vector<uint8_t> bytes = *bytes_;
  const size_t offset_at = 16 + 24 + 8;  // entry 1, offset field
  WriteU64At(&bytes, offset_at, ReadU64At(bytes, offset_at) + 4);
  ExpectRejected(bytes, "misaligned section offset");
}

TEST_F(SnapshotRejectionTest, SectionBeyondFileIsRejected) {
  // An offset pointing (aligned) past the end of the file.
  std::vector<uint8_t> bytes = *bytes_;
  const size_t offset_at = 16 + 24 + 8;
  WriteU64At(&bytes, offset_at, (bytes.size() + 1024) & ~uint64_t{7});
  ExpectRejected(bytes, "truncated");
}

TEST_F(SnapshotRejectionTest, TruncationBelowTheTocIsRejected) {
  // Keep the magic/version/count but none of the TOC entries.
  std::vector<uint8_t> bytes(bytes_->begin(), bytes_->begin() + 20);
  ExpectRejected(bytes, "truncated below the TOC");
}

TEST_F(SnapshotRejectionTest, UnreadableFileIsRejected) {
  // A directory is the portable "exists but cannot be read as a file"
  // case (the tests may run as root, where permission bits do not bite).
  std::string error;
  EXPECT_FALSE(eng::VenueBundle::TryLoad("/tmp", &error).has_value());
  EXPECT_NE(error.find("directory"), std::string::npos) << error;
}

TEST_F(SnapshotRejectionTest, ImplausibleSectionCountIsRejected) {
  std::vector<uint8_t> bytes = *bytes_;
  bytes[12] = 0xFF;
  bytes[13] = 0xFF;
  ExpectRejected(bytes, "section count");
}

// ---------------------------------------------------------------------------
// Randomized region-targeted fuzz. The deterministic sweeps above probe
// fixed offsets; this parses the v2 TOC of the saved snapshot and, per
// seed, aims random bit flips and random truncations at every structural
// region — header, TOC entries, each section payload, and the alignment
// padding between sections. Every mutation must be handled cleanly: a
// rejection with a human-readable error, or (for flips confined to dead
// padding the checksums never covered) a successful load. Never a crash,
// never an abort, never an empty error message.
// ---------------------------------------------------------------------------

struct FuzzRegion {
  std::string name;
  size_t begin = 0;  // inclusive
  size_t end = 0;    // exclusive
  bool padding = false;  // bytes no checksum covers: a flip may load fine
};

// Region map derived from the TOC (header: 8 B magic, u32 version, u32
// section count at 12; 24-byte entries from 16: u32 tag, u32 crc,
// u64 offset, u64 size). Bytes inside no header/TOC/section range are the
// 8-byte-alignment padding.
std::vector<FuzzRegion> MapRegions(const std::vector<uint8_t>& bytes) {
  std::vector<FuzzRegion> regions;
  regions.push_back({"header", 0, 16, false});
  const uint32_t count = ReadU32At(bytes, 12);
  const size_t toc_end = 16 + size_t{count} * 24;
  regions.push_back({"toc", 16, toc_end, false});
  std::vector<uint8_t> covered(bytes.size(), 0);
  std::fill(covered.begin(), covered.begin() + static_cast<long>(toc_end),
            1);
  for (uint32_t i = 0; i < count; ++i) {
    const size_t entry = 16 + size_t{i} * 24;
    const size_t offset = ReadU64At(bytes, entry + 8);
    const size_t size = ReadU64At(bytes, entry + 16);
    std::string tag;
    for (int c = 0; c < 4; ++c) {
      tag += static_cast<char>(bytes[entry + c]);
    }
    regions.push_back({"section " + tag, offset, offset + size, false});
    for (size_t b = offset; b < offset + size && b < covered.size(); ++b) {
      covered[b] = 1;
    }
  }
  // Whatever is left over is alignment padding.
  size_t run_start = bytes.size();
  for (size_t b = toc_end; b <= bytes.size(); ++b) {
    const bool pad = b < bytes.size() && covered[b] == 0;
    if (pad && run_start == bytes.size()) run_start = b;
    if (!pad && run_start != bytes.size()) {
      regions.push_back({"padding", run_start, b, true});
      run_start = bytes.size();
    }
  }
  return regions;
}

TEST_F(SnapshotRejectionTest, RandomizedRegionFuzzIsAlwaysClean) {
  const std::vector<uint8_t>& base = *bytes_;
  const std::vector<FuzzRegion> regions = MapRegions(base);
  // The map must cover what the format promises: header, TOC, at least
  // four sections — otherwise the fuzz is aiming at nothing.
  ASSERT_GE(regions.size(), 6u);

  for (uint64_t seed = 0; seed < 24; ++seed) {
    Rng rng(seed ^ 0xF022);
    for (const FuzzRegion& region : regions) {
      if (region.begin >= region.end) continue;

      // One random single-bit flip inside the region.
      std::vector<uint8_t> flipped = base;
      const size_t at =
          region.begin + rng.UniformIndex(region.end - region.begin);
      flipped[at] ^= static_cast<uint8_t>(1u << rng.UniformIndex(8));
      {
        const std::string path = TempPath("fuzz_flip");
        ASSERT_TRUE(io::WriteFileBytes(path, flipped).ok());
        std::string error;
        const std::optional<eng::VenueBundle> loaded =
            eng::VenueBundle::TryLoad(path, &error);
        std::remove(path.c_str());
        if (region.padding) {
          // Dead bytes: loading may succeed, but a failure must still be
          // clean and explained.
          EXPECT_TRUE(loaded.has_value() || !error.empty())
              << region.name << " flip at " << at << " seed " << seed;
        } else {
          EXPECT_FALSE(loaded.has_value())
              << region.name << " flip at byte " << at << " bit accepted, "
              << "seed " << seed;
          EXPECT_FALSE(error.empty())
              << region.name << " flip at " << at << " seed " << seed;
        }
      }

      // One random truncation ending inside the region: always a clean
      // rejection (some section loses bytes, or the header/TOC itself
      // is cut short).
      const size_t keep =
          region.begin + rng.UniformIndex(region.end - region.begin);
      if (keep >= base.size()) continue;
      std::vector<uint8_t> truncated(base.begin(),
                                     base.begin() + static_cast<long>(keep));
      const std::string path = TempPath("fuzz_trunc");
      ASSERT_TRUE(io::WriteFileBytes(path, truncated).ok());
      std::string error;
      const std::optional<eng::VenueBundle> loaded =
          eng::VenueBundle::TryLoad(path, &error);
      std::remove(path.c_str());
      EXPECT_FALSE(loaded.has_value())
          << region.name << " truncated to " << keep << " bytes accepted, "
          << "seed " << seed;
      EXPECT_FALSE(error.empty())
          << region.name << " truncation to " << keep << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Format-v1 compatibility: snapshots written in the legacy layout must keep
// loading through the copying path, and damaged v1 files must still be
// rejected cleanly.
// ---------------------------------------------------------------------------

TEST(SnapshotV1CompatTest, V1SnapshotLoadsViaTheCopyingPath) {
  Venue venue = synth::RandomVenue(11);
  Rng rng(5);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 6, rng);
  const eng::VenueBundle bundle =
      eng::VenueBundle::Build(std::move(venue), std::move(objects));

  const std::string path = TempPath("v1");
  io::SnapshotWriteOptions v1;
  v1.version = io::kLegacyFormatVersion;
  ASSERT_TRUE(bundle.Save(path, v1).ok());

  std::string error;
  const std::optional<eng::VenueBundle> loaded =
      eng::VenueBundle::TryLoad(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  // v1 decodes into owned buffers: no arena is retained.
  EXPECT_FALSE(loaded->zero_copy());
  EXPECT_EQ(loaded->venue().NumDoors(), bundle.venue().NumDoors());

  // Re-saving the loaded bundle produces a v2 snapshot (the upgrade path),
  // which loads zero-copy.
  const std::string path2 = TempPath("v1_to_v2");
  ASSERT_TRUE(loaded->Save(path2).ok());
  const std::optional<eng::VenueBundle> upgraded =
      eng::VenueBundle::TryLoad(path2, &error);
  std::remove(path2.c_str());
  ASSERT_TRUE(upgraded.has_value()) << error;
  EXPECT_TRUE(upgraded->zero_copy());
  std::remove(path.c_str());
}

TEST(SnapshotV1CompatTest, DamagedV1SnapshotIsRejected) {
  Venue venue = synth::RandomVenue(11);
  const eng::VenueBundle bundle =
      eng::VenueBundle::Build(std::move(venue), /*objects=*/{});
  const std::string path = TempPath("v1_damage");
  io::SnapshotWriteOptions v1;
  v1.version = io::kLegacyFormatVersion;
  ASSERT_TRUE(bundle.Save(path, v1).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(io::ReadFileBytes(path, &bytes).ok());
  std::remove(path.c_str());

  bytes[bytes.size() / 2] ^= 0x10;
  ExpectRejected(bytes, "checksum mismatch");
  bytes[bytes.size() / 2] ^= 0x10;  // restore
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + static_cast<long>(
                                                     bytes.size() * 2 / 3));
  const std::string tpath = TempPath("v1_trunc");
  ASSERT_TRUE(io::WriteFileBytes(tpath, truncated).ok());
  std::string error;
  EXPECT_FALSE(eng::VenueBundle::TryLoad(tpath, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::remove(tpath.c_str());
}

// ---------------------------------------------------------------------------
// Install-time checksum verification (`viptree_build --verify`): every
// section CRC re-checked without decoding, per-section report.
// ---------------------------------------------------------------------------

TEST_F(SnapshotRejectionTest, VerifySnapshotFileChecksEverySection) {
  const std::string path = TempPath("verify_ok");
  ASSERT_TRUE(io::WriteFileBytes(path, *bytes_).ok());
  io::SnapshotVerifyReport report;
  const io::Status status = io::VerifySnapshotFile(path, &report);
  std::remove(path.c_str());
  EXPECT_TRUE(status.ok()) << status.error;
  EXPECT_EQ(report.format_version, io::kFormatVersion);
  EXPECT_EQ(report.file_bytes, bytes_->size());
  // VENU/GRPH/TREE/VIPX/OBJX/ENGO plus KWIX (the fixture has keywords).
  EXPECT_EQ(report.sections.size(), 7u);
  for (const io::SnapshotSectionCheck& section : report.sections) {
    EXPECT_TRUE(section.ok) << section.name;
    EXPECT_GT(section.bytes, 0u) << section.name;
  }
}

TEST_F(SnapshotRejectionTest, VerifySnapshotFileFlagsCorruptedSections) {
  // One payload byte flipped: verification fails naming the section, and
  // the report shows exactly one damaged section among intact ones.
  std::vector<uint8_t> bytes = *bytes_;
  bytes[bytes.size() / 2] ^= 0x40;
  const std::string path = TempPath("verify_bad");
  ASSERT_TRUE(io::WriteFileBytes(path, bytes).ok());
  io::SnapshotVerifyReport report;
  const io::Status status = io::VerifySnapshotFile(path, &report);
  std::remove(path.c_str());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error.find("checksum mismatch"), std::string::npos)
      << status.error;
  size_t damaged = 0;
  for (const io::SnapshotSectionCheck& section : report.sections) {
    if (!section.ok) ++damaged;
  }
  EXPECT_EQ(damaged, 1u);

  // Missing and truncated files are clean errors, not crashes.
  EXPECT_FALSE(io::VerifySnapshotFile(TempPath("verify_missing")).ok());
  std::vector<uint8_t> truncated(bytes_->begin(), bytes_->begin() + 40);
  const std::string tpath = TempPath("verify_trunc");
  ASSERT_TRUE(io::WriteFileBytes(tpath, truncated).ok());
  EXPECT_FALSE(io::VerifySnapshotFile(tpath).ok());
  std::remove(tpath.c_str());
}

TEST(SnapshotV1CompatTest, VerifySnapshotFileHandlesV1) {
  Venue venue = synth::RandomVenue(11);
  const eng::VenueBundle bundle =
      eng::VenueBundle::Build(std::move(venue), /*objects=*/{});
  const std::string path = TempPath("verify_v1");
  io::SnapshotWriteOptions v1;
  v1.version = io::kLegacyFormatVersion;
  ASSERT_TRUE(bundle.Save(path, v1).ok());

  io::SnapshotVerifyReport report;
  EXPECT_TRUE(io::VerifySnapshotFile(path, &report).ok());
  EXPECT_EQ(report.format_version, io::kLegacyFormatVersion);
  EXPECT_EQ(report.sections.size(), 6u);  // no keywords in this fixture

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(io::ReadFileBytes(path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x10;
  ASSERT_TRUE(io::WriteFileBytes(path, bytes).ok());
  const io::Status status = io::VerifySnapshotFile(path, &report);
  std::remove(path.c_str());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error.find("checksum mismatch"), std::string::npos)
      << status.error;
}

TEST_F(SnapshotRejectionTest, DefaultSaveLoadsZeroCopy) {
  const std::string path = TempPath("zero_copy");
  ASSERT_TRUE(io::WriteFileBytes(path, *bytes_).ok());
  std::string error;
  const std::optional<eng::VenueBundle> loaded =
      eng::VenueBundle::TryLoad(path, &error);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->zero_copy());

  // Forcing the copying read path must still work (and still zero-copy the
  // *decode* — the arena is just heap-backed instead of mapped).
  const std::string path2 = TempPath("no_mmap");
  ASSERT_TRUE(io::WriteFileBytes(path2, *bytes_).ok());
  eng::VenueBundle::LoadOptions no_mmap;
  no_mmap.use_mmap = false;
  const std::optional<eng::VenueBundle> heap_loaded =
      eng::VenueBundle::TryLoad(path2, &error, no_mmap);
  std::remove(path2.c_str());
  ASSERT_TRUE(heap_loaded.has_value()) << error;
}

// ---------------------------------------------------------------------------
// MmapArena madvise policies and page-residency control.
// ---------------------------------------------------------------------------

TEST(MmapArenaPolicyTest, EveryPolicyMapsAndReadsIdenticalBytes) {
  const std::string path = TempPath("arena_policy");
  std::vector<uint8_t> payload(4096 * 3 + 17);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  ASSERT_TRUE(io::WriteFileBytes(path, payload).ok());
  for (const io::MadvisePolicy policy :
       {io::MadvisePolicy::kNormal, io::MadvisePolicy::kSequential,
        io::MadvisePolicy::kRandom, io::MadvisePolicy::kDontneedOnRelease}) {
    io::MmapArena arena;
    ASSERT_TRUE(io::MmapArena::Map(path, &arena, true, policy).ok());
    EXPECT_EQ(arena.policy(), policy);
    ASSERT_EQ(arena.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           arena.bytes().begin()));
  }
  std::remove(path.c_str());
}

TEST(MmapArenaPolicyTest, DropResidentPagesKeepsBytesReadable) {
  const std::string path = TempPath("arena_drop");
  std::vector<uint8_t> payload(4096 * 8);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i ^ (i >> 8));
  }
  ASSERT_TRUE(io::WriteFileBytes(path, payload).ok());
  io::MmapArena arena;
  ASSERT_TRUE(io::MmapArena::Map(path, &arena, true,
                                 io::MadvisePolicy::kDontneedOnRelease)
                  .ok());
  if (arena.mapped()) {
    // Touch every page, drop them all, then re-read: the private read-only
    // mapping must re-fault identical bytes from the file.
    volatile uint8_t sink = 0;
    for (size_t i = 0; i < arena.size(); i += 4096) sink += arena.bytes()[i];
    (void)sink;
    EXPECT_EQ(arena.DropResidentPages(), arena.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           arena.bytes().begin()));
  }
  std::remove(path.c_str());
}

TEST(MmapArenaPolicyTest, HeapFallbackIsAlignedAndDropIsANoop) {
  const std::string path = TempPath("arena_heap");
  const std::vector<uint8_t> payload(1000, 0xAB);
  ASSERT_TRUE(io::WriteFileBytes(path, payload).ok());
  io::MmapArena arena;
  ASSERT_TRUE(io::MmapArena::Map(path, &arena, /*allow_mmap=*/false).ok());
  EXPECT_FALSE(arena.mapped());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.bytes().data()) %
                kIndexBufferAlign,
            0u);
  EXPECT_EQ(arena.DropResidentPages(), 0u);  // heap arenas stay resident
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         arena.bytes().begin()));
  std::remove(path.c_str());
}

TEST(MmapArenaPolicyTest, RegistryEvictionDropsPagesUnderDontneedPolicy) {
  // End-to-end: a registry configured with kDontneedOnRelease serves a
  // venue, evicts it while a caller still holds the bundle, and the
  // outstanding bundle keeps answering (pages re-fault on demand).
  Venue venue = synth::RandomVenue(21);
  Rng rng(9);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 8, rng);
  const eng::VenueBundle built =
      eng::VenueBundle::Build(std::move(venue), std::move(objects));
  const std::string snap = TempPath("evict_venue") + ".snap";
  const std::string manifest = TempPath("evict_manifest");
  ASSERT_TRUE(built.Save(snap).ok());
  ASSERT_TRUE(
      eng::VenueRegistry::UpsertManifestEntry(manifest, "v", snap).ok());

  eng::VenueBundle::LoadOptions load;
  load.madvise = io::MadvisePolicy::kDontneedOnRelease;
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(manifest, &error, load);
  ASSERT_TRUE(registry.has_value()) << error;

  std::shared_ptr<const eng::VenueBundle> bundle =
      registry->Acquire("v", &error);
  ASSERT_NE(bundle, nullptr) << error;
  const IndoorPoint probe = bundle->objects().object(0);
  eng::QueryEngine engine(bundle);
  const eng::Result before = engine.Run(eng::Query::Knn(probe, 3));

  registry->Evict("v");
  EXPECT_FALSE(registry->IsResident("v"));
  // The held bundle must still answer identically after its pages were
  // returned to the OS.
  const eng::Result after = engine.Run(eng::Query::Knn(probe, 3));
  ASSERT_EQ(after.objects.size(), before.objects.size());
  for (size_t i = 0; i < before.objects.size(); ++i) {
    EXPECT_EQ(after.objects[i].object, before.objects[i].object);
    EXPECT_EQ(after.objects[i].distance, before.objects[i].distance);
  }

  std::remove(snap.c_str());
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace viptree
