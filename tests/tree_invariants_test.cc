// Structural invariants of the IP-Tree across a parameterized sweep of
// venue shapes and minimum degrees — the properties the §3 algorithms rely
// on (access-door nesting, matrix door sets, next-hop consistency, DFS
// interval partitioning, superior-door definition). Two sweeps share the
// suite: four hand-picked venue shapes, and randomized synthetic venues
// drawn from seeds (the same generator the differential tests use).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/ip_tree.h"
#include "graph/dijkstra.h"
#include "ground_truth.h"
#include "synth/building_generator.h"
#include "synth/campus_generator.h"
#include "synth/replicate.h"
#include "common/span.h"

namespace viptree {
namespace {

struct SweepParam {
  int venue_kind;  // 0..3 fixed shapes, 4 = randomized from `seed`
  int min_degree;
  uint64_t seed = 0;  // venue_kind 4 only
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  if (info.param.venue_kind == 4) {
    return "rand_s" + std::to_string(info.param.seed) + "_t" +
           std::to_string(info.param.min_degree);
  }
  return "venue" + std::to_string(info.param.venue_kind) + "_t" +
         std::to_string(info.param.min_degree);
}

Venue MakeSweepVenue(int kind, uint64_t seed) {
  switch (kind) {
    case 4:
      return testing::RandomSynthVenue(seed);
    case 0: {  // compact two-floor building
      synth::BuildingConfig cfg;
      cfg.floors = 2;
      cfg.rooms_per_floor = 14;
      cfg.staircases = 1;
      return synth::GenerateStandaloneBuilding(cfg, 400);
    }
    case 1: {  // tall tower with lifts and room-to-room doors
      synth::BuildingConfig cfg;
      cfg.floors = 8;
      cfg.rooms_per_floor = 26;
      cfg.staircases = 2;
      cfg.lifts = 2;
      cfg.inter_room_door_prob = 0.3;
      cfg.extra_corridor_door_prob = 0.25;
      return synth::GenerateStandaloneBuilding(cfg, 401);
    }
    case 2: {  // replicated building (Men-2 style)
      synth::BuildingConfig cfg;
      cfg.floors = 3;
      cfg.rooms_per_floor = 16;
      const Venue base = synth::GenerateStandaloneBuilding(cfg, 402);
      synth::ReplicateOptions options;
      options.copies = 2;
      return synth::ReplicateVertically(base, options);
    }
    default:  // small campus
      return synth::GenerateCampus(synth::MixedCampusConfig(3, 0.12, 403));
  }
}

class TreeInvariantTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  TreeInvariantTest()
      : venue_(MakeSweepVenue(GetParam().venue_kind, GetParam().seed)),
        graph_(venue_),
        tree_(IPTree::Build(venue_, graph_,
                            {.min_degree = GetParam().min_degree})) {}

  Venue venue_;
  D2DGraph graph_;
  IPTree tree_;
};

TEST_P(TreeInvariantTest, AccessDoorNesting) {
  // d in AD(N) implies d in AD(child of N containing it), all the way to a
  // leaf — the property path decomposition relies on.
  for (const TreeNode& n : tree_.nodes()) {
    if (n.is_leaf()) continue;
    for (DoorId d : n.access_doors) {
      bool found = false;
      for (NodeId c : n.children) {
        const TreeNode& child = tree_.node(c);
        const auto& ad = child.access_doors;
        if (std::binary_search(ad.begin(), ad.end(), d)) found = true;
      }
      EXPECT_TRUE(found) << "door " << d << " in AD(" << n.id
                         << ") but no child has it";
    }
  }
}

TEST_P(TreeInvariantTest, MatrixDoorsAreUnionOfChildAccessDoors) {
  for (const TreeNode& n : tree_.nodes()) {
    if (n.is_leaf()) continue;
    std::set<DoorId> expected;
    for (NodeId c : n.children) {
      const auto& ad = tree_.node(c).access_doors;
      expected.insert(ad.begin(), ad.end());
    }
    EXPECT_EQ(std::set<DoorId>(n.matrix_doors.begin(), n.matrix_doors.end()),
              expected);
    EXPECT_EQ(n.dist.rows(), n.matrix_doors.size());
    EXPECT_EQ(n.dist.cols(), n.matrix_doors.size());
  }
}

TEST_P(TreeInvariantTest, LeafDfsIntervalsPartitionTheLeaves) {
  const TreeNode& root = tree_.node(tree_.root());
  EXPECT_EQ(root.leaf_begin, 0u);
  EXPECT_EQ(root.leaf_end, tree_.num_leaves());
  for (const TreeNode& n : tree_.nodes()) {
    EXPECT_LT(n.leaf_begin, n.leaf_end);
    if (n.is_leaf()) {
      EXPECT_EQ(n.leaf_end, n.leaf_begin + 1);
      continue;
    }
    // Children intervals tile the parent's interval.
    uint32_t covered = 0;
    for (NodeId c : n.children) {
      covered += tree_.node(c).leaf_end - tree_.node(c).leaf_begin;
      EXPECT_GE(tree_.node(c).leaf_begin, n.leaf_begin);
      EXPECT_LE(tree_.node(c).leaf_end, n.leaf_end);
    }
    EXPECT_EQ(covered, n.leaf_end - n.leaf_begin);
  }
}

TEST_P(TreeInvariantTest, NonLeafMatrixDistancesAreGlobalShortest) {
  // Spot-check non-leaf matrix entries against plain Dijkstra.
  DijkstraEngine engine(graph_);
  int checked = 0;
  for (const TreeNode& n : tree_.nodes()) {
    if (n.is_leaf() || checked > 4) continue;
    ++checked;
    const size_t m = n.matrix_doors.size();
    const size_t step = std::max<size_t>(1, m / 3);
    for (size_t i = 0; i < m; i += step) {
      engine.Start(n.matrix_doors[i]);
      engine.RunToTargets(n.matrix_doors);
      for (size_t j = 0; j < m; j += step) {
        EXPECT_NEAR(n.dist.at(i, j), engine.DistanceTo(n.matrix_doors[j]),
                    1e-3)
            << "node " << n.id;
      }
    }
  }
}

TEST_P(TreeInvariantTest, NextHopSplitsPreserveDistance) {
  // dist(x, y) == dist(x, hop) + dist(hop, y) whenever a next-hop exists.
  DijkstraEngine engine(graph_);
  int checked = 0;
  for (const TreeNode& n : tree_.nodes()) {
    if (n.is_leaf() || checked > 3) continue;
    ++checked;
    const size_t m = n.matrix_doors.size();
    const size_t step = std::max<size_t>(1, m / 3);
    for (size_t i = 0; i < m; i += step) {
      for (size_t j = 0; j < m; j += step) {
        const DoorId hop = n.next_hop.at(i, j);
        if (hop == kInvalidId) continue;
        const int hop_row = IPTree::IndexOf(n.matrix_doors, hop);
        ASSERT_GE(hop_row, 0);
        EXPECT_NEAR(n.dist.at(i, j),
                    n.dist.at(i, hop_row) + n.dist.at(hop_row, j), 1e-3);
      }
    }
  }
}

TEST_P(TreeInvariantTest, SuperiorDoorsContainLocalAccessDoors) {
  for (const Partition& p : venue_.partitions()) {
    const TreeNode& leaf = tree_.node(tree_.LeafOfPartition(p.id));
    const viptree::Span<const DoorId> sup = tree_.SuperiorDoors(p.id);
    const viptree::Span<const DoorId> doors = venue_.DoorsOf(p.id);
    // Superior doors are doors of the partition.
    for (DoorId d : sup) {
      EXPECT_NE(std::find(doors.begin(), doors.end(), d), doors.end());
    }
    // Definition 2(i): local access doors are superior.
    for (DoorId d : doors) {
      if (IPTree::IndexOf(leaf.access_doors, d) >= 0) {
        EXPECT_NE(std::find(sup.begin(), sup.end(), d), sup.end())
            << "local access door " << d << " of partition " << p.id;
      }
    }
    // At least one superior door unless the leaf has no access doors.
    if (!leaf.access_doors.empty()) {
      EXPECT_FALSE(sup.empty());
    }
  }
}

TEST_P(TreeInvariantTest, NodesAreNumberedInTraversalPreOrder) {
  // The builder's final pass renumbers nodes in pre-order DFS position
  // (children in stored order), so a branch-and-bound descent reads
  // consecutive node records. Replay the DFS and check id == position.
  ASSERT_EQ(tree_.root(), 0u);
  std::vector<NodeId> stack = {tree_.root()};
  NodeId expect = 0;
  size_t seen = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    EXPECT_EQ(n, expect++);
    ++seen;
    const TreeNode& node = tree_.node(n);
    EXPECT_EQ(node.id, n);
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  EXPECT_EQ(seen, tree_.nodes().size());
}

TEST_P(TreeInvariantTest, MinDegreeRespectedBelowRoot) {
  const int t = GetParam().min_degree;
  for (const TreeNode& n : tree_.nodes()) {
    if (n.is_leaf() || n.id == tree_.root()) continue;
    // Each non-root internal node was merged from at least t nodes.
    EXPECT_GE(static_cast<int>(n.children.size()), 2);
    (void)t;
  }
  const IPTree::Stats stats = tree_.ComputeStats();
  EXPECT_GT(stats.num_leaves, 0u);
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST_P(TreeInvariantTest, AccessDoorCountsStaySmall) {
  // The paper's central empirical claim (§4.1): rho stays small because
  // indoor regions connect through few doors.
  const IPTree::Stats stats = tree_.ComputeStats();
  EXPECT_LT(stats.avg_access_doors, 16.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeInvariantTest,
    ::testing::Values(SweepParam{0, 2}, SweepParam{0, 4}, SweepParam{1, 2},
                      SweepParam{1, 6}, SweepParam{2, 2}, SweepParam{2, 3},
                      SweepParam{3, 2}, SweepParam{3, 5}),
    ParamName);

// Randomized sweep: every invariant above must also hold on irregular
// generated topologies, across seeds and minimum degrees.
std::vector<SweepParam> RandomSweepParams() {
  std::vector<SweepParam> params;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    params.push_back(SweepParam{4, 2 + static_cast<int>(seed % 3), seed});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, TreeInvariantTest,
                         ::testing::ValuesIn(RandomSweepParams()), ParamName);

}  // namespace
}  // namespace viptree
