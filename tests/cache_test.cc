// Unit tests for the cross-request distance cache (core/distance_cache.h):
// entry-kind isolation, counters, Clear, sharding bounds, the three
// eviction policies' observable semantics (driven through the public
// API with shards=1 so eviction order is deterministic), a concurrency
// smoke (the suite runs under TSan via the `cache` ctest label), and the
// DoorDistance regression for multi-leaf boundary doors whose LCA index
// lookups used to go unchecked.

#include "core/distance_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/distance_query.h"
#include "core/ip_tree.h"
#include "core/vip_tree.h"
#include "engine/venue_bundle.h"
#include "graph/dijkstra.h"
#include "ground_truth.h"

namespace viptree {
namespace {

DistanceCacheOptions SingleShard(size_t capacity, CachePolicy policy) {
  DistanceCacheOptions options;
  options.enabled = true;
  options.capacity = capacity;
  options.shards = 1;
  options.policy = policy;
  return options;
}

TEST(DistanceCacheTest, ScalarRoundTripAndCounters) {
  DistanceCache cache(SingleShard(8, CachePolicy::kLru));
  double out = 0.0;
  EXPECT_FALSE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 2, &out));
  cache.InsertScalar(CacheKind::kIpDoorPair, 1, 2, 42.5);
  ASSERT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 2, &out));
  EXPECT_EQ(out, 42.5);

  const CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.insertions, 1u);
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.lookups(), 2u);
  EXPECT_DOUBLE_EQ(counters.hit_rate(), 0.5);
  EXPECT_EQ(cache.Size(), 1u);
}

TEST(DistanceCacheTest, KindsDoNotCollide) {
  DistanceCache cache(SingleShard(16, CachePolicy::kLru));
  cache.InsertScalar(CacheKind::kIpDoorPair, 3, 4, 1.0);
  cache.InsertScalar(CacheKind::kVipDoorPair, 3, 4, 2.0);
  cache.InsertDistVector(CacheKind::kIpDoorAscent, 3, 4, {3.0, 4.0});
  cache.InsertIndexVector(CacheKind::kIndexMap, 3, 4, {5, 6});

  double s = 0.0;
  ASSERT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 3, 4, &s));
  EXPECT_EQ(s, 1.0);
  ASSERT_TRUE(cache.LookupScalar(CacheKind::kVipDoorPair, 3, 4, &s));
  EXPECT_EQ(s, 2.0);
  std::vector<double> dist;
  ASSERT_TRUE(cache.LookupDistVector(CacheKind::kIpDoorAscent, 3, 4, &dist));
  EXPECT_EQ(dist, (std::vector<double>{3.0, 4.0}));
  std::vector<int32_t> index;
  ASSERT_TRUE(cache.LookupIndexVector(CacheKind::kIndexMap, 3, 4, &index));
  EXPECT_EQ(index, (std::vector<int32_t>{5, 6}));
  EXPECT_EQ(cache.Size(), 4u);

  // Ordered keys: (4, 3) is not (3, 4).
  EXPECT_FALSE(cache.LookupScalar(CacheKind::kIpDoorPair, 4, 3, &s));
}

TEST(DistanceCacheTest, ClearDropsEntriesKeepsCounters) {
  DistanceCache cache(SingleShard(8, CachePolicy::k2Q));
  cache.InsertScalar(CacheKind::kIpDoorPair, 1, 1, 1.0);
  double out;
  ASSERT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 1, &out));
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_FALSE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 1, &out));
  const CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits, 1u);      // monotonic across Clear
  EXPECT_EQ(counters.misses, 1u);
  // The cache is usable again after Clear.
  cache.InsertScalar(CacheKind::kIpDoorPair, 1, 1, 9.0);
  ASSERT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 1, &out));
  EXPECT_EQ(out, 9.0);
}

TEST(DistanceCacheTest, LruEvictsLeastRecentlyUsed) {
  DistanceCache cache(SingleShard(3, CachePolicy::kLru));
  for (int32_t i = 1; i <= 3; ++i) {
    cache.InsertScalar(CacheKind::kIpDoorPair, i, 0, i);
  }
  // Touch key 1 so key 2 becomes the LRU victim.
  double out;
  ASSERT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 0, &out));
  cache.InsertScalar(CacheKind::kIpDoorPair, 4, 0, 4.0);

  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 0, &out));
  EXPECT_FALSE(cache.LookupScalar(CacheKind::kIpDoorPair, 2, 0, &out));
  EXPECT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 3, 0, &out));
  EXPECT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 4, 0, &out));
  EXPECT_EQ(cache.Counters().evictions, 1u);
}

TEST(DistanceCacheTest, TwoQGhostHitPromotesToMain) {
  // capacity 4, shards 1 -> Kin = 1, Kout = 2.
  DistanceCache cache(SingleShard(4, CachePolicy::k2Q));
  for (int32_t i = 1; i <= 5; ++i) {
    cache.InsertScalar(CacheKind::kIpDoorPair, i, 0, i);
  }
  // Key 1 was demoted from A1in to a ghost: evicted but remembered.
  EXPECT_EQ(cache.Size(), 4u);
  double out;
  EXPECT_FALSE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 0, &out));

  // Second reference within the ghost window admits key 1 to Am, where a
  // subsequent one-pass scan of fresh keys cannot push it out (each scan
  // key is demoted from the A1in FIFO instead).
  cache.InsertScalar(CacheKind::kIpDoorPair, 1, 0, 1.0);
  for (int32_t i = 10; i < 20; ++i) {
    cache.InsertScalar(CacheKind::kIpDoorPair, i, 0, i);
  }
  EXPECT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 0, &out));
  EXPECT_EQ(out, 1.0);
  // The scanned keys churned through A1in: the oldest are gone.
  EXPECT_FALSE(cache.LookupScalar(CacheKind::kIpDoorPair, 10, 0, &out));
  EXPECT_LE(cache.Size(), 4u);
}

TEST(DistanceCacheTest, S2qPromotionOnA1Hit) {
  // capacity 4, shards 1 -> Ka1 = 1.
  DistanceCache cache(SingleShard(4, CachePolicy::kS2Q));
  for (int32_t i = 1; i <= 4; ++i) {
    cache.InsertScalar(CacheKind::kIpDoorPair, i, 0, i);
  }
  // Hit key 1 while it sits in A1: promoted to Am immediately (no ghost
  // round-trip like full 2Q).
  double out;
  ASSERT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 0, &out));
  // A one-pass scan churns the A1 FIFO but leaves Am alone.
  for (int32_t i = 10; i < 20; ++i) {
    cache.InsertScalar(CacheKind::kIpDoorPair, i, 0, i);
  }
  EXPECT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 0, &out));
  EXPECT_EQ(out, 1.0);
  EXPECT_FALSE(cache.LookupScalar(CacheKind::kIpDoorPair, 10, 0, &out));
  EXPECT_LE(cache.Size(), 4u);
}

TEST(DistanceCacheTest, ShardingBoundsTotalSize) {
  DistanceCacheOptions options;
  options.enabled = true;
  options.capacity = 64;
  options.shards = 8;
  options.policy = CachePolicy::kLru;
  DistanceCache cache(options);
  for (int32_t i = 0; i < 500; ++i) {
    cache.InsertScalar(CacheKind::kIpDoorPair, i, i, i);
  }
  // Per-shard capacity is capacity/shards; the total can never exceed the
  // configured capacity regardless of how keys hash.
  EXPECT_LE(cache.Size(), 64u);
  const CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.insertions, 500u);
  EXPECT_EQ(counters.insertions - counters.evictions, cache.Size());
}

TEST(DistanceCacheTest, ShardCountClampedToPowerOfTwo) {
  for (size_t shards : {0u, 1u, 3u, 8u, 1000u}) {
    DistanceCacheOptions options;
    options.capacity = 128;
    options.shards = shards;
    DistanceCache cache(options);  // must not crash; keys must all resolve
    for (int32_t i = 0; i < 64; ++i) {
      cache.InsertScalar(CacheKind::kIndexMap, i, 0, i);
    }
    int hits = 0;
    for (int32_t i = 0; i < 64; ++i) {
      double value;
      if (cache.LookupScalar(CacheKind::kIndexMap, i, 0, &value)) ++hits;
    }
    EXPECT_GT(hits, 0) << "shards=" << shards;
  }
}

TEST(DistanceCacheTest, ParseCachePolicy) {
  CachePolicy policy;
  ASSERT_TRUE(ParseCachePolicy("lru", &policy));
  EXPECT_EQ(policy, CachePolicy::kLru);
  ASSERT_TRUE(ParseCachePolicy("2q", &policy));
  EXPECT_EQ(policy, CachePolicy::k2Q);
  ASSERT_TRUE(ParseCachePolicy("s2q", &policy));
  EXPECT_EQ(policy, CachePolicy::kS2Q);
  EXPECT_FALSE(ParseCachePolicy("arc", &policy));
  EXPECT_FALSE(ParseCachePolicy("", &policy));
  EXPECT_STREQ(CachePolicyName(CachePolicy::kLru), "lru");
  EXPECT_STREQ(CachePolicyName(CachePolicy::k2Q), "2q");
  EXPECT_STREQ(CachePolicyName(CachePolicy::kS2Q), "s2q");
}

// Concurrency smoke: threads race lookups and inserts over an overlapping
// key range. Values are a pure function of the key, so every hit must
// return the value any thread would have inserted. Run under TSan via the
// `cache` label.
TEST(DistanceCacheTest, ConcurrentInsertLookupSmoke) {
  for (CachePolicy policy :
       {CachePolicy::kLru, CachePolicy::k2Q, CachePolicy::kS2Q}) {
    DistanceCacheOptions options;
    options.enabled = true;
    options.capacity = 256;
    options.shards = 4;
    options.policy = policy;
    DistanceCache cache(options);

    constexpr int kThreads = 4;
    constexpr int kOps = 4000;
    constexpr int32_t kKeySpace = 512;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, t]() {
        for (int i = 0; i < kOps; ++i) {
          const int32_t a = static_cast<int32_t>((i * 37 + t * 11) % kKeySpace);
          const int32_t b = static_cast<int32_t>((i * 13) % kKeySpace);
          double out;
          if (cache.LookupScalar(CacheKind::kIpDoorPair, a, b, &out)) {
            ASSERT_EQ(out, a * 1000.0 + b);
          } else {
            cache.InsertScalar(CacheKind::kIpDoorPair, a, b, a * 1000.0 + b);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();

    const CacheCounters counters = cache.Counters();
    EXPECT_EQ(counters.lookups(), static_cast<uint64_t>(kThreads) * kOps);
    EXPECT_LE(cache.Size(), options.capacity);
  }
}

// Regression for the unchecked LCA index lookups in the DoorDistance join
// loops: doors on leaf boundaries appear in the access-door lists of more
// than one leaf, and a bad IndexOf there used to read a wrong matrix row
// silently. Sweep every door pair of multi-leaf random venues through both
// engines, cache on and off, against Dijkstra ground truth.
TEST(DistanceCacheTest, MultiLeafBoundaryDoorDistances) {
  // Seeds chosen for small multi-leaf venues (2-4 leaves, ~20 doors), so
  // the all-pairs sweep is cheap but boundary doors genuinely span leaves.
  for (uint64_t seed : {10u, 21u}) {
    const Venue venue = testing::RandomSynthVenue(seed);
    const D2DGraph graph(venue);
    const IPTree tree = IPTree::Build(venue, graph, {.min_degree = 2});
    const VIPTree vip = VIPTree::Build(venue, graph, {.min_degree = 2});
    ASSERT_GT(tree.num_leaves(), 1u) << "seed " << seed;

    DistanceCache cache(SingleShard(1 << 14, CachePolicy::k2Q));
    IPDistanceQuery ip_plain(tree);
    IPDistanceQuery ip_cached(tree, {}, &cache);
    VIPDistanceQuery vip_plain(vip);
    VIPDistanceQuery vip_cached(vip, {}, &cache);

    DijkstraEngine dijkstra(graph);
    const DoorId num_doors = static_cast<DoorId>(venue.NumDoors());
    for (DoorId s = 0; s < num_doors; ++s) {
      dijkstra.Start(s);
      dijkstra.RunAll();
      for (DoorId t = 0; t < num_doors; ++t) {
        const double expected = dijkstra.DistanceTo(t);
        EXPECT_NEAR(ip_plain.DoorDistance(s, t), expected, 1e-4)
            << "IP seed " << seed << " " << s << "->" << t;
        EXPECT_NEAR(vip_plain.DoorDistance(s, t), expected, 1e-4)
            << "VIP seed " << seed << " " << s << "->" << t;
        // The cached engines must agree bit-for-bit with the uncached
        // ones — twice, so the second pass reads what the first inserted.
        for (int pass = 0; pass < 2; ++pass) {
          EXPECT_EQ(ip_cached.DoorDistance(s, t), ip_plain.DoorDistance(s, t))
              << "IP cached pass " << pass << " seed " << seed;
          EXPECT_EQ(vip_cached.DoorDistance(s, t),
                    vip_plain.DoorDistance(s, t))
              << "VIP cached pass " << pass << " seed " << seed;
        }
      }
    }
    EXPECT_GT(cache.Counters().hits, 0u) << "seed " << seed;
  }
}

TEST(AdaptiveCapacityTest, ScalesWithDoorsAndClamps) {
  EXPECT_EQ(AdaptiveCacheCapacity(0), size_t{1} << 12);      // floor
  EXPECT_EQ(AdaptiveCacheCapacity(100), size_t{1} << 12);    // 1600 < floor
  EXPECT_EQ(AdaptiveCacheCapacity(1000), size_t{16000});     // 16x doors
  EXPECT_EQ(AdaptiveCacheCapacity(1 << 20), size_t{1} << 20);  // ceiling
}

TEST(AdaptiveCapacityTest, BundleResolvesAutoCapacityFromVenue) {
  engine::EngineOptions options;
  options.cache.enabled = true;  // capacity left at the 0 auto sentinel
  engine::VenueBundle bundle =
      engine::VenueBundle::Build(testing::RandomSynthVenue(7), {}, options);
  ASSERT_NE(bundle.distance_cache(), nullptr);
  EXPECT_EQ(bundle.distance_cache()->options().capacity,
            AdaptiveCacheCapacity(bundle.venue().NumDoors()));

  // An explicit capacity is taken verbatim.
  DistanceCacheOptions fixed;
  fixed.capacity = 12345;
  bundle.EnableDistanceCache(fixed);
  EXPECT_EQ(bundle.distance_cache()->options().capacity, 12345u);
}

TEST(AdaptiveCapacityTest, DirectConstructionWithSentinelStillWorks) {
  // No venue in scope: the cache itself falls back to the fixed default
  // and must stay fully functional.
  DistanceCache cache;  // DistanceCacheOptions{} => capacity 0
  cache.InsertScalar(CacheKind::kIpDoorPair, 1, 2, 42.0);
  double out = 0.0;
  EXPECT_TRUE(cache.LookupScalar(CacheKind::kIpDoorPair, 1, 2, &out));
  EXPECT_EQ(out, 42.0);
}

}  // namespace
}  // namespace viptree
