#include "graph/d2d_graph.h"

#include <gtest/gtest.h>

#include "graph/ab_graph.h"
#include "model/venue_builder.h"
#include "paper_example.h"

namespace viptree {
namespace {

Venue MakeStarVenue(int rooms) {
  VenueBuilder builder;
  const PartitionId hallway =
      builder.AddPartition(0, PartitionUse::kCorridor, Point{});
  for (int i = 0; i < rooms; ++i) {
    const PartitionId room =
        builder.AddPartition(0, PartitionUse::kRoom, Point{});
    builder.AddDoor(hallway, room, Point{static_cast<double>(i), 0, 0});
  }
  return std::move(builder).Build();
}

TEST(D2DGraphTest, HallwayDoorsFormClique) {
  const Venue venue = MakeStarVenue(6);
  const D2DGraph graph(venue);
  EXPECT_EQ(graph.NumVertices(), 6u);
  // 6 doors of the hallway form a clique: C(6,2) undirected edges. The
  // rooms are no-through (one door each) and add nothing.
  EXPECT_EQ(graph.NumEdges(), 15u);
  EXPECT_EQ(graph.NumDirectedEdges(), 30u);
  for (DoorId d = 0; d < 6; ++d) {
    EXPECT_EQ(graph.EdgesOf(d).size(), 5u);
  }
}

TEST(D2DGraphTest, WeightsAreScaledEuclidean) {
  VenueBuilder builder;
  const PartitionId stair = builder.AddPartition(
      0, PartitionUse::kStaircase, Point{}, "s", /*cost_scale=*/1.5);
  const PartitionId a = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId b = builder.AddPartition(1, PartitionUse::kRoom, Point{});
  const DoorId da = builder.AddDoor(stair, a, Point{0, 0, 0});
  const DoorId db = builder.AddDoor(stair, b, Point{0, 3, 4});
  const Venue venue = std::move(builder).Build();
  const D2DGraph graph(venue);

  ASSERT_EQ(graph.EdgesOf(da).size(), 1u);
  const D2DEdge& e = graph.EdgesOf(da)[0];
  EXPECT_EQ(e.to, db);
  EXPECT_FLOAT_EQ(e.weight, 7.5f);  // 5 * 1.5
  EXPECT_EQ(e.via, stair);
}

TEST(D2DGraphTest, ParallelEdgesWhenDoorsShareTwoPartitions) {
  VenueBuilder builder;
  const PartitionId a = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const PartitionId b = builder.AddPartition(0, PartitionUse::kRoom, Point{});
  const DoorId d1 = builder.AddDoor(a, b, Point{0, 0, 0});
  builder.AddDoor(a, b, Point{2, 0, 0});
  const Venue venue = std::move(builder).Build();
  const D2DGraph graph(venue);

  // The two doors are connected through partition a AND through partition b.
  EXPECT_EQ(graph.NumEdges(), 2u);
  ASSERT_EQ(graph.EdgesOf(d1).size(), 2u);
  EXPECT_NE(graph.EdgesOf(d1)[0].via, graph.EdgesOf(d1)[1].via);
}

TEST(D2DGraphTest, ExplicitEdgeConstructor) {
  const std::vector<ExplicitD2DEdge> edges = {
      {0, 1, 2.0f, 0},
      {1, 2, 3.0f, 1},
  };
  const D2DGraph graph(3, edges);
  EXPECT_EQ(graph.NumVertices(), 3u);
  EXPECT_EQ(graph.NumEdges(), 2u);
  ASSERT_EQ(graph.EdgesOf(1).size(), 2u);
}

TEST(D2DGraphTest, PaperExampleEdgeCount) {
  const testing::PaperExample example = testing::MakePaperExample();
  // 40 explicit undirected edges in the fixture.
  EXPECT_EQ(example.graph.NumEdges(), 40u);
  EXPECT_EQ(example.graph.NumVertices(), 20u);
}

TEST(ABGraphTest, PartitionVertexPerDoorEdge) {
  const testing::PaperExample example = testing::MakePaperExample();
  const ABGraph ab(example.venue);
  EXPECT_EQ(ab.NumVertices(), 17u);
  // 17 interior doors (d1, d7, d20 are exterior): each contributes two
  // directed edges.
  EXPECT_EQ(ab.NumDirectedEdges(), 34u);

  // P1 and P3 are connected by two labelled edges (d2 and d3), Fig. 2(b).
  int p1_to_p3 = 0;
  for (const ABEdge& e : ab.EdgesOf(testing::P(1))) {
    if (e.to == testing::P(3)) ++p1_to_p3;
  }
  EXPECT_EQ(p1_to_p3, 2);
}

TEST(ABGraphTest, StarVenue) {
  const Venue venue = MakeStarVenue(4);
  const ABGraph ab(venue);
  EXPECT_EQ(ab.NumVertices(), 5u);
  EXPECT_EQ(ab.EdgesOf(0).size(), 4u);  // the hallway sees all four rooms
}

}  // namespace
}  // namespace viptree
