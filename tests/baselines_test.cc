#include "baselines/engines.h"

#include <gtest/gtest.h>

#include "baselines/dist_aware.h"
#include "baselines/dist_matrix.h"
#include "baselines/gtree.h"
#include "baselines/road.h"
#include "ground_truth.h"
#include "partition/multilevel_partitioner.h"
#include "synth/building_generator.h"
#include "synth/campus_generator.h"
#include "synth/objects.h"

namespace viptree {
namespace {

Venue MakeTestBuilding(uint64_t seed) {
  synth::BuildingConfig cfg;
  cfg.floors = 3;
  cfg.rooms_per_floor = 20;
  cfg.staircases = 2;
  cfg.lifts = 1;
  cfg.inter_room_door_prob = 0.2;
  return synth::GenerateStandaloneBuilding(cfg, seed);
}

TEST(MultilevelPartitionerTest, BalancedBisectionCoversAllVertices) {
  const Venue venue = MakeTestBuilding(300);
  const D2DGraph graph(venue);
  MultilevelPartitioner partitioner(graph);
  std::vector<DoorId> all(graph.NumVertices());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<DoorId>(i);
  const std::vector<int> assign = partitioner.Partition(all, 4);
  ASSERT_EQ(assign.size(), all.size());
  std::vector<int> counts(4, 0);
  for (int a : assign) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 4);
    ++counts[a];
  }
  for (int c : counts) {
    EXPECT_GT(c, 0);
    // Reasonable balance: no part above 60% of the total.
    EXPECT_LT(c, static_cast<int>(all.size() * 3 / 5));
  }
}

TEST(DistanceMatrixTest, MatchesBruteForce) {
  const Venue venue = MakeTestBuilding(301);
  const D2DGraph graph(venue);
  const DistanceMatrix matrix(venue, graph);
  Rng rng(1000);
  const auto pairs = synth::RandomPointPairs(venue, 40, rng);
  for (const auto& [s, t] : pairs) {
    const double expected = testing::BruteDistance(venue, graph, s, t);
    EXPECT_NEAR(matrix.Distance(s, t, /*optimized=*/true), expected, 1e-3);
    EXPECT_NEAR(matrix.Distance(s, t, /*optimized=*/false), expected, 1e-3);
  }
}

TEST(DistanceMatrixTest, OptimizationReducesPairCount) {
  const Venue venue = MakeTestBuilding(302);
  const D2DGraph graph(venue);
  const DistanceMatrix matrix(venue, graph);
  Rng rng(1001);
  size_t optimized_pairs = 0;
  size_t plain_pairs = 0;
  const auto pairs = synth::RandomPointPairs(venue, 50, rng);
  for (const auto& [s, t] : pairs) {
    matrix.Distance(s, t, true);
    optimized_pairs += matrix.last_pair_count();
    matrix.Distance(s, t, false);
    plain_pairs += matrix.last_pair_count();
  }
  EXPECT_LT(optimized_pairs, plain_pairs);  // Fig. 9(a)'s effect
}

TEST(DistanceMatrixTest, DoorPathFollowsNextHops) {
  const Venue venue = MakeTestBuilding(303);
  const D2DGraph graph(venue);
  const DistanceMatrix matrix(venue, graph);
  Rng rng(1002);
  for (int i = 0; i < 20; ++i) {
    const DoorId a = static_cast<DoorId>(rng.UniformIndex(venue.NumDoors()));
    const DoorId b = static_cast<DoorId>(rng.UniformIndex(venue.NumDoors()));
    const std::vector<DoorId> path = matrix.DoorPath(a, b);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    EXPECT_NEAR(testing::DoorPathLength(graph, path),
                matrix.DoorDistance(a, b), 1e-3);
  }
}

TEST(DistAwareTest, DistanceAndPathMatchBruteForce) {
  const Venue venue = MakeTestBuilding(304);
  const D2DGraph graph(venue);
  DistAwareModel model(venue, graph);
  Rng rng(1003);
  const auto pairs = synth::RandomPointPairs(venue, 40, rng);
  for (const auto& [s, t] : pairs) {
    const double expected = testing::BruteDistance(venue, graph, s, t);
    EXPECT_NEAR(model.Distance(s, t), expected, 1e-3);
    double d = kInfDistance;
    const std::vector<DoorId> path = model.Path(s, t, &d);
    EXPECT_NEAR(d, expected, 1e-3);
    if (!path.empty()) {
      EXPECT_NEAR(testing::PointPathLength(venue, graph, s, t, path),
                  expected, 1e-2);
    }
  }
}

TEST(DistAwareTest, KnnMatchesBruteForceWithAndWithoutMatrix) {
  const Venue venue = MakeTestBuilding(305);
  const D2DGraph graph(venue);
  const DistanceMatrix matrix(venue, graph);
  DistAwareModel plain(venue, graph);
  DistAwareModel plus(venue, graph, &matrix);
  Rng rng(1004);
  const auto objects = synth::PlaceObjects(venue, 12, rng);
  plain.SetObjects(objects);
  plus.SetObjects(objects);
  for (int i = 0; i < 20; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(venue, rng);
    const auto expected =
        testing::BruteAllObjectDistances(venue, graph, q, objects);
    const auto a = plain.Knn(q, 5);
    const auto b = plus.Knn(q, 5);
    ASSERT_EQ(a.size(), 5u);
    ASSERT_EQ(b.size(), 5u);
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(a[j].distance, expected[j].distance, 1e-3);
      EXPECT_NEAR(b[j].distance, expected[j].distance, 1e-3);
    }
  }
}

TEST(GTreeTest, DistancesMatchBruteForce) {
  const Venue venue = MakeTestBuilding(306);
  const D2DGraph graph(venue);
  GTree gtree(venue, graph, {.fanout = 4, .leaf_tau = 32});
  Rng rng(1005);
  const auto pairs = synth::RandomPointPairs(venue, 40, rng);
  for (const auto& [s, t] : pairs) {
    const double expected = testing::BruteDistance(venue, graph, s, t);
    EXPECT_NEAR(gtree.Distance(s, t), expected, 1e-3 + expected * 1e-5);
  }
}

TEST(GTreeTest, PathsSumToDistances) {
  const Venue venue = MakeTestBuilding(307);
  const D2DGraph graph(venue);
  GTree gtree(venue, graph, {.fanout = 4, .leaf_tau = 32});
  Rng rng(1006);
  const auto pairs = synth::RandomPointPairs(venue, 25, rng);
  for (const auto& [s, t] : pairs) {
    std::vector<DoorId> doors;
    const double d = gtree.Path(s, t, &doors);
    const double expected = testing::BruteDistance(venue, graph, s, t);
    EXPECT_NEAR(d, expected, 1e-3 + expected * 1e-5);
    if (!doors.empty()) {
      EXPECT_NEAR(testing::PointPathLength(venue, graph, s, t, doors),
                  expected, 1e-2 + expected * 1e-4);
    }
  }
}

TEST(GTreeTest, KnnMatchesBruteForce) {
  const Venue venue = MakeTestBuilding(308);
  const D2DGraph graph(venue);
  GTree gtree(venue, graph, {.fanout = 4, .leaf_tau = 32});
  Rng rng(1007);
  const auto objects = synth::PlaceObjects(venue, 10, rng);
  gtree.SetObjects(objects);
  for (int i = 0; i < 15; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(venue, rng);
    const auto expected =
        testing::BruteAllObjectDistances(venue, graph, q, objects);
    const auto actual = gtree.Knn(q, 5);
    ASSERT_EQ(actual.size(), 5u);
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(actual[j].distance, expected[j].distance, 1e-3);
    }
  }
}

TEST(RoadTest, DistancesMatchBruteForce) {
  const Venue venue = MakeTestBuilding(309);
  const D2DGraph graph(venue);
  RoadIndex road(venue, graph, {.leaf_tau = 32});
  Rng rng(1008);
  const auto pairs = synth::RandomPointPairs(venue, 40, rng);
  for (const auto& [s, t] : pairs) {
    const double expected = testing::BruteDistance(venue, graph, s, t);
    EXPECT_NEAR(road.Distance(s, t), expected, 1e-3 + expected * 1e-5);
  }
}

TEST(RoadTest, PathsSumToDistances) {
  const Venue venue = MakeTestBuilding(310);
  const D2DGraph graph(venue);
  RoadIndex road(venue, graph, {.leaf_tau = 32});
  Rng rng(1009);
  const auto pairs = synth::RandomPointPairs(venue, 20, rng);
  for (const auto& [s, t] : pairs) {
    std::vector<DoorId> doors;
    const double d = road.Path(s, t, &doors);
    const double expected = testing::BruteDistance(venue, graph, s, t);
    EXPECT_NEAR(d, expected, 1e-3 + expected * 1e-5);
    if (!doors.empty()) {
      EXPECT_NEAR(testing::PointPathLength(venue, graph, s, t, doors),
                  expected, 1e-2 + expected * 1e-4);
    }
  }
}

TEST(RoadTest, KnnAndRangeMatchBruteForce) {
  const Venue venue = MakeTestBuilding(311);
  const D2DGraph graph(venue);
  RoadIndex road(venue, graph, {.leaf_tau = 32});
  Rng rng(1010);
  const auto objects = synth::PlaceObjects(venue, 10, rng);
  road.SetObjects(objects);
  for (int i = 0; i < 15; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(venue, rng);
    const auto expected =
        testing::BruteAllObjectDistances(venue, graph, q, objects);
    const auto actual = road.Knn(q, 3);
    ASSERT_EQ(actual.size(), 3u);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(actual[j].distance, expected[j].distance, 1e-3);
    }
    const auto in_range = road.Range(q, 60.0);
    size_t expected_count = 0;
    for (const auto& e : expected) {
      if (e.distance <= 60.0) ++expected_count;
    }
    EXPECT_EQ(in_range.size(), expected_count);
  }
}

TEST(EnginesTest, AllEnginesAgreeOnACampus) {
  const Venue venue =
      synth::GenerateCampus(synth::MixedCampusConfig(3, 0.1, 312));
  const D2DGraph graph(venue);
  const DistanceMatrix matrix(venue, graph);

  std::vector<std::unique_ptr<QueryEngine>> engines;
  for (EngineKind kind :
       {EngineKind::kVipTree, EngineKind::kIpTree, EngineKind::kDistAw,
        EngineKind::kDistAwPlusPlus, EngineKind::kDistMx, EngineKind::kGTree,
        EngineKind::kRoad}) {
    engines.push_back(MakeEngineWithMatrix(kind, venue, graph, &matrix));
  }

  Rng rng(1011);
  const auto objects = synth::PlaceObjects(venue, 8, rng);
  for (auto& e : engines) e->SetObjects(objects);

  const auto pairs = synth::RandomPointPairs(venue, 15, rng);
  for (const auto& [s, t] : pairs) {
    const double expected = testing::BruteDistance(venue, graph, s, t);
    for (auto& e : engines) {
      EXPECT_NEAR(e->Distance(s, t), expected, 1e-3 + expected * 1e-5)
          << e->name();
      std::vector<DoorId> doors;
      EXPECT_NEAR(e->Path(s, t, &doors), expected, 1e-3 + expected * 1e-5)
          << e->name();
    }
  }
  for (int i = 0; i < 5; ++i) {
    const IndoorPoint q = synth::RandomIndoorPoint(venue, rng);
    const auto expected =
        testing::BruteAllObjectDistances(venue, graph, q, objects);
    for (auto& e : engines) {
      const auto knn = e->Knn(q, 3);
      ASSERT_EQ(knn.size(), 3u) << e->name();
      for (size_t j = 0; j < 3; ++j) {
        EXPECT_NEAR(knn[j].distance, expected[j].distance, 1e-3)
            << e->name();
      }
    }
  }
}

}  // namespace
}  // namespace viptree
