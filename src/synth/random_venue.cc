#include "synth/random_venue.h"

#include "common/rng.h"
#include "synth/building_generator.h"
#include "synth/campus_generator.h"

namespace viptree {
namespace synth {

Venue RandomVenue(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  if (rng.Chance(0.3)) {
    // A 2-4 building mini-campus with outdoor walkways.
    const int buildings = static_cast<int>(rng.UniformInt(2, 4));
    const double room_scale = rng.UniformReal(0.05, 0.12);
    return GenerateCampus(
        MixedCampusConfig(buildings, room_scale, seed ^ 0xCA3905));
  }
  BuildingConfig cfg;
  cfg.floors = static_cast<int>(rng.UniformInt(1, 4));
  cfg.rooms_per_floor = static_cast<int>(rng.UniformInt(6, 22));
  cfg.corridors_per_floor = static_cast<int>(rng.UniformInt(1, 2));
  cfg.staircases = static_cast<int>(rng.UniformInt(1, 2));
  cfg.lifts = static_cast<int>(rng.UniformInt(0, 1));
  cfg.exits = static_cast<int>(rng.UniformInt(1, 3));
  cfg.exterior_exits = rng.Chance(0.7);
  cfg.inter_room_door_prob = rng.UniformReal(0.0, 0.35);
  cfg.extra_corridor_door_prob = rng.UniformReal(0.0, 0.3);
  return GenerateStandaloneBuilding(cfg, seed ^ 0xB0B);
}

}  // namespace synth
}  // namespace viptree
