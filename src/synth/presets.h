// The six evaluation venues of Table 2, as synthetic analogues:
// MC / MC-2 (Melbourne Central), Men / Men-2 (Menzies building),
// CL / CL-2 (Clayton campus). See docs/ARCHITECTURE.md for the substitution
// rationale. `scale` multiplies room counts (1.0 = paper magnitude).
//
// One extrapolation tier sits beyond Table 2: City — hundreds of connected
// buildings (a doubled-up 160-building campus), roughly 4-5x CL-2, sized so
// a ~10^6-object workload is natural at scale 1.0. It stresses the memory
// hierarchy the way the paper's scalability discussion (§4.5) anticipates;
// its "paper" reference counts are extrapolations, not published numbers.

#ifndef VIPTREE_SYNTH_PRESETS_H_
#define VIPTREE_SYNTH_PRESETS_H_

#include <string>

#include "model/venue.h"

namespace viptree {
namespace synth {

enum class Dataset { kMC, kMC2, kMen, kMen2, kCL, kCL2, kCity };

struct DatasetInfo {
  Dataset dataset;
  std::string name;
  // Table 2 reference values from the paper (extrapolated for kCity).
  size_t paper_doors;
  size_t paper_rooms;
  size_t paper_edges;
};

// All datasets: the six Table 2 rows in paper order, then City.
const std::vector<DatasetInfo>& AllDatasets();

DatasetInfo InfoFor(Dataset dataset);

// Builds the analogue venue. Deterministic for a given (dataset, scale).
Venue MakeDataset(Dataset dataset, double scale = 1.0);

// Parses "MC", "MC-2", "Men", "Men-2", "CL", "CL-2", "City"
// (case-insensitive). Aborts on unknown names.
Dataset DatasetFromName(const std::string& name);

}  // namespace synth
}  // namespace viptree

#endif  // VIPTREE_SYNTH_PRESETS_H_
