// The six evaluation venues of Table 2, as synthetic analogues:
// MC / MC-2 (Melbourne Central), Men / Men-2 (Menzies building),
// CL / CL-2 (Clayton campus). See docs/ARCHITECTURE.md for the substitution
// rationale. `scale` multiplies room counts (1.0 = paper magnitude).

#ifndef VIPTREE_SYNTH_PRESETS_H_
#define VIPTREE_SYNTH_PRESETS_H_

#include <string>

#include "model/venue.h"

namespace viptree {
namespace synth {

enum class Dataset { kMC, kMC2, kMen, kMen2, kCL, kCL2 };

struct DatasetInfo {
  Dataset dataset;
  std::string name;
  // Table 2 reference values from the paper.
  size_t paper_doors;
  size_t paper_rooms;
  size_t paper_edges;
};

// All six datasets in Table 2 order.
const std::vector<DatasetInfo>& AllDatasets();

DatasetInfo InfoFor(Dataset dataset);

// Builds the analogue venue. Deterministic for a given (dataset, scale).
Venue MakeDataset(Dataset dataset, double scale = 1.0);

// Parses "MC", "MC-2", "Men", "Men-2", "CL", "CL-2" (case-insensitive).
// Aborts on unknown names.
Dataset DatasetFromName(const std::string& name);

}  // namespace synth
}  // namespace viptree

#endif  // VIPTREE_SYNTH_PRESETS_H_
