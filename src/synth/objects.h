// Workload generation: random indoor query points, source/target pairs, and
// indoor object sets (the "washrooms" of §4.1).

#ifndef VIPTREE_SYNTH_OBJECTS_H_
#define VIPTREE_SYNTH_OBJECTS_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "model/venue.h"

namespace viptree {
namespace synth {

// A point in a uniformly random partition, jittered around its centroid.
IndoorPoint RandomIndoorPoint(const Venue& venue, Rng& rng);

// `n` independent (source, target) pairs for shortest distance/path
// workloads (§4.1 uses 10,000 random pairs).
std::vector<std::pair<IndoorPoint, IndoorPoint>> RandomPointPairs(
    const Venue& venue, size_t n, Rng& rng);

// `n` independent query points for kNN / range workloads.
std::vector<IndoorPoint> RandomQueryPoints(const Venue& venue, size_t n,
                                           Rng& rng);

// Places `count` objects uniformly over room partitions (distinct partitions
// while enough rooms are available), mirroring the paper's small
// facility-style object sets (ATMs, washrooms, kiosks).
std::vector<IndoorPoint> PlaceObjects(const Venue& venue, size_t count,
                                      Rng& rng);

}  // namespace synth
}  // namespace viptree

#endif  // VIPTREE_SYNTH_OBJECTS_H_
