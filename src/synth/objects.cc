#include "synth/objects.h"

#include <algorithm>

#include "common/check.h"

namespace viptree {
namespace synth {

namespace {

IndoorPoint PointIn(const Venue& venue, PartitionId p, Rng& rng) {
  const Partition& part = venue.partition(p);
  IndoorPoint point;
  point.partition = p;
  point.position = part.centroid;
  point.position.x += rng.UniformReal(-1.5, 1.5);
  point.position.y += rng.UniformReal(-1.5, 1.5);
  return point;
}

}  // namespace

IndoorPoint RandomIndoorPoint(const Venue& venue, Rng& rng) {
  const PartitionId p =
      static_cast<PartitionId>(rng.UniformIndex(venue.NumPartitions()));
  return PointIn(venue, p, rng);
}

std::vector<std::pair<IndoorPoint, IndoorPoint>> RandomPointPairs(
    const Venue& venue, size_t n, Rng& rng) {
  std::vector<std::pair<IndoorPoint, IndoorPoint>> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(RandomIndoorPoint(venue, rng),
                       RandomIndoorPoint(venue, rng));
  }
  return pairs;
}

std::vector<IndoorPoint> RandomQueryPoints(const Venue& venue, size_t n,
                                           Rng& rng) {
  std::vector<IndoorPoint> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) points.push_back(RandomIndoorPoint(venue, rng));
  return points;
}

std::vector<IndoorPoint> PlaceObjects(const Venue& venue, size_t count,
                                      Rng& rng) {
  std::vector<PartitionId> rooms;
  for (const Partition& p : venue.partitions()) {
    if (p.use == PartitionUse::kRoom) rooms.push_back(p.id);
  }
  if (rooms.empty()) {
    for (const Partition& p : venue.partitions()) rooms.push_back(p.id);
  }
  std::shuffle(rooms.begin(), rooms.end(), rng.engine());

  std::vector<IndoorPoint> objects;
  objects.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PartitionId p = rooms[i % rooms.size()];
    objects.push_back(PointIn(venue, p, rng));
  }
  return objects;
}

}  // namespace synth
}  // namespace viptree
