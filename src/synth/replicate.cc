#include "synth/replicate.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "model/venue_builder.h"

namespace viptree {
namespace synth {

Venue ReplicateVertically(const Venue& venue,
                          const ReplicateOptions& options) {
  VIPTREE_CHECK(options.copies >= 1);

  int min_level = venue.partition(0).level;
  int max_level = min_level;
  for (const Partition& p : venue.partitions()) {
    min_level = std::min(min_level, p.level);
    max_level = std::max(max_level, p.level);
  }
  const int levels_per_copy = max_level - min_level + 1;
  const double z_span = levels_per_copy * options.floor_height;

  const auto num_partitions = static_cast<PartitionId>(venue.NumPartitions());
  VenueBuilder builder(venue.beta());

  for (int copy = 0; copy < options.copies; ++copy) {
    const std::string suffix = copy == 0 ? "" : "#" + std::to_string(copy);
    for (const Partition& p : venue.partitions()) {
      Point centroid = p.centroid;
      centroid.z += copy * z_span;
      const PartitionId id = builder.AddPartition(
          p.level + copy * levels_per_copy, p.use, centroid, p.name + suffix,
          p.cost_scale, p.zone);
      VIPTREE_CHECK(id == p.id + copy * num_partitions);
    }
  }
  for (int copy = 0; copy < options.copies; ++copy) {
    const PartitionId shift = copy * num_partitions;
    for (const Door& d : venue.doors()) {
      Point pos = d.position;
      pos.z += copy * z_span;
      if (d.is_exterior()) {
        builder.AddExteriorDoor(d.partition_a + shift, pos);
      } else {
        builder.AddDoor(d.partition_a + shift, d.partition_b + shift, pos);
      }
    }
  }

  // Collect, per zone, the corridors on the zone's top level (connection
  // points downward-facing in the upper copy, upward-facing in the lower)
  // and on its bottom level.
  std::map<int, std::vector<PartitionId>> top_corridors;
  std::map<int, std::vector<PartitionId>> bottom_corridors;
  std::map<int, std::pair<int, int>> zone_levels;  // zone -> (min, max)
  std::map<int, bool> zone_has_corridor;
  for (const Partition& p : venue.partitions()) {
    zone_has_corridor[p.zone] =
        zone_has_corridor[p.zone] || p.use == PartitionUse::kCorridor;
  }
  auto is_anchor = [&zone_has_corridor](const Partition& p) {
    // Prefer corridors; zones without any corridor use every partition.
    return p.use == PartitionUse::kCorridor || !zone_has_corridor[p.zone];
  };
  for (const Partition& p : venue.partitions()) {
    if (!is_anchor(p)) continue;
    auto it = zone_levels.find(p.zone);
    if (it == zone_levels.end()) {
      zone_levels[p.zone] = {p.level, p.level};
    } else {
      it->second.first = std::min(it->second.first, p.level);
      it->second.second = std::max(it->second.second, p.level);
    }
  }
  for (const Partition& p : venue.partitions()) {
    if (!is_anchor(p)) continue;
    const auto [lo, hi] = zone_levels[p.zone];
    if (p.level == hi) top_corridors[p.zone].push_back(p.id);
    if (p.level == lo) bottom_corridors[p.zone].push_back(p.id);
  }

  // Join copy k-1 to copy k with stairs per zone.
  for (int copy = 1; copy < options.copies; ++copy) {
    const PartitionId lower_shift = (copy - 1) * num_partitions;
    const PartitionId upper_shift = copy * num_partitions;
    for (const auto& [zone, tops] : top_corridors) {
      const std::vector<PartitionId>& bottoms = bottom_corridors[zone];
      VIPTREE_CHECK(!bottoms.empty());
      const int stairs = std::max(1, options.stairs_per_zone);
      for (int s = 0; s < stairs; ++s) {
        const PartitionId top = tops[s % tops.size()] + lower_shift;
        const PartitionId bottom = bottoms[s % bottoms.size()] + upper_shift;
        const Point top_centroid = builder.PartitionCentroid(top);
        const Point bottom_centroid = builder.PartitionCentroid(bottom);
        const Point mid{(top_centroid.x + bottom_centroid.x) / 2.0,
                        (top_centroid.y + bottom_centroid.y) / 2.0,
                        (top_centroid.z + bottom_centroid.z) / 2.0};
        const PartitionId stair = builder.AddPartition(
            zone_levels[zone].second + (copy - 1) * levels_per_copy,
            PartitionUse::kStaircase, mid,
            "replica-stair/z" + std::to_string(zone) + "/c" +
                std::to_string(copy) + "/s" + std::to_string(s),
            options.stair_cost_scale, zone);
        builder.AddDoor(stair, top,
                        Point{top_centroid.x + s, top_centroid.y,
                              top_centroid.z});
        builder.AddDoor(stair, bottom,
                        Point{bottom_centroid.x + s, bottom_centroid.y,
                              bottom_centroid.z});
      }
    }
  }

  return std::move(builder).Build();
}

}  // namespace synth
}  // namespace viptree
