#include "synth/presets.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"
#include "synth/building_generator.h"
#include "synth/campus_generator.h"
#include "synth/replicate.h"

namespace viptree {
namespace synth {

namespace {

BuildingConfig MelbourneCentralConfig(double scale) {
  // Shopping centre: 7 levels (incl. ground and lower ground), wide
  // corridors ringed by shops, escalators modelled as staircases.
  BuildingConfig cfg;
  cfg.name = "MC";
  cfg.floors = 7;
  cfg.rooms_per_floor = std::max(4, static_cast<int>(40 * scale));
  cfg.corridors_per_floor = 1;
  cfg.staircases = 2;
  cfg.lifts = 1;
  cfg.exits = 3;
  cfg.room_width = 8.0;  // shops are wider than offices
  cfg.room_depth = 10.0;
  cfg.corridor_width = 6.0;
  cfg.floor_height = 5.0;
  return cfg;
}

BuildingConfig MenziesConfig(double scale) {
  // 14-level tower with long double-loaded corridors.
  BuildingConfig cfg;
  cfg.name = "Men";
  cfg.floors = 14;
  cfg.rooms_per_floor = std::max(4, static_cast<int>(90 * scale));
  cfg.corridors_per_floor = 1;
  cfg.staircases = 2;
  cfg.lifts = 1;
  cfg.exits = 2;
  return cfg;
}

Venue MakeBase(Dataset dataset, double scale) {
  switch (dataset) {
    case Dataset::kMC:
    case Dataset::kMC2:
      return GenerateStandaloneBuilding(MelbourneCentralConfig(scale),
                                        /*seed=*/11);
    case Dataset::kMen:
    case Dataset::kMen2:
      return GenerateStandaloneBuilding(MenziesConfig(scale), /*seed=*/13);
    case Dataset::kCL:
    case Dataset::kCL2:
      return GenerateCampus(MixedCampusConfig(/*num_buildings=*/71, scale,
                                              /*seed=*/17));
    case Dataset::kCity:
      // City tier: a 160-building campus, doubled up by ReplicateVertically
      // below — ~320 connected building-copies at scale 1.0.
      return GenerateCampus(MixedCampusConfig(/*num_buildings=*/160, scale,
                                              /*seed=*/23));
  }
  VIPTREE_CHECK(false);
  __builtin_unreachable();
}

bool IsReplica(Dataset dataset) {
  return dataset == Dataset::kMC2 || dataset == Dataset::kMen2 ||
         dataset == Dataset::kCL2 || dataset == Dataset::kCity;
}

}  // namespace

const std::vector<DatasetInfo>& AllDatasets() {
  static const std::vector<DatasetInfo>* kInfos = new std::vector<DatasetInfo>{
      {Dataset::kMC, "MC", 299, 297, 8466},
      {Dataset::kMC2, "MC-2", 600, 597, 16933},
      {Dataset::kMen, "Men", 1368, 1306, 56035},
      {Dataset::kMen2, "Men-2", 2738, 2613, 112114},
      {Dataset::kCL, "CL", 41392, 41100, 6700272},
      {Dataset::kCL2, "CL-2", 83138, 82540, 13400884},
      // Extrapolated (160/71 of CL, doubled), not a published Table 2 row.
      {Dataset::kCity, "City", 373000, 372000, 60000000},
  };
  return *kInfos;
}

DatasetInfo InfoFor(Dataset dataset) {
  for (const DatasetInfo& info : AllDatasets()) {
    if (info.dataset == dataset) return info;
  }
  VIPTREE_CHECK(false);
  __builtin_unreachable();
}

Venue MakeDataset(Dataset dataset, double scale) {
  Venue base = MakeBase(dataset, scale);
  if (!IsReplica(dataset)) return base;
  ReplicateOptions options;
  options.copies = 2;
  options.stairs_per_zone = 2;
  options.floor_height =
      dataset == Dataset::kMC2 ? 5.0 : 4.0;  // MC uses taller floors
  return ReplicateVertically(base, options);
}

Dataset DatasetFromName(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "mc") return Dataset::kMC;
  if (lower == "mc-2" || lower == "mc2") return Dataset::kMC2;
  if (lower == "men") return Dataset::kMen;
  if (lower == "men-2" || lower == "men2") return Dataset::kMen2;
  if (lower == "cl") return Dataset::kCL;
  if (lower == "cl-2" || lower == "cl2") return Dataset::kCL2;
  if (lower == "city") return Dataset::kCity;
  VIPTREE_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
  __builtin_unreachable();
}

}  // namespace synth
}  // namespace viptree
