#include "synth/campus_generator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "model/venue_builder.h"

namespace viptree {
namespace synth {

Venue GenerateCampus(const CampusConfig& config) {
  VIPTREE_CHECK(!config.buildings.empty());
  VIPTREE_CHECK(config.grid_columns >= 1);

  VenueBuilder builder;
  Rng rng(config.seed);

  const int cols = config.grid_columns;
  std::vector<BuildingArtifacts> artifacts;
  artifacts.reserve(config.buildings.size());

  for (size_t b = 0; b < config.buildings.size(); ++b) {
    BuildingConfig cfg = config.buildings[b];
    const int gx = static_cast<int>(b) % cols;
    const int gy = static_cast<int>(b) / cols;
    cfg.origin = Point{gx * config.building_spacing,
                       gy * config.building_spacing, 0.0};
    if (cfg.exits <= 0) cfg.exits = 1;  // campus buildings must have an exit
    cfg.exterior_exits = false;         // exits open onto the forecourt
    artifacts.push_back(
        GenerateBuilding(cfg, static_cast<int>(b), builder, rng));
  }

  // Walkway doors between forecourts of grid neighbours (right and down).
  for (size_t b = 0; b < artifacts.size(); ++b) {
    const int gx = static_cast<int>(b) % cols;
    const Point here =
        Point{gx * config.building_spacing, (static_cast<int>(b) / cols) *
                                                config.building_spacing,
              0.0};
    const size_t right = b + 1;
    if (gx + 1 < cols && right < artifacts.size()) {
      builder.AddDoor(artifacts[b].forecourt, artifacts[right].forecourt,
                      Point{here.x + config.building_spacing / 2.0, here.y,
                            0.0});
    }
    const size_t down = b + cols;
    if (down < artifacts.size()) {
      builder.AddDoor(artifacts[b].forecourt, artifacts[down].forecourt,
                      Point{here.x, here.y + config.building_spacing / 2.0,
                            0.0});
    }
  }

  return std::move(builder).Build();
}

CampusConfig MixedCampusConfig(int num_buildings, double room_scale,
                               uint64_t seed) {
  VIPTREE_CHECK(num_buildings >= 1);
  CampusConfig campus;
  campus.seed = seed;
  campus.grid_columns = std::max(1, static_cast<int>(num_buildings > 9
                                                         ? 8
                                                         : num_buildings));
  auto scaled = [room_scale](int rooms) {
    return std::max(4, static_cast<int>(rooms * room_scale));
  };
  for (int b = 0; b < num_buildings; ++b) {
    BuildingConfig cfg;
    cfg.name = "bldg" + std::to_string(b);
    switch (b % 3) {
      case 0:  // small teaching building
        cfg.floors = 3;
        cfg.rooms_per_floor = scaled(60);
        cfg.corridors_per_floor = 2;
        cfg.staircases = 2;
        break;
      case 1:  // mid-rise office building
        cfg.floors = 6;
        cfg.rooms_per_floor = scaled(90);
        cfg.corridors_per_floor = 2;
        cfg.staircases = 2;
        cfg.lifts = 1;
        break;
      default:  // large laboratory block with big hallway cliques
        cfg.floors = 8;
        cfg.rooms_per_floor = scaled(130);
        cfg.corridors_per_floor = 1;
        cfg.staircases = 3;
        cfg.lifts = 1;
        break;
    }
    cfg.exits = 2;
    campus.buildings.push_back(std::move(cfg));
  }
  return campus;
}

}  // namespace synth
}  // namespace viptree
