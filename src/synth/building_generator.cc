#include "synth/building_generator.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace viptree {
namespace synth {

namespace {

// Identifies a generated room so the generator can add inter-room doors.
struct RoomSlot {
  PartitionId id = kInvalidId;
  int segment = 0;
  int side = 0;  // 0 = south, 1 = north
  int index = 0;
  Point door_anchor;  // where the corridor wall is
};

}  // namespace

BuildingArtifacts GenerateBuilding(const BuildingConfig& config, int zone,
                                   VenueBuilder& builder, Rng& rng) {
  VIPTREE_CHECK(config.floors >= 1);
  VIPTREE_CHECK(config.corridors_per_floor >= 1);
  VIPTREE_CHECK(config.rooms_per_floor >= 0);

  BuildingArtifacts out;
  out.zone = zone;

  const int segments = config.corridors_per_floor;
  const int rooms_per_segment =
      (config.rooms_per_floor + segments - 1) / segments;
  const int rooms_per_side = (rooms_per_segment + 1) / 2;
  const double seg_len =
      std::max(1, rooms_per_side) * config.room_width + config.room_width;
  const double ox = config.origin.x;
  const double oy = config.origin.y;
  const double oz = config.origin.z;

  // corridor_ids[floor][segment]
  std::vector<std::vector<PartitionId>> corridor_ids(
      config.floors, std::vector<PartitionId>(segments, kInvalidId));

  for (int f = 0; f < config.floors; ++f) {
    const double z = oz + f * config.floor_height;
    std::vector<RoomSlot> rooms;
    rooms.reserve(rooms_per_segment * segments);

    for (int s = 0; s < segments; ++s) {
      const double seg_x0 = ox + s * seg_len;
      const Point corridor_center{seg_x0 + seg_len / 2.0, oy, z};
      corridor_ids[f][s] = builder.AddPartition(
          f, PartitionUse::kCorridor, corridor_center,
          config.name + "/L" + std::to_string(f) + "/corridor" +
              std::to_string(s),
          1.0, zone);
      out.corridors.push_back(corridor_ids[f][s]);
      if (f == 0) out.ground_corridors.push_back(corridor_ids[f][s]);

      int remaining = std::min(rooms_per_segment,
                               config.rooms_per_floor - s * rooms_per_segment);
      for (int r = 0; r < remaining; ++r) {
        const int side = r % 2;
        const int idx = r / 2;
        const double rx = seg_x0 + (idx + 0.5) * config.room_width;
        const double wall_y =
            side == 0 ? oy - config.corridor_width / 2.0
                      : oy + config.corridor_width / 2.0;
        const double room_y =
            side == 0 ? wall_y - config.room_depth / 2.0
                      : wall_y + config.room_depth / 2.0;
        const PartitionId room = builder.AddPartition(
            f, PartitionUse::kRoom, Point{rx, room_y, z},
            config.name + "/L" + std::to_string(f) + "/room" +
                std::to_string(s * rooms_per_segment + r),
            1.0, zone);
        const Point door_pos{rx, wall_y, z};
        builder.AddDoor(room, corridor_ids[f][s], door_pos);
        if (rng.Chance(config.extra_corridor_door_prob)) {
          builder.AddDoor(room, corridor_ids[f][s],
                          Point{rx + config.room_width * 0.35, wall_y, z});
        }
        rooms.push_back(RoomSlot{room, s, side, idx, door_pos});
      }
    }

    // Doors between consecutive corridor segments.
    for (int s = 0; s + 1 < segments; ++s) {
      const double boundary_x = ox + (s + 1) * seg_len;
      builder.AddDoor(corridor_ids[f][s], corridor_ids[f][s + 1],
                      Point{boundary_x, oy, z});
    }

    // Occasional doors between adjacent rooms on the same side (gives rooms
    // with several doors, exercising superior/inferior door logic).
    std::sort(rooms.begin(), rooms.end(),
              [](const RoomSlot& a, const RoomSlot& b) {
                return std::tie(a.segment, a.side, a.index) <
                       std::tie(b.segment, b.side, b.index);
              });
    for (size_t i = 0; i + 1 < rooms.size(); ++i) {
      const RoomSlot& a = rooms[i];
      const RoomSlot& b = rooms[i + 1];
      if (a.segment == b.segment && a.side == b.side &&
          b.index == a.index + 1 && rng.Chance(config.inter_room_door_prob)) {
        const double wall_x = (a.door_anchor.x + b.door_anchor.x) / 2.0;
        const double mid_y = a.side == 0
                                 ? oy - config.corridor_width / 2.0 -
                                       config.room_depth / 2.0
                                 : oy + config.corridor_width / 2.0 +
                                       config.room_depth / 2.0;
        builder.AddDoor(a.id, b.id, Point{wall_x, mid_y, z});
      }
    }
  }

  // Staircases between consecutive floors, spread over corridor segments.
  for (int f = 0; f + 1 < config.floors; ++f) {
    const double z_lo = oz + f * config.floor_height;
    const double z_hi = z_lo + config.floor_height;
    for (int st = 0; st < config.staircases; ++st) {
      const int seg = st % segments;
      const double sx = ox + seg * seg_len + seg_len * (0.15 + 0.7 * st /
                            std::max(1, config.staircases));
      const PartitionId stair = builder.AddPartition(
          f, PartitionUse::kStaircase,
          Point{sx, oy + config.corridor_width, (z_lo + z_hi) / 2.0},
          config.name + "/stair" + std::to_string(st) + "/L" +
              std::to_string(f),
          config.stair_cost_scale, zone);
      builder.AddDoor(stair, corridor_ids[f][seg], Point{sx, oy, z_lo});
      builder.AddDoor(stair, corridor_ids[f + 1][seg], Point{sx, oy, z_hi});
    }
    // Lift shafts: one general partition per consecutive floor pair (§2).
    for (int lf = 0; lf < config.lifts; ++lf) {
      const int seg = (lf + 1) % segments;
      const double lx = ox + seg * seg_len + seg_len * 0.5 + (lf + 1) * 1.5;
      const PartitionId lift = builder.AddPartition(
          f, PartitionUse::kLift,
          Point{lx, oy - config.corridor_width, (z_lo + z_hi) / 2.0},
          config.name + "/lift" + std::to_string(lf) + "/L" +
              std::to_string(f),
          config.lift_cost_scale, zone);
      builder.AddDoor(lift, corridor_ids[f][seg], Point{lx, oy, z_lo});
      builder.AddDoor(lift, corridor_ids[f + 1][seg], Point{lx, oy, z_hi});
    }
  }

  // Exits: either exterior doors out of the venue, or doors onto an outdoor
  // forecourt partition (campus mode).
  if (config.exits > 0) {
    if (!config.exterior_exits) {
      out.forecourt = builder.AddPartition(
          0, PartitionUse::kOutdoor,
          Point{ox + segments * seg_len / 2.0, oy - 3.0 * config.room_depth,
                oz},
          config.name + "/forecourt", 1.0, zone);
    }
    for (int e = 0; e < config.exits; ++e) {
      const PartitionId corridor =
          out.ground_corridors[e % out.ground_corridors.size()];
      const double ex =
          ox + (e % segments) * seg_len + seg_len * (e + 1) /
              (config.exits + 1.0);
      const Point door_pos{ex, oy - config.corridor_width / 2.0, oz};
      if (config.exterior_exits) {
        builder.AddExteriorDoor(corridor, door_pos);
      } else {
        builder.AddDoor(corridor, out.forecourt, door_pos);
      }
    }
  }

  return out;
}

Venue GenerateStandaloneBuilding(const BuildingConfig& config, uint64_t seed) {
  VenueBuilder builder;
  Rng rng(seed);
  GenerateBuilding(config, /*zone=*/0, builder, rng);
  return std::move(builder).Build();
}

}  // namespace synth
}  // namespace viptree
