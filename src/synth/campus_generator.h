// Multi-building campus generator (Clayton-campus analogue).
//
// Buildings are placed on a grid; each building's outdoor forecourt
// partition is connected by walkway doors to the forecourts of its grid
// neighbours, which reproduces the paper's Clayton construction where "the
// D2D graph also contains edges between the entry/exit doors of different
// buildings" (§4.1) while keeping the closed-world invariant that every
// door connects two partitions.

#ifndef VIPTREE_SYNTH_CAMPUS_GENERATOR_H_
#define VIPTREE_SYNTH_CAMPUS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "model/venue.h"
#include "synth/building_generator.h"

namespace viptree {
namespace synth {

struct CampusConfig {
  // One entry per building; origins are overwritten by the grid placer.
  std::vector<BuildingConfig> buildings;
  int grid_columns = 8;
  double building_spacing = 120.0;  // metres between building origins
  uint64_t seed = 7;
};

// Builds a campus venue. Building b gets zone id b.
Venue GenerateCampus(const CampusConfig& config);

// A convenience mixed-size campus: `num_buildings` buildings whose floor /
// room counts cycle through small, medium and large templates, scaled by
// `room_scale` (1.0 reproduces paper-magnitude buildings; smaller values
// make laptop-friendly venues with the same shape).
CampusConfig MixedCampusConfig(int num_buildings, double room_scale,
                               uint64_t seed);

}  // namespace synth
}  // namespace viptree

#endif  // VIPTREE_SYNTH_CAMPUS_GENERATOR_H_
