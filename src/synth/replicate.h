// Venue replication, reproducing the paper's MC-2 / Men-2 / CL-2
// construction (§4.1): "a replica ... is placed on top of the original
// building. The replicas are connected with the original buildings by
// stairs."
//
// Replication is zone-aware: every building (zone) in the lower copy is
// joined to its replica by `stairs_per_zone` staircases between its
// top-floor corridors and the replica's ground-floor corridors.

#ifndef VIPTREE_SYNTH_REPLICATE_H_
#define VIPTREE_SYNTH_REPLICATE_H_

#include "model/venue.h"

namespace viptree {
namespace synth {

struct ReplicateOptions {
  int copies = 2;           // total number of copies (2 = the "-2" venues)
  int stairs_per_zone = 2;  // staircases joining consecutive copies per zone
  double floor_height = 4.0;
  double stair_cost_scale = 1.8;
};

// Returns a venue consisting of `options.copies` vertically stacked copies
// of `venue`, joined by stairs. Door/partition ids of copy 0 are identical
// to the input's ids.
Venue ReplicateVertically(const Venue& venue, const ReplicateOptions& options);

}  // namespace synth
}  // namespace viptree

#endif  // VIPTREE_SYNTH_REPLICATE_H_
