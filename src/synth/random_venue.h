// Seeded random venue generation: the shape parameters (floors, rooms,
// corridors, verticals, door probabilities; standalone building vs
// multi-building campus) are all drawn from the seed, so a sweep over seeds
// covers the irregular topologies where indoor indexes diverge. Shared by
// the differential/snapshot test sweeps and the viptree_build CLI tool;
// venues stay small enough that full-Dijkstra ground truth is cheap.

#ifndef VIPTREE_SYNTH_RANDOM_VENUE_H_
#define VIPTREE_SYNTH_RANDOM_VENUE_H_

#include <cstdint>

#include "model/venue.h"

namespace viptree {
namespace synth {

// Deterministic for a given seed.
Venue RandomVenue(uint64_t seed);

}  // namespace synth
}  // namespace viptree

#endif  // VIPTREE_SYNTH_RANDOM_VENUE_H_
