// Parametric multi-storey building generator.
//
// The paper evaluates on floor plans of real venues (Melbourne Central,
// Menzies building, Clayton campus) that are not publicly available; this
// generator produces buildings with the same structural signature the
// IP-/VIP-Tree design exploits (§1.3): long double-loaded corridors whose
// door sets form large cliques in the D2D graph, rooms hanging off them
// (many no-through partitions), and a small number of staircases / lift
// segments acting as the only access doors between floors.
//
// Per-floor layout (top view), corridors_per_floor = 2:
//
//   [room][room][room][room]   [room][room][room][room]
//   ===== corridor seg 0 =====x===== corridor seg 1 =====   <- x: seg door
//   [room][room][room][room]   [room][room][room][room]
//
// Staircase and lift partitions connect corridor segments of consecutive
// floors; an optional outdoor "forecourt" partition provides building exits
// (used by campus assembly and the evacuation example).

#ifndef VIPTREE_SYNTH_BUILDING_GENERATOR_H_
#define VIPTREE_SYNTH_BUILDING_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "model/venue.h"
#include "model/venue_builder.h"

namespace viptree {
namespace synth {

struct BuildingConfig {
  std::string name = "building";
  int floors = 3;
  // Rooms per floor, split evenly across corridor segments (two sides each).
  int rooms_per_floor = 24;
  int corridors_per_floor = 1;
  // Staircases and lift shafts connecting consecutive floors.
  int staircases = 2;
  int lifts = 0;
  // Number of exit doors; 0 means the building is closed.
  int exits = 2;
  // When true, exits are exterior doors leading out of the venue (they
  // become access doors of the tree root, like d1/d7/d20 in the paper's
  // Fig. 1). When false, exits open onto an outdoor forecourt partition,
  // which campus assembly connects to neighbouring forecourts.
  bool exterior_exits = true;

  double room_width = 5.0;
  double room_depth = 6.0;
  double corridor_width = 3.0;
  double floor_height = 4.0;
  // Walking a staircase is longer than the straight-line distance between
  // its two doors; lifts can be cheaper (travel-time semantics, §2).
  double stair_cost_scale = 1.8;
  double lift_cost_scale = 1.0;

  // Probability that a room gets a second door onto its corridor.
  double extra_corridor_door_prob = 0.08;
  // Probability of a door between two adjacent rooms on the same side.
  double inter_room_door_prob = 0.10;

  // Placement offset of the building footprint (campus grids).
  Point origin;
};

// What campus assembly and replication need to know about a generated
// building.
struct BuildingArtifacts {
  int zone = 0;
  std::vector<PartitionId> corridors;         // all corridor segments
  std::vector<PartitionId> ground_corridors;  // level-0 segments
  PartitionId forecourt = kInvalidId;         // outdoor partition, if exits>0
};

// Emits one building into `builder`; all its partitions get zone `zone`.
BuildingArtifacts GenerateBuilding(const BuildingConfig& config, int zone,
                                   VenueBuilder& builder, Rng& rng);

// Convenience wrapper: a standalone venue containing exactly one building
// (with its forecourt when config.exits > 0).
Venue GenerateStandaloneBuilding(const BuildingConfig& config, uint64_t seed);

}  // namespace synth
}  // namespace viptree

#endif  // VIPTREE_SYNTH_BUILDING_GENERATOR_H_
