// net::ShardServer: one serving process of the sharded deployment. A TCP
// listener whose poll() event loop decodes wire frames (net/wire.h) into
// engine::Service submissions and streams each response back over the
// connection it arrived on — the socket face of the Submit -> queue ->
// worker -> callback lifecycle engine/service.h documents.
//
// Threading model. One event-loop thread owns every socket: it accepts,
// reads, decodes, submits, and writes. Service worker threads never touch
// a socket — a completion callback only encodes the response frame,
// appends it to the connection's locked outbox, and wakes the loop through
// a self-pipe, so all socket syscalls stay on the loop thread and a slow
// peer can never block a query worker.
//
// Error containment (the network tier's core promise): a malformed,
// truncated, or bit-flipped frame — untrusted input — fails *that
// connection* with a kError frame and a close; the process, the Service,
// and every other connection keep serving. Request-level problems the
// engine can name (unknown venue, invalid partition id) come back as
// normal kResponse frames with a non-kOk status, exactly like the
// in-process API.
//
// Drain lifecycle (SIGTERM path): RequestDrain() is async-signal-safe
// (atomic flag + self-pipe write). The loop then stops accepting, stops
// reading new frames, runs Service::Drain() — every accepted request
// completes and its response lands in an outbox — flushes every outbox,
// closes, and exits; Wait() returns once the loop is done. Stop() is the
// impatient sibling: queued requests complete kCancelled and the loop
// exits without flushing stragglers.

#ifndef VIPTREE_NET_SHARD_SERVER_H_
#define VIPTREE_NET_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/service.h"
#include "net/socket.h"
#include "net/wire.h"

namespace viptree {
namespace net {

struct ShardServerOptions {
  // IPv4 literal to bind. Loopback by default: exposing a shard beyond the
  // host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  // 0 picks an ephemeral port; port() reports the actual one (what the
  // in-process tests use to avoid fixed-port collisions).
  uint16_t port = 0;
  int backlog = 64;
  // Connections beyond this are accepted and immediately closed, bounding
  // the poll set and per-connection buffer memory.
  size_t max_connections = 256;
  // Forwarded to the owned engine::Service (workers, queue bound, caching,
  // coalescing — everything downstream composes with the wire for free).
  engine::ServiceOptions service;
};

class ShardServer {
 public:
  // Single-venue shard over a shared bundle (requests leave venue_id
  // empty), or a multi-venue shard owning a registry — the same two
  // shapes as engine::Service.
  ShardServer(std::shared_ptr<const engine::VenueBundle> bundle,
              ShardServerOptions options = {});
  ShardServer(engine::VenueRegistry registry, ShardServerOptions options = {});
  ~ShardServer();  // Stop()

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  // Binds, starts the Service workers, and spawns the event loop. Returns
  // a Status instead of aborting: a taken port is an operational error.
  io::Status Start();

  // The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  // Async-signal-safe graceful-drain trigger; see the drain lifecycle
  // above. Safe to call from a SIGTERM handler or any thread.
  void RequestDrain();

  // Blocks until the event loop exits (i.e. a drain or stop completed).
  void Wait();

  // Immediate shutdown: queued requests finish kCancelled, sockets close,
  // the loop joins. Idempotent; the destructor calls it.
  void Stop();

  // The owned service's statistics (the per-shard half of the fleet-wide
  // aggregation the router performs).
  engine::ServiceStats ServiceStatsNow() const { return service_->Stats(); }

  // Observability counters for tests and logs.
  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  // One accepted connection. Owned by the loop thread except `mu`-guarded
  // outbox state, which response callbacks append to from worker threads.
  struct Connection {
    Socket sock;
    FrameDecoder decoder;

    std::mutex mu;
    std::vector<uint8_t> outbox;  // encoded frames awaiting write
    size_t out_pos = 0;           // flushed prefix of outbox
    bool closed = false;          // loop closed the socket; appends drop
    // After a protocol error: flush the kError frame, then close (no
    // further reads).
    bool poisoned = false;
  };

  void Loop();
  void AcceptAll();
  // Reads, decodes, and dispatches every complete frame; returns false if
  // the connection should be closed (EOF, error, poison without output).
  bool ServiceReadable(const std::shared_ptr<Connection>& conn);
  bool FlushWrites(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void SendOnLoop(const std::shared_ptr<Connection>& conn,
                  std::vector<uint8_t> bytes);
  void CloseConnection(int fd);

  std::unique_ptr<engine::Service> service_;
  ShardServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;
  WakePipe wake_;
  std::thread loop_thread_;
  bool started_ = false;
  bool joined_ = false;
  std::mutex lifecycle_mu_;  // serializes Start/Stop/Wait bookkeeping

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};

  // Loop-thread-owned; callbacks never touch the map (they hold their own
  // shared_ptr<Connection>).
  std::map<int, std::shared_ptr<Connection>> connections_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace net
}  // namespace viptree

#endif  // VIPTREE_NET_SHARD_SERVER_H_
