// net::Client: a small blocking client over one wire-protocol connection,
// used by tests, benches, the `viptree_query --connect` CLI mode, and CI
// smokes. Send/Receive are decoupled so callers can pipeline a window of
// requests (responses come back in submission order only on a one-worker
// shard — correlate by tag, exactly like the in-process streaming API).
//
// Not thread-safe: one Client per thread. For a fleet of connections, hold
// a Client per endpoint (what bench_net_throughput's open-loop driver and
// the router's pools do — the router has its own non-blocking machinery).

#ifndef VIPTREE_NET_CLIENT_H_
#define VIPTREE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/socket.h"
#include "net/wire.h"

namespace viptree {
namespace net {

class Client {
 public:
  // Connects (blocking, bounded by timeout_ms; <= 0 = OS default) or
  // returns nullptr with a human-readable *error.
  static std::unique_ptr<Client> Connect(const std::string& endpoint,
                                         std::string* error,
                                         double timeout_ms = 5000.0);

  const std::string& endpoint() const { return endpoint_; }

  // Fire-and-forget send of one request frame (the pipelining half).
  io::Status Send(const WireRequest& request, uint64_t tag);

  // Blocks until the next complete frame arrives. Only kResponse frames
  // are expected here; a kError frame (the server poisoned this
  // connection) or an unexpected type is reported as a Status error.
  // `timeout_ms` bounds the wait; <= 0 waits forever.
  io::Status Receive(WireResponse* response, uint64_t* tag,
                     double timeout_ms = 0.0);

  // One full round trip (tag managed internally).
  io::Status Call(const WireRequest& request, WireResponse* response);

  // Health / stats round trips (the probe frames the router also uses).
  io::Status Health(WireHealth* health, double timeout_ms = 5000.0);
  io::Status Stats(WireStats* stats, double timeout_ms = 5000.0);

 private:
  Client(Socket sock, std::string endpoint)
      : sock_(std::move(sock)), endpoint_(std::move(endpoint)) {}

  // Sends raw bytes, looping over partial writes.
  io::Status SendBytes(const std::vector<uint8_t>& bytes);
  // Blocks for the next frame of any type.
  io::Status NextFrame(Frame* frame, double timeout_ms);

  Socket sock_;
  std::string endpoint_;
  FrameDecoder decoder_;
  uint64_t next_tag_ = 1;
};

}  // namespace net
}  // namespace viptree

#endif  // VIPTREE_NET_CLIENT_H_
