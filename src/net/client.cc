#include "net/client.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <cstring>
#include <utility>

namespace viptree {
namespace net {

std::unique_ptr<Client> Client::Connect(const std::string& endpoint,
                                        std::string* error,
                                        double timeout_ms) {
  Socket sock;
  if (io::Status status = ConnectTcp(endpoint, timeout_ms, &sock);
      !status.ok()) {
    if (error != nullptr) *error = status.error;
    return nullptr;
  }
  return std::unique_ptr<Client>(new Client(std::move(sock), endpoint));
}

io::Status Client::SendBytes(const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(sock_.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io::Status::Error(std::string("send to ") + endpoint_ + ": " +
                               std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return io::Status::Ok();
}

io::Status Client::Send(const WireRequest& request, uint64_t tag) {
  return SendBytes(EncodeRequestFrame(request, tag));
}

io::Status Client::NextFrame(Frame* frame, double timeout_ms) {
  while (true) {
    if (std::optional<Frame> next = decoder_.Next()) {
      *frame = std::move(*next);
      return io::Status::Ok();
    }
    if (decoder_.failed()) {
      return io::Status::Error("wire decode from " + endpoint_ + ": " +
                               decoder_.error());
    }
    if (timeout_ms > 0.0) {
      pollfd pfd{sock_.fd(), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (ready == 0) {
        return io::Status::Error("timed out waiting for a frame from " +
                                 endpoint_);
      }
      if (ready < 0 && errno != EINTR) {
        return io::Status::Error(std::string("poll ") + endpoint_ + ": " +
                                 std::strerror(errno));
      }
    }
    uint8_t chunk[16 * 1024];
    const ssize_t n = ::recv(sock_.fd(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      return io::Status::Error("connection to " + endpoint_ +
                               " closed by peer");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return io::Status::Error(std::string("recv from ") + endpoint_ + ": " +
                               std::strerror(errno));
    }
    decoder_.Feed(chunk, static_cast<size_t>(n));
  }
}

io::Status Client::Receive(WireResponse* response, uint64_t* tag,
                           double timeout_ms) {
  Frame frame;
  if (io::Status status = NextFrame(&frame, timeout_ms); !status.ok()) {
    return status;
  }
  if (frame.type == FrameType::kError) {
    io::Reader reader(
        Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
    const std::string message = reader.String();
    return io::Status::Error("server reported a protocol error: " +
                             (reader.ok() ? message
                                          : std::string("(unreadable)")));
  }
  if (frame.type != FrameType::kResponse) {
    return io::Status::Error(std::string("unexpected ") +
                             FrameTypeName(frame.type) +
                             " frame (wanted a response)");
  }
  io::Reader reader(
      Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
  std::string error;
  if (!DecodeResponsePayload(&reader, response, &error)) {
    return io::Status::Error("response decode: " + error);
  }
  if (tag != nullptr) *tag = frame.tag;
  return io::Status::Ok();
}

io::Status Client::Call(const WireRequest& request, WireResponse* response) {
  const uint64_t tag = next_tag_++;
  if (io::Status status = Send(request, tag); !status.ok()) return status;
  uint64_t reply_tag = 0;
  if (io::Status status = Receive(response, &reply_tag); !status.ok()) {
    return status;
  }
  if (reply_tag != tag) {
    return io::Status::Error("response tag mismatch (pipelining through "
                             "Call is not supported; use Send/Receive)");
  }
  return io::Status::Ok();
}

io::Status Client::Health(WireHealth* health, double timeout_ms) {
  const uint64_t tag = next_tag_++;
  if (io::Status status =
          SendBytes(EncodeEmptyFrame(FrameType::kHealthProbe, tag));
      !status.ok()) {
    return status;
  }
  Frame frame;
  if (io::Status status = NextFrame(&frame, timeout_ms); !status.ok()) {
    return status;
  }
  if (frame.type != FrameType::kHealthReply) {
    return io::Status::Error(std::string("unexpected ") +
                             FrameTypeName(frame.type) +
                             " frame (wanted a health reply)");
  }
  io::Reader reader(
      Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
  std::string error;
  if (!DecodeHealthPayload(&reader, health, &error)) {
    return io::Status::Error("health decode: " + error);
  }
  return io::Status::Ok();
}

io::Status Client::Stats(WireStats* stats, double timeout_ms) {
  const uint64_t tag = next_tag_++;
  if (io::Status status =
          SendBytes(EncodeEmptyFrame(FrameType::kStatsProbe, tag));
      !status.ok()) {
    return status;
  }
  Frame frame;
  if (io::Status status = NextFrame(&frame, timeout_ms); !status.ok()) {
    return status;
  }
  if (frame.type != FrameType::kStatsReply) {
    return io::Status::Error(std::string("unexpected ") +
                             FrameTypeName(frame.type) +
                             " frame (wanted a stats reply)");
  }
  io::Reader reader(
      Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
  std::string error;
  if (!DecodeStatsPayload(&reader, stats, &error)) {
    return io::Status::Error("stats decode: " + error);
  }
  return io::Status::Ok();
}

}  // namespace net
}  // namespace viptree
