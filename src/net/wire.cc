#include "net/wire.h"

#include <cstring>
#include <utility>

#include "common/check.h"

namespace viptree {
namespace net {

namespace {

// Shared by every Decode*: fold the reader's sticky error (or a validation
// message) into the caller's error slot.
bool FinishDecode(const io::Reader& reader, std::string* error) {
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    return false;
  }
  return true;
}

bool DecodeFail(std::string message, std::string* error) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

void EncodePoint(const IndoorPoint& point, io::Writer* writer) {
  writer->I32(point.partition);
  writer->F64(point.position.x);
  writer->F64(point.position.y);
  writer->F64(point.position.z);
}

void DecodePoint(io::Reader* reader, IndoorPoint* point) {
  point->partition = reader->I32();
  point->position.x = reader->F64();
  point->position.y = reader->F64();
  point->position.z = reader->F64();
}

void EncodeKeywords(const std::vector<std::string>& keywords,
                    io::Writer* writer) {
  writer->U64(keywords.size());
  for (const std::string& kw : keywords) writer->String(kw);
}

bool DecodeKeywords(io::Reader* reader, std::vector<std::string>* keywords,
                    std::string* error) {
  // Each keyword costs at least its 8-byte length prefix.
  const uint64_t count = reader->ArraySize(sizeof(uint64_t), "keyword list");
  keywords->clear();
  keywords->reserve(count);
  for (uint64_t i = 0; reader->ok() && i < count; ++i) {
    keywords->push_back(reader->String());
  }
  return FinishDecode(*reader, error);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kRequest:
      return "request";
    case FrameType::kResponse:
      return "response";
    case FrameType::kHealthProbe:
      return "health-probe";
    case FrameType::kHealthReply:
      return "health-reply";
    case FrameType::kStatsProbe:
      return "stats-probe";
    case FrameType::kStatsReply:
      return "stats-reply";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

engine::Request WireRequest::ToRequest() const {
  engine::Request request;
  request.kind = kind;
  request.venue_id = venue_id;
  request.query = query;
  request.delta = delta;
  if (deadline_ms > 0.0) {
    request.deadline = engine::DeadlineAfterMillis(deadline_ms);
  }
  return request;
}

WireRequest WireRequest::FromRequest(const engine::Request& request,
                                     double deadline_ms) {
  WireRequest wire;
  wire.kind = request.kind;
  wire.venue_id = request.venue_id;
  wire.query = request.query;
  wire.delta = request.delta;
  wire.deadline_ms = deadline_ms;
  return wire;
}

WireResponse WireResponse::FromResponse(const engine::Response& response) {
  WireResponse wire;
  wire.status = response.status;
  wire.kind = response.kind;
  wire.venue_id = response.venue_id;
  wire.result = response.result;
  wire.error = response.error;
  wire.queue_micros = response.queue_micros;
  return wire;
}

WireStats WireStats::FromServiceStats(const engine::ServiceStats& stats) {
  WireStats wire;
  wire.submitted = stats.submitted;
  wire.completed = stats.num_queries;
  wire.updates = stats.updates;
  wire.rejected = stats.rejected;
  wire.expired = stats.expired;
  wire.cancelled = stats.cancelled;
  wire.failed = stats.failed;
  wire.queue_depth = stats.queue_depth;
  wire.visited_nodes = stats.visited_nodes;
  wire.latency_p50 = stats.latency_micros.p50;
  wire.latency_p99 = stats.latency_micros.p99;
  wire.queue_p50 = stats.queue_micros.p50;
  wire.queue_p99 = stats.queue_micros.p99;
  return wire;
}

WireStats& WireStats::operator+=(const WireStats& other) {
  submitted += other.submitted;
  completed += other.completed;
  updates += other.updates;
  rejected += other.rejected;
  expired += other.expired;
  cancelled += other.cancelled;
  failed += other.failed;
  queue_depth += other.queue_depth;
  visited_nodes += other.visited_nodes;
  latency_p50 = latency_p50 > other.latency_p50 ? latency_p50
                                                : other.latency_p50;
  latency_p99 = latency_p99 > other.latency_p99 ? latency_p99
                                                : other.latency_p99;
  queue_p50 = queue_p50 > other.queue_p50 ? queue_p50 : other.queue_p50;
  queue_p99 = queue_p99 > other.queue_p99 ? queue_p99 : other.queue_p99;
  return *this;
}

void EncodeRequestPayload(const WireRequest& request, io::Writer* writer) {
  writer->U8(static_cast<uint8_t>(request.kind));
  writer->String(request.venue_id);
  writer->F64(request.deadline_ms);
  if (request.kind == engine::RequestKind::kQuery) {
    const engine::Query& q = request.query;
    writer->U8(static_cast<uint8_t>(q.type));
    EncodePoint(q.source, writer);
    EncodePoint(q.target, writer);
    writer->U64(q.k);
    writer->F64(q.radius);
    EncodeKeywords(q.keywords, writer);
    return;
  }
  const ObjectDelta& delta = request.delta;
  writer->U64(delta.moves.size());
  for (const ObjectDelta::Move& move : delta.moves) {
    writer->I32(move.id);
    EncodePoint(move.to, writer);
  }
  writer->U64(delta.adds.size());
  for (const ObjectDelta::Add& add : delta.adds) {
    EncodePoint(add.at, writer);
    EncodeKeywords(add.keywords, writer);
  }
  writer->U64(delta.removes.size());
  for (const ObjectId id : delta.removes) writer->I32(id);
}

bool DecodeRequestPayload(io::Reader* reader, WireRequest* request,
                          std::string* error) {
  *request = WireRequest{};
  const uint8_t kind = reader->U8();
  request->venue_id = reader->String();
  request->deadline_ms = reader->F64();
  if (!reader->ok()) return FinishDecode(*reader, error);
  if (kind > static_cast<uint8_t>(engine::RequestKind::kUpdateObjects)) {
    return DecodeFail(
        "request frame: unknown request kind " + std::to_string(kind), error);
  }
  request->kind = static_cast<engine::RequestKind>(kind);

  if (request->kind == engine::RequestKind::kQuery) {
    engine::Query& q = request->query;
    const uint8_t type = reader->U8();
    if (reader->ok() &&
        type > static_cast<uint8_t>(engine::QueryType::kBooleanKnn)) {
      return DecodeFail(
          "request frame: unknown query type " + std::to_string(type), error);
    }
    q.type = static_cast<engine::QueryType>(type);
    DecodePoint(reader, &q.source);
    DecodePoint(reader, &q.target);
    q.k = reader->U64();
    q.radius = reader->F64();
    return DecodeKeywords(reader, &q.keywords, error);
  }

  ObjectDelta& delta = request->delta;
  const uint64_t num_moves =
      reader->ArraySize(sizeof(int32_t) + 4 * sizeof(double), "delta moves");
  delta.moves.resize(reader->ok() ? num_moves : 0);
  for (ObjectDelta::Move& move : delta.moves) {
    move.id = reader->I32();
    DecodePoint(reader, &move.to);
  }
  const uint64_t num_adds =
      reader->ArraySize(4 * sizeof(double) + sizeof(uint64_t), "delta adds");
  delta.adds.resize(reader->ok() ? num_adds : 0);
  for (ObjectDelta::Add& add : delta.adds) {
    DecodePoint(reader, &add.at);
    if (!DecodeKeywords(reader, &add.keywords, error)) return false;
  }
  const uint64_t num_removes =
      reader->ArraySize(sizeof(int32_t), "delta removes");
  delta.removes.resize(reader->ok() ? num_removes : 0);
  if (!delta.removes.empty()) {
    reader->I32Array(delta.removes.data(), delta.removes.size());
  }
  return FinishDecode(*reader, error);
}

void EncodeResponsePayload(const WireResponse& response, io::Writer* writer) {
  writer->U8(static_cast<uint8_t>(response.status));
  writer->U8(static_cast<uint8_t>(response.kind));
  writer->String(response.venue_id);
  writer->String(response.error);
  writer->F64(response.queue_micros);
  const engine::Result& r = response.result;
  writer->U8(static_cast<uint8_t>(r.type));
  writer->F64(r.distance);
  writer->U64(r.doors.size());
  writer->I32Array(Span<const DoorId>(r.doors.data(), r.doors.size()));
  writer->U64(r.objects.size());
  for (const ObjectResult& object : r.objects) {
    writer->I32(object.object);
    writer->F64(object.distance);
  }
  writer->F64(r.latency_micros);
  writer->U64(r.visited_nodes);
}

bool DecodeResponsePayload(io::Reader* reader, WireResponse* response,
                           std::string* error) {
  *response = WireResponse{};
  const uint8_t status = reader->U8();
  const uint8_t kind = reader->U8();
  response->venue_id = reader->String();
  response->error = reader->String();
  response->queue_micros = reader->F64();
  if (!reader->ok()) return FinishDecode(*reader, error);
  if (status > static_cast<uint8_t>(engine::RequestStatus::kCancelled)) {
    return DecodeFail(
        "response frame: unknown status " + std::to_string(status), error);
  }
  if (kind > static_cast<uint8_t>(engine::RequestKind::kUpdateObjects)) {
    return DecodeFail(
        "response frame: unknown request kind " + std::to_string(kind), error);
  }
  response->status = static_cast<engine::RequestStatus>(status);
  response->kind = static_cast<engine::RequestKind>(kind);

  engine::Result& r = response->result;
  const uint8_t type = reader->U8();
  if (reader->ok() &&
      type > static_cast<uint8_t>(engine::QueryType::kBooleanKnn)) {
    return DecodeFail(
        "response frame: unknown result type " + std::to_string(type), error);
  }
  r.type = static_cast<engine::QueryType>(type);
  r.distance = reader->F64();
  const uint64_t num_doors = reader->ArraySize(sizeof(int32_t), "door list");
  r.doors.resize(reader->ok() ? num_doors : 0);
  if (!r.doors.empty()) reader->I32Array(r.doors.data(), r.doors.size());
  const uint64_t num_objects =
      reader->ArraySize(sizeof(int32_t) + sizeof(double), "object list");
  r.objects.resize(reader->ok() ? num_objects : 0);
  for (ObjectResult& object : r.objects) {
    object.object = reader->I32();
    object.distance = reader->F64();
  }
  r.latency_micros = reader->F64();
  r.visited_nodes = reader->U64();
  return FinishDecode(*reader, error);
}

void EncodeHealthPayload(const WireHealth& health, io::Writer* writer) {
  writer->U8(health.ready);
  writer->U64(health.queue_depth);
}

bool DecodeHealthPayload(io::Reader* reader, WireHealth* health,
                         std::string* error) {
  *health = WireHealth{};
  health->ready = reader->U8();
  health->queue_depth = reader->U64();
  return FinishDecode(*reader, error);
}

void EncodeStatsPayload(const WireStats& stats, io::Writer* writer) {
  writer->U64(stats.submitted);
  writer->U64(stats.completed);
  writer->U64(stats.updates);
  writer->U64(stats.rejected);
  writer->U64(stats.expired);
  writer->U64(stats.cancelled);
  writer->U64(stats.failed);
  writer->U64(stats.queue_depth);
  writer->U64(stats.visited_nodes);
  writer->F64(stats.latency_p50);
  writer->F64(stats.latency_p99);
  writer->F64(stats.queue_p50);
  writer->F64(stats.queue_p99);
}

bool DecodeStatsPayload(io::Reader* reader, WireStats* stats,
                        std::string* error) {
  *stats = WireStats{};
  stats->submitted = reader->U64();
  stats->completed = reader->U64();
  stats->updates = reader->U64();
  stats->rejected = reader->U64();
  stats->expired = reader->U64();
  stats->cancelled = reader->U64();
  stats->failed = reader->U64();
  stats->queue_depth = reader->U64();
  stats->visited_nodes = reader->U64();
  stats->latency_p50 = reader->F64();
  stats->latency_p99 = reader->F64();
  stats->queue_p50 = reader->F64();
  stats->queue_p99 = reader->F64();
  return FinishDecode(*reader, error);
}

void AppendFrame(FrameType type, uint64_t tag, Span<const uint8_t> payload,
                 std::vector<uint8_t>* out) {
  VIPTREE_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                    "frame payload exceeds kMaxPayloadBytes");
  io::Writer header;
  header.U32(kWireMagic);
  header.U8(kWireVersion);
  header.U8(static_cast<uint8_t>(type));
  header.U8(0);  // flags (reserved, two bytes)
  header.U8(0);
  header.U64(tag);
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U32(io::Crc32(payload.data(), payload.size()));
  VIPTREE_DCHECK(header.size() == kHeaderBytes);
  out->insert(out->end(), header.buffer().begin(), header.buffer().end());
  out->insert(out->end(), payload.begin(), payload.end());
}

namespace {

template <typename EncodeFn>
std::vector<uint8_t> FrameOf(FrameType type, uint64_t tag, EncodeFn encode) {
  io::Writer payload;
  encode(&payload);
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  AppendFrame(type, tag,
              Span<const uint8_t>(payload.buffer().data(), payload.size()),
              &out);
  return out;
}

}  // namespace

std::vector<uint8_t> EncodeRequestFrame(const WireRequest& request,
                                        uint64_t tag) {
  return FrameOf(FrameType::kRequest, tag, [&](io::Writer* w) {
    EncodeRequestPayload(request, w);
  });
}

std::vector<uint8_t> EncodeResponseFrame(const WireResponse& response,
                                         uint64_t tag) {
  return FrameOf(FrameType::kResponse, tag, [&](io::Writer* w) {
    EncodeResponsePayload(response, w);
  });
}

std::vector<uint8_t> EncodeHealthReplyFrame(const WireHealth& health,
                                            uint64_t tag) {
  return FrameOf(FrameType::kHealthReply, tag, [&](io::Writer* w) {
    EncodeHealthPayload(health, w);
  });
}

std::vector<uint8_t> EncodeStatsReplyFrame(const WireStats& stats,
                                           uint64_t tag) {
  return FrameOf(FrameType::kStatsReply, tag, [&](io::Writer* w) {
    EncodeStatsPayload(stats, w);
  });
}

std::vector<uint8_t> EncodeEmptyFrame(FrameType type, uint64_t tag) {
  return FrameOf(type, tag, [](io::Writer*) {});
}

std::vector<uint8_t> EncodeErrorFrame(const std::string& message,
                                      uint64_t tag) {
  return FrameOf(FrameType::kError, tag, [&](io::Writer* w) {
    w->String(message);
  });
}

void RetagFrame(uint64_t tag, uint8_t* frame) {
  const uint64_t little = io::detail::ToLittle(tag);
  std::memcpy(frame + 8, &little, sizeof(little));
}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  if (failed()) return;  // poisoned streams stop buffering
  // Reclaim consumed prefix before growing, so long-lived connections do
  // not accumulate every frame they ever received.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::Next() {
  if (failed()) return std::nullopt;
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return std::nullopt;

  io::Reader header(
      Span<const uint8_t>(buffer_.data() + consumed_, kHeaderBytes));
  const uint32_t magic = header.U32();
  const uint8_t version = header.U8();
  const uint8_t type = header.U8();
  const uint8_t flags_lo = header.U8();
  const uint8_t flags_hi = header.U8();
  const uint64_t tag = header.U64();
  const uint32_t payload_size = header.U32();
  const uint32_t payload_crc = header.U32();
  VIPTREE_DCHECK(header.ok());

  if (magic != kWireMagic) {
    Fail("bad frame magic (not a VIP-Tree wire stream?)");
    return std::nullopt;
  }
  if (version != kWireVersion) {
    Fail("unsupported wire version " + std::to_string(version) +
         " (this build speaks " + std::to_string(kWireVersion) + ")");
    return std::nullopt;
  }
  if (flags_lo != 0 || flags_hi != 0) {
    Fail("nonzero reserved frame flags");
    return std::nullopt;
  }
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    Fail("unknown frame type " + std::to_string(type));
    return std::nullopt;
  }
  if (payload_size > kMaxPayloadBytes) {
    Fail("frame payload of " + std::to_string(payload_size) +
         " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
         "-byte limit");
    return std::nullopt;
  }
  if (available < kHeaderBytes + payload_size) return std::nullopt;

  const uint8_t* payload = buffer_.data() + consumed_ + kHeaderBytes;
  if (io::Crc32(payload, payload_size) != payload_crc) {
    Fail("frame payload CRC mismatch (corrupted in transit?)");
    return std::nullopt;
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.tag = tag;
  frame.payload.assign(payload, payload + payload_size);
  consumed_ += kHeaderBytes + payload_size;
  return frame;
}

}  // namespace net
}  // namespace viptree
