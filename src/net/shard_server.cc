#include "net/shard_server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/check.h"

namespace viptree {
namespace net {

namespace {

// Level-triggered poll ticks over at most this often even with no events:
// cheap insurance against a lost wakeup, and the cadence at which the
// drain flag is re-checked.
constexpr int kPollTimeoutMs = 250;

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

ShardServer::ShardServer(std::shared_ptr<const engine::VenueBundle> bundle,
                         ShardServerOptions options)
    : service_(std::make_unique<engine::Service>(std::move(bundle),
                                                 options.service)),
      options_(std::move(options)) {}

ShardServer::ShardServer(engine::VenueRegistry registry,
                         ShardServerOptions options)
    : service_(std::make_unique<engine::Service>(std::move(registry),
                                                 options.service)),
      options_(std::move(options)) {}

ShardServer::~ShardServer() { Stop(); }

io::Status ShardServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  VIPTREE_CHECK_MSG(!started_, "ShardServer::Start called twice");
  if (io::Status status = WakePipe::Create(&wake_); !status.ok()) {
    return status;
  }
  if (io::Status status = ListenTcp(options_.bind_address, options_.port,
                                    options_.backlog, &listener_, &port_);
      !status.ok()) {
    return status;
  }
  service_->Start();
  loop_thread_ = std::thread([this] { Loop(); });
  started_ = true;
  return io::Status::Ok();
}

void ShardServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  wake_.Wake();
}

void ShardServer::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
  joined_ = true;
}

void ShardServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_ && loop_thread_.joinable()) {
      wake_.Wake();
      loop_thread_.join();
    }
    joined_ = true;
  }
  service_->Stop();
}

void ShardServer::Loop() {
  std::vector<pollfd> pollfds;
  std::vector<std::shared_ptr<Connection>> polled;
  bool drained = false;

  while (!stop_requested_.load(std::memory_order_acquire)) {
    const bool draining = draining_.load(std::memory_order_acquire);

    if (!draining && drain_requested_.load(std::memory_order_acquire)) {
      // Drain, phase 1: stop admitting bytes. Close the listener, stop
      // reading request frames, then block until every accepted request
      // has completed — the callbacks only append to outboxes, so they
      // never need this thread. Phase 2 (below) flushes those outboxes.
      draining_.store(true, std::memory_order_release);
      listener_.Close();
      service_->Drain();
      drained = true;
      continue;
    }

    if (drained) {
      // Drain, phase 2: exit once every response byte is on the wire (or
      // its peer is gone).
      bool any_pending = false;
      for (auto& [fd, conn] : connections_) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->out_pos < conn->outbox.size()) {
          any_pending = true;
          break;
        }
      }
      if (!any_pending) break;
    }

    pollfds.clear();
    polled.clear();
    pollfds.push_back({wake_.read_end.fd(), POLLIN, 0});
    if (listener_.valid()) pollfds.push_back({listener_.fd(), POLLIN, 0});
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      if (!draining && !conn->poisoned) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->out_pos < conn->outbox.size()) events |= POLLOUT;
      }
      pollfds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    const int ready = ::poll(pollfds.data(),
                             static_cast<nfds_t>(pollfds.size()),
                             kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) break;
    if (stop_requested_.load(std::memory_order_acquire)) break;

    size_t index = 0;
    if (pollfds[index].revents & POLLIN) wake_.Clear();
    ++index;
    if (listener_.valid()) {
      if (pollfds[index].revents & POLLIN) AcceptAll();
      ++index;
    }

    for (size_t c = 0; c < polled.size(); ++c, ++index) {
      const pollfd& pfd = pollfds[index];
      const std::shared_ptr<Connection>& conn = polled[c];
      bool alive = true;
      if (pfd.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (pfd.revents & POLLOUT)) alive = FlushWrites(conn);
      if (alive && (pfd.revents & (POLLIN | POLLHUP))) {
        alive = ServiceReadable(conn);
      }
      // A poisoned connection lingers only to flush its kError frame.
      if (alive && conn->poisoned) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->out_pos >= conn->outbox.size()) alive = false;
      }
      if (!alive) CloseConnection(pfd.fd);
    }
  }

  // Loop exit: close every socket under its lock so a late response
  // callback sees `closed` and drops its bytes instead of growing a dead
  // outbox forever.
  for (auto& [fd, conn] : connections_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    conn->sock.Close();
  }
  connections_.clear();
  listener_.Close();
}

void ShardServer::AcceptAll() {
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or a transient error): try next tick
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    // Response frames are small and latency-bound; without this, Nagle
    // against the peer's delayed ACKs stalls pipelined streams.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->sock = Socket(fd);
    connections_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ShardServer::ServiceReadable(const std::shared_ptr<Connection>& conn) {
  uint8_t chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->sock.fd(), chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn->decoder.Feed(chunk, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }

  while (std::optional<Frame> frame = conn->decoder.Next()) {
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(conn, std::move(*frame));
    if (conn->poisoned) break;
  }
  if (conn->decoder.failed() && !conn->poisoned) {
    // Framing-level violation (bad magic/version/CRC/length): report it on
    // this connection, then close. Nothing else is affected.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->poisoned = true;
    SendOnLoop(conn, EncodeErrorFrame(conn->decoder.error(), 0));
  }
  return true;
}

void ShardServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                              Frame frame) {
  switch (frame.type) {
    case FrameType::kRequest: {
      WireRequest request;
      io::Reader reader(
          Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
      std::string error;
      if (!DecodeRequestPayload(&reader, &request, &error)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        conn->poisoned = true;
        SendOnLoop(conn,
                   EncodeErrorFrame("request decode: " + error, frame.tag));
        return;
      }
      engine::Request engine_request = request.ToRequest();
      engine_request.tag = frame.tag;
      // The callback runs on a Service worker (or synchronously right here
      // for admission rejections); either way it only appends bytes.
      service_->Submit(
          std::move(engine_request),
          [this, conn](const engine::Response& response) {
            std::vector<uint8_t> bytes = EncodeResponseFrame(
                WireResponse::FromResponse(response), response.tag);
            bool appended = false;
            {
              std::lock_guard<std::mutex> lock(conn->mu);
              if (!conn->closed) {
                conn->outbox.insert(conn->outbox.end(), bytes.begin(),
                                    bytes.end());
                appended = true;
              }
            }
            if (appended) wake_.Wake();
          });
      return;
    }
    case FrameType::kHealthProbe: {
      WireHealth health;
      health.ready = draining_.load(std::memory_order_acquire) ? 0 : 1;
      health.queue_depth = service_->Stats().queue_depth;
      SendOnLoop(conn, EncodeHealthReplyFrame(health, frame.tag));
      return;
    }
    case FrameType::kStatsProbe: {
      SendOnLoop(conn,
                 EncodeStatsReplyFrame(
                     WireStats::FromServiceStats(service_->Stats()),
                     frame.tag));
      return;
    }
    default:
      // Reply frames have no business arriving at a server.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->poisoned = true;
      SendOnLoop(conn,
                 EncodeErrorFrame(std::string("unexpected ") +
                                      FrameTypeName(frame.type) +
                                      " frame at a shard server",
                                  frame.tag));
      return;
  }
}

void ShardServer::SendOnLoop(const std::shared_ptr<Connection>& conn,
                             std::vector<uint8_t> bytes) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->outbox.insert(conn->outbox.end(), bytes.begin(), bytes.end());
  }
  FlushWrites(conn);
}

bool ShardServer::FlushWrites(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  while (conn->out_pos < conn->outbox.size()) {
    const ssize_t n =
        ::send(conn->sock.fd(), conn->outbox.data() + conn->out_pos,
               conn->outbox.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;  // peer gone: close (their responses die with them)
    }
    conn->out_pos += static_cast<size_t>(n);
  }
  if (conn->out_pos == conn->outbox.size() && conn->out_pos > 0) {
    conn->outbox.clear();
    conn->out_pos = 0;
  }
  return true;
}

void ShardServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  {
    std::lock_guard<std::mutex> lock(it->second->mu);
    it->second->closed = true;
    it->second->sock.Close();
  }
  connections_.erase(it);
}

}  // namespace net
}  // namespace viptree
