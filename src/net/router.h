// net::Router: the thin front process of the sharded deployment. Clients
// speak the same wire protocol to the router as to a shard; the router
// decodes only enough of each request frame to learn its venue, picks the
// owning shard by consistent (rendezvous) assignment over the healthy
// shard set, forwards the *unmodified payload* under a fresh router tag,
// and restores the caller's tag on the way back — so the router scales
// with frame bytes, not with query complexity.
//
// Failover: every forwarded request keeps its encoded payload in the
// pending table until its response arrives. When a shard connection dies
// (SIGKILLed process, reset, refused reconnect), the router immediately
// re-routes that connection's pending requests — first to the shard's
// surviving pool connections, else to the next healthy shard by the same
// rendezvous order — up to max_attempts, after which the client gets a
// clean kRejected response. Because every shard serves the same registry
// manifest (venues load lazily), any healthy shard can answer any venue;
// assignment exists for cache locality, not correctness, which is what
// makes failover safe.
//
// Health: a periodic probe tick sends kHealthProbe / kStatsProbe on each
// shard's first pooled connection and re-dials dead connections. TCP
// errors mark a shard down instantly (well under one probe interval); a
// shard that answers probes with ready=0 (draining) stops receiving *new*
// assignments but keeps its in-flight work. The cached per-shard stats
// replies are summed into the fleet-wide WireStats the router answers
// kStatsProbe with.
//
// Threading: strictly single-threaded — one poll() loop owns every socket
// and all state, so there are no locks on the forwarding path. The only
// cross-thread surface is RequestDrain()/Stop() (atomic flag + self-pipe),
// safe from signal handlers.

#ifndef VIPTREE_NET_ROUTER_H_
#define VIPTREE_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace viptree {
namespace net {

struct RouterOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; port() reports the bound one
  int backlog = 64;
  size_t max_connections = 256;
  // Connections kept open to each shard. More than one lets a single
  // shard's pool ride out one dead socket without a re-route and spreads
  // pipelined load.
  size_t pool_size = 2;
  // Cadence of the health/stats probe tick (also the reconnect cadence
  // for dead shard connections).
  double probe_interval_ms = 200.0;
  // A shard whose probes go unanswered this many consecutive ticks has
  // its connections failed over even without a TCP error (a hung, not
  // dead, process).
  size_t probe_miss_limit = 10;
  // Routing attempts per request (1 initial + failovers) before the
  // client gets kRejected.
  size_t max_attempts = 3;
  double connect_timeout_ms = 1000.0;
};

// The router's own forwarding counters (the shards' ServiceStats are
// aggregated separately via WireStats).
struct RouterCounters {
  uint64_t requests_forwarded = 0;  // client frames sent to a shard
  uint64_t responses_returned = 0;
  uint64_t failovers = 0;          // re-routes after a connection failure
  uint64_t no_shard_rejections = 0;  // kRejected: no healthy shard/attempts
  uint64_t protocol_errors = 0;    // poisoned client connections
  uint64_t shard_disconnects = 0;  // shard sockets that died
};

class Router {
 public:
  // `shard_endpoints`: host:port per shard, fixed for the router's
  // lifetime (the rendezvous domain). `venue_ids` (typically the registry
  // manifest's ids) is informational — Assignments() reports the planned
  // partition — routing itself hashes any venue id a request carries.
  Router(std::vector<std::string> shard_endpoints,
         std::vector<std::string> venue_ids, RouterOptions options = {});
  ~Router();  // Stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  io::Status Start();
  uint16_t port() const { return port_; }

  // Async-signal-safe graceful drain: stop accepting, answer everything
  // in flight, flush, exit. Wait() joins the loop.
  void RequestDrain();
  void Wait();
  void Stop();

  // Stable venue -> shard-index assignment over *all* configured shards
  // (health aside) — the planned partition. Exposed for tests and the
  // CLI's startup banner.
  size_t ShardForVenue(const std::string& venue_id) const;
  // (venue id, planned shard index) for every manifest venue.
  std::vector<std::pair<std::string, size_t>> Assignments() const;

  RouterCounters counters() const;
  // Fleet-wide sum of the most recent per-shard stats replies.
  WireStats FleetStats() const;
  // Shards currently considered healthy (ready connection + ready flag).
  size_t healthy_shards() const;

 private:
  struct ClientConn {
    Socket sock;
    FrameDecoder decoder;
    std::vector<uint8_t> outbox;
    size_t out_pos = 0;
    bool poisoned = false;  // flush the kError frame, then close
    bool closed = false;    // late responses to this client are dropped
  };

  struct ShardConn {
    size_t shard = 0;
    Socket sock;
    enum class State { kDown, kConnecting, kReady };
    State state = State::kDown;
    FrameDecoder decoder;
    std::vector<uint8_t> outbox;
    size_t out_pos = 0;
    // Probe ticks spent in kConnecting; bounded by connect_timeout_ms.
    size_t connect_ticks = 0;
  };

  struct Shard {
    std::string endpoint;
    std::vector<std::unique_ptr<ShardConn>> pool;
    bool ready_flag = true;  // last health reply's ready bit
    size_t unanswered_probes = 0;
    size_t next_conn = 0;  // round-robin cursor over ready pool conns
    WireStats last_stats;
    bool have_stats = false;
  };

  struct Pending {
    std::shared_ptr<ClientConn> client;
    uint64_t client_tag = 0;
    std::vector<uint8_t> payload;  // re-sent verbatim on failover
    std::string venue_id;
    engine::RequestKind kind = engine::RequestKind::kQuery;
    size_t attempts = 0;
    ShardConn* conn = nullptr;  // where it is currently outstanding
  };

  void Loop();
  void AcceptAll();
  bool ServiceClientReadable(const std::shared_ptr<ClientConn>& conn);
  void HandleClientFrame(const std::shared_ptr<ClientConn>& conn,
                         Frame frame);
  bool ServiceShardReadable(ShardConn* conn);
  // False when the shard spoke nonsense and the connection must be failed.
  bool HandleShardFrame(ShardConn* conn, Frame frame);
  // Marks the connection down, closes it, and re-routes its pendings.
  void FailShardConn(ShardConn* conn);
  // Routes one pending entry (initial send or failover). On exhaustion,
  // answers the client with kRejected.
  void RoutePending(uint64_t router_tag);
  // The healthy shard rendezvous assignment for `venue_id`; SIZE_MAX when
  // no shard is healthy.
  size_t HealthyShardForVenue(const std::string& venue_id) const;
  // A ready pool connection on `shard` (round-robin), or nullptr.
  ShardConn* ReadyConn(size_t shard);
  bool ShardHealthy(const Shard& shard) const;
  void StartConnect(ShardConn* conn);
  void FinishConnect(ShardConn* conn);
  void ProbeTick();
  void RejectPending(Pending pending, const std::string& reason);
  void AppendToClient(const std::shared_ptr<ClientConn>& conn,
                      const std::vector<uint8_t>& bytes);
  static bool FlushOutbox(int fd, std::vector<uint8_t>* outbox,
                          size_t* out_pos);

  std::vector<std::string> venue_ids_;
  RouterOptions options_;
  std::vector<Shard> shards_;
  Socket listener_;
  uint16_t port_ = 0;
  WakePipe wake_;
  std::thread loop_thread_;
  bool started_ = false;
  std::mutex lifecycle_mu_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};

  // Everything below is loop-thread-owned, except the three mutable
  // snapshots guarded by stats_mu_ for the in-process accessors.
  std::map<int, std::shared_ptr<ClientConn>> clients_;
  std::map<uint64_t, Pending> pending_;
  uint64_t next_router_tag_ = 1;
  uint64_t probe_tag_ = 0;

  mutable std::mutex stats_mu_;
  RouterCounters counters_;
  std::vector<WireStats> shard_stats_snapshot_;
  std::vector<bool> shard_healthy_snapshot_;
};

}  // namespace net
}  // namespace viptree

#endif  // VIPTREE_NET_ROUTER_H_
