// Thin POSIX TCP plumbing under the network tier: an RAII fd, listen /
// connect helpers with io::Status error reporting, and host:port parsing.
// Everything here is deliberately boring — the interesting behavior
// (framing, routing, draining) lives above it in wire.h / shard_server.h /
// router.h, and every call site treats failure as a reportable condition,
// never a crash (the rest of the library's error model).

#ifndef VIPTREE_NET_SOCKET_H_
#define VIPTREE_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "io/binary_io.h"

namespace viptree {
namespace net {

// Owning file descriptor (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

// "host:port" -> (host, port). Accepts a bare ":port" (host defaults to
// 127.0.0.1). Returns false on a missing/unparsable port.
bool ParseHostPort(const std::string& endpoint, std::string* host,
                   uint16_t* port);

// Opens a listening TCP socket on `bind_address:port` (port 0 picks an
// ephemeral port; *bound_port reports the actual one). The socket is
// non-blocking with SO_REUSEADDR, ready for an accept loop.
io::Status ListenTcp(const std::string& bind_address, uint16_t port,
                     int backlog, Socket* out, uint16_t* bound_port);

// Blocking connect to "host:port" with TCP_NODELAY (frames are small and
// latency-bound; Nagle would serialize the request/response ping-pong).
// `timeout_ms` bounds the connection attempt; <= 0 means the OS default.
io::Status ConnectTcp(const std::string& endpoint, double timeout_ms,
                      Socket* out);

// Sets O_NONBLOCK on an accepted/connected socket.
io::Status SetNonBlocking(int fd);

// A pipe whose read end can sit in a poll set: writing one byte wakes the
// loop. Used for cross-thread wakeups (response callbacks -> event loop)
// and signal-handler drain requests (write() is async-signal-safe).
struct WakePipe {
  Socket read_end;
  Socket write_end;

  static io::Status Create(WakePipe* out);
  // Best-effort, non-blocking, async-signal-safe wake.
  void Wake() const;
  // Drains every pending wake byte (called by the loop once awake).
  void Clear() const;
};

}  // namespace net
}  // namespace viptree

#endif  // VIPTREE_NET_SOCKET_H_
