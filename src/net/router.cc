#include "net/router.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace viptree {
namespace net {

namespace {

constexpr int kPollTimeoutMs = 100;
constexpr size_t kReadChunk = 64 * 1024;

// FNV-1a over the venue id, then splitmix64-style avalanche mixed with the
// shard index: the per-(venue, shard) rendezvous score. Deterministic
// across processes and platforms, so every router instance over the same
// shard list computes the same partition.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t RendezvousScore(const std::string& venue_id, size_t shard) {
  return Mix64(Fnv1a(venue_id) ^ (0xA5A5A5A5A5A5A5A5ull +
                                  static_cast<uint64_t>(shard)));
}

}  // namespace

Router::Router(std::vector<std::string> shard_endpoints,
               std::vector<std::string> venue_ids, RouterOptions options)
    : venue_ids_(std::move(venue_ids)), options_(std::move(options)) {
  VIPTREE_CHECK_MSG(!shard_endpoints.empty(),
                    "a router needs at least one shard endpoint");
  shards_.resize(shard_endpoints.size());
  for (size_t i = 0; i < shard_endpoints.size(); ++i) {
    shards_[i].endpoint = std::move(shard_endpoints[i]);
    const size_t pool = options_.pool_size < 1 ? 1 : options_.pool_size;
    for (size_t p = 0; p < pool; ++p) {
      auto conn = std::make_unique<ShardConn>();
      conn->shard = i;
      shards_[i].pool.push_back(std::move(conn));
    }
  }
  shard_stats_snapshot_.resize(shards_.size());
  shard_healthy_snapshot_.assign(shards_.size(), false);
}

Router::~Router() { Stop(); }

io::Status Router::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  VIPTREE_CHECK_MSG(!started_, "Router::Start called twice");
  if (io::Status status = WakePipe::Create(&wake_); !status.ok()) {
    return status;
  }
  if (io::Status status = ListenTcp(options_.bind_address, options_.port,
                                    options_.backlog, &listener_, &port_);
      !status.ok()) {
    return status;
  }
  loop_thread_ = std::thread([this] { Loop(); });
  started_ = true;
  return io::Status::Ok();
}

void Router::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  wake_.Wake();
}

void Router::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Router::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ && loop_thread_.joinable()) {
    wake_.Wake();
    loop_thread_.join();
  }
}

size_t Router::ShardForVenue(const std::string& venue_id) const {
  size_t best = 0;
  uint64_t best_score = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t score = RendezvousScore(venue_id, i);
    if (i == 0 || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

std::vector<std::pair<std::string, size_t>> Router::Assignments() const {
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(venue_ids_.size());
  for (const std::string& venue : venue_ids_) {
    out.emplace_back(venue, ShardForVenue(venue));
  }
  return out;
}

RouterCounters Router::counters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

WireStats Router::FleetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  WireStats total;
  for (const WireStats& stats : shard_stats_snapshot_) total += stats;
  return total;
}

size_t Router::healthy_shards() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  size_t healthy = 0;
  for (const bool h : shard_healthy_snapshot_) {
    if (h) ++healthy;
  }
  return healthy;
}

bool Router::ShardHealthy(const Shard& shard) const {
  if (!shard.ready_flag) return false;
  for (const auto& conn : shard.pool) {
    if (conn->state == ShardConn::State::kReady) return true;
  }
  return false;
}

size_t Router::HealthyShardForVenue(const std::string& venue_id) const {
  size_t best = SIZE_MAX;
  uint64_t best_score = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!ShardHealthy(shards_[i])) continue;
    const uint64_t score = RendezvousScore(venue_id, i);
    if (best == SIZE_MAX || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

Router::ShardConn* Router::ReadyConn(size_t shard_index) {
  Shard& shard = shards_[shard_index];
  const size_t n = shard.pool.size();
  for (size_t step = 0; step < n; ++step) {
    ShardConn* conn = shard.pool[(shard.next_conn + step) % n].get();
    if (conn->state == ShardConn::State::kReady) {
      shard.next_conn = (shard.next_conn + step + 1) % n;
      return conn;
    }
  }
  return nullptr;
}

void Router::StartConnect(ShardConn* conn) {
  if (conn->state != ShardConn::State::kDown) return;
  const std::string& endpoint = shards_[conn->shard].endpoint;
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(endpoint, &host, &port)) return;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &resolved) != 0) {
    return;  // retried next probe tick
  }
  Socket sock(::socket(resolved->ai_family, resolved->ai_socktype,
                       resolved->ai_protocol));
  if (sock.valid() && SetNonBlocking(sock.fd()).ok()) {
    const int rc =
        ::connect(sock.fd(), resolved->ai_addr, resolved->ai_addrlen);
    if (rc == 0 || errno == EINPROGRESS) {
      conn->sock = std::move(sock);
      conn->state = ShardConn::State::kConnecting;
      conn->decoder = FrameDecoder();
      conn->outbox.clear();
      conn->out_pos = 0;
      conn->connect_ticks = 0;
      if (rc == 0) FinishConnect(conn);
    }
  }
  ::freeaddrinfo(resolved);
}

void Router::FinishConnect(ShardConn* conn) {
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  ::getsockopt(conn->sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len);
  if (so_error != 0) {
    conn->sock.Close();
    conn->state = ShardConn::State::kDown;
    return;
  }
  const int one = 1;
  ::setsockopt(conn->sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  conn->state = ShardConn::State::kReady;
  shards_[conn->shard].unanswered_probes = 0;
  // A reconnected shard is optimistically ready until a probe says
  // otherwise — it just accepted our TCP handshake.
  shards_[conn->shard].ready_flag = true;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    shard_healthy_snapshot_[conn->shard] = true;
  }
}

void Router::Loop() {
  using Clock = std::chrono::steady_clock;
  const auto probe_interval = std::chrono::microseconds(
      static_cast<int64_t>(options_.probe_interval_ms * 1000.0));
  auto next_probe = Clock::now();  // first tick fires immediately

  std::vector<pollfd> pollfds;
  std::vector<std::shared_ptr<ClientConn>> polled_clients;
  std::vector<ShardConn*> polled_shards;
  bool draining = false;

  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (!draining && drain_requested_.load(std::memory_order_acquire)) {
      draining = true;
      listener_.Close();
    }
    if (draining && pending_.empty()) {
      bool flushed = true;
      for (auto& [fd, client] : clients_) {
        if (client->out_pos < client->outbox.size()) {
          flushed = false;
          break;
        }
      }
      if (flushed) break;
    }

    const auto now = Clock::now();
    if (now >= next_probe) {
      ProbeTick();
      next_probe = now + probe_interval;
    }

    pollfds.clear();
    polled_clients.clear();
    polled_shards.clear();
    pollfds.push_back({wake_.read_end.fd(), POLLIN, 0});
    if (listener_.valid()) pollfds.push_back({listener_.fd(), POLLIN, 0});
    const size_t clients_at = pollfds.size();
    for (auto& [fd, client] : clients_) {
      short events = 0;
      if (!draining && !client->poisoned) events |= POLLIN;
      if (client->out_pos < client->outbox.size()) events |= POLLOUT;
      pollfds.push_back({fd, events, 0});
      polled_clients.push_back(client);
    }
    const size_t shards_at = pollfds.size();
    for (Shard& shard : shards_) {
      for (const auto& conn : shard.pool) {
        if (conn->state == ShardConn::State::kDown) continue;
        short events = 0;
        if (conn->state == ShardConn::State::kConnecting) {
          events = POLLOUT;
        } else {
          events = POLLIN;
          if (conn->out_pos < conn->outbox.size()) events |= POLLOUT;
        }
        pollfds.push_back({conn->sock.fd(), events, 0});
        polled_shards.push_back(conn.get());
      }
    }

    const auto until_probe = std::chrono::duration_cast<
        std::chrono::milliseconds>(next_probe - Clock::now()).count();
    const int timeout = static_cast<int>(
        std::max<int64_t>(1, std::min<int64_t>(kPollTimeoutMs, until_probe)));
    const int ready = ::poll(pollfds.data(),
                             static_cast<nfds_t>(pollfds.size()), timeout);
    if (ready < 0 && errno != EINTR) break;
    if (stop_requested_.load(std::memory_order_acquire)) break;

    if (pollfds[0].revents & POLLIN) wake_.Clear();
    if (listener_.valid() && (pollfds[1].revents & POLLIN)) AcceptAll();

    // Shard connections first: responses free pending slots before new
    // client frames claim them.
    for (size_t i = 0; i < polled_shards.size(); ++i) {
      const pollfd& pfd = pollfds[shards_at + i];
      ShardConn* conn = polled_shards[i];
      if (conn->state == ShardConn::State::kConnecting) {
        if (pfd.revents & (POLLOUT | POLLERR | POLLHUP)) FinishConnect(conn);
        continue;
      }
      bool alive = true;
      if (pfd.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (pfd.revents & POLLOUT)) {
        alive = FlushOutbox(conn->sock.fd(), &conn->outbox, &conn->out_pos);
      }
      if (alive && (pfd.revents & (POLLIN | POLLHUP))) {
        alive = ServiceShardReadable(conn);
      }
      if (!alive) FailShardConn(conn);
    }

    for (size_t i = 0; i < polled_clients.size(); ++i) {
      const pollfd& pfd = pollfds[clients_at + i];
      const std::shared_ptr<ClientConn>& client = polled_clients[i];
      bool alive = true;
      if (pfd.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (pfd.revents & POLLOUT)) {
        alive =
            FlushOutbox(client->sock.fd(), &client->outbox, &client->out_pos);
      }
      if (alive && (pfd.revents & (POLLIN | POLLHUP)) && !client->poisoned &&
          !draining) {
        alive = ServiceClientReadable(client);
      } else if (alive && (pfd.revents & POLLHUP)) {
        alive = false;
      }
      if (alive && client->poisoned &&
          client->out_pos >= client->outbox.size()) {
        alive = false;
      }
      if (!alive) {
        client->closed = true;
        client->sock.Close();
        clients_.erase(pfd.fd);
      }
    }
  }

  for (auto& [fd, client] : clients_) {
    client->closed = true;
    client->sock.Close();
  }
  clients_.clear();
  pending_.clear();
  listener_.Close();
}

void Router::AcceptAll() {
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) return;
    if (clients_.size() >= options_.max_connections ||
        !SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    // Same rationale as the shard server: small latency-bound frames,
    // so disable Nagle on the accepted side too.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto client = std::make_shared<ClientConn>();
    client->sock = Socket(fd);
    clients_.emplace(fd, std::move(client));
  }
}

bool Router::ServiceClientReadable(const std::shared_ptr<ClientConn>& conn) {
  uint8_t chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->sock.fd(), chunk, sizeof(chunk), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn->decoder.Feed(chunk, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }
  while (std::optional<Frame> frame = conn->decoder.Next()) {
    HandleClientFrame(conn, std::move(*frame));
    if (conn->poisoned) break;
  }
  if (conn->decoder.failed() && !conn->poisoned) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.protocol_errors;
    }
    conn->poisoned = true;
    AppendToClient(conn, EncodeErrorFrame(conn->decoder.error(), 0));
  }
  return true;
}

void Router::HandleClientFrame(const std::shared_ptr<ClientConn>& conn,
                               Frame frame) {
  switch (frame.type) {
    case FrameType::kRequest: {
      // Full decode (not just the venue column): the router is the fleet's
      // first line of input validation, so garbage never reaches a shard.
      WireRequest request;
      io::Reader reader(
          Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
      std::string error;
      if (!DecodeRequestPayload(&reader, &request, &error)) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++counters_.protocol_errors;
        }
        conn->poisoned = true;
        AppendToClient(
            conn, EncodeErrorFrame("request decode: " + error, frame.tag));
        return;
      }
      const uint64_t router_tag = next_router_tag_++;
      Pending pending;
      pending.client = conn;
      pending.client_tag = frame.tag;
      pending.payload = std::move(frame.payload);
      pending.venue_id = request.venue_id;
      pending.kind = request.kind;
      pending.attempts = 0;
      pending_.emplace(router_tag, std::move(pending));
      RoutePending(router_tag);
      return;
    }
    case FrameType::kHealthProbe: {
      WireHealth health;
      size_t healthy = 0;
      for (const Shard& shard : shards_) {
        if (ShardHealthy(shard)) ++healthy;
      }
      health.ready = healthy > 0 ? 1 : 0;
      health.queue_depth = pending_.size();
      AppendToClient(conn, EncodeHealthReplyFrame(health, frame.tag));
      return;
    }
    case FrameType::kStatsProbe: {
      WireStats total;
      for (const Shard& shard : shards_) {
        if (shard.have_stats) total += shard.last_stats;
      }
      AppendToClient(conn, EncodeStatsReplyFrame(total, frame.tag));
      return;
    }
    default: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.protocol_errors;
      }
      conn->poisoned = true;
      AppendToClient(conn, EncodeErrorFrame(
                               std::string("unexpected ") +
                                   FrameTypeName(frame.type) +
                                   " frame at a router",
                               frame.tag));
      return;
    }
  }
}

void Router::RoutePending(uint64_t router_tag) {
  auto it = pending_.find(router_tag);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  ++pending.attempts;
  if (pending.attempts > options_.max_attempts) {
    Pending finished = std::move(pending);
    pending_.erase(it);
    RejectPending(std::move(finished),
                  "no shard answered after " +
                      std::to_string(options_.max_attempts) + " attempts");
    return;
  }
  const size_t shard = HealthyShardForVenue(pending.venue_id);
  ShardConn* conn = shard == SIZE_MAX ? nullptr : ReadyConn(shard);
  if (conn == nullptr) {
    Pending finished = std::move(pending);
    pending_.erase(it);
    RejectPending(std::move(finished), "no healthy shard");
    return;
  }
  pending.conn = conn;
  AppendFrame(FrameType::kRequest, router_tag,
              Span<const uint8_t>(pending.payload.data(),
                                  pending.payload.size()),
              &conn->outbox);
  if (!FlushOutbox(conn->sock.fd(), &conn->outbox, &conn->out_pos)) {
    FailShardConn(conn);  // re-routes this pending (attempts already counted)
    return;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++counters_.requests_forwarded;
  if (pending.attempts > 1) ++counters_.failovers;
}

void Router::RejectPending(Pending pending, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.no_shard_rejections;
  }
  if (pending.client == nullptr || pending.client->closed) return;
  WireResponse response;
  response.status = engine::RequestStatus::kRejected;
  response.kind = pending.kind;
  response.venue_id = pending.venue_id;
  response.error = "router: " + reason;
  AppendToClient(pending.client,
                 EncodeResponseFrame(response, pending.client_tag));
}

bool Router::ServiceShardReadable(ShardConn* conn) {
  uint8_t chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->sock.fd(), chunk, sizeof(chunk), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn->decoder.Feed(chunk, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }
  while (std::optional<Frame> frame = conn->decoder.Next()) {
    if (!HandleShardFrame(conn, std::move(*frame))) return false;
  }
  // A shard that sends us garbage is as dead as one that hung up.
  return !conn->decoder.failed();
}

bool Router::HandleShardFrame(ShardConn* conn, Frame frame) {
  Shard& shard = shards_[conn->shard];
  switch (frame.type) {
    case FrameType::kResponse: {
      auto it = pending_.find(frame.tag);
      if (it == pending_.end()) return true;  // duplicate post-failover: drop
      Pending pending = std::move(it->second);
      pending_.erase(it);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.responses_returned;
      }
      if (pending.client == nullptr || pending.client->closed) return true;
      std::vector<uint8_t> out;
      out.reserve(kHeaderBytes + frame.payload.size());
      AppendFrame(FrameType::kResponse, pending.client_tag,
                  Span<const uint8_t>(frame.payload.data(),
                                      frame.payload.size()),
                  &out);
      AppendToClient(pending.client, out);
      return true;
    }
    case FrameType::kHealthReply: {
      WireHealth health;
      io::Reader reader(
          Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
      std::string error;
      if (DecodeHealthPayload(&reader, &health, &error)) {
        shard.unanswered_probes = 0;
        shard.ready_flag = health.ready != 0;
        std::lock_guard<std::mutex> lock(stats_mu_);
        shard_healthy_snapshot_[conn->shard] = ShardHealthy(shard);
      }
      return true;
    }
    case FrameType::kStatsReply: {
      WireStats stats;
      io::Reader reader(
          Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
      std::string error;
      if (DecodeStatsPayload(&reader, &stats, &error)) {
        shard.last_stats = stats;
        shard.have_stats = true;
        std::lock_guard<std::mutex> lock(stats_mu_);
        shard_stats_snapshot_[conn->shard] = stats;
      }
      return true;
    }
    case FrameType::kError:
    default:
      // The shard poisoned this connection (or spoke nonsense): fail it so
      // its pendings re-route.
      return false;
  }
}

void Router::FailShardConn(ShardConn* conn) {
  if (conn->state == ShardConn::State::kDown) return;
  conn->sock.Close();
  conn->state = ShardConn::State::kDown;
  conn->outbox.clear();
  conn->out_pos = 0;
  conn->decoder = FrameDecoder();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.shard_disconnects;
    shard_healthy_snapshot_[conn->shard] = ShardHealthy(shards_[conn->shard]);
  }

  // Re-route everything outstanding on this connection. Collect tags
  // first: RoutePending mutates pending_.
  std::vector<uint64_t> stranded;
  for (const auto& [tag, pending] : pending_) {
    if (pending.conn == conn) stranded.push_back(tag);
  }
  for (const uint64_t tag : stranded) RoutePending(tag);
}

void Router::ProbeTick() {
  const size_t max_connect_ticks = static_cast<size_t>(
      options_.connect_timeout_ms / std::max(options_.probe_interval_ms, 1.0))
      + 1;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    for (const auto& conn : shard.pool) {
      if (conn->state == ShardConn::State::kConnecting &&
          ++conn->connect_ticks > max_connect_ticks) {
        // A connect that neither completed nor errored within the timeout
        // (packets silently dropped): give up and re-dial next tick.
        conn->sock.Close();
        conn->state = ShardConn::State::kDown;
      }
      if (conn->state == ShardConn::State::kDown) StartConnect(conn.get());
    }
    ShardConn* probe_conn = nullptr;
    for (const auto& conn : shard.pool) {
      if (conn->state == ShardConn::State::kReady) {
        probe_conn = conn.get();
        break;
      }
    }
    if (probe_conn == nullptr) continue;
    if (shard.unanswered_probes >= options_.probe_miss_limit) {
      // Hung shard (accepting bytes, answering nothing): fail its
      // connections so pendings move on; reconnects resume next tick.
      for (const auto& conn : shard.pool) {
        if (conn->state != ShardConn::State::kDown) FailShardConn(conn.get());
      }
      shard.unanswered_probes = 0;
      continue;
    }
    ++shard.unanswered_probes;
    ++probe_tag_;
    AppendFrame(FrameType::kHealthProbe, probe_tag_, {}, &probe_conn->outbox);
    AppendFrame(FrameType::kStatsProbe, probe_tag_, {}, &probe_conn->outbox);
    if (!FlushOutbox(probe_conn->sock.fd(), &probe_conn->outbox,
                     &probe_conn->out_pos)) {
      FailShardConn(probe_conn);
    }
  }
}

void Router::AppendToClient(const std::shared_ptr<ClientConn>& conn,
                            const std::vector<uint8_t>& bytes) {
  if (conn->closed) return;
  conn->outbox.insert(conn->outbox.end(), bytes.begin(), bytes.end());
  FlushOutbox(conn->sock.fd(), &conn->outbox, &conn->out_pos);
}

bool Router::FlushOutbox(int fd, std::vector<uint8_t>* outbox,
                         size_t* out_pos) {
  if (fd < 0) return false;
  while (*out_pos < outbox->size()) {
    const ssize_t n = ::send(fd, outbox->data() + *out_pos,
                             outbox->size() - *out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    *out_pos += static_cast<size_t>(n);
  }
  if (*out_pos == outbox->size() && *out_pos > 0) {
    outbox->clear();
    *out_pos = 0;
  }
  return true;
}

}  // namespace net
}  // namespace viptree
