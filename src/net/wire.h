// The binary wire protocol of the network serving tier: compact
// length-prefixed frames carrying the engine::Service request/response
// vocabulary (every Query/Result kind plus kUpdateObjects deltas) between
// untrusting processes. The encode/decode layer is io::Writer / io::Reader
// (io/binary_io.h), so byte order, bounds checking and the sticky error
// model are exactly the snapshot format's — a malformed or truncated frame
// is a reportable per-connection condition, never a crash.
//
// Frame layout (all little-endian, kHeaderBytes fixed bytes then payload):
//
//   offset  size  field
//   0       4     magic            'VIPW' (0x57504956)
//   4       1     version          kWireVersion (1)
//   5       1     type             FrameType
//   6       2     flags            must be 0 (reserved)
//   8       8     tag              echoed verbatim in the matching reply
//   16      4     payload_size     <= kMaxPayloadBytes
//   20      4     payload_crc      Crc32 over the payload bytes
//   24      ...   payload          FrameType-specific body
//
// The tag lives in the *header*, not the payload, so a router can re-tag a
// frame in flight (its pending-table key) and restore the caller's tag on
// the way back without touching — or even understanding — the payload.
//
// Deadlines cross the wire as relative budgets (milliseconds from receipt;
// 0 = none), not absolute time points: steady-clock readings are
// meaningless on another host. The shard re-anchors the budget when it
// decodes the frame, so queueing inside the shard counts against it but
// network transit does not.
//
// Versioning policy mirrors io/snapshot.h: a decoder rejects frames whose
// version it does not know with a clean error; kWireVersion bumps on any
// layout change.

#ifndef VIPTREE_NET_WIRE_H_
#define VIPTREE_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "engine/service.h"
#include "io/binary_io.h"

namespace viptree {
namespace net {

inline constexpr uint32_t kWireMagic = 0x57504956;  // 'VIPW' little-endian
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kHeaderBytes = 24;
// Ceiling on a single frame's payload: large enough for any realistic
// response (a range query over a whole city venue), small enough that a
// corrupted length field can never drive a giant allocation.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,      // WireRequest payload; answered by exactly one kResponse
  kResponse = 2,     // WireResponse payload
  kHealthProbe = 3,  // empty payload; answered by kHealthReply
  kHealthReply = 4,  // WireHealth payload
  kStatsProbe = 5,   // empty payload; answered by kStatsReply
  kStatsReply = 6,   // WireStats payload
  kError = 7,        // string payload: a protocol-level failure (malformed
                     // frame, bad CRC); the sender closes after flushing it
};

const char* FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kError;
  uint64_t tag = 0;
  std::vector<uint8_t> payload;
};

// engine::Request with the deadline as a wire-safe relative budget.
struct WireRequest {
  engine::RequestKind kind = engine::RequestKind::kQuery;
  std::string venue_id;
  engine::Query query;
  ObjectDelta delta;
  double deadline_ms = 0.0;  // 0 = no deadline

  // The engine-side request (re-anchoring the budget on the local steady
  // clock). The tag travels in the frame header, not here.
  engine::Request ToRequest() const;
  static WireRequest FromRequest(const engine::Request& request,
                                 double deadline_ms);
};

// engine::Response minus the queue-side bookkeeping a remote caller cannot
// interpret anyway; per-request stats (latency, visited nodes) ride along
// inside `result` exactly as the in-process API reports them.
struct WireResponse {
  engine::RequestStatus status = engine::RequestStatus::kOk;
  engine::RequestKind kind = engine::RequestKind::kQuery;
  std::string venue_id;
  engine::Result result;
  std::string error;
  double queue_micros = 0.0;

  bool ok() const { return status == engine::RequestStatus::kOk; }

  static WireResponse FromResponse(const engine::Response& response);
};

// Readiness snapshot answered to a kHealthProbe.
struct WireHealth {
  uint8_t ready = 0;  // 1 = accepting requests (not draining)
  uint64_t queue_depth = 0;
};

// The portable core of engine::ServiceStats: every counter (summable
// across shards) plus the latency/queue percentiles of this process.
// Percentile summaries do not merge exactly, so a fleet aggregator sums
// the counters and reports the per-shard summaries side by side.
struct WireStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;  // queries answered kOk
  uint64_t updates = 0;
  uint64_t rejected = 0;
  uint64_t expired = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  uint64_t queue_depth = 0;
  uint64_t visited_nodes = 0;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  double queue_p50 = 0.0;
  double queue_p99 = 0.0;

  static WireStats FromServiceStats(const engine::ServiceStats& stats);
  // Sums the counters (percentiles keep the *max* across shards — the
  // conservative fleet-wide tail bound a router reports).
  WireStats& operator+=(const WireStats& other);
};

// --- Payload codecs (io::Writer / io::Reader straight-line style) --------

void EncodeRequestPayload(const WireRequest& request, io::Writer* writer);
bool DecodeRequestPayload(io::Reader* reader, WireRequest* request,
                          std::string* error);

void EncodeResponsePayload(const WireResponse& response, io::Writer* writer);
bool DecodeResponsePayload(io::Reader* reader, WireResponse* response,
                           std::string* error);

void EncodeHealthPayload(const WireHealth& health, io::Writer* writer);
bool DecodeHealthPayload(io::Reader* reader, WireHealth* health,
                         std::string* error);

void EncodeStatsPayload(const WireStats& stats, io::Writer* writer);
bool DecodeStatsPayload(io::Reader* reader, WireStats* stats,
                        std::string* error);

// --- Frame assembly ------------------------------------------------------

// Appends one complete frame (header + payload) to *out.
void AppendFrame(FrameType type, uint64_t tag, Span<const uint8_t> payload,
                 std::vector<uint8_t>* out);

// Convenience wrappers that encode the payload and frame it in one step.
std::vector<uint8_t> EncodeRequestFrame(const WireRequest& request,
                                        uint64_t tag);
std::vector<uint8_t> EncodeResponseFrame(const WireResponse& response,
                                         uint64_t tag);
std::vector<uint8_t> EncodeHealthReplyFrame(const WireHealth& health,
                                            uint64_t tag);
std::vector<uint8_t> EncodeStatsReplyFrame(const WireStats& stats,
                                           uint64_t tag);
std::vector<uint8_t> EncodeEmptyFrame(FrameType type, uint64_t tag);
std::vector<uint8_t> EncodeErrorFrame(const std::string& message,
                                      uint64_t tag);

// Rewrites the tag field of an already-encoded frame in place (the router's
// re-tag path). `frame` must hold at least kHeaderBytes.
void RetagFrame(uint64_t tag, uint8_t* frame);

// --- Incremental decoding ------------------------------------------------

// Accumulates a connection's received bytes and yields complete frames.
// Validation order: magic -> version -> flags -> size bound -> CRC. The
// first violation makes the decoder sticky-fail (error()), after which
// Next() always returns nullopt — the connection is poisoned and should be
// closed after reporting the error, exactly the per-connection error
// containment the server promises for untrusted input.
class FrameDecoder {
 public:
  void Feed(const uint8_t* data, size_t size);

  // The next complete frame, or nullopt when more bytes are needed or the
  // stream is poisoned.
  std::optional<Frame> Next();

  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }
  // Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void Fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  std::string error_;
};

}  // namespace net
}  // namespace viptree

#endif  // VIPTREE_NET_WIRE_H_
