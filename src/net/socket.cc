#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdlib>

namespace viptree {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ParseHostPort(const std::string& endpoint, std::string* host,
                   uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 == endpoint.size()) {
    return false;
  }
  const std::string port_text = endpoint.substr(colon + 1);
  char* end = nullptr;
  const long value = std::strtol(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0 || value > 65535) {
    return false;
  }
  *host = colon == 0 ? std::string("127.0.0.1") : endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return true;
}

io::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return io::Status::Error(Errno("fcntl(O_NONBLOCK)"));
  }
  return io::Status::Ok();
}

io::Status ListenTcp(const std::string& bind_address, uint16_t port,
                     int backlog, Socket* out, uint16_t* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return io::Status::Error(Errno("socket"));

  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return io::Status::Error("unparsable bind address '" + bind_address +
                             "' (want an IPv4 literal, e.g. 127.0.0.1)");
  }
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return io::Status::Error(
        Errno("bind " + bind_address + ":" + std::to_string(port)));
  }
  if (::listen(sock.fd(), backlog) < 0) {
    return io::Status::Error(Errno("listen"));
  }
  if (io::Status status = SetNonBlocking(sock.fd()); !status.ok()) {
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return io::Status::Error(Errno("getsockname"));
    }
    *bound_port = ntohs(actual.sin_port);
  }
  *out = std::move(sock);
  return io::Status::Ok();
}

io::Status ConnectTcp(const std::string& endpoint, double timeout_ms,
                      Socket* out) {
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(endpoint, &host, &port)) {
    return io::Status::Error("unparsable endpoint '" + endpoint +
                             "' (want host:port)");
  }

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &resolved);
  if (rc != 0) {
    return io::Status::Error("resolve " + host + ": " + ::gai_strerror(rc));
  }

  io::Status status = io::Status::Error("connect " + endpoint + ": no route");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      status = io::Status::Error(Errno("socket"));
      continue;
    }
    // Connect non-blocking so the attempt can be bounded by poll(), then
    // flip back to blocking for the caller.
    if (io::Status nb = SetNonBlocking(sock.fd()); !nb.ok()) {
      status = std::move(nb);
      continue;
    }
    int result = ::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen);
    if (result < 0 && errno == EINPROGRESS) {
      pollfd pfd{sock.fd(), POLLOUT, 0};
      const int wait_ms =
          timeout_ms > 0.0 ? static_cast<int>(timeout_ms) : 10000;
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready <= 0) {
        status = io::Status::Error("connect " + endpoint + ": " +
                                   (ready == 0 ? "timed out"
                                               : std::strerror(errno)));
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        status = io::Status::Error("connect " + endpoint + ": " +
                                   std::strerror(so_error));
        continue;
      }
      result = 0;
    }
    if (result < 0) {
      status = io::Status::Error(Errno("connect " + endpoint));
      continue;
    }
    const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
    if (flags >= 0) ::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK);
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    *out = std::move(sock);
    ::freeaddrinfo(resolved);
    return io::Status::Ok();
  }
  ::freeaddrinfo(resolved);
  return status;
}

io::Status WakePipe::Create(WakePipe* out) {
  int fds[2];
  if (::pipe(fds) < 0) return io::Status::Error(Errno("pipe"));
  out->read_end = Socket(fds[0]);
  out->write_end = Socket(fds[1]);
  if (io::Status status = SetNonBlocking(fds[0]); !status.ok()) return status;
  if (io::Status status = SetNonBlocking(fds[1]); !status.ok()) return status;
  return io::Status::Ok();
}

void WakePipe::Wake() const {
  const char byte = 'w';
  // Non-blocking: a full pipe already guarantees a pending wakeup, and
  // write() keeps this callable from signal handlers.
  [[maybe_unused]] const ssize_t rc =
      ::write(write_end.fd(), &byte, sizeof(byte));
}

void WakePipe::Clear() const {
  char sink[256];
  while (::read(read_end.fd(), sink, sizeof(sink)) > 0) {
  }
}

}  // namespace net
}  // namespace viptree
