#include "engine/query_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "engine/exec_plan.h"
#include "engine/service.h"

namespace viptree {
namespace engine {

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kDistance:
      return "distance";
    case QueryType::kPath:
      return "path";
    case QueryType::kKnn:
      return "knn";
    case QueryType::kRange:
      return "range";
    case QueryType::kBooleanKnn:
      return "boolean-knn";
  }
  return "?";
}

Query Query::Distance(const IndoorPoint& s, const IndoorPoint& t) {
  Query q;
  q.type = QueryType::kDistance;
  q.source = s;
  q.target = t;
  return q;
}

Query Query::Path(const IndoorPoint& s, const IndoorPoint& t) {
  Query q;
  q.type = QueryType::kPath;
  q.source = s;
  q.target = t;
  return q;
}

Query Query::Knn(const IndoorPoint& q_point, size_t k) {
  Query q;
  q.type = QueryType::kKnn;
  q.source = q_point;
  q.k = k;
  return q;
}

Query Query::Range(const IndoorPoint& q_point, double radius) {
  Query q;
  q.type = QueryType::kRange;
  q.source = q_point;
  q.radius = radius;
  return q;
}

Query Query::BooleanKnn(const IndoorPoint& q_point, size_t k,
                        std::vector<std::string> keywords) {
  Query q;
  q.type = QueryType::kBooleanKnn;
  q.source = q_point;
  q.k = k;
  q.keywords = std::move(keywords);
  return q;
}

// The per-thread bundle of core query engines. Shares the engine's
// immutable indexes (read-only) plus, for object queries, the snapshot of
// the live object set pinned on the last Refresh; owns all the mutable
// Dijkstra scratch.
struct QueryEngine::Worker {
  VIPDistanceQuery distance;
  VIPPathQuery path;
  // The pinned epoch's reader. Rebuilt by Refresh only when a publish
  // happened since the last query through this worker.
  std::unique_ptr<SnapshotQuery> objects;

  explicit Worker(const QueryEngine& engine)
      : distance(engine.tree(), engine.bundle_->query_options(),
                 engine.cache_.get()),
        path(engine.tree(), engine.bundle_->query_options(),
             engine.cache_.get()) {}

  // Pins the current object snapshot: one shared_ptr atomic load per
  // query, a SnapshotQuery rebuild only on epoch change.
  SnapshotQuery& Refresh(const QueryEngine& engine) {
    std::shared_ptr<const ObjectSnapshot> current =
        engine.bundle_->live_objects().Acquire();
    if (objects == nullptr || objects->snapshot_ptr() != current) {
      objects = std::make_unique<SnapshotQuery>(
          engine.tree().base(), std::move(current),
          engine.bundle_->query_options(), engine.cache_.get());
    }
    return *objects;
  }
};

namespace {

// Node matrices a VIP distance/path query consults (§3.1): the source and
// target extended matrices plus the LCA matrix joining them, or just the
// shared leaf for a same-leaf query. Two array lookups — cheap enough to
// run per query without skewing latency.
size_t MatricesConsulted(const IPTree& tree, PartitionId s, PartitionId t) {
  return tree.LeafOfPartition(s) == tree.LeafOfPartition(t) ? 1 : 3;
}

}  // namespace

QueryEngine::QueryEngine(VenueBundle bundle)
    : bundle_(std::make_shared<VenueBundle>(std::move(bundle))) {
  cache_ = bundle_->distance_cache();
  RebuildWorker();
}

QueryEngine::QueryEngine(std::shared_ptr<const VenueBundle> bundle)
    : bundle_(std::move(bundle)) {
  VIPTREE_CHECK_MSG(bundle_ != nullptr,
                    "QueryEngine constructed over a null bundle");
  cache_ = bundle_->distance_cache();
  RebuildWorker();
}

QueryEngine::QueryEngine(Venue venue, std::vector<IndoorPoint> objects,
                         EngineOptions options)
    : QueryEngine(VenueBundle::Build(std::move(venue), std::move(objects),
                                     std::move(options))) {}

QueryEngine::QueryEngine(const Venue& venue, const D2DGraph& graph,
                         std::vector<IndoorPoint> objects,
                         EngineOptions options)
    : QueryEngine(VenueBundle::BuildFrom(venue, graph, std::move(objects),
                                         std::move(options))) {}

QueryEngine::~QueryEngine() = default;

io::Status QueryEngine::Save(const std::string& path) const {
  return bundle_->Save(path);
}

QueryEngine QueryEngine::Load(const std::string& path) {
  return QueryEngine(VenueBundle::Load(path));
}

std::unique_ptr<QueryEngine> QueryEngine::TryLoad(const std::string& path,
                                                  std::string* error) {
  std::optional<VenueBundle> bundle = VenueBundle::TryLoad(path, error);
  if (!bundle.has_value()) return nullptr;
  return std::unique_ptr<QueryEngine>(new QueryEngine(std::move(*bundle)));
}

void QueryEngine::SetObjects(
    std::vector<IndoorPoint> objects,
    std::vector<std::vector<std::string>> object_keywords) {
  bundle_->live_objects().SetObjects(std::move(objects),
                                     std::move(object_keywords));
}

std::optional<std::string> QueryEngine::ApplyObjectDelta(
    const ObjectDelta& delta) {
  return bundle_->live_objects().ApplyDelta(delta);
}

void QueryEngine::RebuildWorker() {
  main_worker_ = std::make_unique<Worker>(*this);
}

void QueryEngine::EnableDistanceCache(const DistanceCacheOptions& options) {
  DistanceCacheOptions resolved = options;
  if (resolved.capacity == 0) {
    resolved.capacity = AdaptiveCacheCapacity(venue().NumDoors());
  }
  SetDistanceCache(std::make_shared<DistanceCache>(resolved));
}

void QueryEngine::SetDistanceCache(std::shared_ptr<DistanceCache> cache) {
  cache_ = std::move(cache);
  // The resident worker's core engines captured the old raw pointer.
  RebuildWorker();
}

uint64_t QueryEngine::IndexMemoryBytes() const {
  return bundle_->IndexMemoryBytes();
}

Result QueryEngine::Execute(const Query& query, Worker& worker) const {
  Result result;
  result.type = query.type;
  SearchStats search_stats;
  const Timer timer;
  switch (query.type) {
    case QueryType::kDistance:
      result.distance = worker.distance.Distance(query.source, query.target);
      break;
    case QueryType::kPath: {
      IndoorPath path = worker.path.Path(query.source, query.target);
      result.distance = path.distance;
      result.doors = std::move(path.doors);
      break;
    }
    case QueryType::kKnn:
      result.objects =
          worker.Refresh(*this).Knn(query.source, query.k, &search_stats);
      break;
    case QueryType::kRange:
      result.objects = worker.Refresh(*this).Range(query.source, query.radius,
                                                   &search_stats);
      break;
    case QueryType::kBooleanKnn:
      // Empty (not fatal) on a snapshot without keywords: the serving
      // layer rejects such requests up front, and the epoch the worker
      // pins here may legitimately differ from the epoch it checked.
      result.objects = worker.Refresh(*this).BooleanKnn(
          query.source, query.k, query.keywords, &search_stats);
      break;
  }
  result.latency_micros = timer.ElapsedMicros();
  // Bookkeeping stays outside the timed region.
  if (query.type == QueryType::kDistance || query.type == QueryType::kPath) {
    result.visited_nodes = MatricesConsulted(
        tree().base(), query.source.partition, query.target.partition);
  } else {
    result.visited_nodes = search_stats.nodes_visited;
  }
  return result;
}

Result QueryEngine::Run(const Query& query) const {
  return Execute(query, *main_worker_);
}

std::vector<Result> QueryEngine::RunSequential(
    Span<const Query> queries) const {
  std::vector<Result> results;
  results.reserve(queries.size());
  for (const Query& q : queries) results.push_back(Run(q));
  return results;
}

std::vector<Result> QueryEngine::RunCoalesced(Span<const Query> queries,
                                              PlanStats* stats) const {
  std::vector<Result> results(queries.size());
  if (queries.empty()) return results;
  Worker& worker = *main_worker_;
  // One pinned snapshot serves every grouped kNN query; the fallback path
  // re-pins per query like Run does (same epoch unless a concurrent
  // publish lands mid-group, which per-query execution is equally exposed
  // to).
  const SnapshotQuery* objects = nullptr;
  for (const Query& q : queries) {
    if (q.type == QueryType::kKnn) {
      objects = &worker.Refresh(*this);
      break;
    }
  }
  const auto fallback = [&](const Query& q) { return Execute(q, worker); };
  const PlanStats plan =
      ExecutePlan(queries, worker.distance, objects, fallback, results);
  if (stats != nullptr) stats->Merge(plan);
  return results;
}

BatchResult QueryEngine::RunBatch(Span<const Query> queries,
                                  const BatchOptions& options) const {
  const size_t n = queries.size();
  size_t threads = ResolveThreadCount(options.num_threads);
  threads = std::min(threads, std::max<size_t>(1, n));

  BatchResult out;
  out.results.resize(n);
  const Timer wall;

  // Compatibility shim over the async front-end (engine/service.h): a
  // transient single-venue Service with `threads` workers answers the
  // whole batch. Each Service worker builds its own QueryEngine over the
  // shared bundle, so this never touches the resident worker and
  // concurrent RunBatch calls on one engine stay safe, exactly as before.
  if (n > 0) {
    ServiceOptions service_options;
    service_options.num_threads = threads;
    service_options.queue_capacity = n;  // nothing is ever rejected
    // The transient workers share this engine's cache (single venue, so
    // the venue-local door ids cannot alias).
    service_options.shared_cache = cache_;
    // Coalescing rides the same wiring: the whole batch is queued before
    // Start(), so workers pull full windows and the planner groups within
    // each pull.
    service_options.coalesce = options.coalesce;
    Service service(bundle_, service_options);
    std::vector<Request> requests;
    requests.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Request request;
      request.query = queries[i];
      request.tag = i;
      requests.push_back(std::move(request));
    }
    std::vector<Ticket> tickets = service.SubmitBatch(std::move(requests));
    service.Start();
    service.Drain();
    for (size_t i = 0; i < n; ++i) {
      Response response = tickets[i].Take();
      VIPTREE_CHECK_MSG(response.ok(),
                        ("batch query " + std::to_string(i) + " failed (" +
                         std::string(RequestStatusName(response.status)) +
                         "): " + response.error)
                            .c_str());
      // results[i] answers queries[i], independent of which worker ran it.
      out.results[i] = std::move(response.result);
    }
    const PlanStats plan = service.Stats().plan;
    service.Stop();
    out.stats = Aggregate(out.results, wall.ElapsedMillis(), threads);
    out.stats.plan = plan;
    return out;
  }

  out.stats = Aggregate(out.results, wall.ElapsedMillis(), threads);
  return out;
}

BatchStats QueryEngine::Aggregate(const std::vector<Result>& results,
                                  double wall_millis, size_t num_threads) {
  BatchStats stats;
  stats.num_queries = results.size();
  stats.num_threads = num_threads;
  stats.wall_millis = wall_millis;
  if (wall_millis > 0.0) {
    stats.queries_per_second = results.size() / (wall_millis / 1000.0);
  }
  std::vector<double> latencies;
  latencies.reserve(results.size());
  for (const Result& r : results) {
    latencies.push_back(r.latency_micros);
    stats.visited_nodes += r.visited_nodes;
  }
  stats.latency_micros = Summarize(latencies);
  return stats;
}

}  // namespace engine
}  // namespace viptree
