#include "engine/workload_text.h"

#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"

namespace viptree {
namespace engine {
namespace workload {

namespace {

void AppendPoint(std::string* out, const IndoorPoint& p) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%d %.17g %.17g %.17g", p.partition,
                p.position.x, p.position.y, p.position.z);
  *out += buf;
}

// "-" marks an empty keyword list so the emit -> parse round trip stays
// unambiguous (a bare trailing column would be swallowed by the tokenizer).
std::string JoinKeywords(const std::vector<std::string>& keywords) {
  if (keywords.empty()) return "-";
  std::string joined;
  for (const std::string& kw : keywords) {
    if (!joined.empty()) joined += ',';
    joined += kw;
  }
  return joined;
}

std::vector<std::string> SplitKeywords(const std::string& joined) {
  std::vector<std::string> list;
  if (joined == "-") return list;
  std::istringstream in(joined);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) list.push_back(token);
  }
  return list;
}

bool ParsePoint(std::istringstream& in, IndoorPoint* point) {
  return static_cast<bool>(in >> point->partition >> point->position.x >>
                           point->position.y >> point->position.z);
}

}  // namespace

std::string EmitLine(const Request& request) {
  std::string line;
  if (!request.venue_id.empty()) line = request.venue_id + " ";
  if (request.kind == RequestKind::kUpdateObjects) {
    const ObjectDelta& delta = request.delta;
    VIPTREE_CHECK_MSG(delta.size() == 1,
                      "the workload line grammar is one update operation "
                      "per line; split multi-op deltas before emitting");
    if (!delta.moves.empty()) {
      line += "move " + std::to_string(delta.moves[0].id) + " ";
      AppendPoint(&line, delta.moves[0].to);
    } else if (!delta.adds.empty()) {
      line += "add ";
      AppendPoint(&line, delta.adds[0].at);
      line += " " + JoinKeywords(delta.adds[0].keywords);
    } else {
      line += "remove " + std::to_string(delta.removes[0]);
    }
    return line;
  }
  const Query& q = request.query;
  switch (q.type) {
    case QueryType::kDistance:
    case QueryType::kPath:
      line += q.type == QueryType::kDistance ? "distance " : "path ";
      AppendPoint(&line, q.source);
      line += " ";
      AppendPoint(&line, q.target);
      break;
    case QueryType::kKnn:
      line += "knn ";
      AppendPoint(&line, q.source);
      line += " " + std::to_string(q.k);
      break;
    case QueryType::kRange: {
      line += "range ";
      AppendPoint(&line, q.source);
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %.17g", q.radius);
      line += buf;
      break;
    }
    case QueryType::kBooleanKnn:
      line += "bknn ";
      AppendPoint(&line, q.source);
      line += " " + std::to_string(q.k) + " " + JoinKeywords(q.keywords);
      break;
  }
  return line;
}

bool ParseLine(const std::string& line, bool with_venue, Request* request,
               std::string* error) {
  *request = Request{};
  std::istringstream in(line);
  if (with_venue && !(in >> request->venue_id)) {
    *error = "missing venue id";
    return false;
  }
  std::string type;
  if (!(in >> type)) {
    *error = "missing request type";
    return false;
  }

  // Update lines first: their leading column is an object id, not a point.
  if (type == "move") {
    ObjectDelta::Move move;
    if (!(in >> move.id) || !ParsePoint(in, &move.to)) {
      *error = "malformed move (want: move <id> <p> <x> <y> <z>)";
      return false;
    }
    request->kind = RequestKind::kUpdateObjects;
    request->delta.moves.push_back(move);
    return true;
  }
  if (type == "add") {
    ObjectDelta::Add add;
    std::string keywords;
    if (!ParsePoint(in, &add.at) || !(in >> keywords)) {
      *error = "malformed add (want: add <p> <x> <y> <z> <kw,...|->)";
      return false;
    }
    add.keywords = SplitKeywords(keywords);
    request->kind = RequestKind::kUpdateObjects;
    request->delta.adds.push_back(std::move(add));
    return true;
  }
  if (type == "remove") {
    ObjectId id = kInvalidId;
    if (!(in >> id)) {
      *error = "malformed remove (want: remove <id>)";
      return false;
    }
    request->kind = RequestKind::kUpdateObjects;
    request->delta.removes.push_back(id);
    return true;
  }

  IndoorPoint a;
  if (!ParsePoint(in, &a)) {
    *error = "malformed query point";
    return false;
  }
  if (type == "distance" || type == "path") {
    IndoorPoint b;
    if (!ParsePoint(in, &b)) {
      *error = "malformed target point";
      return false;
    }
    request->query =
        type == "distance" ? Query::Distance(a, b) : Query::Path(a, b);
  } else if (type == "knn") {
    size_t k = 0;
    if (!(in >> k)) {
      *error = "malformed k";
      return false;
    }
    request->query = Query::Knn(a, k);
  } else if (type == "range") {
    double radius = 0.0;
    if (!(in >> radius)) {
      *error = "malformed radius";
      return false;
    }
    request->query = Query::Range(a, radius);
  } else if (type == "bknn") {
    size_t k = 0;
    std::string keywords;
    if (!(in >> k >> keywords)) {
      *error = "malformed k/keywords";
      return false;
    }
    request->query = Query::BooleanKnn(a, k, SplitKeywords(keywords));
  } else {
    *error = "unknown request type '" + type + "'";
    return false;
  }
  return true;
}

}  // namespace workload
}  // namespace engine
}  // namespace viptree
