#include "engine/service.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace viptree {
namespace engine {

namespace {

// Latency/queue-time sample vectors stop growing here; counters keep
// counting. Far above any test or bench workload, and it bounds a
// long-lived service's stats memory at ~16 MB.
constexpr size_t kMaxStatSamples = size_t{1} << 20;

double MicrosBetween(ServiceClock::time_point from,
                     ServiceClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

RequestDeadline DeadlineAfterMillis(double millis) {
  return ServiceClock::now() +
         std::chrono::duration_cast<ServiceClock::duration>(
             std::chrono::duration<double, std::milli>(millis));
}

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case RequestStatus::kVenueNotFound:
      return "venue-not-found";
    case RequestStatus::kInvalidRequest:
      return "invalid-request";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

// Shared completion state behind a Ticket (and behind every callback
// submission, so Drain accounting is uniform). Written exactly once, by
// the thread that reaches the request's terminal state.
struct Ticket::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Response response;
  ResultCallback callback;  // null for ticket-style submissions
};

bool Ticket::Done() const {
  VIPTREE_CHECK_MSG(state_ != nullptr, "Done() on an invalid Ticket");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

const Response& Ticket::Wait() const {
  VIPTREE_CHECK_MSG(state_ != nullptr, "Wait() on an invalid Ticket");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  // `done` is terminal and the response is never rewritten, so the
  // reference stays valid after the lock is released.
  return state_->response;
}

const Response* Ticket::TryGet() const {
  VIPTREE_CHECK_MSG(state_ != nullptr, "TryGet() on an invalid Ticket");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done ? &state_->response : nullptr;
}

Response Ticket::Take() {
  Wait();
  return std::move(state_->response);
}

Service::Service(std::shared_ptr<const VenueBundle> bundle,
                 ServiceOptions options)
    : bundle_(std::move(bundle)),
      options_(options),
      num_threads_(ResolveThreadCount(options.num_threads)) {
  VIPTREE_CHECK_MSG(bundle_ != nullptr,
                    "Service constructed over a null bundle");
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
}

Service::Service(VenueRegistry registry, ServiceOptions options)
    : registry_(std::move(registry)),
      options_(options),
      num_threads_(ResolveThreadCount(options.num_threads)) {
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  // A shared cache cannot span venues: door/node ids are venue-local
  // dense integers, so one cache would alias unrelated keys. Multi-venue
  // services get per-venue caches via ServiceOptions::cache instead.
  VIPTREE_CHECK_MSG(options_.shared_cache == nullptr,
                    "shared_cache is only valid on a single-venue Service");
}

Service::~Service() { Stop(); }

VenueRegistry& Service::registry() {
  VIPTREE_CHECK_MSG(registry_.has_value(),
                    "registry() on a single-venue Service");
  return *registry_;
}

const VenueRegistry& Service::registry() const {
  VIPTREE_CHECK_MSG(registry_.has_value(),
                    "registry() on a single-venue Service");
  return *registry_;
}

void Service::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    VIPTREE_CHECK_MSG(!started_, "Service::Start() called twice");
    VIPTREE_CHECK_MSG(!stopped_, "Service::Start() after Stop()");
    started_ = true;
    start_time_ = ServiceClock::now();
  }
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Ticket Service::Submit(Request request) {
  return SubmitInternal(std::move(request), nullptr);
}

void Service::Submit(Request request, ResultCallback callback) {
  VIPTREE_CHECK_MSG(callback != nullptr,
                    "streaming Submit needs a non-null callback");
  SubmitInternal(std::move(request), std::move(callback));
}

Ticket Service::SubmitInternal(Request request, ResultCallback callback) {
  auto state = std::make_shared<Ticket::State>();
  state->callback = std::move(callback);
  Item item{std::move(request), ServiceClock::now(), state};

  bool accepted = false;
  bool was_accepting = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_accepting = accepting_;
    accepted = accepting_ && queue_.size() < options_.queue_capacity;
    if (accepted) {
      ++pending_;
      queue_.push_back(std::move(item));
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++submitted_;
  }
  if (accepted) {
    queue_cv_.notify_one();
  } else {
    Response response;
    response.status = RequestStatus::kRejected;
    response.tag = item.request.tag;
    response.venue_id = item.request.venue_id;
    response.error = was_accepting
                         ? "request queue is full (capacity " +
                               std::to_string(options_.queue_capacity) + ")"
                         : "service is stopped";
    Finalize(state, std::move(response));
  }
  Ticket ticket;
  ticket.state_ = std::move(state);
  return ticket;
}

std::vector<Ticket> Service::SubmitBatch(std::vector<Request> requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  std::vector<Item> rejected;

  const ServiceClock::time_point now = ServiceClock::now();
  bool was_accepting = false;
  size_t accepted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_accepting = accepting_;
    for (Request& request : requests) {
      auto state = std::make_shared<Ticket::State>();
      Ticket ticket;
      ticket.state_ = state;
      tickets.push_back(std::move(ticket));
      Item item{std::move(request), now, std::move(state)};
      if (accepting_ && queue_.size() < options_.queue_capacity) {
        ++pending_;
        ++accepted;
        queue_.push_back(std::move(item));
      } else {
        rejected.push_back(std::move(item));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    submitted_ += requests.size();
  }
  if (accepted > 0) queue_cv_.notify_all();
  for (Item& item : rejected) {
    Response response;
    response.status = RequestStatus::kRejected;
    response.tag = item.request.tag;
    response.venue_id = item.request.venue_id;
    response.error = was_accepting
                         ? "request queue is full (capacity " +
                               std::to_string(options_.queue_capacity) + ")"
                         : "service is stopped";
    Finalize(item.state, std::move(response));
  }
  return tickets;
}

void Service::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  VIPTREE_CHECK_MSG(started_ || stopped_ || pending_ == 0,
                    "Service::Drain() with queued work before Start(): "
                    "nothing would ever drain it");
  drain_cv_.wait(lock, [this] { return pending_ == 0; });
}

void Service::Stop() {
  std::deque<Item> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    accepting_ = false;
    stopping_ = true;
    orphaned.swap(queue_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  const ServiceClock::time_point now = ServiceClock::now();
  for (Item& item : orphaned) {
    Response response;
    response.status = RequestStatus::kCancelled;
    response.tag = item.request.tag;
    response.venue_id = item.request.venue_id;
    response.queue_micros = MicrosBetween(item.enqueued, now);
    response.error = "service stopped before the request ran";
    Finalize(item.state, std::move(response));
  }
  if (!orphaned.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ -= orphaned.size();
    if (pending_ == 0) drain_cv_.notify_all();
  }
}

void Service::WorkerLoop() {
  // This worker's engines, one per venue it has served: the shared
  // immutable bundle plus this thread's private query scratch.
  std::map<std::string, std::unique_ptr<QueryEngine>> engines;
  const size_t window = std::max<size_t>(1, options_.coalesce.window);
  std::vector<Item> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_, and nothing left to do
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Coalescing pull: extend with the contiguous run of already-queued
      // queries for the same venue, under the same lock hold. An update
      // (or another venue's request) ends the run, so the per-venue
      // query/update order a sequential worker would execute is preserved
      // exactly — queries queued before an update still see the old object
      // epoch, queries after it the new one.
      if (options_.coalesce.enabled &&
          batch.front().request.kind == RequestKind::kQuery) {
        while (batch.size() < window && !queue_.empty() &&
               queue_.front().request.kind == RequestKind::kQuery &&
               queue_.front().request.venue_id ==
                   batch.front().request.venue_id) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
    }
    const size_t count = batch.size();
    if (count == 1) {
      Process(std::move(batch.front()), &engines);
    } else {
      ProcessGroup(std::move(batch), &engines);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_ -= count;
      if (pending_ == 0) drain_cv_.notify_all();
    }
  }
}

void Service::Process(
    Item item, std::map<std::string, std::unique_ptr<QueryEngine>>* engines) {
  const ServiceClock::time_point start = ServiceClock::now();
  Response response;
  response.kind = item.request.kind;
  response.tag = item.request.tag;
  response.venue_id = item.request.venue_id;
  response.queue_micros = MicrosBetween(item.enqueued, start);

  if (start >= item.request.deadline) {
    // Shed without running: the answer is already too late to matter.
    response.status = RequestStatus::kDeadlineExceeded;
    response.error = "deadline passed after " +
                     std::to_string(response.queue_micros) +
                     " us in the queue";
  } else {
    std::string error;
    QueryEngine* engine =
        ResolveEngine(item.request.venue_id, engines, &error);
    if (engine == nullptr) {
      response.status = RequestStatus::kVenueNotFound;
      response.error = std::move(error);
    } else if (item.request.kind == RequestKind::kUpdateObjects) {
      // Updates route exactly like queries; the venue's LiveObjectIndex
      // serializes concurrent updates internally and queries keep reading
      // their pinned snapshots, so nothing here needs the queue lock.
      RunUpdate(item.request.delta, engine, &response);
    } else if (!ValidateQuery(item.request.query, *engine, &error)) {
      // A server fails the request, never the process: unvalidated input
      // (serve-mode lines, remote clients) must not reach the engine's
      // CHECKs or index arrays.
      response.status = RequestStatus::kInvalidRequest;
      response.error = std::move(error);
    } else {
      response.result = engine->Run(item.request.query);
      response.status = RequestStatus::kOk;
    }
  }
  Finalize(item.state, std::move(response));
}

void Service::ProcessGroup(
    std::vector<Item> items,
    std::map<std::string, std::unique_ptr<QueryEngine>>* engines) {
  const ServiceClock::time_point start = ServiceClock::now();
  const size_t n = items.size();
  std::vector<Response> responses(n);
  for (size_t i = 0; i < n; ++i) {
    responses[i].kind = items[i].request.kind;
    responses[i].tag = items[i].request.tag;
    responses[i].venue_id = items[i].request.venue_id;
    responses[i].queue_micros = MicrosBetween(items[i].enqueued, start);
  }

  // The pull guaranteed one venue, so resolve it once for the group.
  std::string resolve_error;
  QueryEngine* engine =
      ResolveEngine(items.front().request.venue_id, engines, &resolve_error);

  // Per-item admission keeps the single-item semantics: deadline shed at
  // pickup (sharing one `start` — exactly the moment a sequential worker
  // would have reached the earliest of them, and never later for the
  // rest) and per-query validation. Only the runnable remainder is
  // planned.
  std::vector<size_t> runnable;
  runnable.reserve(n);
  std::vector<Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Response& response = responses[i];
    if (start >= items[i].request.deadline) {
      response.status = RequestStatus::kDeadlineExceeded;
      response.error = "deadline passed after " +
                       std::to_string(response.queue_micros) +
                       " us in the queue";
      continue;
    }
    if (engine == nullptr) {
      response.status = RequestStatus::kVenueNotFound;
      response.error = resolve_error;
      continue;
    }
    std::string error;
    if (!ValidateQuery(items[i].request.query, *engine, &error)) {
      response.status = RequestStatus::kInvalidRequest;
      response.error = std::move(error);
      continue;
    }
    runnable.push_back(i);
    queries.push_back(items[i].request.query);
  }

  if (!runnable.empty()) {
    PlanStats plan;
    std::vector<Result> results = engine->RunCoalesced(
        Span<const Query>(queries.data(), queries.size()), &plan);
    for (size_t j = 0; j < runnable.size(); ++j) {
      responses[runnable[j]].result = std::move(results[j]);
      responses[runnable[j]].status = RequestStatus::kOk;
    }
    if (!plan.empty()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      plan_stats_.Merge(plan);
    }
  }

  // Finalize in queue order: streaming callbacks observe the same
  // delivery order a sequential worker would produce.
  for (size_t i = 0; i < n; ++i) {
    Finalize(items[i].state, std::move(responses[i]));
  }
}

size_t Service::WaitAll(const std::vector<Ticket>& tickets) {
  size_t ok = 0;
  for (const Ticket& ticket : tickets) {
    if (!ticket.valid()) continue;
    if (ticket.Wait().ok()) ++ok;
  }
  return ok;
}

void Service::RunUpdate(const ObjectDelta& delta, QueryEngine* engine,
                        Response* response) {
  const Timer timer;
  // ApplyObjectDelta validates before mutating (unknown ids, out-of-range
  // partitions, double-removes, …): a rejected delta publishes nothing,
  // so it maps to kInvalidRequest just like a malformed query.
  std::optional<std::string> error = engine->ApplyObjectDelta(delta);
  response->result.latency_micros = timer.ElapsedMicros();
  if (error.has_value()) {
    response->status = RequestStatus::kInvalidRequest;
    response->error = std::move(*error);
  } else {
    response->status = RequestStatus::kOk;
  }
}

bool Service::ValidateQuery(const Query& query, const QueryEngine& engine,
                            std::string* error) {
  const size_t num_partitions = engine.venue().NumPartitions();
  const auto valid_point = [num_partitions](const IndoorPoint& point) {
    return point.partition >= 0 &&
           static_cast<size_t>(point.partition) < num_partitions;
  };
  if (!valid_point(query.source)) {
    *error = "source partition " + std::to_string(query.source.partition) +
             " is out of range (venue has " +
             std::to_string(num_partitions) + " partitions)";
    return false;
  }
  if ((query.type == QueryType::kDistance ||
       query.type == QueryType::kPath) &&
      !valid_point(query.target)) {
    *error = "target partition " + std::to_string(query.target.partition) +
             " is out of range (venue has " +
             std::to_string(num_partitions) + " partitions)";
    return false;
  }
  if (query.type == QueryType::kBooleanKnn && !engine.has_keywords()) {
    *error = "venue has no keyword index; boolean-knn queries need a "
             "snapshot built with object keywords";
    return false;
  }
  return true;
}

QueryEngine* Service::ResolveEngine(
    const std::string& venue_id,
    std::map<std::string, std::unique_ptr<QueryEngine>>* engines,
    std::string* error) {
  std::shared_ptr<const VenueBundle> bundle;
  if (!registry_.has_value()) {
    if (!venue_id.empty()) {
      *error = "this service serves a single venue; request names '" +
               venue_id + "'";
      return nullptr;
    }
    bundle = bundle_;
  } else {
    bundle = registry_->Acquire(venue_id, error);
    if (bundle == nullptr) return nullptr;
  }
  std::unique_ptr<QueryEngine>& slot = (*engines)[venue_id];
  // Rebuild when the registry re-loaded the venue since this worker last
  // served it (eviction + re-Acquire hands out a fresh bundle); comparing
  // bundle addresses also releases this worker's pin on the evicted one.
  if (slot == nullptr || &slot->bundle() != bundle.get()) {
    std::shared_ptr<DistanceCache> cache = CacheFor(venue_id, bundle);
    slot = std::make_unique<QueryEngine>(std::move(bundle));
    if (cache != nullptr) slot->SetDistanceCache(std::move(cache));
  }
  // Honour the registry's residency cap here too: cached engines pin their
  // bundles, so once this worker's cache outgrows the cap, drop engines
  // whose venue the registry has since evicted — otherwise worker caches
  // would quietly grow toward manifest size and defeat the LRU policy.
  const size_t cap =
      registry_.has_value() ? registry_->max_resident_venues() : 0;
  if (cap != 0 && engines->size() > cap) {
    for (auto it = engines->begin(); it != engines->end();) {
      if (it->first != venue_id && !registry_->IsResident(it->first)) {
        it = engines->erase(it);
      } else {
        ++it;
      }
    }
  }
  return engines->at(venue_id).get();
}

std::shared_ptr<DistanceCache> Service::CacheFor(
    const std::string& venue_id,
    const std::shared_ptr<const VenueBundle>& bundle) {
  if (options_.shared_cache != nullptr) return options_.shared_cache;
  if (!options_.cache.enabled) return nullptr;
  DistanceCacheOptions resolved = options_.cache;
  if (resolved.capacity == 0) {
    resolved.capacity = AdaptiveCacheCapacity(bundle->venue().NumDoors());
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (options_.cache_scope == ServiceOptions::CacheScope::kPerWorker) {
    auto cache = std::make_shared<DistanceCache>(resolved);
    worker_caches_.push_back(cache);
    return cache;
  }
  VenueCache& entry = venue_caches_[venue_id];
  if (entry.cache == nullptr || entry.bundle.lock() != bundle) {
    // First touch, or the registry handed out a fresh bundle instance
    // (eviction + reload): the snapshot file may have changed on disk, so
    // start a clean cache rather than trust file identity.
    entry.cache = std::make_shared<DistanceCache>(resolved);
    entry.bundle = bundle;
  }
  return entry.cache;
}

void Service::Finalize(const std::shared_ptr<Ticket::State>& state,
                       Response response) {
  RecordStats(response);
  ResultCallback callback;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->response = std::move(response);
    state->done = true;
    callback = std::move(state->callback);
  }
  state->cv.notify_all();
  // Outside the state lock: callbacks may Submit, allocate, block.
  // Callback-style submissions expose no Ticket, so reading the stored
  // response unlocked is safe (done is terminal, nobody else writes).
  if (callback) callback(state->response);
}

void Service::RecordStats(const Response& response) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (response.status) {
    case RequestStatus::kOk:
      if (response.kind == RequestKind::kUpdateObjects) {
        ++updates_;
        ++per_venue_[response.venue_id].updated;
        if (update_samples_.size() < kMaxStatSamples) {
          update_samples_.push_back(response.result.latency_micros);
        }
        break;
      }
      ++completed_;
      ++per_venue_[response.venue_id].completed;
      visited_nodes_ += response.result.visited_nodes;
      if (latency_samples_.size() < kMaxStatSamples) {
        latency_samples_.push_back(response.result.latency_micros);
      }
      break;
    case RequestStatus::kDeadlineExceeded:
      ++expired_;
      ++per_venue_[response.venue_id].expired;
      break;
    case RequestStatus::kVenueNotFound:
    case RequestStatus::kInvalidRequest:
      ++failed_;
      ++per_venue_[response.venue_id].failed;
      break;
    case RequestStatus::kRejected:
      ++rejected_;
      return;  // never queued: no queue-time sample
    case RequestStatus::kCancelled:
      ++cancelled_;
      break;
  }
  if (queue_samples_.size() < kMaxStatSamples) {
    queue_samples_.push_back(response.queue_micros);
  }
}

ServiceStats Service::Stats() const {
  ServiceStats stats;
  bool started = false;
  ServiceClock::time_point start_time{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
    started = started_;
    start_time = start_time_;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats.num_queries = completed_;
  stats.num_threads = num_threads_;
  if (started) {
    stats.wall_millis =
        MicrosBetween(start_time, ServiceClock::now()) / 1000.0;
    if (stats.wall_millis > 0.0) {
      stats.queries_per_second =
          static_cast<double>(completed_) / (stats.wall_millis / 1000.0);
    }
  }
  stats.latency_micros = Summarize(latency_samples_);
  stats.visited_nodes = visited_nodes_;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.expired = expired_;
  stats.cancelled = cancelled_;
  stats.failed = failed_;
  stats.updates = updates_;
  stats.update_micros = Summarize(update_samples_);
  stats.queue_micros = Summarize(queue_samples_);
  stats.per_venue = per_venue_;
  stats.plan = plan_stats_;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    if (options_.shared_cache != nullptr) {
      stats.cache += options_.shared_cache->Counters();
    }
    for (const auto& [venue, entry] : venue_caches_) {
      (void)venue;
      stats.cache += entry.cache->Counters();
    }
    for (const auto& cache : worker_caches_) {
      stats.cache += cache->Counters();
    }
  }
  return stats;
}

}  // namespace engine
}  // namespace viptree
