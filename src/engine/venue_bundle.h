// One venue's complete, self-contained serving state: the venue model, its
// D2D graph, the VIP-Tree and the object/keyword indexes, all *owned* in one
// movable unit. This replaces the historical contract where QueryEngine
// borrowed the venue and graph from the caller ("must outlive the engine") —
// a dangling-reference hazard the bundle removes for good.
//
// Bundles come from two places:
//   * VenueBundle::Build — run full index construction (the expensive path
//     the paper's Fig. 8 measures);
//   * VenueBundle::Load / TryLoad — deserialize a snapshot previously
//     written by Save, skipping construction entirely. Build once offline,
//     load the immutable artifact into every serving process.
//
// Snapshot loads come in two flavours. A format-v2 snapshot is memory-
// mapped (io/mmap_arena.h) and the index buffers alias the mapped file —
// zero-copy, so standing up a venue costs O(resident-pages) instead of a
// private copy of the whole index; the bundle keeps the arena alive for as
// long as any index aliases it. Format-v1 snapshots (and hosts where
// aliasing is impossible) take the copying path: every buffer is
// deserialized into owned memory, exactly as before.
//
// All members live behind stable heap storage, so moving a bundle never
// invalidates the internal venue/graph/tree cross-references.

#ifndef VIPTREE_ENGINE_VENUE_BUNDLE_H_
#define VIPTREE_ENGINE_VENUE_BUNDLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/distance_cache.h"
#include "core/keyword_query.h"
#include "core/live_objects.h"
#include "core/object_index.h"
#include "core/vip_tree.h"
#include "graph/d2d_graph.h"
#include "io/binary_io.h"
#include "io/mmap_arena.h"
#include "io/snapshot.h"
#include "model/venue.h"

namespace viptree {
namespace engine {

struct EngineOptions {
  IPTreeOptions tree;
  DistanceQueryOptions query;
  // Cross-request distance cache (core/distance_cache.h). Off by default;
  // when cache.enabled the bundle owns one cache that every engine over it
  // shares. Not part of DistanceQueryOptions because that struct is
  // serialized into snapshots — whether a host caches is a serving-time
  // decision, not a property of the index (loaded bundles opt in through
  // VenueBundle::EnableDistanceCache).
  DistanceCacheOptions cache;
  // When non-empty, must align with the object set; enables kBooleanKnn.
  std::vector<std::vector<std::string>> object_keywords;
};

// Knobs of the snapshot load path (namespace-scope so it can appear in
// default arguments of VenueBundle's own members).
struct SnapshotLoadOptions {
  // Map the file instead of reading it (v2 snapshots only; v1 always
  // copies). Benchmarks force this off to measure the copying path.
  bool use_mmap = true;
  // Verify every section's CRC-32 before decoding. Costs one sequential
  // pass over the file; turn off only for snapshots whose integrity is
  // guaranteed elsewhere.
  bool verify_checksums = true;
  // Run the per-cell matrix/edge validation sweep on v2 snapshots (v1
  // loads always run it, preserving their historical behaviour). Off by
  // default: the checksums already reject accidental corruption, and the
  // sweep would fault in every page of the mapped index. The default
  // therefore trusts the *producer*: a crafted v2 file with consistent
  // CRCs but out-of-range next-hop/edge cells would only be caught at
  // query time. Set this when loading snapshots from producers you do not
  // control.
  bool deep_validate = false;
  // Paging hint forwarded to the snapshot mapping (io/mmap_arena.h):
  // kRandom for point-query serving, kSequential for one-pass scans,
  // kDontneedOnRelease to let VenueRegistry eviction return the mapped
  // pages to the OS even while callers still hold bundle references.
  io::MadvisePolicy madvise = io::MadvisePolicy::kNormal;
};

class VenueBundle {
 public:
  using LoadOptions = SnapshotLoadOptions;

  // Full index construction over a venue the bundle takes ownership of.
  // The first overload derives the D2D graph from the venue geometry; the
  // second adopts an explicitly weighted graph (imported venues, the
  // paper's running example).
  static VenueBundle Build(Venue venue, std::vector<IndoorPoint> objects,
                           EngineOptions options = {});
  static VenueBundle Build(Venue venue, D2DGraph graph,
                           std::vector<IndoorPoint> objects,
                           EngineOptions options = {});

  // Like Build, but deep-copies `venue` and `graph` into the bundle — for
  // callers that keep one venue and stand up several engines over it (the
  // benchmark harness, the baseline comparison engines).
  static VenueBundle BuildFrom(const Venue& venue, const D2DGraph& graph,
                               std::vector<IndoorPoint> objects,
                               EngineOptions options = {});

  // Snapshot persistence (io/snapshot.h format; Save writes format v2
  // unless told otherwise). Save serializes the *live* object set: after
  // updates, removed objects are dropped and the survivors get dense
  // renumbered ids, so the on-disk format never sees overlays or
  // tombstones (see LiveObjectIndex::PackedParts). Save reports failures
  // as a Status; TryLoad
  // reports them as nullopt plus a human-readable message in *error
  // (truncation, corruption, version skew, structural inconsistency); Load
  // aborts with that message (for callers who treat the snapshot as
  // trusted infrastructure).
  io::Status Save(const std::string& path,
                  const io::SnapshotWriteOptions& options = {}) const;
  static std::optional<VenueBundle> TryLoad(const std::string& path,
                                            std::string* error,
                                            const LoadOptions& options = {});
  static VenueBundle Load(const std::string& path,
                          const LoadOptions& options = {});

  VenueBundle(VenueBundle&&) = default;
  VenueBundle& operator=(VenueBundle&&) = default;

  const Venue& venue() const { return *venue_; }
  const D2DGraph& graph() const { return *graph_; }
  const VIPTree& tree() const { return *tree_; }
  const DistanceQueryOptions& query_options() const { return query_options_; }

  // The live (epoch-published) object store. Returned non-const from a
  // const bundle on purpose: LiveObjectIndex is internally synchronized,
  // so updates are legal on shared registry bundles — that is the whole
  // serving path for object updates.
  LiveObjectIndex& live_objects() const { return *live_; }

  // Inspection views of the *current* epoch (the packed base index and
  // its keyword index). Valid until the next publish; query paths must
  // pin a snapshot via live_objects().Acquire() instead.
  const ObjectIndex& objects() const { return live_->current_base(); }
  bool has_keywords() const { return live_->has_keywords(); }
  const KeywordIndex& keyword_index() const {
    return live_->current_keywords();
  }

  // True when the indexes alias a mapped (or heap-read) snapshot arena
  // instead of owning private copies — i.e. the zero-copy load path ran.
  bool zero_copy() const { return arena_ != nullptr; }

  // Returns the snapshot mapping's resident pages to the OS (see
  // io::MmapArena::DropResidentPages); later queries transparently
  // re-fault the pages they touch. Returns the bytes advised — 0 for
  // built bundles, copying loads, and heap-backed arenas. Safe to call
  // concurrently with queries on this bundle.
  size_t ReleaseResidentPages() const {
    return arena_ != nullptr ? arena_->DropResidentPages() : 0;
  }

  // Replaces the object set (and keyword lists) without rebuilding the
  // tree, publishing one new epoch. Safe to call concurrently with
  // queries: in-flight readers keep answering against the snapshot they
  // pinned; later queries see the new set.
  void SetObjects(std::vector<IndoorPoint> objects,
                  std::vector<std::vector<std::string>> object_keywords = {});

  // Combined logical footprint of the owned indexes (tree + objects +
  // keywords), excluding the venue/graph source data. For a zero-copy
  // bundle most of these bytes are file-backed arena pages, resident only
  // once touched.
  uint64_t IndexMemoryBytes() const;

  // The bundle-owned distance cache, nullptr when caching is off. Shared
  // by every QueryEngine adopting this bundle; the cache is internally
  // thread-safe and exact, so sharing is free of coherence concerns.
  const std::shared_ptr<DistanceCache>& distance_cache() const {
    return cache_;
  }

  // Creates (or replaces) the bundle-owned cache — the opt-in for loaded
  // snapshots, whose EngineOptions never existed. Replaces any previous
  // cache; engines adopt it at construction, so enable before standing up
  // engines. options.enabled is ignored here (calling *is* enabling).
  void EnableDistanceCache(const DistanceCacheOptions& options = {});

 private:
  VenueBundle() = default;

  static VenueBundle Assemble(std::unique_ptr<Venue> venue,
                              std::unique_ptr<D2DGraph> graph,
                              std::vector<IndoorPoint> objects,
                              EngineOptions options);

  // The snapshot arena the indexes may alias. Declared first so it is
  // destroyed last — after every index that may hold views into it.
  std::shared_ptr<io::MmapArena> arena_;
  std::unique_ptr<Venue> venue_;
  std::unique_ptr<D2DGraph> graph_;
  std::unique_ptr<VIPTree> tree_;
  std::unique_ptr<LiveObjectIndex> live_;
  std::shared_ptr<DistanceCache> cache_;
  DistanceQueryOptions query_options_;
};

}  // namespace engine
}  // namespace viptree

#endif  // VIPTREE_ENGINE_VENUE_BUNDLE_H_
