// One venue's complete, self-contained serving state: the venue model, its
// D2D graph, the VIP-Tree and the object/keyword indexes, all *owned* in one
// movable unit. This replaces the historical contract where QueryEngine
// borrowed the venue and graph from the caller ("must outlive the engine") —
// a dangling-reference hazard the bundle removes for good.
//
// Bundles come from two places:
//   * VenueBundle::Build — run full index construction (the expensive path
//     the paper's Fig. 8 measures);
//   * VenueBundle::Load / TryLoad — deserialize a snapshot previously
//     written by Save, skipping construction entirely. Build once offline,
//     load the immutable artifact into every serving process.
//
// All members live behind stable heap storage, so moving a bundle never
// invalidates the internal venue/graph/tree cross-references.

#ifndef VIPTREE_ENGINE_VENUE_BUNDLE_H_
#define VIPTREE_ENGINE_VENUE_BUNDLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/keyword_query.h"
#include "core/object_index.h"
#include "core/vip_tree.h"
#include "graph/d2d_graph.h"
#include "io/binary_io.h"
#include "model/venue.h"

namespace viptree {
namespace engine {

struct EngineOptions {
  IPTreeOptions tree;
  DistanceQueryOptions query;
  // When non-empty, must align with the object set; enables kBooleanKnn.
  std::vector<std::vector<std::string>> object_keywords;
};

class VenueBundle {
 public:
  // Full index construction over a venue the bundle takes ownership of.
  // The first overload derives the D2D graph from the venue geometry; the
  // second adopts an explicitly weighted graph (imported venues, the
  // paper's running example).
  static VenueBundle Build(Venue venue, std::vector<IndoorPoint> objects,
                           EngineOptions options = {});
  static VenueBundle Build(Venue venue, D2DGraph graph,
                           std::vector<IndoorPoint> objects,
                           EngineOptions options = {});

  // Like Build, but deep-copies `venue` and `graph` into the bundle — for
  // callers that keep one venue and stand up several engines over it (the
  // benchmark harness, the baseline comparison engines).
  static VenueBundle BuildFrom(const Venue& venue, const D2DGraph& graph,
                               std::vector<IndoorPoint> objects,
                               EngineOptions options = {});

  // Snapshot persistence (io/snapshot.h format). Save reports failures as a
  // Status; TryLoad reports them as nullopt plus a human-readable message in
  // *error (truncation, corruption, version skew, structural inconsistency);
  // Load aborts with that message (for callers who treat the snapshot as
  // trusted infrastructure).
  io::Status Save(const std::string& path) const;
  static std::optional<VenueBundle> TryLoad(const std::string& path,
                                            std::string* error);
  static VenueBundle Load(const std::string& path);

  VenueBundle(VenueBundle&&) = default;
  VenueBundle& operator=(VenueBundle&&) = default;

  const Venue& venue() const { return *venue_; }
  const D2DGraph& graph() const { return *graph_; }
  const VIPTree& tree() const { return *tree_; }
  const ObjectIndex& objects() const { return *objects_; }
  bool has_keywords() const { return keywords_ != nullptr; }
  const KeywordIndex& keyword_index() const { return *keywords_; }
  const DistanceQueryOptions& query_options() const { return query_options_; }

  // Replaces the object set (and keyword lists) without rebuilding the
  // tree. Callers must serialize this with queries; QueryEngine enforces
  // the RunBatch half of that contract.
  void SetObjects(std::vector<IndoorPoint> objects,
                  std::vector<std::vector<std::string>> object_keywords = {});

  // Combined footprint of the owned indexes (tree + objects + keywords),
  // excluding the venue/graph source data.
  uint64_t IndexMemoryBytes() const;

 private:
  VenueBundle() = default;

  static VenueBundle Assemble(std::unique_ptr<Venue> venue,
                              std::unique_ptr<D2DGraph> graph,
                              std::vector<IndoorPoint> objects,
                              EngineOptions options);

  std::unique_ptr<Venue> venue_;
  std::unique_ptr<D2DGraph> graph_;
  std::unique_ptr<VIPTree> tree_;
  std::unique_ptr<ObjectIndex> objects_;
  std::unique_ptr<KeywordIndex> keywords_;  // null when no keywords
  DistanceQueryOptions query_options_;
};

}  // namespace engine
}  // namespace viptree

#endif  // VIPTREE_ENGINE_VENUE_BUNDLE_H_
