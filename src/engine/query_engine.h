// The serving layer over the paper's indexes: a façade that owns one
// venue's complete serving state (an engine::VenueBundle — venue, D2D
// graph, VIP-Tree, object/keyword indexes) and answers every query type of
// §3 (shortest distance, shortest path, kNN, range, boolean spatial
// keyword) through a single typed Query/Result API.
//
// Ownership model. The engine owns its bundle outright: there is no
// "venue must outlive the engine" contract anymore. Engines are built from
// a moved-in venue, adopted from a pre-built bundle, or — the production
// path — loaded from a snapshot written by Save() (build the index once
// offline, load the immutable artifact into each serving process).
//
// Concurrency model. The venue/graph/tree indexes are immutable after
// construction; the object set is *live* (core/live_objects.h): writers
// publish immutable ObjectSnapshots through an RCU-style shared_ptr swap,
// and every worker pins the current snapshot per query, so SetObjects /
// ApplyObjectDelta run genuinely concurrent with queries — no overlap
// CHECKs, no reader locks. Each query observes exactly one epoch: either
// entirely the old object set or entirely the new one, never a mix. All
// remaining per-query mutable state lives in small per-thread Worker
// bundles (the core query engines with their Dijkstra scratch — see the
// thread-safety contract in core/distance_query.h). RunBatch is a
// compatibility shim over the async serving front-end (engine/service.h):
// it stands up a transient single-venue Service whose resident workers
// answer the batch, then folds the responses back into the original
// results[i]-answers-queries[i] contract.
//
// Every Result carries its own latency and visited-node counters;
// RunBatch aggregates them into a BatchStats (common/stats Summary), the
// FESTIval-style "uniform query façade that also collects statistics".

#ifndef VIPTREE_ENGINE_QUERY_ENGINE_H_
#define VIPTREE_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/stats.h"
#include "core/keyword_query.h"
#include "engine/exec_plan.h"
#include "core/knn_query.h"
#include "core/live_objects.h"
#include "core/object_index.h"
#include "core/path_query.h"
#include "core/vip_tree.h"
#include "engine/venue_bundle.h"

namespace viptree {
namespace engine {

enum class QueryType : uint8_t {
  kDistance,    // §3.1: shortest indoor distance s -> t
  kPath,        // §3.2/§3.3: distance plus full door sequence
  kKnn,         // §3.4 Algorithm 5: k nearest indexed objects
  kRange,       // §3.4: all objects within a network radius
  kBooleanKnn,  // §1.3: k nearest objects holding all query keywords
};

const char* QueryTypeName(QueryType type);

// One typed query. Build through the factory helpers; unused fields keep
// their defaults and are ignored by the engine.
struct Query {
  QueryType type = QueryType::kDistance;
  IndoorPoint source;
  IndoorPoint target;                 // kDistance / kPath
  size_t k = 1;                       // kKnn / kBooleanKnn
  double radius = 0.0;                // kRange
  std::vector<std::string> keywords;  // kBooleanKnn

  static Query Distance(const IndoorPoint& s, const IndoorPoint& t);
  static Query Path(const IndoorPoint& s, const IndoorPoint& t);
  static Query Knn(const IndoorPoint& q, size_t k);
  static Query Range(const IndoorPoint& q, double radius);
  static Query BooleanKnn(const IndoorPoint& q, size_t k,
                          std::vector<std::string> keywords);
};

struct Result {
  QueryType type = QueryType::kDistance;
  // kDistance / kPath: the shortest network distance (kInfDistance when
  // unreachable). Unused for object queries.
  double distance = kInfDistance;
  // kPath only: the door sequence (empty when the route stays inside one
  // partition).
  std::vector<DoorId> doors;
  // kKnn / kRange / kBooleanKnn: matching objects, ascending by distance.
  std::vector<ObjectResult> objects;

  // Per-query statistics.
  double latency_micros = 0.0;
  // Tree nodes examined: node matrices consulted for distance/path queries
  // (1 same-leaf, 3 cross-leaf: source + target extended matrices plus the
  // LCA), heap pops of Algorithm 5 for object queries.
  size_t visited_nodes = 0;
};

struct BatchOptions {
  // Worker threads. 0 means std::thread::hardware_concurrency(), clamped
  // to at least 1 — hardware_concurrency() is allowed to return 0, and
  // 1-core CI hosts must still run the batch (engine::ResolveThreadCount
  // is the single implementation of this rule, shared with Service).
  // Thread count is additionally clamped to the batch size.
  size_t num_threads = 1;
  // Historical knob of the pre-Service sharded scheduler. The service
  // queue schedules per request, so this no longer affects execution; it
  // is kept so existing callers compile (results never depended on it).
  size_t shard_size = 32;
  // Execution-planner coalescing (engine/exec_plan.h): the transient
  // service's workers pull up to `coalesce.window` queries into one group
  // and answer it through the multi-target kernels — identical results,
  // shared ascents. Off by default.
  CoalesceOptions coalesce;
};

struct BatchStats {
  size_t num_queries = 0;
  size_t num_threads = 1;
  double wall_millis = 0.0;
  double queries_per_second = 0.0;
  Summary latency_micros;        // distribution of per-query latencies
  uint64_t visited_nodes = 0;    // summed across the batch
  // Execution-planner accounting (all zero when coalescing is off).
  PlanStats plan;
};

struct BatchResult {
  // results[i] answers queries[i].
  std::vector<Result> results;
  BatchStats stats;
};

// Owns the full index stack for one venue (through a VenueBundle).
class QueryEngine {
 public:
  // Adopts a pre-built or snapshot-loaded bundle.
  explicit QueryEngine(VenueBundle bundle);

  // Serves over a *shared* bundle — the VenueRegistry path, where one
  // process holds many venues and several engines serve the same bundle
  // concurrently. Queries read pinned snapshots; object updates through
  // any engine (SetObjects / ApplyObjectDelta) publish a new epoch that
  // all engines over the bundle observe on their next query.
  explicit QueryEngine(std::shared_ptr<const VenueBundle> bundle);

  // Builds the bundle here, taking ownership of the venue (the D2D graph
  // is derived from the venue geometry).
  QueryEngine(Venue venue, std::vector<IndoorPoint> objects,
              EngineOptions options = {});

  // Builds the bundle from a venue/graph the caller keeps: both are
  // deep-copied into the engine (VenueBundle::BuildFrom), so the engine
  // stays self-contained — the caller's objects may die first.
  QueryEngine(const Venue& venue, const D2DGraph& graph,
              std::vector<IndoorPoint> objects, EngineOptions options = {});

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  const VenueBundle& bundle() const { return *bundle_; }
  const Venue& venue() const { return bundle_->venue(); }
  const D2DGraph& graph() const { return bundle_->graph(); }
  const VIPTree& tree() const { return bundle_->tree(); }
  const ObjectIndex& objects() const { return bundle_->objects(); }
  bool has_keywords() const { return bundle_->has_keywords(); }

  // Snapshot persistence: Save writes the whole bundle in the io/snapshot.h
  // format; Load/TryLoad stand a serving engine up from such a file without
  // re-running index construction. Load aborts with the decode error
  // message; TryLoad reports it to the caller instead.
  io::Status Save(const std::string& path) const;
  static QueryEngine Load(const std::string& path);
  static std::unique_ptr<QueryEngine> TryLoad(const std::string& path,
                                              std::string* error);

  // Replaces the object set (and keyword lists) without rebuilding the
  // tree. Publishes one new epoch through the bundle's live object store;
  // safe to call while queries (Run / RunBatch, here or through other
  // engines over the same bundle) are in flight — in-flight queries keep
  // the snapshot they pinned, later queries see the new set.
  void SetObjects(std::vector<IndoorPoint> objects,
                  std::vector<std::vector<std::string>> object_keywords = {});

  // Applies one object delta (moves / adds / removes) and publishes one
  // new epoch; small churn patches the hot overlay instead of rebuilding
  // the packed index (core/live_objects.h). Returns an error message —
  // and publishes nothing — when the delta is invalid (unknown ids,
  // out-of-range partitions, double-removes, …). Concurrent callers are
  // serialized internally; queries never block.
  std::optional<std::string> ApplyObjectDelta(const ObjectDelta& delta);

  // Combined footprint of the owned indexes.
  uint64_t IndexMemoryBytes() const;

  // Cross-request distance cache (core/distance_cache.h). At construction
  // the engine adopts the bundle's cache (nullptr when the bundle has
  // none). EnableDistanceCache creates a private per-engine cache;
  // SetDistanceCache shares an existing one (e.g. one cache per venue
  // across many engines — engine::Service does this). Both rebuild the
  // resident worker, so call them between queries, not concurrently with
  // Run. RunBatch workers share the engine's cache.
  void EnableDistanceCache(const DistanceCacheOptions& options = {});
  void SetDistanceCache(std::shared_ptr<DistanceCache> cache);
  const std::shared_ptr<DistanceCache>& distance_cache() const {
    return cache_;
  }

  // Answers one query on the engine's resident worker. Const but not
  // re-entrant: serialize Run/RunSequential calls, or use RunBatch for
  // concurrency.
  Result Run(const Query& query) const;

  // The batch on the calling thread, in order (the single-threaded
  // reference RunBatch is compared against).
  std::vector<Result> RunSequential(Span<const Query> queries) const;

  // Answers one group of queries on the resident worker through the
  // execution planner (engine/exec_plan.h): distance queries sharing a
  // source partition and kNN queries sharing a source point reuse their
  // ascents via the multi-target kernels; everything else runs exactly as
  // Run would. results[i] answers queries[i], bit-identical to
  // RunSequential. Const but not re-entrant, like Run. `stats`, when
  // non-null, has this group's planner accounting merged in.
  std::vector<Result> RunCoalesced(Span<const Query> queries,
                                   PlanStats* stats = nullptr) const;

  // Fans the batch across a worker pool over the shared read-only index —
  // a compatibility shim over a transient single-venue engine::Service.
  // results[i] always answers queries[i], independent of scheduling. Every
  // service worker builds its own engine state (never the resident
  // worker), so concurrent RunBatch calls on one engine are safe.
  BatchResult RunBatch(Span<const Query> queries,
                       const BatchOptions& options = {}) const;

  // Folds per-query stats into a batch summary (exposed for callers that
  // time their own loops around Run).
  static BatchStats Aggregate(const std::vector<Result>& results,
                              double wall_millis, size_t num_threads);

 private:
  struct Worker;

  Result Execute(const Query& query, Worker& worker) const;
  void RebuildWorker();

  // The served state; every read goes through here. Object mutations go
  // through bundle_->live_objects(), which is internally synchronized, so
  // no separate mutable alias is needed.
  std::shared_ptr<const VenueBundle> bundle_;
  // Shared, thread-safe memoization attached to every worker (resident
  // and RunBatch-transient). Never null-checked on the hot path — the core
  // engines handle nullptr themselves.
  std::shared_ptr<DistanceCache> cache_;
  // Resident worker backing Run / RunSequential (RunBatch threads build
  // their own). Run re-pins the worker's object snapshot per query, which
  // is why Execute takes it non-const; Run stays const-but-not-reentrant,
  // exactly as before.
  std::unique_ptr<Worker> main_worker_;
};

}  // namespace engine
}  // namespace viptree

#endif  // VIPTREE_ENGINE_QUERY_ENGINE_H_
