// The execution planner of the coalesced batch path: takes one span of
// same-venue queries, groups them by (query kind, source partition /
// source point), computes each group's source ascent exactly once, and
// dispatches the groups through the multi-target kernels
// (common/kernels.h: MinPlusRowMulti, JoinMinRowsMulti).
//
// Where a sequential batch runs Algorithm 2 / the §3.1 descent once per
// query, a source-skewed batch (many queries leaving the same partition —
// the "everyone routes from the entrance" pattern) repeats nearly
// identical ascents. The planner shares them:
//
//   * kDistance: queries grouped by source partition feed
//     VIPDistanceQuery::DistanceMulti — one multi-point descent per
//     distinct (source point, LCA join child), one batched LCA join per
//     (source, lca, ns, nt) bucket;
//   * kKnn: queries grouped by exact source point share one root ascent
//     (KnnQuery::ComputeAscent) across their branch-and-bound searches,
//     independent of k;
//   * kPath / kRange / kBooleanKnn pass through the sequential executor
//     unchanged.
//
// Bit-identity contract: every grouped answer equals the sequential
// per-query answer bit for bit (the fold/loop-exchange proofs live with
// the core entry points and kernels). Grouping changes only the work
// shared, never the result — enforced by tests/coalesce_differential_test.
//
// Wiring: QueryEngine::RunCoalesced executes one planned span on the
// resident worker; engine::Service workers pull up to
// CoalesceOptions::window contiguous same-venue queries from the queue
// into one group (deadline-aware: grouping only takes already-queued
// work, so a group never waits for more arrivals, and each member is
// still shed individually if its deadline passed at pickup);
// QueryEngine::RunBatch forwards its coalesce options to the transient
// service behind it.

#ifndef VIPTREE_ENGINE_EXEC_PLAN_H_
#define VIPTREE_ENGINE_EXEC_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/span.h"
#include "core/distance_query.h"
#include "core/live_objects.h"

namespace viptree {
namespace engine {

struct Query;
struct Result;

// Tuning of the coalesced execution path. Off by default: coalescing is
// opt-in at every layer (BatchOptions, ServiceOptions, --coalesce).
struct CoalesceOptions {
  bool enabled = false;
  // Most queue entries a Service worker pulls into one group (clamped to
  // at least 1). The planner itself never splits a span it is handed, so
  // direct RunCoalesced callers control group size by span size.
  size_t window = 64;
};

// What the planner did with a batch: groups formed, ascent/descent work
// shared, and a power-of-two histogram of group sizes. Aggregated into
// BatchStats/ServiceStats and printed by the serve summary.
struct PlanStats {
  static constexpr size_t kHistogramBuckets = 8;

  uint64_t groups = 0;             // multi-query groups formed (size >= 2)
  uint64_t coalesced_queries = 0;  // queries answered through a group
  uint64_t ascents_computed = 0;   // source ascents/descents actually run
  uint64_t ascents_reused = 0;     // per-query runs avoided by sharing
  // groups_by_size[b] counts groups whose size lies in [2^b, 2^(b+1));
  // the last bucket is open-ended. b = 0 stays empty (singletons are not
  // groups).
  uint64_t groups_by_size[kHistogramBuckets] = {};

  void RecordGroup(size_t size);
  void Merge(const PlanStats& other);
  bool empty() const { return groups == 0; }
};

// Plans and executes one span of same-venue queries: results[i] answers
// queries[i], bit-identical to running each query alone. `objects` is the
// group's pinned snapshot reader for kNN coalescing (may be null when the
// span has no kNN queries — they then fall back). `fallback` must answer
// one query exactly as the sequential executor would; it runs for every
// non-coalescible query and every singleton group. `results` must already
// be sized to queries.size().
PlanStats ExecutePlan(Span<const Query> queries,
                      const VIPDistanceQuery& distance,
                      const SnapshotQuery* objects,
                      const std::function<Result(const Query&)>& fallback,
                      std::vector<Result>& results);

}  // namespace engine
}  // namespace viptree

#endif  // VIPTREE_ENGINE_EXEC_PLAN_H_
