// The async request/response serving front-end the ROADMAP's "production
// server" north star calls for. Where QueryEngine::RunBatch makes the
// caller pre-assemble a whole Span<const Query> and block until the last
// answer, engine::Service admits work the way a real indoor LBS receives
// it: one request at a time, tagged with a venue id and a latency budget,
// answered whenever a worker gets to it.
//
// Lifecycle:
//
//           Submit(Request) ──► bounded MPMC queue ──► resident workers
//                │ rejected                                │
//                │ (queue full /                           │ deadline past?
//                │  stopped)                               ▼
//                ▼                                  Run on the worker's
//          Ticket completes                         per-venue QueryEngine
//          immediately                                     │
//                                                          ▼
//                                    Ticket (Wait / TryGet / Take) or the
//                                    streaming ResultCallback, invoked on
//                                    the worker thread as each completes
//
// Threads are created once at Start() and stay resident — no per-call
// spawn. Each worker keeps its own per-venue QueryEngine (the mutable
// Dijkstra scratch), all serving shared immutable VenueBundles, so one
// process serves a whole fleet concurrently:
//
//   * single-venue service: constructed over one shared bundle; requests
//     leave `venue_id` empty;
//   * multi-venue service: constructed over a VenueRegistry; every request
//     names a venue, resolved through Acquire (lazy first-touch load,
//     per-entry locking, optional LRU eviction — see venue_registry.h).
//
// Deadlines: a request whose deadline has passed when a worker picks it up
// is completed with kDeadlineExceeded *without running* — under overload
// the queue sheds exactly the work whose answer nobody is waiting for.
//
// Shutdown: Drain() blocks until every accepted request has completed
// (including callback delivery); Stop() stops accepting, completes still-
// queued requests with kCancelled, lets in-flight work finish, and joins
// the workers. The destructor calls Stop().
//
// Callback contract: callbacks run on worker threads and must not call
// Drain()/Stop() (deadlock); Submit from a callback is allowed.

#ifndef VIPTREE_ENGINE_SERVICE_H_
#define VIPTREE_ENGINE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "engine/query_engine.h"
#include "engine/venue_registry.h"

namespace viptree {
namespace engine {

// Deadlines are absolute points on the steady clock, so a request's budget
// keeps counting down while it sits in the queue.
using ServiceClock = std::chrono::steady_clock;
using RequestDeadline = ServiceClock::time_point;

// RequestDeadline::max() means "no deadline".
inline constexpr RequestDeadline kNoDeadline = RequestDeadline::max();

// The deadline `millis` from now (what a "50 ms budget" request passes).
RequestDeadline DeadlineAfterMillis(double millis);

// How many worker threads `requested` resolves to: 0 means
// std::thread::hardware_concurrency(), clamped to at least 1 (some
// CI hosts report 0 or 1 cores). Shared by Service and
// QueryEngine::RunBatch so the two APIs agree on the meaning of 0.
size_t ResolveThreadCount(size_t requested);

// Terminal state of a submitted request.
enum class RequestStatus : uint8_t {
  kOk,                // ran to completion; Response::result is valid
  kDeadlineExceeded,  // deadline passed while queued; never ran
  kVenueNotFound,     // unknown venue id or snapshot load failure
  kInvalidRequest,    // query the venue cannot answer (bad partition id,
                      // keyword query without a keyword index) — a server
                      // fails the request, never the process
  kRejected,          // queue full, or submitted after Stop()
  kCancelled,         // still queued when Stop() was called
};

const char* RequestStatusName(RequestStatus status);

// What a Request asks the service to do.
enum class RequestKind : uint8_t {
  kQuery,          // answer `query`
  kUpdateObjects,  // apply `delta` to the venue's live object set
};

// One unit of admitted work: a typed query — or an object-set update —
// bound for a venue, with an optional latency budget and a caller-chosen
// correlation tag. Updates ride the same queue and routing as queries;
// they publish a new object epoch through the venue bundle's
// LiveObjectIndex (core/live_objects.h), whose internal write mutex
// serializes updates per venue while queries stay lock-free on their
// pinned snapshots.
struct Request {
  RequestKind kind = RequestKind::kQuery;
  // Venue to route to. Empty on a single-venue service; required (and
  // resolved through the registry) on a multi-venue service.
  std::string venue_id;
  Query query;               // kQuery
  ObjectDelta delta;         // kUpdateObjects
  RequestDeadline deadline = kNoDeadline;
  // Echoed verbatim in the Response; lets streaming callers correlate
  // out-of-order completions (e.g. an index into their own array).
  uint64_t tag = 0;

  static Request Update(std::string venue, ObjectDelta object_delta) {
    Request request;
    request.kind = RequestKind::kUpdateObjects;
    request.venue_id = std::move(venue);
    request.delta = std::move(object_delta);
    return request;
  }
};

struct Response {
  RequestStatus status = RequestStatus::kOk;
  RequestKind kind = RequestKind::kQuery;
  uint64_t tag = 0;
  std::string venue_id;
  // Valid only when status == kOk and kind == kQuery. For a completed
  // update, only result.latency_micros is meaningful (the publish cost).
  Result result;
  // Human-readable detail for non-kOk statuses (load error, shutdown, …).
  std::string error;
  // Time from Submit to the moment a worker picked the request up (or to
  // its terminal rejection/cancellation) — the queueing component of the
  // end-to-end latency; Result::latency_micros is the execution component.
  double queue_micros = 0.0;

  bool ok() const { return status == RequestStatus::kOk; }
};

// Future-style handle to one submitted request. Cheap to copy (shared
// state); default-constructed tickets are invalid.
class Ticket {
 public:
  Ticket() = default;

  bool valid() const { return state_ != nullptr; }
  // Non-blocking: has the request reached a terminal state?
  bool Done() const;
  // Blocks until terminal, then returns the response (stable reference —
  // responses are written exactly once).
  const Response& Wait() const;
  // Non-blocking: the response if terminal, nullptr otherwise.
  const Response* TryGet() const;
  // Wait(), then move the response out (single-consumer; the ticket's
  // stored response is left moved-from).
  Response Take();

 private:
  friend class Service;
  struct State;
  std::shared_ptr<State> state_;
};

// Streaming delivery: invoked exactly once per request as it reaches its
// terminal state — on a worker thread, except for admission rejections,
// which are delivered synchronously from Submit itself.
using ResultCallback = std::function<void(const Response&)>;

struct ServiceOptions {
  // Resident worker threads; 0 means hardware_concurrency(), clamped ≥ 1
  // (same rule as BatchOptions::num_threads — see ResolveThreadCount).
  size_t num_threads = 1;
  // Bound of the MPMC request queue: submissions beyond it complete
  // immediately with kRejected instead of growing memory without limit.
  size_t queue_capacity = 1024;

  // Cross-request distance caching (core/distance_cache.h). With
  // cache.enabled the service creates caches and attaches them to the
  // worker engines; Stats() aggregates their hit/miss/evict counters.
  DistanceCacheOptions cache;
  enum class CacheScope : uint8_t {
    // One cache per venue, shared by every worker serving it (default:
    // cross-worker reuse, contention only per shard). Replaced whenever
    // the registry hands out a fresh bundle instance for the venue, so a
    // re-loaded snapshot can never be answered from the old file's
    // entries.
    kSharedPerVenue,
    // One private cache per (worker, venue) engine: zero lock contention,
    // no cross-worker reuse. For measuring the sharing trade-off.
    kPerWorker,
  };
  CacheScope cache_scope = CacheScope::kSharedPerVenue;
  // A pre-existing cache every worker shares, taking precedence over
  // `cache`. Single-venue services only (door ids are venue-local dense
  // ints — one cache across venues would alias unrelated doors);
  // QueryEngine::RunBatch uses this to hand its own cache to the
  // transient service's workers.
  std::shared_ptr<DistanceCache> shared_cache;

  // Execution-planner coalescing (engine/exec_plan.h): with
  // coalesce.enabled a worker pulls up to coalesce.window contiguous
  // same-venue queries from the queue front in one lock hold and answers
  // them as one planned group. Grouping only takes already-queued work —
  // a group never waits for more arrivals, so no request is delayed past
  // its deadline by coalescing, and each pulled member whose deadline has
  // already passed is still shed individually. An update request (or a
  // request for another venue) ends the pull, so per-venue query/update
  // ordering is exactly the sequential worker's. Off by default.
  CoalesceOptions coalesce;
};

struct VenueCounters {
  uint64_t completed = 0;  // queries answered (kOk)
  uint64_t updated = 0;    // object updates applied (kOk)
  uint64_t expired = 0;    // shed by deadline
  uint64_t failed = 0;     // venue resolution / validation failures
};

// BatchStats (completed-query count, execution-latency Summary, visited
// nodes, throughput over the service's uptime) extended with the queueing
// picture a resident service adds.
struct ServiceStats : BatchStats {
  size_t queue_depth = 0;  // requests waiting right now
  uint64_t submitted = 0;  // every Submit/SubmitBatch call, any outcome
  uint64_t rejected = 0;
  uint64_t expired = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  // Object updates applied (kOk). Updates are deliberately kept out of
  // num_queries and latency_micros so query p50/p99 stay comparable
  // across update rates; their publish cost is in update_micros.
  uint64_t updates = 0;
  Summary update_micros;
  // Distribution of Response::queue_micros over accepted requests.
  Summary queue_micros;
  std::map<std::string, VenueCounters> per_venue;
  // Distance-cache counters summed over every cache this service created
  // or was handed (all zero when caching is off).
  CacheCounters cache;
  // BatchStats::plan (the execution planner's accounting) is inherited;
  // it aggregates across every coalesced group any worker ran.
};

class Service {
 public:
  // Single-venue service over a shared immutable bundle (requests leave
  // venue_id empty).
  explicit Service(std::shared_ptr<const VenueBundle> bundle,
                   ServiceOptions options = {});
  // Multi-venue service; takes ownership of the registry and routes every
  // request through Acquire.
  explicit Service(VenueRegistry registry, ServiceOptions options = {});

  ~Service();  // Stop()

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Spawns the resident workers. Requests may be submitted before Start
  // (they queue); call exactly once, and never after Stop.
  void Start();

  // Admits one request. Returns a completed kRejected ticket when the
  // queue is full or the service has stopped.
  Ticket Submit(Request request);
  // Streaming overload: no ticket; `callback` is invoked exactly once
  // with the terminal Response — on a worker thread for accepted
  // requests, or synchronously on the *calling* thread when the request
  // is rejected at admission (queue full / stopped), so callbacks must
  // not assume they never run under the submitter's locks.
  void Submit(Request request, ResultCallback callback);
  // Bulk admission under one queue lock; tickets[i] answers requests[i].
  std::vector<Ticket> SubmitBatch(std::vector<Request> requests);

  // Blocks until every ticket in `tickets` is terminal (invalid
  // default-constructed tickets are skipped) and returns how many
  // completed kOk. The per-ticket Wait order is fixed but irrelevant:
  // every ticket is waited on regardless of outcome, so the call returns
  // only once all listed requests are settled — the batch analogue of
  // Ticket::Wait for callers holding a mixed bag of outcomes.
  static size_t WaitAll(const std::vector<Ticket>& tickets);

  // Blocks until every accepted request has reached a terminal state and
  // its callback (if any) has returned. Requires Start() when work is
  // queued (otherwise nothing would ever drain it).
  void Drain();
  // Stops accepting, completes still-queued requests with kCancelled,
  // waits for in-flight work, joins the workers. Idempotent.
  void Stop();

  ServiceStats Stats() const;

  size_t num_threads() const { return num_threads_; }
  bool multi_venue() const { return registry_.has_value(); }
  // The owned registry (multi-venue services only; CHECK-aborts otherwise).
  VenueRegistry& registry();
  const VenueRegistry& registry() const;

 private:
  struct Item {
    Request request;
    ServiceClock::time_point enqueued;
    std::shared_ptr<Ticket::State> state;
  };

  Ticket SubmitInternal(Request request, ResultCallback callback);
  void WorkerLoop();
  void Process(Item item,
               std::map<std::string, std::unique_ptr<QueryEngine>>* engines);
  // Coalesced sibling of Process: one pulled group of same-venue queries
  // through QueryEngine::RunCoalesced. Per-item deadline shed and
  // validation keep the single-item semantics; responses finalize in
  // queue order.
  void ProcessGroup(
      std::vector<Item> items,
      std::map<std::string, std::unique_ptr<QueryEngine>>* engines);
  // Worker-local venue resolution: pins the venue's current bundle behind
  // a per-worker QueryEngine, rebuilt if the registry re-loaded the venue
  // (eviction) since this worker last served it.
  QueryEngine* ResolveEngine(
      const std::string& venue_id,
      std::map<std::string, std::unique_ptr<QueryEngine>>* engines,
      std::string* error);
  // The distance cache a fresh worker engine for (venue_id, bundle) should
  // use, per options_ (nullptr = caching off). Thread-safe.
  std::shared_ptr<DistanceCache> CacheFor(
      const std::string& venue_id,
      const std::shared_ptr<const VenueBundle>& bundle);
  // Admission-side input validation: everything the engine would CHECK or
  // index with must be range-checked here so untrusted requests fail with
  // kInvalidRequest instead of aborting a worker.
  static bool ValidateQuery(const Query& query, const QueryEngine& engine,
                            std::string* error);
  // Publishes the terminal response: records stats, completes the ticket
  // state, runs the callback. Does NOT touch pending_ (call sites do).
  void Finalize(const std::shared_ptr<Ticket::State>& state,
                Response response);
  void RecordStats(const Response& response);
  // Executes one kUpdateObjects request on a resolved engine, filling
  // status/error/latency into *response.
  static void RunUpdate(const ObjectDelta& delta, QueryEngine* engine,
                        Response* response);

  // Exactly one of the two is the routing target.
  std::shared_ptr<const VenueBundle> bundle_;
  std::optional<VenueRegistry> registry_;
  ServiceOptions options_;
  size_t num_threads_ = 1;

  mutable std::mutex mu_;  // guards everything down to workers_
  std::condition_variable queue_cv_;          // workers wait for work
  mutable std::condition_variable drain_cv_;  // Drain waits for pending_==0
  std::deque<Item> queue_;
  size_t pending_ = 0;  // accepted but not yet terminal
  bool accepting_ = true;
  bool stopping_ = false;
  bool started_ = false;
  bool stopped_ = false;
  ServiceClock::time_point start_time_{};
  std::vector<std::thread> workers_;

  // Aggregate counters and latency samples, off the queue lock so stats
  // recording never blocks admission.
  mutable std::mutex stats_mu_;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t expired_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t failed_ = 0;
  uint64_t updates_ = 0;
  uint64_t visited_nodes_ = 0;
  std::vector<double> latency_samples_;
  std::vector<double> queue_samples_;
  std::vector<double> update_samples_;
  std::map<std::string, VenueCounters> per_venue_;
  PlanStats plan_stats_;

  // Distance caches handed to worker engines. Venue entries remember the
  // bundle they were built against (weakly, so a cache never pins an
  // evicted bundle) and are replaced when the registry hands out a fresh
  // instance. Per-worker caches are kept strongly so Stats() still counts
  // them after workers retire their engines.
  mutable std::mutex cache_mu_;
  struct VenueCache {
    std::weak_ptr<const VenueBundle> bundle;
    std::shared_ptr<DistanceCache> cache;
  };
  std::map<std::string, VenueCache> venue_caches_;
  std::vector<std::shared_ptr<DistanceCache>> worker_caches_;
};

}  // namespace engine
}  // namespace viptree

#endif  // VIPTREE_ENGINE_SERVICE_H_
