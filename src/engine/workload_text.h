// The serve-mode text protocol: one request per line, shared by
// `viptree_query --serve` / `--emit-workload` and the round-trip tests so
// the emitter and the parser can never drift apart.
//
// Line grammar (blank lines and '#' comments are the caller's concern;
// the leading <venue> column exists only in registry mode):
//
//   [<venue>] distance <p> <x> <y> <z>  <p> <x> <y> <z>
//   [<venue>] path     <p> <x> <y> <z>  <p> <x> <y> <z>
//   [<venue>] knn      <p> <x> <y> <z>  <k>
//   [<venue>] range    <p> <x> <y> <z>  <radius>
//   [<venue>] bknn     <p> <x> <y> <z>  <k> <kw1[,kw2,...] | ->
//   [<venue>] move     <id> <p> <x> <y> <z>
//   [<venue>] add      <p> <x> <y> <z>  <kw1[,kw2,...] | ->
//   [<venue>] remove   <id>
//
// The last three are live-object updates (core/live_objects.h): each line
// is one single-operation ObjectDelta, submitted through the service as a
// RequestKind::kUpdateObjects request. Coordinates round-trip exactly
// (%.17g), so an emitted workload parses back bit-identically.

#ifndef VIPTREE_ENGINE_WORKLOAD_TEXT_H_
#define VIPTREE_ENGINE_WORKLOAD_TEXT_H_

#include <string>

#include "engine/service.h"

namespace viptree {
namespace engine {
namespace workload {

// Formats one request as a protocol line (no trailing newline). The
// request's venue_id becomes the leading column when non-empty. Update
// requests must carry exactly one operation — the line grammar is one
// operation per line (CHECKed; the emitters only build such requests).
std::string EmitLine(const Request& request);

// Parses one protocol line into *request. `with_venue` selects the
// registry-mode grammar (leading venue column). Returns false with a
// human-readable *error on malformed input; *request is then unspecified.
bool ParseLine(const std::string& line, bool with_venue, Request* request,
               std::string* error);

}  // namespace workload
}  // namespace engine
}  // namespace viptree

#endif  // VIPTREE_ENGINE_WORKLOAD_TEXT_H_
