#include "engine/exec_plan.h"

#include <array>
#include <cstring>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/stats.h"
#include "engine/query_engine.h"

namespace viptree {
namespace engine {

namespace {

// Same accounting as the sequential executor: source + target extended
// matrices plus the LCA matrix for a cross-leaf distance query, one
// shared leaf otherwise.
size_t MatricesConsulted(const IPTree& tree, PartitionId s, PartitionId t) {
  return tree.LeafOfPartition(s) == tree.LeafOfPartition(t) ? 1 : 3;
}

// kNN grouping key: the exact source point, compared by bit pattern —
// equal bits guarantee an identical root ascent, so sharing it cannot
// change any answer. k stays out of the key on purpose: the ascent does
// not depend on it, so Knn(q, 3) and Knn(q, 5) share one ascent while
// each running its own full search (never a prefix of the other's).
using SourceKey = std::array<uint64_t, 4>;

SourceKey KeyOf(const IndoorPoint& p) {
  SourceKey key{};
  key[0] = static_cast<uint64_t>(static_cast<int64_t>(p.partition));
  static_assert(sizeof(p.position) == sizeof(double) * 3,
                "Point is 3 doubles");
  std::memcpy(&key[1], &p.position, sizeof(double) * 3);
  return key;
}

}  // namespace

void PlanStats::RecordGroup(size_t size) {
  ++groups;
  coalesced_queries += size;
  size_t bucket = 0;
  while (bucket + 1 < kHistogramBuckets && (size >> (bucket + 1)) != 0) {
    ++bucket;
  }
  ++groups_by_size[bucket];
}

void PlanStats::Merge(const PlanStats& other) {
  groups += other.groups;
  coalesced_queries += other.coalesced_queries;
  ascents_computed += other.ascents_computed;
  ascents_reused += other.ascents_reused;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    groups_by_size[b] += other.groups_by_size[b];
  }
}

PlanStats ExecutePlan(Span<const Query> queries,
                      const VIPDistanceQuery& distance,
                      const SnapshotQuery* objects,
                      const std::function<Result(const Query&)>& fallback,
                      std::vector<Result>& results) {
  const size_t n = queries.size();
  VIPTREE_CHECK_MSG(results.size() == n,
                    "ExecutePlan results must be pre-sized to the batch");
  PlanStats stats;

  // Group distance queries by source partition and kNN queries by exact
  // source point; everything else (and every singleton group) takes the
  // sequential fallback.
  std::map<PartitionId, std::vector<size_t>> distance_groups;
  std::map<SourceKey, std::vector<size_t>> knn_groups;
  std::vector<size_t> fall;
  for (size_t i = 0; i < n; ++i) {
    switch (queries[i].type) {
      case QueryType::kDistance:
        distance_groups[queries[i].source.partition].push_back(i);
        break;
      case QueryType::kKnn:
        if (objects != nullptr) {
          knn_groups[KeyOf(queries[i].source)].push_back(i);
        } else {
          fall.push_back(i);
        }
        break;
      default:
        fall.push_back(i);
        break;
    }
  }

  const IPTree& tree = distance.tree().base();
  std::vector<IndoorPoint> sources, targets;
  std::vector<double> distances;
  for (auto& [partition, members] : distance_groups) {
    (void)partition;
    if (members.size() < 2) {
      fall.insert(fall.end(), members.begin(), members.end());
      continue;
    }
    sources.clear();
    targets.clear();
    for (size_t i : members) {
      sources.push_back(queries[i].source);
      targets.push_back(queries[i].target);
    }
    distances.assign(members.size(), kInfDistance);
    MultiDistanceStats multi_stats;
    const Timer timer;
    distance.DistanceMulti(
        Span<const IndoorPoint>(sources.data(), sources.size()),
        Span<const IndoorPoint>(targets.data(), targets.size()),
        distances.data(), &multi_stats);
    // The group runs as one unit; attribute its wall time evenly so batch
    // latency summaries stay comparable with the sequential path.
    const double per_query_micros =
        timer.ElapsedMicros() / static_cast<double>(members.size());
    stats.ascents_computed += multi_stats.ascents_computed;
    stats.ascents_reused += multi_stats.ascents_reused;
    stats.RecordGroup(members.size());
    for (size_t j = 0; j < members.size(); ++j) {
      Result& r = results[members[j]];
      r.type = QueryType::kDistance;
      r.distance = distances[j];
      r.latency_micros = per_query_micros;
      r.visited_nodes =
          MatricesConsulted(tree, sources[j].partition, targets[j].partition);
    }
  }

  for (auto& [key, members] : knn_groups) {
    (void)key;
    if (members.size() < 2) {
      fall.insert(fall.end(), members.begin(), members.end());
      continue;
    }
    // One root ascent for the whole group; its cost is spread across the
    // members' latencies (each sequential run would have paid it whole).
    const Timer ascent_timer;
    const AscentDistances ascent =
        objects->ComputeAscent(queries[members[0]].source);
    const double ascent_micros =
        ascent_timer.ElapsedMicros() / static_cast<double>(members.size());
    ++stats.ascents_computed;
    stats.ascents_reused += members.size() - 1;
    stats.RecordGroup(members.size());
    // Within the group the source is bit-equal, so members that also share
    // k are the *same* deterministic search — run it once per distinct k
    // and copy the result to the duplicates (zipfian front-door traffic is
    // full of them).
    std::map<size_t, size_t> first_for_k;
    for (size_t i : members) {
      const auto [it, fresh] = first_for_k.emplace(queries[i].k, i);
      if (!fresh) {
        const Result& done = results[it->second];
        Result& r = results[i];
        r.type = QueryType::kKnn;
        r.objects = done.objects;
        r.latency_micros = done.latency_micros;
        r.visited_nodes = done.visited_nodes;
        continue;
      }
      SearchStats search;
      const Timer timer;
      std::vector<ObjectResult> found =
          objects->KnnWithAscent(queries[i].source, queries[i].k, ascent,
                                 &search);
      Result& r = results[i];
      r.type = QueryType::kKnn;
      r.objects = std::move(found);
      r.latency_micros = timer.ElapsedMicros() + ascent_micros;
      r.visited_nodes = search.nodes_visited;
    }
  }

  for (size_t i : fall) results[i] = fallback(queries[i]);
  return stats;
}

}  // namespace engine
}  // namespace viptree
