#include "engine/venue_registry.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define VIPTREE_HAS_FLOCK 1
#else
#define VIPTREE_HAS_FLOCK 0
#endif

namespace viptree {
namespace engine {

namespace {

// The directory prefix of `path` including the trailing separator, empty
// for a bare filename (so Resolve degrades to the relative path itself).
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

bool IsAbsolute(const std::string& path) {
  return !path.empty() && path.front() == '/';
}

std::string Resolve(const std::string& manifest_dir, const std::string& path) {
  return IsAbsolute(path) ? path : manifest_dir + path;
}

// Lexically drops "." path segments ("./x", "a/./b") so spelling variants
// of the same path compare equal by prefix. ".." is left alone — the
// realpath fallback in ManifestRelativePath handles those.
std::string StripDotSegments(std::string p) {
  while (p.rfind("./", 0) == 0) p.erase(0, 2);
  size_t at;
  while ((at = p.find("/./")) != std::string::npos) p.erase(at, 2);
  return p;
}

std::string Trim(const std::string& s) {
  const size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

// Reads `path` line-by-line. A *missing* file is reported through
// `*missing` (the caller decides whether that is an error — Upsert starts
// a fresh manifest, Open reports it); any other failure is a Status error.
io::Status ReadLines(const std::string& path, std::vector<std::string>* out,
                     bool* missing = nullptr) {
  if (missing != nullptr) *missing = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (missing != nullptr && errno == ENOENT) {
      *missing = true;
      return io::Status::Ok();
    }
    return io::Status::Error("cannot open registry manifest '" + path + "'");
  }
  std::string current;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      out->push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  if (!current.empty()) out->push_back(current);
  std::fclose(f);
  return io::Status::Ok();
}

// Serializes manifest read-modify-writes across processes via flock(2) on
// a sidecar lock file, so two concurrent `viptree_build --registry` runs
// cannot read the same old contents and drop each other's registration.
// No-op where flock is unavailable.
class ManifestLock {
 public:
  explicit ManifestLock(const std::string& manifest_path) {
#if VIPTREE_HAS_FLOCK
    fd_ = ::open((manifest_path + ".lock").c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ >= 0) ::flock(fd_, LOCK_EX);
#else
    (void)manifest_path;
#endif
  }
  ~ManifestLock() {
#if VIPTREE_HAS_FLOCK
    if (fd_ >= 0) ::close(fd_);  // also releases the flock
#endif
  }
  ManifestLock(const ManifestLock&) = delete;
  ManifestLock& operator=(const ManifestLock&) = delete;

 private:
#if VIPTREE_HAS_FLOCK
  int fd_ = -1;
#endif
};

}  // namespace

std::optional<VenueRegistry> VenueRegistry::Open(
    const std::string& manifest_path, std::string* error,
    const VenueBundle::LoadOptions& load_options,
    const RegistryOptions& options) {
  auto fail = [error](std::string message) -> std::optional<VenueRegistry> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  std::vector<std::string> lines;
  const io::Status read = ReadLines(manifest_path, &lines);
  if (!read.ok()) return fail(read.error);

  VenueRegistry registry;
  registry.load_options_ = load_options;
  registry.options_ = options;
  const std::string dir = DirOf(manifest_path);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string line = Trim(lines[i]);
    if (line.empty() || line.front() == '#') continue;
    const size_t split = line.find_first_of(" \t");
    if (split == std::string::npos) {
      return fail("registry manifest line " + std::to_string(i + 1) +
                  " has no snapshot path: '" + line + "'");
    }
    const std::string id = line.substr(0, split);
    const std::string path = Trim(line.substr(split + 1));
    if (path.empty()) {
      return fail("registry manifest line " + std::to_string(i + 1) +
                  " has no snapshot path: '" + line + "'");
    }
    if (registry.entries_.count(id) != 0) {
      return fail("registry manifest lists venue '" + id + "' twice");
    }
    registry.ids_.push_back(id);
    Entry entry;
    entry.snapshot_path = Resolve(dir, path);
    registry.entries_[id] = std::move(entry);
  }
  return registry;
}

io::Status VenueRegistry::UpsertManifestEntry(
    const std::string& manifest_path, const std::string& venue_id,
    const std::string& snapshot_path) {
  if (venue_id.empty() ||
      venue_id.find_first_of(" \t\r\n#") != std::string::npos) {
    return io::Status::Error("invalid venue id '" + venue_id +
                             "' (must be non-empty, without whitespace "
                             "or '#')");
  }
  // Exclusive across processes for the whole read-modify-write.
  ManifestLock lock(manifest_path);

  // A missing manifest starts empty; any other read failure must abort —
  // rewriting from an empty `lines` would silently destroy every existing
  // registration.
  std::vector<std::string> lines;
  bool missing = false;
  const io::Status read = ReadLines(manifest_path, &lines, &missing);
  if (!read.ok()) return read;

  const std::string entry = venue_id + "\t" + snapshot_path;
  bool replaced = false;
  for (std::string& line : lines) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (trimmed.substr(0, trimmed.find_first_of(" \t")) == venue_id) {
      line = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) lines.push_back(entry);

  std::string contents;
  for (const std::string& line : lines) {
    contents += line;
    contents += '\n';
  }
  return io::WriteFileBytes(
      manifest_path,
      {reinterpret_cast<const uint8_t*>(contents.data()), contents.size()});
}

std::string VenueRegistry::ManifestRelativePath(
    const std::string& manifest_path, const std::string& snapshot_path) {
  const std::string dir = DirOf(StripDotSegments(manifest_path));
  const std::string file = StripDotSegments(snapshot_path);
  // An empty dir means the manifest lives in the current directory, so a
  // relative snapshot path is already manifest-relative.
  if (file.rfind(dir, 0) == 0) return file.substr(dir.size());
  if (IsAbsolute(file)) return file;
  char resolved[PATH_MAX];
  if (::realpath(file.c_str(), resolved) != nullptr) return resolved;
  return file;
}

std::vector<std::string> VenueRegistry::VenueIds() const { return ids_; }

bool VenueRegistry::Contains(const std::string& venue_id) const {
  return entries_.count(venue_id) != 0;
}

size_t VenueRegistry::NumVenues() const { return entries_.size(); }

std::shared_ptr<const VenueBundle> VenueRegistry::Acquire(
    const std::string& venue_id, std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return std::shared_ptr<const VenueBundle>();
  };

  // Fast path: registry-wide lock for the map lookup only. The map is
  // never erased from, so `it` stays valid after unlocking.
  std::shared_ptr<std::mutex> load_mu;
  std::map<std::string, Entry>::iterator it;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    it = entries_.find(venue_id);
    if (it == entries_.end()) {
      return fail("venue '" + venue_id + "' is not in the registry");
    }
    if (it->second.bundle != nullptr) {
      it->second.last_use = ++use_tick_;
      return it->second.bundle;
    }
    load_mu = it->second.load_mu;
  }

  // Slow path: load under the *entry's* lock, so a slow load of this
  // venue never blocks Acquire of any other venue, while a second Acquire
  // of the same venue waits here instead of mapping the snapshot twice.
  std::lock_guard<std::mutex> load_lock(*load_mu);
  {
    std::lock_guard<std::mutex> lock(*mu_);
    if (it->second.bundle != nullptr) {  // loaded while we waited
      it->second.last_use = ++use_tick_;
      return it->second.bundle;
    }
  }
  std::string load_error;
  std::optional<VenueBundle> bundle = VenueBundle::TryLoad(
      it->second.snapshot_path, &load_error, load_options_);
  if (!bundle.has_value()) {
    return fail("venue '" + venue_id + "': " + load_error);
  }
  std::lock_guard<std::mutex> lock(*mu_);
  it->second.bundle = std::make_shared<const VenueBundle>(std::move(*bundle));
  it->second.last_use = ++use_tick_;
  EnforceResidencyCapLocked();
  return it->second.bundle;
}

void VenueRegistry::EnforceResidencyCapLocked() {
  if (options_.max_resident_venues == 0) return;
  for (;;) {
    size_t resident = 0;
    std::map<std::string, Entry>::iterator lru = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.bundle == nullptr) continue;
      ++resident;
      if (lru == entries_.end() ||
          it->second.last_use < lru->second.last_use) {
        lru = it;
      }
    }
    if (resident <= options_.max_resident_venues) return;
    // The entry just touched carries the highest tick, so the victim is
    // always some *other* resident bundle (unless it is the only one, in
    // which case the count already satisfies any cap >= 1).
    ReleaseBundleLocked(lru->second);
  }
}

void VenueRegistry::ReleaseBundleLocked(Entry& entry) {
  if (entry.bundle == nullptr) return;
  // Under kDontneedOnRelease, outstanding shared_ptrs may keep the mapping
  // alive past eviction; dropping its resident pages bounds RSS either way
  // (the holders' next queries simply re-fault what they touch).
  if (load_options_.madvise == io::MadvisePolicy::kDontneedOnRelease) {
    entry.bundle->ReleaseResidentPages();
  }
  entry.bundle.reset();
}

void VenueRegistry::Evict(const std::string& venue_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = entries_.find(venue_id);
  if (it != entries_.end()) ReleaseBundleLocked(it->second);
}

bool VenueRegistry::IsResident(const std::string& venue_id) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = entries_.find(venue_id);
  return it != entries_.end() && it->second.bundle != nullptr;
}

size_t VenueRegistry::NumResident() const {
  std::lock_guard<std::mutex> lock(*mu_);
  size_t resident = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.bundle != nullptr) ++resident;
  }
  return resident;
}

uint64_t VenueRegistry::ResidentIndexBytes() const {
  std::lock_guard<std::mutex> lock(*mu_);
  uint64_t bytes = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.bundle != nullptr) bytes += entry.bundle->IndexMemoryBytes();
  }
  return bytes;
}

}  // namespace engine
}  // namespace viptree
