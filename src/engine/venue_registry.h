// VenueRegistry: one process serving a *fleet* of venues off disk. A plain
// text manifest maps venue ids to snapshot files; Acquire(venue_id) lazily
// loads the snapshot (zero-copy mmap for format-v2 files) and hands out a
// shared immutable VenueBundle, so the process-wide cost of a registered
// venue is O(resident-pages) of its mapped snapshot until it is queried —
// the multi-venue deployment shape ROADMAP calls for and the indoor-index
// experimental literature identifies as memory-bound.
//
// Manifest format (text, UTF-8):
//
//   # comment / blank lines ignored
//   <venue-id> <snapshot-path>
//
// One entry per line; the id is a single whitespace-free token, the path is
// the rest of the line (leading whitespace trimmed). Relative paths resolve
// against the manifest's directory, so a registry directory can be moved or
// mounted wholesale. Duplicate ids are a manifest error.
//
// Thread-safety: Acquire/Evict/NumResident are safe to call concurrently;
// the returned bundles are immutable and may be shared across threads and
// engines (engine::QueryEngine's shared-bundle constructor). Snapshot
// loads run under a *per-entry* mutex: a slow first-touch load of one
// venue never blocks Acquire of any other venue — the registry-wide lock
// only covers map lookups and LRU bookkeeping.
//
// Residency policy: RegistryOptions::max_resident_venues caps how many
// bundles stay cached at once. When a load would exceed the cap, the
// least-recently-acquired resident bundle is evicted (outstanding
// shared_ptrs stay valid — eviction only drops the cache's reference), so
// a fleet process's memory tracks its working set, not its manifest.

#ifndef VIPTREE_ENGINE_VENUE_REGISTRY_H_
#define VIPTREE_ENGINE_VENUE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/venue_bundle.h"
#include "io/binary_io.h"

namespace viptree {
namespace engine {

struct RegistryOptions {
  // Maximum bundles kept resident at once; 0 means unlimited. A load that
  // would exceed the cap evicts the least-recently-acquired resident
  // bundle first (outstanding references stay valid).
  size_t max_resident_venues = 0;
};

class VenueRegistry {
 public:
  // Parses the manifest at `manifest_path`. Returns nullopt (with a
  // human-readable *error) on a missing/unreadable manifest or a malformed
  // entry; snapshot files themselves are opened lazily by Acquire, so a
  // manifest may list snapshots that do not exist yet.
  static std::optional<VenueRegistry> Open(
      const std::string& manifest_path, std::string* error,
      const VenueBundle::LoadOptions& load_options = {},
      const RegistryOptions& options = {});

  // Adds or replaces `venue_id -> snapshot_path` in the manifest, creating
  // the file if needed (what `viptree_build --registry` uses). The path is
  // written verbatim, so pass it relative to the manifest for a relocatable
  // registry — ManifestRelativePath below computes exactly that.
  static io::Status UpsertManifestEntry(const std::string& manifest_path,
                                        const std::string& venue_id,
                                        const std::string& snapshot_path);

  // The snapshot path as it should be *stored* in the manifest: relative
  // to the manifest's directory when `snapshot_path` lies under it (after
  // lexically stripping "./" segments, so `./fleet/x` and `fleet/x`
  // match), otherwise absolute — mirroring how Open resolves entries.
  static std::string ManifestRelativePath(const std::string& manifest_path,
                                          const std::string& snapshot_path);

  VenueRegistry(VenueRegistry&&) = default;
  VenueRegistry& operator=(VenueRegistry&&) = default;

  // Registered venue ids, in manifest order.
  std::vector<std::string> VenueIds() const;
  bool Contains(const std::string& venue_id) const;
  size_t NumVenues() const;

  // The shared immutable bundle for `venue_id`, loading its snapshot on
  // first use (nullptr + *error on unknown id or load failure). The
  // registry keeps the bundle cached until Evict — or until the LRU
  // policy reclaims it; callers may hold the returned shared_ptr for as
  // long as they like either way. Concurrent Acquires of the same venue
  // load it once (the second waits on the entry's lock); Acquires of
  // *different* venues never wait on each other's loads.
  std::shared_ptr<const VenueBundle> Acquire(const std::string& venue_id,
                                             std::string* error = nullptr);

  // Drops the cached bundle (no-op if not resident). Outstanding
  // shared_ptrs stay valid; the snapshot is re-loaded on the next Acquire.
  void Evict(const std::string& venue_id);

  // Is this venue's bundle currently cached?
  bool IsResident(const std::string& venue_id) const;

  // The configured residency cap (0 = unlimited) — callers that cache
  // bundles of their own (engine::Service workers) use it to keep their
  // caches on the same budget.
  size_t max_resident_venues() const { return options_.max_resident_venues; }

  // Currently cached bundles / their combined logical index bytes.
  size_t NumResident() const;
  uint64_t ResidentIndexBytes() const;

 private:
  struct Entry {
    std::string snapshot_path;  // absolute, or resolved against the manifest
    // Serializes the snapshot load of *this* venue only. shared_ptr (not
    // the mutex inline) keeps Entry movable and lets Acquire hold the
    // lock across the registry-wide unlock.
    std::shared_ptr<std::mutex> load_mu = std::make_shared<std::mutex>();
    std::shared_ptr<const VenueBundle> bundle;  // null until first Acquire
    uint64_t last_use = 0;  // LRU tick of the latest Acquire hit
  };

  VenueRegistry() = default;

  // Called with mu_ held after a bundle is installed or touched: evicts
  // least-recently-used resident bundles until the cap is respected.
  void EnforceResidencyCapLocked();

  // Drops an entry's cached bundle, first returning its mapped pages to
  // the OS when the load options ask for kDontneedOnRelease.
  void ReleaseBundleLocked(Entry& entry);

  VenueBundle::LoadOptions load_options_;
  RegistryOptions options_;
  std::vector<std::string> ids_;  // manifest order
  // Guards `entries_`'s bundle/last_use fields and use_tick_ (the id list
  // and per-entry paths are immutable after Open). Behind a unique_ptr so
  // the registry itself stays movable. Never held across a snapshot load.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  uint64_t use_tick_ = 0;
  std::map<std::string, Entry> entries_;
};

}  // namespace engine
}  // namespace viptree

#endif  // VIPTREE_ENGINE_VENUE_REGISTRY_H_
