#include "engine/venue_bundle.h"

#include <utility>

#include "common/check.h"
#include "io/snapshot.h"

namespace viptree {
namespace engine {

VenueBundle VenueBundle::Assemble(std::unique_ptr<Venue> venue,
                                  std::unique_ptr<D2DGraph> graph,
                                  std::vector<IndoorPoint> objects,
                                  EngineOptions options) {
  VenueBundle bundle;
  bundle.venue_ = std::move(venue);
  bundle.graph_ = std::move(graph);
  bundle.query_options_ = options.query;
  bundle.tree_ = std::make_unique<VIPTree>(
      VIPTree::Build(*bundle.venue_, *bundle.graph_, options.tree));
  bundle.live_ = std::make_unique<LiveObjectIndex>(
      bundle.tree_->base(), std::move(objects),
      std::move(options.object_keywords));
  if (options.cache.enabled) {
    bundle.EnableDistanceCache(options.cache);
  }
  return bundle;
}

void VenueBundle::EnableDistanceCache(const DistanceCacheOptions& options) {
  DistanceCacheOptions resolved = options;
  if (resolved.capacity == 0) {
    resolved.capacity = AdaptiveCacheCapacity(venue_->NumDoors());
  }
  cache_ = std::make_shared<DistanceCache>(resolved);
}

VenueBundle VenueBundle::Build(Venue venue, std::vector<IndoorPoint> objects,
                               EngineOptions options) {
  auto owned_venue = std::make_unique<Venue>(std::move(venue));
  auto graph = std::make_unique<D2DGraph>(*owned_venue);
  return Assemble(std::move(owned_venue), std::move(graph),
                  std::move(objects), std::move(options));
}

VenueBundle VenueBundle::Build(Venue venue, D2DGraph graph,
                               std::vector<IndoorPoint> objects,
                               EngineOptions options) {
  return Assemble(std::make_unique<Venue>(std::move(venue)),
                  std::make_unique<D2DGraph>(std::move(graph)),
                  std::move(objects), std::move(options));
}

VenueBundle VenueBundle::BuildFrom(const Venue& venue, const D2DGraph& graph,
                                   std::vector<IndoorPoint> objects,
                                   EngineOptions options) {
  return Assemble(std::make_unique<Venue>(venue.Clone()),
                  std::make_unique<D2DGraph>(graph.Clone()),
                  std::move(objects), std::move(options));
}

void VenueBundle::SetObjects(
    std::vector<IndoorPoint> objects,
    std::vector<std::vector<std::string>> object_keywords) {
  live_->SetObjects(std::move(objects), std::move(object_keywords));
}

uint64_t VenueBundle::IndexMemoryBytes() const {
  return tree_->MemoryBytes() + live_->MemoryBytes();
}

io::Status VenueBundle::Save(const std::string& path,
                             const io::SnapshotWriteOptions& options) const {
  io::Snapshot snapshot;
  snapshot.venue = venue_->ToParts();
  snapshot.graph = graph_->ToParts();
  snapshot.tree = tree_->base().ToParts();
  snapshot.vip = tree_->ToParts();
  LiveObjectIndex::PackedState packed = live_->PackedParts();
  snapshot.objects = std::move(packed.objects);
  if (packed.keywords.has_value()) {
    snapshot.keywords = std::move(*packed.keywords);
  }
  snapshot.query_options = query_options_;
  return io::WriteSnapshotFile(path, snapshot, options);
}

std::optional<VenueBundle> VenueBundle::TryLoad(const std::string& path,
                                                std::string* error,
                                                const LoadOptions& options) {
  auto fail = [error](std::string message) -> std::optional<VenueBundle> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  // Map (or read) the file into an arena, then decode. For a v2 snapshot
  // the decoder hands out views into the arena (zero-copy) and the bundle
  // keeps the arena alive; a v1 snapshot decodes into owned buffers and
  // the arena is dropped at the end of this function.
  auto arena = std::make_shared<io::MmapArena>();
  {
    const io::Status status =
        io::MmapArena::Map(path, arena.get(), options.use_mmap,
                           options.madvise);
    if (!status.ok()) return fail(status.error);
  }
  io::SnapshotReadOptions read_options;
  read_options.verify_checksums = options.verify_checksums;
  read_options.allow_alias = true;
  io::Snapshot snapshot;
  {
    const io::Status status =
        io::DecodeSnapshot(arena->bytes(), &snapshot, read_options);
    if (!status.ok()) return fail(status.error);
  }

  // v1 snapshots keep their historical full validation; v2 snapshots run
  // the cheap structural level by default (deep_validate opts back in) —
  // the CRCs already reject corruption, and the per-cell sweep would fault
  // in every page of the mapped index.
  const IPTree::ValidationLevel level =
      (snapshot.format_version == io::kLegacyFormatVersion ||
       options.deep_validate)
          ? IPTree::ValidationLevel::kFull
          : IPTree::ValidationLevel::kStructure;

  // Structural validation of every layer before assembly, bottom-up: a
  // snapshot that fails must surface as an error the caller can report
  // (the FromParts factories would abort instead), and each successful
  // check feeds the FromValidatedParts fast path so nothing is validated
  // twice on the serving-process startup path.
  if (auto e = Venue::ValidateParts(snapshot.venue)) {
    return fail("invalid snapshot: " + *e);
  }
  if (auto e = D2DGraph::ValidateParts(snapshot.graph, level)) {
    return fail("invalid snapshot: " + *e);
  }

  VenueBundle bundle;
  bundle.venue_ = std::make_unique<Venue>(
      Venue::FromValidatedParts(std::move(snapshot.venue)));
  bundle.graph_ = std::make_unique<D2DGraph>(
      D2DGraph::FromValidatedParts(std::move(snapshot.graph)));
  if (bundle.graph_->NumVertices() != bundle.venue_->NumDoors()) {
    return fail("invalid snapshot: graph has " +
                std::to_string(bundle.graph_->NumVertices()) +
                " vertices for " +
                std::to_string(bundle.venue_->NumDoors()) + " doors");
  }

  if (auto e = IPTree::ValidateParts(*bundle.venue_, snapshot.tree, level)) {
    return fail("invalid snapshot: " + *e);
  }
  IPTree base = IPTree::FromValidatedParts(*bundle.venue_, *bundle.graph_,
                                           std::move(snapshot.tree));
  if (auto e = VIPTree::ValidateParts(base, snapshot.vip, level)) {
    return fail("invalid snapshot: " + *e);
  }
  bundle.tree_ = std::make_unique<VIPTree>(
      VIPTree::FromValidatedParts(std::move(base), std::move(snapshot.vip)));

  if (auto e = ObjectIndex::ValidateParts(bundle.tree_->base(),
                                          snapshot.objects)) {
    return fail("invalid snapshot: " + *e);
  }
  auto object_base =
      std::make_shared<const ObjectIndex>(ObjectIndex::FromValidatedParts(
          bundle.tree_->base(), std::move(snapshot.objects)));

  std::shared_ptr<const KeywordIndex> keywords;
  if (snapshot.keywords.has_value()) {
    if (auto e = KeywordIndex::ValidateParts(bundle.tree_->base(),
                                             *object_base,
                                             *snapshot.keywords)) {
      return fail("invalid snapshot: " + *e);
    }
    keywords =
        std::make_shared<const KeywordIndex>(KeywordIndex::FromValidatedParts(
            bundle.tree_->base(), *object_base,
            std::move(*snapshot.keywords)));
  }
  // The loaded (possibly arena-aliased) pair becomes epoch 1 of the live
  // object store; updates build later epochs aside in owned memory.
  bundle.live_ = std::make_unique<LiveObjectIndex>(
      bundle.tree_->base(), std::move(object_base), std::move(keywords));
  bundle.query_options_ = snapshot.query_options;
  // A zero-copy decode left views into the arena inside the indexes; the
  // bundle must then keep the arena alive. A copying decode (v1 snapshot,
  // exotic host) owns everything, so the arena can be released here.
  if (snapshot.aliased) bundle.arena_ = std::move(arena);
  return bundle;
}

VenueBundle VenueBundle::Load(const std::string& path,
                              const LoadOptions& options) {
  std::string error;
  std::optional<VenueBundle> bundle = TryLoad(path, &error, options);
  VIPTREE_CHECK_MSG(bundle.has_value(), error.c_str());
  return std::move(*bundle);
}

}  // namespace engine
}  // namespace viptree
