#include "model/venue.h"

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

std::optional<std::string> Venue::ValidateModel(
    const std::vector<Partition>& partitions,
    const std::vector<Door>& doors) {
  if (partitions.empty()) return "venue has no partitions";
  const size_t num_partitions = partitions.size();
  for (size_t p = 0; p < num_partitions; ++p) {
    if (partitions[p].id != static_cast<PartitionId>(p)) {
      return "partition " + std::to_string(p) + " has non-dense id " +
             std::to_string(partitions[p].id);
    }
    if (partitions[p].cost_scale < 0.0) {
      return "partition " + std::to_string(p) + " has negative cost scale";
    }
  }
  std::vector<uint32_t> door_count(num_partitions, 0);
  for (size_t i = 0; i < doors.size(); ++i) {
    const Door& d = doors[i];
    if (d.id != static_cast<DoorId>(i)) {
      return "door " + std::to_string(i) + " has non-dense id " +
             std::to_string(d.id);
    }
    if (d.partition_a < 0 ||
        static_cast<size_t>(d.partition_a) >= num_partitions) {
      return "door " + std::to_string(d.id) + " references unknown partition";
    }
    if (!d.is_exterior() &&
        (d.partition_b < 0 ||
         static_cast<size_t>(d.partition_b) >= num_partitions)) {
      return "door " + std::to_string(d.id) + " references unknown partition";
    }
    if (d.partition_a == d.partition_b) {
      return "door " + std::to_string(d.id) +
             " connects a partition to itself";
    }
    ++door_count[d.partition_a];
    if (!d.is_exterior()) ++door_count[d.partition_b];
  }
  for (size_t p = 0; p < num_partitions; ++p) {
    if (door_count[p] == 0) {
      return "partition " + std::to_string(p) + " has no door";
    }
  }

  // Connectivity: every partition reachable from partition 0 through doors.
  std::vector<std::vector<PartitionId>> adjacency(num_partitions);
  for (const Door& d : doors) {
    if (d.is_exterior()) continue;
    adjacency[d.partition_a].push_back(d.partition_b);
    adjacency[d.partition_b].push_back(d.partition_a);
  }
  std::vector<bool> seen(num_partitions, false);
  std::vector<PartitionId> stack = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    const PartitionId p = stack.back();
    stack.pop_back();
    for (PartitionId q : adjacency[p]) {
      if (!seen[q]) {
        seen[q] = true;
        ++reached;
        stack.push_back(q);
      }
    }
  }
  if (reached != num_partitions) {
    return "venue is not connected (" + std::to_string(reached) + " of " +
           std::to_string(num_partitions) + " partitions reachable)";
  }
  return std::nullopt;
}

Venue Venue::FromParts(Parts parts) {
  const std::optional<std::string> error = ValidateParts(parts);
  VIPTREE_CHECK_MSG(!error.has_value(),
                    error.has_value() ? error->c_str() : "");
  return FromValidatedParts(std::move(parts));
}

Venue Venue::FromValidatedParts(Parts parts) {
  Venue venue;
  venue.beta_ = parts.beta;
  venue.partitions_ = std::move(parts.partitions);
  venue.doors_ = std::move(parts.doors);
  venue.RebuildDoorIndex();
  return venue;
}

Venue::Parts Venue::ToParts() const {
  Parts parts;
  parts.beta = beta_;
  parts.partitions = partitions_;
  parts.doors = doors_;
  return parts;
}

void Venue::RebuildDoorIndex() {
  // Partition -> doors CSR layout (counting sort by partition).
  const size_t num_partitions = partitions_.size();
  partition_door_offsets_.assign(num_partitions + 1, 0);
  for (const Door& d : doors_) {
    ++partition_door_offsets_[d.partition_a + 1];
    if (!d.is_exterior()) ++partition_door_offsets_[d.partition_b + 1];
  }
  for (size_t p = 0; p < num_partitions; ++p) {
    partition_door_offsets_[p + 1] += partition_door_offsets_[p];
  }
  partition_doors_.resize(partition_door_offsets_.back());
  std::vector<uint32_t> cursor(partition_door_offsets_.begin(),
                               partition_door_offsets_.end() - 1);
  for (const Door& d : doors_) {
    partition_doors_[cursor[d.partition_a]++] = d.id;
    if (!d.is_exterior()) partition_doors_[cursor[d.partition_b]++] = d.id;
  }
}

Span<const DoorId> Venue::DoorsOf(PartitionId p) const {
  VIPTREE_DCHECK(p >= 0 && static_cast<size_t>(p) < partitions_.size());
  const uint32_t begin = partition_door_offsets_[p];
  const uint32_t end = partition_door_offsets_[p + 1];
  return {partition_doors_.data() + begin, partition_doors_.data() + end};
}

PartitionId Venue::OtherSide(DoorId d, PartitionId p) const {
  const Door& door = doors_[d];
  VIPTREE_DCHECK(door.partition_a == p || door.partition_b == p);
  return door.partition_a == p ? door.partition_b : door.partition_a;
}

bool Venue::DoorTouches(DoorId d, PartitionId p) const {
  const Door& door = doors_[d];
  return door.partition_a == p || door.partition_b == p;
}

bool Venue::Adjacent(PartitionId a, PartitionId b) const {
  // Iterate over the smaller door list.
  Span<const DoorId> da = DoorsOf(a);
  Span<const DoorId> db = DoorsOf(b);
  if (db.size() < da.size()) {
    std::swap(a, b);
    std::swap(da, db);
  }
  for (DoorId d : da) {
    if (DoorTouches(d, b)) return true;
  }
  return false;
}

double Venue::DistanceToDoor(const IndoorPoint& s, DoorId d) const {
  VIPTREE_DCHECK(DoorTouches(d, s.partition));
  return IntraPartitionDistance(s.partition, s.position, doors_[d].position);
}

bool Venue::IsConnected() const {
  if (partitions_.empty()) return true;
  std::vector<bool> seen(partitions_.size(), false);
  std::vector<PartitionId> stack = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    const PartitionId p = stack.back();
    stack.pop_back();
    for (DoorId d : DoorsOf(p)) {
      const PartitionId q = OtherSide(d, p);
      if (q == kInvalidId) continue;  // exterior door
      if (!seen[q]) {
        seen[q] = true;
        ++reached;
        stack.push_back(q);
      }
    }
  }
  return reached == partitions_.size();
}

uint64_t Venue::MemoryBytes() const {
  uint64_t bytes = 0;
  bytes += partitions_.size() * sizeof(Partition);
  for (const Partition& p : partitions_) bytes += p.name.size();
  bytes += doors_.size() * sizeof(Door);
  bytes += partition_door_offsets_.size() * sizeof(uint32_t);
  bytes += partition_doors_.size() * sizeof(DoorId);
  return bytes;
}

}  // namespace viptree
