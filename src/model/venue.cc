#include "model/venue.h"

#include <vector>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

Span<const DoorId> Venue::DoorsOf(PartitionId p) const {
  VIPTREE_DCHECK(p >= 0 && static_cast<size_t>(p) < partitions_.size());
  const uint32_t begin = partition_door_offsets_[p];
  const uint32_t end = partition_door_offsets_[p + 1];
  return {partition_doors_.data() + begin, partition_doors_.data() + end};
}

PartitionId Venue::OtherSide(DoorId d, PartitionId p) const {
  const Door& door = doors_[d];
  VIPTREE_DCHECK(door.partition_a == p || door.partition_b == p);
  return door.partition_a == p ? door.partition_b : door.partition_a;
}

bool Venue::DoorTouches(DoorId d, PartitionId p) const {
  const Door& door = doors_[d];
  return door.partition_a == p || door.partition_b == p;
}

bool Venue::Adjacent(PartitionId a, PartitionId b) const {
  // Iterate over the smaller door list.
  Span<const DoorId> da = DoorsOf(a);
  Span<const DoorId> db = DoorsOf(b);
  if (db.size() < da.size()) {
    std::swap(a, b);
    std::swap(da, db);
  }
  for (DoorId d : da) {
    if (DoorTouches(d, b)) return true;
  }
  return false;
}

double Venue::DistanceToDoor(const IndoorPoint& s, DoorId d) const {
  VIPTREE_DCHECK(DoorTouches(d, s.partition));
  return IntraPartitionDistance(s.partition, s.position, doors_[d].position);
}

bool Venue::IsConnected() const {
  if (partitions_.empty()) return true;
  std::vector<bool> seen(partitions_.size(), false);
  std::vector<PartitionId> stack = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    const PartitionId p = stack.back();
    stack.pop_back();
    for (DoorId d : DoorsOf(p)) {
      const PartitionId q = OtherSide(d, p);
      if (q == kInvalidId) continue;  // exterior door
      if (!seen[q]) {
        seen[q] = true;
        ++reached;
        stack.push_back(q);
      }
    }
  }
  return reached == partitions_.size();
}

uint64_t Venue::MemoryBytes() const {
  uint64_t bytes = 0;
  bytes += partitions_.capacity() * sizeof(Partition);
  for (const Partition& p : partitions_) bytes += p.name.capacity();
  bytes += doors_.capacity() * sizeof(Door);
  bytes += partition_door_offsets_.capacity() * sizeof(uint32_t);
  bytes += partition_doors_.capacity() * sizeof(DoorId);
  return bytes;
}

}  // namespace viptree
