#include "model/venue_builder.h"

#include <utility>

#include "common/check.h"

namespace viptree {

PartitionId VenueBuilder::AddPartition(int level, PartitionUse use,
                                       Point centroid, std::string name,
                                       double cost_scale, int zone) {
  Partition p;
  p.id = static_cast<PartitionId>(partitions_.size());
  p.level = level;
  p.use = use;
  p.centroid = centroid;
  p.name = std::move(name);
  p.cost_scale = cost_scale;
  p.zone = zone;
  partitions_.push_back(std::move(p));
  return partitions_.back().id;
}

DoorId VenueBuilder::AddDoor(PartitionId a, PartitionId b, Point position) {
  VIPTREE_CHECK_MSG(a >= 0 && static_cast<size_t>(a) < partitions_.size(),
                    "door references unknown partition");
  VIPTREE_CHECK_MSG(b >= 0 && static_cast<size_t>(b) < partitions_.size(),
                    "door references unknown partition");
  VIPTREE_CHECK_MSG(a != b, "door must connect two distinct partitions");
  Door d;
  d.id = static_cast<DoorId>(doors_.size());
  d.partition_a = a;
  d.partition_b = b;
  d.position = position;
  doors_.push_back(d);
  return d.id;
}

DoorId VenueBuilder::AddExteriorDoor(PartitionId a, Point position) {
  VIPTREE_CHECK_MSG(a >= 0 && static_cast<size_t>(a) < partitions_.size(),
                    "door references unknown partition");
  Door d;
  d.id = static_cast<DoorId>(doors_.size());
  d.partition_a = a;
  d.partition_b = kInvalidId;
  d.position = position;
  doors_.push_back(d);
  return d.id;
}

Point VenueBuilder::PartitionCentroid(PartitionId p) const {
  VIPTREE_CHECK(p >= 0 && static_cast<size_t>(p) < partitions_.size());
  return partitions_[p].centroid;
}

std::optional<std::string> VenueBuilder::Validate() const {
  if (partitions_.empty()) return "venue has no partitions";
  std::vector<uint32_t> door_count(partitions_.size(), 0);
  for (const Door& d : doors_) {
    if (d.partition_a < 0 ||
        static_cast<size_t>(d.partition_a) >= partitions_.size()) {
      return "door " + std::to_string(d.id) + " references unknown partition";
    }
    if (!d.is_exterior() &&
        (d.partition_b < 0 ||
         static_cast<size_t>(d.partition_b) >= partitions_.size())) {
      return "door " + std::to_string(d.id) + " references unknown partition";
    }
    if (d.partition_a == d.partition_b) {
      return "door " + std::to_string(d.id) +
             " connects a partition to itself";
    }
    ++door_count[d.partition_a];
    if (!d.is_exterior()) ++door_count[d.partition_b];
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (door_count[p] == 0) {
      return "partition " + std::to_string(p) + " has no door";
    }
    if (partitions_[p].cost_scale < 0.0) {
      return "partition " + std::to_string(p) + " has negative cost scale";
    }
  }

  // Connectivity: every partition reachable from partition 0 through doors.
  std::vector<std::vector<PartitionId>> adjacency(partitions_.size());
  for (const Door& d : doors_) {
    if (d.is_exterior()) continue;
    adjacency[d.partition_a].push_back(d.partition_b);
    adjacency[d.partition_b].push_back(d.partition_a);
  }
  std::vector<bool> seen(partitions_.size(), false);
  std::vector<PartitionId> stack = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    const PartitionId p = stack.back();
    stack.pop_back();
    for (PartitionId q : adjacency[p]) {
      if (!seen[q]) {
        seen[q] = true;
        ++reached;
        stack.push_back(q);
      }
    }
  }
  if (reached != partitions_.size()) {
    return "venue is not connected (" + std::to_string(reached) + " of " +
           std::to_string(partitions_.size()) + " partitions reachable)";
  }
  return std::nullopt;
}

Venue VenueBuilder::Build() && {
  std::optional<std::string> error = Validate();
  VIPTREE_CHECK_MSG(!error.has_value(),
                    error.has_value() ? error->c_str() : "");

  Venue venue;
  venue.beta_ = beta_;
  venue.partitions_ = std::move(partitions_);
  venue.doors_ = std::move(doors_);

  // Build the partition -> doors CSR layout (counting sort by partition).
  const size_t num_partitions = venue.partitions_.size();
  venue.partition_door_offsets_.assign(num_partitions + 1, 0);
  for (const Door& d : venue.doors_) {
    ++venue.partition_door_offsets_[d.partition_a + 1];
    if (!d.is_exterior()) ++venue.partition_door_offsets_[d.partition_b + 1];
  }
  for (size_t p = 0; p < num_partitions; ++p) {
    venue.partition_door_offsets_[p + 1] += venue.partition_door_offsets_[p];
  }
  venue.partition_doors_.resize(venue.partition_door_offsets_.back());
  std::vector<uint32_t> cursor(venue.partition_door_offsets_.begin(),
                               venue.partition_door_offsets_.end() - 1);
  for (const Door& d : venue.doors_) {
    venue.partition_doors_[cursor[d.partition_a]++] = d.id;
    if (!d.is_exterior()) venue.partition_doors_[cursor[d.partition_b]++] = d.id;
  }

  return venue;
}

}  // namespace viptree
