#include "model/venue_builder.h"

#include <utility>

#include "common/check.h"

namespace viptree {

PartitionId VenueBuilder::AddPartition(int level, PartitionUse use,
                                       Point centroid, std::string name,
                                       double cost_scale, int zone) {
  Partition p;
  p.id = static_cast<PartitionId>(partitions_.size());
  p.level = level;
  p.use = use;
  p.centroid = centroid;
  p.name = std::move(name);
  p.cost_scale = cost_scale;
  p.zone = zone;
  partitions_.push_back(std::move(p));
  return partitions_.back().id;
}

DoorId VenueBuilder::AddDoor(PartitionId a, PartitionId b, Point position) {
  VIPTREE_CHECK_MSG(a >= 0 && static_cast<size_t>(a) < partitions_.size(),
                    "door references unknown partition");
  VIPTREE_CHECK_MSG(b >= 0 && static_cast<size_t>(b) < partitions_.size(),
                    "door references unknown partition");
  VIPTREE_CHECK_MSG(a != b, "door must connect two distinct partitions");
  Door d;
  d.id = static_cast<DoorId>(doors_.size());
  d.partition_a = a;
  d.partition_b = b;
  d.position = position;
  doors_.push_back(d);
  return d.id;
}

DoorId VenueBuilder::AddExteriorDoor(PartitionId a, Point position) {
  VIPTREE_CHECK_MSG(a >= 0 && static_cast<size_t>(a) < partitions_.size(),
                    "door references unknown partition");
  Door d;
  d.id = static_cast<DoorId>(doors_.size());
  d.partition_a = a;
  d.partition_b = kInvalidId;
  d.position = position;
  doors_.push_back(d);
  return d.id;
}

Point VenueBuilder::PartitionCentroid(PartitionId p) const {
  VIPTREE_CHECK(p >= 0 && static_cast<size_t>(p) < partitions_.size());
  return partitions_[p].centroid;
}

std::optional<std::string> VenueBuilder::Validate() const {
  return Venue::ValidateModel(partitions_, doors_);
}

Venue VenueBuilder::Build() && {
  // FromParts validates (aborting on malformed input, exactly as before)
  // and derives the CSR door index through the shared code path.
  return Venue::FromParts(
      Venue::Parts{beta_, std::move(partitions_), std::move(doors_)});
}

}  // namespace viptree
