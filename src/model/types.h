// Fundamental identifier and geometry types shared by the whole library.

#ifndef VIPTREE_MODEL_TYPES_H_
#define VIPTREE_MODEL_TYPES_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace viptree {

// Dense 0-based identifiers. kInvalidId marks "none" (e.g. a NULL next-hop
// door in a distance matrix, exactly the paper's NULL entries).
using DoorId = int32_t;
using PartitionId = int32_t;
using NodeId = int32_t;
using ObjectId = int32_t;

inline constexpr int32_t kInvalidId = -1;

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

// How much of a deserialized Parts struct the ValidateParts factories
// re-check. kStructure covers everything used as an array index outside
// the bulk payloads (sizes, id ranges, shapes, CSR monotonicity) in time
// proportional to the small lookup structures; kFull additionally sweeps
// every bulk cell (matrix entries, graph edges) — the right level for a
// file whose checksums were not verified, but it touches every page of a
// mapped snapshot.
enum class ValidationLevel { kStructure, kFull };

// A point in the three-dimensional indoor coordinate system of §4.1: x and y
// are planar coordinates in metres, z is the height in metres (floor number
// times floor height, so inter-floor movement has a real cost).
struct Point {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

inline double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

inline bool operator==(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

}  // namespace viptree

#endif  // VIPTREE_MODEL_TYPES_H_
