// The indoor venue data model of §2: indoor partitions (rooms, hallways,
// staircases, lifts, outdoor walkways) connected by doors.
//
// Model invariants (enforced by VenueBuilder):
//   * every door connects exactly two distinct partitions;
//   * every partition has at least one door;
// Outdoor space is modelled as ordinary walkway partitions so campus venues
// need no special casing (see docs/ARCHITECTURE.md).
//
// Partition taxonomy (§2): a partition with one door is a *no-through*
// partition, a partition with more than beta doors is a *hallway* partition
// (beta defaults to 4 as in the paper), everything else is a *general*
// partition.

#ifndef VIPTREE_MODEL_VENUE_H_
#define VIPTREE_MODEL_VENUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/types.h"
#include "common/span.h"

namespace viptree {

// Provenance tag: what the generator (or importer) says this partition is.
// Index classification never depends on this; it is used by examples,
// object placement and venue statistics.
enum class PartitionUse : uint8_t {
  kRoom,
  kCorridor,
  kStaircase,
  kLift,
  kOutdoor,
  kOther,
};

// Index-level classification of §2, derived from the door count and beta.
enum class PartitionClass : uint8_t {
  kNoThrough,  // exactly one door: no shortest path passes through it
  kGeneral,
  kHallway,  // more than beta doors
};

struct Partition {
  PartitionId id = kInvalidId;
  int level = 0;  // floor number (z = level * floor height for generators)
  // Building / zone membership. Generators assign one zone per building so
  // venue replication (CL-2 style) can connect each building to its replica.
  int zone = 0;
  PartitionUse use = PartitionUse::kRoom;
  // Multiplier applied to intra-partition Euclidean distances; lets
  // staircases model longer walking paths and lifts model travel time
  // (§2: "the distances between the doors can be set appropriately").
  double cost_scale = 1.0;
  Point centroid;
  std::string name;  // optional human-readable label for examples
};

struct Door {
  DoorId id = kInvalidId;
  // The two distinct partitions this door connects. partition_b may be
  // kInvalidId for an *exterior* door leading out of the venue (e.g. a
  // building entrance): such doors belong to one partition only and are
  // access doors of every tree node containing it (the paper's root node
  // N7 has access doors d1, d7, d20 -- the venue entrances).
  PartitionId partition_a = kInvalidId;
  PartitionId partition_b = kInvalidId;
  Point position;

  bool is_exterior() const { return partition_b == kInvalidId; }
};

// A query location: a point inside a known partition.
struct IndoorPoint {
  PartitionId partition = kInvalidId;
  Point position;
};

// Immutable indoor venue. Construct through VenueBuilder, or reconstruct a
// previously built venue from its Parts (snapshot deserialization).
class Venue {
 public:
  // The complete serializable state of a venue; everything else (the
  // partition -> door CSR index) is derived deterministically from it.
  struct Parts {
    int beta = 4;
    std::vector<Partition> partitions;
    std::vector<Door> doors;
  };

  // Returns an error description if `parts` does not describe a well-formed
  // venue (same rules as VenueBuilder::Validate), std::nullopt if it does.
  static std::optional<std::string> ValidateParts(const Parts& parts) {
    return ValidateModel(parts.partitions, parts.doors);
  }

  // The same validation over borrowed vectors (what VenueBuilder::Validate
  // calls, avoiding a deep copy of the model).
  static std::optional<std::string> ValidateModel(
      const std::vector<Partition>& partitions,
      const std::vector<Door>& doors);

  // Reconstructs a venue from deserialized parts. Aborts on malformed input
  // (run ValidateParts first when the parts come from an untrusted file).
  static Venue FromParts(Parts parts);

  // Same, for callers that have *just* run ValidateParts themselves (the
  // snapshot loader): skips the redundant validation pass.
  static Venue FromValidatedParts(Parts parts);

  // Copies of the serializable state / the whole venue. Cloning is explicit
  // (no copy constructor) so accidental deep copies stay impossible.
  Parts ToParts() const;
  Venue Clone() const { return FromParts(ToParts()); }

  Venue(const Venue&) = delete;
  Venue& operator=(const Venue&) = delete;
  Venue(Venue&&) = default;
  Venue& operator=(Venue&&) = default;

  size_t NumPartitions() const { return partitions_.size(); }
  size_t NumDoors() const { return doors_.size(); }
  int beta() const { return beta_; }

  const Partition& partition(PartitionId p) const { return partitions_[p]; }
  const Door& door(DoorId d) const { return doors_[d]; }
  const std::vector<Partition>& partitions() const { return partitions_; }
  const std::vector<Door>& doors() const { return doors_; }

  // Doors attached to a partition (both doors leading in and out; a door
  // belongs to exactly the two partitions it connects).
  Span<const DoorId> DoorsOf(PartitionId p) const;

  // The partition on the other side of `d` from `p` (kInvalidId if `d` is
  // an exterior door). `p` must be one of the partitions of `d`.
  PartitionId OtherSide(DoorId d, PartitionId p) const;

  // True if `d` is a door of partition `p`.
  bool DoorTouches(DoorId d, PartitionId p) const;

  // True if partitions `a` and `b` share at least one door (§2.1.2 adjacency).
  bool Adjacent(PartitionId a, PartitionId b) const;

  PartitionClass Classify(PartitionId p) const {
    const size_t n = DoorsOf(p).size();
    if (n == 1) return PartitionClass::kNoThrough;
    if (n > static_cast<size_t>(beta_)) return PartitionClass::kHallway;
    return PartitionClass::kGeneral;
  }

  // Walking distance between two points of the same partition, or between a
  // point of a partition and one of its doors: Euclidean distance scaled by
  // the partition's cost_scale (partitions are modelled convex).
  double IntraPartitionDistance(PartitionId p, const Point& a,
                                const Point& b) const {
    return EuclideanDistance(a, b) * partitions_[p].cost_scale;
  }

  double DistanceToDoor(const IndoorPoint& s, DoorId d) const;

  // True if every partition is reachable from partition 0 through doors.
  bool IsConnected() const;

  // Approximate in-memory footprint, for Table 2 / Fig 8 accounting.
  uint64_t MemoryBytes() const;

 private:
  friend class VenueBuilder;
  Venue() = default;

  // Derives the partition -> doors CSR index from partitions_/doors_ (the
  // one code path shared by VenueBuilder::Build and FromParts, so a
  // reconstructed venue is indistinguishable from a freshly built one).
  void RebuildDoorIndex();

  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
  // CSR layout of partition -> doors.
  std::vector<uint32_t> partition_door_offsets_;
  std::vector<DoorId> partition_doors_;
  int beta_ = 4;
};

}  // namespace viptree

#endif  // VIPTREE_MODEL_VENUE_H_
