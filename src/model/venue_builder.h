// Mutable builder and validator for Venue objects.

#ifndef VIPTREE_MODEL_VENUE_BUILDER_H_
#define VIPTREE_MODEL_VENUE_BUILDER_H_

#include <optional>
#include <string>
#include <vector>

#include "model/venue.h"

namespace viptree {

class VenueBuilder {
 public:
  // beta is the hallway threshold of §2 (partitions with more than beta
  // doors are hallways). The paper uses beta = 4.
  explicit VenueBuilder(int beta = 4) : beta_(beta) {}

  // Adds a partition and returns its id (dense, starting at 0).
  PartitionId AddPartition(int level, PartitionUse use, Point centroid,
                           std::string name = "", double cost_scale = 1.0,
                           int zone = 0);

  // Adds a door connecting partitions `a` and `b` at `position`; returns its
  // id. `a` and `b` must be existing, distinct partitions.
  DoorId AddDoor(PartitionId a, PartitionId b, Point position);

  // Adds an exterior door: a venue entrance/exit belonging to partition `a`
  // only.
  DoorId AddExteriorDoor(PartitionId a, Point position);

  size_t NumPartitions() const { return partitions_.size(); }
  size_t NumDoors() const { return doors_.size(); }

  // Centroid of an already-added partition (generators use it to position
  // connector doors).
  Point PartitionCentroid(PartitionId p) const;

  // Returns an error description if the venue is malformed (a partition with
  // no door, a door with an unknown or duplicate partition, a disconnected
  // venue), std::nullopt if it is valid.
  std::optional<std::string> Validate() const;

  // Validates and finalizes. Aborts on invalid input (call Validate() first
  // if the input is untrusted).
  Venue Build() &&;

 private:
  int beta_;
  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
};

}  // namespace viptree

#endif  // VIPTREE_MODEL_VENUE_BUILDER_H_
