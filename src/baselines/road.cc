#include "baselines/road.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

namespace {

int IndexOf(Span<const DoorId> doors, DoorId d) {
  const auto it = std::lower_bound(doors.begin(), doors.end(), d);
  if (it == doors.end() || *it != d) return -1;
  return static_cast<int>(it - doors.begin());
}

}  // namespace

RoadIndex::RoadIndex(const Venue& venue, const D2DGraph& graph,
                     const RoadOptions& options)
    : venue_(venue),
      graph_(graph),
      hierarchy_(venue, graph,
                 GTreeOptions{/*fanout=*/2, options.leaf_tau, options.seed}),
      dist_(graph.NumVertices(), kInfDistance),
      parent_(graph.NumVertices(), kInvalidId),
      parent_shortcut_(graph.NumVertices(), 0),
      settled_(graph.NumVertices(), 0),
      mark_(graph.NumVertices(), 0) {}

void RoadIndex::MarkOpen(PartitionId partition,
                         std::vector<uint8_t>& open) const {
  for (DoorId d : venue_.DoorsOf(partition)) {
    for (NodeId n = hierarchy_.leaf_of_door_[d]; n != kInvalidId;
         n = hierarchy_.nodes_[n].parent) {
      if (open[n]) break;
      open[n] = 1;
    }
  }
}

std::vector<uint8_t> RoadIndex::OpenForTarget(PartitionId target) const {
  std::vector<uint8_t> open(hierarchy_.nodes_.size(), 0);
  MarkOpen(target, open);
  return open;
}

RoadIndex::SearchResult RoadIndex::OverlaySearch(
    const IndoorPoint& s, const IndoorPoint& t,
    const std::vector<uint8_t>& open, std::vector<DoorId>* path_doors) {
  ++epoch_;
  using HE = std::pair<double, DoorId>;
  std::priority_queue<HE, std::vector<HE>, std::greater<HE>> heap;
  auto reach = [&](DoorId d, double dd, DoorId p, bool shortcut) {
    if (mark_[d] != epoch_) {
      mark_[d] = epoch_;
      settled_[d] = 0;
      dist_[d] = kInfDistance;
    }
    if (dd < dist_[d]) {
      dist_[d] = dd;
      parent_[d] = p;
      parent_shortcut_[d] = shortcut ? 1 : 0;
      heap.emplace(dd, d);
    }
  };

  std::vector<uint8_t> is_source(graph_.NumVertices(), 0);
  for (DoorId u : venue_.DoorsOf(s.partition)) {
    is_source[u] = 1;
    reach(u, venue_.DistanceToDoor(s, u), kInvalidId, false);
  }

  const Span<const DoorId> targets = venue_.DoorsOf(t.partition);
  size_t wanted = targets.size();

  while (wanted > 0 && !heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled_[u] && mark_[u] == epoch_) continue;
    if (d > dist_[u]) continue;
    settled_[u] = 1;
    if (std::find(targets.begin(), targets.end(), u) != targets.end()) {
      --wanted;
    }

    // Shortcuts of the largest closed Rnet that has u as a border.
    NodeId rnet = kInvalidId;
    for (NodeId n = hierarchy_.leaf_of_door_[u]; n != kInvalidId;
         n = hierarchy_.nodes_[n].parent) {
      if (open[n]) break;
      if (IndexOf(hierarchy_.nodes_[n].borders, u) < 0 &&
          !(hierarchy_.nodes_[n].is_leaf())) {
        break;  // borders only shrink going up
      }
      if (IndexOf(hierarchy_.nodes_[n].borders, u) >= 0) rnet = n;
    }
    if (rnet != kInvalidId) {
      const auto& node = hierarchy_.nodes_[rnet];
      for (DoorId b : node.borders) {
        if (b == u) continue;
        float w;
        if (node.is_leaf()) {
          w = node.dist.at(IndexOf(node.vertices, u),
                           IndexOf(node.borders, b));
        } else {
          w = node.dist.at(IndexOf(node.matrix_doors, u),
                           IndexOf(node.matrix_doors, b));
        }
        reach(b, d + w, u, true);
      }
    }

    // Original edges; interiors of closed leaves are bypassed (their
    // borders carry shortcuts) except around source doors.
    const NodeId u_leaf = hierarchy_.leaf_of_door_[u];
    for (const D2DEdge& e : graph_.EdgesOf(u)) {
      if (!is_source[u] && hierarchy_.leaf_of_door_[e.to] == u_leaf &&
          !open[u_leaf]) {
        continue;
      }
      reach(e.to, d + e.weight, u, false);
    }
  }

  SearchResult result;
  for (DoorId dt : targets) {
    if (mark_[dt] != epoch_ || !settled_[dt]) continue;
    const double cand = dist_[dt] + venue_.DistanceToDoor(t, dt);
    if (cand < result.distance) {
      result.distance = cand;
      result.best_target = dt;
    }
  }
  if (s.partition == t.partition) {
    const double direct =
        venue_.IntraPartitionDistance(s.partition, s.position, t.position);
    if (direct < result.distance) {
      result.distance = direct;
      result.best_target = kInvalidId;
    }
  }

  if (path_doors != nullptr && result.best_target != kInvalidId) {
    // Reconstruct, expanding shortcut edges with bounded local searches.
    std::vector<std::pair<DoorId, bool>> rev;  // (door, reached by shortcut)
    for (DoorId cur = result.best_target; cur != kInvalidId;) {
      rev.emplace_back(cur, parent_shortcut_[cur]);
      cur = parent_[cur];
    }
    std::reverse(rev.begin(), rev.end());
    path_doors->clear();
    path_doors->push_back(rev[0].first);
    DijkstraEngine expander(graph_);
    for (size_t i = 1; i < rev.size(); ++i) {
      if (rev[i].second) {
        expander.Start(rev[i - 1].first);
        const DoorId goal = rev[i].first;
        expander.RunToTargets(Span<const DoorId>(&goal, 1));
        const std::vector<DoorId> seg = expander.PathTo(goal);
        for (size_t j = 1; j < seg.size(); ++j) path_doors->push_back(seg[j]);
      } else {
        path_doors->push_back(rev[i].first);
      }
    }
  }
  return result;
}

double RoadIndex::Distance(const IndoorPoint& s, const IndoorPoint& t) {
  std::vector<uint8_t> open = OpenForTarget(t.partition);
  MarkOpen(s.partition, open);  // Rnets containing s are expanded too
  return OverlaySearch(s, t, open, nullptr).distance;
}

double RoadIndex::Path(const IndoorPoint& s, const IndoorPoint& t,
                       std::vector<DoorId>* doors) {
  std::vector<uint8_t> open = OpenForTarget(t.partition);
  MarkOpen(s.partition, open);
  return OverlaySearch(s, t, open, doors).distance;
}

void RoadIndex::SetObjects(std::vector<IndoorPoint> objects) {
  objects_ = std::move(objects);
  objects_by_partition_.assign(venue_.NumPartitions(), {});
  node_has_object_.assign(hierarchy_.nodes_.size(), 0);
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
    objects_by_partition_[objects_[o].partition].push_back(o);
    for (DoorId d : venue_.DoorsOf(objects_[o].partition)) {
      for (NodeId n = hierarchy_.leaf_of_door_[d]; n != kInvalidId;
           n = hierarchy_.nodes_[n].parent) {
        if (node_has_object_[n]) break;
        node_has_object_[n] = 1;
      }
    }
  }
}

std::vector<GTreeObjectResult> RoadIndex::Knn(const IndoorPoint& q,
                                              size_t k) {
  std::vector<GTreeObjectResult> all = SearchINE(q, k, kInfDistance);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<GTreeObjectResult> RoadIndex::Range(const IndoorPoint& q,
                                                double radius) {
  return SearchINE(q, std::numeric_limits<size_t>::max(), radius);
}

std::vector<GTreeObjectResult> RoadIndex::SearchINE(const IndoorPoint& q,
                                                    size_t k, double radius) {
  // Incremental overlay expansion: Rnets with objects are open; doors are
  // settled in distance order and objects of touched partitions scored.
  ++epoch_;
  using HE = std::pair<double, DoorId>;
  std::priority_queue<HE, std::vector<HE>, std::greater<HE>> heap;
  auto reach = [&](DoorId d, double dd, DoorId p, bool shortcut) {
    if (mark_[d] != epoch_) {
      mark_[d] = epoch_;
      settled_[d] = 0;
      dist_[d] = kInfDistance;
    }
    if (dd < dist_[d]) {
      dist_[d] = dd;
      parent_[d] = p;
      parent_shortcut_[d] = shortcut ? 1 : 0;
      heap.emplace(dd, d);
    }
  };
  std::vector<uint8_t> is_source(graph_.NumVertices(), 0);
  for (DoorId u : venue_.DoorsOf(q.partition)) {
    is_source[u] = 1;
    reach(u, venue_.DistanceToDoor(q, u), kInvalidId, false);
  }
  // Rnets with objects are open, and so are the Rnets containing q.
  std::vector<uint8_t> open(node_has_object_.begin(),
                            node_has_object_.end());
  MarkOpen(q.partition, open);
  std::vector<double> best_obj(objects_.size(), kInfDistance);
  for (ObjectId o : objects_by_partition_[q.partition]) {
    best_obj[o] = venue_.IntraPartitionDistance(q.partition, q.position,
                                                objects_[o].position);
  }

  // Termination bound: the radius, or the exact kth-smallest current
  // object distance for kNN mode.
  bool bound_dirty = true;
  double cached_bound = kInfDistance;
  auto bound = [&]() {
    if (radius != kInfDistance) return radius;
    if (bound_dirty) {
      std::vector<double> copy = best_obj;
      if (copy.size() >= k) {
        std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end());
        cached_bound = copy[k - 1];
      } else {
        cached_bound = kInfDistance;
      }
      bound_dirty = false;
    }
    return cached_bound;
  };

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > bound()) break;
    if (settled_[u] && mark_[u] == epoch_) continue;
    if (d > dist_[u]) continue;
    settled_[u] = 1;

    const Door& door = venue_.door(u);
    for (PartitionId p : {door.partition_a, door.partition_b}) {
      if (p == kInvalidId) continue;
      for (ObjectId o : objects_by_partition_[p]) {
        const double cand = d + venue_.DistanceToDoor(objects_[o], u);
        if (cand < best_obj[o]) {
          best_obj[o] = cand;
          bound_dirty = true;
        }
      }
    }

    NodeId rnet = kInvalidId;
    for (NodeId n = hierarchy_.leaf_of_door_[u]; n != kInvalidId;
         n = hierarchy_.nodes_[n].parent) {
      if (open[n]) break;
      if (IndexOf(hierarchy_.nodes_[n].borders, u) >= 0) {
        rnet = n;
      } else if (!hierarchy_.nodes_[n].is_leaf()) {
        break;
      }
    }
    if (rnet != kInvalidId) {
      const auto& node = hierarchy_.nodes_[rnet];
      for (DoorId b : node.borders) {
        if (b == u) continue;
        float w;
        if (node.is_leaf()) {
          w = node.dist.at(IndexOf(node.vertices, u),
                           IndexOf(node.borders, b));
        } else {
          w = node.dist.at(IndexOf(node.matrix_doors, u),
                           IndexOf(node.matrix_doors, b));
        }
        reach(b, d + w, u, true);
      }
    }
    const NodeId u_leaf = hierarchy_.leaf_of_door_[u];
    for (const D2DEdge& e : graph_.EdgesOf(u)) {
      if (!is_source[u] && hierarchy_.leaf_of_door_[e.to] == u_leaf &&
          !open[u_leaf]) {
        continue;
      }
      reach(e.to, d + e.weight, u, false);
    }
  }

  std::vector<GTreeObjectResult> results;
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
    if (best_obj[o] <= radius) results.push_back({o, best_obj[o]});
  }
  std::sort(results.begin(), results.end(),
            [](const GTreeObjectResult& a, const GTreeObjectResult& b) {
              return a.distance < b.distance;
            });
  return results;
}

}  // namespace viptree
