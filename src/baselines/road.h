// ROAD [17] (Lee et al., TKDE 2012) adapted to the indoor D2D graph — the
// second road-network competitor of §4. ROAD organizes the graph as a
// hierarchy of Rnets with border-to-border *shortcuts*; queries run a
// Dijkstra-style search over the route overlay in which Rnets that cannot
// contain the target (for kNN: contain no object) are bypassed through
// their shortcuts instead of being expanded.
//
// The Rnet hierarchy and shortcut matrices reuse the same multilevel
// partitioning substrate as G-tree (fanout 2, deeper hierarchy); the
// essential published difference between the two systems is preserved:
// ROAD is search-based where G-tree is assembly-based.

#ifndef VIPTREE_BASELINES_ROAD_H_
#define VIPTREE_BASELINES_ROAD_H_

#include <cstdint>
#include <vector>

#include "baselines/gtree.h"

namespace viptree {

struct RoadOptions {
  size_t leaf_tau = 64;
  uint64_t seed = 1;
};

class RoadIndex {
 public:
  RoadIndex(const Venue& venue, const D2DGraph& graph,
            const RoadOptions& options = {});

  double Distance(const IndoorPoint& s, const IndoorPoint& t);

  // Distance plus full door path (shortcut edges are re-expanded locally).
  double Path(const IndoorPoint& s, const IndoorPoint& t,
              std::vector<DoorId>* doors);

  void SetObjects(std::vector<IndoorPoint> objects);
  std::vector<GTreeObjectResult> Knn(const IndoorPoint& q, size_t k);
  std::vector<GTreeObjectResult> Range(const IndoorPoint& q, double radius);

  uint64_t MemoryBytes() const { return hierarchy_.MemoryBytes(); }

 private:
  struct SearchResult {
    double distance = kInfDistance;
    DoorId best_target = kInvalidId;
  };
  // Overlay Dijkstra from the doors of `s` until all doors of the target
  // partition settle (or the bound is exceeded). `open` marks node ids
  // whose interiors must be expanded.
  SearchResult OverlaySearch(const IndoorPoint& s, const IndoorPoint& t,
                             const std::vector<uint8_t>& open,
                             std::vector<DoorId>* path_doors);

  std::vector<uint8_t> OpenForTarget(PartitionId target) const;
  void MarkOpen(PartitionId partition, std::vector<uint8_t>& open) const;

  // Incremental network expansion over the overlay for kNN/range.
  std::vector<GTreeObjectResult> SearchINE(const IndoorPoint& q, size_t k,
                                           double radius);

  const Venue& venue_;
  const D2DGraph& graph_;
  // The Rnet hierarchy with shortcut matrices (fanout-2 G-tree structure).
  GTree hierarchy_;

  // Search state (epoch-stamped).
  std::vector<double> dist_;
  std::vector<DoorId> parent_;
  std::vector<uint8_t> parent_shortcut_;
  std::vector<uint8_t> settled_;
  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;

  std::vector<IndoorPoint> objects_;
  std::vector<std::vector<ObjectId>> objects_by_partition_;
  std::vector<uint8_t> node_has_object_;
};

}  // namespace viptree

#endif  // VIPTREE_BASELINES_ROAD_H_
