#include "baselines/dist_matrix.h"

#include <algorithm>

#include "common/check.h"

namespace viptree {

DistanceMatrix::DistanceMatrix(const Venue& venue, const D2DGraph& graph)
    : venue_(venue),
      dist_(graph.NumVertices(), graph.NumVertices(),
            std::numeric_limits<float>::infinity()),
      next_hop_(graph.NumVertices(), graph.NumVertices(), kInvalidId) {
  DijkstraEngine engine(graph);
  const size_t n = graph.NumVertices();
  for (DoorId src = 0; src < static_cast<DoorId>(n); ++src) {
    engine.Start(src);
    engine.RunAll();
    for (DoorId dst = 0; dst < static_cast<DoorId>(n); ++dst) {
      if (!engine.Settled(dst)) continue;
      dist_.at(src, dst) = static_cast<float>(engine.DistanceTo(dst));
      if (dst == src) continue;
      // First door on src -> dst: walk the parent chain from dst back and
      // keep the last non-src door seen.
      DoorId first = dst;
      for (DoorId cur = engine.ParentOf(dst); cur != src && cur != kInvalidId;
           cur = engine.ParentOf(cur)) {
        first = cur;
      }
      next_hop_.at(src, dst) = first == dst ? kInvalidId : first;
    }
  }
}

std::vector<DoorId> DistanceMatrix::DoorPath(DoorId a, DoorId b) const {
  std::vector<DoorId> path = {a};
  DoorId cur = a;
  while (cur != b) {
    const DoorId hop = next_hop_.at(cur, b);
    cur = hop == kInvalidId ? b : hop;
    path.push_back(cur);
    VIPTREE_DCHECK(path.size() <= dist_.rows());
  }
  return path;
}

void DistanceMatrix::CandidateDoors(PartitionId p, PartitionId goal,
                                    bool optimized,
                                    std::vector<DoorId>& out) const {
  out.clear();
  for (DoorId d : venue_.DoorsOf(p)) {
    if (optimized) {
      const PartitionId other = venue_.OtherSide(d, p);
      // Doors into no-through partitions cannot be on a shortest path to a
      // different partition (and exterior doors lead nowhere) — except when
      // the no-through partition is the other endpoint's.
      if (other != goal &&
          (other == kInvalidId ||
           venue_.Classify(other) == PartitionClass::kNoThrough)) {
        continue;
      }
    }
    out.push_back(d);
  }
  if (out.empty()) {
    // Degenerate no-through source/target: fall back to all doors.
    for (DoorId d : venue_.DoorsOf(p)) out.push_back(d);
  }
}

double DistanceMatrix::Distance(const IndoorPoint& s, const IndoorPoint& t,
                                bool optimized) const {
  last_pair_count_ = 0;
  double best = kInfDistance;
  if (s.partition == t.partition) {
    best = venue_.IntraPartitionDistance(s.partition, s.position, t.position);
  }
  std::vector<DoorId> s_doors, t_doors;
  CandidateDoors(s.partition, t.partition, optimized, s_doors);
  CandidateDoors(t.partition, s.partition, optimized, t_doors);
  for (DoorId ds : s_doors) {
    const double s_leg = venue_.DistanceToDoor(s, ds);
    for (DoorId dt : t_doors) {
      ++last_pair_count_;
      const double cand =
          s_leg + dist_.at(ds, dt) + venue_.DistanceToDoor(t, dt);
      best = std::min(best, cand);
    }
  }
  return best;
}

}  // namespace viptree
