// G-tree [28], the state-of-the-art road-network index of §4, adapted to
// the indoor D2D graph exactly as the paper describes ("constructed by
// passing the D2D graph as input and the query processing algorithms are
// adapted to suit indoor query processing").
//
// Differences from IP-Tree that make it a distinct system (§5): leaves are
// produced by a multilevel graph partitioner over doors (ignoring indoor
// partitions), the node door sets are *borders* (vertices with an edge
// leaving the subgraph) rather than access doors, fanout is a fixed
// parameter, and there is no superior-door or hallway machinery. The
// indoor adaptation maps a query point to all doors of its partition,
// which may straddle several G-tree leaves — each (source leaf, target
// leaf) pair is assembled separately, one reason the adapted G-tree is
// slow on indoor graphs.

#ifndef VIPTREE_BASELINES_GTREE_H_
#define VIPTREE_BASELINES_GTREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/matrix.h"
#include "graph/d2d_graph.h"
#include "graph/dijkstra.h"
#include "model/venue.h"
#include "common/span.h"

namespace viptree {

struct GTreeOptions {
  int fanout = 4;        // children per internal node
  size_t leaf_tau = 64;  // maximum doors per leaf
  uint64_t seed = 1;
};

struct GTreeObjectResult {
  ObjectId object = kInvalidId;
  double distance = kInfDistance;
};

class GTree {
 public:
  GTree(const Venue& venue, const D2DGraph& graph,
        const GTreeOptions& options = {});

  GTree(const GTree&) = delete;
  GTree& operator=(const GTree&) = delete;
  GTree(GTree&&) = default;

  double Distance(const IndoorPoint& s, const IndoorPoint& t);
  double DoorDistance(DoorId u, DoorId v);

  // Shortest path: distance plus the full door sequence.
  double Path(const IndoorPoint& s, const IndoorPoint& t,
              std::vector<DoorId>* doors);

  void SetObjects(std::vector<IndoorPoint> objects);
  std::vector<GTreeObjectResult> Knn(const IndoorPoint& q, size_t k);
  std::vector<GTreeObjectResult> Range(const IndoorPoint& q, double radius);

  uint64_t MemoryBytes() const;
  size_t NumNodes() const { return nodes_.size(); }
  size_t NumLeaves() const { return num_leaves_; }

 private:
  // ROAD reuses the hierarchy and shortcut matrices (docs/ARCHITECTURE.md).
  friend class RoadIndex;

  struct GNode {
    NodeId id = kInvalidId;
    NodeId parent = kInvalidId;
    int level = 1;
    std::vector<NodeId> children;
    std::vector<DoorId> vertices;  // leaf only, sorted
    std::vector<DoorId> borders;   // sorted
    std::vector<DoorId> matrix_doors;  // non-leaf: union of child borders
    FlatMatrix<float> dist;      // leaf: vertices x borders; else square
    FlatMatrix<DoorId> next_hop;  // first matrix door on the path
    uint32_t leaf_begin = 0;
    uint32_t leaf_end = 0;
    bool is_leaf() const { return children.empty(); }
  };

  // Distances from a multi-source seed in one leaf up to `target`'s
  // borders; mirrors IP-Tree's Algorithm 2.
  struct Ascent {
    std::vector<NodeId> chain;
    std::vector<std::vector<double>> border_dist;
    std::vector<std::vector<std::pair<DoorId, int>>> back;  // (pred, idx)
  };
  Ascent Ascend(NodeId leaf, const std::vector<DijkstraSource>& seeds,
                NodeId target) const;

  NodeId Lca(NodeId a, NodeId b) const;
  bool NodeContainsLeaf(NodeId n, NodeId leaf) const;
  NodeId ChildToward(NodeId ancestor, NodeId leaf) const;

  // Groups the doors of a partition (with offsets from `p`) by leaf.
  std::unordered_map<NodeId, std::vector<DijkstraSource>> SourceGroups(
      const IndoorPoint& p) const;

  double AssembleDistance(
      const std::unordered_map<NodeId, std::vector<DijkstraSource>>& s_groups,
      const std::unordered_map<NodeId, std::vector<DijkstraSource>>& t_groups,
      bool want_path, std::vector<DoorId>* path_doors);

  // Path expansion through next-hop matrices (descend into the deepest node
  // representing the pair).
  void Expand(DoorId x, DoorId y, NodeId ctx, std::vector<DoorId>& out) const;
  bool Represents(DoorId x, DoorId y, NodeId n) const;

  double LocalDistance(const IndoorPoint& s, const IndoorPoint& t,
                       std::vector<DoorId>* path_doors);

  const Venue& venue_;
  const D2DGraph& graph_;
  GTreeOptions options_;
  std::vector<GNode> nodes_;
  NodeId root_ = kInvalidId;
  size_t num_leaves_ = 0;
  std::vector<NodeId> leaf_of_door_;
  std::vector<uint8_t> is_border_;  // border of at least one leaf
  mutable DijkstraEngine engine_;

  // Objects.
  std::vector<IndoorPoint> objects_;
  std::vector<std::vector<ObjectId>> leaf_objects_;
  // leaf -> border col -> per-object distance (aligned with leaf_objects_).
  std::vector<std::vector<std::vector<double>>> leaf_border_obj_;
  std::vector<uint32_t> obj_prefix_;  // by leaf dfs index

  std::vector<GTreeObjectResult> SearchObjects(const IndoorPoint& q, size_t k,
                                               double radius);
};

}  // namespace viptree

#endif  // VIPTREE_BASELINES_GTREE_H_
