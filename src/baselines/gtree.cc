#include "baselines/gtree.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/check.h"
#include "partition/multilevel_partitioner.h"
#include "common/span.h"

namespace viptree {

namespace {

void SortUnique(std::vector<DoorId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

int IndexOf(Span<const DoorId> doors, DoorId d) {
  const auto it = std::lower_bound(doors.begin(), doors.end(), d);
  if (it == doors.end() || *it != d) return -1;
  return static_cast<int>(it - doors.begin());
}

}  // namespace

GTree::GTree(const Venue& venue, const D2DGraph& graph,
             const GTreeOptions& options)
    : venue_(venue), graph_(graph), options_(options), engine_(graph) {
  VIPTREE_CHECK(options_.fanout >= 2);

  // ---- 1. Recursive multilevel partitioning into a tree of door sets.
  MultilevelPartitioner partitioner(graph, options_.seed);
  std::vector<DoorId> all(graph.NumVertices());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<DoorId>(i);

  struct BuildItem {
    std::vector<DoorId> vertices;
    NodeId parent;
  };
  std::vector<BuildItem> queue_items;
  queue_items.push_back({std::move(all), kInvalidId});
  leaf_of_door_.assign(graph.NumVertices(), kInvalidId);

  // Build nodes top-down; levels fixed afterwards bottom-up.
  for (size_t qi = 0; qi < queue_items.size(); ++qi) {
    BuildItem item = std::move(queue_items[qi]);
    GNode node;
    node.id = static_cast<NodeId>(nodes_.size());
    node.parent = item.parent;
    if (item.parent != kInvalidId) {
      nodes_[item.parent].children.push_back(node.id);
    } else {
      root_ = node.id;
    }
    if (item.vertices.size() <= options_.leaf_tau) {
      node.vertices = std::move(item.vertices);
      SortUnique(node.vertices);
      for (DoorId d : node.vertices) leaf_of_door_[d] = node.id;
      ++num_leaves_;
      nodes_.push_back(std::move(node));
      continue;
    }
    const int parts = std::min<int>(options_.fanout,
                                    static_cast<int>(item.vertices.size()));
    const std::vector<int> assign =
        partitioner.Partition(item.vertices, parts);
    std::vector<std::vector<DoorId>> groups(parts);
    for (size_t i = 0; i < item.vertices.size(); ++i) {
      groups[assign[i]].push_back(item.vertices[i]);
    }
    const NodeId id = node.id;
    nodes_.push_back(std::move(node));
    for (auto& g : groups) {
      if (!g.empty()) queue_items.push_back({std::move(g), id});
    }
  }

  // ---- 2. Levels (leaves = 1) and leaf DFS intervals.
  for (size_t i = nodes_.size(); i-- > 0;) {
    GNode& n = nodes_[i];
    if (n.is_leaf()) {
      n.level = 1;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = nodes_.size(); i-- > 0;) {
      GNode& n = nodes_[i];
      if (n.is_leaf()) continue;
      int max_child = 0;
      for (NodeId c : n.children) max_child = std::max(max_child,
                                                       nodes_[c].level);
      if (n.level != max_child + 1) {
        n.level = max_child + 1;
        changed = true;
      }
    }
  }
  {
    uint32_t counter = 0;
    struct Frame {
      NodeId node;
      size_t next;
      uint32_t begin;
    };
    std::vector<Frame> stack = {{root_, 0, 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      GNode& n = nodes_[f.node];
      if (n.is_leaf()) {
        n.leaf_begin = counter;
        n.leaf_end = ++counter;
        stack.pop_back();
        continue;
      }
      if (f.next == 0) f.begin = counter;
      if (f.next < n.children.size()) {
        stack.push_back({n.children[f.next++], 0, counter});
      } else {
        n.leaf_begin = f.begin;
        n.leaf_end = counter;
        stack.pop_back();
      }
    }
  }

  // ---- 3. Borders per node: a door is a border of node N if it has an
  // edge to a door outside N's subtree. Computed bottom-up (children have
  // larger ids than parents in our top-down build, so reverse id order
  // visits children first).
  is_border_.assign(graph.NumVertices(), 0);
  for (size_t i = nodes_.size(); i-- > 0;) {
    GNode& n = nodes_[i];
    std::vector<DoorId> candidates;
    if (n.is_leaf()) {
      candidates = n.vertices;
    } else {
      for (NodeId c : n.children) {
        candidates.insert(candidates.end(), nodes_[c].borders.begin(),
                          nodes_[c].borders.end());
      }
      SortUnique(candidates);
    }
    for (DoorId d : candidates) {
      bool border = false;
      for (const D2DEdge& e : graph.EdgesOf(d)) {
        const NodeId other_leaf = leaf_of_door_[e.to];
        const uint32_t idx = nodes_[other_leaf].leaf_begin;
        if (idx < n.leaf_begin || idx >= n.leaf_end) {
          border = true;
          break;
        }
      }
      if (border) n.borders.push_back(d);
    }
    if (n.is_leaf()) {
      for (DoorId d : n.borders) is_border_[d] = 1;
    }
  }

  // ---- 4. Leaf matrices: vertices x borders, global Dijkstra per border.
  for (GNode& n : nodes_) {
    if (!n.is_leaf()) continue;
    n.dist = FlatMatrix<float>(n.vertices.size(), n.borders.size(), 0.0f);
    n.next_hop =
        FlatMatrix<DoorId>(n.vertices.size(), n.borders.size(), kInvalidId);
    for (size_t col = 0; col < n.borders.size(); ++col) {
      const DoorId b = n.borders[col];
      engine_.Start(b);
      engine_.RunToTargets(n.vertices);
      for (size_t row = 0; row < n.vertices.size(); ++row) {
        const DoorId d = n.vertices[row];
        VIPTREE_CHECK(engine_.Settled(d));
        n.dist.at(row, col) = static_cast<float>(engine_.DistanceTo(d));
        if (d == b) continue;
        // First border door on the path d -> b, for path expansion.
        DoorId first_border = kInvalidId;
        for (DoorId cur = engine_.ParentOf(d); cur != b && cur != kInvalidId;
             cur = engine_.ParentOf(cur)) {
          if (is_border_[cur]) {
            first_border = cur;
            break;
          }
        }
        const DoorId first = engine_.ParentOf(d);
        n.next_hop.at(row, col) =
            first_border != kInvalidId ? first_border
                                       : (first == b ? kInvalidId : first);
      }
    }
  }

  // ---- 5. Non-leaf matrices on the *global* leaf-border graph: vertices
  // are the borders of all leaves, edges connect borders of the same leaf
  // with their (already global) leaf-matrix distances plus the original
  // crossing edges. Each node's matrix is filled by Dijkstra on this graph,
  // so every entry is an exact global distance. (The G-tree hierarchy is
  // not level-uniform, so per-level border graphs would be disconnected.)
  std::vector<DoorId> vertices;
  for (const GNode& n : nodes_) {
    if (n.is_leaf()) {
      vertices.insert(vertices.end(), n.borders.begin(), n.borders.end());
    }
  }
  SortUnique(vertices);
  std::vector<int> vertex_of(graph.NumVertices(), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    vertex_of[vertices[i]] = static_cast<int>(i);
  }
  struct Arc {
    int to;
    float w;
  };
  std::vector<std::vector<Arc>> adj(vertices.size());
  for (const GNode& c : nodes_) {
    if (!c.is_leaf()) continue;
    for (size_t i = 0; i < c.borders.size(); ++i) {
      for (size_t j = i + 1; j < c.borders.size(); ++j) {
        const float w = c.dist.at(IndexOf(c.vertices, c.borders[i]),
                                  IndexOf(c.borders, c.borders[j]));
        const int u = vertex_of[c.borders[i]];
        const int v = vertex_of[c.borders[j]];
        adj[u].push_back({v, w});
        adj[v].push_back({u, w});
      }
    }
  }
  // Crossing edges between leaves (their endpoints are borders).
  for (DoorId d = 0; d < static_cast<DoorId>(graph.NumVertices()); ++d) {
    if (!is_border_[d]) continue;
    for (const D2DEdge& e : graph.EdgesOf(d)) {
      if (leaf_of_door_[e.to] == leaf_of_door_[d] || e.to < d) continue;
      adj[vertex_of[d]].push_back({vertex_of[e.to], e.weight});
      adj[vertex_of[e.to]].push_back({vertex_of[d], e.weight});
    }
  }
  {
    // Reusable Dijkstra state over the global border graph.
    std::vector<double> dist(vertices.size());
    std::vector<int> parent(vertices.size());
    std::vector<uint32_t> mark(vertices.size(), 0);
    std::vector<uint8_t> done(vertices.size(), 0);
    uint32_t epoch = 0;
    using HE = std::pair<double, int>;
    for (size_t ni = 0; ni < nodes_.size(); ++ni) {
      GNode& n = nodes_[ni];
      if (n.is_leaf()) continue;
      n.matrix_doors.clear();
      for (NodeId c : n.children) {
        n.matrix_doors.insert(n.matrix_doors.end(),
                              nodes_[c].borders.begin(),
                              nodes_[c].borders.end());
      }
      SortUnique(n.matrix_doors);
      const size_t m = n.matrix_doors.size();
      n.dist = FlatMatrix<float>(m, m, 0.0f);
      n.next_hop = FlatMatrix<DoorId>(m, m, kInvalidId);
      std::vector<int> targets;
      for (DoorId d : n.matrix_doors) targets.push_back(vertex_of[d]);
      std::sort(targets.begin(), targets.end());
      for (size_t row = 0; row < m; ++row) {
        const int src = vertex_of[n.matrix_doors[row]];
        ++epoch;
        std::priority_queue<HE, std::vector<HE>, std::greater<HE>> heap;
        auto reach = [&](int v, double d, int p) {
          if (mark[v] != epoch) {
            mark[v] = epoch;
            done[v] = 0;
            dist[v] = kInfDistance;
          }
          if (d < dist[v]) {
            dist[v] = d;
            parent[v] = p;
            heap.emplace(d, v);
          }
        };
        reach(src, 0.0, -1);
        size_t wanted = targets.size();
        while (wanted > 0 && !heap.empty()) {
          const auto [d, u] = heap.top();
          heap.pop();
          if (mark[u] == epoch && done[u]) continue;
          if (d > dist[u]) continue;
          done[u] = 1;
          if (std::binary_search(targets.begin(), targets.end(), u)) {
            --wanted;
          }
          for (const Arc& arc : adj[u]) {
            if (mark[arc.to] == epoch && done[arc.to]) continue;
            reach(arc.to, d + arc.w, u);
          }
        }
        for (size_t col = 0; col < m; ++col) {
          if (col == row) continue;
          const int dst = vertex_of[n.matrix_doors[col]];
          VIPTREE_CHECK(mark[dst] == epoch && done[dst]);
          n.dist.at(row, col) = static_cast<float>(dist[dst]);
          DoorId hop = kInvalidId;
          for (int cur = parent[dst]; cur != src && cur != -1;
               cur = parent[cur]) {
            const DoorId cd = vertices[cur];
            if (IndexOf(n.matrix_doors, cd) >= 0) hop = cd;
          }
          n.next_hop.at(row, col) = hop;
        }
      }
    }
  }
}

NodeId GTree::Lca(NodeId a, NodeId b) const {
  while (a != b) {
    if (nodes_[a].level < nodes_[b].level) {
      a = nodes_[a].parent;
    } else if (nodes_[b].level < nodes_[a].level) {
      b = nodes_[b].parent;
    } else {
      a = nodes_[a].parent;
      b = nodes_[b].parent;
    }
  }
  return a;
}

bool GTree::NodeContainsLeaf(NodeId n, NodeId leaf) const {
  const uint32_t idx = nodes_[leaf].leaf_begin;
  return idx >= nodes_[n].leaf_begin && idx < nodes_[n].leaf_end;
}

NodeId GTree::ChildToward(NodeId ancestor, NodeId leaf) const {
  NodeId cur = leaf;
  while (nodes_[cur].parent != ancestor) cur = nodes_[cur].parent;
  return cur;
}

GTree::Ascent GTree::Ascend(NodeId leaf,
                            const std::vector<DijkstraSource>& seeds,
                            NodeId target) const {
  Ascent out;
  const GNode& lnode = nodes_[leaf];
  out.chain.push_back(leaf);
  out.border_dist.emplace_back(lnode.borders.size(), kInfDistance);
  out.back.emplace_back(lnode.borders.size(),
                        std::make_pair(kInvalidId, -1));
  for (size_t c = 0; c < lnode.borders.size(); ++c) {
    for (const DijkstraSource& s : seeds) {
      const int row = IndexOf(lnode.vertices, s.door);
      VIPTREE_DCHECK(row >= 0);
      const double cand = s.offset + lnode.dist.at(row, c);
      if (cand < out.border_dist[0][c]) {
        out.border_dist[0][c] = cand;
        // A seed door that is itself this border contributes no extra hop.
        out.back[0][c] = {s.door == lnode.borders[c] ? kInvalidId : s.door,
                          -1};
      }
    }
  }
  NodeId cur = leaf;
  while (cur != target) {
    const NodeId parent = nodes_[cur].parent;
    const GNode& pn = nodes_[parent];
    const GNode& cn = nodes_[cur];
    const std::vector<double>& cdist = out.border_dist.back();
    const int child_idx = static_cast<int>(out.chain.size()) - 1;
    std::vector<double> pdist(pn.borders.size(), kInfDistance);
    std::vector<std::pair<DoorId, int>> pback(
        pn.borders.size(), std::make_pair(kInvalidId, -1));
    for (size_t c = 0; c < pn.borders.size(); ++c) {
      const DoorId a = pn.borders[c];
      const int inherited = IndexOf(cn.borders, a);
      if (inherited >= 0) {
        pdist[c] = cdist[inherited];
        pback[c] = out.back.back()[inherited];
        continue;
      }
      const int col = IndexOf(pn.matrix_doors, a);
      VIPTREE_DCHECK(col >= 0);
      for (size_t b = 0; b < cn.borders.size(); ++b) {
        const int row = IndexOf(pn.matrix_doors, cn.borders[b]);
        const double cand = cdist[b] + pn.dist.at(row, col);
        if (cand < pdist[c]) {
          pdist[c] = cand;
          pback[c] = {cn.borders[b], child_idx};
        }
      }
    }
    out.chain.push_back(parent);
    out.border_dist.push_back(std::move(pdist));
    out.back.push_back(std::move(pback));
    cur = parent;
  }
  return out;
}

std::unordered_map<NodeId, std::vector<DijkstraSource>> GTree::SourceGroups(
    const IndoorPoint& p) const {
  std::unordered_map<NodeId, std::vector<DijkstraSource>> groups;
  for (DoorId d : venue_.DoorsOf(p.partition)) {
    groups[leaf_of_door_[d]].push_back({d, venue_.DistanceToDoor(p, d)});
  }
  return groups;
}

double GTree::LocalDistance(const IndoorPoint& s, const IndoorPoint& t,
                            std::vector<DoorId>* path_doors) {
  double best = kInfDistance;
  if (s.partition == t.partition) {
    best = venue_.IntraPartitionDistance(s.partition, s.position, t.position);
  }
  std::vector<DijkstraSource> sources;
  for (DoorId u : venue_.DoorsOf(s.partition)) {
    sources.push_back({u, venue_.DistanceToDoor(s, u)});
  }
  engine_.Start(sources);
  const Span<const DoorId> targets = venue_.DoorsOf(t.partition);
  engine_.RunToTargets(targets);
  DoorId best_door = kInvalidId;
  for (DoorId dt : targets) {
    if (!engine_.Settled(dt)) continue;
    const double cand =
        engine_.DistanceTo(dt) + venue_.DistanceToDoor(t, dt);
    if (cand < best) {
      best = cand;
      best_door = dt;
    }
  }
  if (path_doors != nullptr && best_door != kInvalidId) {
    *path_doors = engine_.PathTo(best_door);
  }
  return best;
}

bool GTree::Represents(DoorId x, DoorId y, NodeId n) const {
  const GNode& node = nodes_[n];
  if (node.is_leaf()) {
    return IndexOf(node.vertices, x) >= 0 && IndexOf(node.vertices, y) >= 0 &&
           (IndexOf(node.borders, x) >= 0 || IndexOf(node.borders, y) >= 0);
  }
  return IndexOf(node.matrix_doors, x) >= 0 &&
         IndexOf(node.matrix_doors, y) >= 0;
}

void GTree::Expand(DoorId x, DoorId y, NodeId ctx,
                   std::vector<DoorId>& out) const {
  if (x == y) return;
  // Local recovery for the cases the matrices do not cover: a bounded
  // Dijkstra between two nearby doors.
  auto local = [this, &out](DoorId from, DoorId to) {
    engine_.Start(from);
    engine_.RunToTargets(Span<const DoorId>(&to, 1));
    const std::vector<DoorId> path = engine_.PathTo(to);
    for (size_t i = 1; i + 1 < path.size(); ++i) out.push_back(path[i]);
  };
  if (!is_border_[x] && !is_border_[y]) {
    local(x, y);
    return;
  }
  // Doors of one leaf expand within that leaf directly.
  if (leaf_of_door_[x] == leaf_of_door_[y]) {
    ctx = leaf_of_door_[x];
  } else {
    // Descend into the deepest node representing the pair.
    bool descended = true;
    while (descended && !nodes_[ctx].is_leaf()) {
      descended = false;
      for (NodeId c : nodes_[ctx].children) {
        if (Represents(x, y, c)) {
          ctx = c;
          descended = true;
          break;
        }
      }
    }
    if (!Represents(x, y, ctx)) {
      local(x, y);
      return;
    }
  }
  const GNode& node = nodes_[ctx];
  DoorId hop = kInvalidId;
  if (node.is_leaf()) {
    if (IndexOf(node.vertices, x) >= 0 && IndexOf(node.borders, y) >= 0) {
      hop = node.next_hop.at(IndexOf(node.vertices, x),
                             IndexOf(node.borders, y));
    } else if (IndexOf(node.vertices, y) >= 0 &&
               IndexOf(node.borders, x) >= 0) {
      hop = node.next_hop.at(IndexOf(node.vertices, y),
                             IndexOf(node.borders, x));
    } else {
      local(x, y);
      return;
    }
  } else {
    const int row = IndexOf(node.matrix_doors, x);
    const int col = IndexOf(node.matrix_doors, y);
    hop = node.next_hop.at(row, col);
  }
  if (hop == kInvalidId) {
    // Direct edge or interior-only path: recover locally.
    local(x, y);
    return;
  }
  Expand(x, hop, ctx, out);
  out.push_back(hop);
  Expand(hop, y, ctx, out);
}

double GTree::AssembleDistance(
    const std::unordered_map<NodeId, std::vector<DijkstraSource>>& s_groups,
    const std::unordered_map<NodeId, std::vector<DijkstraSource>>& t_groups,
    bool want_path, std::vector<DoorId>* path_doors) {
  double best = kInfDistance;
  for (const auto& [sleaf, sseeds] : s_groups) {
    for (const auto& [tleaf, tseeds] : t_groups) {
      VIPTREE_DCHECK(sleaf != tleaf);
      const NodeId lca = Lca(sleaf, tleaf);
      const NodeId ns = ChildToward(lca, sleaf);
      const NodeId nt = ChildToward(lca, tleaf);
      const Ascent as = Ascend(sleaf, sseeds, ns);
      const Ascent at = Ascend(tleaf, tseeds, nt);
      const GNode& lnode = nodes_[lca];
      const GNode& nsn = nodes_[ns];
      const GNode& ntn = nodes_[nt];
      size_t bi = 0, bj = 0;
      double local_best = kInfDistance;
      for (size_t i = 0; i < nsn.borders.size(); ++i) {
        const int row = IndexOf(lnode.matrix_doors, nsn.borders[i]);
        for (size_t j = 0; j < ntn.borders.size(); ++j) {
          const int col = IndexOf(lnode.matrix_doors, ntn.borders[j]);
          const double cand = as.border_dist.back()[i] +
                              lnode.dist.at(row, col) +
                              at.border_dist.back()[j];
          if (cand < local_best) {
            local_best = cand;
            bi = i;
            bj = j;
          }
        }
      }
      if (local_best < best) {
        best = local_best;
        if (want_path && path_doors != nullptr &&
            local_best != kInfDistance) {
          path_doors->clear();
          // Backtrack both sides and expand.
          auto backtrack = [this](const Ascent& a, size_t top) {
            std::vector<DoorId> doors;
            int idx = static_cast<int>(a.chain.size()) - 1;
            size_t c = top;
            doors.push_back(nodes_[a.chain[idx]].borders[c]);
            std::pair<DoorId, int> b = a.back[idx][c];
            while (b.first != kInvalidId) {
              doors.push_back(b.first);
              if (b.second < 0) break;
              idx = b.second;
              c = static_cast<size_t>(
                  IndexOf(nodes_[a.chain[idx]].borders, b.first));
              b = a.back[idx][c];
            }
            std::reverse(doors.begin(), doors.end());
            return doors;
          };
          const std::vector<DoorId> ps = backtrack(as, bi);
          const std::vector<DoorId> pt = backtrack(at, bj);
          std::vector<DoorId>& out = *path_doors;
          out.push_back(ps[0]);
          for (size_t kk = 0; kk + 1 < ps.size(); ++kk) {
            Expand(ps[kk], ps[kk + 1], lca, out);
            out.push_back(ps[kk + 1]);
          }
          if (ps.back() != pt.back()) {
            Expand(ps.back(), pt.back(), lca, out);
            out.push_back(pt.back());
          }
          for (size_t kk = pt.size() - 1; kk-- > 0;) {
            Expand(pt[kk + 1], pt[kk], lca, out);
            out.push_back(pt[kk]);
          }
          out.erase(std::unique(out.begin(), out.end()), out.end());
        }
      }
    }
  }
  return best;
}

double GTree::Distance(const IndoorPoint& s, const IndoorPoint& t) {
  return Path(s, t, nullptr);
}

double GTree::Path(const IndoorPoint& s, const IndoorPoint& t,
                   std::vector<DoorId>* doors) {
  auto s_groups = SourceGroups(s);
  auto t_groups = SourceGroups(t);
  // If any source and target doors share a leaf, resolve locally (exact and
  // cheap: nearby in the graph).
  for (const auto& [sleaf, _] : s_groups) {
    if (t_groups.count(sleaf) > 0) return LocalDistance(s, t, doors);
  }
  return AssembleDistance(s_groups, t_groups, doors != nullptr, doors);
}

double GTree::DoorDistance(DoorId u, DoorId v) {
  if (u == v) return 0.0;
  if (leaf_of_door_[u] == leaf_of_door_[v]) {
    engine_.Start(u);
    engine_.RunToTargets(Span<const DoorId>(&v, 1));
    return engine_.DistanceTo(v);
  }
  std::unordered_map<NodeId, std::vector<DijkstraSource>> s_groups;
  std::unordered_map<NodeId, std::vector<DijkstraSource>> t_groups;
  s_groups[leaf_of_door_[u]].push_back({u, 0.0});
  t_groups[leaf_of_door_[v]].push_back({v, 0.0});
  return AssembleDistance(s_groups, t_groups, false, nullptr);
}

void GTree::SetObjects(std::vector<IndoorPoint> objects) {
  objects_ = std::move(objects);
  leaf_objects_.assign(nodes_.size(), {});
  leaf_border_obj_.assign(nodes_.size(), {});
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
    // An object lives in every leaf holding a door of its partition.
    std::vector<NodeId> leaves;
    for (DoorId d : venue_.DoorsOf(objects_[o].partition)) {
      leaves.push_back(leaf_of_door_[d]);
    }
    std::sort(leaves.begin(), leaves.end());
    leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
    for (NodeId l : leaves) leaf_objects_[l].push_back(o);
  }
  for (GNode& n : nodes_) {
    if (!n.is_leaf() || leaf_objects_[n.id].empty()) continue;
    const std::vector<ObjectId>& objs = leaf_objects_[n.id];
    auto& per_border = leaf_border_obj_[n.id];
    per_border.assign(n.borders.size(),
                      std::vector<double>(objs.size(), kInfDistance));
    for (size_t col = 0; col < n.borders.size(); ++col) {
      for (size_t i = 0; i < objs.size(); ++i) {
        const IndoorPoint& obj = objects_[objs[i]];
        double best = kInfDistance;
        for (DoorId d : venue_.DoorsOf(obj.partition)) {
          if (leaf_of_door_[d] != n.id) continue;
          const int row = IndexOf(n.vertices, d);
          best = std::min(best, static_cast<double>(n.dist.at(row, col)) +
                                    venue_.DistanceToDoor(obj, d));
        }
        per_border[col][i] = best;
      }
    }
  }
  obj_prefix_.assign(num_leaves_ + 1, 0);
  std::vector<uint32_t> at_dfs(num_leaves_, 0);
  for (const GNode& n : nodes_) {
    if (n.is_leaf()) {
      at_dfs[n.leaf_begin] = static_cast<uint32_t>(leaf_objects_[n.id].size());
    }
  }
  for (size_t i = 0; i < num_leaves_; ++i) {
    obj_prefix_[i + 1] = obj_prefix_[i] + at_dfs[i];
  }
}

std::vector<GTreeObjectResult> GTree::Knn(const IndoorPoint& q, size_t k) {
  return SearchObjects(q, k, kInfDistance);
}

std::vector<GTreeObjectResult> GTree::Range(const IndoorPoint& q,
                                            double radius) {
  return SearchObjects(q, std::numeric_limits<size_t>::max(), radius);
}

std::vector<GTreeObjectResult> GTree::SearchObjects(const IndoorPoint& q,
                                                    size_t k, double radius) {
  std::vector<GTreeObjectResult> results;
  if (objects_.empty() || k == 0) return results;

  // Ascend from every leaf containing a door of q's partition and merge.
  std::unordered_map<NodeId, std::vector<double>> border_dist;
  std::unordered_map<NodeId, bool> on_chain;
  const auto groups = SourceGroups(q);
  for (const auto& [leaf, seeds] : groups) {
    const Ascent a = Ascend(leaf, seeds, root_);
    for (size_t i = 0; i < a.chain.size(); ++i) {
      on_chain[a.chain[i]] = true;
      auto it = border_dist.find(a.chain[i]);
      if (it == border_dist.end()) {
        border_dist[a.chain[i]] = a.border_dist[i];
      } else {
        for (size_t c = 0; c < it->second.size(); ++c) {
          it->second[c] = std::min(it->second[c], a.border_dist[i][c]);
        }
      }
    }
  }

  std::vector<double> best_obj(objects_.size(), kInfDistance);

  std::function<const std::vector<double>&(NodeId)> ensure =
      [&](NodeId n) -> const std::vector<double>& {
    const auto it = border_dist.find(n);
    if (it != border_dist.end()) return it->second;
    const GNode& node = nodes_[n];
    const NodeId parent = node.parent;
    const GNode& pn = nodes_[parent];
    std::vector<double> dist(node.borders.size(), kInfDistance);
    // Candidate feeder door sets: the parent's borders (q outside) or the
    // chain children of the parent (q inside).
    std::vector<const GNode*> feeders;
    std::vector<const std::vector<double>*> feeder_dists;
    if (on_chain.count(parent) > 0) {
      for (NodeId c : pn.children) {
        if (on_chain.count(c) > 0) {
          feeders.push_back(&nodes_[c]);
          feeder_dists.push_back(&ensure(c));
        }
      }
    } else {
      feeders.push_back(&pn);
      feeder_dists.push_back(&ensure(parent));
    }
    for (size_t c = 0; c < node.borders.size(); ++c) {
      const int col = IndexOf(pn.matrix_doors, node.borders[c]);
      for (size_t f = 0; f < feeders.size(); ++f) {
        const std::vector<DoorId>& fb = feeders[f]->borders;
        for (size_t b = 0; b < fb.size(); ++b) {
          const int row = IndexOf(pn.matrix_doors, fb[b]);
          if (row < 0 || col < 0) continue;
          dist[c] = std::min(dist[c],
                             (*feeder_dists[f])[b] + pn.dist.at(row, col));
        }
      }
    }
    return border_dist.emplace(n, std::move(dist)).first->second;
  };

  auto mindist = [&](NodeId n) {
    if (on_chain.count(n) > 0) return 0.0;
    double m = kInfDistance;
    for (double d : ensure(n)) m = std::min(m, d);
    return m;
  };

  // Exact bound maintenance (kth smallest of current best distances).
  auto bound = [&]() {
    if (radius != kInfDistance) return radius;
    std::vector<double> copy = best_obj;
    if (copy.size() < k) return kInfDistance;
    std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end());
    return copy[k - 1];
  };

  using HE = std::pair<double, NodeId>;
  std::priority_queue<HE, std::vector<HE>, std::greater<HE>> heap;
  heap.emplace(0.0, root_);
  while (!heap.empty()) {
    const auto [bd, n] = heap.top();
    heap.pop();
    if (bd > bound()) break;
    const GNode& node = nodes_[n];
    if (!node.is_leaf()) {
      for (NodeId c : node.children) {
        if (obj_prefix_[nodes_[c].leaf_end] ==
            obj_prefix_[nodes_[c].leaf_begin]) {
          continue;
        }
        heap.emplace(mindist(c), c);
      }
      continue;
    }
    const std::vector<ObjectId>& objs = leaf_objects_[n];
    if (objs.empty()) continue;
    if (groups.count(n) > 0) {
      // q's own leaf: exact local distances by Dijkstra.
      std::vector<DijkstraSource> sources;
      for (DoorId u : venue_.DoorsOf(q.partition)) {
        sources.push_back({u, venue_.DistanceToDoor(q, u)});
      }
      engine_.Start(sources);
      std::vector<DoorId> targets;
      for (ObjectId o : objs) {
        for (DoorId d : venue_.DoorsOf(objects_[o].partition)) {
          targets.push_back(d);
        }
      }
      SortUnique(targets);
      engine_.RunToTargets(targets);
      for (ObjectId o : objs) {
        const IndoorPoint& obj = objects_[o];
        double d = obj.partition == q.partition
                       ? venue_.IntraPartitionDistance(q.partition,
                                                       q.position,
                                                       obj.position)
                       : kInfDistance;
        for (DoorId dd : venue_.DoorsOf(obj.partition)) {
          if (!engine_.Settled(dd)) continue;
          d = std::min(d, engine_.DistanceTo(dd) +
                              venue_.DistanceToDoor(obj, dd));
        }
        best_obj[o] = std::min(best_obj[o], d);
      }
      continue;
    }
    const std::vector<double>& q_to_b = ensure(n);
    for (size_t i = 0; i < objs.size(); ++i) {
      double d = kInfDistance;
      for (size_t col = 0; col < node.borders.size(); ++col) {
        d = std::min(d, q_to_b[col] + leaf_border_obj_[n][col][i]);
      }
      best_obj[objs[i]] = std::min(best_obj[objs[i]], d);
    }
  }

  // Collect final results.
  std::vector<GTreeObjectResult> all;
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
    if (best_obj[o] <= radius) all.push_back({o, best_obj[o]});
  }
  std::sort(all.begin(), all.end(),
            [](const GTreeObjectResult& a, const GTreeObjectResult& b) {
              return a.distance < b.distance;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

uint64_t GTree::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const GNode& n : nodes_) {
    bytes += sizeof(GNode);
    bytes += n.children.size() * sizeof(NodeId);
    bytes += n.vertices.size() * sizeof(DoorId);
    bytes += n.borders.size() * sizeof(DoorId);
    bytes += n.matrix_doors.size() * sizeof(DoorId);
    bytes += n.dist.MemoryBytes();
    bytes += n.next_hop.MemoryBytes();
  }
  bytes += leaf_of_door_.size() * sizeof(NodeId);
  bytes += is_border_.size();
  return bytes;
}

}  // namespace viptree
