// The distance matrix (DistMx) competitor of §1.2.2 / §4: materialized
// door-to-door distances (plus next-hop doors for path recovery) between
// ALL pairs of doors. O(1) distance lookups at O(D^2) storage and a very
// expensive construction (one full Dijkstra per door) — the paper could not
// build it beyond Men-2 and neither should you for large venues.
//
// Query processing implements both variants of Fig. 9(a):
//   * DistMx--: consider every (door of Partition(s)) x (door of
//     Partition(t)) pair;
//   * DistMx:   skip doors that lead only into no-through partitions
//     (the optimization of §4.3.1).
//
// The pair counter consumed by Fig. 9(a) is exposed via last_pair_count().

#ifndef VIPTREE_BASELINES_DIST_MATRIX_H_
#define VIPTREE_BASELINES_DIST_MATRIX_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"
#include "graph/d2d_graph.h"
#include "graph/dijkstra.h"
#include "model/venue.h"

namespace viptree {

class DistanceMatrix {
 public:
  // Builds the full matrix: one Dijkstra per door. The venue and graph
  // must outlive the object.
  DistanceMatrix(const Venue& venue, const D2DGraph& graph);

  DistanceMatrix(const DistanceMatrix&) = delete;
  DistanceMatrix& operator=(const DistanceMatrix&) = delete;
  DistanceMatrix(DistanceMatrix&&) = default;

  double DoorDistance(DoorId a, DoorId b) const { return dist_.at(a, b); }

  // Full door sequence of the shortest path a -> b (inclusive of both).
  std::vector<DoorId> DoorPath(DoorId a, DoorId b) const;

  // Point-to-point shortest distance; `optimized` enables the no-through
  // pruning of §4.3.1. Updates last_pair_count().
  double Distance(const IndoorPoint& s, const IndoorPoint& t,
                  bool optimized) const;

  // Number of door pairs examined by the most recent Distance() call
  // (Fig. 9a's metric).
  size_t last_pair_count() const { return last_pair_count_; }

  uint64_t MemoryBytes() const {
    return dist_.MemoryBytes() + next_hop_.MemoryBytes();
  }

 private:
  // Doors of `p` worth considering as entry/exit: under the optimization, a
  // door is skipped if its other side is a no-through partition — unless
  // that side is `goal`, the other endpoint's partition.
  void CandidateDoors(PartitionId p, PartitionId goal, bool optimized,
                      std::vector<DoorId>& out) const;

  const Venue& venue_;
  FlatMatrix<float> dist_;
  FlatMatrix<DoorId> next_hop_;  // first door on the path row -> col
  mutable size_t last_pair_count_ = 0;
};

}  // namespace viptree

#endif  // VIPTREE_BASELINES_DIST_MATRIX_H_
