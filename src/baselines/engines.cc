#include "baselines/engines.h"

#include <optional>
#include <utility>

#include "baselines/dist_aware.h"
#include "baselines/dist_matrix.h"
#include "baselines/gtree.h"
#include "baselines/road.h"
#include "common/check.h"
#include "core/distance_query.h"
#include "core/knn_query.h"
#include "core/object_index.h"
#include "core/path_query.h"
#include "core/vip_tree.h"
#include "engine/query_engine.h"

namespace viptree {

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kVipTree:
      return "VIP-Tree";
    case EngineKind::kIpTree:
      return "IP-Tree";
    case EngineKind::kDistAw:
      return "DistAw";
    case EngineKind::kDistAwPlusPlus:
      return "DistAw++";
    case EngineKind::kDistMx:
      return "DistMx";
    case EngineKind::kGTree:
      return "G-tree";
    case EngineKind::kRoad:
      return "ROAD";
  }
  return "?";
}

namespace {

std::vector<EngineObjectResult> Convert(
    const std::vector<ObjectResult>& in) {
  std::vector<EngineObjectResult> out;
  out.reserve(in.size());
  for (const ObjectResult& r : in) out.push_back({r.object, r.distance});
  return out;
}

std::vector<EngineObjectResult> Convert(
    const std::vector<GTreeObjectResult>& in) {
  std::vector<EngineObjectResult> out;
  out.reserve(in.size());
  for (const auto& r : in) out.push_back({r.object, r.distance});
  return out;
}

std::vector<EngineObjectResult> Convert(
    const std::vector<DistAwObjectResult>& in) {
  std::vector<EngineObjectResult> out;
  out.reserve(in.size());
  for (const auto& r : in) out.push_back({r.object, r.distance});
  return out;
}

// The VIP-Tree competitor runs through the engine façade, so the paper's
// figure benchmarks exercise the same code path the serving layer uses.
// This adds the façade's fixed per-query cost (a Timer read and Result
// construction, ~tens of ns) that the other engines do not pay — a
// deliberate trade: the reported VIP numbers are end-to-end serving
// latencies, a conservative bound on the bare-index latencies of the paper.
class VipEngine : public QueryEngine {
 public:
  VipEngine(const Venue& venue, const D2DGraph& graph)
      : engine_(venue, graph, /*objects=*/{}) {}

  EngineKind kind() const override { return EngineKind::kVipTree; }

  double Distance(const IndoorPoint& s, const IndoorPoint& t) override {
    return engine_.Run(engine::Query::Distance(s, t)).distance;
  }
  double Path(const IndoorPoint& s, const IndoorPoint& t,
              std::vector<DoorId>* doors) override {
    engine::Result r = engine_.Run(engine::Query::Path(s, t));
    if (doors != nullptr) *doors = std::move(r.doors);
    return r.distance;
  }
  void SetObjects(const std::vector<IndoorPoint>& objects) override {
    engine_.SetObjects(objects);
  }
  std::vector<EngineObjectResult> Knn(const IndoorPoint& q,
                                      size_t k) override {
    return Convert(engine_.Run(engine::Query::Knn(q, k)).objects);
  }
  std::vector<EngineObjectResult> Range(const IndoorPoint& q,
                                        double radius) override {
    return Convert(engine_.Run(engine::Query::Range(q, radius)).objects);
  }
  uint64_t IndexMemoryBytes() const override {
    // Tree only, matching the paper's Fig. 8 accounting (objects are
    // workload, not index).
    return engine_.tree().MemoryBytes();
  }

 private:
  engine::QueryEngine engine_;
};

class IpEngine : public QueryEngine {
 public:
  IpEngine(const Venue& venue, const D2DGraph& graph)
      : tree_(IPTree::Build(venue, graph)),
        distance_(tree_),
        path_(tree_) {}

  EngineKind kind() const override { return EngineKind::kIpTree; }

  double Distance(const IndoorPoint& s, const IndoorPoint& t) override {
    return distance_.Distance(s, t);
  }
  double Path(const IndoorPoint& s, const IndoorPoint& t,
              std::vector<DoorId>* doors) override {
    IndoorPath p = path_.Path(s, t);
    if (doors != nullptr) *doors = std::move(p.doors);
    return p.distance;
  }
  void SetObjects(const std::vector<IndoorPoint>& objects) override {
    objects_.emplace(tree_, objects);
    knn_.emplace(tree_, *objects_);
  }
  std::vector<EngineObjectResult> Knn(const IndoorPoint& q,
                                      size_t k) override {
    return Convert(knn_->Knn(q, k));
  }
  std::vector<EngineObjectResult> Range(const IndoorPoint& q,
                                        double radius) override {
    return Convert(knn_->WithinRange(q, radius));
  }
  uint64_t IndexMemoryBytes() const override { return tree_.MemoryBytes(); }

 private:
  IPTree tree_;
  IPDistanceQuery distance_;
  IPPathQuery path_;
  std::optional<ObjectIndex> objects_;
  std::optional<KnnQuery> knn_;
};

class DistAwEngine : public QueryEngine {
 public:
  DistAwEngine(const Venue& venue, const D2DGraph& graph,
               const DistanceMatrix* shared, bool plus_plus)
      : plus_plus_(plus_plus) {
    if (plus_plus && shared == nullptr) {
      owned_matrix_.emplace(venue, graph);
      shared = &*owned_matrix_;
    }
    model_.emplace(venue, graph, plus_plus ? shared : nullptr);
  }

  EngineKind kind() const override {
    return plus_plus_ ? EngineKind::kDistAwPlusPlus : EngineKind::kDistAw;
  }

  double Distance(const IndoorPoint& s, const IndoorPoint& t) override {
    return model_->Distance(s, t);
  }
  double Path(const IndoorPoint& s, const IndoorPoint& t,
              std::vector<DoorId>* doors) override {
    double distance = kInfDistance;
    std::vector<DoorId> path = model_->Path(s, t, &distance);
    if (doors != nullptr) *doors = std::move(path);
    return distance;
  }
  void SetObjects(const std::vector<IndoorPoint>& objects) override {
    model_->SetObjects(objects);
  }
  std::vector<EngineObjectResult> Knn(const IndoorPoint& q,
                                      size_t k) override {
    return Convert(model_->Knn(q, k));
  }
  std::vector<EngineObjectResult> Range(const IndoorPoint& q,
                                        double radius) override {
    return Convert(model_->Range(q, radius));
  }
  uint64_t IndexMemoryBytes() const override {
    uint64_t bytes = model_->MemoryBytes();
    if (owned_matrix_.has_value()) bytes += owned_matrix_->MemoryBytes();
    return bytes;
  }

 private:
  bool plus_plus_;
  std::optional<DistanceMatrix> owned_matrix_;
  std::optional<DistAwareModel> model_;
};

class DistMxEngine : public QueryEngine {
 public:
  DistMxEngine(const Venue& venue, const D2DGraph& graph,
               const DistanceMatrix* shared)
      : venue_(venue) {
    if (shared == nullptr) {
      owned_.emplace(venue, graph);
      matrix_ = &*owned_;
    } else {
      matrix_ = shared;
    }
    // Object queries piggyback on DistAw++ semantics with this matrix.
    model_.emplace(venue, graph, matrix_);
  }

  EngineKind kind() const override { return EngineKind::kDistMx; }

  double Distance(const IndoorPoint& s, const IndoorPoint& t) override {
    return matrix_->Distance(s, t, /*optimized=*/true);
  }
  double Path(const IndoorPoint& s, const IndoorPoint& t,
              std::vector<DoorId>* doors) override {
    // Best door pair, then the materialized next-hop chain.
    double best = kInfDistance;
    DoorId bs = kInvalidId;
    DoorId bt = kInvalidId;
    if (s.partition == t.partition) {
      best = venue_.IntraPartitionDistance(s.partition, s.position,
                                           t.position);
    }
    for (DoorId ds : venue_.DoorsOf(s.partition)) {
      const double s_leg = venue_.DistanceToDoor(s, ds);
      for (DoorId dt : venue_.DoorsOf(t.partition)) {
        const double cand =
            s_leg + matrix_->DoorDistance(ds, dt) + venue_.DistanceToDoor(t, dt);
        if (cand < best) {
          best = cand;
          bs = ds;
          bt = dt;
        }
      }
    }
    if (doors != nullptr) {
      doors->clear();
      if (bs != kInvalidId) *doors = matrix_->DoorPath(bs, bt);
    }
    return best;
  }
  void SetObjects(const std::vector<IndoorPoint>& objects) override {
    model_->SetObjects(objects);
  }
  std::vector<EngineObjectResult> Knn(const IndoorPoint& q,
                                      size_t k) override {
    return Convert(model_->Knn(q, k));
  }
  std::vector<EngineObjectResult> Range(const IndoorPoint& q,
                                        double radius) override {
    return Convert(model_->Range(q, radius));
  }
  uint64_t IndexMemoryBytes() const override { return matrix_->MemoryBytes(); }

 private:
  const Venue& venue_;
  std::optional<DistanceMatrix> owned_;
  const DistanceMatrix* matrix_ = nullptr;
  std::optional<DistAwareModel> model_;
};

class GTreeEngine : public QueryEngine {
 public:
  GTreeEngine(const Venue& venue, const D2DGraph& graph)
      : tree_(venue, graph) {}

  EngineKind kind() const override { return EngineKind::kGTree; }

  double Distance(const IndoorPoint& s, const IndoorPoint& t) override {
    return tree_.Distance(s, t);
  }
  double Path(const IndoorPoint& s, const IndoorPoint& t,
              std::vector<DoorId>* doors) override {
    std::vector<DoorId> local;
    const double d = tree_.Path(s, t, doors != nullptr ? doors : &local);
    return d;
  }
  void SetObjects(const std::vector<IndoorPoint>& objects) override {
    tree_.SetObjects(objects);
  }
  std::vector<EngineObjectResult> Knn(const IndoorPoint& q,
                                      size_t k) override {
    return Convert(tree_.Knn(q, k));
  }
  std::vector<EngineObjectResult> Range(const IndoorPoint& q,
                                        double radius) override {
    return Convert(tree_.Range(q, radius));
  }
  uint64_t IndexMemoryBytes() const override { return tree_.MemoryBytes(); }

 private:
  GTree tree_;
};

class RoadEngine : public QueryEngine {
 public:
  RoadEngine(const Venue& venue, const D2DGraph& graph)
      : index_(venue, graph) {}

  EngineKind kind() const override { return EngineKind::kRoad; }

  double Distance(const IndoorPoint& s, const IndoorPoint& t) override {
    return index_.Distance(s, t);
  }
  double Path(const IndoorPoint& s, const IndoorPoint& t,
              std::vector<DoorId>* doors) override {
    return index_.Path(s, t, doors);
  }
  void SetObjects(const std::vector<IndoorPoint>& objects) override {
    index_.SetObjects(objects);
  }
  std::vector<EngineObjectResult> Knn(const IndoorPoint& q,
                                      size_t k) override {
    return Convert(index_.Knn(q, k));
  }
  std::vector<EngineObjectResult> Range(const IndoorPoint& q,
                                        double radius) override {
    return Convert(index_.Range(q, radius));
  }
  uint64_t IndexMemoryBytes() const override { return index_.MemoryBytes(); }

 private:
  RoadIndex index_;
};

}  // namespace

std::unique_ptr<QueryEngine> MakeEngine(EngineKind kind, const Venue& venue,
                                        const D2DGraph& graph) {
  return MakeEngineWithMatrix(kind, venue, graph, nullptr);
}

std::unique_ptr<QueryEngine> MakeEngineWithMatrix(
    EngineKind kind, const Venue& venue, const D2DGraph& graph,
    const DistanceMatrix* shared_matrix) {
  switch (kind) {
    case EngineKind::kVipTree:
      return std::make_unique<VipEngine>(venue, graph);
    case EngineKind::kIpTree:
      return std::make_unique<IpEngine>(venue, graph);
    case EngineKind::kDistAw:
      return std::make_unique<DistAwEngine>(venue, graph, nullptr, false);
    case EngineKind::kDistAwPlusPlus:
      return std::make_unique<DistAwEngine>(venue, graph, shared_matrix,
                                            true);
    case EngineKind::kDistMx:
      return std::make_unique<DistMxEngine>(venue, graph, shared_matrix);
    case EngineKind::kGTree:
      return std::make_unique<GTreeEngine>(venue, graph);
    case EngineKind::kRoad:
      return std::make_unique<RoadEngine>(venue, graph);
  }
  VIPTREE_CHECK(false);
  __builtin_unreachable();
}

}  // namespace viptree
