#include "baselines/dist_aware.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

DistAwareModel::DistAwareModel(const Venue& venue, const D2DGraph& graph,
                               const DistanceMatrix* matrix)
    : venue_(venue),
      graph_(graph),
      matrix_(matrix),
      ab_graph_(venue),
      engine_(graph) {}

double DistAwareModel::Distance(const IndoorPoint& s, const IndoorPoint& t) {
  double best = kInfDistance;
  if (s.partition == t.partition) {
    best = venue_.IntraPartitionDistance(s.partition, s.position, t.position);
  }
  std::vector<DijkstraSource> sources;
  for (DoorId u : venue_.DoorsOf(s.partition)) {
    sources.push_back({u, venue_.DistanceToDoor(s, u)});
  }
  engine_.Start(sources);
  const Span<const DoorId> targets = venue_.DoorsOf(t.partition);
  engine_.RunToTargets(targets);
  for (DoorId dt : targets) {
    if (!engine_.Settled(dt)) continue;
    best = std::min(best,
                    engine_.DistanceTo(dt) + venue_.DistanceToDoor(t, dt));
  }
  return best;
}

std::vector<DoorId> DistAwareModel::Path(const IndoorPoint& s,
                                         const IndoorPoint& t,
                                         double* distance) {
  double best = kInfDistance;
  if (s.partition == t.partition) {
    best = venue_.IntraPartitionDistance(s.partition, s.position, t.position);
  }
  std::vector<DijkstraSource> sources;
  for (DoorId u : venue_.DoorsOf(s.partition)) {
    sources.push_back({u, venue_.DistanceToDoor(s, u)});
  }
  engine_.Start(sources);
  const Span<const DoorId> targets = venue_.DoorsOf(t.partition);
  engine_.RunToTargets(targets);
  DoorId best_door = kInvalidId;
  for (DoorId dt : targets) {
    if (!engine_.Settled(dt)) continue;
    const double cand =
        engine_.DistanceTo(dt) + venue_.DistanceToDoor(t, dt);
    if (cand < best) {
      best = cand;
      best_door = dt;
    }
  }
  if (distance != nullptr) *distance = best;
  if (best_door == kInvalidId) return {};
  return engine_.PathTo(best_door);
}

void DistAwareModel::SetObjects(std::vector<IndoorPoint> objects) {
  objects_ = std::move(objects);
  objects_by_partition_.assign(venue_.NumPartitions(), {});
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
    objects_by_partition_[objects_[o].partition].push_back(o);
  }
}

std::vector<DistAwObjectResult> DistAwareModel::Knn(const IndoorPoint& q,
                                                    size_t k) {
  return Search(q, k, kInfDistance);
}

std::vector<DistAwObjectResult> DistAwareModel::Range(const IndoorPoint& q,
                                                      double radius) {
  return Search(q, std::numeric_limits<size_t>::max(), radius);
}

std::vector<DistAwObjectResult> DistAwareModel::Search(const IndoorPoint& q,
                                                       size_t k,
                                                       double radius) {
  // Incremental network expansion: settle doors in distance order; when a
  // door of a partition with objects is settled, score those objects.
  std::vector<double> best_obj(objects_.size(), kInfDistance);
  auto worse = [](const DistAwObjectResult& a, const DistAwObjectResult& b) {
    return a.distance < b.distance;
  };
  std::priority_queue<DistAwObjectResult, std::vector<DistAwObjectResult>,
                      decltype(worse)>
      best(worse);

  auto score = [&](ObjectId o, double dist) {
    if (dist >= best_obj[o]) return;
    best_obj[o] = dist;
  };

  // Objects in the query partition are reachable directly.
  for (ObjectId o : objects_by_partition_[q.partition]) {
    score(o, venue_.IntraPartitionDistance(q.partition, q.position,
                                           objects_[o].position));
  }

  if (matrix_ != nullptr) {
    // DistAw++: use the distance matrix to score every object without
    // expansion (still 'below par' because it scans all objects).
    for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
      const IndoorPoint& obj = objects_[o];
      for (DoorId ds : venue_.DoorsOf(q.partition)) {
        const double s_leg = venue_.DistanceToDoor(q, ds);
        for (DoorId dt : venue_.DoorsOf(obj.partition)) {
          score(o, s_leg + matrix_->DoorDistance(ds, dt) +
                       venue_.DistanceToDoor(obj, dt));
        }
      }
    }
  } else {
    std::vector<DijkstraSource> sources;
    for (DoorId u : venue_.DoorsOf(q.partition)) {
      sources.push_back({u, venue_.DistanceToDoor(q, u)});
    }
    engine_.Start(sources);
    // Termination bound: the kth-smallest of the current object distances
    // (exact, recomputed lazily when an object improves).
    bool bound_dirty = true;
    double cached_bound = kInfDistance;
    std::vector<double> scratch;
    auto bound = [&]() {
      if (radius != kInfDistance) return radius;
      if (bound_dirty) {
        scratch = best_obj;
        if (scratch.size() >= k) {
          std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                           scratch.end());
          cached_bound = scratch[k - 1];
        } else {
          cached_bound = kInfDistance;
        }
        bound_dirty = false;
      }
      return cached_bound;
    };
    while (true) {
      const SettledDoor settled = engine_.SettleNext();
      if (settled.door == kInvalidId || settled.distance > bound()) break;
      const Door& door = venue_.door(settled.door);
      for (PartitionId p : {door.partition_a, door.partition_b}) {
        if (p == kInvalidId) continue;
        for (ObjectId o : objects_by_partition_[p]) {
          const double d =
              settled.distance + venue_.DistanceToDoor(objects_[o], settled.door);
          if (d < best_obj[o]) {
            best_obj[o] = d;
            bound_dirty = true;
          }
        }
      }
    }
  }

  for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
    if (best_obj[o] > radius) continue;
    if (best.size() < k) {
      best.push({o, best_obj[o]});
    } else if (best_obj[o] < best.top().distance) {
      best.pop();
      best.push({o, best_obj[o]});
    }
  }
  std::vector<DistAwObjectResult> results;
  results.reserve(best.size());
  while (!best.empty()) {
    results.push_back(best.top());
    best.pop();
  }
  std::reverse(results.begin(), results.end());
  return results;
}

}  // namespace viptree
