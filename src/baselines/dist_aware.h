// The distance-aware model (DistAw) of Lu, Cao and Jensen [19] — the
// state-of-the-art indoor competitor of §4. Queries run a Dijkstra-like
// expansion over the distance-decorated graph derived from the
// accessibility-base graph (operationally, the D2D graph with the query
// point's doors as a multi-source seed), so the cost grows with the
// explored area (Fig. 10b).
//
// kNN and range queries use incremental network expansion: doors are
// settled in distance order and objects of touched partitions are scored;
// DistAw++ additionally consults a DistanceMatrix to score candidate
// objects directly (§4: "DistAw++ ... exploits DistMx").

#ifndef VIPTREE_BASELINES_DIST_AWARE_H_
#define VIPTREE_BASELINES_DIST_AWARE_H_

#include <vector>

#include "baselines/dist_matrix.h"
#include "graph/ab_graph.h"
#include "graph/d2d_graph.h"
#include "graph/dijkstra.h"
#include "model/venue.h"

namespace viptree {

struct DistAwObjectResult {
  ObjectId object = kInvalidId;
  double distance = kInfDistance;
};

class DistAwareModel {
 public:
  // `matrix` is optional; when provided the object queries run in the
  // DistAw++ configuration. Venue/graph/matrix must outlive the model.
  DistAwareModel(const Venue& venue, const D2DGraph& graph,
                 const DistanceMatrix* matrix = nullptr);

  DistAwareModel(const DistAwareModel&) = delete;
  DistAwareModel& operator=(const DistAwareModel&) = delete;
  DistAwareModel(DistAwareModel&&) = default;

  double Distance(const IndoorPoint& s, const IndoorPoint& t);

  // Full door sequence (graph-level Dijkstra keeps it directly).
  std::vector<DoorId> Path(const IndoorPoint& s, const IndoorPoint& t,
                           double* distance);

  // Object queries over a fixed object set (ids = indices).
  void SetObjects(std::vector<IndoorPoint> objects);
  std::vector<DistAwObjectResult> Knn(const IndoorPoint& q, size_t k);
  std::vector<DistAwObjectResult> Range(const IndoorPoint& q, double radius);

  uint64_t MemoryBytes() const { return ab_graph_.MemoryBytes(); }

 private:
  std::vector<DistAwObjectResult> Search(const IndoorPoint& q, size_t k,
                                         double radius);

  const Venue& venue_;
  const D2DGraph& graph_;
  const DistanceMatrix* matrix_;
  ABGraph ab_graph_;
  DijkstraEngine engine_;
  std::vector<IndoorPoint> objects_;
  std::vector<std::vector<ObjectId>> objects_by_partition_;
};

}  // namespace viptree

#endif  // VIPTREE_BASELINES_DIST_AWARE_H_
