// A uniform query-engine interface wrapping every system of §4 — VIP-Tree,
// IP-Tree, DistAw, DistAw++, DistMx, G-tree, ROAD — so the benchmark
// harness can sweep algorithms exactly like the paper's figures do.

#ifndef VIPTREE_BASELINES_ENGINES_H_
#define VIPTREE_BASELINES_ENGINES_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/d2d_graph.h"
#include "model/venue.h"

namespace viptree {

enum class EngineKind {
  kVipTree,
  kIpTree,
  kDistAw,
  kDistAwPlusPlus,
  kDistMx,
  kGTree,
  kRoad,
};

const char* EngineName(EngineKind kind);

struct EngineObjectResult {
  ObjectId object = kInvalidId;
  double distance = kInfDistance;
};

class QueryEngine {
 public:
  virtual ~QueryEngine() = default;
  virtual EngineKind kind() const = 0;
  const char* name() const { return EngineName(kind()); }

  virtual double Distance(const IndoorPoint& s, const IndoorPoint& t) = 0;
  // Distance with full path recovery; `doors` may be nullptr.
  virtual double Path(const IndoorPoint& s, const IndoorPoint& t,
                      std::vector<DoorId>* doors) = 0;
  virtual void SetObjects(const std::vector<IndoorPoint>& objects) = 0;
  virtual std::vector<EngineObjectResult> Knn(const IndoorPoint& q,
                                              size_t k) = 0;
  virtual std::vector<EngineObjectResult> Range(const IndoorPoint& q,
                                                double radius) = 0;
  virtual uint64_t IndexMemoryBytes() const = 0;
};

// Builds the index for `kind` over the venue/graph (both must outlive the
// engine). DistAw++ internally builds a distance matrix; callers sharing
// one matrix across kDistMx and kDistAwPlusPlus can pass it via
// MakeEngineWithMatrix.
std::unique_ptr<QueryEngine> MakeEngine(EngineKind kind, const Venue& venue,
                                        const D2DGraph& graph);

class DistanceMatrix;
std::unique_ptr<QueryEngine> MakeEngineWithMatrix(
    EngineKind kind, const Venue& venue, const D2DGraph& graph,
    const DistanceMatrix* shared_matrix);

}  // namespace viptree

#endif  // VIPTREE_BASELINES_ENGINES_H_
