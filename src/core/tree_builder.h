// Bottom-up IP-Tree construction (§2.1.2): leaf assembly, Algorithm 1 node
// merging, leaf distance matrices (Dijkstra on the D2D graph), and non-leaf
// distance matrices (Dijkstra on the level-l graphs).

#ifndef VIPTREE_CORE_TREE_BUILDER_H_
#define VIPTREE_CORE_TREE_BUILDER_H_

#include "core/ip_tree.h"
#include "graph/d2d_graph.h"
#include "model/venue.h"

namespace viptree {

class TreeBuilder {
 public:
  TreeBuilder(const Venue& venue, const D2DGraph& graph,
              const IPTreeOptions& options);

  // Runs the full §2.1.2 pipeline and returns the finished tree.
  IPTree BuildIPTree();

 private:
  void BuildLeaves();
  void BuildUpperLevels();
  void AssignLeafIntervals();
  void BuildLeafMatricesAndSuperiorDoors();
  void BuildNonLeafMatrices();
  void RenumberNodesTraversalOrder();

  // Whether door `d` is an access door of the group identified by
  // `cluster_of_leaf` (kInvalidId group = outside).
  bool IsAccessOf(DoorId d, const std::vector<NodeId>& cluster_of_leaf,
                  NodeId cluster) const;

  const Venue& venue_;
  const D2DGraph& graph_;
  IPTreeOptions options_;
  IPTree tree_;
};

}  // namespace viptree

#endif  // VIPTREE_CORE_TREE_BUILDER_H_
