// Part of the reproduction of "VIP-Tree: An Effective Index for Indoor
// Spatial Queries" (Shao, Cheema, Taniar, Lu — PVLDB 10(4), 2016); all
// section/algorithm references below point into that paper.
//
// Shortest distance queries (§3.1): Algorithm 2 (distances from a source to
// all access doors of an ancestor node) and Algorithm 3 (distance between
// two arbitrary indoor points), in the IP-Tree variant (iterative ascent,
// O(h*rho^2)) and the VIP-Tree variant (materialized lookups, O(rho^2)).
//
// Thread-safety contract (shared by every query engine in core/): the
// indexes (IPTree / VIPTree / ObjectIndex / KeywordIndex) are immutable
// after construction and only ever read, so any number of engines on any
// number of threads may share them. Each engine instance holds reusable
// *mutable* scratch (a Dijkstra engine for same-leaf queries), so one engine
// instance must not be used from two threads at once — engines are cheap to
// construct: use one per thread. All query entry points are const, which
// makes the "reads only touch shared immutable state" half of the contract
// compiler-checked.

#ifndef VIPTREE_CORE_DISTANCE_QUERY_H_
#define VIPTREE_CORE_DISTANCE_QUERY_H_

#include <vector>

#include "core/distance_cache.h"
#include "core/ip_tree.h"
#include "core/vip_tree.h"
#include "graph/dijkstra.h"

namespace viptree {

// Where a door's best-known distance came from, for path recovery.
// pred == kInvalidId means "directly from the source point/door".
struct PathBack {
  DoorId pred = kInvalidId;
  int pred_chain_idx = -1;  // index into AscentDistances::chain, -1 = seed
};

// Output of Algorithm 2: distances from the source to the access doors of
// every node on the chain Leaf(source) = chain[0], ..., chain.back().
struct AscentDistances {
  std::vector<NodeId> chain;
  // ad_dist[i][j] = dist(source, node(chain[i]).access_doors[j]).
  std::vector<std::vector<double>> ad_dist;
  std::vector<std::vector<PathBack>> back;
};

// A query source: either an indoor point or a door.
struct QuerySource {
  // Exactly one of the two is set.
  const IndoorPoint* point = nullptr;
  DoorId door = kInvalidId;

  static QuerySource Point(const IndoorPoint& p) { return {&p, kInvalidId}; }
  static QuerySource Door(DoorId d) { return {nullptr, d}; }
};

struct DistanceQueryOptions {
  // Restrict Eq. (1) to the superior doors of the source partition
  // (§3.1.1, Definition 2). Disabling falls back to all partition doors —
  // used by tests to validate the superior-door lemma empirically.
  bool use_superior_doors = true;
};

// Ascent-sharing accounting of the coalesced entry points: how many source
// expansions (cross-leaf descents and same-leaf Dijkstra runs) a batch
// actually computed vs how many per-query runs it avoided. Folded into the
// execution planner's PlanStats.
struct MultiDistanceStats {
  uint64_t ascents_computed = 0;
  uint64_t ascents_reused = 0;
};

class IPDistanceQuery {
 public:
  // `cache` (optional, may be shared across engines — it is internally
  // thread-safe) memoizes door-pair results, door ascent vectors and
  // access-door index maps. It is a separate parameter rather than a
  // DistanceQueryOptions field because the options struct is serialized
  // into snapshots (VenueBundle::Save). Cache-on and cache-off answers are
  // bit-identical; see core/distance_cache.h.
  explicit IPDistanceQuery(const IPTree& tree,
                           const DistanceQueryOptions& options = {},
                           DistanceCache* cache = nullptr);

  // Algorithm 3.
  double Distance(const IndoorPoint& s, const IndoorPoint& t) const;
  double DoorDistance(DoorId s, DoorId t) const;

  // Algorithm 2: ascend from Leaf(source) up to `target` (inclusive),
  // which must be an ancestor of (or equal to) the source's leaf.
  AscentDistances GetDistances(const QuerySource& source, NodeId target) const;

  // Algorithm 3 with the source ascent precomputed (typically once per
  // source via GetDistances(Point(s), tree().root()) and reused across
  // many targets by the execution planner). `ascent` must start at
  // Leaf(s); the row for the LCA join child is the iteration prefix the
  // per-query ascent would have produced, so the result is bit-identical
  // to Distance(s, t).
  double DistanceWithAscent(const IndoorPoint& s,
                            const AscentDistances& ascent,
                            const IndoorPoint& t) const;

  // Shared same-leaf fallback: Dijkstra on the D2D graph.
  double LocalDistance(const QuerySource& s, const IndoorPoint& t) const;

  // Same-leaf distances from one source point to many targets over a
  // single multi-source Dijkstra. The settled distance of a door depends
  // only on the seeding (the heap pops in a deterministic order and
  // resuming via RunToTargets extends that same sequence), so every
  // out[k] is bit-identical to LocalDistance(Point(s), targets[k]) while
  // the dominant cost — the graph expansion — is paid once per source
  // instead of once per query. Every target must share the source's leaf.
  void LocalDistanceMulti(const IndoorPoint& s, Span<const IndoorPoint> targets,
                          double* out) const;

  // Seed of Algorithm 2: distances from the source to every access door of
  // the source's leaf.
  void SeedLeaf(const QuerySource& source, const TreeNode& leaf,
                std::vector<double>& dist, std::vector<PathBack>& back) const;

  // The leaf a query source belongs to.
  NodeId LeafOf(const QuerySource& source) const;

  // out[i] = position of node(m).access_doors[i] in node(n).matrix_doors.
  // This is the index triple every LCA join / ascent step / kNN bound
  // derivation recomputes with per-cell binary searches; every position is
  // checked >= 0 (a miss would otherwise silently index row -1 of the
  // matrix). Memoized under CacheKind::kIndexMap when a cache is attached.
  void AccessDoorIndexMap(NodeId n, NodeId m, std::vector<int32_t>& out) const;

  const IPTree& tree() const { return tree_; }
  DistanceCache* distance_cache() const { return cache_; }

 private:
  friend class IPPathQuery;
  friend class VIPPathQuery;

  // dist(door -> each access door of `target`), i.e. the last row of
  // GetDistances(Door(door), target); memoized under kIpDoorAscent.
  void DoorAscent(DoorId door, NodeId target, std::vector<double>& out) const;
  double DoorDistanceUncached(DoorId s, DoorId t) const;

  const IPTree& tree_;
  DistanceQueryOptions options_;
  DistanceCache* cache_ = nullptr;
  // Per-engine scratch, never shared state: mutable so const query methods
  // stay const while reusing the arrays (see the thread-safety contract).
  mutable DijkstraEngine dijkstra_;
  mutable std::vector<int32_t> row_idx_, col_idx_;      // LCA joins
  mutable std::vector<int32_t> step_rows_, step_cols_;  // ascent steps
  mutable std::vector<double> s_ascent_, t_ascent_;     // DoorDistance
  // Kernel accumulators of the ascent step (common/kernels.h): per-column
  // best distance and the child door (index) that produced it.
  mutable std::vector<double> step_dist_;
  mutable std::vector<int32_t> step_src_;
};

class VIPDistanceQuery {
 public:
  // `cache` as in IPDistanceQuery; it is also forwarded to the embedded
  // IP fallback engine. IP and VIP door-pair results are memoized under
  // distinct kinds (the materialized float matrices can differ from the
  // iterative ascent in the last ulp), so one cache may safely serve both.
  explicit VIPDistanceQuery(const VIPTree& tree,
                            const DistanceQueryOptions& options = {},
                            DistanceCache* cache = nullptr);

  double Distance(const IndoorPoint& s, const IndoorPoint& t) const;
  double DoorDistance(DoorId s, DoorId t) const;

  // VIP variant of Algorithm 2's output at one node: distances from the
  // source to every access door of `node` (an ancestor of the source's
  // leaf), via O(1) extended-matrix lookups per (superior door, access
  // door) pair.
  void DistancesToNodeAd(const QuerySource& source, NodeId node,
                         std::vector<double>& dist,
                         std::vector<PathBack>& back) const;

  // Coalesced descent: the point-source DistancesToNodeAd for every point
  // at once, row-major into `dist` (dist[k * |AD(node)| + c] = distance
  // from points[k] to access door c). All points must lie in the same
  // partition. The seed-door loop is hoisted outermost so one extended-
  // matrix row feeds every point's accumulator row via
  // kernels::MinPlusRowMulti; the per-(point, column) candidate sequence
  // is that of the sequential loop, so every row is bit-identical to the
  // per-point call.
  void DistancesToNodeAdMulti(Span<const IndoorPoint> points, NodeId node,
                              std::vector<double>& dist) const;

  // Coalesced Algorithm 3 for queries sharing one source partition:
  // out[k] = Distance(sources[k], targets[k]) for every k, bit-identical
  // to the sequential calls. Source descents are computed once per
  // distinct (source point, join child) via DistancesToNodeAdMulti;
  // targets sharing (source point, lca, ns, nt) are answered by one
  // source-side fold plus one batched kernels::JoinMinRowsMulti reduce.
  void DistanceMulti(Span<const IndoorPoint> sources,
                     Span<const IndoorPoint> targets, double* out,
                     MultiDistanceStats* stats = nullptr) const;

  // See IPDistanceQuery::AccessDoorIndexMap (the VIP tree shares the base
  // IP tree's node matrices, so the map is identical).
  void AccessDoorIndexMap(NodeId n, NodeId m, std::vector<int32_t>& out) const {
    ip_.AccessDoorIndexMap(n, m, out);
  }

  const VIPTree& tree() const { return vip_; }
  DistanceCache* distance_cache() const { return cache_; }

 private:
  friend class VIPPathQuery;

  double DoorDistanceUncached(DoorId s, DoorId t) const;

  // Batched tail of DistanceMulti for one (shared source descent, lca,
  // ns, nt) bucket: folds the LCA join rows over `sdist` once, stacks the
  // per-target descents, and reduces them with one JoinMinRowsMulti.
  void DistanceViaLcaMulti(const double* sdist, NodeId lca, NodeId ns,
                           NodeId nt, Span<const IndoorPoint> targets,
                           double* out) const;

  const VIPTree& vip_;
  DistanceQueryOptions options_;
  DistanceCache* cache_ = nullptr;
  IPDistanceQuery ip_;  // same-leaf fallback + seeding helpers
  mutable std::vector<int32_t> row_idx_, col_idx_;
  mutable std::vector<double> sdist_, tdist_;
  mutable std::vector<PathBack> sback_, tback_;
  // Coalesced-path scratch (DistanceMulti and helpers).
  mutable std::vector<double> multi_adds_, joined_, stacked_tdist_;
};

}  // namespace viptree

#endif  // VIPTREE_CORE_DISTANCE_QUERY_H_
