// Part of the reproduction of "VIP-Tree: An Effective Index for Indoor
// Spatial Queries" (Shao, Cheema, Taniar, Lu — PVLDB 10(4), 2016); all
// section/algorithm references below point into that paper.
//
// The Vivid IP-Tree (VIP-Tree) of §2.2: an IP-Tree that additionally
// materializes, for every door d and every access door a of every ancestor
// node N of Leaf(d), the distance dist(d, a) and the next-hop door on the
// shortest path.
//
// Storage layout: one "extended matrix" per non-leaf node N with rows = all
// doors inside N's subtree and columns = AD(N). A door's entry for ancestor
// N is then one O(1) lookup, which is exactly the paper's per-door
// materialization with O(rho * D * log_f M) total extra space. (At leaf
// level the IP leaf matrix already has this shape, so leaves add nothing.)
//
// Next-hop semantics (§3.3): first door on the shortest path when the path
// stays inside N; first *global access* door when it leaves N; kInvalidId
// when there is no intermediate door.

#ifndef VIPTREE_CORE_VIP_TREE_H_
#define VIPTREE_CORE_VIP_TREE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/ip_tree.h"
#include "common/span.h"
#include "common/storage.h"

namespace viptree {

class VIPTree {
 public:
  // One §2.2 extended matrix (rows = all doors of the node's subtree,
  // columns = the node's access doors). Public so snapshots can serialize
  // the materialization verbatim. All three buffers are Storage-backed, so
  // a zero-copy snapshot load can alias them into the mapped arena.
  struct ExtMatrix {
    Storage<DoorId> doors;  // sorted rows
    FlatMatrix<float> dist;
    FlatMatrix<DoorId> next_hop;
  };

  // The serializable state on top of the base IP-Tree: one extended matrix
  // per node id (empty for leaves, which reuse the IP leaf matrix).
  struct Parts {
    std::vector<ExtMatrix> ext;
  };

  static VIPTree Build(const Venue& venue, const D2DGraph& graph,
                       const IPTreeOptions& options = {});

  // Takes ownership of an already-built IP-Tree and adds the §2.2
  // materialization (used by benchmarks that compare both trees on the
  // same base).
  static VIPTree Extend(IPTree base);

  // Structural check of `parts` against an already-validated base tree.
  // The level has the same meaning as IPTree::ValidateParts: kStructure
  // skips only the per-cell matrix sweep.
  static std::optional<std::string> ValidateParts(
      const IPTree& base, const Parts& parts,
      IPTree::ValidationLevel level = IPTree::ValidationLevel::kFull);

  // Reassembles a VIP-Tree from a reconstructed base and its deserialized
  // materialization (no Dijkstra runs). Aborts on malformed input (run
  // ValidateParts first when the parts come from an untrusted file).
  static VIPTree FromParts(IPTree base, Parts parts);

  // Same, for callers that have *just* run ValidateParts themselves (the
  // snapshot loader): skips the redundant validation pass.
  static VIPTree FromValidatedParts(IPTree base, Parts parts);

  Parts ToParts() const;

  VIPTree(const VIPTree&) = delete;
  VIPTree& operator=(const VIPTree&) = delete;
  VIPTree(VIPTree&&) = default;

  const IPTree& base() const { return base_; }

  // Row door set of node `n`'s extended matrix: all doors in the subtree,
  // sorted. For leaves this aliases TreeNode::doors.
  Span<const DoorId> ExtDoors(NodeId n) const;

  // Distance / next-hop for (door `d`, access door index `col` of node
  // `n`). `d` must be a door inside n's subtree.
  float ExtDist(NodeId n, DoorId d, size_t col) const;
  DoorId ExtNextHop(NodeId n, DoorId d, size_t col) const;

  // Row index of door `d` in node `n`'s extended matrix; -1 if absent.
  int ExtRowOf(NodeId n, DoorId d) const;

  // The contiguous distance row at index `row` (from ExtRowOf) of node
  // `n`'s extended matrix — ExtDist(n, d, c) for every column c at once.
  // Feeds the coalesced multi-point descent (kernels::MinPlusRowMulti).
  Span<const float> ExtDistRow(NodeId n, int row) const;

  uint64_t MemoryBytes() const;

 private:
  VIPTree() = default;

  IPTree base_;
  std::vector<ExtMatrix> ext_;  // indexed by NodeId; unused for leaves
};

}  // namespace viptree

#endif  // VIPTREE_CORE_VIP_TREE_H_
