// Leaf node assembly (§2.1.2 step 1): combine adjacent indoor partitions
// into leaf nodes.
//
// Rules implemented exactly as the paper states:
//   (i)  a general/no-through partition adjacent to several hallways merges
//        with the hallway sharing the most doors with it; ties prefer a
//        hallway on the same floor, then the lowest partition id
//        (the paper breaks the remaining ties arbitrarily);
//   (ii) a leaf node never contains more than one hallway (hallways seed
//        the leaves, so no merge can violate this).
//
// Venues whose connected regions contain no hallway at all (degenerate, but
// legal) seed extra leaves from the partition with the most doors.

#ifndef VIPTREE_CORE_LEAF_ASSEMBLER_H_
#define VIPTREE_CORE_LEAF_ASSEMBLER_H_

#include <vector>

#include "model/venue.h"

namespace viptree {

struct LeafAssignment {
  // leaf_of_partition[p] is the 0-based leaf index of partition p.
  std::vector<int> leaf_of_partition;
  int num_leaves = 0;
};

LeafAssignment AssembleLeaves(const Venue& venue);

// Wraps a caller-provided assignment (used to reproduce the paper's Fig. 3
// grouping in tests, and to plug custom partitionings). Validates that ids
// are dense in [0, max+1).
LeafAssignment ForcedLeaves(const Venue& venue,
                            const std::vector<int>& leaf_of_partition);

}  // namespace viptree

#endif  // VIPTREE_CORE_LEAF_ASSEMBLER_H_
