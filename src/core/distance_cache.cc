#include "core/distance_cache.h"

#include <algorithm>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace viptree {

namespace {

// Node of the intrusive recency/FIFO lists the policies maintain. Policies
// own their list storage; the shard map stores only values, so policy and
// residency bookkeeping stay independent.
using KeyList = std::list<DistanceCache::Key>;

struct KeyHasher {
  size_t operator()(const DistanceCache::Key& key) const {
    // splitmix64 finalizer over the packed 72-bit key; good avalanche so
    // both the shard choice (low bits) and the map buckets stay uniform
    // even though door/node ids are small dense integers.
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(key.a)) << 32) |
                 static_cast<uint64_t>(static_cast<uint32_t>(key.b));
    x ^= static_cast<uint64_t>(key.kind) << 56;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x = x ^ (x >> 31);
    return static_cast<size_t>(x);
  }
};

// -------------------------------------------------------------------------
// LRU: one recency list, most recent at the front.

class LruState : public DistanceCache::EvictionState {
 public:
  explicit LruState(size_t capacity) : EvictionState(capacity) {}

  void OnHit(const DistanceCache::Key& key) override {
    auto it = pos_.find(key);
    VIPTREE_DCHECK(it != pos_.end());
    list_.splice(list_.begin(), list_, it->second);
  }

  void OnInsert(const DistanceCache::Key& key,
                std::vector<DistanceCache::Key>* evicted) override {
    list_.push_front(key);
    pos_[key] = list_.begin();
    while (list_.size() > capacity_) {
      evicted->push_back(list_.back());
      pos_.erase(list_.back());
      list_.pop_back();
    }
  }

  void Clear() override {
    list_.clear();
    pos_.clear();
  }

 private:
  KeyList list_;
  std::unordered_map<DistanceCache::Key, KeyList::iterator, KeyHasher> pos_;
};

// -------------------------------------------------------------------------
// Full 2Q (Johnson & Shasha, VLDB'94): new keys enter the FIFO A1in; when
// pushed out of A1in their *key* is remembered in the ghost FIFO A1out; a
// re-insert while ghosted goes straight to the LRU main queue Am — so only
// keys referenced twice within the ghost window earn long-term residency,
// which is what keeps one-shot scans from flushing the hot set. Hits in
// A1in do not promote (that is the 2Q "correlated reference" rule).

class TwoQState : public DistanceCache::EvictionState {
 public:
  explicit TwoQState(size_t capacity)
      : EvictionState(capacity),
        // The paper's tuning: Kin ~ 25% of capacity, Kout ~ 50%.
        kin_(std::max<size_t>(1, capacity / 4)),
        kout_(std::max<size_t>(1, capacity / 2)) {}

  void OnHit(const DistanceCache::Key& key) override {
    auto am = am_pos_.find(key);
    if (am != am_pos_.end()) {
      am_.splice(am_.begin(), am_, am->second);
      return;
    }
    // Resident in A1in: leave it where it is.
    VIPTREE_DCHECK(a1in_pos_.count(key) != 0);
  }

  void OnInsert(const DistanceCache::Key& key,
                std::vector<DistanceCache::Key>* evicted) override {
    auto ghost = a1out_pos_.find(key);
    if (ghost != a1out_pos_.end()) {
      // Second reference within the ghost window: admit to Am.
      a1out_.erase(ghost->second);
      a1out_pos_.erase(ghost);
      am_.push_front(key);
      am_pos_[key] = am_.begin();
    } else {
      a1in_.push_front(key);
      a1in_pos_[key] = a1in_.begin();
    }
    Balance(evicted);
  }

  void Clear() override {
    a1in_.clear();
    a1in_pos_.clear();
    a1out_.clear();
    a1out_pos_.clear();
    am_.clear();
    am_pos_.clear();
  }

 private:
  void Balance(std::vector<DistanceCache::Key>* evicted) {
    while (a1in_.size() + am_.size() > capacity_) {
      if (a1in_.size() > kin_ || am_.empty()) {
        // Demote the A1in tail to a ghost (key only, value evicted).
        DistanceCache::Key victim = a1in_.back();
        a1in_pos_.erase(victim);
        a1in_.pop_back();
        evicted->push_back(victim);
        a1out_.push_front(victim);
        a1out_pos_[victim] = a1out_.begin();
        while (a1out_.size() > kout_) {
          a1out_pos_.erase(a1out_.back());
          a1out_.pop_back();
        }
      } else {
        evicted->push_back(am_.back());
        am_pos_.erase(am_.back());
        am_.pop_back();
      }
    }
  }

  const size_t kin_;
  const size_t kout_;
  KeyList a1in_;   // FIFO of resident first-timers
  KeyList a1out_;  // FIFO of ghost keys (not resident)
  KeyList am_;     // LRU of established keys
  std::unordered_map<DistanceCache::Key, KeyList::iterator, KeyHasher>
      a1in_pos_, a1out_pos_, am_pos_;
};

// -------------------------------------------------------------------------
// Simplified 2Q ("S2Q" in eFIND's read-buffer catalogue): two resident
// queues, no ghost history. New keys enter the FIFO A1; a hit while in A1
// promotes to the LRU Am immediately. Cheaper metadata than full 2Q, still
// scan-resistant for single-pass misses.

class S2qState : public DistanceCache::EvictionState {
 public:
  explicit S2qState(size_t capacity)
      : EvictionState(capacity), ka1_(std::max<size_t>(1, capacity / 4)) {}

  void OnHit(const DistanceCache::Key& key) override {
    auto a1 = a1_pos_.find(key);
    if (a1 != a1_pos_.end()) {
      a1_.erase(a1->second);
      a1_pos_.erase(a1);
      am_.push_front(key);
      am_pos_[key] = am_.begin();
      return;
    }
    auto am = am_pos_.find(key);
    VIPTREE_DCHECK(am != am_pos_.end());
    am_.splice(am_.begin(), am_, am->second);
  }

  void OnInsert(const DistanceCache::Key& key,
                std::vector<DistanceCache::Key>* evicted) override {
    a1_.push_front(key);
    a1_pos_[key] = a1_.begin();
    while (a1_.size() + am_.size() > capacity_) {
      if (a1_.size() > ka1_ || am_.empty()) {
        evicted->push_back(a1_.back());
        a1_pos_.erase(a1_.back());
        a1_.pop_back();
      } else {
        evicted->push_back(am_.back());
        am_pos_.erase(am_.back());
        am_.pop_back();
      }
    }
  }

  void Clear() override {
    a1_.clear();
    a1_pos_.clear();
    am_.clear();
    am_pos_.clear();
  }

 private:
  const size_t ka1_;
  KeyList a1_;  // FIFO of first-timers
  KeyList am_;  // LRU of promoted keys
  std::unordered_map<DistanceCache::Key, KeyList::iterator, KeyHasher>
      a1_pos_, am_pos_;
};

std::unique_ptr<DistanceCache::EvictionState> MakePolicy(CachePolicy policy,
                                                         size_t capacity) {
  switch (policy) {
    case CachePolicy::kLru:
      return std::unique_ptr<DistanceCache::EvictionState>(
          new LruState(capacity));
    case CachePolicy::k2Q:
      return std::unique_ptr<DistanceCache::EvictionState>(
          new TwoQState(capacity));
    case CachePolicy::kS2Q:
      return std::unique_ptr<DistanceCache::EvictionState>(
          new S2qState(capacity));
  }
  VIPTREE_CHECK_MSG(false, "unknown cache policy");
  return nullptr;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::k2Q:
      return "2q";
    case CachePolicy::kS2Q:
      return "s2q";
  }
  return "?";
}

bool ParseCachePolicy(const std::string& name, CachePolicy* out) {
  if (name == "lru") {
    *out = CachePolicy::kLru;
  } else if (name == "2q") {
    *out = CachePolicy::k2Q;
  } else if (name == "s2q") {
    *out = CachePolicy::kS2Q;
  } else {
    return false;
  }
  return true;
}

size_t DistanceCache::KeyHash::operator()(const Key& key) const {
  return KeyHasher()(key);
}

// One value slot per kind family; which member is live is implied by the
// key's kind, so no discriminant is stored.
struct DistanceCache::Entry {
  double scalar = 0.0;
  std::vector<double> dist;
  std::vector<int32_t> index;
};

struct DistanceCache::Shard {
  mutable std::mutex mu;
  std::unordered_map<Key, Entry, KeyHash> map;
  std::unique_ptr<EvictionState> policy;
  CacheCounters counters;
  std::vector<Key> evicted_scratch;
};

size_t AdaptiveCacheCapacity(size_t num_doors) {
  const size_t want = 16 * num_doors;
  return std::min<size_t>(1u << 20, std::max<size_t>(1u << 12, want));
}

DistanceCache::DistanceCache(const DistanceCacheOptions& options)
    : options_(options) {
  num_shards_ = RoundUpPow2(std::max<size_t>(1, std::min<size_t>(
                                                    options.shards, 256)));
  // capacity 0 = the auto sentinel unresolved (no venue in scope here):
  // fall back to the historical fixed default.
  const size_t capacity =
      options.capacity == 0 ? (size_t{1} << 16) : options.capacity;
  const size_t per_shard = std::max<size_t>(1, capacity / num_shards_);
  shards_.reset(new Shard[num_shards_]);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].policy = MakePolicy(options.policy, per_shard);
  }
}

DistanceCache::~DistanceCache() = default;

DistanceCache::Shard& DistanceCache::ShardFor(const Key& key) {
  return shards_[KeyHasher()(key) & (num_shards_ - 1)];
}

template <typename Copy>
bool DistanceCache::LookupInternal(const Key& key, Copy&& copy) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.counters.misses;
    return false;
  }
  ++shard.counters.hits;
  shard.policy->OnHit(key);
  copy(it->second);
  return true;
}

template <typename Fill>
void DistanceCache::InsertInternal(const Key& key, Fill&& fill) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto emplaced = shard.map.emplace(key, Entry());
  if (!emplaced.second) {
    // Concurrent fill of the same miss: both threads computed the same
    // deterministic value, so keeping the first is equivalent. Count it
    // as a touch so the policy sees the reference.
    shard.policy->OnHit(key);
    return;
  }
  fill(emplaced.first->second);
  ++shard.counters.insertions;
  shard.evicted_scratch.clear();
  shard.policy->OnInsert(key, &shard.evicted_scratch);
  for (const Key& victim : shard.evicted_scratch) {
    VIPTREE_DCHECK(!(victim == key));
    shard.map.erase(victim);
    ++shard.counters.evictions;
  }
}

bool DistanceCache::LookupScalar(CacheKind kind, int32_t a, int32_t b,
                                 double* out) {
  Key key{static_cast<uint8_t>(kind), a, b};
  return LookupInternal(key, [out](const Entry& e) { *out = e.scalar; });
}

void DistanceCache::InsertScalar(CacheKind kind, int32_t a, int32_t b,
                                 double value) {
  Key key{static_cast<uint8_t>(kind), a, b};
  InsertInternal(key, [value](Entry& e) { e.scalar = value; });
}

bool DistanceCache::LookupDistVector(CacheKind kind, int32_t a, int32_t b,
                                     std::vector<double>* out) {
  Key key{static_cast<uint8_t>(kind), a, b};
  return LookupInternal(key, [out](const Entry& e) {
    out->assign(e.dist.begin(), e.dist.end());
  });
}

void DistanceCache::InsertDistVector(CacheKind kind, int32_t a, int32_t b,
                                     const std::vector<double>& value) {
  Key key{static_cast<uint8_t>(kind), a, b};
  InsertInternal(key, [&value](Entry& e) { e.dist = value; });
}

bool DistanceCache::LookupIndexVector(CacheKind kind, int32_t a, int32_t b,
                                      std::vector<int32_t>* out) {
  Key key{static_cast<uint8_t>(kind), a, b};
  return LookupInternal(key, [out](const Entry& e) {
    out->assign(e.index.begin(), e.index.end());
  });
}

void DistanceCache::InsertIndexVector(CacheKind kind, int32_t a, int32_t b,
                                      const std::vector<int32_t>& value) {
  Key key{static_cast<uint8_t>(kind), a, b};
  InsertInternal(key, [&value](Entry& e) { e.index = value; });
}

CacheCounters DistanceCache::Counters() const {
  CacheCounters total;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].counters;
  }
  return total;
}

size_t DistanceCache::Size() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].map.size();
  }
  return total;
}

void DistanceCache::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].map.clear();
    shards_[i].policy->Clear();
  }
}

}  // namespace viptree
