// Part of the reproduction of "VIP-Tree: An Effective Index for Indoor
// Spatial Queries" (Shao, Cheema, Taniar, Lu — PVLDB 10(4), 2016); all
// section/algorithm references below point into that paper.
//
// k-nearest-neighbour queries over indexed indoor objects (Algorithm 5):
// best-first search over the tree with the mindist computation of
// Lemmas 8 and 9 (distances to a node's access doors derived from its
// parent's or sibling's, each in O(rho^2)).
//
// The same engine serves IP-Tree and VIP-Tree: the paper observes both
// perform equally for kNN because the Lemma 8/9 optimization makes the
// mindist cost independent of the materialization (§3.4, §4.3.3).

#ifndef VIPTREE_CORE_KNN_QUERY_H_
#define VIPTREE_CORE_KNN_QUERY_H_

#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/distance_query.h"
#include "core/object_index.h"

namespace viptree {

struct ObjectResult {
  ObjectId object = kInvalidId;
  double distance = kInfDistance;
};

// Per-query work counters of the branch-and-bound search, filled when the
// caller passes a sink (batch engines aggregate them across a workload).
struct SearchStats {
  size_t nodes_visited = 0;       // heap pops (tree nodes examined)
  size_t leaves_scanned = 0;      // leaves whose objects were scored
  size_t objects_considered = 0;  // candidate objects offered to the heap
};

class KnnQuery {
 public:
  // `cache` as in IPDistanceQuery: memoizes the access-door index maps of
  // the Lemma 8/9 bound derivation (and everything the internal distance
  // engine caches); nullptr disables memoization.
  KnnQuery(const IPTree& tree, const ObjectIndex& objects,
           const DistanceQueryOptions& options = {},
           DistanceCache* cache = nullptr);

  // The k nearest objects to q, ascending by distance.
  std::vector<ObjectResult> Knn(const IndoorPoint& q, size_t k,
                                SearchStats* stats = nullptr) const;

  // Line 2 of Algorithm 5 on its own: the root ascent from q, reusable
  // across several searches for the same query point (the execution
  // planner computes it once per distinct source in a coalesced group).
  // The ascent is a deterministic function of q alone — k never enters
  // it — so Knn(q, k) == KnnWithAscent(q, k, ComputeAscent(q)) bit-for-bit.
  AscentDistances ComputeAscent(const IndoorPoint& q) const;

  // Knn with the root ascent precomputed via ComputeAscent(q).
  std::vector<ObjectResult> KnnWithAscent(const IndoorPoint& q, size_t k,
                                          const AscentDistances& ascent,
                                          SearchStats* stats = nullptr) const {
    return Search(q, k, kInfDistance, nullptr, stats, &ascent);
  }

  // All objects within `radius` of q, ascending by distance (the range
  // query of §3.4, reached through RangeQuery for API symmetry).
  std::vector<ObjectResult> WithinRange(const IndoorPoint& q, double radius,
                                        SearchStats* stats = nullptr) const;

  // Optional pruning hooks for derived query types (e.g. spatial keyword
  // queries, §1.3): subtrees where node_filter returns false are skipped,
  // objects where object_filter returns false are not reported.
  struct Filters {
    std::function<bool(NodeId)> node;
    std::function<bool(ObjectId)> object;
  };

  // The k nearest objects passing the filters.
  std::vector<ObjectResult> KnnFiltered(const IndoorPoint& q, size_t k,
                                        const Filters& filters,
                                        SearchStats* stats = nullptr) const {
    return Search(q, k, kInfDistance, &filters, stats);
  }

  // KnnFiltered with the root ascent precomputed (see KnnWithAscent); the
  // live-object snapshot reader routes coalesced kNN groups through this.
  std::vector<ObjectResult> KnnFilteredWithAscent(
      const IndoorPoint& q, size_t k, const Filters& filters,
      const AscentDistances& ascent, SearchStats* stats = nullptr) const {
    return Search(q, k, kInfDistance, &filters, stats, &ascent);
  }

  // All objects within `radius` passing the filters (the range analogue of
  // KnnFiltered; the live-object snapshot reader excludes overlay and
  // tombstoned ids through this).
  std::vector<ObjectResult> RangeFiltered(const IndoorPoint& q, double radius,
                                          const Filters& filters,
                                          SearchStats* stats = nullptr) const {
    return Search(q, std::numeric_limits<size_t>::max(), radius, &filters,
                  stats);
  }

 private:
  // Shared branch-and-bound: best-first traversal collecting either the k
  // nearest or everything within a fixed radius. `precomputed`, when set,
  // replaces the line-2 root ascent (must be ComputeAscent(q)'s output).
  std::vector<ObjectResult> Search(
      const IndoorPoint& q, size_t k, double radius,
      const Filters* filters = nullptr, SearchStats* stats = nullptr,
      const AscentDistances* precomputed = nullptr) const;

  // Exact distances from q to the objects of q's own leaf (one Dijkstra).
  void LocalObjectDistances(const IndoorPoint& q, NodeId leaf,
                            std::vector<double>& out) const;

  const IPTree& tree_;
  const ObjectIndex& objects_;
  IPDistanceQuery query_;
  // Reused by LocalObjectDistances so the kNN hot path does not rebuild a
  // Dijkstra engine (heap + per-door arrays) per leaf scan; mutable scratch
  // under the one-engine-per-thread contract, like query_'s internals.
  mutable DijkstraEngine local_dijkstra_;
  mutable std::vector<DijkstraSource> local_sources_;
  mutable std::vector<DoorId> local_targets_;
  mutable std::vector<int32_t> bound_rows_, bound_cols_;  // Lemma 8/9
};

}  // namespace viptree

#endif  // VIPTREE_CORE_KNN_QUERY_H_
