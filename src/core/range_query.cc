#include "core/range_query.h"

namespace viptree {

RangeQuery::RangeQuery(const IPTree& tree, const ObjectIndex& objects,
                       const DistanceQueryOptions& options,
                       DistanceCache* cache)
    : knn_(tree, objects, options, cache) {}

std::vector<ObjectResult> RangeQuery::Range(const IndoorPoint& q,
                                            double radius,
                                            SearchStats* stats) const {
  return knn_.WithinRange(q, radius, stats);
}

}  // namespace viptree
