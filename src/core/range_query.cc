#include "core/range_query.h"

namespace viptree {

RangeQuery::RangeQuery(const IPTree& tree, const ObjectIndex& objects,
                       const DistanceQueryOptions& options)
    : knn_(tree, objects, options) {}

std::vector<ObjectResult> RangeQuery::Range(const IndoorPoint& q,
                                            double radius,
                                            SearchStats* stats) const {
  return knn_.WithinRange(q, radius, stats);
}

}  // namespace viptree
