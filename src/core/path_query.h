// Shortest path queries (§3.2 / §3.3): recover the full door sequence of
// the shortest path by decomposing the partial path maintained by the
// distance query (Algorithm 4).
//
// IPPathQuery decomposes partial edges top-down through node distance
// matrices (descending into the deepest node whose matrix represents the
// pair, which subsumes the paper's lowest-common-ancestor rule).
// VIPPathQuery walks next-hop pointers of the materialized matrices and
// achieves the expected O(w) of §3.3.

#ifndef VIPTREE_CORE_PATH_QUERY_H_
#define VIPTREE_CORE_PATH_QUERY_H_

#include <vector>

#include "core/distance_query.h"

namespace viptree {

struct IndoorPath {
  double distance = kInfDistance;
  // Door sequence from s to t; empty when the best route stays inside one
  // partition (s and t see each other directly).
  std::vector<DoorId> doors;
};

class IPPathQuery {
 public:
  // `cache` as in IPDistanceQuery (forwarded to the internal engine);
  // nullptr disables memoization.
  explicit IPPathQuery(const IPTree& tree,
                       const DistanceQueryOptions& options = {},
                       DistanceCache* cache = nullptr);

  IndoorPath Path(const IndoorPoint& s, const IndoorPoint& t) const;
  IndoorPath DoorPath(DoorId s, DoorId t) const;

 private:
  friend class VIPPathQuery;

  IndoorPath CrossLeafPath(const QuerySource& s, const QuerySource& t) const;
  IndoorPath LocalPath(const QuerySource& s, const QuerySource& t) const;

  // Appends the doors strictly between x and y on their shortest path,
  // using the matrices of `ctx` and below. `ctx` must represent the pair.
  void Expand(DoorId x, DoorId y, NodeId ctx, std::vector<DoorId>& out) const;

  // Deepest node under `ctx` (inclusive) whose matrix represents (x, y).
  NodeId Descend(DoorId x, DoorId y, NodeId ctx) const;
  bool Represents(DoorId x, DoorId y, NodeId n) const;

  // Turns an ascent into the partial door path source -> top access door
  // `top_idx` (index into AD(chain.back())). Returns door sequence plus the
  // context node for each edge.
  struct PartialPath {
    std::vector<DoorId> doors;
    std::vector<NodeId> edge_ctx;  // edge i connects doors[i] -> doors[i+1]
  };
  PartialPath Backtrack(const AscentDistances& ascent, size_t top_idx) const;

  const IPTree& tree_;
  IPDistanceQuery query_;
  mutable std::vector<int32_t> row_idx_, col_idx_;  // CrossLeafPath join
};

class VIPPathQuery {
 public:
  explicit VIPPathQuery(const VIPTree& tree,
                        const DistanceQueryOptions& options = {},
                        DistanceCache* cache = nullptr);

  IndoorPath Path(const IndoorPoint& s, const IndoorPoint& t) const;
  IndoorPath DoorPath(DoorId s, DoorId t) const;

 private:
  IndoorPath CrossLeafPath(const QuerySource& s, const QuerySource& t) const;

  // Appends the doors strictly between x and access door index `col` of
  // node A (an ancestor of Leaf(x)), walking materialized next-hops.
  void WalkToAncestorAd(DoorId x, NodeId ancestor, size_t col,
                        std::vector<DoorId>& out) const;

  const VIPTree& vip_;
  VIPDistanceQuery query_;
  IPPathQuery ip_path_;  // leaf-level and fallback expansion
  mutable std::vector<int32_t> row_idx_, col_idx_;
};

}  // namespace viptree

#endif  // VIPTREE_CORE_PATH_QUERY_H_
