// Part of the reproduction of "VIP-Tree: An Effective Index for Indoor
// Spatial Queries" (Shao, Cheema, Taniar, Lu — PVLDB 10(4), 2016); all
// section/algorithm references below point into that paper.
//
// The Indoor Partitioning Tree (IP-Tree) of §2.1.
//
// Leaves group adjacent indoor partitions around at most one hallway each;
// levels above are formed by Algorithm 1 (merge nodes sharing the most
// access doors, minimum degree t). Every node stores a distance matrix:
//
//   * leaf N: doors(N) x AD(N) — distance from every door of the leaf to
//     every access door, plus a next-hop door per entry (first door on the
//     path when it stays inside N, first *leaf-access* door when it leaves
//     N, kInvalidId when the path has no intermediate door);
//   * non-leaf N: V(N) x V(N) where V(N) is the union of the children's
//     access doors, with next-hop = first door of V(N) on the path.
//
// All distances are *global* shortest distances (leaf matrices come from
// Dijkstra runs on the D2D graph, non-leaf matrices from Dijkstra runs on
// the level-l graphs of §2.1.2 whose edge weights are themselves global).
//
// Construct with IPTree::Build (or VIPTree::Build to add the §2.2
// materialization). The venue and D2D graph must outlive the tree.

#ifndef VIPTREE_CORE_IP_TREE_H_
#define VIPTREE_CORE_IP_TREE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "graph/d2d_graph.h"
#include "model/venue.h"
#include "common/span.h"
#include "common/storage.h"

namespace viptree {

struct TreeNode {
  NodeId id = kInvalidId;
  NodeId parent = kInvalidId;
  int level = 1;  // leaves are level 1, the root has the highest level
  std::vector<NodeId> children;  // empty for leaves

  // Leaf only: member partitions and all their doors (sorted, deduped;
  // doors shared with a neighbouring leaf appear in both leaves).
  std::vector<PartitionId> partitions;
  std::vector<DoorId> doors;

  // AD(N): doors connecting the node's interior to the outside, sorted.
  std::vector<DoorId> access_doors;

  // Non-leaf only: V(N) = union of children's access doors, sorted. Rows
  // and columns of `dist` / `next_hop` index into this vector. For leaves,
  // rows index `doors` and columns index `access_doors`.
  std::vector<DoorId> matrix_doors;

  FlatMatrix<float> dist;
  FlatMatrix<DoorId> next_hop;

  // Half-open interval of leaf DFS indices covered by this subtree,
  // giving O(1) "does node contain leaf X" tests.
  uint32_t leaf_begin = 0;
  uint32_t leaf_end = 0;

  bool is_leaf() const { return children.empty(); }
};

struct IPTreeOptions {
  // Minimum degree t of Algorithm 1 (the paper evaluates t in Fig. 7 and
  // uses t = 2 everywhere else).
  int min_degree = 2;
  // Optional externally supplied partition -> leaf assignment (dense ids);
  // when absent the §2.1.2 assembler is used.
  std::optional<std::vector<int>> forced_leaf_assignment;
};

class IPTree {
 public:
  // The (at most two) leaves containing a door, with the door's row index
  // in each leaf's distance matrix.
  struct DoorLeafEntry {
    NodeId leaf = kInvalidId;
    uint32_t row = 0;
  };
  using DoorLeafPair = std::array<DoorLeafEntry, 2>;
  // Persisted as raw bytes in format-v2 snapshots (aliased out of the
  // mapped file), so the layout must stay padding-free.
  static_assert(sizeof(DoorLeafPair) == 16,
                "DoorLeafPair must stay a packed 16 bytes");

  // The complete serializable state of a built tree: the nodes (with their
  // distance/next-hop matrices) plus every derived lookup structure, stored
  // verbatim so a reconstructed tree answers queries bit-identically. The
  // flat lookup arrays are Storage, so a zero-copy snapshot load can hand
  // in arena views.
  struct Parts {
    std::vector<TreeNode> nodes;
    NodeId root = kInvalidId;
    size_t num_leaves = 0;
    Storage<NodeId> leaf_of_partition;
    Storage<DoorLeafPair> door_leaves;
    Storage<uint8_t> is_access_door;
    // CSR of partition -> superior doors.
    Storage<uint32_t> superior_offsets;
    Storage<DoorId> superior_doors;
  };

  // Builds the tree over `venue` / `graph` (which must outlive it).
  static IPTree Build(const Venue& venue, const D2DGraph& graph,
                      const IPTreeOptions& options = {});

  // See viptree::ValidationLevel (model/types.h): kStructure skips only
  // the per-cell matrix sweep (distances finite, next-hop entries in
  // range).
  using ValidationLevel = viptree::ValidationLevel;

  // Returns an error description if `parts` is structurally inconsistent
  // with the venue/graph (sizes, id ranges, matrix shapes), std::nullopt if
  // it passes. Semantic validity (the distances being correct) is protected
  // by the snapshot checksums, not re-derived here.
  static std::optional<std::string> ValidateParts(
      const Venue& venue, const Parts& parts,
      ValidationLevel level = ValidationLevel::kFull);

  // Reconstructs a tree from deserialized parts over `venue` / `graph`
  // (which must outlive it). Aborts on malformed input (run ValidateParts
  // first when the parts come from an untrusted file).
  static IPTree FromParts(const Venue& venue, const D2DGraph& graph,
                          Parts parts);

  // Same, for callers that have *just* run ValidateParts themselves (the
  // snapshot loader): skips the redundant validation pass.
  static IPTree FromValidatedParts(const Venue& venue, const D2DGraph& graph,
                                   Parts parts);

  Parts ToParts() const;

  IPTree(const IPTree&) = delete;
  IPTree& operator=(const IPTree&) = delete;
  IPTree(IPTree&&) = default;
  IPTree& operator=(IPTree&&) = default;

  const Venue& venue() const { return *venue_; }
  const D2DGraph& graph() const { return *graph_; }
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  const TreeNode& node(NodeId n) const { return nodes_[n]; }
  NodeId root() const { return root_; }
  size_t num_leaves() const { return num_leaves_; }
  int height() const { return nodes_[root_].level; }

  // The leaf containing partition `p`.
  NodeId LeafOfPartition(PartitionId p) const { return leaf_of_partition_[p]; }

  // The (at most two) leaves containing door `d`, with the door's row index
  // in each leaf's distance matrix.
  Span<const DoorLeafEntry> LeavesOfDoor(DoorId d) const {
    return {door_leaves_[d].data(),
            static_cast<size_t>(door_leaves_[d][1].leaf == kInvalidId ? 1 : 2)};
  }

  // True if `d` is an access door of at least one leaf (the global access
  // door notion of §3.2).
  bool IsAccessDoor(DoorId d) const { return is_access_door_[d]; }

  // Superior doors of a partition (§3.1.1 Definition 2).
  Span<const DoorId> SuperiorDoors(PartitionId p) const {
    return {superior_doors_.data() + superior_offsets_[p],
            superior_offsets_[p + 1] - superior_offsets_[p]};
  }

  bool NodeContainsLeaf(NodeId n, NodeId leaf) const {
    const uint32_t idx = nodes_[leaf].leaf_begin;
    return idx >= nodes_[n].leaf_begin && idx < nodes_[n].leaf_end;
  }
  bool NodeContainsPartition(NodeId n, PartitionId p) const {
    return NodeContainsLeaf(n, LeafOfPartition(p));
  }

  // Lowest common ancestor of two nodes.
  NodeId Lca(NodeId a, NodeId b) const;

  // Distance between two doors of the same node matrix; both must be
  // present (rows/cols as described in TreeNode). Helpers for readability:
  float LeafMatrixDist(const TreeNode& leaf, DoorId door,
                       DoorId access_door) const;
  DoorId LeafMatrixNextHop(const TreeNode& leaf, DoorId door,
                           DoorId access_door) const;

  // Index of `d` within `doors` (binary search); -1 if absent.
  static int IndexOf(Span<const DoorId> doors, DoorId d);

  // Aggregate statistics (Table 1 / Fig. 7 reporting).
  struct Stats {
    size_t num_nodes = 0;
    size_t num_leaves = 0;
    int height = 0;
    double avg_access_doors = 0.0;  // rho
    size_t max_access_doors = 0;
    double avg_children = 0.0;  // f (over non-leaf nodes)
    double avg_superior_doors = 0.0;  // alpha
    size_t max_superior_doors = 0;
    uint64_t memory_bytes = 0;
  };
  Stats ComputeStats() const;

  uint64_t MemoryBytes() const;

 private:
  friend class TreeBuilder;
  friend class VIPTree;  // takes ownership in VIPTree::Extend
  IPTree() = default;

  const Venue* venue_ = nullptr;
  const D2DGraph* graph_ = nullptr;
  std::vector<TreeNode> nodes_;
  NodeId root_ = kInvalidId;
  size_t num_leaves_ = 0;
  Storage<NodeId> leaf_of_partition_;
  Storage<DoorLeafPair> door_leaves_;
  Storage<uint8_t> is_access_door_;
  // CSR of partition -> superior doors.
  Storage<uint32_t> superior_offsets_;
  Storage<DoorId> superior_doors_;
};

}  // namespace viptree

#endif  // VIPTREE_CORE_IP_TREE_H_
