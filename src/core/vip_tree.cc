#include "core/vip_tree.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "graph/dijkstra.h"
#include "common/span.h"

namespace viptree {

VIPTree VIPTree::Build(const Venue& venue, const D2DGraph& graph,
                       const IPTreeOptions& options) {
  return Extend(IPTree::Build(venue, graph, options));
}

VIPTree VIPTree::Extend(IPTree base) {
  VIPTree vip;
  vip.base_ = std::move(base);
  const IPTree& tree = vip.base_;
  const Venue& venue = tree.venue();

  vip.ext_.resize(tree.nodes().size());
  DijkstraEngine engine(tree.graph());

  // Leaves in DFS order so a subtree's doors are the union of a contiguous
  // leaf range.
  std::vector<NodeId> leaf_at_index(tree.num_leaves());
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf()) leaf_at_index[n.leaf_begin] = n.id;
  }

  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) continue;  // the IP leaf matrix already has the shape
    ExtMatrix& ext = vip.ext_[node.id];
    for (uint32_t li = node.leaf_begin; li < node.leaf_end; ++li) {
      const TreeNode& leaf = tree.node(leaf_at_index[li]);
      ext.doors.insert(ext.doors.end(), leaf.doors.begin(), leaf.doors.end());
    }
    std::sort(ext.doors.begin(), ext.doors.end());
    ext.doors.erase(std::unique(ext.doors.begin(), ext.doors.end()),
                    ext.doors.end());

    ext.dist = FlatMatrix<float>(ext.doors.size(), node.access_doors.size(),
                                 0.0f);
    ext.next_hop = FlatMatrix<DoorId>(ext.doors.size(),
                                      node.access_doors.size(), kInvalidId);

    for (size_t col = 0; col < node.access_doors.size(); ++col) {
      const DoorId a = node.access_doors[col];
      engine.Start(a);
      engine.RunToTargets(ext.doors);
      for (size_t row = 0; row < ext.doors.size(); ++row) {
        const DoorId d = ext.doors[row];
        VIPTREE_CHECK_MSG(engine.Settled(d),
                          "subtree door unreachable from access door");
        ext.dist.at(row, col) = static_cast<float>(engine.DistanceTo(d));
        if (d == a) continue;
        bool inside = true;
        DoorId first_access = kInvalidId;
        for (DoorId cur = d; cur != a; cur = engine.ParentOf(cur)) {
          const PartitionId via = engine.ParentVia(cur);
          if (!tree.NodeContainsPartition(node.id, via)) inside = false;
          const DoorId next = engine.ParentOf(cur);
          if (next != a && first_access == kInvalidId &&
              tree.IsAccessDoor(next)) {
            first_access = next;
          }
        }
        const DoorId first_door = engine.ParentOf(d);
        if (inside) {
          ext.next_hop.at(row, col) =
              first_door == a ? kInvalidId : first_door;
        } else {
          DoorId hop = first_access;
          if (hop == kInvalidId) {
            hop = first_door == a ? kInvalidId : first_door;
          }
          ext.next_hop.at(row, col) = hop;
        }
      }
    }
  }
  (void)venue;
  return vip;
}

Span<const DoorId> VIPTree::ExtDoors(NodeId n) const {
  const TreeNode& node = base_.node(n);
  if (node.is_leaf()) return node.doors;
  return ext_[n].doors;
}

int VIPTree::ExtRowOf(NodeId n, DoorId d) const {
  return IPTree::IndexOf(ExtDoors(n), d);
}

float VIPTree::ExtDist(NodeId n, DoorId d, size_t col) const {
  const TreeNode& node = base_.node(n);
  const int row = ExtRowOf(n, d);
  VIPTREE_DCHECK(row >= 0);
  if (node.is_leaf()) return node.dist.at(row, col);
  return ext_[n].dist.at(row, col);
}

DoorId VIPTree::ExtNextHop(NodeId n, DoorId d, size_t col) const {
  const TreeNode& node = base_.node(n);
  const int row = ExtRowOf(n, d);
  VIPTREE_DCHECK(row >= 0);
  if (node.is_leaf()) return node.next_hop.at(row, col);
  return ext_[n].next_hop.at(row, col);
}

uint64_t VIPTree::MemoryBytes() const {
  uint64_t bytes = base_.MemoryBytes();
  for (const ExtMatrix& e : ext_) {
    bytes += e.doors.capacity() * sizeof(DoorId);
    bytes += e.dist.MemoryBytes();
    bytes += e.next_hop.MemoryBytes();
  }
  return bytes;
}

}  // namespace viptree
