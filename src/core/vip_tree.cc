#include "core/vip_tree.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "graph/dijkstra.h"
#include "common/span.h"

namespace viptree {

VIPTree VIPTree::Build(const Venue& venue, const D2DGraph& graph,
                       const IPTreeOptions& options) {
  return Extend(IPTree::Build(venue, graph, options));
}

VIPTree VIPTree::Extend(IPTree base) {
  VIPTree vip;
  vip.base_ = std::move(base);
  const IPTree& tree = vip.base_;
  const Venue& venue = tree.venue();

  vip.ext_.resize(tree.nodes().size());
  DijkstraEngine engine(tree.graph());

  // Leaves in DFS order so a subtree's doors are the union of a contiguous
  // leaf range.
  std::vector<NodeId> leaf_at_index(tree.num_leaves());
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf()) leaf_at_index[n.leaf_begin] = n.id;
  }

  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) continue;  // the IP leaf matrix already has the shape
    ExtMatrix& ext = vip.ext_[node.id];
    std::vector<DoorId> subtree_doors;
    for (uint32_t li = node.leaf_begin; li < node.leaf_end; ++li) {
      const TreeNode& leaf = tree.node(leaf_at_index[li]);
      subtree_doors.insert(subtree_doors.end(), leaf.doors.begin(),
                           leaf.doors.end());
    }
    std::sort(subtree_doors.begin(), subtree_doors.end());
    subtree_doors.erase(
        std::unique(subtree_doors.begin(), subtree_doors.end()),
        subtree_doors.end());
    ext.doors = std::move(subtree_doors);

    ext.dist = FlatMatrix<float>(ext.doors.size(), node.access_doors.size(),
                                 0.0f);
    ext.next_hop = FlatMatrix<DoorId>(ext.doors.size(),
                                      node.access_doors.size(), kInvalidId);

    for (size_t col = 0; col < node.access_doors.size(); ++col) {
      const DoorId a = node.access_doors[col];
      engine.Start(a);
      engine.RunToTargets(ext.doors);
      for (size_t row = 0; row < ext.doors.size(); ++row) {
        const DoorId d = ext.doors[row];
        VIPTREE_CHECK_MSG(engine.Settled(d),
                          "subtree door unreachable from access door");
        ext.dist.at(row, col) = static_cast<float>(engine.DistanceTo(d));
        if (d == a) continue;
        bool inside = true;
        DoorId first_access = kInvalidId;
        for (DoorId cur = d; cur != a; cur = engine.ParentOf(cur)) {
          const PartitionId via = engine.ParentVia(cur);
          if (!tree.NodeContainsPartition(node.id, via)) inside = false;
          const DoorId next = engine.ParentOf(cur);
          if (next != a && first_access == kInvalidId &&
              tree.IsAccessDoor(next)) {
            first_access = next;
          }
        }
        const DoorId first_door = engine.ParentOf(d);
        if (inside) {
          ext.next_hop.at(row, col) =
              first_door == a ? kInvalidId : first_door;
        } else {
          DoorId hop = first_access;
          if (hop == kInvalidId) {
            hop = first_door == a ? kInvalidId : first_door;
          }
          ext.next_hop.at(row, col) = hop;
        }
      }
    }
  }
  (void)venue;
  return vip;
}

std::optional<std::string> VIPTree::ValidateParts(const IPTree& base,
                                                  const Parts& parts,
                                                  IPTree::ValidationLevel level) {
  if (parts.ext.size() != base.nodes().size()) {
    return "extended-matrix array has " + std::to_string(parts.ext.size()) +
           " entries for " + std::to_string(base.nodes().size()) + " nodes";
  }
  for (const TreeNode& node : base.nodes()) {
    const ExtMatrix& ext = parts.ext[node.id];
    const std::string where = "extended matrix of node " +
                              std::to_string(node.id);
    if (node.is_leaf()) {
      if (!ext.doors.empty() || !ext.dist.empty() || !ext.next_hop.empty()) {
        return where + " must be empty for a leaf";
      }
      continue;
    }
    for (DoorId d : ext.doors) {
      if (d < 0 || static_cast<size_t>(d) >= base.venue().NumDoors()) {
        return where + " has an out-of-range door";
      }
    }
    if (!std::is_sorted(ext.doors.begin(), ext.doors.end())) {
      return where + " rows are not sorted";
    }
    if (ext.dist.rows() != ext.doors.size() ||
        ext.dist.cols() != node.access_doors.size() ||
        ext.next_hop.rows() != ext.dist.rows() ||
        ext.next_hop.cols() != ext.dist.cols()) {
      return where + " has the wrong shape";
    }
    if (level != IPTree::ValidationLevel::kFull) continue;
    // Same cell-value rules as the base matrices (see IPTree validation):
    // next-hop entries are array indices naming an intermediate door.
    const size_t num_doors = base.venue().NumDoors();
    for (size_t r = 0; r < ext.dist.rows(); ++r) {
      for (size_t c = 0; c < ext.dist.cols(); ++c) {
        if (!(ext.dist.at(r, c) >= 0.0f) ||
            ext.dist.at(r, c) == std::numeric_limits<float>::infinity()) {
          return where + " has a negative, NaN or infinite distance";
        }
        const DoorId hop = ext.next_hop.at(r, c);
        if (hop == kInvalidId) continue;
        if (hop < 0 || static_cast<size_t>(hop) >= num_doors ||
            hop == ext.doors[r] || hop == node.access_doors[c]) {
          return where + " has an invalid next-hop entry";
        }
      }
    }
  }
  return std::nullopt;
}

VIPTree VIPTree::FromParts(IPTree base, Parts parts) {
  const std::optional<std::string> error = ValidateParts(base, parts);
  VIPTREE_CHECK_MSG(!error.has_value(),
                    error.has_value() ? error->c_str() : "");
  return FromValidatedParts(std::move(base), std::move(parts));
}

VIPTree VIPTree::FromValidatedParts(IPTree base, Parts parts) {
  VIPTree vip;
  vip.base_ = std::move(base);
  vip.ext_ = std::move(parts.ext);
  return vip;
}

VIPTree::Parts VIPTree::ToParts() const {
  Parts parts;
  parts.ext = ext_;
  return parts;
}

Span<const DoorId> VIPTree::ExtDoors(NodeId n) const {
  const TreeNode& node = base_.node(n);
  if (node.is_leaf()) return node.doors;
  return ext_[n].doors;
}

int VIPTree::ExtRowOf(NodeId n, DoorId d) const {
  return IPTree::IndexOf(ExtDoors(n), d);
}

float VIPTree::ExtDist(NodeId n, DoorId d, size_t col) const {
  const TreeNode& node = base_.node(n);
  const int row = ExtRowOf(n, d);
  VIPTREE_DCHECK(row >= 0);
  if (node.is_leaf()) return node.dist.at(row, col);
  return ext_[n].dist.at(row, col);
}

Span<const float> VIPTree::ExtDistRow(NodeId n, int row) const {
  const TreeNode& node = base_.node(n);
  VIPTREE_DCHECK(row >= 0);
  if (node.is_leaf()) return node.dist.row(static_cast<size_t>(row));
  return ext_[n].dist.row(static_cast<size_t>(row));
}

DoorId VIPTree::ExtNextHop(NodeId n, DoorId d, size_t col) const {
  const TreeNode& node = base_.node(n);
  const int row = ExtRowOf(n, d);
  VIPTREE_DCHECK(row >= 0);
  if (node.is_leaf()) return node.next_hop.at(row, col);
  return ext_[n].next_hop.at(row, col);
}

uint64_t VIPTree::MemoryBytes() const {
  uint64_t bytes = base_.MemoryBytes();
  for (const ExtMatrix& e : ext_) {
    bytes += e.doors.MemoryBytes();
    bytes += e.dist.MemoryBytes();
    bytes += e.next_hop.MemoryBytes();
  }
  return bytes;
}

}  // namespace viptree
