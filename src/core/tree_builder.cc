#include "core/tree_builder.h"

#include <algorithm>
#include <map>
#include <queue>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "core/leaf_assembler.h"
#include "graph/dijkstra.h"
#include "common/span.h"

namespace viptree {

namespace {

void SortUnique(std::vector<DoorId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// A small reusable Dijkstra over a compact weighted graph (the level-l
// graphs of §2.1.2). Epoch-stamped like DijkstraEngine so per-node runs do
// not pay O(V) initialization.
class LevelGraphDijkstra {
 public:
  struct Arc {
    int to;
    float weight;
  };

  explicit LevelGraphDijkstra(const std::vector<std::vector<Arc>>& adjacency)
      : adjacency_(adjacency),
        dist_(adjacency.size(), kInfDistance),
        parent_(adjacency.size(), -1),
        settled_(adjacency.size(), 0),
        mark_(adjacency.size(), 0) {}

  // Runs from `source` until all of `targets` are settled.
  void Run(int source, const std::vector<int>& targets) {
    ++epoch_;
    heap_ = {};
    Reach(source, 0.0, -1);
    size_t wanted = 0;
    for (int t : targets) {
      if (!(mark_[t] == epoch_ && settled_[t])) ++wanted;
    }
    while (wanted > 0 && !heap_.empty()) {
      const auto [d, u] = heap_.top();
      heap_.pop();
      if (settled_[u] && mark_[u] == epoch_) continue;
      if (d > dist_[u]) continue;
      settled_[u] = 1;
      if (std::binary_search(targets.begin(), targets.end(), u)) --wanted;
      for (const Arc& arc : adjacency_[u]) {
        if (mark_[arc.to] == epoch_ && settled_[arc.to]) continue;
        Reach(arc.to, d + arc.weight, u);
      }
    }
  }

  bool Settled(int v) const { return mark_[v] == epoch_ && settled_[v]; }
  double DistanceTo(int v) const {
    return Settled(v) ? dist_[v] : kInfDistance;
  }
  int ParentOf(int v) const { return Settled(v) ? parent_[v] : -1; }

 private:
  void Reach(int v, double d, int parent) {
    if (mark_[v] != epoch_) {
      mark_[v] = epoch_;
      settled_[v] = 0;
      dist_[v] = kInfDistance;
    }
    if (d < dist_[v]) {
      dist_[v] = d;
      parent_[v] = parent;
      heap_.emplace(d, v);
    }
  }

  const std::vector<std::vector<Arc>>& adjacency_;
  std::vector<double> dist_;
  std::vector<int> parent_;
  std::vector<uint8_t> settled_;
  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<std::pair<double, int>>>
      heap_;
};

}  // namespace

TreeBuilder::TreeBuilder(const Venue& venue, const D2DGraph& graph,
                         const IPTreeOptions& options)
    : venue_(venue), graph_(graph), options_(options) {
  VIPTREE_CHECK_MSG(options_.min_degree >= 2, "minimum degree t must be >= 2");
  tree_.venue_ = &venue;
  tree_.graph_ = &graph;
}

IPTree TreeBuilder::BuildIPTree() {
  BuildLeaves();
  BuildUpperLevels();
  AssignLeafIntervals();
  BuildLeafMatricesAndSuperiorDoors();
  BuildNonLeafMatrices();
  RenumberNodesTraversalOrder();
  return std::move(tree_);
}

// Re-ids every node in pre-order DFS position (root = 0, children in
// stored order), so the kNN branch-and-bound descent touches consecutive
// node records — prefetches and cache lines follow the traversal instead
// of the leaves-first construction order. Must run LAST: the earlier
// build phases iterate leaves as ids [0, num_leaves_). The new numbering
// persists through snapshots unchanged (nodes carry explicit ids, and
// ValidateParts only requires density, not leaves-first).
void TreeBuilder::RenumberNodesTraversalOrder() {
  IPTree& t = tree_;
  const size_t n = t.nodes_.size();
  if (n == 0) return;
  std::vector<NodeId> new_id(n, kInvalidId);
  std::vector<NodeId> order;  // order[new] = old
  order.reserve(n);
  std::vector<NodeId> stack;
  stack.push_back(t.root_);
  while (!stack.empty()) {
    const NodeId old = stack.back();
    stack.pop_back();
    new_id[old] = static_cast<NodeId>(order.size());
    order.push_back(old);
    const TreeNode& node = t.nodes_[old];
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  VIPTREE_CHECK_MSG(order.size() == n, "tree must reach every node");
  std::vector<TreeNode> renumbered(n);
  for (size_t ni = 0; ni < n; ++ni) {
    renumbered[ni] = std::move(t.nodes_[order[ni]]);
    TreeNode& node = renumbered[ni];
    node.id = static_cast<NodeId>(ni);
    if (node.parent != kInvalidId) node.parent = new_id[node.parent];
    for (NodeId& c : node.children) c = new_id[c];
  }
  t.nodes_ = std::move(renumbered);
  t.root_ = new_id[t.root_];
  for (size_t p = 0; p < t.leaf_of_partition_.size(); ++p) {
    t.leaf_of_partition_[p] = new_id[t.leaf_of_partition_[p]];
  }
  for (size_t d = 0; d < t.door_leaves_.size(); ++d) {
    for (IPTree::DoorLeafEntry& e : t.door_leaves_[d]) {
      if (e.leaf != kInvalidId) e.leaf = new_id[e.leaf];
    }
  }
}

bool TreeBuilder::IsAccessOf(DoorId d,
                             const std::vector<NodeId>& cluster_of_leaf,
                             [[maybe_unused]] NodeId cluster) const {
  const Door& door = venue_.door(d);
  if (door.is_exterior()) return true;
  const NodeId ca = cluster_of_leaf[tree_.leaf_of_partition_[door.partition_a]];
  const NodeId cb = cluster_of_leaf[tree_.leaf_of_partition_[door.partition_b]];
  VIPTREE_DCHECK(ca == cluster || cb == cluster);
  return ca != cb;
}

void TreeBuilder::BuildLeaves() {
  const LeafAssignment assignment =
      options_.forced_leaf_assignment.has_value()
          ? ForcedLeaves(venue_, *options_.forced_leaf_assignment)
          : AssembleLeaves(venue_);
  tree_.num_leaves_ = static_cast<size_t>(assignment.num_leaves);
  tree_.leaf_of_partition_.assign(assignment.leaf_of_partition.begin(),
                                  assignment.leaf_of_partition.end());

  tree_.nodes_.resize(tree_.num_leaves_);
  for (size_t i = 0; i < tree_.num_leaves_; ++i) {
    TreeNode& leaf = tree_.nodes_[i];
    leaf.id = static_cast<NodeId>(i);
    leaf.level = 1;
  }
  for (PartitionId p = 0; p < static_cast<PartitionId>(venue_.NumPartitions());
       ++p) {
    tree_.nodes_[tree_.leaf_of_partition_[p]].partitions.push_back(p);
  }
  for (TreeNode& leaf : tree_.nodes_) {
    for (PartitionId p : leaf.partitions) {
      for (DoorId d : venue_.DoorsOf(p)) leaf.doors.push_back(d);
    }
    SortUnique(leaf.doors);
  }

  // Access doors of leaves; also the global access-door flags of §3.2 and
  // the door -> (leaf, row) lookup.
  std::vector<NodeId> identity(tree_.num_leaves_);
  for (size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<NodeId>(i);
  }
  tree_.is_access_door_.assign(venue_.NumDoors(), 0);
  tree_.door_leaves_.assign(
      venue_.NumDoors(),
      {IPTree::DoorLeafEntry{kInvalidId, 0}, IPTree::DoorLeafEntry{kInvalidId, 0}});
  for (TreeNode& leaf : tree_.nodes_) {
    for (size_t row = 0; row < leaf.doors.size(); ++row) {
      const DoorId d = leaf.doors[row];
      if (IsAccessOf(d, identity, leaf.id)) {
        leaf.access_doors.push_back(d);
        tree_.is_access_door_[d] = 1;
      }
      auto& entries = tree_.door_leaves_[d];
      if (entries[0].leaf == kInvalidId) {
        entries[0] = {leaf.id, static_cast<uint32_t>(row)};
      } else {
        VIPTREE_DCHECK(entries[1].leaf == kInvalidId);
        entries[1] = {leaf.id, static_cast<uint32_t>(row)};
      }
    }
    // doors are sorted, so access_doors is sorted too.
  }
}

void TreeBuilder::BuildUpperLevels() {
  const int t = options_.min_degree;
  // cluster_of_leaf maps every leaf to the node that currently contains it
  // at the level under construction.
  std::vector<NodeId> cluster_of_leaf(tree_.num_leaves_);
  for (size_t i = 0; i < cluster_of_leaf.size(); ++i) {
    cluster_of_leaf[i] = static_cast<NodeId>(i);
  }

  std::vector<NodeId> current;  // node ids at the current top level
  for (size_t i = 0; i < tree_.num_leaves_; ++i) {
    current.push_back(static_cast<NodeId>(i));
  }

  int level = 1;
  while (current.size() > static_cast<size_t>(t)) {
    // --- Algorithm 1: createNextLevel -------------------------------
    // Clusters are identified by a representative node id in `current`;
    // merging folds one representative into another.
    struct Cluster {
      std::vector<NodeId> members;  // level-l node ids
      std::vector<DoorId> access_doors;
      std::vector<NodeId> leaves;  // leaf ids contained (for cluster_of_leaf)
      int degree = 0;
      bool alive = false;
    };
    std::map<NodeId, Cluster> clusters;
    std::vector<NodeId> cluster_of(cluster_of_leaf);  // leaf -> cluster rep
    for (NodeId n : current) {
      Cluster c;
      c.members = {n};
      c.access_doors = tree_.nodes_[n].access_doors;
      c.degree = 1;
      c.alive = true;
      clusters[n] = std::move(c);
    }
    for (size_t leaf = 0; leaf < cluster_of_leaf.size(); ++leaf) {
      clusters[cluster_of_leaf[leaf]].leaves.push_back(
          static_cast<NodeId>(leaf));
    }

    // For a door on the boundary of cluster `rep`, the cluster on the other
    // side (kInvalidId for exterior doors).
    auto other_cluster = [&](DoorId d, NodeId rep) -> NodeId {
      const Door& door = venue_.door(d);
      if (door.is_exterior()) return kInvalidId;
      const NodeId ca =
          cluster_of[tree_.leaf_of_partition_[door.partition_a]];
      const NodeId cb =
          cluster_of[tree_.leaf_of_partition_[door.partition_b]];
      return ca == rep ? cb : ca;
    };
    auto adjacent_count = [&](const Cluster& c, NodeId rep) {
      std::vector<NodeId> neighbours;
      for (DoorId d : c.access_doors) {
        const NodeId o = other_cluster(d, rep);
        if (o != kInvalidId && o != rep) neighbours.push_back(o);
      }
      std::sort(neighbours.begin(), neighbours.end());
      neighbours.erase(std::unique(neighbours.begin(), neighbours.end()),
                       neighbours.end());
      return neighbours.size();
    };

    // Min-heap keyed by (degree, number of adjacent nodes, id); the paper's
    // heap prefers low degree, then fewer adjacent nodes (line 1 of Alg. 1).
    using Key = std::tuple<int, size_t, NodeId>;
    std::priority_queue<Key, std::vector<Key>, std::greater<Key>> heap;
    size_t alive = 0;
    for (auto& [rep, c] : clusters) {
      heap.emplace(c.degree, adjacent_count(c, rep), rep);
      ++alive;
    }

    while (!heap.empty() && alive > 1) {
      const auto [degree, adj, rep] = heap.top();
      Cluster& ni = clusters[rep];
      if (!ni.alive || ni.degree != degree) {
        heap.pop();
        continue;  // stale entry
      }
      if (degree >= t) break;
      heap.pop();

      // Line 4: the adjacent node with the most common access doors
      // (common door <=> one of Ni's access doors leads into it).
      std::map<NodeId, int> common;
      for (DoorId d : ni.access_doors) {
        const NodeId o = other_cluster(d, rep);
        if (o != kInvalidId && o != rep) ++common[o];
      }
      if (common.empty()) {
        // No mergeable neighbour (exterior-only boundary); park the cluster
        // by treating it as full so the loop can terminate.
        heap.emplace(t, adj, rep);
        clusters[rep].degree = t;
        continue;
      }
      NodeId best = kInvalidId;
      int best_common = -1;
      for (const auto& [o, cnt] : common) {
        if (cnt > best_common) {
          best = o;
          best_common = cnt;
        }
      }

      // Merge `best` into `rep`.
      Cluster& nj = clusters[best];
      VIPTREE_DCHECK(nj.alive);
      ni.members.insert(ni.members.end(), nj.members.begin(),
                        nj.members.end());
      ni.degree += nj.degree;
      for (NodeId leaf : nj.leaves) cluster_of[leaf] = rep;
      ni.leaves.insert(ni.leaves.end(), nj.leaves.begin(), nj.leaves.end());
      std::vector<DoorId> candidate = ni.access_doors;
      candidate.insert(candidate.end(), nj.access_doors.begin(),
                       nj.access_doors.end());
      SortUnique(candidate);
      ni.access_doors.clear();
      for (DoorId d : candidate) {
        const NodeId o = other_cluster(d, rep);
        if (o != rep) ni.access_doors.push_back(d);  // incl. exterior
      }
      nj.alive = false;
      nj.members.clear();
      nj.leaves.clear();
      --alive;
      heap.emplace(ni.degree, adjacent_count(ni, rep), rep);
    }

    // Materialize the surviving clusters as level l+1 nodes.
    std::vector<NodeId> next;
    bool merged_any = false;
    for (auto& [rep, c] : clusters) {
      if (!c.alive) continue;
      if (c.members.size() == 1) {
        next.push_back(c.members[0]);  // pass-through (degenerate venues)
        continue;
      }
      merged_any = true;
      TreeNode node;
      node.id = static_cast<NodeId>(tree_.nodes_.size());
      node.level = level + 1;
      node.children = c.members;
      std::sort(node.children.begin(), node.children.end());
      node.access_doors = std::move(c.access_doors);
      for (NodeId child : node.children) {
        tree_.nodes_[child].parent = node.id;
      }
      for (NodeId leaf : c.leaves) cluster_of_leaf[leaf] = node.id;
      next.push_back(node.id);
      tree_.nodes_.push_back(std::move(node));
    }
    std::sort(next.begin(), next.end());
    if (!merged_any) break;  // cannot reduce further; root-merge below
    current = std::move(next);
    ++level;
  }

  // Merge the remaining nodes (<= t of them) into the root.
  if (current.size() == 1) {
    tree_.root_ = current[0];
  } else {
    TreeNode root;
    root.id = static_cast<NodeId>(tree_.nodes_.size());
    root.level = level + 1;
    root.children = current;
    for (NodeId child : current) tree_.nodes_[child].parent = root.id;
    // Access doors of the root: exterior doors only.
    std::vector<DoorId> candidate;
    for (NodeId child : current) {
      candidate.insert(candidate.end(),
                       tree_.nodes_[child].access_doors.begin(),
                       tree_.nodes_[child].access_doors.end());
    }
    SortUnique(candidate);
    for (DoorId d : candidate) {
      if (venue_.door(d).is_exterior()) root.access_doors.push_back(d);
    }
    tree_.root_ = root.id;
    tree_.nodes_.push_back(std::move(root));
  }
}

void TreeBuilder::AssignLeafIntervals() {
  // Iterative DFS from the root assigning consecutive indices to leaves.
  uint32_t counter = 0;
  // Post-order intervals: process children, then set own interval.
  struct Frame {
    NodeId node;
    size_t next_child;
    uint32_t begin;
  };
  std::vector<Frame> stack = {{tree_.root_, 0, 0}};
  stack.back().begin = 0;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    TreeNode& node = tree_.nodes_[frame.node];
    if (node.is_leaf()) {
      node.leaf_begin = counter;
      node.leaf_end = ++counter;
      stack.pop_back();
      continue;
    }
    if (frame.next_child == 0) frame.begin = counter;
    if (frame.next_child < node.children.size()) {
      const NodeId child = node.children[frame.next_child++];
      stack.push_back({child, 0, counter});
    } else {
      node.leaf_begin = frame.begin;
      node.leaf_end = counter;
      stack.pop_back();
    }
  }
}

void TreeBuilder::BuildLeafMatricesAndSuperiorDoors() {
  DijkstraEngine engine(graph_);
  std::vector<uint8_t> in_partition(venue_.NumDoors(), 0);
  // superior_flag[d] accumulates superiority of door d for its partitions;
  // a door belongs to up to two partitions so we track per (partition,door).
  std::vector<std::vector<DoorId>> superior(venue_.NumPartitions());

  // Local access doors are superior by definition (Definition 2 case i).
  for (const TreeNode& leaf : tree_.nodes_) {
    if (!leaf.is_leaf()) continue;
    for (PartitionId p : leaf.partitions) {
      for (DoorId d : venue_.DoorsOf(p)) {
        if (IPTree::IndexOf(leaf.access_doors, d) >= 0) {
          superior[p].push_back(d);
        }
      }
    }
  }

  for (size_t i = 0; i < tree_.num_leaves_; ++i) {
    TreeNode& leaf = tree_.nodes_[i];
    leaf.dist = FlatMatrix<float>(leaf.doors.size(), leaf.access_doors.size(),
                                  0.0f);
    leaf.next_hop = FlatMatrix<DoorId>(leaf.doors.size(),
                                       leaf.access_doors.size(), kInvalidId);
    for (size_t col = 0; col < leaf.access_doors.size(); ++col) {
      const DoorId a = leaf.access_doors[col];
      engine.Start(a);
      engine.RunToTargets(leaf.doors);
      for (size_t row = 0; row < leaf.doors.size(); ++row) {
        const DoorId d = leaf.doors[row];
        VIPTREE_CHECK_MSG(engine.Settled(d),
                          "leaf door unreachable from access door");
        leaf.dist.at(row, col) = static_cast<float>(engine.DistanceTo(d));
        if (d == a) continue;  // dist 0, next hop NULL
        // Walk the path d -> a (parent pointers of the tree rooted at a).
        bool inside = true;
        DoorId first_access = kInvalidId;
        for (DoorId cur = d; cur != a; cur = engine.ParentOf(cur)) {
          const PartitionId via = engine.ParentVia(cur);
          if (tree_.leaf_of_partition_[via] != leaf.id) inside = false;
          const DoorId next = engine.ParentOf(cur);
          if (next != a && first_access == kInvalidId &&
              tree_.is_access_door_[next]) {
            first_access = next;
          }
        }
        const DoorId first_door = engine.ParentOf(d);
        if (inside) {
          leaf.next_hop.at(row, col) = first_door == a ? kInvalidId : first_door;
        } else {
          // Example 6: the next hop must be the first access door so the
          // decomposition can continue outside the leaf.
          DoorId hop = first_access;
          if (hop == kInvalidId) {
            // Path leaves the leaf but the only doors on it are d and a
            // (e.g. a parallel edge through a foreign partition).
            hop = first_door == a ? kInvalidId : first_door;
          }
          leaf.next_hop.at(row, col) = hop;
        }
      }

      // Superior doors (Definition 2 case ii): for partitions of this leaf
      // for which `a` is a *global* access door, a door di is superior if
      // the path di -> a crosses no other door of the partition.
      for (PartitionId p : leaf.partitions) {
        const Span<const DoorId> p_doors = venue_.DoorsOf(p);
        bool a_local = false;
        for (DoorId d : p_doors) in_partition[d] = 1;
        if (in_partition[a]) a_local = true;
        if (!a_local) {
          for (DoorId di : p_doors) {
            bool crosses_other = false;
            for (DoorId cur = di; cur != a; cur = engine.ParentOf(cur)) {
              if (cur != di && in_partition[cur]) {
                crosses_other = true;
                break;
              }
            }
            if (!crosses_other) superior[p].push_back(di);
          }
        }
        for (DoorId d : p_doors) in_partition[d] = 0;
      }
    }
  }

  // Pack the superior-door CSR.
  tree_.superior_offsets_.assign(venue_.NumPartitions() + 1, 0);
  for (size_t p = 0; p < venue_.NumPartitions(); ++p) {
    SortUnique(superior[p]);
    tree_.superior_offsets_[p + 1] =
        tree_.superior_offsets_[p] + static_cast<uint32_t>(superior[p].size());
  }
  tree_.superior_doors_.reserve(tree_.superior_offsets_.back());
  for (size_t p = 0; p < venue_.NumPartitions(); ++p) {
    tree_.superior_doors_.append(superior[p].begin(), superior[p].end());
  }
}

void TreeBuilder::BuildNonLeafMatrices() {
  // Group non-leaf nodes by level.
  int max_level = tree_.nodes_[tree_.root_].level;
  std::vector<std::vector<NodeId>> by_level(max_level + 1);
  for (const TreeNode& n : tree_.nodes_) {
    if (!n.is_leaf()) by_level[n.level].push_back(n.id);
  }

  for (int level = 2; level <= max_level; ++level) {
    if (by_level[level].empty()) continue;
    // --- Level-l graph G_l: vertices are access doors of level l-1 nodes,
    // edges connect access doors of the same level l-1 node (§2.1.2).
    // "Level l-1 nodes" here are the children of the level-l nodes (the
    // pass-through case makes children potentially deeper than l-1; using
    // children is the correct generalization).
    std::vector<DoorId> vertices;
    std::vector<NodeId> producer_nodes;
    for (NodeId nid : by_level[level]) {
      for (NodeId child : tree_.nodes_[nid].children) {
        producer_nodes.push_back(child);
        const TreeNode& c = tree_.nodes_[child];
        vertices.insert(vertices.end(), c.access_doors.begin(),
                        c.access_doors.end());
      }
    }
    SortUnique(vertices);
    std::vector<int> vertex_of_door(venue_.NumDoors(), -1);
    for (size_t i = 0; i < vertices.size(); ++i) {
      vertex_of_door[vertices[i]] = static_cast<int>(i);
    }

    std::vector<std::vector<LevelGraphDijkstra::Arc>> adjacency(
        vertices.size());
    for (NodeId child : producer_nodes) {
      const TreeNode& c = tree_.nodes_[child];
      for (size_t i = 0; i < c.access_doors.size(); ++i) {
        for (size_t j = i + 1; j < c.access_doors.size(); ++j) {
          const DoorId u = c.access_doors[i];
          const DoorId v = c.access_doors[j];
          float w;
          if (c.is_leaf()) {
            w = tree_.LeafMatrixDist(c, u, v);
          } else {
            const int r = IPTree::IndexOf(c.matrix_doors, u);
            const int cc = IPTree::IndexOf(c.matrix_doors, v);
            VIPTREE_DCHECK(r >= 0 && cc >= 0);
            w = c.dist.at(r, cc);
          }
          const int cu = vertex_of_door[u];
          const int cv = vertex_of_door[v];
          adjacency[cu].push_back({cv, w});
          adjacency[cv].push_back({cu, w});
        }
      }
    }
    LevelGraphDijkstra dijkstra(adjacency);

    // --- Distance matrices of the level-l nodes.
    for (NodeId nid : by_level[level]) {
      TreeNode& node = tree_.nodes_[nid];
      node.matrix_doors.clear();
      for (NodeId child : node.children) {
        const TreeNode& c = tree_.nodes_[child];
        node.matrix_doors.insert(node.matrix_doors.end(),
                                 c.access_doors.begin(),
                                 c.access_doors.end());
      }
      SortUnique(node.matrix_doors);
      const size_t m = node.matrix_doors.size();
      node.dist = FlatMatrix<float>(m, m, 0.0f);
      node.next_hop = FlatMatrix<DoorId>(m, m, kInvalidId);

      std::vector<int> targets;
      targets.reserve(m);
      for (DoorId d : node.matrix_doors) targets.push_back(vertex_of_door[d]);
      std::sort(targets.begin(), targets.end());

      for (size_t row = 0; row < m; ++row) {
        const int src = vertex_of_door[node.matrix_doors[row]];
        dijkstra.Run(src, targets);
        for (size_t col = 0; col < m; ++col) {
          if (col == row) continue;
          const int dst = vertex_of_door[node.matrix_doors[col]];
          VIPTREE_CHECK_MSG(dijkstra.Settled(dst),
                            "level graph must be connected");
          node.dist.at(row, col) =
              static_cast<float>(dijkstra.DistanceTo(dst));
          // Next hop: first door of V(N) on the path row -> col. Walk the
          // parent chain dst -> src, remembering the vertex *closest to
          // src*, i.e. the last V(N)-member seen before reaching src.
          DoorId hop = kInvalidId;
          for (int cur = dijkstra.ParentOf(dst); cur != src && cur != -1;
               cur = dijkstra.ParentOf(cur)) {
            const DoorId cur_door = vertices[cur];
            if (IPTree::IndexOf(node.matrix_doors, cur_door) >= 0) {
              hop = cur_door;
            }
          }
          node.next_hop.at(row, col) = hop;
        }
      }
    }
  }
}

}  // namespace viptree
