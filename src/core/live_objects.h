// Live (mutable) object sets over the immutable VIP-/IP-Tree: an
// RCU-style epoch-published view of the ObjectIndex, motivated by the
// velocity-partitioning idea of "Boosting Moving Object Indexing through
// Velocity Partitioning" — hot (recently moved/added) objects live in a
// small exact overlay, cold objects stay in the packed CSR ObjectIndex,
// and the overlay is merged back into a freshly built CSR once it crosses
// a low watermark.
//
// Concurrency model (the whole point of this file):
//
//   writer                           readers (any number, lock-free)
//   ------                           -------------------------------
//   lock write_mu_                   snap = Acquire()   (atomic load)
//   build next ObjectSnapshot        ... answer queries against *snap,
//   aside (patch overlay / rebuild       which is immutable forever ...
//   CSR at the watermark)            drop snap          (refcount)
//   atomic_store(snapshot_, next)
//   unlock
//
// Readers pin one snapshot per query via a shared_ptr atomic load and
// never observe a half-applied update; reclamation is the shared_ptr
// refcount — the last reader of a superseded snapshot frees it. Epochs
// are strictly monotonic, so a reader can also detect publishes.
//
// Removals are tombstones: ObjectIndex requires every object id to appear
// in some leaf, so removed ids stay in the packed CSR at their last known
// position and are hidden by the query-side object filter. SubtreeCount
// therefore over-counts after removals, which only weakens pruning (never
// correctness). PackedParts() — the Save path — compacts to live objects
// with densely renumbered ids, so the snapshot *file* format is untouched.

#ifndef VIPTREE_CORE_LIVE_OBJECTS_H_
#define VIPTREE_CORE_LIVE_OBJECTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/keyword_query.h"
#include "core/knn_query.h"
#include "core/object_index.h"

namespace viptree {

// One batch of object mutations, applied atomically: either every
// operation takes effect in one published epoch, or (on validation
// failure) none does.
struct ObjectDelta {
  struct Move {
    ObjectId id = kInvalidId;
    IndoorPoint to;
  };
  struct Add {
    IndoorPoint at;
    // Only meaningful on venues with a keyword index; must be empty
    // otherwise (validated, not CHECKed).
    std::vector<std::string> keywords;
  };

  std::vector<Move> moves;
  std::vector<Add> adds;
  std::vector<ObjectId> removes;

  bool empty() const {
    return moves.empty() && adds.empty() && removes.empty();
  }
  size_t size() const {
    return moves.size() + adds.size() + removes.size();
  }
};

// One immutable published view of the object set. Everything here is
// written before the atomic publish and never mutated after, so any
// number of readers share it without synchronization.
struct ObjectSnapshot {
  struct OverlayEntry {
    ObjectId id = kInvalidId;
    IndoorPoint point;
    std::vector<std::string> keywords;  // empty on keywordless venues
  };

  // Strictly monotonic per LiveObjectIndex; starts at 1.
  uint64_t epoch = 0;

  // The packed cold store. `keywords` (null on keywordless venues) is
  // built over *base, so it is declared after base and destroyed first.
  std::shared_ptr<const ObjectIndex> base;
  std::shared_ptr<const KeywordIndex> keywords;

  // Hot objects diverging from `base` (moved since the last merge, or
  // added with id >= base->NumObjects()). Sorted by id.
  std::vector<OverlayEntry> overlay;
  // Tombstoned ids, sorted. Disjoint from overlay ids.
  std::vector<ObjectId> removed;

  // Live objects: ids ever allocated minus removed.
  size_t num_live = 0;

  bool IsRemoved(ObjectId o) const;
  const OverlayEntry* FindOverlay(ObjectId o) const;
  // In the overlay or tombstoned — i.e. the base CSR's copy of `o` must
  // not be reported.
  bool Diverged(ObjectId o) const {
    return IsRemoved(o) || FindOverlay(o) != nullptr;
  }
};

// Tuning knobs for LiveObjectIndex. Namespace-scope (not nested) so it is
// complete where the constructors' default arguments need it.
struct LiveObjectOptions {
  // Overlay size that triggers a merge (full CSR rebuild) on the next
  // publish. Small by design: every overlay entry costs each query one
  // exact distance evaluation.
  size_t merge_watermark = 64;

  // Scale the watermark by the measured workload instead of using the
  // fixed value: effective = clamp(merge_watermark * sqrt(updates /
  // queries), [min_watermark, max_watermark]). Query-heavy venues merge
  // eagerly (each overlay entry taxes every query with one exact distance
  // evaluation); update-heavy venues batch more mutations per CSR
  // rebuild. Counters come from Acquire() (one per read query) and
  // ApplyDelta (one per mutation) via relaxed atomics; until both have
  // fired the fixed watermark applies.
  bool adaptive_watermark = false;
  size_t min_watermark = 8;
  size_t max_watermark = 1024;
};

// The epoch-published object store of one venue. Thread-safe: any number
// of concurrent Acquire()/readers, writers serialized on an internal
// mutex (per-venue update serialization falls out of this).
class LiveObjectIndex {
 public:
  using Options = LiveObjectOptions;

  // Builds the initial packed index from scratch. `keywords` is either
  // empty (no keyword index) or aligned with `objects`.
  LiveObjectIndex(const IPTree& tree, std::vector<IndoorPoint> objects,
                  std::vector<std::vector<std::string>> keywords = {},
                  const Options& options = Options());

  // Adopts an already-built (e.g. snapshot-loaded, possibly arena-backed)
  // index pair as epoch 1. `keywords`, when non-null, must be built over
  // *base.
  LiveObjectIndex(const IPTree& tree,
                  std::shared_ptr<const ObjectIndex> base,
                  std::shared_ptr<const KeywordIndex> keywords,
                  const Options& options = Options());

  LiveObjectIndex(const LiveObjectIndex&) = delete;
  LiveObjectIndex& operator=(const LiveObjectIndex&) = delete;

  // The current published snapshot (wait-free for practical purposes: one
  // shared_ptr atomic load). The returned snapshot is immutable; hold it
  // for the duration of one query, re-Acquire for the next.
  std::shared_ptr<const ObjectSnapshot> Acquire() const;

  uint64_t epoch() const { return Acquire()->epoch; }
  bool has_keywords() const { return Acquire()->keywords != nullptr; }
  size_t NumLiveObjects() const { return Acquire()->num_live; }

  // Full replacement: rebuilds the packed CSR (and keyword index) from
  // scratch, clears overlay and tombstones, publishes one new epoch.
  void SetObjects(std::vector<IndoorPoint> objects,
                  std::vector<std::vector<std::string>> keywords = {});

  // Applies one delta and publishes one new epoch, or returns an error
  // and publishes nothing. Validated, never CHECKed: out-of-range ids or
  // partitions, double-removes, duplicate ids within the delta, and
  // keyworded adds on a keywordless venue all fail cleanly. Added objects
  // get ids in submission order starting at the current id count.
  std::optional<std::string> ApplyDelta(const ObjectDelta& delta);

  // Serialization view for VenueBundle::Save: the packed parts of the
  // *live* object set. When overlay and tombstones are empty this is the
  // current base verbatim; otherwise objects are compacted to dense ids
  // in ascending old-id order (a snapshot round-trip renumbers ids once
  // updates happened — documented in the save path).
  struct PackedState {
    ObjectIndex::Parts objects;
    std::optional<KeywordIndex::Parts> keywords;
  };
  PackedState PackedParts() const;

  // Inspection accessors for single-writer call sites (tools, tests,
  // stats): the references stay valid only until the next publish, so
  // concurrent mutators must be excluded by the caller. Query paths use
  // Acquire() instead.
  const ObjectIndex& current_base() const { return *Acquire()->base; }
  const KeywordIndex& current_keywords() const { return *Acquire()->keywords; }

  // The merge threshold ApplyDelta will use next: the fixed watermark, or
  // the query/update-ratio-scaled value under adaptive_watermark (exposed
  // for tests and the update benchmark).
  size_t EffectiveMergeWatermark() const;

  uint64_t MemoryBytes() const;

 private:
  // Rebuilds base_/base_keywords_ from the canonical writer state and
  // clears the overlay. Caller holds write_mu_.
  void MergeLocked();
  // Publishes the canonical writer state as the next epoch. Caller holds
  // write_mu_.
  void PublishLocked();

  const IPTree& tree_;
  const Options options_;

  // Workload counters of the adaptive watermark. Relaxed: they only steer
  // a heuristic, and Acquire() must stay a single uncontended load plus
  // one relaxed increment.
  mutable std::atomic<uint64_t> queries_seen_{0};
  std::atomic<uint64_t> updates_seen_{0};

  // Writer-side canonical state, guarded by write_mu_. positions_ and
  // keyword_strings_ cover every id ever allocated (tombstones included).
  mutable std::mutex write_mu_;
  uint64_t next_epoch_ = 1;
  std::vector<IndoorPoint> positions_;
  std::vector<std::vector<std::string>> keyword_strings_;
  std::vector<uint8_t> removed_flags_;
  std::vector<ObjectId> removed_ids_;  // sorted
  bool has_keywords_ = false;
  // The current packed pair (shared with published snapshots) and the
  // overlay entries diverging from it, sorted by id.
  std::shared_ptr<const ObjectIndex> base_;
  std::shared_ptr<const KeywordIndex> base_keywords_;
  std::vector<ObjectSnapshot::OverlayEntry> overlay_;

  // The published snapshot; accessed only through std::atomic_load /
  // std::atomic_store (C++17 shared_ptr atomics).
  std::shared_ptr<const ObjectSnapshot> snapshot_;
};

// Read-side executor over one pinned ObjectSnapshot: the object-query
// surface of KnnQuery/KeywordIndex, answering against base + overlay -
// tombstones. One instance per (thread, snapshot); it owns the mutable
// Dijkstra scratch (same contract as the core engines) and keeps its
// snapshot alive. Rebuild on epoch change — construction costs one
// Dijkstra-scratch allocation, so pin-and-reuse across queries of one
// epoch.
class SnapshotQuery {
 public:
  // `cache` as in KnnQuery (object positions are per-snapshot state and
  // are never cached; only immutable tree/graph legs are — see
  // core/distance_cache.h); nullptr disables memoization.
  SnapshotQuery(const IPTree& tree,
                std::shared_ptr<const ObjectSnapshot> snapshot,
                const DistanceQueryOptions& options = {},
                DistanceCache* cache = nullptr);

  // The k nearest live objects, ascending by (distance, id).
  std::vector<ObjectResult> Knn(const IndoorPoint& q, size_t k,
                                SearchStats* stats = nullptr) const;

  // The root ascent of q over the tree, shareable across several Knn
  // calls for the same point (it depends on the tree alone, not on the
  // snapshot's objects). Knn(q, k) == KnnWithAscent(q, k,
  // ComputeAscent(q)) bit-for-bit; the execution planner computes one
  // ascent per distinct source in a coalesced kNN group.
  AscentDistances ComputeAscent(const IndoorPoint& q) const {
    return knn_.ComputeAscent(q);
  }

  // Knn with the root ascent precomputed via ComputeAscent(q).
  std::vector<ObjectResult> KnnWithAscent(const IndoorPoint& q, size_t k,
                                          const AscentDistances& ascent,
                                          SearchStats* stats = nullptr) const;

  // All live objects within `radius`, ascending by (distance, id).
  std::vector<ObjectResult> Range(const IndoorPoint& q, double radius,
                                  SearchStats* stats = nullptr) const;

  // The k nearest live objects holding all query keywords. Returns empty
  // when the snapshot has no keyword index (the serving layer rejects
  // such requests earlier; this keeps the race window between its check
  // and execution benign instead of CHECK-fatal).
  std::vector<ObjectResult> BooleanKnn(const IndoorPoint& q, size_t k,
                                       const std::vector<std::string>& query,
                                       SearchStats* stats = nullptr) const;

  const ObjectSnapshot& snapshot() const { return *snapshot_; }
  const std::shared_ptr<const ObjectSnapshot>& snapshot_ptr() const {
    return snapshot_;
  }

 private:
  // Scores the overlay (exact distances), merges with sorted base
  // results, truncates to k within radius.
  std::vector<ObjectResult> MergeOverlay(
      std::vector<ObjectResult> base_results, const IndoorPoint& q, size_t k,
      double radius, const std::vector<std::string>* required_keywords,
      SearchStats* stats) const;

  std::shared_ptr<const ObjectSnapshot> snapshot_;
  KnnQuery knn_;           // over snapshot_->base
  IPDistanceQuery exact_;  // overlay distances
};

}  // namespace viptree

#endif  // VIPTREE_CORE_LIVE_OBJECTS_H_
