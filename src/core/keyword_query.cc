#include "core/keyword_query.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace viptree {

KeywordIndex::KeywordIndex(
    const IPTree& tree, const ObjectIndex& objects,
    const std::vector<std::vector<std::string>>& keywords)
    : tree_(tree), objects_(objects), knn_(tree, objects) {
  VIPTREE_CHECK(keywords.size() == objects.NumObjects());

  object_keywords_.resize(keywords.size());
  for (ObjectId o = 0; o < static_cast<ObjectId>(keywords.size()); ++o) {
    for (const std::string& word : keywords[o]) {
      const auto [it, _] = keyword_ids_.emplace(
          word, static_cast<KeywordId>(keyword_ids_.size()));
      object_keywords_[o].push_back(it->second);
    }
    std::sort(object_keywords_[o].begin(), object_keywords_[o].end());
    object_keywords_[o].erase(
        std::unique(object_keywords_[o].begin(), object_keywords_[o].end()),
        object_keywords_[o].end());
  }

  // Per-node keyword summaries, leaves first then propagated upward
  // (children have smaller ids than parents in the bottom-up build, so one
  // ascending pass per leaf-object suffices via the parent chain).
  node_keywords_.resize(tree.nodes().size());
  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf()) continue;
    std::vector<KeywordId> merged;
    for (ObjectId o : objects.ObjectsInLeaf(node.id)) {
      merged.insert(merged.end(), object_keywords_[o].begin(),
                    object_keywords_[o].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    node_keywords_[node.id] = std::move(merged);
  }
  // Propagate up level by level.
  std::vector<NodeId> order;
  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf()) order.push_back(node.id);
  }
  std::sort(order.begin(), order.end(), [&tree](NodeId a, NodeId b) {
    return tree.node(a).level < tree.node(b).level;
  });
  for (NodeId nid : order) {
    std::vector<KeywordId> merged;
    for (NodeId child : tree.node(nid).children) {
      merged.insert(merged.end(), node_keywords_[child].begin(),
                    node_keywords_[child].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    node_keywords_[nid] = std::move(merged);
  }
}

KeywordIndex::KeywordIndex(FromPartsTag, const IPTree& tree,
                           const ObjectIndex& objects, Parts parts)
    : tree_(tree), objects_(objects), knn_(tree, objects) {
  keyword_ids_.reserve(parts.keywords_by_id.size());
  for (size_t i = 0; i < parts.keywords_by_id.size(); ++i) {
    keyword_ids_.emplace(std::move(parts.keywords_by_id[i]),
                         static_cast<KeywordId>(i));
  }
  object_keywords_ = std::move(parts.object_keywords);
  node_keywords_ = std::move(parts.node_keywords);
}

std::optional<std::string> KeywordIndex::ValidateParts(
    const IPTree& tree, const ObjectIndex& objects, const Parts& parts) {
  // Duplicate dictionary strings would silently collapse in the string ->
  // id map, making the higher id unreachable (missed keyword matches).
  {
    std::vector<const std::string*> words;
    words.reserve(parts.keywords_by_id.size());
    for (const std::string& word : parts.keywords_by_id) {
      words.push_back(&word);
    }
    std::sort(words.begin(), words.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    for (size_t i = 1; i < words.size(); ++i) {
      if (*words[i - 1] == *words[i]) {
        return "keyword dictionary contains duplicate '" + *words[i] + "'";
      }
    }
  }
  if (parts.object_keywords.size() != objects.NumObjects()) {
    return "keyword index covers " +
           std::to_string(parts.object_keywords.size()) + " objects, not " +
           std::to_string(objects.NumObjects());
  }
  if (parts.node_keywords.size() != tree.nodes().size()) {
    return "keyword index covers " +
           std::to_string(parts.node_keywords.size()) + " nodes, not " +
           std::to_string(tree.nodes().size());
  }
  const KeywordId num_keywords =
      static_cast<KeywordId>(parts.keywords_by_id.size());
  auto check_lists =
      [num_keywords](const std::vector<std::vector<KeywordId>>& lists,
                     const char* what) -> std::optional<std::string> {
    for (const std::vector<KeywordId>& list : lists) {
      if (!std::is_sorted(list.begin(), list.end())) {
        return std::string(what) + " keyword list is not sorted";
      }
      for (KeywordId k : list) {
        if (k < 0 || k >= num_keywords) {
          return std::string(what) + " keyword id out of range";
        }
      }
    }
    return std::nullopt;
  };
  if (auto error = check_lists(parts.object_keywords, "object")) return error;
  if (auto error = check_lists(parts.node_keywords, "node")) return error;
  return std::nullopt;
}

KeywordIndex KeywordIndex::FromParts(const IPTree& tree,
                                     const ObjectIndex& objects,
                                     Parts parts) {
  const std::optional<std::string> error =
      ValidateParts(tree, objects, parts);
  VIPTREE_CHECK_MSG(!error.has_value(),
                    error.has_value() ? error->c_str() : "");
  return KeywordIndex(FromPartsTag{}, tree, objects, std::move(parts));
}

KeywordIndex KeywordIndex::FromValidatedParts(const IPTree& tree,
                                              const ObjectIndex& objects,
                                              Parts parts) {
  return KeywordIndex(FromPartsTag{}, tree, objects, std::move(parts));
}

KeywordIndex::Parts KeywordIndex::ToParts() const {
  Parts parts;
  parts.keywords_by_id.resize(keyword_ids_.size());
  for (const auto& [word, id] : keyword_ids_) {
    parts.keywords_by_id[id] = word;
  }
  parts.object_keywords = object_keywords_;
  parts.node_keywords = node_keywords_;
  return parts;
}

bool KeywordIndex::NodeHasAll(NodeId n,
                              const std::vector<KeywordId>& wanted) const {
  const std::vector<KeywordId>& have = node_keywords_[n];
  for (KeywordId w : wanted) {
    if (!std::binary_search(have.begin(), have.end(), w)) return false;
  }
  return true;
}

bool KeywordIndex::ObjectHasAll(ObjectId o,
                                const std::vector<KeywordId>& wanted) const {
  const std::vector<KeywordId>& have = object_keywords_[o];
  for (KeywordId w : wanted) {
    if (!std::binary_search(have.begin(), have.end(), w)) return false;
  }
  return true;
}

std::vector<ObjectResult> KeywordIndex::BooleanKnn(
    const IndoorPoint& q, size_t k,
    const std::vector<std::string>& query) const {
  return BooleanKnn(q, k, query, knn_, nullptr);
}

std::optional<std::vector<KeywordIndex::KeywordId>>
KeywordIndex::ResolveKeywords(const std::vector<std::string>& query) const {
  std::vector<KeywordId> wanted;
  for (const std::string& word : query) {
    const auto it = keyword_ids_.find(word);
    if (it == keyword_ids_.end()) return std::nullopt;
    wanted.push_back(it->second);
  }
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());
  return wanted;
}

std::vector<ObjectResult> KeywordIndex::BooleanKnn(
    const IndoorPoint& q, size_t k, const std::vector<std::string>& query,
    const KnnQuery& knn, SearchStats* stats) const {
  const std::optional<std::vector<KeywordId>> wanted =
      ResolveKeywords(query);
  if (!wanted.has_value()) return {};  // some keyword matches no object

  KnnQuery::Filters filters;
  filters.node = [this, &wanted](NodeId n) { return NodeHasAll(n, *wanted); };
  filters.object = [this, &wanted](ObjectId o) {
    return ObjectHasAll(o, *wanted);
  };
  return knn.KnnFiltered(q, k, filters, stats);
}

uint64_t KeywordIndex::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& v : object_keywords_) {
    bytes += v.size() * sizeof(KeywordId);
  }
  for (const auto& v : node_keywords_) {
    bytes += v.size() * sizeof(KeywordId);
  }
  for (const auto& [word, id] : keyword_ids_) {
    bytes += word.size() + sizeof(KeywordId);
  }
  return bytes;
}

}  // namespace viptree
