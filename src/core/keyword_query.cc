#include "core/keyword_query.h"

#include <algorithm>

#include "common/check.h"

namespace viptree {

KeywordIndex::KeywordIndex(
    const IPTree& tree, const ObjectIndex& objects,
    const std::vector<std::vector<std::string>>& keywords)
    : tree_(tree), objects_(objects), knn_(tree, objects) {
  VIPTREE_CHECK(keywords.size() == objects.NumObjects());

  object_keywords_.resize(keywords.size());
  for (ObjectId o = 0; o < static_cast<ObjectId>(keywords.size()); ++o) {
    for (const std::string& word : keywords[o]) {
      const auto [it, _] = keyword_ids_.emplace(
          word, static_cast<KeywordId>(keyword_ids_.size()));
      object_keywords_[o].push_back(it->second);
    }
    std::sort(object_keywords_[o].begin(), object_keywords_[o].end());
    object_keywords_[o].erase(
        std::unique(object_keywords_[o].begin(), object_keywords_[o].end()),
        object_keywords_[o].end());
  }

  // Per-node keyword summaries, leaves first then propagated upward
  // (children have smaller ids than parents in the bottom-up build, so one
  // ascending pass per leaf-object suffices via the parent chain).
  node_keywords_.resize(tree.nodes().size());
  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf()) continue;
    std::vector<KeywordId> merged;
    for (ObjectId o : objects.ObjectsInLeaf(node.id)) {
      merged.insert(merged.end(), object_keywords_[o].begin(),
                    object_keywords_[o].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    node_keywords_[node.id] = std::move(merged);
  }
  // Propagate up level by level.
  std::vector<NodeId> order;
  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf()) order.push_back(node.id);
  }
  std::sort(order.begin(), order.end(), [&tree](NodeId a, NodeId b) {
    return tree.node(a).level < tree.node(b).level;
  });
  for (NodeId nid : order) {
    std::vector<KeywordId> merged;
    for (NodeId child : tree.node(nid).children) {
      merged.insert(merged.end(), node_keywords_[child].begin(),
                    node_keywords_[child].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    node_keywords_[nid] = std::move(merged);
  }
}

bool KeywordIndex::NodeHasAll(NodeId n,
                              const std::vector<KeywordId>& wanted) const {
  const std::vector<KeywordId>& have = node_keywords_[n];
  for (KeywordId w : wanted) {
    if (!std::binary_search(have.begin(), have.end(), w)) return false;
  }
  return true;
}

bool KeywordIndex::ObjectHasAll(ObjectId o,
                                const std::vector<KeywordId>& wanted) const {
  const std::vector<KeywordId>& have = object_keywords_[o];
  for (KeywordId w : wanted) {
    if (!std::binary_search(have.begin(), have.end(), w)) return false;
  }
  return true;
}

std::vector<ObjectResult> KeywordIndex::BooleanKnn(
    const IndoorPoint& q, size_t k,
    const std::vector<std::string>& query) const {
  return BooleanKnn(q, k, query, knn_, nullptr);
}

std::vector<ObjectResult> KeywordIndex::BooleanKnn(
    const IndoorPoint& q, size_t k, const std::vector<std::string>& query,
    const KnnQuery& knn, SearchStats* stats) const {
  std::vector<KeywordId> wanted;
  for (const std::string& word : query) {
    const auto it = keyword_ids_.find(word);
    if (it == keyword_ids_.end()) return {};  // keyword matches no object
    wanted.push_back(it->second);
  }
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());

  KnnQuery::Filters filters;
  filters.node = [this, &wanted](NodeId n) { return NodeHasAll(n, wanted); };
  filters.object = [this, &wanted](ObjectId o) {
    return ObjectHasAll(o, wanted);
  };
  return knn.KnnFiltered(q, k, filters, stats);
}

uint64_t KeywordIndex::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& v : object_keywords_) {
    bytes += v.capacity() * sizeof(KeywordId);
  }
  for (const auto& v : node_keywords_) {
    bytes += v.capacity() * sizeof(KeywordId);
  }
  for (const auto& [word, id] : keyword_ids_) {
    bytes += word.capacity() + sizeof(KeywordId);
  }
  return bytes;
}

}  // namespace viptree
