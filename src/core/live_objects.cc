#include "core/live_objects.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"

namespace viptree {

namespace {

bool HasAllStrings(const std::vector<std::string>& have,
                   const std::vector<std::string>& wanted) {
  for (const std::string& word : wanted) {
    if (std::find(have.begin(), have.end(), word) == have.end()) return false;
  }
  return true;
}

bool ResultLess(const ObjectResult& a, const ObjectResult& b) {
  return a.distance != b.distance ? a.distance < b.distance
                                  : a.object < b.object;
}

}  // namespace

bool ObjectSnapshot::IsRemoved(ObjectId o) const {
  return std::binary_search(removed.begin(), removed.end(), o);
}

const ObjectSnapshot::OverlayEntry* ObjectSnapshot::FindOverlay(
    ObjectId o) const {
  const auto it = std::lower_bound(
      overlay.begin(), overlay.end(), o,
      [](const OverlayEntry& e, ObjectId id) { return e.id < id; });
  return (it != overlay.end() && it->id == o) ? &*it : nullptr;
}

LiveObjectIndex::LiveObjectIndex(
    const IPTree& tree, std::vector<IndoorPoint> objects,
    std::vector<std::vector<std::string>> keywords, const Options& options)
    : tree_(tree), options_(options) {
  VIPTREE_CHECK_MSG(keywords.empty() || keywords.size() == objects.size(),
                    "object keywords must align with the object list");
  std::lock_guard<std::mutex> lock(write_mu_);
  positions_ = std::move(objects);
  has_keywords_ = !keywords.empty();
  keyword_strings_ = std::move(keywords);
  keyword_strings_.resize(positions_.size());
  removed_flags_.assign(positions_.size(), 0);
  MergeLocked();
  PublishLocked();
}

LiveObjectIndex::LiveObjectIndex(const IPTree& tree,
                                 std::shared_ptr<const ObjectIndex> base,
                                 std::shared_ptr<const KeywordIndex> keywords,
                                 const Options& options)
    : tree_(tree), options_(options) {
  VIPTREE_CHECK_MSG(base != nullptr,
                    "LiveObjectIndex adopted a null ObjectIndex");
  std::lock_guard<std::mutex> lock(write_mu_);
  positions_ = base->objects();
  has_keywords_ = keywords != nullptr;
  keyword_strings_.assign(positions_.size(), {});
  if (keywords != nullptr) {
    // Recover the per-object keyword strings so later merges can rebuild
    // the keyword index from the canonical writer state.
    const KeywordIndex::Parts parts = keywords->ToParts();
    for (size_t o = 0; o < parts.object_keywords.size(); ++o) {
      for (const KeywordIndex::KeywordId id : parts.object_keywords[o]) {
        keyword_strings_[o].push_back(parts.keywords_by_id[id]);
      }
    }
  }
  removed_flags_.assign(positions_.size(), 0);
  base_ = std::move(base);
  base_keywords_ = std::move(keywords);
  PublishLocked();
}

std::shared_ptr<const ObjectSnapshot> LiveObjectIndex::Acquire() const {
  if (options_.adaptive_watermark) {
    queries_seen_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::atomic_load(&snapshot_);
}

size_t LiveObjectIndex::EffectiveMergeWatermark() const {
  if (!options_.adaptive_watermark) return options_.merge_watermark;
  const uint64_t queries = queries_seen_.load(std::memory_order_relaxed);
  const uint64_t updates = updates_seen_.load(std::memory_order_relaxed);
  if (queries == 0 || updates == 0) return options_.merge_watermark;
  const double scaled = static_cast<double>(options_.merge_watermark) *
                        std::sqrt(static_cast<double>(updates) /
                                  static_cast<double>(queries));
  const double lo = static_cast<double>(options_.min_watermark);
  const double hi = static_cast<double>(options_.max_watermark);
  return static_cast<size_t>(std::min(hi, std::max(lo, scaled)));
}

void LiveObjectIndex::SetObjects(
    std::vector<IndoorPoint> objects,
    std::vector<std::vector<std::string>> keywords) {
  VIPTREE_CHECK_MSG(keywords.empty() || keywords.size() == objects.size(),
                    "object keywords must align with the object list");
  std::lock_guard<std::mutex> lock(write_mu_);
  positions_ = std::move(objects);
  has_keywords_ = !keywords.empty();
  keyword_strings_ = std::move(keywords);
  keyword_strings_.resize(positions_.size());
  removed_flags_.assign(positions_.size(), 0);
  removed_ids_.clear();
  MergeLocked();
  PublishLocked();
}

std::optional<std::string> LiveObjectIndex::ApplyDelta(
    const ObjectDelta& delta) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const size_t num_ids = positions_.size();
  const size_t num_partitions = tree_.venue().NumPartitions();

  // Validate everything before touching any state: a rejected delta must
  // leave the published snapshot (and the writer state) untouched.
  const auto valid_partition = [num_partitions](const IndoorPoint& p) {
    return p.partition >= 0 &&
           static_cast<size_t>(p.partition) < num_partitions;
  };
  std::vector<ObjectId> touched;
  touched.reserve(delta.moves.size() + delta.removes.size());
  for (const ObjectDelta::Move& move : delta.moves) {
    if (move.id < 0 || static_cast<size_t>(move.id) >= num_ids) {
      return "move targets unknown object id " + std::to_string(move.id);
    }
    if (removed_flags_[move.id] != 0) {
      return "move targets removed object id " + std::to_string(move.id);
    }
    if (!valid_partition(move.to)) {
      return "move of object " + std::to_string(move.id) +
             " targets out-of-range partition " +
             std::to_string(move.to.partition);
    }
    touched.push_back(move.id);
  }
  for (const ObjectId id : delta.removes) {
    if (id < 0 || static_cast<size_t>(id) >= num_ids) {
      return "remove targets unknown object id " + std::to_string(id);
    }
    if (removed_flags_[id] != 0) {
      return "remove targets already-removed object id " + std::to_string(id);
    }
    touched.push_back(id);
  }
  std::sort(touched.begin(), touched.end());
  if (std::adjacent_find(touched.begin(), touched.end()) != touched.end()) {
    return "delta touches one object id twice";
  }
  for (const ObjectDelta::Add& add : delta.adds) {
    if (!valid_partition(add.at)) {
      return "add targets out-of-range partition " +
             std::to_string(add.at.partition);
    }
    if (!has_keywords_ && !add.keywords.empty()) {
      return "venue has no keyword index; adds cannot carry keywords";
    }
  }

  // Apply to the canonical writer state and to the overlay.
  const auto upsert_overlay = [this](ObjectId id) {
    const auto it = std::lower_bound(
        overlay_.begin(), overlay_.end(), id,
        [](const ObjectSnapshot::OverlayEntry& e, ObjectId want) {
          return e.id < want;
        });
    if (it != overlay_.end() && it->id == id) {
      it->point = positions_[id];
      it->keywords = keyword_strings_[id];
    } else {
      overlay_.insert(it, {id, positions_[id], keyword_strings_[id]});
    }
  };
  for (const ObjectDelta::Move& move : delta.moves) {
    positions_[move.id] = move.to;
    upsert_overlay(move.id);
  }
  for (const ObjectId id : delta.removes) {
    removed_flags_[id] = 1;
    removed_ids_.insert(
        std::lower_bound(removed_ids_.begin(), removed_ids_.end(), id), id);
    const auto it = std::lower_bound(
        overlay_.begin(), overlay_.end(), id,
        [](const ObjectSnapshot::OverlayEntry& e, ObjectId want) {
          return e.id < want;
        });
    if (it != overlay_.end() && it->id == id) overlay_.erase(it);
  }
  for (const ObjectDelta::Add& add : delta.adds) {
    const ObjectId id = static_cast<ObjectId>(positions_.size());
    positions_.push_back(add.at);
    keyword_strings_.push_back(add.keywords);
    removed_flags_.push_back(0);
    upsert_overlay(id);
  }

  updates_seen_.fetch_add(delta.size(), std::memory_order_relaxed);

  // Velocity partitioning's cold path: once the hot overlay outgrows the
  // watermark (workload-scaled under adaptive_watermark), fold everything
  // back into a packed CSR built aside.
  if (overlay_.size() > EffectiveMergeWatermark()) MergeLocked();
  PublishLocked();
  return std::nullopt;
}

void LiveObjectIndex::MergeLocked() {
  base_ = std::make_shared<const ObjectIndex>(tree_, positions_);
  base_keywords_.reset();
  if (has_keywords_) {
    base_keywords_ = std::make_shared<const KeywordIndex>(tree_, *base_,
                                                          keyword_strings_);
  }
  overlay_.clear();
}

void LiveObjectIndex::PublishLocked() {
  auto next = std::make_shared<ObjectSnapshot>();
  next->epoch = next_epoch_++;
  next->base = base_;
  next->keywords = base_keywords_;
  next->overlay = overlay_;
  next->removed = removed_ids_;
  next->num_live = positions_.size() - removed_ids_.size();
  std::atomic_store(&snapshot_,
                    std::shared_ptr<const ObjectSnapshot>(std::move(next)));
}

LiveObjectIndex::PackedState LiveObjectIndex::PackedParts() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  PackedState state;
  if (overlay_.empty() && removed_ids_.empty()) {
    state.objects = base_->ToParts();
    if (base_keywords_ != nullptr) state.keywords = base_keywords_->ToParts();
    return state;
  }
  // Compact to the live objects with dense renumbered ids (ascending old
  // id order) so the on-disk format never sees overlays or tombstones.
  std::vector<IndoorPoint> live;
  std::vector<std::vector<std::string>> live_keywords;
  live.reserve(positions_.size() - removed_ids_.size());
  for (size_t id = 0; id < positions_.size(); ++id) {
    if (removed_flags_[id] != 0) continue;
    live.push_back(positions_[id]);
    live_keywords.push_back(keyword_strings_[id]);
  }
  const ObjectIndex packed(tree_, std::move(live));
  state.objects = packed.ToParts();
  if (has_keywords_) {
    state.keywords = KeywordIndex(tree_, packed, live_keywords).ToParts();
  }
  return state;
}

uint64_t LiveObjectIndex::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  uint64_t bytes = base_->MemoryBytes();
  if (base_keywords_ != nullptr) bytes += base_keywords_->MemoryBytes();
  for (const ObjectSnapshot::OverlayEntry& entry : overlay_) {
    bytes += sizeof(entry);
    for (const std::string& word : entry.keywords) bytes += word.size();
  }
  bytes += removed_ids_.size() * sizeof(ObjectId);
  return bytes;
}

SnapshotQuery::SnapshotQuery(const IPTree& tree,
                             std::shared_ptr<const ObjectSnapshot> snapshot,
                             const DistanceQueryOptions& options,
                             DistanceCache* cache)
    : snapshot_(std::move(snapshot)),
      knn_(tree, *snapshot_->base, options, cache),
      exact_(tree, options, cache) {
  VIPTREE_CHECK_MSG(snapshot_ != nullptr,
                    "SnapshotQuery over a null ObjectSnapshot");
}

std::vector<ObjectResult> SnapshotQuery::Knn(const IndoorPoint& q, size_t k,
                                             SearchStats* stats) const {
  SearchStats local;
  KnnQuery::Filters filters;
  const ObjectSnapshot* snap = snapshot_.get();
  filters.object = [snap](ObjectId o) { return !snap->Diverged(o); };
  std::vector<ObjectResult> base = knn_.KnnFiltered(q, k, filters, &local);
  std::vector<ObjectResult> out = MergeOverlay(std::move(base), q, k,
                                               kInfDistance, nullptr, &local);
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<ObjectResult> SnapshotQuery::KnnWithAscent(
    const IndoorPoint& q, size_t k, const AscentDistances& ascent,
    SearchStats* stats) const {
  SearchStats local;
  KnnQuery::Filters filters;
  const ObjectSnapshot* snap = snapshot_.get();
  filters.object = [snap](ObjectId o) { return !snap->Diverged(o); };
  std::vector<ObjectResult> base =
      knn_.KnnFilteredWithAscent(q, k, filters, ascent, &local);
  std::vector<ObjectResult> out = MergeOverlay(std::move(base), q, k,
                                               kInfDistance, nullptr, &local);
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<ObjectResult> SnapshotQuery::Range(const IndoorPoint& q,
                                               double radius,
                                               SearchStats* stats) const {
  SearchStats local;
  KnnQuery::Filters filters;
  const ObjectSnapshot* snap = snapshot_.get();
  filters.object = [snap](ObjectId o) { return !snap->Diverged(o); };
  std::vector<ObjectResult> base =
      knn_.RangeFiltered(q, radius, filters, &local);
  std::vector<ObjectResult> out =
      MergeOverlay(std::move(base), q, std::numeric_limits<size_t>::max(),
                   radius, nullptr, &local);
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<ObjectResult> SnapshotQuery::BooleanKnn(
    const IndoorPoint& q, size_t k, const std::vector<std::string>& query,
    SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  if (snapshot_->keywords == nullptr) return {};
  SearchStats local;
  std::vector<ObjectResult> base;
  const std::optional<std::vector<KeywordIndex::KeywordId>> wanted =
      snapshot_->keywords->ResolveKeywords(query);
  // A keyword missing from the base dictionary matches no *base* object,
  // but overlay adds may have introduced it — so the overlay is still
  // string-matched below.
  if (wanted.has_value()) {
    const KeywordIndex& kw = *snapshot_->keywords;
    const ObjectSnapshot* snap = snapshot_.get();
    KnnQuery::Filters filters;
    filters.node = [&kw, &wanted](NodeId n) {
      return kw.NodeHasAll(n, *wanted);
    };
    filters.object = [&kw, &wanted, snap](ObjectId o) {
      return !snap->Diverged(o) && kw.ObjectHasAll(o, *wanted);
    };
    base = knn_.KnnFiltered(q, k, filters, &local);
  }
  std::vector<ObjectResult> out =
      MergeOverlay(std::move(base), q, k, kInfDistance, &query, &local);
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<ObjectResult> SnapshotQuery::MergeOverlay(
    std::vector<ObjectResult> base_results, const IndoorPoint& q, size_t k,
    double radius, const std::vector<std::string>* required_keywords,
    SearchStats* stats) const {
  std::vector<ObjectResult> hot;
  for (const ObjectSnapshot::OverlayEntry& entry : snapshot_->overlay) {
    if (required_keywords != nullptr &&
        !HasAllStrings(entry.keywords, *required_keywords)) {
      continue;
    }
    ++stats->objects_considered;
    const double distance = exact_.Distance(q, entry.point);
    if (distance > radius) continue;
    hot.push_back({entry.id, distance});
  }
  if (hot.empty()) {
    if (base_results.size() > k) base_results.resize(k);
    return base_results;
  }
  base_results.insert(base_results.end(), hot.begin(), hot.end());
  std::sort(base_results.begin(), base_results.end(), ResultLess);
  if (base_results.size() > k) base_results.resize(k);
  return base_results;
}

}  // namespace viptree
