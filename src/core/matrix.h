// Dense row-major matrix used for the distance / next-hop matrices of tree
// nodes (§2.1.1). The payload lives in a Storage<T>: owning when the matrix
// was computed in-process, a view into an immutable arena when it was
// memory-mapped from a snapshot (common/storage.h); mutation through at()
// is only legal on owning matrices (index construction).

#ifndef VIPTREE_CORE_MATRIX_H_
#define VIPTREE_CORE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/span.h"
#include "common/storage.h"

namespace viptree {

template <typename T>
class FlatMatrix {
 public:
  FlatMatrix() = default;
  FlatMatrix(size_t rows, size_t cols, T fill = T())
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Adopts an already-filled row-major payload: an owning vector (copying
  // snapshot deserialization) or any Storage, including an arena view
  // (zero-copy snapshot load).
  FlatMatrix(size_t rows, size_t cols, std::vector<T> data)
      : FlatMatrix(rows, cols, Storage<T>(std::move(data))) {}
  FlatMatrix(size_t rows, size_t cols, Storage<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    VIPTREE_CHECK(data_.size() == rows_ * cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  // Owning matrices only (index construction).
  T& at(size_t r, size_t c) {
    VIPTREE_DCHECK(r < rows_ && c < cols_);
    return data_.mutable_data()[r * cols_ + c];
  }
  const T& at(size_t r, size_t c) const {
    VIPTREE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  // One row as a contiguous span — the unit the SIMD kernels consume.
  // Replaces ad-hoc `&at(r, 0)` pointer arithmetic at query call sites.
  Span<const T> row(size_t r) const {
    VIPTREE_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  // The row-major payload, for serialization.
  Span<const T> raw() const { return data_.span(); }

  uint64_t MemoryBytes() const { return data_.MemoryBytes(); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Storage<T> data_;
};

}  // namespace viptree

#endif  // VIPTREE_CORE_MATRIX_H_
