#include "core/knn_query.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/kernels.h"
#include "common/span.h"

namespace viptree {

KnnQuery::KnnQuery(const IPTree& tree, const ObjectIndex& objects,
                   const DistanceQueryOptions& options, DistanceCache* cache)
    : tree_(tree),
      objects_(objects),
      query_(tree, options, cache),
      local_dijkstra_(tree.graph()) {}

std::vector<ObjectResult> KnnQuery::Knn(const IndoorPoint& q, size_t k,
                                        SearchStats* stats) const {
  return Search(q, k, kInfDistance, nullptr, stats);
}

AscentDistances KnnQuery::ComputeAscent(const IndoorPoint& q) const {
  return query_.GetDistances(QuerySource::Point(q), tree_.root());
}

std::vector<ObjectResult> KnnQuery::WithinRange(const IndoorPoint& q,
                                                double radius,
                                                SearchStats* stats) const {
  return Search(q, std::numeric_limits<size_t>::max(), radius, nullptr,
                stats);
}

void KnnQuery::LocalObjectDistances(const IndoorPoint& q, NodeId leaf,
                                    std::vector<double>& out) const {
  const Venue& venue = tree_.venue();
  const Span<const ObjectId> objs = objects_.ObjectsInLeaf(leaf);
  out.assign(objs.size(), kInfDistance);
  // One multi-source Dijkstra from q covers every object of the leaf; the
  // search runs on the full D2D graph so routes leaving the leaf are exact.
  local_sources_.clear();
  for (DoorId u : venue.DoorsOf(q.partition)) {
    local_sources_.push_back({u, venue.DistanceToDoor(q, u)});
  }
  DijkstraEngine& engine = local_dijkstra_;
  engine.Start(local_sources_);
  local_targets_.clear();
  for (ObjectId o : objs) {
    for (DoorId d : venue.DoorsOf(objects_.object(o).partition)) {
      local_targets_.push_back(d);
    }
  }
  std::sort(local_targets_.begin(), local_targets_.end());
  local_targets_.erase(
      std::unique(local_targets_.begin(), local_targets_.end()),
      local_targets_.end());
  engine.RunToTargets(local_targets_);
  for (size_t i = 0; i < objs.size(); ++i) {
    const IndoorPoint& obj = objects_.object(objs[i]);
    if (obj.partition == q.partition) {
      out[i] = venue.IntraPartitionDistance(q.partition, q.position,
                                            obj.position);
    }
    for (DoorId d : venue.DoorsOf(obj.partition)) {
      if (!engine.Settled(d)) continue;
      out[i] = std::min(out[i],
                        engine.DistanceTo(d) + venue.DistanceToDoor(obj, d));
    }
  }
}

std::vector<ObjectResult> KnnQuery::Search(
    const IndoorPoint& q, size_t k, double radius, const Filters* filters,
    SearchStats* stats, const AscentDistances* precomputed) const {
  if (stats != nullptr) *stats = SearchStats{};
  std::vector<ObjectResult> results;
  if (objects_.NumObjects() == 0 || k == 0) return results;
  auto node_allowed = [filters](NodeId n) {
    return filters == nullptr || !filters->node || filters->node(n);
  };
  auto object_allowed = [filters](ObjectId o) {
    return filters == nullptr || !filters->object || filters->object(o);
  };

  // Line 2 of Algorithm 5: distances from q to the access doors of every
  // ancestor of Leaf(q) — or the caller's precomputed copy of exactly
  // that (ComputeAscent), shared across a coalesced group.
  AscentDistances computed;
  if (precomputed == nullptr) {
    computed = query_.GetDistances(QuerySource::Point(q), tree_.root());
  }
  const AscentDistances& ascent =
      precomputed != nullptr ? *precomputed : computed;
  std::unordered_map<NodeId, std::vector<double>> ad_dist;
  std::unordered_map<NodeId, int> chain_pos;  // nodes containing q
  for (size_t i = 0; i < ascent.chain.size(); ++i) {
    ad_dist[ascent.chain[i]] = ascent.ad_dist[i];
    chain_pos[ascent.chain[i]] = static_cast<int>(i);
  }
  const NodeId q_leaf = ascent.chain[0];

  // Range mode (k unbounded): every in-radius object is reported, so the
  // kth-NN heap can never prune — collect into a flat vector and sort
  // once at the end instead of paying O(log n) per insert.
  const bool collect_all = k == std::numeric_limits<size_t>::max();

  // Results as a max-heap so dk (distance to the current kth NN) is O(1).
  auto worse = [](const ObjectResult& a, const ObjectResult& b) {
    return a.distance < b.distance;
  };
  std::priority_queue<ObjectResult, std::vector<ObjectResult>,
                      decltype(worse)>
      best(worse);
  auto dk = [&]() {
    if (radius != kInfDistance) {
      return best.size() >= k ? std::min(radius, best.top().distance) : radius;
    }
    return best.size() >= k ? best.top().distance : kInfDistance;
  };
  auto offer = [&](ObjectId o, double dist) {
    if (stats != nullptr) ++stats->objects_considered;
    if (dist > radius) return;
    if (!object_allowed(o)) return;
    if (collect_all) {
      results.push_back({o, dist});
    } else if (best.size() < k) {
      best.push({o, dist});
    } else if (dist < best.top().distance) {
      best.pop();
      best.push({o, dist});
    }
  };

  // Distance from q to each access door of `n`, deriving missing vectors
  // from the parent (Lemma 9) or the sibling on q's chain (Lemma 8).
  auto ensure_ad_dist =
      [&](NodeId n) -> const std::vector<double>& {
    const auto it = ad_dist.find(n);
    if (it != ad_dist.end()) return it->second;
    const TreeNode& node = tree_.node(n);
    const NodeId parent = node.parent;
    VIPTREE_DCHECK(parent != kInvalidId);
    const TreeNode& pnode = tree_.node(parent);

    const std::vector<double>* source_dist = nullptr;
    const TreeNode* source_node = nullptr;
    NodeId source_id = kInvalidId;
    const auto chain_it = chain_pos.find(parent);
    if (chain_it != chain_pos.end() && chain_it->second > 0) {
      // Parent contains q: use the sibling on q's chain (Lemma 8).
      const NodeId sibling = ascent.chain[chain_it->second - 1];
      source_dist = &ad_dist.at(sibling);
      source_node = &tree_.node(sibling);
      source_id = sibling;
    } else {
      // Parent does not contain q: use the parent itself (Lemma 9).
      source_dist = &ad_dist.at(parent);
      source_node = &pnode;
      source_id = parent;
    }
    // Row/col positions in the parent matrix, resolved once per node (and
    // memoized across queries when a cache is attached) instead of one
    // binary search per matrix cell.
    query_.AccessDoorIndexMap(parent, n, bound_cols_);
    query_.AccessDoorIndexMap(parent, source_id, bound_rows_);
    const size_t nc = node.access_doors.size();
    const size_t nb = source_node->access_doors.size();
    std::vector<double> dist(nc, kInfDistance);
    // Row-outer kernel form: one gather per source door over its parent-
    // matrix row (common/kernels.h); same candidate per output as the
    // historical column-outer loop, folded in the same b order.
    for (size_t b = 0; b < nb; ++b) {
      const double add = (*source_dist)[b];
      if (add == kInfDistance) continue;  // inf + cell never improves
      if (b + 1 < nb) {
        kernels::PrefetchRead(
            pnode.dist.row(static_cast<size_t>(bound_rows_[b + 1])).data());
      }
      kernels::MinPlusGatherF32(
          dist.data(),
          pnode.dist.row(static_cast<size_t>(bound_rows_[b])).data(),
          bound_cols_.data(), add, nc);
    }
    return ad_dist.emplace(n, std::move(dist)).first->second;
  };

  auto mindist = [&](NodeId n) {
    if (chain_pos.count(n) > 0) return 0.0;  // node contains q
    const std::vector<double>& d = ensure_ad_dist(n);
    return kernels::RowMin(d.data(), d.size());
  };

  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  heap.emplace(0.0, tree_.root());

  // Per-leaf scratch (best distance per object, in-radius indices), reused
  // across leaf scans so the hot loop below stays allocation-free.
  std::vector<double> leaf_best;
  std::vector<int32_t> in_radius;

  while (!heap.empty()) {
    const auto [bound, n] = heap.top();
    heap.pop();
    if (bound > dk()) break;  // line 6-7 of Algorithm 5
    const TreeNode& node = tree_.node(n);
    if (stats != nullptr) {
      ++stats->nodes_visited;
      if (node.is_leaf()) ++stats->leaves_scanned;
    }
    if (!node.is_leaf()) {
      // Pull the child nodes (and their subtree counts) toward the cache
      // before the mindist bound derivations walk them.
      for (NodeId child : node.children) {
        kernels::PrefetchRead(&tree_.node(child));
      }
      for (NodeId child : node.children) {
        if (objects_.SubtreeCount(tree_.node(child)) == 0) continue;
        if (!node_allowed(child)) continue;
        heap.emplace(mindist(child), child);
      }
      continue;
    }
    // Leaf: exact object distances.
    const Span<const ObjectId> objs = objects_.ObjectsInLeaf(n);
    if (objs.empty()) continue;
    if (n == q_leaf) {
      std::vector<double> dists;
      LocalObjectDistances(q, n, dists);
      for (size_t i = 0; i < objs.size(); ++i) offer(objs[i], dists[i]);
      continue;
    }
    // One contiguous distance row per access door (see ObjectIndex layout):
    // column-outer order keeps the kernel scanning sequential rows.
    const std::vector<double>& q_to_ad = ensure_ad_dist(n);
    leaf_best.assign(objs.size(), kInfDistance);
    for (size_t col = 0; col < node.access_doors.size(); ++col) {
      const double q_to_door = q_to_ad[col];
      if (q_to_door == kInfDistance) continue;  // inf row never improves
      if (col + 1 < node.access_doors.size()) {
        kernels::PrefetchRead(objects_.DoorDistances(n, col + 1).data());
      }
      kernels::MinPlusRow(leaf_best.data(),
                          objects_.DoorDistances(n, col).data(), q_to_door,
                          objs.size());
    }
    if (collect_all) {
      // Range mode: batch-filter the leaf against the radius instead of
      // offering objects one by one.
      if (stats != nullptr) stats->objects_considered += objs.size();
      in_radius.resize(objs.size());
      const size_t hits = kernels::FilterLeq(leaf_best.data(), objs.size(),
                                             radius, in_radius.data());
      for (size_t h = 0; h < hits; ++h) {
        const size_t i = static_cast<size_t>(in_radius[h]);
        if (!object_allowed(objs[i])) continue;
        results.push_back({objs[i], leaf_best[i]});
      }
      continue;
    }
    for (size_t i = 0; i < objs.size(); ++i) offer(objs[i], leaf_best[i]);
  }

  if (collect_all) {
    std::sort(results.begin(), results.end(),
              [](const ObjectResult& a, const ObjectResult& b) {
                return a.distance != b.distance ? a.distance < b.distance
                                                : a.object < b.object;
              });
    return results;
  }
  results.reserve(best.size());
  while (!best.empty()) {
    results.push_back(best.top());
    best.pop();
  }
  std::reverse(results.begin(), results.end());
  return results;
}

}  // namespace viptree
