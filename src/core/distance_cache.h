// Cross-request distance cache (ROADMAP item 3): memoizes the door-to-door
// legs the VIP-/IP-Tree distance path recomputes for every request from the
// same zones. Exact by construction — the D2D graph and every tree matrix
// are immutable after load (only *objects* move, through LiveObjectIndex),
// so a cached leg can never go stale; and every cached value is the bitwise
// result of the one deterministic computation it replaces (a memo, never a
// recomposition), so cache-on and cache-off answers are bit-identical.
//
// Entry kinds (all keyed on small dense ids, never on continuous points):
//
//   kIpDoorPair / kVipDoorPair  (door, door) -> distance
//       the full result of IPDistanceQuery::DoorDistance /
//       VIPDistanceQuery::DoorDistance. Two kinds on purpose: the IP
//       (iterative ascent) and VIP (materialized lookup) variants may
//       differ in the last ulp, and a shared entry would leak one
//       variant's rounding into the other.
//   kIpDoorAscent  (door, node) -> access-door distance vector
//       dist(door -> every access door of `node`), the Algorithm 2 ascent
//       vector of a door source (IP variant only; the VIP variant reads
//       these in O(1) from the extended matrices already).
//   kIndexMap      (node n, node m) -> index vector
//       position of each access door of `m` in `n`'s matrix_doors — the
//       rho^2 log rho binary searches of every LCA join and of the kNN
//       Lemma 8/9 derivation. Integer-valued, so trivially exact; this is
//       the kind that also accelerates *point* queries, whose continuous
//       coordinates cannot key a cache.
//
// Sharded and thread-safe: a key hashes to one of `shards` independent
// (mutex, hash map, eviction state, counters) quadruples, so concurrent
// workers sharing one cache per venue contend only per shard. Eviction is
// pluggable behind one interface — LRU, full 2Q (FIFO A1in + ghost A1out +
// LRU Am, after Johnson & Shasha) and simplified 2Q (S2Q: no ghost queue,
// promote on re-reference), mirroring the read-buffer policy catalogue of
// FESTIval's eFIND. Capacity counts entries, split evenly across shards.
//
// One cache must serve exactly one venue: keys are venue-local dense ids,
// so sharing a cache across venues would alias unrelated doors.

#ifndef VIPTREE_CORE_DISTANCE_CACHE_H_
#define VIPTREE_CORE_DISTANCE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "model/types.h"

namespace viptree {

enum class CachePolicy : uint8_t {
  kLru,  // single recency list
  k2Q,   // FIFO A1in + ghost A1out + LRU Am (full 2Q)
  kS2Q,  // FIFO A1 + LRU Am, promote on re-reference (simplified 2Q)
};

const char* CachePolicyName(CachePolicy policy);
// "lru" | "2q" | "s2q" (case-sensitive); false on anything else.
bool ParseCachePolicy(const std::string& name, CachePolicy* out);

struct DistanceCacheOptions {
  // Owning layers (EngineOptions / ServiceOptions) create a cache only
  // when set; a constructed DistanceCache itself is always active.
  bool enabled = false;
  // Total entries across all shards (>= 1 per shard is enforced). 0 is
  // the *auto* sentinel: layers that know the venue (VenueBundle,
  // QueryEngine, Service) resolve it to AdaptiveCacheCapacity(venue door
  // count) before constructing the cache; a DistanceCache built directly
  // with 0 falls back to the historical fixed default (1 << 16).
  size_t capacity = 0;
  // Rounded up to a power of two, clamped to [1, 256].
  size_t shards = 8;
  CachePolicy policy = CachePolicy::kLru;
};

// Capacity for the auto sentinel: ~16 entries per door — enough to hold
// the superior-door pair working set of every zone several times over —
// clamped to [4096, 1M] so toy venues still amortize their shards and
// city-scale venues stay bounded.
size_t AdaptiveCacheCapacity(size_t num_doors);

// What a key memoizes (and which computation wrote it — see file comment).
enum class CacheKind : uint8_t {
  kIpDoorPair = 0,
  kVipDoorPair = 1,
  kIpDoorAscent = 2,
  kIndexMap = 3,
};

class DistanceCache {
 public:
  explicit DistanceCache(const DistanceCacheOptions& options = {});
  ~DistanceCache();

  DistanceCache(const DistanceCache&) = delete;
  DistanceCache& operator=(const DistanceCache&) = delete;

  // Lookups copy the value out under the shard lock (into the caller's
  // reusable scratch for the vector kinds) and count a hit or miss; a miss
  // is expected to be followed by the corresponding Insert. All methods
  // are safe from any number of threads.
  bool LookupScalar(CacheKind kind, int32_t a, int32_t b, double* out);
  void InsertScalar(CacheKind kind, int32_t a, int32_t b, double value);

  bool LookupDistVector(CacheKind kind, int32_t a, int32_t b,
                        std::vector<double>* out);
  void InsertDistVector(CacheKind kind, int32_t a, int32_t b,
                        const std::vector<double>& value);

  bool LookupIndexVector(CacheKind kind, int32_t a, int32_t b,
                         std::vector<int32_t>* out);
  void InsertIndexVector(CacheKind kind, int32_t a, int32_t b,
                         const std::vector<int32_t>& value);

  // Counters summed over shards; monotonic (Clear resets entries, not
  // counters, so long-running stats stay continuous).
  CacheCounters Counters() const;
  // Resident entries, summed over shards.
  size_t Size() const;
  // Drops every resident entry and all eviction history.
  void Clear();

  const DistanceCacheOptions& options() const { return options_; }

  struct Key {
    uint8_t kind = 0;
    int32_t a = 0;
    int32_t b = 0;
    bool operator==(const Key& other) const {
      return kind == other.kind && a == other.a && b == other.b;
    }
  };

  // Per-shard eviction bookkeeping behind one interface; implementations
  // (LRU / 2Q / S2Q) live in the .cc. Called under the shard lock.
  class EvictionState {
   public:
    explicit EvictionState(size_t capacity) : capacity_(capacity) {}
    virtual ~EvictionState() = default;
    // A lookup found `key` resident.
    virtual void OnHit(const Key& key) = 0;
    // `key` was just inserted; append the keys to drop to *evicted (the
    // shard erases them). Never evicts `key` itself (capacity >= 1).
    virtual void OnInsert(const Key& key, std::vector<Key>* evicted) = 0;
    virtual void Clear() = 0;

   protected:
    const size_t capacity_;
  };

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry;
  struct Shard;

  Shard& ShardFor(const Key& key);
  template <typename Copy>
  bool LookupInternal(const Key& key, Copy&& copy);
  template <typename Fill>
  void InsertInternal(const Key& key, Fill&& fill);

  const DistanceCacheOptions options_;
  size_t num_shards_ = 1;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace viptree

#endif  // VIPTREE_CORE_DISTANCE_CACHE_H_
