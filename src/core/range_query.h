// Range queries over indexed indoor objects (§3.4): every object within a
// given indoor network distance of the query point. Thin wrapper over the
// shared branch-and-bound traversal with dk fixed to the radius.

#ifndef VIPTREE_CORE_RANGE_QUERY_H_
#define VIPTREE_CORE_RANGE_QUERY_H_

#include "core/knn_query.h"

namespace viptree {

class RangeQuery {
 public:
  // `cache` as in KnnQuery; nullptr disables memoization.
  RangeQuery(const IPTree& tree, const ObjectIndex& objects,
             const DistanceQueryOptions& options = {},
             DistanceCache* cache = nullptr);

  // Objects with dist(q, o) <= radius, ascending by distance.
  std::vector<ObjectResult> Range(const IndoorPoint& q, double radius,
                                  SearchStats* stats = nullptr) const;

 private:
  KnnQuery knn_;
};

}  // namespace viptree

#endif  // VIPTREE_CORE_RANGE_QUERY_H_
