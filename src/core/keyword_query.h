// Spatial keyword queries — the adaptability claim of §1.3: "the proposed
// indexes can be used to answer spatial keyword queries in indoor space by
// integrating the inverted lists with the nodes of the tree, e.g., in a way
// similar to how R-tree is extended to IR-tree [10]".
//
// KeywordIndex attaches per-node keyword summaries (the union of the
// keywords of the objects in each subtree) to the IP-/VIP-Tree; a boolean
// keyword kNN query then runs the standard best-first search of
// Algorithm 5, pruning subtrees that cannot contain all query keywords.

#ifndef VIPTREE_CORE_KEYWORD_QUERY_H_
#define VIPTREE_CORE_KEYWORD_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/knn_query.h"

namespace viptree {

class KeywordIndex {
 public:
  using KeywordId = int32_t;

  // The complete serializable state: the dictionary in id order plus the
  // per-object and per-node keyword-id lists (each sorted).
  struct Parts {
    std::vector<std::string> keywords_by_id;
    std::vector<std::vector<KeywordId>> object_keywords;
    std::vector<std::vector<KeywordId>> node_keywords;
  };

  // keywords[o] is object o's keyword set; must align with `objects`.
  KeywordIndex(const IPTree& tree, const ObjectIndex& objects,
               const std::vector<std::vector<std::string>>& keywords);

  // Structural check of `parts` against the tree and object index.
  static std::optional<std::string> ValidateParts(const IPTree& tree,
                                                  const ObjectIndex& objects,
                                                  const Parts& parts);

  // Reconstructs the index from deserialized parts (the keyword tables are
  // adopted verbatim; only the string -> id map is rebuilt). Aborts on
  // malformed input (run ValidateParts first for untrusted files).
  static KeywordIndex FromParts(const IPTree& tree,
                                const ObjectIndex& objects, Parts parts);

  // Same, for callers that have *just* run ValidateParts themselves (the
  // snapshot loader): skips the redundant validation pass.
  static KeywordIndex FromValidatedParts(const IPTree& tree,
                                         const ObjectIndex& objects,
                                         Parts parts);

  Parts ToParts() const;

  // The k nearest objects whose keyword sets contain *all* query keywords.
  // Unknown keywords yield an empty result. Uses the index's own KnnQuery
  // engine, so concurrent callers must use the overload below instead.
  std::vector<ObjectResult> BooleanKnn(
      const IndoorPoint& q, size_t k,
      const std::vector<std::string>& query) const;

  // Same query through a caller-supplied KnnQuery engine (one per thread):
  // the keyword tables themselves are immutable after construction, so a
  // shared KeywordIndex is safe as long as each thread brings its own
  // engine.
  std::vector<ObjectResult> BooleanKnn(const IndoorPoint& q, size_t k,
                                       const std::vector<std::string>& query,
                                       const KnnQuery& knn,
                                       SearchStats* stats = nullptr) const;

  size_t NumDistinctKeywords() const { return keyword_ids_.size(); }

  // Maps query strings to sorted, deduplicated keyword ids; nullopt when
  // any string is not in the dictionary (no indexed object can match).
  // Exposed so external readers (the live-object snapshot query) can
  // compose the same filters BooleanKnn uses.
  std::optional<std::vector<KeywordId>> ResolveKeywords(
      const std::vector<std::string>& query) const;

  // The containment predicates behind BooleanKnn's pruning, on resolved
  // ids: does node n's subtree summary / object o's keyword set contain
  // every wanted id?
  bool NodeHasAll(NodeId n, const std::vector<KeywordId>& wanted) const;
  bool ObjectHasAll(ObjectId o, const std::vector<KeywordId>& wanted) const;

  uint64_t MemoryBytes() const;

 private:
  struct FromPartsTag {};
  KeywordIndex(FromPartsTag, const IPTree& tree, const ObjectIndex& objects,
               Parts parts);

  const IPTree& tree_;
  const ObjectIndex& objects_;
  KnnQuery knn_;
  std::unordered_map<std::string, KeywordId> keyword_ids_;
  std::vector<std::vector<KeywordId>> object_keywords_;  // sorted per object
  std::vector<std::vector<KeywordId>> node_keywords_;    // sorted per node
};

}  // namespace viptree

#endif  // VIPTREE_CORE_KEYWORD_QUERY_H_
