#include "core/ip_tree.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/tree_builder.h"
#include "common/span.h"

namespace viptree {

IPTree IPTree::Build(const Venue& venue, const D2DGraph& graph,
                     const IPTreeOptions& options) {
  return TreeBuilder(venue, graph, options).BuildIPTree();
}

namespace {

// Structural check of one node's door lists and matrix shapes; `full` adds
// the per-cell matrix sweep (see IPTree::ValidationLevel).
std::optional<std::string> ValidateNode(const TreeNode& node,
                                        size_t num_nodes, size_t num_doors,
                                        size_t num_partitions,
                                        size_t num_leaves, bool full) {
  const std::string where = "tree node " + std::to_string(node.id);
  auto door_in_range = [num_doors](DoorId d) {
    return d >= 0 && static_cast<size_t>(d) < num_doors;
  };
  if (node.parent != kInvalidId &&
      (node.parent < 0 || static_cast<size_t>(node.parent) >= num_nodes)) {
    return where + " has out-of-range parent";
  }
  for (NodeId c : node.children) {
    if (c < 0 || static_cast<size_t>(c) >= num_nodes) {
      return where + " has out-of-range child";
    }
  }
  for (PartitionId p : node.partitions) {
    if (p < 0 || static_cast<size_t>(p) >= num_partitions) {
      return where + " has out-of-range partition";
    }
  }
  for (DoorId d : node.doors) {
    if (!door_in_range(d)) return where + " has out-of-range door";
  }
  for (DoorId d : node.access_doors) {
    if (!door_in_range(d)) return where + " has out-of-range access door";
  }
  for (DoorId d : node.matrix_doors) {
    if (!door_in_range(d)) return where + " has out-of-range matrix door";
  }
  if (node.leaf_begin > node.leaf_end ||
      node.leaf_end > static_cast<uint32_t>(num_leaves)) {
    return where + " has an invalid leaf interval";
  }
  const size_t rows =
      node.is_leaf() ? node.doors.size() : node.matrix_doors.size();
  const size_t cols =
      node.is_leaf() ? node.access_doors.size() : node.matrix_doors.size();
  if (node.dist.rows() != rows || node.dist.cols() != cols) {
    return where + " has a distance matrix of the wrong shape";
  }
  if (node.next_hop.rows() != rows || node.next_hop.cols() != cols) {
    return where + " has a next-hop matrix of the wrong shape";
  }
  if (!full) return std::nullopt;
  // Cell values are load-bearing: next-hop entries are used as array
  // indices by path expansion and must name an *intermediate* door
  // (distinct from both endpoints); distances must be finite and
  // non-negative on a connected venue.
  const std::vector<DoorId>& row_doors =
      node.is_leaf() ? node.doors : node.matrix_doors;
  const std::vector<DoorId>& col_doors =
      node.is_leaf() ? node.access_doors : node.matrix_doors;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (!(node.dist.at(r, c) >= 0.0f) ||
          node.dist.at(r, c) == std::numeric_limits<float>::infinity()) {
        return where + " has a negative, NaN or infinite distance";
      }
      const DoorId hop = node.next_hop.at(r, c);
      if (hop == kInvalidId) continue;
      if (hop < 0 || static_cast<size_t>(hop) >= num_doors ||
          hop == row_doors[r] || hop == col_doors[c]) {
        return where + " has an invalid next-hop entry";
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> IPTree::ValidateParts(const Venue& venue,
                                                 const Parts& parts,
                                                 ValidationLevel level) {
  const size_t num_nodes = parts.nodes.size();
  const size_t num_doors = venue.NumDoors();
  const size_t num_partitions = venue.NumPartitions();
  if (num_nodes == 0) return "tree has no nodes";
  if (parts.root < 0 || static_cast<size_t>(parts.root) >= num_nodes) {
    return "tree root id out of range";
  }
  if (parts.num_leaves == 0 || parts.num_leaves > num_nodes) {
    return "tree leaf count out of range";
  }
  for (size_t i = 0; i < num_nodes; ++i) {
    if (parts.nodes[i].id != static_cast<NodeId>(i)) {
      return "tree node " + std::to_string(i) + " has non-dense id";
    }
    const std::optional<std::string> error = ValidateNode(
        parts.nodes[i], num_nodes, num_doors, num_partitions,
        parts.num_leaves, level == ValidationLevel::kFull);
    if (error.has_value()) return error;
  }
  // Parent links must form a single tree rooted at `root`: exactly one node
  // has no parent, and every parent sits on a strictly higher level — the
  // property that makes ancestor ascents (and Lca) terminate, so a
  // CRC-valid but cyclic snapshot cannot hang the first query.
  for (const TreeNode& node : parts.nodes) {
    if (node.parent == kInvalidId) {
      if (node.id != parts.root) {
        return "tree node " + std::to_string(node.id) +
               " has no parent but is not the root";
      }
    } else if (parts.nodes[node.parent].level <= node.level) {
      return "tree node " + std::to_string(node.id) +
             " has a parent on a non-ascending level";
    }
  }
  if (parts.nodes[parts.root].parent != kInvalidId) {
    return "tree root has a parent";
  }
  if (parts.leaf_of_partition.size() != num_partitions) {
    return "leaf_of_partition has the wrong size";
  }
  for (NodeId leaf : parts.leaf_of_partition) {
    if (leaf < 0 || static_cast<size_t>(leaf) >= num_nodes ||
        !parts.nodes[leaf].is_leaf()) {
      return "leaf_of_partition references a non-leaf node";
    }
  }
  if (parts.door_leaves.size() != num_doors) {
    return "door_leaves has the wrong size";
  }
  for (const auto& entries : parts.door_leaves) {
    // Every door belongs to at least one leaf, and the span logic of
    // LeavesOfDoor assumes entry 0 is the valid one.
    if (entries[0].leaf == kInvalidId) {
      return "door_leaves has a door with no leaf";
    }
    for (const DoorLeafEntry& e : entries) {
      if (e.leaf == kInvalidId) continue;
      if (e.leaf < 0 || static_cast<size_t>(e.leaf) >= num_nodes ||
          !parts.nodes[e.leaf].is_leaf() ||
          e.row >= parts.nodes[e.leaf].doors.size()) {
        return "door_leaves references an invalid leaf row";
      }
    }
  }
  if (parts.is_access_door.size() != num_doors) {
    return "is_access_door has the wrong size";
  }
  if (parts.superior_offsets.size() != num_partitions + 1 ||
      parts.superior_offsets.front() != 0 ||
      parts.superior_offsets.back() != parts.superior_doors.size()) {
    return "superior-door CSR is inconsistent";
  }
  for (size_t p = 0; p < num_partitions; ++p) {
    if (parts.superior_offsets[p] > parts.superior_offsets[p + 1]) {
      return "superior-door offsets are not monotone";
    }
  }
  for (DoorId d : parts.superior_doors) {
    if (d < 0 || static_cast<size_t>(d) >= num_doors) {
      return "superior door id out of range";
    }
  }
  return std::nullopt;
}

IPTree IPTree::FromParts(const Venue& venue, const D2DGraph& graph,
                         Parts parts) {
  const std::optional<std::string> error = ValidateParts(venue, parts);
  VIPTREE_CHECK_MSG(!error.has_value(),
                    error.has_value() ? error->c_str() : "");
  return FromValidatedParts(venue, graph, std::move(parts));
}

IPTree IPTree::FromValidatedParts(const Venue& venue, const D2DGraph& graph,
                                  Parts parts) {
  IPTree tree;
  tree.venue_ = &venue;
  tree.graph_ = &graph;
  tree.nodes_ = std::move(parts.nodes);
  tree.root_ = parts.root;
  tree.num_leaves_ = parts.num_leaves;
  tree.leaf_of_partition_ = std::move(parts.leaf_of_partition);
  tree.door_leaves_ = std::move(parts.door_leaves);
  tree.is_access_door_ = std::move(parts.is_access_door);
  tree.superior_offsets_ = std::move(parts.superior_offsets);
  tree.superior_doors_ = std::move(parts.superior_doors);
  return tree;
}

IPTree::Parts IPTree::ToParts() const {
  Parts parts;
  parts.nodes = nodes_;
  parts.root = root_;
  parts.num_leaves = num_leaves_;
  parts.leaf_of_partition = leaf_of_partition_;
  parts.door_leaves = door_leaves_;
  parts.is_access_door = is_access_door_;
  parts.superior_offsets = superior_offsets_;
  parts.superior_doors = superior_doors_;
  return parts;
}

NodeId IPTree::Lca(NodeId a, NodeId b) const {
  while (a != b) {
    if (nodes_[a].level < nodes_[b].level) {
      a = nodes_[a].parent;
    } else if (nodes_[b].level < nodes_[a].level) {
      b = nodes_[b].parent;
    } else {
      a = nodes_[a].parent;
      b = nodes_[b].parent;
    }
    VIPTREE_DCHECK(a != kInvalidId && b != kInvalidId);
  }
  return a;
}

int IPTree::IndexOf(Span<const DoorId> doors, DoorId d) {
  const auto it = std::lower_bound(doors.begin(), doors.end(), d);
  if (it == doors.end() || *it != d) return -1;
  return static_cast<int>(it - doors.begin());
}

float IPTree::LeafMatrixDist(const TreeNode& leaf, DoorId door,
                             DoorId access_door) const {
  const int r = IndexOf(leaf.doors, door);
  const int c = IndexOf(leaf.access_doors, access_door);
  VIPTREE_DCHECK(r >= 0 && c >= 0);
  return leaf.dist.at(r, c);
}

DoorId IPTree::LeafMatrixNextHop(const TreeNode& leaf, DoorId door,
                                 DoorId access_door) const {
  const int r = IndexOf(leaf.doors, door);
  const int c = IndexOf(leaf.access_doors, access_door);
  VIPTREE_DCHECK(r >= 0 && c >= 0);
  return leaf.next_hop.at(r, c);
}

IPTree::Stats IPTree::ComputeStats() const {
  Stats stats;
  stats.num_nodes = nodes_.size();
  stats.num_leaves = num_leaves_;
  stats.height = height();
  double total_ad = 0.0;
  double total_children = 0.0;
  size_t non_leaf = 0;
  for (const TreeNode& n : nodes_) {
    total_ad += static_cast<double>(n.access_doors.size());
    stats.max_access_doors =
        std::max(stats.max_access_doors, n.access_doors.size());
    if (!n.is_leaf()) {
      ++non_leaf;
      total_children += static_cast<double>(n.children.size());
    }
  }
  stats.avg_access_doors = total_ad / static_cast<double>(nodes_.size());
  stats.avg_children =
      non_leaf == 0 ? 0.0 : total_children / static_cast<double>(non_leaf);

  double total_superior = 0.0;
  for (PartitionId p = 0; p < static_cast<PartitionId>(venue_->NumPartitions());
       ++p) {
    const size_t s = SuperiorDoors(p).size();
    total_superior += static_cast<double>(s);
    stats.max_superior_doors = std::max(stats.max_superior_doors, s);
  }
  stats.avg_superior_doors =
      total_superior / static_cast<double>(venue_->NumPartitions());
  stats.memory_bytes = MemoryBytes();
  return stats;
}

// size()-based (not capacity()-based) throughout: the reported footprint is
// what the index addresses, never transient allocator slack.
uint64_t IPTree::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const TreeNode& n : nodes_) {
    bytes += sizeof(TreeNode);
    bytes += n.children.size() * sizeof(NodeId);
    bytes += n.partitions.size() * sizeof(PartitionId);
    bytes += n.doors.size() * sizeof(DoorId);
    bytes += n.access_doors.size() * sizeof(DoorId);
    bytes += n.matrix_doors.size() * sizeof(DoorId);
    bytes += n.dist.MemoryBytes();
    bytes += n.next_hop.MemoryBytes();
  }
  bytes += leaf_of_partition_.MemoryBytes();
  bytes += door_leaves_.MemoryBytes();
  bytes += is_access_door_.MemoryBytes();
  bytes += superior_offsets_.MemoryBytes();
  bytes += superior_doors_.MemoryBytes();
  return bytes;
}

}  // namespace viptree
