#include "core/ip_tree.h"

#include <algorithm>

#include "common/check.h"
#include "core/tree_builder.h"
#include "common/span.h"

namespace viptree {

IPTree IPTree::Build(const Venue& venue, const D2DGraph& graph,
                     const IPTreeOptions& options) {
  return TreeBuilder(venue, graph, options).BuildIPTree();
}

NodeId IPTree::Lca(NodeId a, NodeId b) const {
  while (a != b) {
    if (nodes_[a].level < nodes_[b].level) {
      a = nodes_[a].parent;
    } else if (nodes_[b].level < nodes_[a].level) {
      b = nodes_[b].parent;
    } else {
      a = nodes_[a].parent;
      b = nodes_[b].parent;
    }
    VIPTREE_DCHECK(a != kInvalidId && b != kInvalidId);
  }
  return a;
}

int IPTree::IndexOf(Span<const DoorId> doors, DoorId d) {
  const auto it = std::lower_bound(doors.begin(), doors.end(), d);
  if (it == doors.end() || *it != d) return -1;
  return static_cast<int>(it - doors.begin());
}

float IPTree::LeafMatrixDist(const TreeNode& leaf, DoorId door,
                             DoorId access_door) const {
  const int r = IndexOf(leaf.doors, door);
  const int c = IndexOf(leaf.access_doors, access_door);
  VIPTREE_DCHECK(r >= 0 && c >= 0);
  return leaf.dist.at(r, c);
}

DoorId IPTree::LeafMatrixNextHop(const TreeNode& leaf, DoorId door,
                                 DoorId access_door) const {
  const int r = IndexOf(leaf.doors, door);
  const int c = IndexOf(leaf.access_doors, access_door);
  VIPTREE_DCHECK(r >= 0 && c >= 0);
  return leaf.next_hop.at(r, c);
}

IPTree::Stats IPTree::ComputeStats() const {
  Stats stats;
  stats.num_nodes = nodes_.size();
  stats.num_leaves = num_leaves_;
  stats.height = height();
  double total_ad = 0.0;
  double total_children = 0.0;
  size_t non_leaf = 0;
  for (const TreeNode& n : nodes_) {
    total_ad += static_cast<double>(n.access_doors.size());
    stats.max_access_doors =
        std::max(stats.max_access_doors, n.access_doors.size());
    if (!n.is_leaf()) {
      ++non_leaf;
      total_children += static_cast<double>(n.children.size());
    }
  }
  stats.avg_access_doors = total_ad / static_cast<double>(nodes_.size());
  stats.avg_children =
      non_leaf == 0 ? 0.0 : total_children / static_cast<double>(non_leaf);

  double total_superior = 0.0;
  for (PartitionId p = 0; p < static_cast<PartitionId>(venue_->NumPartitions());
       ++p) {
    const size_t s = SuperiorDoors(p).size();
    total_superior += static_cast<double>(s);
    stats.max_superior_doors = std::max(stats.max_superior_doors, s);
  }
  stats.avg_superior_doors =
      total_superior / static_cast<double>(venue_->NumPartitions());
  stats.memory_bytes = MemoryBytes();
  return stats;
}

uint64_t IPTree::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const TreeNode& n : nodes_) {
    bytes += sizeof(TreeNode);
    bytes += n.children.capacity() * sizeof(NodeId);
    bytes += n.partitions.capacity() * sizeof(PartitionId);
    bytes += n.doors.capacity() * sizeof(DoorId);
    bytes += n.access_doors.capacity() * sizeof(DoorId);
    bytes += n.matrix_doors.capacity() * sizeof(DoorId);
    bytes += n.dist.MemoryBytes();
    bytes += n.next_hop.MemoryBytes();
  }
  bytes += leaf_of_partition_.capacity() * sizeof(NodeId);
  bytes += door_leaves_.capacity() * sizeof(std::array<DoorLeafEntry, 2>);
  bytes += is_access_door_.capacity();
  bytes += superior_offsets_.capacity() * sizeof(uint32_t);
  bytes += superior_doors_.capacity() * sizeof(DoorId);
  return bytes;
}

}  // namespace viptree
