#include "core/leaf_assembler.h"

#include <algorithm>

#include "common/check.h"

namespace viptree {

namespace {

// Number of doors of partition `p` that lead into the current members of
// leaf `leaf`.
int CommonDoorsWithLeaf(const Venue& venue, PartitionId p, int leaf,
                        const std::vector<int>& assignment) {
  int common = 0;
  for (DoorId d : venue.DoorsOf(p)) {
    const PartitionId q = venue.OtherSide(d, p);
    if (q != kInvalidId && assignment[q] == leaf) ++common;
  }
  return common;
}

}  // namespace

LeafAssignment AssembleLeaves(const Venue& venue) {
  const size_t n = venue.NumPartitions();
  LeafAssignment result;
  result.leaf_of_partition.assign(n, -1);
  std::vector<int>& assignment = result.leaf_of_partition;
  // The level (floor) of the leaf's seed partition, for the same-floor
  // tie-break of rule (i).
  std::vector<int> leaf_level;

  // Step 1: every hallway partition seeds its own leaf (rule ii guarantees
  // hallways end up in distinct leaves).
  for (const Partition& p : venue.partitions()) {
    if (venue.Classify(p.id) == PartitionClass::kHallway) {
      assignment[p.id] = static_cast<int>(leaf_level.size());
      leaf_level.push_back(p.level);
    }
  }

  // Step 2: repeatedly attach unassigned partitions to the adjacent leaf
  // with the greatest number of common doors. Seeding new leaves from the
  // most-doored unassigned partition covers hallway-free regions.
  size_t unassigned = 0;
  for (int a : assignment) {
    if (a < 0) ++unassigned;
  }
  while (unassigned > 0) {
    bool progress = false;
    for (PartitionId p = 0; p < static_cast<PartitionId>(n); ++p) {
      if (assignment[p] >= 0) continue;
      // Find the best adjacent leaf: most common doors; tie -> same floor;
      // tie -> lowest leaf id (deterministic stand-in for "arbitrarily").
      int best_leaf = -1;
      int best_common = 0;
      bool best_same_floor = false;
      const int p_level = venue.partition(p).level;
      for (DoorId d : venue.DoorsOf(p)) {
        const PartitionId q = venue.OtherSide(d, p);
        if (q == kInvalidId || assignment[q] < 0) continue;
        const int leaf = assignment[q];
        if (leaf == best_leaf) continue;
        const int common = CommonDoorsWithLeaf(venue, p, leaf, assignment);
        const bool same_floor = leaf_level[leaf] == p_level;
        const bool better =
            common > best_common ||
            (common == best_common && same_floor && !best_same_floor) ||
            (common == best_common && same_floor == best_same_floor &&
             best_leaf != -1 && leaf < best_leaf);
        if (best_leaf == -1 || better) {
          best_leaf = leaf;
          best_common = common;
          best_same_floor = same_floor;
        }
      }
      if (best_leaf >= 0) {
        assignment[p] = best_leaf;
        --unassigned;
        progress = true;
      }
    }
    if (!progress) {
      // A region with no hallway and no assigned neighbour: seed a new leaf
      // at its partition with the most doors.
      PartitionId seed = kInvalidId;
      size_t seed_doors = 0;
      for (PartitionId p = 0; p < static_cast<PartitionId>(n); ++p) {
        if (assignment[p] >= 0) continue;
        if (seed == kInvalidId || venue.DoorsOf(p).size() > seed_doors) {
          seed = p;
          seed_doors = venue.DoorsOf(p).size();
        }
      }
      VIPTREE_CHECK(seed != kInvalidId);
      assignment[seed] = static_cast<int>(leaf_level.size());
      leaf_level.push_back(venue.partition(seed).level);
      --unassigned;
    }
  }

  result.num_leaves = static_cast<int>(leaf_level.size());
  return result;
}

LeafAssignment ForcedLeaves(const Venue& venue,
                            const std::vector<int>& leaf_of_partition) {
  VIPTREE_CHECK(leaf_of_partition.size() == venue.NumPartitions());
  int max_leaf = -1;
  for (int leaf : leaf_of_partition) {
    VIPTREE_CHECK(leaf >= 0);
    max_leaf = std::max(max_leaf, leaf);
  }
  std::vector<bool> seen(max_leaf + 1, false);
  for (int leaf : leaf_of_partition) seen[leaf] = true;
  for (bool s : seen) VIPTREE_CHECK_MSG(s, "leaf ids must be dense");
  LeafAssignment result;
  result.leaf_of_partition = leaf_of_partition;
  result.num_leaves = max_leaf + 1;
  return result;
}

}  // namespace viptree
