#include "core/distance_query.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/kernels.h"
#include "common/span.h"

namespace viptree {

namespace {

// The child of `ancestor` whose subtree contains `leaf`.
NodeId ChildToward(const IPTree& tree, NodeId ancestor, NodeId leaf) {
  NodeId cur = leaf;
  while (tree.node(cur).parent != ancestor) {
    cur = tree.node(cur).parent;
    VIPTREE_DCHECK(cur != kInvalidId);
  }
  return cur;
}

}  // namespace

IPDistanceQuery::IPDistanceQuery(const IPTree& tree,
                                 const DistanceQueryOptions& options,
                                 DistanceCache* cache)
    : tree_(tree), options_(options), cache_(cache), dijkstra_(tree.graph()) {}

void IPDistanceQuery::AccessDoorIndexMap(NodeId n, NodeId m,
                                         std::vector<int32_t>& out) const {
  if (cache_ != nullptr &&
      cache_->LookupIndexVector(CacheKind::kIndexMap, n, m, &out)) {
    return;
  }
  const TreeNode& nn = tree_.node(n);
  const TreeNode& mn = tree_.node(m);
  out.resize(mn.access_doors.size());
  for (size_t i = 0; i < mn.access_doors.size(); ++i) {
    const int idx = IPTree::IndexOf(nn.matrix_doors, mn.access_doors[i]);
    // An access door of m (a descendant-or-self of n) must appear in n's
    // matrix; -1 here would silently read a wrong matrix row below.
    VIPTREE_DCHECK(idx >= 0);
    out[i] = idx;
  }
  if (cache_ != nullptr) {
    cache_->InsertIndexVector(CacheKind::kIndexMap, n, m, out);
  }
}

void IPDistanceQuery::DoorAscent(DoorId door, NodeId target,
                                 std::vector<double>& out) const {
  if (cache_ != nullptr &&
      cache_->LookupDistVector(CacheKind::kIpDoorAscent, door, target, &out)) {
    return;
  }
  AscentDistances ascent = GetDistances(QuerySource::Door(door), target);
  out = std::move(ascent.ad_dist.back());
  if (cache_ != nullptr) {
    cache_->InsertDistVector(CacheKind::kIpDoorAscent, door, target, out);
  }
}

NodeId IPDistanceQuery::LeafOf(const QuerySource& source) const {
  if (source.point != nullptr) {
    return tree_.LeafOfPartition(source.point->partition);
  }
  return tree_.LeavesOfDoor(source.door)[0].leaf;
}

void IPDistanceQuery::SeedLeaf(const QuerySource& source, const TreeNode& leaf,
                               std::vector<double>& dist,
                               std::vector<PathBack>& back) const {
  const size_t m = leaf.access_doors.size();
  dist.assign(m, kInfDistance);
  back.assign(m, PathBack{});

  if (source.door != kInvalidId) {
    // A door source reads its row of the leaf matrix directly.
    const int row = IPTree::IndexOf(leaf.doors, source.door);
    VIPTREE_DCHECK(row >= 0);
    const Span<const float> door_row = leaf.dist.row(static_cast<size_t>(row));
    for (size_t c = 0; c < m; ++c) {
      dist[c] = door_row[c];
      back[c] = PathBack{kInvalidId, -1};
    }
    return;
  }

  const Venue& venue = tree_.venue();
  const IndoorPoint& s = *source.point;
  const Span<const DoorId> partition_doors = venue.DoorsOf(s.partition);
  const Span<const DoorId> seeds = options_.use_superior_doors
                                            ? tree_.SuperiorDoors(s.partition)
                                            : partition_doors;
  for (size_t c = 0; c < m; ++c) {
    const DoorId a = leaf.access_doors[c];
    // Local access door: reachable directly through the partition (Eq. 1's
    // trivial case).
    if (std::find(partition_doors.begin(), partition_doors.end(), a) !=
        partition_doors.end()) {
      dist[c] = venue.DistanceToDoor(s, a);
      back[c] = PathBack{kInvalidId, -1};
    }
    for (DoorId u : seeds) {
      const double cand =
          venue.DistanceToDoor(s, u) + tree_.LeafMatrixDist(leaf, u, a);
      if (cand < dist[c]) {
        dist[c] = cand;
        back[c] = PathBack{u, -1};
      }
    }
  }
}

AscentDistances IPDistanceQuery::GetDistances(const QuerySource& source,
                                              NodeId target) const {
  AscentDistances out;
  const NodeId leaf_id = LeafOf(source);
  out.chain.push_back(leaf_id);
  out.ad_dist.emplace_back();
  out.back.emplace_back();
  SeedLeaf(source, tree_.node(leaf_id), out.ad_dist[0], out.back[0]);

  NodeId cur = leaf_id;
  while (cur != target) {
    const NodeId parent = tree_.node(cur).parent;
    VIPTREE_CHECK_MSG(parent != kInvalidId,
                      "target must be an ancestor of the source leaf");
    const TreeNode& pnode = tree_.node(parent);
    const TreeNode& cnode = tree_.node(cur);
    const std::vector<double>& cdist = out.ad_dist.back();
    const int child_chain_idx = static_cast<int>(out.chain.size()) - 1;

    const size_t nc = pnode.access_doors.size();
    const size_t nb = cnode.access_doors.size();
    std::vector<double> pdist(nc, kInfDistance);
    std::vector<PathBack> pback(nc);
    // rows: child access doors, cols: parent access doors, both positioned
    // in the parent matrix once per level instead of per cell.
    AccessDoorIndexMap(parent, cur, step_rows_);
    AccessDoorIndexMap(parent, parent, step_cols_);
    // Row-outer kernel form of the min-plus step: one gather per child
    // door over its parent-matrix row, folded into per-column accumulators
    // with the source door recorded on strict improvement. Ascending-b
    // order preserves the historical column-outer loop's first-wins argmin
    // bit-for-bit (common/kernels.h).
    step_dist_.assign(nc, kInfDistance);
    step_src_.assign(nc, -1);
    for (size_t b = 0; b < nb; ++b) {
      if (cdist[b] == kInfDistance) continue;  // inf + cell never improves
      kernels::MinPlusGatherArgF32(
          step_dist_.data(), step_src_.data(), static_cast<int32_t>(b),
          pnode.dist.row(static_cast<size_t>(step_rows_[b])).data(),
          step_cols_.data(), cdist[b], nc);
    }
    for (size_t c = 0; c < nc; ++c) {
      const DoorId a = pnode.access_doors[c];
      // "Marked" doors of Algorithm 2: already computed at the child level.
      const int in_child = IPTree::IndexOf(cnode.access_doors, a);
      if (in_child >= 0) {
        pdist[c] = cdist[in_child];
        pback[c] = out.back.back()[in_child];
        continue;
      }
      pdist[c] = step_dist_[c];
      if (step_src_[c] >= 0) {
        pback[c] = PathBack{cnode.access_doors[step_src_[c]],
                            child_chain_idx};
      }
    }
    out.chain.push_back(parent);
    out.ad_dist.push_back(std::move(pdist));
    out.back.push_back(std::move(pback));
    cur = parent;
  }
  return out;
}

double IPDistanceQuery::LocalDistance(const QuerySource& s,
                                      const IndoorPoint& t) const {
  const Venue& venue = tree_.venue();
  double best = kInfDistance;

  std::vector<DijkstraSource> sources;
  if (s.door != kInvalidId) {
    sources.push_back({s.door, 0.0});
    if (venue.DoorTouches(s.door, t.partition)) {
      best = venue.DistanceToDoor(t, s.door);
    }
  } else {
    if (s.point->partition == t.partition) {
      best = venue.IntraPartitionDistance(t.partition, s.point->position,
                                          t.position);
    }
    for (DoorId u : venue.DoorsOf(s.point->partition)) {
      sources.push_back({u, venue.DistanceToDoor(*s.point, u)});
    }
  }

  const Span<const DoorId> targets = venue.DoorsOf(t.partition);
  dijkstra_.Start(sources);
  dijkstra_.RunToTargets(targets);
  for (DoorId dt : targets) {
    if (!dijkstra_.Settled(dt)) continue;
    best = std::min(best,
                    dijkstra_.DistanceTo(dt) + venue.DistanceToDoor(t, dt));
  }
  return best;
}

void IPDistanceQuery::LocalDistanceMulti(const IndoorPoint& s,
                                         Span<const IndoorPoint> targets,
                                         double* out) const {
  const Venue& venue = tree_.venue();
  // Seed exactly like the point branch of LocalDistance, once.
  std::vector<DijkstraSource> sources;
  for (DoorId u : venue.DoorsOf(s.partition)) {
    sources.push_back({u, venue.DistanceToDoor(s, u)});
  }
  dijkstra_.Start(Span<const DijkstraSource>(sources.data(), sources.size()));
  for (size_t k = 0; k < targets.size(); ++k) {
    const IndoorPoint& t = targets[k];
    double best = kInfDistance;
    if (s.partition == t.partition) {
      best = venue.IntraPartitionDistance(t.partition, s.position, t.position);
    }
    // Resume the shared search: each call extends the same deterministic
    // pop sequence, so DistanceTo(dt) matches what a fresh run stopped at
    // this target set would report, bit for bit. A door every per-query
    // run would settle (reachable) is settled here too; an unreachable
    // one is settled in neither.
    const Span<const DoorId> target_doors = venue.DoorsOf(t.partition);
    dijkstra_.RunToTargets(target_doors);
    for (DoorId dt : target_doors) {
      if (!dijkstra_.Settled(dt)) continue;
      best = std::min(best,
                      dijkstra_.DistanceTo(dt) + venue.DistanceToDoor(t, dt));
    }
    out[k] = best;
  }
}

double IPDistanceQuery::Distance(const IndoorPoint& s,
                                 const IndoorPoint& t) const {
  const NodeId ls = tree_.LeafOfPartition(s.partition);
  const NodeId lt = tree_.LeafOfPartition(t.partition);
  if (ls == lt) return LocalDistance(QuerySource::Point(s), t);

  const NodeId lca = tree_.Lca(ls, lt);
  const NodeId ns = ChildToward(tree_, lca, ls);
  const NodeId nt = ChildToward(tree_, lca, lt);
  const AscentDistances as = GetDistances(QuerySource::Point(s), ns);
  const AscentDistances at = GetDistances(QuerySource::Point(t), nt);

  const TreeNode& lca_node = tree_.node(lca);
  const TreeNode& ns_node = tree_.node(ns);
  const TreeNode& nt_node = tree_.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  // One kernel join per source door: min over j of
  // (s[i] + lca_cell) + t[j], keeping the historical association.
  const std::vector<double>& sd = as.ad_dist.back();
  const std::vector<double>& td = at.ad_dist.back();
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (sd[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        sd[i], lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), td.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

double IPDistanceQuery::DistanceWithAscent(const IndoorPoint& s,
                                           const AscentDistances& ascent,
                                           const IndoorPoint& t) const {
  const NodeId ls = tree_.LeafOfPartition(s.partition);
  VIPTREE_DCHECK(!ascent.chain.empty() && ascent.chain[0] == ls);
  const NodeId lt = tree_.LeafOfPartition(t.partition);
  if (ls == lt) return LocalDistance(QuerySource::Point(s), t);

  const NodeId lca = tree_.Lca(ls, lt);
  const NodeId ns = ChildToward(tree_, lca, ls);
  const NodeId nt = ChildToward(tree_, lca, lt);
  // The ascent's row for ns is the iteration prefix GetDistances(s, ns)
  // would have produced, so reading it here is bit-identical to Distance.
  size_t pos = 0;
  while (pos < ascent.chain.size() && ascent.chain[pos] != ns) ++pos;
  VIPTREE_CHECK_MSG(pos < ascent.chain.size(),
                    "precomputed ascent does not cover the LCA join child");
  const std::vector<double>& sd = ascent.ad_dist[pos];
  const AscentDistances at = GetDistances(QuerySource::Point(t), nt);
  const std::vector<double>& td = at.ad_dist.back();

  const TreeNode& lca_node = tree_.node(lca);
  const TreeNode& ns_node = tree_.node(ns);
  const TreeNode& nt_node = tree_.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (sd[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        sd[i], lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), td.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

double IPDistanceQuery::DoorDistance(DoorId s, DoorId t) const {
  if (s == t) return 0.0;
  // The (s, t) key is kept ordered: the join sums associate differently for
  // (t, s), so a symmetry-normalized key could differ from the direct
  // computation in the last ulp and break cache-on/off bit-identity.
  if (cache_ != nullptr) {
    double cached;
    if (cache_->LookupScalar(CacheKind::kIpDoorPair, s, t, &cached)) {
      return cached;
    }
  }
  const double d = DoorDistanceUncached(s, t);
  if (cache_ != nullptr) {
    cache_->InsertScalar(CacheKind::kIpDoorPair, s, t, d);
  }
  return d;
}

double IPDistanceQuery::DoorDistanceUncached(DoorId s, DoorId t) const {
  const auto s_leaves = tree_.LeavesOfDoor(s);
  const auto t_leaves = tree_.LeavesOfDoor(t);
  for (const auto& sl : s_leaves) {
    for (const auto& tl : t_leaves) {
      if (sl.leaf == tl.leaf) {
        // Same leaf: Dijkstra on the D2D graph (§3.1.1).
        dijkstra_.Start(s);
        dijkstra_.RunToTargets(Span<const DoorId>(&t, 1));
        return dijkstra_.DistanceTo(t);
      }
    }
  }
  const NodeId ls = s_leaves[0].leaf;
  const NodeId lt = t_leaves[0].leaf;
  const NodeId lca = tree_.Lca(ls, lt);
  const NodeId ns = ChildToward(tree_, lca, ls);
  const NodeId nt = ChildToward(tree_, lca, lt);
  DoorAscent(s, ns, s_ascent_);
  DoorAscent(t, nt, t_ascent_);
  const TreeNode& lca_node = tree_.node(lca);
  const TreeNode& ns_node = tree_.node(ns);
  const TreeNode& nt_node = tree_.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (s_ascent_[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        s_ascent_[i],
        lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), t_ascent_.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

// ---------------------------------------------------------------------------
// VIP variant
// ---------------------------------------------------------------------------

VIPDistanceQuery::VIPDistanceQuery(const VIPTree& tree,
                                   const DistanceQueryOptions& options,
                                   DistanceCache* cache)
    : vip_(tree),
      options_(options),
      cache_(cache),
      ip_(tree.base(), options, cache) {}

void VIPDistanceQuery::DistancesToNodeAd(const QuerySource& source,
                                         NodeId node,
                                         std::vector<double>& dist,
                                         std::vector<PathBack>& back) const {
  const IPTree& tree = vip_.base();
  const TreeNode& n = tree.node(node);
  const size_t m = n.access_doors.size();
  dist.assign(m, kInfDistance);
  back.assign(m, PathBack{});

  if (source.door != kInvalidId) {
    for (size_t c = 0; c < m; ++c) {
      dist[c] = vip_.ExtDist(node, source.door, c);
      back[c] = PathBack{kInvalidId, -1};
    }
    return;
  }

  const Venue& venue = tree.venue();
  const IndoorPoint& s = *source.point;
  const Span<const DoorId> partition_doors = venue.DoorsOf(s.partition);
  const Span<const DoorId> seeds = options_.use_superior_doors
                                            ? tree.SuperiorDoors(s.partition)
                                            : partition_doors;
  for (size_t c = 0; c < m; ++c) {
    const DoorId a = n.access_doors[c];
    if (std::find(partition_doors.begin(), partition_doors.end(), a) !=
        partition_doors.end()) {
      dist[c] = venue.DistanceToDoor(s, a);
      back[c] = PathBack{kInvalidId, -1};
    }
    for (DoorId u : seeds) {
      const double cand = venue.DistanceToDoor(s, u) + vip_.ExtDist(node, u, c);
      if (cand < dist[c]) {
        dist[c] = cand;
        back[c] = PathBack{u, -1};
      }
    }
  }
}

void VIPDistanceQuery::DistancesToNodeAdMulti(Span<const IndoorPoint> points,
                                              NodeId node,
                                              std::vector<double>& dist) const {
  const IPTree& tree = vip_.base();
  const TreeNode& n = tree.node(node);
  const size_t m = n.access_doors.size();
  const size_t np = points.size();
  dist.assign(np * m, kInfDistance);
  if (np == 0) return;

  const Venue& venue = tree.venue();
  const PartitionId partition = points[0].partition;
  const Span<const DoorId> partition_doors = venue.DoorsOf(partition);
  const Span<const DoorId> seeds = options_.use_superior_doors
                                            ? tree.SuperiorDoors(partition)
                                            : partition_doors;
  // Local access doors first: the single-point descent assigns the direct
  // leg before any seed-door candidate competes.
  for (size_t c = 0; c < m; ++c) {
    const DoorId a = n.access_doors[c];
    if (std::find(partition_doors.begin(), partition_doors.end(), a) ==
        partition_doors.end()) {
      continue;
    }
    for (size_t k = 0; k < np; ++k) {
      VIPTREE_DCHECK(points[k].partition == partition);
      dist[k * m + c] = venue.DistanceToDoor(points[k], a);
    }
  }
  // Seed-door loop hoisted outermost: one extended-matrix row feeds every
  // point's accumulator row. Per (point, column) the candidate sequence —
  // direct leg, then the seed doors in order, strict-< — matches the
  // sequential loop, so every row is bit-identical to DistancesToNodeAd.
  multi_adds_.resize(np);
  for (DoorId u : seeds) {
    const int row = vip_.ExtRowOf(node, u);
    VIPTREE_DCHECK(row >= 0);
    for (size_t k = 0; k < np; ++k) {
      multi_adds_[k] = venue.DistanceToDoor(points[k], u);
    }
    kernels::MinPlusRowMulti(dist.data(), vip_.ExtDistRow(node, row).data(),
                             multi_adds_.data(), np, m);
  }
}

void VIPDistanceQuery::DistanceViaLcaMulti(const double* sdist, NodeId lca,
                                           NodeId ns, NodeId nt,
                                           Span<const IndoorPoint> targets,
                                           double* out) const {
  const IPTree& tree = vip_.base();
  const TreeNode& lca_node = tree.node(lca);
  const TreeNode& ns_node = tree.node(ns);
  const TreeNode& nt_node = tree.node(nt);
  const size_t ni = ns_node.access_doors.size();
  const size_t nj = nt_node.access_doors.size();
  const size_t num_targets = targets.size();
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);

  // Source-side fold: joined_[j] = min over finite i of sdist[i] +
  // lca_cell(i, j), keeping the sequential join's sum association with the
  // target addend deferred. min commutes with the monotone x -> x + td[j],
  // so folding before the target add is bit-identical to the per-query
  // join (common/kernels.h, JoinMinRowsMulti).
  joined_.assign(nj, kInfDistance);
  for (size_t i = 0; i < ni; ++i) {
    if (sdist[i] == kInfDistance) continue;
    kernels::MinPlusGatherF32(
        joined_.data(),
        lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), sdist[i], nj);
  }

  // Per-target descents, stacked row-major for one batched reduce.
  stacked_tdist_.assign(num_targets * nj, kInfDistance);
  for (size_t k = 0; k < num_targets; ++k) {
    DistancesToNodeAd(QuerySource::Point(targets[k]), nt, tdist_, tback_);
    std::copy(tdist_.begin(), tdist_.end(),
              stacked_tdist_.begin() + static_cast<ptrdiff_t>(k * nj));
  }
  for (size_t k = 0; k < num_targets; ++k) out[k] = kInfDistance;
  kernels::JoinMinRowsMulti(joined_.data(), stacked_tdist_.data(), num_targets,
                            nj, out);
}

void VIPDistanceQuery::DistanceMulti(Span<const IndoorPoint> sources,
                                     Span<const IndoorPoint> targets,
                                     double* out,
                                     MultiDistanceStats* stats) const {
  const size_t n = sources.size();
  VIPTREE_DCHECK(targets.size() == n);
  if (n == 0) return;
  const IPTree& tree = vip_.base();
  const PartitionId sp = sources[0].partition;
  const NodeId ls = tree.LeafOfPartition(sp);

  // Source points compared by bit pattern: equal bits => identical descent
  // outputs, so the computation can be shared without any tolerance games.
  using SrcBits = std::array<uint64_t, 3>;
  const auto bits_of = [](const IndoorPoint& p) {
    SrcBits b{};
    static_assert(sizeof(b) == sizeof(p.position), "Point is 3 doubles");
    std::memcpy(b.data(), &p.position, sizeof(b));
    return b;
  };

  struct Cross {
    size_t query;
    NodeId lca, ns, nt;
    SrcBits src;
  };
  std::vector<Cross> cross;
  cross.reserve(n);
  std::map<SrcBits, std::vector<size_t>> local_groups;
  for (size_t k = 0; k < n; ++k) {
    VIPTREE_DCHECK(sources[k].partition == sp);
    const NodeId lt = tree.LeafOfPartition(targets[k].partition);
    if (lt == ls) {
      local_groups[bits_of(sources[k])].push_back(k);
      continue;
    }
    const NodeId lca = tree.Lca(ls, lt);
    cross.push_back({k, lca, ChildToward(tree, lca, ls),
                     ChildToward(tree, lca, lt), bits_of(sources[k])});
  }

  // Same-leaf pairs dominate skewed batches (each one is a multi-source
  // leaf Dijkstra, ~100x a cross-leaf matrix walk), so queries sharing an
  // exact source point share one incremental Dijkstra run.
  if (!local_groups.empty()) {
    std::vector<IndoorPoint> local_targets;
    std::vector<double> local_out;
    size_t local_queries = 0;
    for (const auto& [src, members] : local_groups) {
      (void)src;
      local_queries += members.size();
      local_targets.clear();
      for (size_t k : members) local_targets.push_back(targets[k]);
      local_out.assign(members.size(), kInfDistance);
      ip_.LocalDistanceMulti(
          sources[members[0]],
          Span<const IndoorPoint>(local_targets.data(), local_targets.size()),
          local_out.data());
      for (size_t j = 0; j < members.size(); ++j) {
        out[members[j]] = local_out[j];
      }
    }
    if (stats != nullptr) {
      stats->ascents_computed += local_groups.size();
      stats->ascents_reused += local_queries - local_groups.size();
    }
  }
  if (cross.empty()) return;

  // One multi-point descent per join child over its distinct source points.
  std::map<std::pair<NodeId, SrcBits>, size_t> slot_of;
  std::map<NodeId, std::vector<IndoorPoint>> points_of;
  for (const Cross& c : cross) {
    const auto key = std::make_pair(c.ns, c.src);
    if (slot_of.count(key) != 0) continue;
    std::vector<IndoorPoint>& pts = points_of[c.ns];
    slot_of[key] = pts.size();
    pts.push_back(sources[c.query]);
  }
  std::map<NodeId, std::vector<double>> sdist_of;
  for (auto& [ns, pts] : points_of) {
    DistancesToNodeAdMulti(Span<const IndoorPoint>(pts.data(), pts.size()), ns,
                           sdist_of[ns]);
  }
  if (stats != nullptr) {
    stats->ascents_computed += slot_of.size();
    stats->ascents_reused += cross.size() - slot_of.size();
  }

  // Queries sharing (source bits, lca, ns, nt) fold the LCA join once and
  // batch the target-side reduce.
  std::map<std::tuple<SrcBits, NodeId, NodeId, NodeId>, std::vector<size_t>>
      buckets;
  for (size_t ci = 0; ci < cross.size(); ++ci) {
    const Cross& c = cross[ci];
    buckets[std::make_tuple(c.src, c.lca, c.ns, c.nt)].push_back(ci);
  }
  std::vector<IndoorPoint> bucket_targets;
  std::vector<double> bucket_out;
  for (const auto& [key, members] : buckets) {
    const Cross& head = cross[members[0]];
    const size_t m = tree.node(head.ns).access_doors.size();
    const std::vector<double>& stack = sdist_of[head.ns];
    const double* sdist =
        stack.data() + slot_of[std::make_pair(head.ns, head.src)] * m;
    bucket_targets.clear();
    for (size_t ci : members) {
      bucket_targets.push_back(targets[cross[ci].query]);
    }
    bucket_out.assign(members.size(), kInfDistance);
    DistanceViaLcaMulti(
        sdist, head.lca, head.ns, head.nt,
        Span<const IndoorPoint>(bucket_targets.data(), bucket_targets.size()),
        bucket_out.data());
    for (size_t j = 0; j < members.size(); ++j) {
      out[cross[members[j]].query] = bucket_out[j];
    }
  }
}

double VIPDistanceQuery::Distance(const IndoorPoint& s,
                                  const IndoorPoint& t) const {
  const IPTree& tree = vip_.base();
  const NodeId ls = tree.LeafOfPartition(s.partition);
  const NodeId lt = tree.LeafOfPartition(t.partition);
  if (ls == lt) return ip_.LocalDistance(QuerySource::Point(s), t);

  const NodeId lca = tree.Lca(ls, lt);
  const NodeId ns = ChildToward(tree, lca, ls);
  const NodeId nt = ChildToward(tree, lca, lt);
  DistancesToNodeAd(QuerySource::Point(s), ns, sdist_, sback_);
  DistancesToNodeAd(QuerySource::Point(t), nt, tdist_, tback_);

  const TreeNode& lca_node = tree.node(lca);
  const TreeNode& ns_node = tree.node(ns);
  const TreeNode& nt_node = tree.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (sdist_[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        sdist_[i],
        lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), tdist_.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

double VIPDistanceQuery::DoorDistance(DoorId s, DoorId t) const {
  if (s == t) return 0.0;
  // Separate kind from the IP pair cache: the VIP join reads float ExtDist
  // cells where the IP ascent sums doubles, so the two variants' results
  // may differ in the last ulp and must never share an entry.
  if (cache_ != nullptr) {
    double cached;
    if (cache_->LookupScalar(CacheKind::kVipDoorPair, s, t, &cached)) {
      return cached;
    }
  }
  const double d = DoorDistanceUncached(s, t);
  if (cache_ != nullptr) {
    cache_->InsertScalar(CacheKind::kVipDoorPair, s, t, d);
  }
  return d;
}

double VIPDistanceQuery::DoorDistanceUncached(DoorId s, DoorId t) const {
  const IPTree& tree = vip_.base();
  const auto s_leaves = tree.LeavesOfDoor(s);
  const auto t_leaves = tree.LeavesOfDoor(t);
  for (const auto& sl : s_leaves) {
    for (const auto& tl : t_leaves) {
      if (sl.leaf == tl.leaf) return ip_.DoorDistance(s, t);
    }
  }
  const NodeId lca = tree.Lca(s_leaves[0].leaf, t_leaves[0].leaf);
  const NodeId ns = ChildToward(tree, lca, s_leaves[0].leaf);
  const NodeId nt = ChildToward(tree, lca, t_leaves[0].leaf);
  DistancesToNodeAd(QuerySource::Door(s), ns, sdist_, sback_);
  DistancesToNodeAd(QuerySource::Door(t), nt, tdist_, tback_);
  const TreeNode& lca_node = tree.node(lca);
  const TreeNode& ns_node = tree.node(ns);
  const TreeNode& nt_node = tree.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (sdist_[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        sdist_[i],
        lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), tdist_.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

}  // namespace viptree
