#include "core/distance_query.h"

#include <algorithm>

#include "common/check.h"
#include "common/kernels.h"
#include "common/span.h"

namespace viptree {

namespace {

// The child of `ancestor` whose subtree contains `leaf`.
NodeId ChildToward(const IPTree& tree, NodeId ancestor, NodeId leaf) {
  NodeId cur = leaf;
  while (tree.node(cur).parent != ancestor) {
    cur = tree.node(cur).parent;
    VIPTREE_DCHECK(cur != kInvalidId);
  }
  return cur;
}

}  // namespace

IPDistanceQuery::IPDistanceQuery(const IPTree& tree,
                                 const DistanceQueryOptions& options,
                                 DistanceCache* cache)
    : tree_(tree), options_(options), cache_(cache), dijkstra_(tree.graph()) {}

void IPDistanceQuery::AccessDoorIndexMap(NodeId n, NodeId m,
                                         std::vector<int32_t>& out) const {
  if (cache_ != nullptr &&
      cache_->LookupIndexVector(CacheKind::kIndexMap, n, m, &out)) {
    return;
  }
  const TreeNode& nn = tree_.node(n);
  const TreeNode& mn = tree_.node(m);
  out.resize(mn.access_doors.size());
  for (size_t i = 0; i < mn.access_doors.size(); ++i) {
    const int idx = IPTree::IndexOf(nn.matrix_doors, mn.access_doors[i]);
    // An access door of m (a descendant-or-self of n) must appear in n's
    // matrix; -1 here would silently read a wrong matrix row below.
    VIPTREE_DCHECK(idx >= 0);
    out[i] = idx;
  }
  if (cache_ != nullptr) {
    cache_->InsertIndexVector(CacheKind::kIndexMap, n, m, out);
  }
}

void IPDistanceQuery::DoorAscent(DoorId door, NodeId target,
                                 std::vector<double>& out) const {
  if (cache_ != nullptr &&
      cache_->LookupDistVector(CacheKind::kIpDoorAscent, door, target, &out)) {
    return;
  }
  AscentDistances ascent = GetDistances(QuerySource::Door(door), target);
  out = std::move(ascent.ad_dist.back());
  if (cache_ != nullptr) {
    cache_->InsertDistVector(CacheKind::kIpDoorAscent, door, target, out);
  }
}

NodeId IPDistanceQuery::LeafOf(const QuerySource& source) const {
  if (source.point != nullptr) {
    return tree_.LeafOfPartition(source.point->partition);
  }
  return tree_.LeavesOfDoor(source.door)[0].leaf;
}

void IPDistanceQuery::SeedLeaf(const QuerySource& source, const TreeNode& leaf,
                               std::vector<double>& dist,
                               std::vector<PathBack>& back) const {
  const size_t m = leaf.access_doors.size();
  dist.assign(m, kInfDistance);
  back.assign(m, PathBack{});

  if (source.door != kInvalidId) {
    // A door source reads its row of the leaf matrix directly.
    const int row = IPTree::IndexOf(leaf.doors, source.door);
    VIPTREE_DCHECK(row >= 0);
    const Span<const float> door_row = leaf.dist.row(static_cast<size_t>(row));
    for (size_t c = 0; c < m; ++c) {
      dist[c] = door_row[c];
      back[c] = PathBack{kInvalidId, -1};
    }
    return;
  }

  const Venue& venue = tree_.venue();
  const IndoorPoint& s = *source.point;
  const Span<const DoorId> partition_doors = venue.DoorsOf(s.partition);
  const Span<const DoorId> seeds = options_.use_superior_doors
                                            ? tree_.SuperiorDoors(s.partition)
                                            : partition_doors;
  for (size_t c = 0; c < m; ++c) {
    const DoorId a = leaf.access_doors[c];
    // Local access door: reachable directly through the partition (Eq. 1's
    // trivial case).
    if (std::find(partition_doors.begin(), partition_doors.end(), a) !=
        partition_doors.end()) {
      dist[c] = venue.DistanceToDoor(s, a);
      back[c] = PathBack{kInvalidId, -1};
    }
    for (DoorId u : seeds) {
      const double cand =
          venue.DistanceToDoor(s, u) + tree_.LeafMatrixDist(leaf, u, a);
      if (cand < dist[c]) {
        dist[c] = cand;
        back[c] = PathBack{u, -1};
      }
    }
  }
}

AscentDistances IPDistanceQuery::GetDistances(const QuerySource& source,
                                              NodeId target) const {
  AscentDistances out;
  const NodeId leaf_id = LeafOf(source);
  out.chain.push_back(leaf_id);
  out.ad_dist.emplace_back();
  out.back.emplace_back();
  SeedLeaf(source, tree_.node(leaf_id), out.ad_dist[0], out.back[0]);

  NodeId cur = leaf_id;
  while (cur != target) {
    const NodeId parent = tree_.node(cur).parent;
    VIPTREE_CHECK_MSG(parent != kInvalidId,
                      "target must be an ancestor of the source leaf");
    const TreeNode& pnode = tree_.node(parent);
    const TreeNode& cnode = tree_.node(cur);
    const std::vector<double>& cdist = out.ad_dist.back();
    const int child_chain_idx = static_cast<int>(out.chain.size()) - 1;

    const size_t nc = pnode.access_doors.size();
    const size_t nb = cnode.access_doors.size();
    std::vector<double> pdist(nc, kInfDistance);
    std::vector<PathBack> pback(nc);
    // rows: child access doors, cols: parent access doors, both positioned
    // in the parent matrix once per level instead of per cell.
    AccessDoorIndexMap(parent, cur, step_rows_);
    AccessDoorIndexMap(parent, parent, step_cols_);
    // Row-outer kernel form of the min-plus step: one gather per child
    // door over its parent-matrix row, folded into per-column accumulators
    // with the source door recorded on strict improvement. Ascending-b
    // order preserves the historical column-outer loop's first-wins argmin
    // bit-for-bit (common/kernels.h).
    step_dist_.assign(nc, kInfDistance);
    step_src_.assign(nc, -1);
    for (size_t b = 0; b < nb; ++b) {
      if (cdist[b] == kInfDistance) continue;  // inf + cell never improves
      kernels::MinPlusGatherArgF32(
          step_dist_.data(), step_src_.data(), static_cast<int32_t>(b),
          pnode.dist.row(static_cast<size_t>(step_rows_[b])).data(),
          step_cols_.data(), cdist[b], nc);
    }
    for (size_t c = 0; c < nc; ++c) {
      const DoorId a = pnode.access_doors[c];
      // "Marked" doors of Algorithm 2: already computed at the child level.
      const int in_child = IPTree::IndexOf(cnode.access_doors, a);
      if (in_child >= 0) {
        pdist[c] = cdist[in_child];
        pback[c] = out.back.back()[in_child];
        continue;
      }
      pdist[c] = step_dist_[c];
      if (step_src_[c] >= 0) {
        pback[c] = PathBack{cnode.access_doors[step_src_[c]],
                            child_chain_idx};
      }
    }
    out.chain.push_back(parent);
    out.ad_dist.push_back(std::move(pdist));
    out.back.push_back(std::move(pback));
    cur = parent;
  }
  return out;
}

double IPDistanceQuery::LocalDistance(const QuerySource& s,
                                      const IndoorPoint& t) const {
  const Venue& venue = tree_.venue();
  double best = kInfDistance;

  std::vector<DijkstraSource> sources;
  if (s.door != kInvalidId) {
    sources.push_back({s.door, 0.0});
    if (venue.DoorTouches(s.door, t.partition)) {
      best = venue.DistanceToDoor(t, s.door);
    }
  } else {
    if (s.point->partition == t.partition) {
      best = venue.IntraPartitionDistance(t.partition, s.point->position,
                                          t.position);
    }
    for (DoorId u : venue.DoorsOf(s.point->partition)) {
      sources.push_back({u, venue.DistanceToDoor(*s.point, u)});
    }
  }

  const Span<const DoorId> targets = venue.DoorsOf(t.partition);
  dijkstra_.Start(sources);
  dijkstra_.RunToTargets(targets);
  for (DoorId dt : targets) {
    if (!dijkstra_.Settled(dt)) continue;
    best = std::min(best,
                    dijkstra_.DistanceTo(dt) + venue.DistanceToDoor(t, dt));
  }
  return best;
}

double IPDistanceQuery::Distance(const IndoorPoint& s,
                                 const IndoorPoint& t) const {
  const NodeId ls = tree_.LeafOfPartition(s.partition);
  const NodeId lt = tree_.LeafOfPartition(t.partition);
  if (ls == lt) return LocalDistance(QuerySource::Point(s), t);

  const NodeId lca = tree_.Lca(ls, lt);
  const NodeId ns = ChildToward(tree_, lca, ls);
  const NodeId nt = ChildToward(tree_, lca, lt);
  const AscentDistances as = GetDistances(QuerySource::Point(s), ns);
  const AscentDistances at = GetDistances(QuerySource::Point(t), nt);

  const TreeNode& lca_node = tree_.node(lca);
  const TreeNode& ns_node = tree_.node(ns);
  const TreeNode& nt_node = tree_.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  // One kernel join per source door: min over j of
  // (s[i] + lca_cell) + t[j], keeping the historical association.
  const std::vector<double>& sd = as.ad_dist.back();
  const std::vector<double>& td = at.ad_dist.back();
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (sd[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        sd[i], lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), td.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

double IPDistanceQuery::DoorDistance(DoorId s, DoorId t) const {
  if (s == t) return 0.0;
  // The (s, t) key is kept ordered: the join sums associate differently for
  // (t, s), so a symmetry-normalized key could differ from the direct
  // computation in the last ulp and break cache-on/off bit-identity.
  if (cache_ != nullptr) {
    double cached;
    if (cache_->LookupScalar(CacheKind::kIpDoorPair, s, t, &cached)) {
      return cached;
    }
  }
  const double d = DoorDistanceUncached(s, t);
  if (cache_ != nullptr) {
    cache_->InsertScalar(CacheKind::kIpDoorPair, s, t, d);
  }
  return d;
}

double IPDistanceQuery::DoorDistanceUncached(DoorId s, DoorId t) const {
  const auto s_leaves = tree_.LeavesOfDoor(s);
  const auto t_leaves = tree_.LeavesOfDoor(t);
  for (const auto& sl : s_leaves) {
    for (const auto& tl : t_leaves) {
      if (sl.leaf == tl.leaf) {
        // Same leaf: Dijkstra on the D2D graph (§3.1.1).
        dijkstra_.Start(s);
        dijkstra_.RunToTargets(Span<const DoorId>(&t, 1));
        return dijkstra_.DistanceTo(t);
      }
    }
  }
  const NodeId ls = s_leaves[0].leaf;
  const NodeId lt = t_leaves[0].leaf;
  const NodeId lca = tree_.Lca(ls, lt);
  const NodeId ns = ChildToward(tree_, lca, ls);
  const NodeId nt = ChildToward(tree_, lca, lt);
  DoorAscent(s, ns, s_ascent_);
  DoorAscent(t, nt, t_ascent_);
  const TreeNode& lca_node = tree_.node(lca);
  const TreeNode& ns_node = tree_.node(ns);
  const TreeNode& nt_node = tree_.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (s_ascent_[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        s_ascent_[i],
        lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), t_ascent_.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

// ---------------------------------------------------------------------------
// VIP variant
// ---------------------------------------------------------------------------

VIPDistanceQuery::VIPDistanceQuery(const VIPTree& tree,
                                   const DistanceQueryOptions& options,
                                   DistanceCache* cache)
    : vip_(tree),
      options_(options),
      cache_(cache),
      ip_(tree.base(), options, cache) {}

void VIPDistanceQuery::DistancesToNodeAd(const QuerySource& source,
                                         NodeId node,
                                         std::vector<double>& dist,
                                         std::vector<PathBack>& back) const {
  const IPTree& tree = vip_.base();
  const TreeNode& n = tree.node(node);
  const size_t m = n.access_doors.size();
  dist.assign(m, kInfDistance);
  back.assign(m, PathBack{});

  if (source.door != kInvalidId) {
    for (size_t c = 0; c < m; ++c) {
      dist[c] = vip_.ExtDist(node, source.door, c);
      back[c] = PathBack{kInvalidId, -1};
    }
    return;
  }

  const Venue& venue = tree.venue();
  const IndoorPoint& s = *source.point;
  const Span<const DoorId> partition_doors = venue.DoorsOf(s.partition);
  const Span<const DoorId> seeds = options_.use_superior_doors
                                            ? tree.SuperiorDoors(s.partition)
                                            : partition_doors;
  for (size_t c = 0; c < m; ++c) {
    const DoorId a = n.access_doors[c];
    if (std::find(partition_doors.begin(), partition_doors.end(), a) !=
        partition_doors.end()) {
      dist[c] = venue.DistanceToDoor(s, a);
      back[c] = PathBack{kInvalidId, -1};
    }
    for (DoorId u : seeds) {
      const double cand = venue.DistanceToDoor(s, u) + vip_.ExtDist(node, u, c);
      if (cand < dist[c]) {
        dist[c] = cand;
        back[c] = PathBack{u, -1};
      }
    }
  }
}

double VIPDistanceQuery::Distance(const IndoorPoint& s,
                                  const IndoorPoint& t) const {
  const IPTree& tree = vip_.base();
  const NodeId ls = tree.LeafOfPartition(s.partition);
  const NodeId lt = tree.LeafOfPartition(t.partition);
  if (ls == lt) return ip_.LocalDistance(QuerySource::Point(s), t);

  const NodeId lca = tree.Lca(ls, lt);
  const NodeId ns = ChildToward(tree, lca, ls);
  const NodeId nt = ChildToward(tree, lca, lt);
  DistancesToNodeAd(QuerySource::Point(s), ns, sdist_, sback_);
  DistancesToNodeAd(QuerySource::Point(t), nt, tdist_, tback_);

  const TreeNode& lca_node = tree.node(lca);
  const TreeNode& ns_node = tree.node(ns);
  const TreeNode& nt_node = tree.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (sdist_[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        sdist_[i],
        lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), tdist_.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

double VIPDistanceQuery::DoorDistance(DoorId s, DoorId t) const {
  if (s == t) return 0.0;
  // Separate kind from the IP pair cache: the VIP join reads float ExtDist
  // cells where the IP ascent sums doubles, so the two variants' results
  // may differ in the last ulp and must never share an entry.
  if (cache_ != nullptr) {
    double cached;
    if (cache_->LookupScalar(CacheKind::kVipDoorPair, s, t, &cached)) {
      return cached;
    }
  }
  const double d = DoorDistanceUncached(s, t);
  if (cache_ != nullptr) {
    cache_->InsertScalar(CacheKind::kVipDoorPair, s, t, d);
  }
  return d;
}

double VIPDistanceQuery::DoorDistanceUncached(DoorId s, DoorId t) const {
  const IPTree& tree = vip_.base();
  const auto s_leaves = tree.LeavesOfDoor(s);
  const auto t_leaves = tree.LeavesOfDoor(t);
  for (const auto& sl : s_leaves) {
    for (const auto& tl : t_leaves) {
      if (sl.leaf == tl.leaf) return ip_.DoorDistance(s, t);
    }
  }
  const NodeId lca = tree.Lca(s_leaves[0].leaf, t_leaves[0].leaf);
  const NodeId ns = ChildToward(tree, lca, s_leaves[0].leaf);
  const NodeId nt = ChildToward(tree, lca, t_leaves[0].leaf);
  DistancesToNodeAd(QuerySource::Door(s), ns, sdist_, sback_);
  DistancesToNodeAd(QuerySource::Door(t), nt, tdist_, tback_);
  const TreeNode& lca_node = tree.node(lca);
  const TreeNode& ns_node = tree.node(ns);
  const TreeNode& nt_node = tree.node(nt);
  AccessDoorIndexMap(lca, ns, row_idx_);
  AccessDoorIndexMap(lca, nt, col_idx_);
  double best = kInfDistance;
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    if (sdist_[i] == kInfDistance) continue;
    const double cand = kernels::JoinMinIndexedF32(
        sdist_[i],
        lca_node.dist.row(static_cast<size_t>(row_idx_[i])).data(),
        col_idx_.data(), tdist_.data(), nt_node.access_doors.size());
    if (cand < best) best = cand;
  }
  return best;
}

}  // namespace viptree
