// Indoor object embedding (§3.4): objects are attached to the leaf node of
// the partition containing them; every leaf keeps, per access door, the
// exact network distances from that access door to each of its objects
// (sorted, enabling early termination), plus subtree object counts so the
// branch-and-bound search can skip empty nodes (Alg. 5 line 10).

#ifndef VIPTREE_CORE_OBJECT_INDEX_H_
#define VIPTREE_CORE_OBJECT_INDEX_H_

#include <vector>

#include "core/ip_tree.h"
#include "common/span.h"

namespace viptree {

class ObjectIndex {
 public:
  // `objects` are indoor points; object ids are their indices.
  ObjectIndex(const IPTree& tree, std::vector<IndoorPoint> objects);

  size_t NumObjects() const { return objects_.size(); }
  const IndoorPoint& object(ObjectId o) const { return objects_[o]; }
  const std::vector<IndoorPoint>& objects() const { return objects_; }

  Span<const ObjectId> ObjectsInLeaf(NodeId leaf) const;

  // Exact indoor distance from access door `col` of `leaf` to object with
  // in-leaf index `i` (aligned with ObjectsInLeaf).
  double AccessDoorToObject(NodeId leaf, size_t col, size_t i) const {
    return leaf_door_dists_[leaf][col][i];
  }

  // Number of objects in the subtree of `node`.
  size_t SubtreeCount(const TreeNode& node) const {
    return dfs_prefix_[node.leaf_end] - dfs_prefix_[node.leaf_begin];
  }

  uint64_t MemoryBytes() const;

 private:
  const IPTree& tree_;
  std::vector<IndoorPoint> objects_;
  std::vector<std::vector<ObjectId>> leaf_objects_;  // by leaf node id
  // leaf_door_dists_[leaf][access door col][object idx in leaf].
  std::vector<std::vector<std::vector<double>>> leaf_door_dists_;
  std::vector<uint32_t> dfs_prefix_;  // objects in leaves with dfs index < i
};

}  // namespace viptree

#endif  // VIPTREE_CORE_OBJECT_INDEX_H_
