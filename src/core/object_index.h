// Indoor object embedding (§3.4): objects are attached to the leaf node of
// the partition containing them; every leaf keeps, per access door, the
// exact network distances from that access door to each of its objects
// (sorted, enabling early termination), plus subtree object counts so the
// branch-and-bound search can skip empty nodes (Alg. 5 line 10).
//
// Storage layout: both the per-leaf object lists and the per-(leaf, access
// door) distance rows live in single contiguous buffers with per-node
// offsets (CSR style). The kNN inner loop therefore scans one cache-friendly
// row per access door, MemoryBytes() is exact, and the whole index
// serializes as a handful of flat arrays.

#ifndef VIPTREE_CORE_OBJECT_INDEX_H_
#define VIPTREE_CORE_OBJECT_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ip_tree.h"
#include "common/span.h"
#include "common/storage.h"

namespace viptree {

class ObjectIndex {
 public:
  // The complete serializable state (everything but the tree reference).
  // The flat CSR buffers are Storage, so a zero-copy snapshot load can hand
  // in arena views; the object list itself stays an owned vector (it is
  // small and IndoorPoint carries padding, so it is field-encoded).
  struct Parts {
    std::vector<IndoorPoint> objects;
    // CSR of node id -> object ids (only leaves have entries).
    Storage<uint32_t> leaf_object_offsets;  // nodes + 1
    Storage<ObjectId> leaf_objects;
    // Contiguous [leaf][access-door column][in-leaf object] distances; one
    // base offset per node into the flat buffer.
    Storage<uint64_t> dist_offsets;  // nodes + 1
    Storage<double> door_dists;
    Storage<uint32_t> dfs_prefix;  // num_leaves + 1
  };

  // `objects` are indoor points; object ids are their indices.
  ObjectIndex(const IPTree& tree, std::vector<IndoorPoint> objects);

  // Structural check of `parts` against the tree (sizes, id ranges, CSR
  // consistency).
  static std::optional<std::string> ValidateParts(const IPTree& tree,
                                                  const Parts& parts);

  // Reconstructs the index from deserialized parts without recomputing any
  // door-to-object distance. Aborts on malformed input (run ValidateParts
  // first when the parts come from an untrusted file).
  static ObjectIndex FromParts(const IPTree& tree, Parts parts);

  // Same, for callers that have *just* run ValidateParts themselves (the
  // snapshot loader): skips the redundant validation pass.
  static ObjectIndex FromValidatedParts(const IPTree& tree, Parts parts);

  Parts ToParts() const;

  size_t NumObjects() const { return objects_.size(); }
  const IndoorPoint& object(ObjectId o) const { return objects_[o]; }
  const std::vector<IndoorPoint>& objects() const { return objects_; }

  Span<const ObjectId> ObjectsInLeaf(NodeId leaf) const {
    return {leaf_objects_.data() + leaf_object_offsets_[leaf],
            leaf_objects_.data() + leaf_object_offsets_[leaf + 1]};
  }

  // Exact indoor distance from access door `col` of `leaf` to object with
  // in-leaf index `i` (aligned with ObjectsInLeaf).
  double AccessDoorToObject(NodeId leaf, size_t col, size_t i) const {
    return DoorDistances(leaf, col)[i];
  }

  // The contiguous distance row of access door `col` of `leaf`, aligned
  // with ObjectsInLeaf (the kNN leaf-scan inner loop walks this span).
  Span<const double> DoorDistances(NodeId leaf, size_t col) const {
    const size_t count = leaf_object_offsets_[leaf + 1] -
                         leaf_object_offsets_[leaf];
    return {door_dists_.data() + dist_offsets_[leaf] + col * count, count};
  }

  // Number of objects in the subtree of `node`.
  size_t SubtreeCount(const TreeNode& node) const {
    return dfs_prefix_[node.leaf_end] - dfs_prefix_[node.leaf_begin];
  }

  uint64_t MemoryBytes() const;

 private:
  // Tag keeps the parts constructor out of overload resolution for
  // brace-initialized object lists.
  struct FromPartsTag {};
  ObjectIndex(FromPartsTag, const IPTree& tree, Parts parts);

  const IPTree& tree_;
  std::vector<IndoorPoint> objects_;
  Storage<uint32_t> leaf_object_offsets_;
  Storage<ObjectId> leaf_objects_;
  Storage<uint64_t> dist_offsets_;
  Storage<double> door_dists_;
  Storage<uint32_t> dfs_prefix_;  // objects in leaves with dfs index < i
};

}  // namespace viptree

#endif  // VIPTREE_CORE_OBJECT_INDEX_H_
