#include "core/object_index.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

ObjectIndex::ObjectIndex(const IPTree& tree, std::vector<IndoorPoint> objects)
    : tree_(tree), objects_(std::move(objects)) {
  const Venue& venue = tree.venue();
  const size_t num_nodes = tree.nodes().size();

  // CSR of leaf -> objects (counting sort by leaf id; objects of one leaf
  // keep ascending object-id order, as before).
  std::vector<uint32_t> count(num_nodes, 0);
  for (const IndoorPoint& obj : objects_) {
    ++count[tree.LeafOfPartition(obj.partition)];
  }
  leaf_object_offsets_.assign(num_nodes + 1, 0);
  for (size_t n = 0; n < num_nodes; ++n) {
    leaf_object_offsets_[n + 1] = leaf_object_offsets_[n] + count[n];
  }
  leaf_objects_.resize(objects_.size());
  std::vector<uint32_t> cursor(leaf_object_offsets_.begin(),
                               leaf_object_offsets_.end() - 1);
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
    leaf_objects_[cursor[tree.LeafOfPartition(objects_[o].partition)]++] = o;
  }

  // One contiguous distance row per (leaf, access door), rows of one leaf
  // adjacent: dist_offsets_[leaf] + col * count + i.
  dist_offsets_.assign(num_nodes + 1, 0);
  for (size_t n = 0; n < num_nodes; ++n) {
    const TreeNode& node = tree.node(static_cast<NodeId>(n));
    const uint64_t cells =
        node.is_leaf()
            ? static_cast<uint64_t>(node.access_doors.size()) * count[n]
            : 0;
    dist_offsets_[n + 1] = dist_offsets_[n] + cells;
  }
  door_dists_.assign(dist_offsets_.back(), kInfDistance);

  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf()) continue;
    const Span<const ObjectId> objs = ObjectsInLeaf(node.id);
    if (objs.empty()) continue;
    double* base = door_dists_.mutable_data() + dist_offsets_[node.id];
    for (size_t col = 0; col < node.access_doors.size(); ++col) {
      const DoorId a = node.access_doors[col];
      double* row = base + col * objs.size();
      for (size_t i = 0; i < objs.size(); ++i) {
        const IndoorPoint& obj = objects_[objs[i]];
        double best = kInfDistance;
        if (venue.DoorTouches(a, obj.partition)) {
          best = venue.DistanceToDoor(obj, a);
        }
        for (DoorId u : venue.DoorsOf(obj.partition)) {
          const double cand = tree.LeafMatrixDist(node, u, a) +
                              venue.DistanceToDoor(obj, u);
          best = std::min(best, cand);
        }
        row[i] = best;
      }
    }
  }

  // Subtree counts via leaf DFS prefix sums.
  std::vector<uint32_t> count_at_dfs(tree.num_leaves(), 0);
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) count_at_dfs[node.leaf_begin] = count[node.id];
  }
  dfs_prefix_.assign(tree.num_leaves() + 1, 0);
  for (size_t i = 0; i < tree.num_leaves(); ++i) {
    dfs_prefix_[i + 1] = dfs_prefix_[i] + count_at_dfs[i];
  }
  VIPTREE_CHECK(dfs_prefix_.back() == objects_.size());
}

ObjectIndex::ObjectIndex(FromPartsTag, const IPTree& tree, Parts parts)
    : tree_(tree),
      objects_(std::move(parts.objects)),
      leaf_object_offsets_(std::move(parts.leaf_object_offsets)),
      leaf_objects_(std::move(parts.leaf_objects)),
      dist_offsets_(std::move(parts.dist_offsets)),
      door_dists_(std::move(parts.door_dists)),
      dfs_prefix_(std::move(parts.dfs_prefix)) {}

std::optional<std::string> ObjectIndex::ValidateParts(const IPTree& tree,
                                                      const Parts& parts) {
  const size_t num_nodes = tree.nodes().size();
  const size_t num_objects = parts.objects.size();
  for (const IndoorPoint& obj : parts.objects) {
    if (obj.partition < 0 ||
        static_cast<size_t>(obj.partition) >= tree.venue().NumPartitions()) {
      return "object in unknown partition";
    }
  }
  if (parts.leaf_object_offsets.size() != num_nodes + 1 ||
      parts.leaf_object_offsets.front() != 0 ||
      parts.leaf_object_offsets.back() != parts.leaf_objects.size() ||
      parts.leaf_objects.size() != num_objects) {
    return "object-index leaf CSR is inconsistent";
  }
  if (parts.dist_offsets.size() != num_nodes + 1 ||
      parts.dist_offsets.front() != 0 ||
      parts.dist_offsets.back() != parts.door_dists.size()) {
    return "object-index distance CSR is inconsistent";
  }
  for (size_t n = 0; n < num_nodes; ++n) {
    if (parts.leaf_object_offsets[n] > parts.leaf_object_offsets[n + 1]) {
      return "object-index leaf offsets are not monotone";
    }
    if (parts.dist_offsets[n] > parts.dist_offsets[n + 1]) {
      return "object-index distance offsets are not monotone";
    }
    const TreeNode& node = tree.node(static_cast<NodeId>(n));
    const uint64_t objs =
        parts.leaf_object_offsets[n + 1] - parts.leaf_object_offsets[n];
    const uint64_t cells = parts.dist_offsets[n + 1] - parts.dist_offsets[n];
    if (!node.is_leaf() && objs != 0) {
      return "object-index attaches objects to a non-leaf node";
    }
    const uint64_t expected =
        node.is_leaf() ? objs * node.access_doors.size() : 0;
    if (cells != expected) {
      return "object-index distance row count mismatches the leaf";
    }
  }
  // leaf_objects must be a permutation of all object ids: a duplicated or
  // dropped id would silently distort every kNN/range answer.
  std::vector<uint8_t> seen(num_objects, 0);
  for (ObjectId o : parts.leaf_objects) {
    if (o < 0 || static_cast<size_t>(o) >= num_objects) {
      return "object-index references an unknown object";
    }
    if (seen[o] != 0) {
      return "object-index lists object " + std::to_string(o) + " twice";
    }
    seen[o] = 1;
  }
  if (parts.dfs_prefix.size() != tree.num_leaves() + 1 ||
      parts.dfs_prefix.front() != 0 ||
      parts.dfs_prefix.back() != num_objects) {
    return "object-index dfs prefix sums are inconsistent";
  }
  return std::nullopt;
}

ObjectIndex ObjectIndex::FromParts(const IPTree& tree, Parts parts) {
  const std::optional<std::string> error = ValidateParts(tree, parts);
  VIPTREE_CHECK_MSG(!error.has_value(),
                    error.has_value() ? error->c_str() : "");
  return ObjectIndex(FromPartsTag{}, tree, std::move(parts));
}

ObjectIndex ObjectIndex::FromValidatedParts(const IPTree& tree, Parts parts) {
  return ObjectIndex(FromPartsTag{}, tree, std::move(parts));
}

ObjectIndex::Parts ObjectIndex::ToParts() const {
  Parts parts;
  parts.objects = objects_;
  parts.leaf_object_offsets = leaf_object_offsets_;
  parts.leaf_objects = leaf_objects_;
  parts.dist_offsets = dist_offsets_;
  parts.door_dists = door_dists_;
  parts.dfs_prefix = dfs_prefix_;
  return parts;
}

uint64_t ObjectIndex::MemoryBytes() const {
  return objects_.size() * sizeof(IndoorPoint) +
         leaf_object_offsets_.MemoryBytes() + leaf_objects_.MemoryBytes() +
         dist_offsets_.MemoryBytes() + door_dists_.MemoryBytes() +
         dfs_prefix_.MemoryBytes();
}

}  // namespace viptree
