#include "core/object_index.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

ObjectIndex::ObjectIndex(const IPTree& tree, std::vector<IndoorPoint> objects)
    : tree_(tree), objects_(std::move(objects)) {
  const Venue& venue = tree.venue();
  leaf_objects_.resize(tree.nodes().size());
  leaf_door_dists_.resize(tree.nodes().size());

  for (ObjectId o = 0; o < static_cast<ObjectId>(objects_.size()); ++o) {
    const NodeId leaf = tree.LeafOfPartition(objects_[o].partition);
    leaf_objects_[leaf].push_back(o);
  }

  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf() || leaf_objects_[node.id].empty()) continue;
    const std::vector<ObjectId>& objs = leaf_objects_[node.id];
    auto& per_door = leaf_door_dists_[node.id];
    per_door.assign(node.access_doors.size(),
                    std::vector<double>(objs.size(), kInfDistance));
    for (size_t col = 0; col < node.access_doors.size(); ++col) {
      const DoorId a = node.access_doors[col];
      for (size_t i = 0; i < objs.size(); ++i) {
        const IndoorPoint& obj = objects_[objs[i]];
        double best = kInfDistance;
        if (venue.DoorTouches(a, obj.partition)) {
          best = venue.DistanceToDoor(obj, a);
        }
        for (DoorId u : venue.DoorsOf(obj.partition)) {
          const double cand = tree.LeafMatrixDist(node, u, a) +
                              venue.DistanceToDoor(obj, u);
          best = std::min(best, cand);
        }
        per_door[col][i] = best;
      }
    }
  }

  // Subtree counts via leaf DFS prefix sums.
  std::vector<uint32_t> count_at_dfs(tree.num_leaves(), 0);
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) {
      count_at_dfs[node.leaf_begin] =
          static_cast<uint32_t>(leaf_objects_[node.id].size());
    }
  }
  dfs_prefix_.assign(tree.num_leaves() + 1, 0);
  for (size_t i = 0; i < tree.num_leaves(); ++i) {
    dfs_prefix_[i + 1] = dfs_prefix_[i] + count_at_dfs[i];
  }
  VIPTREE_CHECK(dfs_prefix_.back() == objects_.size());
}

Span<const ObjectId> ObjectIndex::ObjectsInLeaf(NodeId leaf) const {
  return leaf_objects_[leaf];
}

uint64_t ObjectIndex::MemoryBytes() const {
  uint64_t bytes = objects_.capacity() * sizeof(IndoorPoint);
  for (const auto& v : leaf_objects_) bytes += v.capacity() * sizeof(ObjectId);
  for (const auto& per_door : leaf_door_dists_) {
    for (const auto& v : per_door) bytes += v.capacity() * sizeof(double);
  }
  bytes += dfs_prefix_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace viptree
