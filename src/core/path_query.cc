#include "core/path_query.h"

#include <algorithm>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

namespace {

NodeId ChildToward(const IPTree& tree, NodeId ancestor, NodeId leaf) {
  NodeId cur = leaf;
  while (tree.node(cur).parent != ancestor) {
    cur = tree.node(cur).parent;
    VIPTREE_DCHECK(cur != kInvalidId);
  }
  return cur;
}

// A leaf containing both doors, kInvalidId if none.
NodeId CommonLeaf(const IPTree& tree, DoorId x, DoorId y) {
  for (const auto& lx : tree.LeavesOfDoor(x)) {
    for (const auto& ly : tree.LeavesOfDoor(y)) {
      if (lx.leaf == ly.leaf) return lx.leaf;
    }
  }
  return kInvalidId;
}

}  // namespace

IPPathQuery::IPPathQuery(const IPTree& tree,
                         const DistanceQueryOptions& options,
                         DistanceCache* cache)
    : tree_(tree), query_(tree, options, cache) {}

bool IPPathQuery::Represents(DoorId x, DoorId y, NodeId n) const {
  const TreeNode& node = tree_.node(n);
  if (node.is_leaf()) {
    return IPTree::IndexOf(node.doors, x) >= 0 &&
           IPTree::IndexOf(node.doors, y) >= 0 &&
           (IPTree::IndexOf(node.access_doors, x) >= 0 ||
            IPTree::IndexOf(node.access_doors, y) >= 0);
  }
  return IPTree::IndexOf(node.matrix_doors, x) >= 0 &&
         IPTree::IndexOf(node.matrix_doors, y) >= 0;
}

NodeId IPPathQuery::Descend(DoorId x, DoorId y, NodeId ctx) const {
  bool descended = true;
  while (descended && !tree_.node(ctx).is_leaf()) {
    descended = false;
    for (NodeId child : tree_.node(ctx).children) {
      if (Represents(x, y, child)) {
        ctx = child;
        descended = true;
        break;
      }
    }
  }
  return ctx;
}

void IPPathQuery::Expand(DoorId x, DoorId y, NodeId ctx,
                         std::vector<DoorId>& out) const {
  if (x == y) return;
  // Lemmas 4 and 6: an edge between two non-access doors is final.
  if (!tree_.IsAccessDoor(x) && !tree_.IsAccessDoor(y)) return;
  ctx = Descend(x, y, ctx);
  if (!Represents(x, y, ctx)) {
    // Shortest paths that leave a node and re-enter (Example 6's rare
    // scenario) can hand us a pair no matrix represents; recover the short
    // remaining segment with a bounded Dijkstra.
    DijkstraEngine& engine = query_.dijkstra_;
    engine.Start(x);
    engine.RunToTargets(Span<const DoorId>(&y, 1));
    const std::vector<DoorId> seg = engine.PathTo(y);
    for (size_t i = 1; i + 1 < seg.size(); ++i) out.push_back(seg[i]);
    return;
  }
  const TreeNode& node = tree_.node(ctx);

  DoorId hop = kInvalidId;
  if (node.is_leaf()) {
    // The leaf matrix is doors x access-doors: orient the lookup so the
    // column is an access door of this leaf. Splitting at a door that lies
    // anywhere on the shortest path is valid in either orientation.
    if (IPTree::IndexOf(node.access_doors, y) >= 0) {
      hop = tree_.LeafMatrixNextHop(node, x, y);
    } else {
      VIPTREE_DCHECK(IPTree::IndexOf(node.access_doors, x) >= 0);
      hop = tree_.LeafMatrixNextHop(node, y, x);
    }
    if (hop == kInvalidId) return;  // final edge (Lemma 3)
  } else {
    const int row = IPTree::IndexOf(node.matrix_doors, x);
    const int col = IPTree::IndexOf(node.matrix_doors, y);
    VIPTREE_DCHECK(row >= 0 && col >= 0);
    hop = node.next_hop.at(row, col);
    if (hop == kInvalidId) {
      // NULL at a non-leaf means x and y are access doors of one node at
      // the level below (Lemma 3) — usually a common child, which Descend
      // entered. A door borders every node its two leaves chain through,
      // so the common node can live under a *different* parent; the
      // segment is then a single level-graph edge: recover it locally.
      DijkstraEngine& engine = query_.dijkstra_;
      engine.Start(x);
      engine.RunToTargets(Span<const DoorId>(&y, 1));
      const std::vector<DoorId> seg = engine.PathTo(y);
      for (size_t i = 1; i + 1 < seg.size(); ++i) out.push_back(seg[i]);
      return;
    }
  }
  Expand(x, hop, ctx, out);
  out.push_back(hop);
  Expand(hop, y, ctx, out);
}

IPPathQuery::PartialPath IPPathQuery::Backtrack(const AscentDistances& ascent,
                                                size_t top_idx) const {
  PartialPath pp;
  int idx = static_cast<int>(ascent.chain.size()) - 1;
  size_t c = top_idx;
  pp.doors.push_back(
      tree_.node(ascent.chain[idx]).access_doors[c]);
  PathBack b = ascent.back[idx][c];
  while (b.pred != kInvalidId) {
    pp.edge_ctx.push_back(ascent.chain[b.pred_chain_idx + 1]);
    pp.doors.push_back(b.pred);
    if (b.pred_chain_idx < 0) break;  // seed superior door: next stop is s
    idx = b.pred_chain_idx;
    c = static_cast<size_t>(IPTree::IndexOf(
        tree_.node(ascent.chain[idx]).access_doors, b.pred));
    b = ascent.back[idx][c];
  }
  std::reverse(pp.doors.begin(), pp.doors.end());
  std::reverse(pp.edge_ctx.begin(), pp.edge_ctx.end());
  return pp;
}

IndoorPath IPPathQuery::LocalPath(const QuerySource& s,
                                  const QuerySource& t) const {
  const Venue& venue = tree_.venue();
  IndoorPath path;

  std::vector<DijkstraSource> sources;
  if (s.door != kInvalidId) {
    sources.push_back({s.door, 0.0});
  } else {
    for (DoorId u : venue.DoorsOf(s.point->partition)) {
      sources.push_back({u, venue.DistanceToDoor(*s.point, u)});
    }
  }

  DijkstraEngine& engine = query_.dijkstra_;
  engine.Start(sources);
  if (t.door != kInvalidId) {
    engine.RunToTargets(Span<const DoorId>(&t.door, 1));
    path.distance = engine.DistanceTo(t.door);
    if (engine.Settled(t.door)) path.doors = engine.PathTo(t.door);
    return path;
  }

  // Point target: best door of the target partition, or the direct
  // intra-partition route.
  if (s.point != nullptr && s.point->partition == t.point->partition) {
    path.distance = venue.IntraPartitionDistance(
        t.point->partition, s.point->position, t.point->position);
  }
  const Span<const DoorId> targets = venue.DoorsOf(t.point->partition);
  engine.RunToTargets(targets);
  DoorId best_door = kInvalidId;
  for (DoorId dt : targets) {
    if (!engine.Settled(dt)) continue;
    const double cand =
        engine.DistanceTo(dt) + venue.DistanceToDoor(*t.point, dt);
    if (cand < path.distance) {
      path.distance = cand;
      best_door = dt;
    }
  }
  if (best_door != kInvalidId) path.doors = engine.PathTo(best_door);
  return path;
}

IndoorPath IPPathQuery::CrossLeafPath(const QuerySource& s,
                                      const QuerySource& t) const {
  const NodeId ls = query_.LeafOf(s);
  const NodeId lt = query_.LeafOf(t);
  const NodeId lca = tree_.Lca(ls, lt);
  const NodeId ns = ChildToward(tree_, lca, ls);
  const NodeId nt = ChildToward(tree_, lca, lt);
  const AscentDistances as = query_.GetDistances(s, ns);
  const AscentDistances at = query_.GetDistances(t, nt);

  const TreeNode& lca_node = tree_.node(lca);
  const TreeNode& ns_node = tree_.node(ns);
  const TreeNode& nt_node = tree_.node(nt);
  IndoorPath path;
  size_t best_i = 0;
  size_t best_j = 0;
  query_.AccessDoorIndexMap(lca, ns, row_idx_);
  query_.AccessDoorIndexMap(lca, nt, col_idx_);
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    const int row = row_idx_[i];
    for (size_t j = 0; j < nt_node.access_doors.size(); ++j) {
      const int col = col_idx_[j];
      const double cand = as.ad_dist.back()[i] + lca_node.dist.at(row, col) +
                          at.ad_dist.back()[j];
      if (cand < path.distance) {
        path.distance = cand;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (path.distance == kInfDistance) return path;

  PartialPath ps = Backtrack(as, best_i);
  PartialPath pt = Backtrack(at, best_j);
  // Door-source seeds leave the source door implicit; prepend it.
  if (s.door != kInvalidId && ps.doors.front() != s.door) {
    ps.doors.insert(ps.doors.begin(), s.door);
    ps.edge_ctx.insert(ps.edge_ctx.begin(), as.chain[0]);
  }
  if (t.door != kInvalidId && pt.doors.front() != t.door) {
    pt.doors.insert(pt.doors.begin(), t.door);
    pt.edge_ctx.insert(pt.edge_ctx.begin(), at.chain[0]);
  }

  std::vector<DoorId>& out = path.doors;
  out.push_back(ps.doors[0]);
  for (size_t k = 0; k + 1 < ps.doors.size(); ++k) {
    Expand(ps.doors[k], ps.doors[k + 1], ps.edge_ctx[k], out);
    out.push_back(ps.doors[k + 1]);
  }
  const DoorId a_star = ns_node.access_doors[best_i];
  const DoorId b_star = nt_node.access_doors[best_j];
  if (a_star != b_star) {
    Expand(a_star, b_star, lca, out);
    out.push_back(b_star);
  }
  // t side, reversed (from b_star down to t's first door).
  for (size_t k = pt.doors.size(); k-- > 1;) {
    Expand(pt.doors[k], pt.doors[k - 1], pt.edge_ctx[k - 1], out);
    out.push_back(pt.doors[k - 1]);
  }
  return path;
}

IndoorPath IPPathQuery::Path(const IndoorPoint& s,
                             const IndoorPoint& t) const {
  const NodeId ls = tree_.LeafOfPartition(s.partition);
  const NodeId lt = tree_.LeafOfPartition(t.partition);
  if (ls == lt) {
    IndoorPath local =
        LocalPath(QuerySource::Point(s), QuerySource::Point(t));
    // When the best route is the direct intra-partition line, the door list
    // reflects the best door route; clear it if direct wins.
    if (s.partition == t.partition) {
      const double direct = tree_.venue().IntraPartitionDistance(
          s.partition, s.position, t.position);
      if (direct <= local.distance) {
        local.distance = direct;
        local.doors.clear();
      }
    }
    return local;
  }
  return CrossLeafPath(QuerySource::Point(s), QuerySource::Point(t));
}

IndoorPath IPPathQuery::DoorPath(DoorId s, DoorId t) const {
  if (s == t) return IndoorPath{0.0, {s}};
  if (CommonLeaf(tree_, s, t) != kInvalidId) {
    return LocalPath(QuerySource::Door(s), QuerySource::Door(t));
  }
  return CrossLeafPath(QuerySource::Door(s), QuerySource::Door(t));
}

// ---------------------------------------------------------------------------
// VIP variant
// ---------------------------------------------------------------------------

VIPPathQuery::VIPPathQuery(const VIPTree& tree,
                           const DistanceQueryOptions& options,
                           DistanceCache* cache)
    : vip_(tree),
      query_(tree, options, cache),
      ip_path_(tree.base(), options, cache) {}

void VIPPathQuery::WalkToAncestorAd(DoorId x, NodeId ancestor, size_t col,
                                    std::vector<DoorId>& out) const {
  const IPTree& tree = vip_.base();
  const DoorId target = tree.node(ancestor).access_doors[col];
  while (x != target) {
    if (vip_.ExtRowOf(ancestor, x) < 0) {
      // The path excursed outside the ancestor's subtree (§3.3's "very
      // rare" case): finish the remaining segment with a bounded Dijkstra.
      DijkstraEngine& engine = ip_path_.query_.dijkstra_;
      engine.Start(x);
      engine.RunToTargets(Span<const DoorId>(&target, 1));
      const std::vector<DoorId> seg = engine.PathTo(target);
      for (size_t i = 1; i + 1 < seg.size(); ++i) out.push_back(seg[i]);
      return;
    }
    const DoorId hop = vip_.ExtNextHop(ancestor, x, col);
    if (hop == kInvalidId) return;  // direct final edge x -> target
    // x -> hop normally stays within one leaf (hop is either the immediate
    // next door or the first access door, with only non-access doors in
    // between).
    const NodeId leaf = CommonLeaf(tree, x, hop);
    if (leaf != kInvalidId) {
      ip_path_.Expand(x, hop, leaf, out);
    } else {
      ip_path_.Expand(x, hop, ancestor, out);  // guarded fallback
    }
    out.push_back(hop);
    x = hop;
  }
}

IndoorPath VIPPathQuery::CrossLeafPath(const QuerySource& s,
                                       const QuerySource& t) const {
  const IPTree& tree = vip_.base();
  const NodeId ls = s.point != nullptr
                        ? tree.LeafOfPartition(s.point->partition)
                        : tree.LeavesOfDoor(s.door)[0].leaf;
  const NodeId lt = t.point != nullptr
                        ? tree.LeafOfPartition(t.point->partition)
                        : tree.LeavesOfDoor(t.door)[0].leaf;
  const NodeId lca = tree.Lca(ls, lt);
  const NodeId ns = ChildToward(tree, lca, ls);
  const NodeId nt = ChildToward(tree, lca, lt);

  std::vector<double> sdist, tdist;
  std::vector<PathBack> sback, tback;
  query_.DistancesToNodeAd(s, ns, sdist, sback);
  query_.DistancesToNodeAd(t, nt, tdist, tback);

  const TreeNode& lca_node = tree.node(lca);
  const TreeNode& ns_node = tree.node(ns);
  const TreeNode& nt_node = tree.node(nt);
  IndoorPath path;
  size_t best_i = 0, best_j = 0;
  query_.AccessDoorIndexMap(lca, ns, row_idx_);
  query_.AccessDoorIndexMap(lca, nt, col_idx_);
  for (size_t i = 0; i < ns_node.access_doors.size(); ++i) {
    const int row = row_idx_[i];
    for (size_t j = 0; j < nt_node.access_doors.size(); ++j) {
      const int col = col_idx_[j];
      const double cand =
          sdist[i] + lca_node.dist.at(row, col) + tdist[j];
      if (cand < path.distance) {
        path.distance = cand;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (path.distance == kInfDistance) return path;

  const DoorId a_star = ns_node.access_doors[best_i];
  const DoorId b_star = nt_node.access_doors[best_j];
  std::vector<DoorId>& out = path.doors;

  // s -> first door -> a*.
  DoorId s_first = sback[best_i].pred;
  if (s_first == kInvalidId) s_first = s.door;  // door source or direct
  if (s_first != kInvalidId && s_first != a_star) {
    out.push_back(s_first);
    WalkToAncestorAd(s_first, ns, best_i, out);
  }
  out.push_back(a_star);

  if (a_star != b_star) {
    ip_path_.Expand(a_star, b_star, lca, out);
    out.push_back(b_star);
  }

  // b* -> ... -> t's first door, computed in t -> b* direction and reversed.
  DoorId t_first = tback[best_j].pred;
  if (t_first == kInvalidId) t_first = t.door;
  if (t_first != kInvalidId && t_first != b_star) {
    std::vector<DoorId> t_side;
    t_side.push_back(t_first);
    WalkToAncestorAd(t_first, nt, best_j, t_side);
    // t_side = t_first ... (doors approaching b*); reverse and append,
    // dropping b* which is already emitted.
    for (size_t k = t_side.size(); k-- > 0;) {
      if (t_side[k] == b_star) continue;
      out.push_back(t_side[k]);
    }
  }
  return path;
}

IndoorPath VIPPathQuery::Path(const IndoorPoint& s,
                              const IndoorPoint& t) const {
  const IPTree& tree = vip_.base();
  const NodeId ls = tree.LeafOfPartition(s.partition);
  const NodeId lt = tree.LeafOfPartition(t.partition);
  if (ls == lt) return ip_path_.Path(s, t);
  return CrossLeafPath(QuerySource::Point(s), QuerySource::Point(t));
}

IndoorPath VIPPathQuery::DoorPath(DoorId s, DoorId t) const {
  if (s == t) return IndoorPath{0.0, {s}};
  const IPTree& tree = vip_.base();
  if (CommonLeaf(tree, s, t) != kInvalidId) return ip_path_.DoorPath(s, t);
  return CrossLeafPath(QuerySource::Door(s), QuerySource::Door(t));
}

}  // namespace viptree
