#include "io/binary_io.h"

#include <array>
#include <cstdio>

namespace viptree {
namespace io {

namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; the
// other seven let the hot loop fold 8 input bytes per iteration (roughly
// memory-bandwidth checksumming, which matters because every snapshot
// section is checksummed on load).
std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t slice = 1; slice < 8; ++slice) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[slice][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> tables =
      MakeCrcTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo = detail::ToLittle(lo) ^ crc;
    hi = detail::ToLittle(hi);
    crc = tables[7][lo & 0xFF] ^ tables[6][(lo >> 8) & 0xFF] ^
          tables[5][(lo >> 16) & 0xFF] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFF] ^ tables[2][(hi >> 8) & 0xFF] ^
          tables[1][(hi >> 16) & 0xFF] ^ tables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = tables[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteFileBytes(const std::string& path, Span<const uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot open '" + path + "' for writing");
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(path.c_str());
    return Status::Error("short write to '" + path + "' (" +
                         std::to_string(written) + " of " +
                         std::to_string(bytes.size()) + " bytes)");
  }
  return Status::Ok();
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Error("cannot determine size of '" + path + "'");
  }
  out->resize(static_cast<size_t>(size));
  const size_t read =
      out->empty() ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::Error("short read from '" + path + "' (" +
                         std::to_string(read) + " of " +
                         std::to_string(out->size()) + " bytes)");
  }
  return Status::Ok();
}

}  // namespace io
}  // namespace viptree
