#include "io/binary_io.h"

#include <array>
#include <cstdio>
#include <string>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace viptree {
namespace io {

namespace {

long ProcessId() {
#if defined(_WIN32)
  return 0;  // best effort; the unique-scratch property is POSIX-only
#else
  return static_cast<long>(::getpid());
#endif
}

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; the
// other seven let the hot loop fold 8 input bytes per iteration (roughly
// memory-bandwidth checksumming, which matters because every snapshot
// section is checksummed on load).
std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t slice = 1; slice < 8; ++slice) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[slice][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> tables =
      MakeCrcTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo = detail::ToLittle(lo) ^ crc;
    hi = detail::ToLittle(hi);
    crc = tables[7][lo & 0xFF] ^ tables[6][(lo >> 8) & 0xFF] ^
          tables[5][(lo >> 16) & 0xFF] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFF] ^ tables[2][(hi >> 8) & 0xFF] ^
          tables[1][(hi >> 16) & 0xFF] ^ tables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = tables[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteFileBytes(const std::string& path, Span<const uint8_t> bytes) {
  // Write to a sibling temp file and rename(2) it into place. Rename is
  // atomic on POSIX, so readers never observe a half-written file — and,
  // crucial for zero-copy serving, rewriting an existing snapshot replaces
  // the directory entry while live mmap()s keep the *old* inode: a
  // rebuild can never SIGBUS a process still serving the previous
  // artifact out of a lazy mapping. The temp name carries the pid so
  // concurrent writers to one path never share (and truncate) each
  // other's scratch file; last rename wins with a complete artifact.
  const std::string temp = path + ".tmp." + std::to_string(ProcessId());
  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot open '" + temp + "' for writing");
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(temp.c_str());
    return Status::Error("short write to '" + temp + "' (" +
                         std::to_string(written) + " of " +
                         std::to_string(bytes.size()) + " bytes)");
  }
#if defined(_WIN32)
  // Windows rename() refuses to replace an existing destination; drop the
  // old file first (non-atomic, but Windows also has no mmap zero-copy
  // path that could be serving the old inode).
  std::remove(path.c_str());
#endif
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Error("cannot move '" + temp + "' into place at '" +
                         path + "'");
  }
  return Status::Ok();
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Error("cannot determine size of '" + path + "'");
  }
  out->resize(static_cast<size_t>(size));
  const size_t read =
      out->empty() ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::Error("short read from '" + path + "' (" +
                         std::to_string(read) + " of " +
                         std::to_string(out->size()) + " bytes)");
  }
  return Status::Ok();
}

}  // namespace io
}  // namespace viptree
