// The VIP-Tree snapshot format: a versioned little-endian container that
// persists one venue's complete serving state — venue, D2D graph, IP-/VIP-
// Tree (nodes, matrices, extended matrices), object index and optional
// keyword index — so an index built once offline can be loaded into any
// process without re-running construction (the paper's §4/Fig. 8 point that
// indexing time is paid separately from query time, made operational).
//
// Two format versions are readable; writers default to v2.
//
// Format v2 (zero-copy layout; all integers little-endian):
//
//   8 B   magic "VIPTSNAP"
//   u32   format version (2)
//   u32   section count
//   then one 24-byte TOC entry per section:
//     u32   tag (four ASCII chars, e.g. 'VENU')
//     u32   CRC-32 of the payload
//     u64   payload offset from the start of the file
//     u64   payload size in bytes
//   then the payloads.
//
//   Alignment rules: every payload offset is a multiple of 8; inside a
//   payload, every bulk array (u64 count, then raw element bytes) is
//   preceded by zero-padding up to the next multiple of 8 *relative to the
//   payload start*, and every payload is zero-padded at the end to a
//   multiple of 8. Together these guarantee each array's file offset — and
//   therefore its address inside an 8-aligned arena (io/mmap_arena.h) — is
//   aligned for its element type, so the decoder can hand out Storage<T>
//   views straight into the mapped file instead of copying. Struct element
//   types (D2DEdge, IPTree::DoorLeafPair) are static_asserted padding-free.
//
// Format v1 (legacy, PR 3): the same magic, version 1, a reserved u32, then
// a *sequence* of [tag, u64 size, u32 crc, payload] frames with no
// alignment; always decoded by copying. Still fully readable and writable
// (SnapshotWriteOptions{.version = 1}) so pre-v2 artifacts keep loading.
//
// Sections VENU, GRPH, TREE, VIPX, OBJX and ENGO are mandatory; KWIX is
// present only when the engine was built with object keywords. Unknown
// sections, duplicate sections, truncation, misaligned TOC offsets,
// checksum mismatches and version skew are all reported as distinct,
// human-readable errors.
//
// Versioning policy: the format version is bumped on any incompatible
// change. This build reads versions 1 and 2; anything else is rejected
// outright (no in-place migration — loading a v1 snapshot and re-saving it
// produces a v2 snapshot, which is the supported upgrade path).

#ifndef VIPTREE_IO_SNAPSHOT_H_
#define VIPTREE_IO_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/distance_query.h"
#include "core/keyword_query.h"
#include "core/object_index.h"
#include "core/vip_tree.h"
#include "graph/d2d_graph.h"
#include "io/binary_io.h"
#include "model/venue.h"

namespace viptree {
namespace io {

inline constexpr uint32_t kFormatVersion = 2;
inline constexpr uint32_t kLegacyFormatVersion = 1;

// The fully deserialized (but not yet assembled) contents of a snapshot:
// plain part-structs with no cross-references, ready for the FromParts
// factories. After an aliased v2 decode the Storage members are *views*
// into the decoded byte range — see SnapshotReadOptions::allow_alias.
struct Snapshot {
  Venue::Parts venue;
  D2DGraph::Parts graph;
  IPTree::Parts tree;
  VIPTree::Parts vip;
  ObjectIndex::Parts objects;
  std::optional<KeywordIndex::Parts> keywords;
  DistanceQueryOptions query_options;

  // Filled in by DecodeSnapshot.
  uint32_t format_version = kFormatVersion;
  // True when any Storage member aliases the input bytes (zero-copy): the
  // byte buffer must then outlive this Snapshot and everything built from
  // its parts.
  bool aliased = false;
};

struct SnapshotWriteOptions {
  uint32_t version = kFormatVersion;  // 2 (aligned TOC) or 1 (legacy)
};

struct SnapshotReadOptions {
  // Verify each section's CRC-32 before decoding it. Turning this off
  // makes a v2 load touch only the pages the decoder reads — for snapshots
  // whose integrity is guaranteed elsewhere (verified at install time,
  // content-addressed storage).
  bool verify_checksums = true;
  // Let v2 bulk arrays alias `bytes` (zero-copy) instead of copying. The
  // caller must keep the buffer alive and 8-aligned (MmapArena guarantees
  // both); when the buffer or host does not qualify the decoder silently
  // copies instead. v1 snapshots always copy.
  bool allow_alias = false;
};

// In-memory encode/decode (DecodeSnapshot performs framing, checksum and
// per-field bounds validation; structural validation against the assembled
// venue/tree happens in the FromParts factories).
std::vector<uint8_t> EncodeSnapshot(const Snapshot& snapshot,
                                    const SnapshotWriteOptions& options = {});
Status DecodeSnapshot(Span<const uint8_t> bytes, Snapshot* out,
                      const SnapshotReadOptions& options = {});

// File round-trip. ReadSnapshotFile always copies (the returned Snapshot is
// self-contained); zero-copy loads go through MmapArena + DecodeSnapshot
// (see engine::VenueBundle::TryLoad).
Status WriteSnapshotFile(const std::string& path, const Snapshot& snapshot,
                         const SnapshotWriteOptions& options = {});
Status ReadSnapshotFile(const std::string& path, Snapshot* out);

// Install-time integrity check: one section of VerifySnapshotFile's
// per-section verdict.
struct SnapshotSectionCheck {
  std::string name;    // four-char section tag, e.g. "VENU"
  uint64_t bytes = 0;  // payload size
  uint32_t crc = 0;    // CRC-32 stored in the file
  bool ok = false;     // recomputed CRC matches
};

struct SnapshotVerifyReport {
  uint32_t format_version = 0;
  uint64_t file_bytes = 0;
  std::vector<SnapshotSectionCheck> sections;
};

// Re-checks every section's CRC-32 against its payload bytes without
// decoding anything — the `viptree_build --verify` path that makes the
// trusted load mode (verify_checksums = false, the fast fleet
// configuration bench_mmap_load measures) safe to run: verify each
// artifact once at install time, skip the per-load pass forever after.
// Returns an error on an unreadable/malformed file or any CRC mismatch;
// `report` (optional) is filled with whatever was checked either way.
Status VerifySnapshotFile(const std::string& path,
                          SnapshotVerifyReport* report = nullptr);

}  // namespace io
}  // namespace viptree

#endif  // VIPTREE_IO_SNAPSHOT_H_
