// The VIP-Tree snapshot format: a versioned little-endian container that
// persists one venue's complete serving state — venue, D2D graph, IP-/VIP-
// Tree (nodes, matrices, extended matrices), object index and optional
// keyword index — so an index built once offline can be loaded into any
// process without re-running construction (the paper's §4/Fig. 8 point that
// indexing time is paid separately from query time, made operational).
//
// Layout (all integers little-endian):
//
//   8 B   magic "VIPTSNAP"
//   u32   format version (kFormatVersion)
//   u32   reserved (0)
//   then a sequence of sections, each:
//     u32   tag (four ASCII chars, e.g. 'VENU')
//     u64   payload size in bytes
//     u32   CRC-32 of the payload
//     ...   payload
//
// Sections VENU, GRPH, TREE, VIPX, OBJX and ENGO are mandatory; KWIX is
// present only when the engine was built with object keywords. Unknown
// sections, duplicate sections, truncation, checksum mismatches and version
// skew are all reported as distinct, human-readable errors.
//
// Versioning policy: the format version is bumped on any incompatible
// change; readers reject snapshots with a different version outright (no
// in-place migration — snapshots are cheap to rebuild from source data,
// so the complexity of multi-version readers is not worth the risk of
// silently mis-decoding an index).

#ifndef VIPTREE_IO_SNAPSHOT_H_
#define VIPTREE_IO_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/distance_query.h"
#include "core/keyword_query.h"
#include "core/object_index.h"
#include "core/vip_tree.h"
#include "graph/d2d_graph.h"
#include "io/binary_io.h"
#include "model/venue.h"

namespace viptree {
namespace io {

inline constexpr uint32_t kFormatVersion = 1;

// The fully deserialized (but not yet assembled) contents of a snapshot:
// plain part-structs with no cross-references, ready for the FromParts
// factories.
struct Snapshot {
  Venue::Parts venue;
  D2DGraph::Parts graph;
  IPTree::Parts tree;
  VIPTree::Parts vip;
  ObjectIndex::Parts objects;
  std::optional<KeywordIndex::Parts> keywords;
  DistanceQueryOptions query_options;
};

// In-memory encode/decode (DecodeSnapshot performs framing, checksum and
// per-field bounds validation; structural validation against the assembled
// venue/tree happens in the FromParts factories).
std::vector<uint8_t> EncodeSnapshot(const Snapshot& snapshot);
Status DecodeSnapshot(Span<const uint8_t> bytes, Snapshot* out);

// File round-trip.
Status WriteSnapshotFile(const std::string& path, const Snapshot& snapshot);
Status ReadSnapshotFile(const std::string& path, Snapshot* out);

}  // namespace io
}  // namespace viptree

#endif  // VIPTREE_IO_SNAPSHOT_H_
